package ftl

import (
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
)

func newTestManager(t *testing.T) (*Manager, *nand.Flash) {
	t.Helper()
	cfg := nand.Config{
		Channels: 2, DiesPerChan: 2, BlocksPerDie: 4, PagesPerBlock: 4,
		PageSize: 1024, SpareSize: 32,
		ReadLatency: 1, ProgramLatency: 1, EraseLatency: 1, ChannelMBps: 800,
	}
	f := nand.New(cfg, sim.NewClock())
	return NewManager(f), f
}

func TestAllocDrainAndRefill(t *testing.T) {
	m, _ := newTestManager(t)
	total := m.Stats().TotalBlocks
	if total != 16 {
		t.Fatalf("TotalBlocks = %d", total)
	}
	var got []nand.BlockID
	for {
		b, err := m.Alloc(ZoneKV)
		if err != nil {
			if !errors.Is(err, ErrNoFreeBlocks) {
				t.Fatal(err)
			}
			break
		}
		got = append(got, b)
	}
	if len(got) != total {
		t.Fatalf("allocated %d blocks, want %d", len(got), total)
	}
	seen := make(map[nand.BlockID]bool)
	for _, b := range got {
		if seen[b] {
			t.Fatalf("block %d allocated twice", b)
		}
		seen[b] = true
	}
	m.Release(got[0])
	if m.FreeBlocks() != 1 {
		t.Fatalf("FreeBlocks = %d", m.FreeBlocks())
	}
	b, err := m.Alloc(ZoneIndex)
	if err != nil || b != got[0] {
		t.Fatalf("re-alloc = (%d,%v)", b, err)
	}
	if m.Zone(b) != ZoneIndex {
		t.Fatal("zone not reset on re-alloc")
	}
}

func TestAllocSpreadsAcrossDies(t *testing.T) {
	m, f := newTestManager(t)
	perDie := f.Config().BlocksPerDie
	dies := make(map[int]bool)
	for i := 0; i < f.Config().Dies(); i++ {
		b, err := m.Alloc(ZoneKV)
		if err != nil {
			t.Fatal(err)
		}
		dies[int(b)/perDie] = true
	}
	if len(dies) != f.Config().Dies() {
		t.Fatalf("first %d allocations hit only %d dies", f.Config().Dies(), len(dies))
	}
}

func TestWriteInvalidateAccounting(t *testing.T) {
	m, _ := newTestManager(t)
	b, _ := m.Alloc(ZoneKV)
	m.OnWrite(b, 100)
	m.OnWrite(b, 50)
	if m.ValidBytes(b) != 150 || m.WrittenBytes(b) != 150 {
		t.Fatalf("valid=%d written=%d", m.ValidBytes(b), m.WrittenBytes(b))
	}
	m.OnInvalidate(b, 60)
	if m.ValidBytes(b) != 90 {
		t.Fatalf("valid=%d after invalidate", m.ValidBytes(b))
	}
	m.OnWriteDead(b, 10)
	if m.ValidBytes(b) != 90 || m.WrittenBytes(b) != 160 {
		t.Fatalf("dead write accounting: valid=%d written=%d", m.ValidBytes(b), m.WrittenBytes(b))
	}
}

func TestNegativeValidPanics(t *testing.T) {
	m, _ := newTestManager(t)
	b, _ := m.Alloc(ZoneKV)
	m.OnWrite(b, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative valid bytes")
		}
	}()
	m.OnInvalidate(b, 20)
}

func TestAccountingOnFreeBlockPanics(t *testing.T) {
	m, _ := newTestManager(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on accounting against free block")
		}
	}()
	m.OnWrite(3, 10)
}

func TestReleaseFreePanics(t *testing.T) {
	m, _ := newTestManager(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double release")
		}
	}()
	m.Release(3)
}

func fillBlock(t *testing.T, f *nand.Flash, b nand.BlockID) {
	t.Helper()
	for p := 0; p < f.Config().PagesPerBlock; p++ {
		if _, err := f.Program(0, f.PPAOf(b, p), []byte{1}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVictimPicksLeastValid(t *testing.T) {
	m, f := newTestManager(t)
	b1, _ := m.Alloc(ZoneKV)
	b2, _ := m.Alloc(ZoneKV)
	b3, _ := m.Alloc(ZoneKV)
	fillBlock(t, f, b1)
	fillBlock(t, f, b2)
	// b3 is the open log head: protected via the exclude list.
	m.OnWrite(b1, 100)
	m.OnWrite(b2, 100)
	m.OnWrite(b3, 1)
	m.OnInvalidate(b2, 80) // b2 has least valid data among sealed blocks

	v, ok := m.Victim(ZoneKV, b3)
	if !ok || v != b2 {
		t.Fatalf("Victim = (%d,%v), want (%d,true)", v, ok, b2)
	}
}

func TestVictimRespectsZoneAndExclude(t *testing.T) {
	m, f := newTestManager(t)
	kv, _ := m.Alloc(ZoneKV)
	idx, _ := m.Alloc(ZoneIndex)
	fillBlock(t, f, kv)
	fillBlock(t, f, idx)
	m.OnWrite(kv, 10)
	m.OnWrite(idx, 10)

	if v, ok := m.Victim(ZoneIndex); !ok || v != idx {
		t.Fatalf("index victim = (%d,%v)", v, ok)
	}
	if _, ok := m.Victim(ZoneKV, kv); ok {
		t.Fatal("excluded block selected as victim")
	}
}

func TestVictimNoneWhenAllExcluded(t *testing.T) {
	m, _ := newTestManager(t)
	b, _ := m.Alloc(ZoneKV)
	if _, ok := m.Victim(ZoneKV, b); ok {
		t.Fatal("excluded active block selected as victim")
	}
	// Without exclusion the open block is eligible (post-recovery case).
	if v, ok := m.Victim(ZoneKV); !ok || v != b {
		t.Fatalf("Victim = (%d,%v), want (%d,true)", v, ok, b)
	}
}

func TestStatsSnapshot(t *testing.T) {
	m, _ := newTestManager(t)
	kv, _ := m.Alloc(ZoneKV)
	idx, _ := m.Alloc(ZoneIndex)
	m.OnWrite(kv, 100)
	m.OnWrite(idx, 40)
	m.OnInvalidate(idx, 10)
	s := m.Stats()
	if s.KVBlocks != 1 || s.IndexBlocks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ValidBytes != 130 || s.WrittenBytes != 140 {
		t.Fatalf("bytes = %+v", s)
	}
	if s.FreeBlocks != s.TotalBlocks-2 {
		t.Fatalf("free = %d", s.FreeBlocks)
	}
}

func TestZoneString(t *testing.T) {
	if ZoneKV.String() != "kv" || ZoneIndex.String() != "index" {
		t.Fatal("zone names wrong")
	}
	if Zone(9).String() == "" {
		t.Fatal("unknown zone produced empty string")
	}
}
