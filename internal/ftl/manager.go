// Package ftl manages the flash translation bookkeeping beneath the
// KVSSD: the free-block pool, the index-zone / key-value-zone split
// (Fig. 3), per-block valid-byte accounting, and greedy victim selection
// for garbage collection. The device layer performs the actual relocation
// and erase; this package decides where writes go and which block to
// clean next.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/nand"
)

// Zone labels what a block stores.
type Zone int

// Zones. KV blocks hold packed pairs and extents; index blocks hold
// serialized record-layer tables and directory checkpoints.
const (
	ZoneKV Zone = iota
	ZoneIndex
)

func (z Zone) String() string {
	switch z {
	case ZoneKV:
		return "kv"
	case ZoneIndex:
		return "index"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// ErrNoFreeBlocks is returned when allocation is requested and the free
// pool is empty; the caller must garbage-collect or fail the write.
var ErrNoFreeBlocks = errors.New("ftl: no free blocks")

type blockMeta struct {
	zone    Zone
	inUse   bool
	valid   int64 // bytes of still-live data
	written int64 // bytes ever written since last erase
}

// Stats summarizes pool and accounting state.
type Stats struct {
	TotalBlocks  int
	FreeBlocks   int
	KVBlocks     int
	IndexBlocks  int
	ValidBytes   int64
	WrittenBytes int64
}

// Manager tracks block ownership and liveness. It is not safe for
// concurrent use.
type Manager struct {
	flash  *nand.Flash
	blocks []blockMeta
	free   []nand.BlockID
}

// NewManager returns a manager with every block free. Blocks are handed
// out in address order, spreading consecutive allocations across dies.
func NewManager(flash *nand.Flash) *Manager {
	total := flash.Config().TotalBlocks()
	m := &Manager{
		flash:  flash,
		blocks: make([]blockMeta, total),
		free:   make([]nand.BlockID, 0, total),
	}
	// Push in reverse so pops return ascending block IDs; interleave by
	// die so consecutive log blocks land on different dies.
	byDie := make([][]nand.BlockID, flash.Config().Dies())
	perDie := flash.Config().BlocksPerDie
	for b := 0; b < total; b++ {
		die := b / perDie
		byDie[die] = append(byDie[die], nand.BlockID(b))
	}
	for i := 0; len(m.free) < total; i++ {
		for d := range byDie {
			if i < len(byDie[d]) {
				m.free = append(m.free, byDie[d][i])
			}
		}
	}
	// Reverse so Alloc pops from the tail in the interleaved order.
	for i, j := 0, len(m.free)-1; i < j; i, j = i+1, j-1 {
		m.free[i], m.free[j] = m.free[j], m.free[i]
	}
	return m
}

// Alloc takes a block from the free pool for the given zone.
func (m *Manager) Alloc(zone Zone) (nand.BlockID, error) {
	if len(m.free) == 0 {
		return 0, ErrNoFreeBlocks
	}
	b := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.blocks[b] = blockMeta{zone: zone, inUse: true}
	return b, nil
}

// Adopt claims block b for the given zone with zeroed accounting,
// removing it from the free pool. Crash recovery uses it to re-own
// blocks that hold programmed pages; the caller then replays accounting
// with OnWrite/OnWriteDead.
func (m *Manager) Adopt(b nand.BlockID, zone Zone) {
	if m.blocks[b].inUse {
		panic(fmt.Sprintf("ftl: adopting in-use block %d", b))
	}
	for i, f := range m.free {
		if f == b {
			m.free = append(m.free[:i], m.free[i+1:]...)
			break
		}
	}
	m.blocks[b] = blockMeta{zone: zone, inUse: true}
}

// Release returns an erased block to the free pool. The caller must have
// erased it on the flash array first.
func (m *Manager) Release(b nand.BlockID) {
	if !m.blocks[b].inUse {
		panic(fmt.Sprintf("ftl: releasing free block %d", b))
	}
	m.blocks[b] = blockMeta{}
	m.free = append(m.free, b)
}

// OnWrite records that n bytes of live data were written to block b.
func (m *Manager) OnWrite(b nand.BlockID, n int64) {
	mb := &m.blocks[b]
	if !mb.inUse {
		panic(fmt.Sprintf("ftl: write accounting on free block %d", b))
	}
	mb.written += n
	mb.valid += n
}

// OnWriteDead records that n bytes were written to block b that are
// already dead (e.g. delete tombstones): they consume space but are never
// live, so the block gets no valid-byte credit.
func (m *Manager) OnWriteDead(b nand.BlockID, n int64) {
	mb := &m.blocks[b]
	if !mb.inUse {
		panic(fmt.Sprintf("ftl: write accounting on free block %d", b))
	}
	mb.written += n
}

// OnInvalidate records that n bytes in block b became stale (the pair or
// index page was updated or deleted).
func (m *Manager) OnInvalidate(b nand.BlockID, n int64) {
	mb := &m.blocks[b]
	if !mb.inUse {
		panic(fmt.Sprintf("ftl: invalidate on free block %d", b))
	}
	mb.valid -= n
	if mb.valid < 0 {
		panic(fmt.Sprintf("ftl: block %d valid bytes went negative", b))
	}
}

// Zone reports block b's zone; meaningful only while the block is in use.
func (m *Manager) Zone(b nand.BlockID) Zone { return m.blocks[b].zone }

// InUse reports whether block b is allocated.
func (m *Manager) InUse(b nand.BlockID) bool { return m.blocks[b].inUse }

// ValidBytes reports the live bytes in block b.
func (m *Manager) ValidBytes(b nand.BlockID) int64 { return m.blocks[b].valid }

// WrittenBytes reports the bytes written to block b since its last erase.
func (m *Manager) WrittenBytes(b nand.BlockID) int64 { return m.blocks[b].written }

// FreeBlocks reports the free pool size.
func (m *Manager) FreeBlocks() int { return len(m.free) }

// Victim selects the greedy candidate for garbage collection in the given
// zone: the in-use block with the fewest valid bytes, excluding the
// listed active (open log head) blocks. Partially-programmed blocks are
// eligible — after a crash recovery, abandoned log heads must remain
// collectable. ok is false when no candidate exists.
func (m *Manager) Victim(zone Zone, exclude ...nand.BlockID) (nand.BlockID, bool) {
	skip := make(map[nand.BlockID]bool, len(exclude))
	for _, b := range exclude {
		skip[b] = true
	}
	best := nand.BlockID(0)
	bestValid := int64(-1)
	for b := range m.blocks {
		bid := nand.BlockID(b)
		mb := &m.blocks[b]
		if !mb.inUse || mb.zone != zone || skip[bid] {
			continue
		}
		if bestValid < 0 || mb.valid < bestValid {
			best = bid
			bestValid = mb.valid
		}
	}
	return best, bestValid >= 0
}

// Stats returns a snapshot of pool and accounting state.
func (m *Manager) Stats() Stats {
	s := Stats{
		TotalBlocks: len(m.blocks),
		FreeBlocks:  len(m.free),
	}
	for i := range m.blocks {
		mb := &m.blocks[i]
		if !mb.inUse {
			continue
		}
		switch mb.zone {
		case ZoneKV:
			s.KVBlocks++
		case ZoneIndex:
			s.IndexBlocks++
		}
		s.ValidBytes += mb.valid
		s.WrittenBytes += mb.written
	}
	return s
}
