package mlhash

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// memEnv mirrors the in-memory environment used by the core tests.
type memEnv struct {
	clock       sim.Clock
	pages       map[nand.PPA][]byte
	next        nand.PPA
	reads       int64
	invalidated map[nand.PPA]bool
}

func newMemEnv() *memEnv {
	return &memEnv{pages: make(map[nand.PPA][]byte), invalidated: make(map[nand.PPA]bool)}
}

func (e *memEnv) ReadPage(p nand.PPA) ([]byte, error) {
	data, ok := e.pages[p]
	if !ok {
		return nil, fmt.Errorf("memEnv: page %d absent", p)
	}
	e.reads++
	e.clock.Advance(60 * sim.Microsecond)
	return data, nil
}

func (e *memEnv) AppendPage(data []byte) (nand.PPA, error) {
	p := e.next
	e.next++
	e.pages[p] = append([]byte(nil), data...)
	e.clock.Advance(700 * sim.Microsecond)
	return p, nil
}

func (e *memEnv) Invalidate(p nand.PPA) {
	e.invalidated[p] = true
	delete(e.pages, p)
}

func (e *memEnv) ChargeCPU(d sim.Duration) { e.clock.Advance(d) }
func (e *memEnv) MetaReads() int64         { return e.reads }
func (e *memEnv) Now() sim.Time            { return e.clock.Now() }

func sig64(lo uint64) index.Sig { return index.Sig{Lo: lo} }

func newTestIndex(t *testing.T, cfg Config) (*Index, *memEnv) {
	t.Helper()
	env := newMemEnv()
	if cfg.PageSize == 0 {
		cfg.PageSize = 1024
	}
	ix, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	return ix, env
}

func TestValidation(t *testing.T) {
	env := newMemEnv()
	if _, err := New(Config{PageSize: 4}, env); err == nil {
		t.Fatal("accepted tiny page")
	}
	if _, err := New(Config{PageSize: 1024, Levels: 40}, env); err == nil {
		t.Fatal("accepted absurd level count")
	}
	if _, err := New(Config{PageSize: 1024, Level0Pages: -1}, env); err == nil {
		t.Fatal("accepted negative level0")
	}
}

func TestInsertLookupDeleteUpdate(t *testing.T) {
	ix, _ := newTestIndex(t, Config{})
	if _, rep, err := ix.Insert(sig64(10), 100); err != nil || rep {
		t.Fatalf("Insert = (%v,%v)", rep, err)
	}
	rp, ok, err := ix.Lookup(sig64(10))
	if err != nil || !ok || rp != 100 {
		t.Fatalf("Lookup = (%d,%v,%v)", rp, ok, err)
	}
	old, rep, err := ix.Insert(sig64(10), 200)
	if err != nil || !rep || old != 100 {
		t.Fatalf("update = (%d,%v,%v)", old, rep, err)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	rp, ok, err = ix.Delete(sig64(10))
	if err != nil || !ok || rp != 200 {
		t.Fatalf("Delete = (%d,%v,%v)", rp, ok, err)
	}
	if _, ok, _ := ix.Lookup(sig64(10)); ok {
		t.Fatal("deleted record found")
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestCascadeOverflowsToDeeperLevels(t *testing.T) {
	// A tiny level 0 forces overflow into deeper levels long before the
	// total capacity is reached.
	ix, _ := newTestIndex(t, Config{PageSize: 256, Levels: 4, Level0Pages: 1})
	rng := rand.New(rand.NewSource(1))
	inserted := map[uint64]uint64{}
	target := ix.MaxCapacity() / 2
	for int64(len(inserted)) < target {
		lo := rng.Uint64()
		if _, _, err := ix.Insert(sig64(lo), uint64(len(inserted)+1)); err != nil {
			if errors.Is(err, index.ErrCollision) {
				continue
			}
			t.Fatal(err)
		}
		inserted[lo] = uint64(len(inserted))
	}
	for lo := range inserted {
		if _, ok, err := ix.Lookup(sig64(lo)); err != nil || !ok {
			t.Fatalf("Lookup(%#x) = (%v,%v)", lo, ok, err)
		}
	}
}

func TestCollisionWhenCascadeFull(t *testing.T) {
	ix, _ := newTestIndex(t, Config{PageSize: 128, Levels: 2, Level0Pages: 1})
	rng := rand.New(rand.NewSource(2))
	var aborted bool
	for i := 0; i < 2000 && !aborted; i++ {
		_, _, err := ix.Insert(sig64(rng.Uint64()), 1)
		if errors.Is(err, index.ErrCollision) {
			aborted = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !aborted {
		t.Fatal("full cascade never aborted")
	}
	if ix.IndexStats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestLookupCostsGrowWithDepth(t *testing.T) {
	// With a cold cache, a missing key probes every level: L flash reads
	// once all levels are populated. This is the behaviour RHIK's
	// one-read guarantee eliminates (Fig. 5b).
	ix, env := newTestIndex(t, Config{PageSize: 256, Levels: 4, Level0Pages: 1, CacheBudget: 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ix.Insert(sig64(rng.Uint64()), 1)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	before := env.MetaReads()
	ix.Lookup(sig64(0xdeadbeef)) // absent key
	reads := env.MetaReads() - before
	if reads < 2 {
		t.Fatalf("absent-key lookup took %d flash reads, want >= 2 (multi-level probing)", reads)
	}
}

func TestWritebackColdReload(t *testing.T) {
	ix, _ := newTestIndex(t, Config{PageSize: 512, CacheBudget: 1})
	rng := rand.New(rand.NewSource(4))
	inserted := map[uint64]uint64{}
	for i := 0; len(inserted) < 200; i++ {
		lo := rng.Uint64()
		if _, _, err := ix.Insert(sig64(lo), uint64(i+1)); err == nil {
			inserted[lo] = uint64(i + 1)
		}
	}
	for lo, rp := range inserted {
		got, ok, err := ix.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("cold Lookup = (%d,%v,%v), want %d", got, ok, err, rp)
		}
	}
}

func TestRelocate(t *testing.T) {
	ix, env := newTestIndex(t, Config{PageSize: 512})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		ix.Insert(sig64(rng.Uint64()), 1)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	var victim nand.PPA
	var unit uint64
	found := false
	for p := range env.pages {
		if u, live := ix.Owner(p); live {
			victim, unit, found = p, u, true
			break
		}
	}
	if !found {
		t.Fatal("no live pages")
	}
	if err := ix.Relocate(unit); err != nil {
		t.Fatal(err)
	}
	if !env.invalidated[victim] {
		t.Fatal("old page not invalidated")
	}
	if _, live := ix.Owner(victim); live {
		t.Fatal("old page still live")
	}
}

func TestExist(t *testing.T) {
	ix, _ := newTestIndex(t, Config{})
	ix.Insert(sig64(5), 50)
	if ok, _ := ix.Exist(sig64(5)); !ok {
		t.Fatal("Exist false negative")
	}
	if ok, _ := ix.Exist(sig64(6)); ok {
		t.Fatal("Exist false positive for absent signature")
	}
}

func TestOracleProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		ix, _ := newTestIndex(t, Config{PageSize: 512, Levels: 3, Level0Pages: 2, CacheBudget: 2048})
		rng := rand.New(rand.NewSource(seed))
		oracle := map[uint64]uint64{}
		keys := []uint64{}
		for _, k := range ops {
			var lo uint64
			if len(keys) > 0 && k%2 == 0 {
				lo = keys[rng.Intn(len(keys))]
			} else {
				lo = rng.Uint64()
			}
			switch k % 3 {
			case 0:
				rp := rng.Uint64() % (1 << 39)
				if _, _, err := ix.Insert(sig64(lo), rp); err == nil {
					if _, dup := oracle[lo]; !dup {
						keys = append(keys, lo)
					}
					oracle[lo] = rp
				}
			case 1:
				got, ok, err := ix.Lookup(sig64(lo))
				want, exists := oracle[lo]
				if err != nil || ok != exists || (ok && got != want) {
					return false
				}
			case 2:
				_, ok, err := ix.Delete(sig64(lo))
				_, exists := oracle[lo]
				if err != nil || ok != exists {
					return false
				}
				delete(oracle, lo)
			}
		}
		if ix.Len() != int64(len(oracle)) {
			return false
		}
		for lo, want := range oracle {
			got, ok, err := ix.Lookup(sig64(lo))
			if err != nil || !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityGrowsWithLevels(t *testing.T) {
	ix, _ := newTestIndex(t, Config{PageSize: 1024, Levels: 3, Level0Pages: 2})
	slots := int64(1024 / SlotSize)
	if ix.Levels() != 1 || ix.Capacity() != 2*slots {
		t.Fatalf("fresh index: levels=%d capacity=%d", ix.Levels(), ix.Capacity())
	}
	if want := slots * (2 + 4 + 8); ix.MaxCapacity() != want {
		t.Fatalf("MaxCapacity = %d, want %d", ix.MaxCapacity(), want)
	}
	// Fill past level 0: deeper levels must materialize on demand.
	rng := rand.New(rand.NewSource(8))
	for ix.Len() < ix.MaxCapacity()/2 {
		if _, _, err := ix.Insert(sig64(rng.Uint64()), 1); err != nil {
			if errors.Is(err, index.ErrCollision) {
				continue
			}
			t.Fatal(err)
		}
	}
	if ix.Levels() < 2 {
		t.Fatalf("levels did not grow: %d", ix.Levels())
	}
	if ix.Capacity() <= 2*slots {
		t.Fatal("capacity did not grow with levels")
	}
}
