// Package mlhash implements the baseline index RHIK is compared against:
// a Samsung-KVSSD-style multi-level hash table (§II-B, [7]). The index is
// a cascade of L levels (8 by default), each a flash-resident hash table
// twice the size of the previous. A lookup probes level after level —
// each probe is a page access that costs a flash read on a DRAM-cache
// miss — so metadata accesses cost between 1 and L flash reads (Fig. 5b),
// and performance collapses once the aggregate index outgrows the SSD
// DRAM cache (Fig. 2, Fig. 5a).
package mlhash

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dram"
	"repro/internal/hash"
	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// SlotSize is one record on flash: signature (8) + PPA (5).
const SlotSize = 8 + 5

// emptyPPA marks a vacant slot (as in the record layer).
const emptyPPA = 1<<40 - 1

// Config parameterizes the multi-level index.
type Config struct {
	// PageSize is the flash page size; each level is an array of pages.
	PageSize int
	// Levels caps the cascade depth (default 8, matching the paper's
	// "8-level Multi-Level Hash Index" comparator in Fig. 5). Levels are
	// created on demand as earlier ones fill — the growth steps behind
	// Fig. 2's "index outgrows the previous" markers.
	Levels int
	// Level0Pages sizes the first level; level i has Level0Pages·2^i
	// pages. Default 4.
	Level0Pages int
	// CacheBudget is the SSD DRAM budget for index pages.
	CacheBudget int64
	// CPUPerOp models firmware hashing/probing cost per level probed.
	CPUPerOp sim.Duration
}

// Defaults applied by New.
const (
	DefaultLevels      = 8
	DefaultLevel0Pages = 4
	DefaultCPUPerOp    = 500 * sim.Nanosecond
)

func (c *Config) applyDefaults() {
	if c.Levels == 0 {
		c.Levels = DefaultLevels
	}
	if c.Level0Pages == 0 {
		c.Level0Pages = DefaultLevel0Pages
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 10 << 20
	}
	if c.CPUPerOp == 0 {
		c.CPUPerOp = DefaultCPUPerOp
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.PageSize < 2*SlotSize {
		return fmt.Errorf("mlhash: page size %d too small", c.PageSize)
	}
	if c.Levels < 1 || c.Levels > 16 {
		return fmt.Errorf("mlhash: levels %d outside [1,16]", c.Levels)
	}
	if c.Level0Pages < 1 {
		return fmt.Errorf("mlhash: level0 pages %d < 1", c.Level0Pages)
	}
	return nil
}

type dirEntry struct {
	ppa nand.PPA
	has bool
}

// Index is the multi-level hash index. Not safe for concurrent use.
type Index struct {
	cfg   Config
	env   index.Env
	slots int // slots per page

	dirs  [][]dirEntry // [level][pageIdx]
	cache *dram.Cache[*page]
	live  map[nand.PPA]uint64 // persisted page -> unit key

	emptyImage []byte   // template page with every slot vacant
	bufPool    [][]byte // recycled owned page buffers

	n          int64
	collisions int64
	ioErr      error
}

var _ index.Index = (*Index)(nil)
var _ index.SharedReader = (*Index)(nil)
var _ index.Relocator = (*Index)(nil)
var _ index.StatsProvider = (*Index)(nil)
var _ index.PrefixScanner = (*Index)(nil)

// New builds a multi-level index over the environment.
func New(cfg Config, env index.Env) (*Index, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:   cfg,
		env:   env,
		slots: cfg.PageSize / SlotSize,
		live:  make(map[nand.PPA]uint64),
	}
	// Only level 0 exists at first; deeper levels are added as the
	// cascade fills.
	ix.dirs = [][]dirEntry{make([]dirEntry, cfg.Level0Pages)}
	ix.emptyImage = make([]byte, ix.slots*SlotSize)
	for off := 0; off < len(ix.emptyImage); off += SlotSize {
		writePPA(ix.emptyImage[off+8:], emptyPPA)
	}
	ix.cache = dram.New(cfg.CacheBudget, func(key uint64, pg *page, _ int64) {
		if pg.dirty {
			if err := ix.writePage(key, pg); err != nil && ix.ioErr == nil {
				ix.ioErr = err
			}
		}
		if pg.owned {
			ix.putBuf(pg.buf)
		}
	})
	return ix, nil
}

// Name implements index.Index.
func (ix *Index) Name() string { return "mlhash" }

// Len implements index.Index.
func (ix *Index) Len() int64 { return ix.n }

// Capacity reports the slot capacity of the levels created so far.
func (ix *Index) Capacity() int64 {
	var total int64
	for l := range ix.dirs {
		total += int64(len(ix.dirs[l])) * int64(ix.slots)
	}
	return total
}

// MaxCapacity reports the slot capacity with every level materialized.
func (ix *Index) MaxCapacity() int64 {
	pages := int64(ix.cfg.Level0Pages) * (1<<uint(ix.cfg.Levels) - 1)
	return pages * int64(ix.slots)
}

// Levels reports how many levels exist so far.
func (ix *Index) Levels() int { return len(ix.dirs) }

// addLevel materializes the next level, twice the size of the last.
// Reports false when the configured depth is exhausted.
func (ix *Index) addLevel() bool {
	if len(ix.dirs) >= ix.cfg.Levels {
		return false
	}
	next := 2 * len(ix.dirs[len(ix.dirs)-1])
	ix.dirs = append(ix.dirs, make([]dirEntry, next))
	return true
}

// unitKey packs (level, pageIdx) into the cache/live key space.
func unitKey(level int, pageIdx uint64) uint64 {
	return uint64(level)<<48 | pageIdx
}

func unitLevel(u uint64) int   { return int(u >> 48) }
func unitPage(u uint64) uint64 { return u & (1<<48 - 1) }

// pageOf hashes sig into level l's page array. Each level uses a distinct
// seed so overflowing keys spread independently.
func (ix *Index) pageOf(sigLo uint64, level int) uint64 {
	h := hash.Mix64(sigLo ^ (uint64(level)+1)*0x9e3779b97f4a7c15)
	return h % uint64(len(ix.dirs[level]))
}

// loadPage fetches a level page via the cache, reading flash on a miss.
// Clean pages alias the flash buffer; mutation copies (see page.own).
func (ix *Index) loadPage(level int, pageIdx uint64) (*page, error) {
	key := unitKey(level, pageIdx)
	if pg, ok := ix.cache.Get(key); ok {
		return pg, nil
	}
	var pg *page
	if d := ix.dirs[level][pageIdx]; d.has {
		data, err := ix.env.ReadPage(d.ppa)
		if err != nil {
			return nil, err
		}
		if len(data) < ix.slots*SlotSize {
			return nil, fmt.Errorf("mlhash: short page %d", len(data))
		}
		pg = &page{buf: data}
	} else {
		pg = ix.newEmptyPage()
	}
	ix.cache.Put(key, pg, int64(ix.slots*SlotSize))
	return pg, nil
}

func (ix *Index) writePage(key uint64, pg *page) error {
	ppa, err := ix.env.AppendPage(pg.buf)
	if err != nil {
		return err
	}
	level, pageIdx := unitLevel(key), unitPage(key)
	if d := ix.dirs[level][pageIdx]; d.has {
		ix.env.Invalidate(d.ppa)
		delete(ix.live, d.ppa)
	}
	ix.dirs[level][pageIdx] = dirEntry{ppa: ppa, has: true}
	ix.live[ppa] = key
	pg.dirty = false
	return nil
}

func (ix *Index) checkIO() error {
	if ix.ioErr != nil {
		err := ix.ioErr
		ix.ioErr = nil
		return err
	}
	return nil
}

// Insert implements index.Index: probe existing levels for a record to
// update; otherwise take the first free slot walking down the cascade,
// materializing the next level when every existing one is full — the
// growth behaviour behind Fig. 2. The target page is re-loaded after the
// full probe because probing deeper levels may have evicted it from a
// small cache.
func (ix *Index) Insert(sig index.Sig, rp uint64) (old uint64, replaced bool, err error) {
	freeLevel := -1
	for l := 0; l < len(ix.dirs); l++ {
		ix.env.ChargeCPU(ix.cfg.CPUPerOp)
		pg, err := ix.loadPage(l, ix.pageOf(sig.Lo, l))
		if err != nil {
			return 0, false, err
		}
		if off := pg.find(sig.Lo); off >= 0 {
			old = pg.ppaAt(off)
			pg.own(ix)
			pg.setSlot(off, sig.Lo, rp)
			pg.dirty = true
			return old, true, ix.checkIO()
		}
		if freeLevel < 0 && pg.findFree() >= 0 {
			freeLevel = l
		}
	}
	if freeLevel < 0 {
		if !ix.addLevel() {
			ix.collisions++
			return 0, false, index.ErrCollision
		}
		freeLevel = len(ix.dirs) - 1
	}
	pg, err := ix.loadPage(freeLevel, ix.pageOf(sig.Lo, freeLevel))
	if err != nil {
		return 0, false, err
	}
	off := pg.findFree()
	if off < 0 {
		// Cannot happen single-threaded, but fail safe.
		ix.collisions++
		return 0, false, index.ErrCollision
	}
	pg.own(ix)
	pg.setSlot(off, sig.Lo, rp)
	pg.dirty = true
	ix.n++
	return 0, false, ix.checkIO()
}

// Lookup implements index.Index, probing levels top-down.
func (ix *Index) Lookup(sig index.Sig) (uint64, bool, error) {
	for l := 0; l < len(ix.dirs); l++ {
		ix.env.ChargeCPU(ix.cfg.CPUPerOp)
		pg, err := ix.loadPage(l, ix.pageOf(sig.Lo, l))
		if err != nil {
			return 0, false, err
		}
		if off := pg.find(sig.Lo); off >= 0 {
			return pg.ppaAt(off), true, ix.checkIO()
		}
	}
	return 0, false, ix.checkIO()
}

// Delete implements index.Index.
func (ix *Index) Delete(sig index.Sig) (uint64, bool, error) {
	for l := 0; l < len(ix.dirs); l++ {
		ix.env.ChargeCPU(ix.cfg.CPUPerOp)
		pg, err := ix.loadPage(l, ix.pageOf(sig.Lo, l))
		if err != nil {
			return 0, false, err
		}
		if off := pg.find(sig.Lo); off >= 0 {
			rp := pg.ppaAt(off)
			pg.own(ix)
			pg.setSlot(off, 0, emptyPPA)
			pg.dirty = true
			ix.n--
			return rp, true, ix.checkIO()
		}
	}
	return 0, false, ix.checkIO()
}

// Exist implements index.Index.
func (ix *Index) Exist(sig index.Sig) (bool, error) {
	_, ok, err := ix.Lookup(sig)
	return ok, err
}

// PrefixRecords implements index.PrefixScanner, giving the multi-level
// baseline prefix-iteration parity with RHIK for the cross-engine
// shootout. The cascade hashes full signatures into per-level page
// arrays, so prefix-sharing keys (equal low 32 bits) land anywhere: the
// scan must sweep every materialized page of every level — a flash read
// per uncached persisted page — versus RHIK's single-bucket read. That
// cost gap is the asymmetry the shootout reports. Pages that were never
// persisted and are not cached hold no records and are skipped without
// touching the cache (loading them would mutate it).
func (ix *Index) PrefixRecords(low uint32) ([]uint64, error) {
	var out []uint64
	for l := range ix.dirs {
		for pi := range ix.dirs[l] {
			pg, cached := ix.cache.Peek(unitKey(l, uint64(pi)))
			if !cached {
				if !ix.dirs[l][pi].has {
					continue
				}
				var err error
				pg, err = ix.loadPage(l, uint64(pi))
				if err != nil {
					return nil, err
				}
			}
			ix.env.ChargeCPU(ix.cfg.CPUPerOp)
			for off := 0; off+SlotSize <= len(pg.buf); off += SlotSize {
				if pg.ppaAt(off) == emptyPPA {
					continue
				}
				if sig := binary.LittleEndian.Uint64(pg.buf[off:]); uint32(sig) == low {
					out = append(out, pg.ppaAt(off))
				}
			}
		}
	}
	return out, ix.checkIO()
}

// SharedLookupReady implements index.SharedReader. A lookup probes levels
// top-down until a page contains sig, so it can run under the shard read
// lock when every page it would touch is DRAM-resident: walk the same
// probe sequence with pure peeks, stopping early at the level that would
// satisfy the lookup. A page that was never persisted is not cached
// either (loadPage would insert an empty page — a mutation), so the walk
// correctly demands exclusivity for it.
func (ix *Index) SharedLookupReady(sig index.Sig) bool {
	if ix.ioErr != nil {
		return false
	}
	for l := 0; l < len(ix.dirs); l++ {
		pg, ok := ix.cache.Peek(unitKey(l, ix.pageOf(sig.Lo, l)))
		if !ok {
			return false
		}
		if pg.find(sig.Lo) >= 0 {
			return true
		}
	}
	return true // full probe, all levels cached: a clean miss is pure
}

// Flush implements index.Index: write back every dirty cached page.
func (ix *Index) Flush() error {
	var firstErr error
	ix.cache.Range(func(key uint64, pg *page, _ int64) bool {
		if pg.dirty {
			if err := ix.writePage(key, pg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	return ix.checkIO()
}

// Owner implements index.Relocator.
func (ix *Index) Owner(p nand.PPA) (uint64, bool) {
	u, ok := ix.live[p]
	return u, ok
}

// Relocate implements index.Relocator.
func (ix *Index) Relocate(unit uint64) error {
	pg, err := ix.loadPage(unitLevel(unit), unitPage(unit))
	if err != nil {
		return err
	}
	if err := ix.writePage(unit, pg); err != nil {
		return err
	}
	return ix.checkIO()
}

// IndexStats implements index.StatsProvider.
func (ix *Index) IndexStats() index.Stats {
	dirEntries := 0
	for _, d := range ix.dirs {
		dirEntries += len(d)
	}
	return index.Stats{
		Records:    ix.n,
		Collisions: ix.collisions,
		DirEntries: dirEntries,
		DRAMBytes:  int64(dirEntries)*5 + ix.cache.Used(),
		Cache:      ix.cache.Stats(),
	}
}

// CacheStats exposes cache counters (Fig. 5a).
func (ix *Index) CacheStats() dram.Stats { return ix.cache.Stats() }

// ResetCacheStats zeroes cache counters between experiment phases.
func (ix *Index) ResetCacheStats() { ix.cache.ResetStats() }

// ResizeCache implements index.CacheResizer, adjusting the DRAM budget
// for cached pages at runtime (dirty entries evicted by a shrink are
// written back through the usual path).
func (ix *Index) ResizeCache(budget int64) { ix.cache.Resize(budget) }
