package mlhash

import "encoding/binary"

// page is one cached index page held as raw on-flash bytes: slots of
// {sig:8, ppa:5}. Clean pages alias the flash array's storage (zero
// copy); the first mutation copies the buffer (owned=true). Keeping the
// wire format avoids per-load decoding, which dominates replay cost when
// the cache thrashes.
type page struct {
	buf   []byte
	dirty bool
	owned bool
}

func (pg *page) slots() int { return len(pg.buf) / SlotSize }

// find returns the byte offset of sig's slot, or -1.
func (pg *page) find(sig uint64) int {
	for off := 0; off+SlotSize <= len(pg.buf); off += SlotSize {
		if binary.LittleEndian.Uint64(pg.buf[off:]) == sig && readPPA(pg.buf[off+8:]) != emptyPPA {
			return off
		}
	}
	return -1
}

// findFree returns the byte offset of a vacant slot, or -1.
func (pg *page) findFree() int {
	for off := 0; off+SlotSize <= len(pg.buf); off += SlotSize {
		if readPPA(pg.buf[off+8:]) == emptyPPA {
			return off
		}
	}
	return -1
}

func (pg *page) ppaAt(off int) uint64 { return readPPA(pg.buf[off+8:]) }

// own ensures the buffer is private before mutation, drawing scratch
// space from the index's buffer pool.
func (pg *page) own(ix *Index) {
	if pg.owned {
		return
	}
	buf := ix.getBuf()
	copy(buf, pg.buf)
	pg.buf = buf
	pg.owned = true
}

// setSlot writes a record at the given byte offset (page must be owned).
func (pg *page) setSlot(off int, sig, ppa uint64) {
	binary.LittleEndian.PutUint64(pg.buf[off:], sig)
	writePPA(pg.buf[off+8:], ppa)
}

func readPPA(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32
}

func writePPA(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
}

// getBuf takes a page buffer from the pool (or allocates one), with
// every slot vacant only when freshly allocated via newEmptyPage.
func (ix *Index) getBuf() []byte {
	if n := len(ix.bufPool); n > 0 {
		buf := ix.bufPool[n-1]
		ix.bufPool = ix.bufPool[:n-1]
		return buf
	}
	return make([]byte, ix.slots*SlotSize)
}

// putBuf recycles an owned buffer after its page left the cache.
func (ix *Index) putBuf(buf []byte) {
	if len(ix.bufPool) < 64 {
		ix.bufPool = append(ix.bufPool, buf)
	}
}

// newEmptyPage returns an owned page with every slot vacant.
func (ix *Index) newEmptyPage() *page {
	buf := ix.getBuf()
	copy(buf, ix.emptyImage)
	return &page{buf: buf, owned: true}
}
