// Package trace synthesizes and replays IBM Cloud Object Store-style KV
// traces. The paper replays eight production clusters (Fig. 5) whose
// defining property is the size of the index they induce relative to the
// 10 MB FTL cache budget: four need far less (022, 026, 052, 072), two
// sit near the boundary (001, 081), and two far exceed it (083, 096).
// The originals are not redistributable, so Synthesize generates traces
// matching exactly those knobs — unique-key cardinality, read/write mix,
// and Zipfian reuse — which are what drive the cache-miss and
// flash-read-per-lookup results. The text format round-trips through
// Writer/Reader for use with cmd/tracegen.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Record is one trace operation.
type Record struct {
	Op        workload.OpKind
	KeyID     uint64
	ValueSize int
}

// Key renders the record's 16-byte key.
func (r Record) Key() []byte { return workload.KeyBytes(r.KeyID) }

// ClusterSpec describes one synthetic cluster.
type ClusterSpec struct {
	Name       string
	UniqueKeys int     // unique objects -> index cardinality
	AccessOps  int     // operations after the initial fill
	ReadFrac   float64 // fraction of accesses that are GETs
	Theta      float64 // Zipfian skew of the access phase
	ValueSize  int     // object payload size
}

// IndexBytesPerKey is the record-layer cost per key (Eq. 1 slot size);
// UniqueKeys × this against the 10 MB cache budget is what separates the
// small, boundary and large clusters.
const IndexBytesPerKey = 17

// IndexBytes reports the cluster's induced index size.
func (c ClusterSpec) IndexBytes() int64 { return int64(c.UniqueKeys) * IndexBytesPerKey }

// Clusters lists the eight Fig. 5 clusters in paper order. Cardinalities
// are scaled to emulator size while preserving each cluster's ratio of
// index size to the 10 MB cache budget (≪1, ≈1, or ≫1).
func Clusters() []ClusterSpec {
	return []ClusterSpec{
		{Name: "001", UniqueKeys: 500_000, AccessOps: 750_000, ReadFrac: 0.80, Theta: 0.90, ValueSize: 64},
		{Name: "022", UniqueKeys: 40_000, AccessOps: 120_000, ReadFrac: 0.90, Theta: 0.95, ValueSize: 64},
		{Name: "026", UniqueKeys: 60_000, AccessOps: 150_000, ReadFrac: 0.70, Theta: 0.90, ValueSize: 64},
		{Name: "052", UniqueKeys: 100_000, AccessOps: 200_000, ReadFrac: 0.85, Theta: 0.85, ValueSize: 64},
		{Name: "072", UniqueKeys: 150_000, AccessOps: 250_000, ReadFrac: 0.60, Theta: 0.90, ValueSize: 64},
		{Name: "081", UniqueKeys: 750_000, AccessOps: 1_000_000, ReadFrac: 0.75, Theta: 0.85, ValueSize: 64},
		{Name: "083", UniqueKeys: 2_000_000, AccessOps: 2_000_000, ReadFrac: 0.80, Theta: 0.80, ValueSize: 48},
		{Name: "096", UniqueKeys: 2_800_000, AccessOps: 2_500_000, ReadFrac: 0.90, Theta: 0.75, ValueSize: 48},
	}
}

// Cluster returns the spec with the given name.
func Cluster(name string) (ClusterSpec, error) {
	for _, c := range Clusters() {
		if c.Name == name {
			return c, nil
		}
	}
	return ClusterSpec{}, fmt.Errorf("trace: unknown cluster %q", name)
}

// Synthesize generates the cluster's trace: a fill phase storing every
// unique key once, then AccessOps operations with Zipfian reuse and the
// configured read fraction (non-reads split between updates and the
// occasional delete-and-reinsert).
func Synthesize(spec ClusterSpec, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, spec.UniqueKeys+spec.AccessOps)
	for i := 0; i < spec.UniqueKeys; i++ {
		recs = append(recs, Record{Op: workload.OpStore, KeyID: uint64(i), ValueSize: spec.ValueSize})
	}
	z := workload.NewZipfian(uint64(spec.UniqueKeys), spec.Theta, seed+1)
	for i := 0; i < spec.AccessOps; i++ {
		id := z.NextID()
		u := rng.Float64()
		switch {
		case u < spec.ReadFrac:
			recs = append(recs, Record{Op: workload.OpRetrieve, KeyID: id})
		case u < spec.ReadFrac+(1-spec.ReadFrac)*0.9:
			recs = append(recs, Record{Op: workload.OpStore, KeyID: id, ValueSize: spec.ValueSize})
		default:
			recs = append(recs, Record{Op: workload.OpExist, KeyID: id})
		}
	}
	return recs
}

// opToken maps operation kinds to the trace file tokens (REST-flavored,
// echoing the IBM COS trace style).
func opToken(k workload.OpKind) string {
	switch k {
	case workload.OpStore:
		return "PUT"
	case workload.OpRetrieve:
		return "GET"
	case workload.OpDelete:
		return "DELETE"
	case workload.OpExist:
		return "HEAD"
	default:
		return "?"
	}
}

func tokenOp(s string) (workload.OpKind, error) {
	switch s {
	case "PUT":
		return workload.OpStore, nil
	case "GET":
		return workload.OpRetrieve, nil
	case "DELETE":
		return workload.OpDelete, nil
	case "HEAD":
		return workload.OpExist, nil
	default:
		return 0, fmt.Errorf("trace: unknown op token %q", s)
	}
}

// Write streams records in the text format: "<OP> <keyID> <size>\n".
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", opToken(r.Op), r.KeyID, r.ValueSize); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(fields))
		}
		op, err := tokenOp(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: key id: %w", line, err)
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil || size < 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", line, fields[2])
		}
		recs = append(recs, Record{Op: op, KeyID: id, ValueSize: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
