package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestClustersMatchFig5Regimes(t *testing.T) {
	// The experiment's driver: four clusters need far less index than the
	// 10 MB cache, two sit near it, two far exceed it.
	const cacheBudget = 10 << 20
	regimes := map[string]string{
		"022": "small", "026": "small", "052": "small", "072": "small",
		"001": "boundary", "081": "boundary",
		"083": "large", "096": "large",
	}
	for _, c := range Clusters() {
		ratio := float64(c.IndexBytes()) / cacheBudget
		switch regimes[c.Name] {
		case "small":
			if ratio > 0.5 {
				t.Errorf("cluster %s index/cache ratio %.2f, want < 0.5", c.Name, ratio)
			}
		case "boundary":
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("cluster %s ratio %.2f, want ~1", c.Name, ratio)
			}
		case "large":
			if ratio < 2.5 {
				t.Errorf("cluster %s ratio %.2f, want >> 1", c.Name, ratio)
			}
		default:
			t.Errorf("cluster %s missing from regime table", c.Name)
		}
	}
}

func TestClusterLookup(t *testing.T) {
	c, err := Cluster("083")
	if err != nil || c.Name != "083" {
		t.Fatalf("Cluster(083) = (%+v, %v)", c, err)
	}
	if _, err := Cluster("999"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestSynthesizeShape(t *testing.T) {
	spec := ClusterSpec{Name: "t", UniqueKeys: 1000, AccessOps: 5000,
		ReadFrac: 0.8, Theta: 0.9, ValueSize: 64}
	recs := Synthesize(spec, 1)
	if len(recs) != 6000 {
		t.Fatalf("got %d records", len(recs))
	}
	// Fill phase first: every unique key stored once.
	seen := map[uint64]bool{}
	for _, r := range recs[:1000] {
		if r.Op != workload.OpStore {
			t.Fatal("fill phase contains non-stores")
		}
		if seen[r.KeyID] {
			t.Fatal("fill phase repeats a key")
		}
		seen[r.KeyID] = true
	}
	// Access phase: read fraction near spec, all keys within range.
	reads := 0
	for _, r := range recs[1000:] {
		if r.KeyID >= 1000 {
			t.Fatalf("key %d out of range", r.KeyID)
		}
		if r.Op == workload.OpRetrieve {
			reads++
		}
	}
	frac := float64(reads) / 5000
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction %.3f, want ~0.8", frac)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec, _ := Cluster("022")
	spec.UniqueKeys = 500
	spec.AccessOps = 500
	a := Synthesize(spec, 7)
	b := Synthesize(spec, 7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: workload.OpStore, KeyID: 1, ValueSize: 100},
		{Op: workload.OpRetrieve, KeyID: 2},
		{Op: workload.OpDelete, KeyID: 3},
		{Op: workload.OpExist, KeyID: 4},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nPUT 5 10\n  \nGET 5 0\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"PUT 5\n",     // missing field
		"FROB 5 10\n", // unknown op
		"PUT x 10\n",  // bad key
		"PUT 5 -1\n",  // negative size
		"PUT 5 ten\n", // bad size
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ids []uint32, kinds []uint8) bool {
		n := len(ids)
		if len(kinds) < n {
			n = len(kinds)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Op:        workload.OpKind(kinds[i] % 4),
				KeyID:     uint64(ids[i]),
				ValueSize: int(ids[i] % 4096),
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordKeyIs16Bytes(t *testing.T) {
	if len((Record{KeyID: 9}).Key()) != 16 {
		t.Fatal("trace keys must be the canonical 16 bytes")
	}
}
