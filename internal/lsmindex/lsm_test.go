package lsmindex

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// memEnv mirrors the in-memory environment of the other index tests.
type memEnv struct {
	clock       sim.Clock
	pages       map[nand.PPA][]byte
	next        nand.PPA
	reads       int64
	invalidated map[nand.PPA]bool
}

func newMemEnv() *memEnv {
	return &memEnv{pages: make(map[nand.PPA][]byte), invalidated: make(map[nand.PPA]bool)}
}

func (e *memEnv) ReadPage(p nand.PPA) ([]byte, error) {
	data, ok := e.pages[p]
	if !ok {
		return nil, fmt.Errorf("memEnv: page %d absent", p)
	}
	e.reads++
	e.clock.Advance(60 * sim.Microsecond)
	return data, nil
}

func (e *memEnv) AppendPage(data []byte) (nand.PPA, error) {
	p := e.next
	e.next++
	e.pages[p] = append([]byte(nil), data...)
	e.clock.Advance(700 * sim.Microsecond)
	return p, nil
}

func (e *memEnv) Invalidate(p nand.PPA) {
	e.invalidated[p] = true
	delete(e.pages, p)
}

func (e *memEnv) ChargeCPU(d sim.Duration) { e.clock.Advance(d) }
func (e *memEnv) MetaReads() int64         { return e.reads }
func (e *memEnv) Now() sim.Time            { return e.clock.Now() }

func sig64(lo uint64) index.Sig { return index.Sig{Lo: lo} }

func newTestLSM(t *testing.T, cfg Config) (*Index, *memEnv) {
	t.Helper()
	env := newMemEnv()
	if cfg.PageSize == 0 {
		cfg.PageSize = 1024
	}
	ix, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	return ix, env
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{PageSize: 4}, newMemEnv()); err == nil {
		t.Fatal("accepted tiny page")
	}
	if _, err := New(Config{PageSize: 1024, MaxRuns: -1}, newMemEnv()); err == nil {
		t.Fatal("accepted negative MaxRuns")
	}
}

func TestBasicOps(t *testing.T) {
	ix, _ := newTestLSM(t, Config{})
	if _, rep, err := ix.Insert(sig64(1), 10); err != nil || rep {
		t.Fatalf("insert = (%v,%v)", rep, err)
	}
	rp, ok, err := ix.Lookup(sig64(1))
	if err != nil || !ok || rp != 10 {
		t.Fatalf("lookup = (%d,%v,%v)", rp, ok, err)
	}
	old, rep, err := ix.Insert(sig64(1), 20)
	if err != nil || !rep || old != 10 {
		t.Fatalf("update = (%d,%v,%v)", old, rep, err)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	rp, ok, err = ix.Delete(sig64(1))
	if err != nil || !ok || rp != 20 {
		t.Fatalf("delete = (%d,%v,%v)", rp, ok, err)
	}
	if _, ok, _ := ix.Lookup(sig64(1)); ok {
		t.Fatal("deleted key found")
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestFlushAndColdLookup(t *testing.T) {
	ix, _ := newTestLSM(t, Config{MemtableRecords: 64})
	rng := rand.New(rand.NewSource(1))
	want := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		lo := rng.Uint64()
		rp := uint64(i + 1)
		if _, _, err := ix.Insert(sig64(lo), rp); err != nil {
			t.Fatal(err)
		}
		want[lo] = rp
	}
	if ix.Runs() == 0 {
		t.Fatal("no runs flushed")
	}
	for lo, rp := range want {
		got, ok, err := ix.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
}

func TestCompactionBoundsRuns(t *testing.T) {
	ix, env := newTestLSM(t, Config{MemtableRecords: 32, MaxRuns: 3})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if _, _, err := ix.Insert(sig64(rng.Uint64()), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Runs() > 3 {
		t.Fatalf("runs = %d, want <= 3", ix.Runs())
	}
	if ix.Compactions() == 0 {
		t.Fatal("no compactions")
	}
	if len(env.invalidated) == 0 {
		t.Fatal("compaction did not invalidate superseded pages")
	}
}

func TestTombstonesSurviveFlushUntilCompaction(t *testing.T) {
	ix, _ := newTestLSM(t, Config{MemtableRecords: 16, MaxRuns: 8})
	// Insert, flush, delete, flush: the tombstone lives in a newer run
	// and must shadow the older record.
	for i := uint64(0); i < 16; i++ {
		ix.Insert(sig64(i), i+1)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ix.Delete(sig64(5)); !ok {
		t.Fatal("delete failed")
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ix.Lookup(sig64(5)); ok {
		t.Fatal("tombstone did not shadow older record")
	}
	// Compaction drops both.
	if err := ix.compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ix.Lookup(sig64(5)); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
	if rp, ok, _ := ix.Lookup(sig64(6)); !ok || rp != 7 {
		t.Fatalf("live key lost by compaction: (%d,%v)", rp, ok)
	}
}

func TestLookupCostGrowsWithRuns(t *testing.T) {
	// The paper's criticism: without knowing which run holds a record, a
	// lookup may read a page per run.
	ix, env := newTestLSM(t, Config{MemtableRecords: 32, MaxRuns: 8, CacheBudget: 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ix.Insert(sig64(rng.Uint64()), 1)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if ix.Runs() < 3 {
		t.Fatalf("runs = %d, want >= 3", ix.Runs())
	}
	before := env.MetaReads()
	ix.Lookup(sig64(1 << 63)) // absent mid-range key: probes every run
	reads := env.MetaReads() - before
	if reads < 2 {
		t.Fatalf("absent-key lookup read %d pages, want >= 2 across runs", reads)
	}
}

func TestRelocate(t *testing.T) {
	ix, env := newTestLSM(t, Config{MemtableRecords: 32})
	rng := rand.New(rand.NewSource(4))
	want := map[uint64]uint64{}
	for i := 0; i < 100; i++ {
		lo := rng.Uint64()
		ix.Insert(sig64(lo), uint64(i+1))
		want[lo] = uint64(i + 1)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	var victim nand.PPA
	var unit uint64
	found := false
	for p := range env.pages {
		if u, live := ix.Owner(p); live {
			victim, unit, found = p, u, true
			break
		}
	}
	if !found {
		t.Fatal("no live pages")
	}
	if err := ix.Relocate(unit); err != nil {
		t.Fatal(err)
	}
	if !env.invalidated[victim] {
		t.Fatal("old page not invalidated")
	}
	for lo, rp := range want {
		got, ok, err := ix.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("record lost after relocation: (%d,%v,%v)", got, ok, err)
		}
	}
}

func TestOracleProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		ix, _ := newTestLSM(t, Config{MemtableRecords: 16, MaxRuns: 3, CacheBudget: 2048})
		rng := rand.New(rand.NewSource(seed))
		oracle := map[uint64]uint64{}
		keys := []uint64{}
		for _, k := range ops {
			var lo uint64
			if len(keys) > 0 && k%2 == 0 {
				lo = keys[rng.Intn(len(keys))]
			} else {
				lo = rng.Uint64()
			}
			switch k % 3 {
			case 0:
				rp := rng.Uint64() % (1 << 39)
				if _, _, err := ix.Insert(sig64(lo), rp); err != nil {
					return false
				}
				if _, dup := oracle[lo]; !dup {
					keys = append(keys, lo)
				}
				oracle[lo] = rp
			case 1:
				got, ok, err := ix.Lookup(sig64(lo))
				want, exists := oracle[lo]
				if err != nil || ok != exists || (ok && got != want) {
					return false
				}
			case 2:
				_, ok, err := ix.Delete(sig64(lo))
				_, exists := oracle[lo]
				if err != nil || ok != exists {
					return false
				}
				delete(oracle, lo)
			}
		}
		if ix.Len() != int64(len(oracle)) {
			return false
		}
		for lo, want := range oracle {
			got, ok, err := ix.Lookup(sig64(lo))
			if err != nil || !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	ix, _ := newTestLSM(t, Config{MemtableRecords: 32})
	for i := uint64(0); i < 100; i++ {
		ix.Insert(sig64(i), i+1)
	}
	s := ix.IndexStats()
	if s.Records != 100 {
		t.Fatalf("records = %d", s.Records)
	}
	if s.DRAMBytes <= 0 {
		t.Fatal("no DRAM accounted")
	}
	if ix.Name() != "lsm" {
		t.Fatal("wrong name")
	}
}
