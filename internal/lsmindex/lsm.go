// Package lsmindex implements the LSM-tree-based KVSSD index the paper
// positions RHIK against (§II-B): the design direction of LSM-tree FTLs
// [16] and PinK [5]. Records accumulate in a DRAM memtable; flushes emit
// sorted runs onto flash, each with a DRAM-pinned fence index (PinK's
// "pin levels in DRAM, no Bloom filters"), and runs are merged by full
// compaction when too many accumulate.
//
// A lookup searches the memtable, then each run from newest to oldest:
// the fence index locates the exact page (one binary search in DRAM),
// but the page itself costs a flash read — so a lookup costs up to
// #runs flash reads, and even the steady-state single run still needs
// its read plus the binary searches the paper calls out. This is the
// contrast to RHIK's at-most-one-read guarantee.
package lsmindex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// SlotSize is one record on flash: signature (8) + record pointer (5).
const SlotSize = 8 + 5

// tombstoneRP marks a deletion record inside runs.
const tombstoneRP = 1<<40 - 1

// memRecBytes is the accounted DRAM cost of one memtable record:
// signature (8) + record pointer (8, the map value slot). The memtable
// pays this against CacheBudget like every other DRAM consumer.
const memRecBytes = 16

// Config parameterizes the LSM index.
type Config struct {
	// PageSize is the flash page size (run granularity).
	PageSize int
	// MemtableRecords flushes the memtable when it holds this many
	// records (default: one page worth ×4).
	MemtableRecords int
	// MaxRuns triggers a full compaction when exceeded (default 4).
	MaxRuns int
	// CacheBudget bounds DRAM for run pages read from flash.
	CacheBudget int64
	// CPUPerCompare models one binary-search comparison step.
	CPUPerCompare sim.Duration
}

func (c *Config) applyDefaults() {
	if c.MemtableRecords == 0 {
		c.MemtableRecords = 4 * (c.PageSize / SlotSize)
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 4
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 10 << 20
	}
	if c.CPUPerCompare == 0 {
		c.CPUPerCompare = 50 * sim.Nanosecond
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.PageSize < 2*SlotSize {
		return fmt.Errorf("lsmindex: page size %d too small", c.PageSize)
	}
	if c.MaxRuns < 1 {
		return fmt.Errorf("lsmindex: max runs %d < 1", c.MaxRuns)
	}
	return nil
}

// rec is one signature→pointer record.
type rec struct {
	sig uint64
	rp  uint64 // tombstoneRP encodes a delete
}

// ownerRef locates a live flash page within its run.
type ownerRef struct {
	r  *run
	pi int
}

// run is one immutable sorted run on flash.
type run struct {
	pages  []nand.PPA // page addresses, in key order
	fences []uint64   // first signature of each page (DRAM-pinned)
	counts []int      // records per page
}

// Index is the LSM-tree index. Not safe for concurrent use.
type Index struct {
	cfg Config
	env index.Env

	mem    map[uint64]uint64   // memtable: sig -> rp (tombstoneRP = delete)
	runs   []*run              // newest first
	cache  *dram.Cache[[]byte] // page cache for run pages
	owners map[nand.PPA]ownerRef

	n           int64 // live records (net of tombstones)
	flushes     int64
	compactions int64
	ioErr       error
}

var _ index.Index = (*Index)(nil)
var _ index.SharedReader = (*Index)(nil)
var _ index.Relocator = (*Index)(nil)
var _ index.StatsProvider = (*Index)(nil)
var _ index.PrefixScanner = (*Index)(nil)

// New builds an LSM index over the environment.
func New(cfg Config, env index.Env) (*Index, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:    cfg,
		env:    env,
		mem:    make(map[uint64]uint64),
		owners: make(map[nand.PPA]ownerRef),
	}
	ix.cache = dram.New[[]byte](cfg.CacheBudget, nil) // run pages are immutable: no write-back
	return ix, nil
}

// Name implements index.Index.
func (ix *Index) Name() string { return "lsm" }

// Len implements index.Index.
func (ix *Index) Len() int64 { return ix.n }

// Runs reports the current run count (lookup cost bound).
func (ix *Index) Runs() int { return len(ix.runs) }

// recsPerPage is the run page fan-out.
func (ix *Index) recsPerPage() int { return ix.cfg.PageSize / SlotSize }

func (ix *Index) checkIO() error {
	if ix.ioErr != nil {
		err := ix.ioErr
		ix.ioErr = nil
		return err
	}
	return nil
}

// Insert implements index.Index.
func (ix *Index) Insert(sig index.Sig, rp uint64) (old uint64, replaced bool, err error) {
	ix.env.ChargeCPU(ix.cfg.CPUPerCompare * 8)
	old, replaced, err = ix.lookupAll(sig.Lo)
	if err != nil {
		return 0, false, err
	}
	ix.mem[sig.Lo] = rp
	if !replaced {
		ix.n++
	}
	if err := ix.chargeMemtable(); err != nil {
		return old, replaced, err
	}
	return old, replaced, ix.checkIO()
}

// Lookup implements index.Index.
func (ix *Index) Lookup(sig index.Sig) (uint64, bool, error) {
	ix.env.ChargeCPU(ix.cfg.CPUPerCompare * 8)
	rp, ok, err := ix.lookupAll(sig.Lo)
	if err != nil {
		return 0, false, err
	}
	return rp, ok, ix.checkIO()
}

// lookupAll searches memtable then runs newest-to-oldest.
func (ix *Index) lookupAll(sigLo uint64) (uint64, bool, error) {
	if rp, ok := ix.mem[sigLo]; ok {
		if rp == tombstoneRP {
			return 0, false, nil
		}
		return rp, true, nil
	}
	for _, r := range ix.runs {
		rp, found, err := ix.searchRun(r, sigLo)
		if err != nil {
			return 0, false, err
		}
		if found {
			if rp == tombstoneRP {
				return 0, false, nil
			}
			return rp, true, nil
		}
	}
	return 0, false, nil
}

// searchRun binary-searches the DRAM fence index, then the one candidate
// page (a flash read unless cached).
func (ix *Index) searchRun(r *run, sigLo uint64) (uint64, bool, error) {
	if len(r.pages) == 0 {
		return 0, false, nil
	}
	// Fence search in DRAM.
	ix.env.ChargeCPU(ix.cfg.CPUPerCompare * sim.Duration(bits(len(r.fences))))
	pi := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > sigLo }) - 1
	if pi < 0 {
		return 0, false, nil
	}
	data, err := ix.loadRunPage(r, pi)
	if err != nil {
		return 0, false, err
	}
	// Binary search within the page.
	n := r.counts[pi]
	ix.env.ChargeCPU(ix.cfg.CPUPerCompare * sim.Duration(bits(n)))
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		s := binary.LittleEndian.Uint64(data[mid*SlotSize:])
		switch {
		case s == sigLo:
			return readRP(data[mid*SlotSize+8:]), true, nil
		case s < sigLo:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false, nil
}

func (ix *Index) loadRunPage(r *run, pi int) ([]byte, error) {
	ppa := r.pages[pi]
	if data, ok := ix.cache.Get(uint64(ppa)); ok {
		return data, nil
	}
	data, err := ix.env.ReadPage(ppa)
	if err != nil {
		return nil, err
	}
	ix.cache.Put(uint64(ppa), data, int64(len(data)))
	return data, nil
}

// Delete implements index.Index: a memtable tombstone.
func (ix *Index) Delete(sig index.Sig) (uint64, bool, error) {
	ix.env.ChargeCPU(ix.cfg.CPUPerCompare * 8)
	rp, ok, err := ix.lookupAll(sig.Lo)
	if err != nil || !ok {
		return 0, false, err
	}
	ix.mem[sig.Lo] = tombstoneRP
	ix.n--
	if err := ix.chargeMemtable(); err != nil {
		return rp, true, err
	}
	return rp, true, ix.checkIO()
}

// Exist implements index.Index.
func (ix *Index) Exist(sig index.Sig) (bool, error) {
	_, ok, err := ix.Lookup(sig)
	return ok, err
}

// SharedLookupReady implements index.SharedReader. A lookup can run under
// the shard read lock when it cannot trigger a run-page load: either the
// memtable answers directly, or every run's one candidate page (located
// by the same fence search the lookup performs, replayed here without
// CPU charges) is DRAM-resident. Conservative: a hit in a newer run would
// stop the search early, but we require all candidates cached anyway.
func (ix *Index) SharedLookupReady(sig index.Sig) bool {
	if ix.ioErr != nil {
		return false
	}
	if _, ok := ix.mem[sig.Lo]; ok {
		return true
	}
	for _, r := range ix.runs {
		if len(r.pages) == 0 {
			continue
		}
		pi := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > sig.Lo }) - 1
		if pi < 0 {
			continue
		}
		if !ix.cache.Contains(uint64(r.pages[pi])) {
			return false
		}
	}
	return true
}

// PrefixRecords implements index.PrefixScanner, giving the LSM index
// prefix-iteration parity with RHIK for the cross-engine shootout. Runs
// are sorted by full signature — whose HIGH bits hash the key suffix —
// so prefix-sharing keys (equal LOW 32 bits) are scattered across every
// run and the scan must sweep the memtable plus each run page in order:
// a flash read per uncached page, versus RHIK's single-bucket read. That
// cost gap is real, not an artifact, and the shootout reports it.
// Newest version wins; tombstoned records are excluded.
func (ix *Index) PrefixRecords(low uint32) ([]uint64, error) {
	seen := make(map[uint64]struct{})
	var out []uint64
	add := func(sig, rp uint64) {
		if uint32(sig) != low {
			return
		}
		if _, dup := seen[sig]; dup {
			return
		}
		seen[sig] = struct{}{}
		if rp != tombstoneRP {
			out = append(out, rp)
		}
	}
	// Memtable first (newest), in sorted signature order: map iteration
	// order would otherwise vary run-to-run and perturb nothing here (no
	// IO), but deterministic enumeration is part of the contract.
	sigs := make([]uint64, 0, len(ix.mem))
	for s := range ix.mem {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	for _, s := range sigs {
		add(s, ix.mem[s])
	}
	for _, r := range ix.runs { // newest first
		for pi := range r.pages {
			data, err := ix.loadRunPage(r, pi)
			if err != nil {
				return nil, err
			}
			ix.env.ChargeCPU(ix.cfg.CPUPerCompare * sim.Duration(r.counts[pi]))
			for k := 0; k < r.counts[pi]; k++ {
				add(binary.LittleEndian.Uint64(data[k*SlotSize:]), readRP(data[k*SlotSize+8:]))
			}
		}
	}
	return out, ix.checkIO()
}

// memBytes is the memtable's current DRAM charge.
func (ix *Index) memBytes() int64 { return int64(len(ix.mem)) * memRecBytes }

// chargeMemtable makes the memtable pay for its DRAM out of the same
// CacheBudget that bounds the run-page cache: the page cache shrinks to
// the remainder (evicting pages as needed), and the memtable flushes
// early once it alone would hold more than half the budget — so a small
// CacheBudget can no longer shelter an uncharged ~10k-record memtable,
// which flattered the LSM against the budget-bounded hash indexes.
func (ix *Index) chargeMemtable() error {
	if len(ix.mem) >= ix.cfg.MemtableRecords || ix.memBytes()*2 > ix.cfg.CacheBudget {
		if err := ix.flushMemtable(); err != nil {
			return err
		}
	}
	ix.resizePageCache()
	return nil
}

// resizePageCache gives the run-page cache whatever DRAM the memtable's
// charge leaves of CacheBudget.
func (ix *Index) resizePageCache() {
	b := ix.cfg.CacheBudget - ix.memBytes()
	if b < 0 {
		b = 0
	}
	ix.cache.Resize(b)
}

// flushMemtable emits the memtable as a new sorted run, compacting when
// the run count exceeds the bound.
func (ix *Index) flushMemtable() error {
	if len(ix.mem) == 0 {
		return nil
	}
	recs := make([]rec, 0, len(ix.mem))
	for s, rp := range ix.mem {
		recs = append(recs, rec{sig: s, rp: rp})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].sig < recs[j].sig })
	r, err := ix.writeRun(recs, true)
	if err != nil {
		return err
	}
	ix.mem = make(map[uint64]uint64)
	ix.runs = append([]*run{r}, ix.runs...)
	ix.flushes++
	if len(ix.runs) > ix.cfg.MaxRuns {
		return ix.compact()
	}
	return nil
}

// writeRun serializes sorted records into run pages. keepTombstones
// controls whether delete markers survive (they must until the oldest
// run is rewritten).
func (ix *Index) writeRun(recs []rec, keepTombstones bool) (*run, error) {
	if !keepTombstones {
		filtered := recs[:0]
		for _, rc := range recs {
			if rc.rp != tombstoneRP {
				filtered = append(filtered, rc)
			}
		}
		recs = filtered
	}
	r := &run{}
	per := ix.recsPerPage()
	buf := make([]byte, 0, ix.cfg.PageSize)
	for off := 0; off < len(recs); off += per {
		end := off + per
		if end > len(recs) {
			end = len(recs)
		}
		buf = buf[:0]
		for _, rc := range recs[off:end] {
			var slot [SlotSize]byte
			binary.LittleEndian.PutUint64(slot[:8], rc.sig)
			writeRP(slot[8:], rc.rp)
			buf = append(buf, slot[:]...)
		}
		ppa, err := ix.env.AppendPage(buf)
		if err != nil {
			return nil, err
		}
		r.pages = append(r.pages, ppa)
		r.fences = append(r.fences, recs[off].sig)
		r.counts = append(r.counts, end-off)
		ix.owners[ppa] = ownerRef{r: r, pi: len(r.pages) - 1}
	}
	return r, nil
}

// compact merges every run (newest wins) into a single run, dropping
// tombstones, and invalidates all superseded pages.
func (ix *Index) compact() error {
	merged := make(map[uint64]uint64)
	for i := len(ix.runs) - 1; i >= 0; i-- { // oldest first; newer overwrite
		r := ix.runs[i]
		for pi := range r.pages {
			data, err := ix.loadRunPage(r, pi)
			if err != nil {
				return err
			}
			for k := 0; k < r.counts[pi]; k++ {
				sig := binary.LittleEndian.Uint64(data[k*SlotSize:])
				merged[sig] = readRP(data[k*SlotSize+8:])
			}
		}
	}
	recs := make([]rec, 0, len(merged))
	for s, rp := range merged {
		recs = append(recs, rec{sig: s, rp: rp})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].sig < recs[j].sig })

	old := ix.runs
	newRun, err := ix.writeRun(recs, false)
	if err != nil {
		return err
	}
	for _, r := range old {
		for _, ppa := range r.pages {
			ix.env.Invalidate(ppa)
			ix.cache.Remove(uint64(ppa))
			delete(ix.owners, ppa)
		}
	}
	ix.runs = []*run{newRun}
	ix.compactions++
	return nil
}

// Flush implements index.Index: persist the memtable as a run.
func (ix *Index) Flush() error {
	if err := ix.flushMemtable(); err != nil {
		return err
	}
	return ix.checkIO()
}

// Owner implements index.Relocator: the unit is the page address
// itself, resolved through the owner map on relocation.
func (ix *Index) Owner(p nand.PPA) (uint64, bool) {
	_, ok := ix.owners[p]
	return uint64(p), ok
}

// Relocate implements index.Relocator: rewrite the identified page to a
// fresh flash location and repoint its run.
func (ix *Index) Relocate(unit uint64) error {
	ppa := nand.PPA(unit)
	ref, ok := ix.owners[ppa]
	if !ok {
		return nil // already superseded
	}
	data, err := ix.loadRunPage(ref.r, ref.pi)
	if err != nil {
		return err
	}
	newPPA, err := ix.env.AppendPage(data)
	if err != nil {
		return err
	}
	ix.env.Invalidate(ppa)
	ix.cache.Remove(uint64(ppa))
	delete(ix.owners, ppa)
	ref.r.pages[ref.pi] = newPPA
	ix.owners[newPPA] = ref
	return nil
}

// IndexStats implements index.StatsProvider.
func (ix *Index) IndexStats() index.Stats {
	fences := 0
	for _, r := range ix.runs {
		fences += len(r.fences)
	}
	return index.Stats{
		Records:    ix.n,
		DirEntries: fences,
		DRAMBytes:  int64(fences*8) + ix.memBytes() + ix.cache.Used(),
		Cache:      ix.cache.Stats(),
	}
}

// Compactions reports how many full merges have run.
func (ix *Index) Compactions() int64 { return ix.compactions }

// Flushes reports how many memtable flushes have emitted a run.
func (ix *Index) Flushes() int64 { return ix.flushes }

func readRP(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32
}

func writeRP(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
}

// bits is a small ceil(log2) helper for comparison-cost accounting.
func bits(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// ResizeCache implements index.CacheResizer, adjusting the total index
// DRAM budget at runtime. The memtable's charge comes off the top; the
// run-page cache gets the remainder (run pages are clean, so a shrink
// just drops them).
func (ix *Index) ResizeCache(budget int64) {
	ix.cfg.CacheBudget = budget
	ix.resizePageCache()
}
