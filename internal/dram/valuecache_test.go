package dram

import (
	"fmt"
	"sync"
	"testing"
)

func TestValueCacheLookupInsertInvalidate(t *testing.T) {
	vc := NewValueCache(1 << 20)
	key, val := []byte("user:1"), []byte("profile")
	if _, ok := vc.Lookup(11, key); ok {
		t.Fatal("hit on empty cache")
	}
	vc.Insert(vc.Gen(11), 11, key, val)
	v, ok := vc.Lookup(11, key)
	if !ok || string(v) != "profile" {
		t.Fatalf("Lookup = (%q,%v)", v, ok)
	}
	// Same low bucket bits, different key: full-key verify must miss.
	if _, ok := vc.Lookup(11, []byte("user:2")); ok {
		t.Fatal("hit on wrong key")
	}
	vc.Invalidate(11, key)
	if _, ok := vc.Lookup(11, key); ok {
		t.Fatal("hit after invalidation")
	}
	s := vc.Stats()
	if s.Hits != 1 || s.Invalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestValueCacheInsertCopies(t *testing.T) {
	vc := NewValueCache(1 << 20)
	key, val := []byte("k"), []byte("abc")
	vc.Insert(vc.Gen(1), 1, key, val)
	val[0] = 'X' // caller reuses its buffer
	v, ok := vc.Lookup(1, key)
	if !ok || string(v) != "abc" {
		t.Fatalf("cached value aliased the caller's buffer: %q", v)
	}
}

func TestValueCacheGenRefusesStaleInsert(t *testing.T) {
	vc := NewValueCache(1 << 20)
	key := []byte("k")
	gen := vc.Gen(5) // reader snapshots before its flash probe
	// A writer overwrites the key while the read is in flight.
	vc.Invalidate(5, key)
	vc.Insert(gen, 5, key, []byte("stale"))
	if _, ok := vc.Lookup(5, key); ok {
		t.Fatal("stale insert landed despite a generation bump")
	}
	// The reader retries with a fresh generation and succeeds.
	vc.Insert(vc.Gen(5), 5, key, []byte("fresh"))
	if v, ok := vc.Lookup(5, key); !ok || string(v) != "fresh" {
		t.Fatalf("fresh insert missing: (%q,%v)", v, ok)
	}
}

func TestValueCacheBudgetEviction(t *testing.T) {
	// Entries are ventryOverhead+3+8 bytes; budget/8 (the single-item
	// cap) must clear that, and 16 inserts must overrun the budget.
	const entry = ventryOverhead + 3 + 8
	const budget = 8 * entry
	vc := NewValueCache(budget)
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		vc.Insert(vc.Gen(uint64(i)), uint64(i), key, []byte("12345678"))
	}
	if used := vc.Used(); used > budget {
		t.Fatalf("used %d over budget %d", used, budget)
	}
	if vc.Stats().Evictions == 0 {
		t.Fatal("no evictions despite over-budget inserts")
	}
	// Evicted entries must be dead to lookups, survivors must hit.
	live := 0
	for i := 0; i < 16; i++ {
		if _, ok := vc.Lookup(uint64(i), []byte(fmt.Sprintf("k%02d", i))); ok {
			live++
		}
	}
	if live != vc.Len() {
		t.Fatalf("lookup-visible entries %d != resident %d", live, vc.Len())
	}
}

func TestValueCacheMaxItem(t *testing.T) {
	vc := NewValueCache(1024)
	big := make([]byte, 512) // over budget/8: must not wipe the tier
	vc.Insert(vc.Gen(1), 1, []byte("big"), big)
	if vc.Len() != 0 {
		t.Fatal("oversized value cached")
	}
}

func TestValueCacheFlush(t *testing.T) {
	vc := NewValueCache(1 << 20)
	gen := vc.Gen(1)
	vc.Insert(gen, 1, []byte("a"), []byte("1"))
	vc.Flush()
	if _, ok := vc.Lookup(1, []byte("a")); ok {
		t.Fatal("hit after flush")
	}
	if vc.Len() != 0 || vc.Used() != 0 {
		t.Fatalf("len=%d used=%d after flush", vc.Len(), vc.Used())
	}
	// Flush bumps every generation: inserts from before it are refused
	// (recovery may have rolled the value back).
	vc.Insert(gen, 1, []byte("a"), []byte("1"))
	if _, ok := vc.Lookup(1, []byte("a")); ok {
		t.Fatal("pre-flush insert landed after flush")
	}
}

// TestValueCacheConcurrent exercises every entry point from racing
// goroutines; run with -race it is the regression test for the tier's
// lock-free reader contract (Lookup/Gen/Stats never take the side lock,
// Insert/Invalidate/ResetStats serialize on it).
func TestValueCacheConcurrent(t *testing.T) {
	vc := NewValueCache(8 << 10)
	const keys = 64
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i%keys)) }

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // readers: Gen → Lookup → Insert on miss
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				sig := uint64((i + g) % keys)
				key := keyOf(i + g)
				gen := vc.Gen(sig)
				if v, ok := vc.Lookup(sig, key); ok {
					_ = v[0] // cached bytes must stay readable after capture
					continue
				}
				vc.Insert(gen, sig, key, []byte("value-payload"))
			}
		}(g)
	}
	wg.Add(1)
	go func() { // writer: invalidate everything, repeatedly
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			vc.Invalidate(uint64(i%keys), keyOf(i))
		}
	}()
	wg.Add(1)
	go func() { // observer: Stats/ResetStats/Used racing the above
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = vc.Stats()
			_ = vc.Used()
			if i%500 == 0 {
				vc.ResetStats()
			}
		}
	}()
	wg.Wait()

	if used, budget := vc.Used(), vc.Budget(); used > budget {
		t.Fatalf("used %d over budget %d after concurrent churn", used, budget)
	}
}
