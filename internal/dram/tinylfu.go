package dram

import "sync/atomic"

// FrequencySketch is the TinyLFU admission filter's frequency estimator:
// a 4-bit count-min sketch (sixteen counters packed per uint64 word) in
// front of a doorkeeper bloom filter. The doorkeeper absorbs the long
// tail of one-touch keys — a key's first appearance only sets bloom
// bits — so the sketch counters spend their 4-bit range on keys seen at
// least twice. Once the recorded sample count reaches sampleFactor times
// the counter population the whole sketch is halved (and the doorkeeper
// reset), aging old traffic out so the estimator tracks the current
// working set rather than all history.
//
// Concurrency: Touch and Estimate are safe from any goroutine (lock-free
// readers feed the sketch on every cache probe); all updates are CAS
// loops on the packed words, so Go 1.22's atomics suffice. MaybeHalve is
// writer-side only — callers invoke it under the same exclusive lock
// that guards cache inserts.
type FrequencySketch struct {
	table []atomic.Uint64 // packed 4-bit counters, 16 per word
	door  []atomic.Uint64 // doorkeeper bloom bitset
	mask  uint64          // counter-index mask (counters are a power of two)
	dmask uint64          // doorkeeper bit-index mask

	samples     atomic.Int64
	sampleLimit int64
	halvings    atomic.Int64
}

// sampleFactor scales the halving threshold: the sketch ages once it has
// absorbed this many touches per counter. 10 keeps 4-bit counters from
// saturating on skewed traffic while still remembering enough history to
// rank hot buckets above scan traffic.
const sampleFactor = 10

// NewFrequencySketch returns a sketch sized for about n distinct hot
// keys. Counter and doorkeeper populations round up to powers of two,
// with enough slack (8 counters per expected key, 4 hash probes each)
// that collision noise stays below the hot/cold frequency gap.
func NewFrequencySketch(n int) *FrequencySketch {
	if n < 16 {
		n = 16
	}
	counters := 1
	for counters < n*8 {
		counters <<= 1
	}
	doorBits := counters
	s := &FrequencySketch{
		table:       make([]atomic.Uint64, counters/16),
		door:        make([]atomic.Uint64, doorBits/64),
		mask:        uint64(counters - 1),
		dmask:       uint64(doorBits - 1),
		sampleLimit: int64(counters) * sampleFactor,
	}
	return s
}

// mix remixes a key with one of four odd constants so the sketch's probe
// positions are pairwise independent enough for count-min guarantees.
func mix(key, seed uint64) uint64 {
	h := key*seed + seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

var sketchSeeds = [4]uint64{0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0x27d4eb2f165667c5}

// Touch records one access of key: the first sighting sets doorkeeper
// bits, subsequent sightings increment the 4-bit counters (saturating at
// 15). Safe from concurrent readers.
func (s *FrequencySketch) Touch(key uint64) {
	if !s.doorAdd(key) {
		// First sighting since the last reset: the doorkeeper holds the
		// +1 and the counters stay untouched.
		s.samples.Add(1)
		return
	}
	for _, seed := range sketchSeeds {
		idx := mix(key, seed) & s.mask
		word, shift := idx/16, (idx%16)*4
		for {
			w := s.table[word].Load()
			nib := (w >> shift) & 0xf
			if nib >= 15 {
				break
			}
			if s.table[word].CompareAndSwap(w, w+(1<<shift)) {
				break
			}
		}
	}
	s.samples.Add(1)
}

// doorAdd sets key's doorkeeper bits, reporting whether they were
// already all set (i.e. the key has been seen since the last reset).
func (s *FrequencySketch) doorAdd(key uint64) bool {
	seen := true
	for _, seed := range sketchSeeds[:2] {
		bit := mix(key, seed) & s.dmask
		word, m := bit/64, uint64(1)<<(bit%64)
		for {
			w := s.door[word].Load()
			if w&m != 0 {
				break
			}
			seen = false
			if s.door[word].CompareAndSwap(w, w|m) {
				break
			}
		}
	}
	return seen
}

// doorContains reports whether key's doorkeeper bits are set, without
// mutating them.
func (s *FrequencySketch) doorContains(key uint64) bool {
	for _, seed := range sketchSeeds[:2] {
		bit := mix(key, seed) & s.dmask
		if s.door[bit/64].Load()&(uint64(1)<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Estimate returns the frequency estimate for key: the count-min minimum
// over the four probed counters, plus one if the doorkeeper has seen the
// key since the last halving. Over-approximates (collisions only inflate
// counters), never under-approximates recorded touches up to saturation.
// Safe from concurrent readers.
func (s *FrequencySketch) Estimate(key uint64) int {
	est := 15
	for _, seed := range sketchSeeds {
		idx := mix(key, seed) & s.mask
		nib := int((s.table[idx/16].Load() >> ((idx % 16) * 4)) & 0xf)
		if nib < est {
			est = nib
		}
	}
	if s.doorContains(key) {
		est++
	}
	return est
}

// MaybeHalve ages the sketch once enough samples have accumulated: every
// counter is halved and the doorkeeper cleared. Writer-side only (racing
// reader Touches may land before or after any given word's halving —
// either order keeps every estimate at or below its pre-halving value
// plus the racing touch).
func (s *FrequencySketch) MaybeHalve() {
	if s.samples.Load() < s.sampleLimit {
		return
	}
	const nibbleHalfMask = 0x7777777777777777
	for i := range s.table {
		for {
			w := s.table[i].Load()
			if s.table[i].CompareAndSwap(w, (w>>1)&nibbleHalfMask) {
				break
			}
		}
	}
	for i := range s.door {
		s.door[i].Store(0)
	}
	s.samples.Store(s.samples.Load() / 2)
	s.halvings.Add(1)
}

// Halvings reports how many aging sweeps have run.
func (s *FrequencySketch) Halvings() int64 { return s.halvings.Load() }

// Bytes reports the sketch's DRAM footprint (counter table + doorkeeper),
// so index stats can account for it honestly.
func (s *FrequencySketch) Bytes() int64 {
	return int64(len(s.table)+len(s.door)) * 8
}
