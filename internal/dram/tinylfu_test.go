package dram

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestSketchEstimateTracksTouches(t *testing.T) {
	s := NewFrequencySketch(64)
	if got := s.Estimate(7); got != 0 {
		t.Fatalf("estimate of untouched key = %d, want 0", got)
	}
	// First touch only arms the doorkeeper (+1 bonus, counters untouched);
	// each later touch adds one to the counters.
	s.Touch(7)
	if got := s.Estimate(7); got != 1 {
		t.Fatalf("estimate after 1 touch = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		s.Touch(7)
	}
	if got := s.Estimate(7); got < 6 {
		t.Fatalf("estimate after 6 touches = %d, want >= 6", got)
	}
	// Count-min over-approximates but a key hot 6× must outrank a
	// one-touch key.
	s.Touch(99)
	if hot, cold := s.Estimate(7), s.Estimate(99); hot <= cold {
		t.Fatalf("hot estimate %d <= cold estimate %d", hot, cold)
	}
}

func TestSketchSaturatesAtFifteen(t *testing.T) {
	s := NewFrequencySketch(64)
	for i := 0; i < 100; i++ {
		s.Touch(3)
	}
	// 4-bit counters cap at 15; the doorkeeper adds at most one.
	if got := s.Estimate(3); got > 16 {
		t.Fatalf("estimate = %d, want <= 16", got)
	}
}

// saturateSamples drives the sample count past the halving threshold
// without touching any key the caller cares about. Filler keys still
// collide with real counters occasionally — that only inflates
// estimates, which is the direction the sketch is allowed to err.
func saturateSamples(s *FrequencySketch) {
	for i := int64(0); s.samples.Load() < s.sampleLimit; i++ {
		s.Touch(0xf111e500000000 + uint64(i))
	}
}

func TestSketchHalvingNeverInflates(t *testing.T) {
	s := NewFrequencySketch(16)
	keys := []uint64{1, 2, 3, 0xdeadbeef, 1 << 40}
	for i, k := range keys {
		for j := 0; j <= i*3; j++ {
			s.Touch(k)
		}
	}
	saturateSamples(s)
	before := make([]int, len(keys))
	for i, k := range keys {
		before[i] = s.Estimate(k)
	}
	s.MaybeHalve()
	if s.Halvings() != 1 {
		t.Fatalf("halvings = %d, want 1", s.Halvings())
	}
	for i, k := range keys {
		after := s.Estimate(k)
		if after > before[i] {
			t.Fatalf("key %#x: estimate rose %d -> %d across halving", k, before[i], after)
		}
		if before[i] == 0 && after != 0 {
			t.Fatalf("key %#x: zero estimate became %d", k, after)
		}
	}
}

func TestMaybeHalveBelowThresholdIsNoop(t *testing.T) {
	s := NewFrequencySketch(64)
	for i := 0; i < 8; i++ {
		s.Touch(5)
	}
	before := s.Estimate(5)
	s.MaybeHalve()
	if s.Halvings() != 0 {
		t.Fatal("halved below the sample threshold")
	}
	if got := s.Estimate(5); got != before {
		t.Fatalf("estimate changed %d -> %d without a halving", before, got)
	}
}

// TestAdmissionNeverWorseThanAdmitAll replays randomized hot/cold traces
// against two same-budget caches — one gated by TinyLFU admission, one
// admit-all — and requires the admission cache to score at least as many
// hits. The trace shape is the one admission exists for: a hot set that
// fits the budget plus a long one-touch cold tail trying to wash it out.
// Everything is seeded, so a pass is deterministic, and the property runs
// across many seeds rather than one lucky layout.
func TestAdmissionNeverWorseThanAdmitAll(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hotKeys := 4 + rng.Intn(8)    // hot working set, fits the budget
		budget := int64(hotKeys) * 10 // entries are size 10
		coldSpan := 1000 + rng.Intn(4000)

		admitAll := New[int](budget, nil)
		gated := New[int](budget, nil)
		gated.SetAdmission(NewFrequencySketch(hotKeys * 4))

		access := func(c *Cache[int], key uint64, admit bool) {
			if _, ok := c.Get(key); ok {
				return
			}
			if admit {
				c.PutAdmit(key, 0, 10)
			} else {
				c.Put(key, 0, 10)
			}
		}

		ops := 20000
		for i := 0; i < ops; i++ {
			var key uint64
			if rng.Intn(100) < 80 { // 80% of traffic on the hot set
				key = uint64(rng.Intn(hotKeys))
			} else { // cold scan: effectively one-touch keys
				key = 1_000_000 + uint64(rng.Intn(coldSpan))
			}
			access(admitAll, key, false)
			access(gated, key, true)
		}

		if g, a := gated.Stats().Hits, admitAll.Stats().Hits; g < a {
			t.Fatalf("seed %d: admission hits %d < admit-all hits %d", seed, g, a)
		}
	}
}

func TestPutAdmitWithoutSketchIsPut(t *testing.T) {
	c := New[int](20, nil)
	if !c.PutAdmit(1, 0, 10) || !c.PutAdmit(2, 0, 10) || !c.PutAdmit(3, 0, 10) {
		t.Fatal("PutAdmit without a sketch must always admit")
	}
	if c.Stats().AdmissionRejects != 0 {
		t.Fatal("admission rejects counted without a sketch")
	}
}

func TestPutAdmitAlwaysUpdatesResident(t *testing.T) {
	c := New[int](20, nil)
	c.SetAdmission(NewFrequencySketch(16))
	c.PutAdmit(1, 1, 10)
	c.PutAdmit(2, 2, 10)
	// An update of a cached key is never duelled, no matter how cold.
	if !c.PutAdmit(1, 42, 10) {
		t.Fatal("resident update rejected")
	}
	if v, _ := c.Peek(1); v != 42 {
		t.Fatalf("resident value = %d, want 42", v)
	}
}

func TestPutAdmitRejectsColdInsert(t *testing.T) {
	c := New[int](20, nil)
	s := NewFrequencySketch(16)
	c.SetAdmission(s)
	c.PutAdmit(1, 0, 10)
	c.PutAdmit(2, 0, 10)
	for i := 0; i < 10; i++ { // make both residents hot
		c.Get(1)
		c.Get(2)
	}
	// A never-seen key duels the clock victim and loses.
	if c.PutAdmit(3, 0, 10) {
		t.Fatal("cold insert admitted over a hot victim")
	}
	if c.Contains(3) || !c.Contains(1) || !c.Contains(2) {
		t.Fatal("residency changed by a rejected insert")
	}
	if c.Stats().AdmissionRejects != 1 {
		t.Fatalf("admission rejects = %d, want 1", c.Stats().AdmissionRejects)
	}
}

// FuzzFrequencySketch checks the aging invariant on arbitrary touch
// traces: halving the sketch must never inflate any touched key's
// estimate (counters halve, the doorkeeper clears — both monotonically
// down). Input bytes decode as a sequence of 8-byte keys, each touched
// once in order.
func FuzzFrequencySketch(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint64(nil, 42))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9})
	hot := []byte{}
	for i := 0; i < 32; i++ {
		hot = binary.LittleEndian.AppendUint64(hot, uint64(i%3))
	}
	f.Add(hot)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewFrequencySketch(16)
		var keys []uint64
		for len(data) >= 8 {
			k := binary.LittleEndian.Uint64(data)
			data = data[8:]
			keys = append(keys, k)
			s.Touch(k)
		}
		saturateSamples(s)
		before := make(map[uint64]int, len(keys))
		for _, k := range keys {
			before[k] = s.Estimate(k)
		}
		s.MaybeHalve()
		if s.Halvings() == 0 {
			t.Fatal("saturated sketch did not halve")
		}
		for k, b := range before {
			if a := s.Estimate(k); a > b {
				t.Fatalf("key %#x: estimate rose %d -> %d across halving", k, b, a)
			}
		}
	})
}
