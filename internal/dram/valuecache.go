package dram

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// ValueStats reports hot-value cache effectiveness counters.
type ValueStats struct {
	Hits          int64
	Misses        int64
	Inserts       int64
	Evictions     int64
	Invalidations int64
}

// HitRatio reports hits / (hits + misses), or 0 when unused.
func (s ValueStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ventryOverhead approximates the per-entry bookkeeping bytes charged
// against the budget on top of the key and value payloads.
const ventryOverhead = 64

// ventry is one immutable cached value. Once published its sig, key and
// value never change; invalidation sets the dead flag and unlinks it.
// The bytes stay readable for any lock-free reader that already holds a
// pointer — Go's GC reclaims them after the last reader drops out.
type ventry struct {
	sig   uint64
	key   []byte
	value []byte
	size  int64

	next atomic.Pointer[ventry]
	ref  atomic.Bool // CLOCK second-chance bit
	dead atomic.Bool // set (before unlinking) by invalidation/eviction

	ring int // position in the eviction ring; mu-guarded
}

// vbucket heads one hash chain. gen counts invalidations of anything
// mapping here: readers snapshot it before a flash probe and the insert
// path discards results from a stale generation, which kills the race
// where a reader caches a value a concurrent writer just replaced.
type vbucket struct {
	head atomic.Pointer[ventry]
	gen  atomic.Uint64
}

// ValueCache is the byte-budgeted hot-value tier: a lock-free-readable
// hash table of immutable key→value copies with CLOCK eviction. Lookup
// runs with no lock and no allocation (the shard's optimistic GET tier
// calls it before touching the index); Insert, Invalidate and eviction
// serialize on one small side mutex, so writers never block readers and
// readers never block anyone.
//
// Linearizability: entries are invalidated (dead flag set, generation
// bumped) before the overwriting Store/Delete is acknowledged, and
// Lookup re-checks the dead flag after capturing the value pointer — a
// live entry at that instant means the read linearizes before any
// in-flight overwrite's completion. Stale re-inserts by slow readers are
// refused by the generation check.
type ValueCache struct {
	budget  int64
	maxItem int64 // single-entry cap (budget/8): scans must not wipe the tier
	mask    uint64
	buckets []vbucket

	mu   sync.Mutex
	ring []*ventry
	hand int
	used int64

	hits          atomic.Int64
	misses        atomic.Int64
	inserts       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// NewValueCache returns a value cache bounded by the given byte budget.
func NewValueCache(budget int64) *ValueCache {
	if budget <= 0 {
		budget = 1
	}
	nb := 16
	for int64(nb) < budget/256 && nb < 1<<16 {
		nb <<= 1
	}
	return &ValueCache{
		budget:  budget,
		maxItem: budget / 8,
		mask:    uint64(nb - 1),
		buckets: make([]vbucket, nb),
	}
}

// Lookup returns the cached value for (sig, key), or nil. The returned
// slice is the immutable cached copy — callers must not modify it. Safe
// from any goroutine, no locks, no allocation.
func (vc *ValueCache) Lookup(sig uint64, key []byte) ([]byte, bool) {
	b := &vc.buckets[sig&vc.mask]
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		if e.sig != sig || !bytes.Equal(e.key, key) {
			continue
		}
		v := e.value
		if e.dead.Load() {
			// Unlinked (or being unlinked) by an invalidation that will
			// complete before the overwriting write acks: treat as a miss.
			break
		}
		e.ref.Store(true)
		vc.hits.Add(1)
		return v, true
	}
	vc.misses.Add(1)
	return nil, false
}

// Gen snapshots the invalidation generation of key's bucket. Readers
// capture it before their flash probe and pass it to Insert, which
// refuses if any invalidation touched the bucket in between.
func (vc *ValueCache) Gen(sig uint64) uint64 {
	return vc.buckets[sig&vc.mask].gen.Load()
}

// Insert caches an immutable copy of (key, value) if the bucket's
// generation still equals gen (from a prior Gen call). Values above the
// single-entry cap are not cached. Safe from any goroutine.
func (vc *ValueCache) Insert(gen, sig uint64, key, value []byte) {
	size := int64(len(key)+len(value)) + ventryOverhead
	if size > vc.maxItem {
		return
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	b := &vc.buckets[sig&vc.mask]
	if b.gen.Load() != gen {
		return
	}
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		if e.sig == sig && bytes.Equal(e.key, key) {
			// Already cached; the unchanged generation proves it is still
			// the current value.
			e.ref.Store(true)
			return
		}
	}
	e := &ventry{
		sig:   sig,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		size:  size,
	}
	e.ref.Store(true)
	e.next.Store(b.head.Load())
	b.head.Store(e)
	e.ring = len(vc.ring)
	vc.ring = append(vc.ring, e)
	vc.used += size
	vc.inserts.Add(1)
	for vc.used > vc.budget && len(vc.ring) > 1 {
		vc.evictOneLocked()
	}
}

// Invalidate kills any cached value for (sig, key) and bumps the
// bucket's generation so in-flight reader inserts are refused. Callers
// (Store/Delete) invoke it after the index update and before the write
// is acknowledged. Safe from any goroutine.
func (vc *ValueCache) Invalidate(sig uint64, key []byte) {
	b := &vc.buckets[sig&vc.mask]
	vc.mu.Lock()
	defer vc.mu.Unlock()
	b.gen.Add(1)
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		if e.sig == sig && bytes.Equal(e.key, key) {
			vc.removeLocked(e)
			vc.invalidations.Add(1)
			return
		}
	}
}

// Flush drops every entry and advances every generation. Restart calls
// it: recovery may roll back unflushed writes, so values cached from the
// lost tail must not survive the power cycle.
func (vc *ValueCache) Flush() {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	for i := range vc.buckets {
		b := &vc.buckets[i]
		b.gen.Add(1)
		for e := b.head.Load(); e != nil; e = e.next.Load() {
			e.dead.Store(true)
		}
		b.head.Store(nil)
	}
	vc.ring = nil
	vc.hand = 0
	vc.used = 0
}

// evictOneLocked runs one CLOCK step: the first clear-ref entry from the
// hand is killed, referenced entries get their second chance.
func (vc *ValueCache) evictOneLocked() {
	for {
		if vc.hand >= len(vc.ring) {
			vc.hand = 0
		}
		e := vc.ring[vc.hand]
		if e.ref.Swap(false) {
			vc.hand++
			continue
		}
		vc.removeLocked(e)
		vc.evictions.Add(1)
		return
	}
}

// removeLocked marks e dead, unlinks it from its hash chain, and
// swap-removes it from the eviction ring. The dead flag is set first so
// a reader that already reached e sees the kill no later than the chain
// does.
func (vc *ValueCache) removeLocked(e *ventry) {
	e.dead.Store(true)
	b := &vc.buckets[e.sig&vc.mask]
	if b.head.Load() == e {
		b.head.Store(e.next.Load())
	} else {
		for p := b.head.Load(); p != nil; p = p.next.Load() {
			if p.next.Load() == e {
				p.next.Store(e.next.Load())
				break
			}
		}
	}
	last := len(vc.ring) - 1
	tail := vc.ring[last]
	vc.ring[e.ring] = tail
	tail.ring = e.ring
	vc.ring[last] = nil
	vc.ring = vc.ring[:last]
	if vc.hand > last {
		vc.hand = 0
	}
	vc.used -= e.size
}

// Used reports the summed byte size of cached entries (side-lock held
// briefly; for observability, not hot paths).
func (vc *ValueCache) Used() int64 {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.used
}

// Budget reports the configured byte budget.
func (vc *ValueCache) Budget() int64 { return vc.budget }

// Len reports the number of cached entries.
func (vc *ValueCache) Len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.ring)
}

// Stats snapshots the effectiveness counters. Safe from any goroutine;
// per-counter-atomic, not a single cut.
func (vc *ValueCache) Stats() ValueStats {
	return ValueStats{
		Hits:          vc.hits.Load(),
		Misses:        vc.misses.Load(),
		Inserts:       vc.inserts.Load(),
		Evictions:     vc.evictions.Load(),
		Invalidations: vc.invalidations.Load(),
	}
}

// ResetStats zeroes the counters between experiment phases. Safe from
// any goroutine; reads racing the reset land on either side.
func (vc *ValueCache) ResetStats() {
	vc.hits.Store(0)
	vc.misses.Store(0)
	vc.inserts.Store(0)
	vc.evictions.Store(0)
	vc.invalidations.Store(0)
}
