// Package dram models the KVSSD's integrated DRAM as a byte-budget cache
// for index pages. The FTL cache budget (e.g. the 10 MB budget in the
// paper's Fig. 5 setup) bounds the total size of cached entries; anything
// beyond the budget spills to flash, which is what makes index size matter
// for performance. Eviction invokes a callback so write-back owners can
// flush dirty entries to flash first.
//
// Eviction is CLOCK (second-chance) rather than LRU: recency is a per-entry
// reference bit instead of a move-to-front list, so a cache hit only flips
// an atomic bit and never mutates shared structure. That makes Get,
// Contains, Stats, and ResetStats safe to call from concurrent readers
// (the shard read path), while Put, Remove, Flush, and Resize still
// require the caller's exclusive (write) lock.
package dram

import "sync/atomic"

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
	// AdmissionRejects counts PutAdmit calls the TinyLFU filter refused
	// (always 0 when no admission sketch is attached).
	AdmissionRejects int64
}

// MissRatio reports misses / (hits + misses), or 0 when unused.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type entry[V any] struct {
	key   uint64
	value V
	size  int64
	idx   int         // position in the clock ring
	ref   atomic.Bool // second-chance bit, set on every hit
}

// EvictFunc is invoked when an entry is evicted to make room. Write-back
// owners flush dirty state to flash here.
type EvictFunc[V any] func(key uint64, value V, size int64)

// Cache is a CLOCK cache bounded by a byte budget rather than an entry
// count. The value type is fixed at construction so hits return without
// interface boxing. A single entry larger than the whole budget is still
// cached (and evicted on the next insert), so a minimally-provisioned
// cache remains functional.
//
// Concurrency: any number of goroutines may call Get/Contains/Stats/
// ResetStats concurrently with each other. Mutating calls (Put, Remove,
// Flush, Resize) must be exclusive with everything else — in the device
// they only run under the shard write lock.
type Cache[V any] struct {
	budget  int64
	used    int64
	ring    []*entry[V] // clock ring; hand scans for a clear ref bit
	hand    int
	byKey   map[uint64]*entry[V]
	onEvict EvictFunc[V]

	// admit, when non-nil, is the TinyLFU frequency sketch consulted by
	// PutAdmit and fed by Get/TouchHit. nil (the default) means admit-all:
	// PutAdmit degrades to Put and the read path never touches the sketch,
	// so default-off behavior is bit-identical to the pre-admission cache.
	admit *FrequencySketch

	hits             atomic.Int64
	misses           atomic.Int64
	evictions        atomic.Int64
	inserts          atomic.Int64
	admissionRejects atomic.Int64
}

// New returns a cache with the given byte budget. onEvict may be nil.
func New[V any](budget int64, onEvict EvictFunc[V]) *Cache[V] {
	if budget < 0 {
		budget = 0
	}
	return &Cache[V]{
		budget:  budget,
		byKey:   make(map[uint64]*entry[V]),
		onEvict: onEvict,
	}
}

// Get returns the cached value for key, setting its reference bit.
// Every call counts as a hit or a miss. Safe for concurrent readers.
func (c *Cache[V]) Get(key uint64) (V, bool) {
	if c.admit != nil {
		c.admit.Touch(key)
	}
	e, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	e.ref.Store(true)
	return e.value, true
}

// Contains reports whether key is cached without affecting recency or
// hit/miss accounting. Safe for concurrent readers.
func (c *Cache[V]) Contains(key uint64) bool {
	_, ok := c.byKey[key]
	return ok
}

// Peek returns the cached value for key without affecting recency or
// hit/miss accounting — a pure read, used by the pre-flight checks that
// decide whether a lookup may run under the shard read lock. Safe for
// concurrent readers.
func (c *Cache[V]) Peek(key uint64) (V, bool) {
	e, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	return e.value, true
}

// Handle is a stable reference to a cache entry, captured under the
// writer lock (Handle method) and redeemable later from lock-free
// readers via TouchHit. It stays valid across evictions in the weak
// sense optimistic readers need: touching an already-evicted entry
// flips a ref bit nobody consults, which is harmless.
type Handle[V any] struct {
	e *entry[V]
}

// Handle captures a touch handle for key. Writer-side (it reads the key
// map); callers publish the handle through their own synchronized
// structure for readers to redeem.
func (c *Cache[V]) Handle(key uint64) (Handle[V], bool) {
	e, ok := c.byKey[key]
	if !ok {
		return Handle[V]{}, false
	}
	return Handle[V]{e: e}, true
}

// TouchHit applies the exact side effects of a successful Get — one hit
// count, reference bit set — through a previously captured Handle,
// without reading the key map. Safe from any goroutine; optimistic
// readers call it after their version check passes so CLOCK recency and
// hit accounting match the locked path.
func (c *Cache[V]) TouchHit(h Handle[V]) {
	if c.admit != nil {
		c.admit.Touch(h.e.key)
	}
	c.hits.Add(1)
	h.e.ref.Store(true)
}

// Put inserts or updates key with the given value and size, evicting
// entries as needed to respect the budget. The touched entry gets its
// reference bit set, so it survives the next clock sweep.
func (c *Cache[V]) Put(key uint64, value V, size int64) {
	if size < 0 {
		size = 0
	}
	if e, ok := c.byKey[key]; ok {
		c.used += size - e.size
		e.value = value
		e.size = size
		e.ref.Store(true)
	} else {
		e := &entry[V]{key: key, value: value, size: size, idx: len(c.ring)}
		e.ref.Store(true)
		c.ring = append(c.ring, e)
		c.byKey[key] = e
		c.used += size
		c.inserts.Add(1)
	}
	c.evictToBudget()
}

// SetAdmission attaches (or, with nil, detaches) a TinyLFU frequency
// sketch. With a sketch attached, Get and TouchHit record every access
// and PutAdmit duels new entries against the next clock victim.
// Writer-side only.
func (c *Cache[V]) SetAdmission(s *FrequencySketch) { c.admit = s }

// PutAdmit is Put gated by the TinyLFU admission duel. Updates of
// already-cached keys and inserts that fit the remaining budget always
// land; an insert that would force an eviction is admitted only when the
// candidate's estimated frequency beats the clock victim's, so one-touch
// traffic cannot displace a hotter resident entry. It reports whether the
// entry was cached. Without an attached sketch it is exactly Put.
func (c *Cache[V]) PutAdmit(key uint64, value V, size int64) bool {
	if c.admit != nil {
		c.admit.MaybeHalve()
		if size < 0 {
			size = 0
		}
		if _, ok := c.byKey[key]; !ok && c.used+size > c.budget && len(c.ring) > 1 {
			if v := c.peekVictim(); v != nil && c.admit.Estimate(key) <= c.admit.Estimate(v.key) {
				c.admissionRejects.Add(1)
				return false
			}
		}
	}
	c.Put(key, value, size)
	return true
}

// peekVictim returns the entry the next eviction would claim — the first
// clear-ref entry from the hand — without granting second chances or
// moving the hand. Falls back to the hand entry when every ref bit is
// set (the real eviction would clear them and come back around).
func (c *Cache[V]) peekVictim() *entry[V] {
	n := len(c.ring)
	if n == 0 {
		return nil
	}
	h := c.hand
	for i := 0; i < n; i++ {
		if h >= n {
			h = 0
		}
		if !c.ring[h].ref.Load() {
			return c.ring[h]
		}
		h++
	}
	if c.hand < n {
		return c.ring[c.hand]
	}
	return c.ring[0]
}

// evictToBudget removes entries until the budget holds, always keeping at
// least one entry so an over-budget singleton still functions.
func (c *Cache[V]) evictToBudget() {
	for c.used > c.budget && len(c.ring) > 1 {
		c.evictOne()
	}
}

// evictOne advances the clock hand to the first entry whose reference bit
// is clear, granting each referenced entry a second chance along the way,
// and evicts it. Terminates within two sweeps: the first pass clears bits.
func (c *Cache[V]) evictOne() {
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.ref.Swap(false) {
			c.hand++
			continue
		}
		c.unlink(e)
		c.evictions.Add(1)
		if c.onEvict != nil {
			c.onEvict(e.key, e.value, e.size)
		}
		return
	}
}

// unlink removes e from the ring (swap-remove; the displaced tail entry
// inherits e's slot) and the key map, and releases its budget share.
func (c *Cache[V]) unlink(e *entry[V]) {
	last := len(c.ring) - 1
	tail := c.ring[last]
	c.ring[e.idx] = tail
	tail.idx = e.idx
	c.ring[last] = nil
	c.ring = c.ring[:last]
	if c.hand > last {
		c.hand = 0
	}
	delete(c.byKey, e.key)
	c.used -= e.size
}

// Remove drops key from the cache without invoking the eviction callback
// (the caller already owns the value). It returns the removed value.
func (c *Cache[V]) Remove(key uint64) (V, bool) {
	e, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.unlink(e)
	return e.value, true
}

// Flush evicts every entry in ring order, invoking the eviction callback
// for each. Used at checkpoints to force dirty state to flash.
func (c *Cache[V]) Flush() {
	snap := append([]*entry[V](nil), c.ring...)
	for _, e := range snap {
		c.unlink(e)
		c.evictions.Add(1)
		if c.onEvict != nil {
			c.onEvict(e.key, e.value, e.size)
		}
	}
	// The swap-remove unlinks only reset the hand when it fell off the
	// shrinking ring's end, so it could survive Flush pointing mid-ring —
	// and a later Resize down-sweep would start its eviction scan from
	// that stale position. An empty ring has exactly one valid hand.
	c.hand = 0
}

// Range calls f for each cached entry, stopping if f returns false. The
// order is the clock-ring order, which is not a recency order. It does
// not affect recency. f must not mutate the cache.
func (c *Cache[V]) Range(f func(key uint64, value V, size int64) bool) {
	for _, e := range c.ring {
		if !f(e.key, e.value, e.size) {
			return
		}
	}
}

// Resize changes the byte budget, evicting as needed.
func (c *Cache[V]) Resize(budget int64) {
	if budget < 0 {
		budget = 0
	}
	c.budget = budget
	c.evictToBudget()
}

// Len reports the number of cached entries.
func (c *Cache[V]) Len() int { return len(c.ring) }

// Used reports the summed size of cached entries.
func (c *Cache[V]) Used() int64 { return c.used }

// Budget reports the configured byte budget.
func (c *Cache[V]) Budget() int64 { return c.budget }

// Stats returns a snapshot of the effectiveness counters. Safe for
// concurrent readers; the four counters are loaded independently, so the
// snapshot is per-counter-atomic rather than a single consistent cut.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evictions.Load(),
		Inserts:          c.inserts.Load(),
		AdmissionRejects: c.admissionRejects.Load(),
	}
}

// ResetStats zeroes the counters (used between experiment phases). Safe
// for concurrent readers; reads racing the reset land on either side.
func (c *Cache[V]) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.inserts.Store(0)
	c.admissionRejects.Store(0)
}
