// Package dram models the KVSSD's integrated DRAM as a byte-budget LRU
// cache for index pages. The FTL cache budget (e.g. the 10 MB budget in
// the paper's Fig. 5 setup) bounds the total size of cached entries;
// anything beyond the budget spills to flash, which is what makes index
// size matter for performance. Eviction invokes a callback so write-back
// owners can flush dirty entries to flash first.
package dram

import "container/list"

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// MissRatio reports misses / (hits + misses), or 0 when unused.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type entry struct {
	key   uint64
	value any
	size  int64
}

// EvictFunc is invoked when an entry is evicted to make room. Write-back
// owners flush dirty state to flash here.
type EvictFunc func(key uint64, value any, size int64)

// Cache is a least-recently-used cache bounded by a byte budget rather
// than an entry count. It is not safe for concurrent use. A single entry
// larger than the whole budget is still cached (and evicted on the next
// insert), so a minimally-provisioned cache remains functional.
type Cache struct {
	budget  int64
	used    int64
	ll      *list.List // front = most recent
	byKey   map[uint64]*list.Element
	onEvict EvictFunc
	stats   Stats
}

// New returns a cache with the given byte budget. onEvict may be nil.
func New(budget int64, onEvict EvictFunc) *Cache {
	if budget < 0 {
		budget = 0
	}
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		byKey:   make(map[uint64]*list.Element),
		onEvict: onEvict,
	}
}

// Get returns the cached value for key, marking it most-recently used.
// Every call counts as a hit or a miss.
func (c *Cache) Get(key uint64) (any, bool) {
	el, ok := c.byKey[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Contains reports whether key is cached without affecting recency or
// hit/miss accounting.
func (c *Cache) Contains(key uint64) bool {
	_, ok := c.byKey[key]
	return ok
}

// Put inserts or updates key with the given value and size, evicting
// least-recently-used entries as needed to respect the budget.
func (c *Cache) Put(key uint64, value any, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.value = value
		e.size = size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, value: value, size: size})
		c.byKey[key] = el
		c.used += size
		c.stats.Inserts++
	}
	c.evictToBudget()
}

// evictToBudget removes LRU entries until the budget holds, always keeping
// at least one entry so an over-budget singleton still functions.
func (c *Cache) evictToBudget() {
	for c.used > c.budget && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	c.used -= e.size
	c.stats.Evictions++
	if c.onEvict != nil {
		c.onEvict(e.key, e.value, e.size)
	}
}

// Remove drops key from the cache without invoking the eviction callback
// (the caller already owns the value). It returns the removed value.
func (c *Cache) Remove(key uint64) (any, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byKey, key)
	c.used -= e.size
	return e.value, true
}

// Flush evicts every entry (oldest first), invoking the eviction callback
// for each. Used at checkpoints to force dirty state to flash.
func (c *Cache) Flush() {
	for c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// Range calls f for each cached entry from most to least recently used,
// stopping if f returns false. It does not affect recency.
func (c *Cache) Range(f func(key uint64, value any, size int64) bool) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !f(e.key, e.value, e.size) {
			return
		}
	}
}

// Resize changes the byte budget, evicting as needed.
func (c *Cache) Resize(budget int64) {
	if budget < 0 {
		budget = 0
	}
	c.budget = budget
	c.evictToBudget()
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.ll.Len() }

// Used reports the summed size of cached entries.
func (c *Cache) Used() int64 { return c.used }

// Budget reports the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (used between experiment phases).
func (c *Cache) ResetStats() { c.stats = Stats{} }
