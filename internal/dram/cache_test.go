package dram

import (
	"testing"
	"testing/quick"
)

func TestGetMissAndHit(t *testing.T) {
	c := New(100, nil)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "a", 10)
	v, ok := c.Get(1)
	if !ok || v.(string) != "a" {
		t.Fatalf("Get = (%v,%v)", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRatio() != 0.5 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []uint64
	c := New(30, func(key uint64, _ any, _ int64) { evicted = append(evicted, key) })
	c.Put(1, nil, 10)
	c.Put(2, nil, 10)
	c.Put(3, nil, 10)
	c.Get(1)          // 1 is now MRU; LRU order: 2, 3, 1
	c.Put(4, nil, 10) // must evict 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestBudgetRespected(t *testing.T) {
	c := New(100, nil)
	for k := uint64(0); k < 50; k++ {
		c.Put(k, nil, 7)
	}
	if c.Used() > c.Budget() {
		t.Fatalf("Used %d > Budget %d", c.Used(), c.Budget())
	}
	if c.Len() != int(c.Used()/7) {
		t.Fatalf("Len %d inconsistent with Used %d", c.Len(), c.Used())
	}
}

func TestOversizedSingletonStays(t *testing.T) {
	c := New(10, nil)
	c.Put(1, "big", 100)
	if !c.Contains(1) {
		t.Fatal("oversized singleton was dropped")
	}
	c.Put(2, "next", 5)
	if c.Contains(1) {
		t.Fatal("oversized entry survived a subsequent insert")
	}
	if !c.Contains(2) {
		t.Fatal("new entry missing")
	}
}

func TestPutUpdateAdjustsSize(t *testing.T) {
	c := New(100, nil)
	c.Put(1, "a", 10)
	c.Put(1, "b", 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after update", c.Used(), c.Len())
	}
	v, _ := c.Get(1)
	if v.(string) != "b" {
		t.Fatal("update did not replace value")
	}
	if c.Stats().Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1 (update is not an insert)", c.Stats().Inserts)
	}
}

func TestRemoveSkipsCallback(t *testing.T) {
	calls := 0
	c := New(100, func(uint64, any, int64) { calls++ })
	c.Put(1, "a", 10)
	v, ok := c.Remove(1)
	if !ok || v.(string) != "a" {
		t.Fatalf("Remove = (%v,%v)", v, ok)
	}
	if calls != 0 {
		t.Fatal("Remove invoked eviction callback")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove left residue")
	}
	if _, ok := c.Remove(1); ok {
		t.Fatal("second Remove succeeded")
	}
}

func TestFlushEvictsAll(t *testing.T) {
	var evicted []uint64
	c := New(100, func(key uint64, _ any, _ int64) { evicted = append(evicted, key) })
	c.Put(1, nil, 10)
	c.Put(2, nil, 10)
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Flush left entries")
	}
	if len(evicted) != 2 {
		t.Fatalf("Flush evicted %v", evicted)
	}
	// Oldest first: 1 then 2.
	if evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("Flush order %v, want [1 2]", evicted)
	}
}

func TestResizeShrinks(t *testing.T) {
	c := New(100, nil)
	for k := uint64(0); k < 10; k++ {
		c.Put(k, nil, 10)
	}
	c.Resize(30)
	if c.Used() > 30 {
		t.Fatalf("Used %d after Resize(30)", c.Used())
	}
	if c.Budget() != 30 {
		t.Fatalf("Budget = %d", c.Budget())
	}
}

func TestRangeMRUOrder(t *testing.T) {
	c := New(100, nil)
	c.Put(1, nil, 1)
	c.Put(2, nil, 1)
	c.Put(3, nil, 1)
	c.Get(1)
	var order []uint64
	c.Range(func(key uint64, _ any, _ int64) bool {
		order = append(order, key)
		return true
	})
	want := []uint64{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Range order %v, want %v", order, want)
		}
	}
}

func TestZeroBudgetCache(t *testing.T) {
	c := New(0, nil)
	c.Put(1, nil, 10)
	if !c.Contains(1) {
		t.Fatal("zero-budget cache must still hold the newest entry")
	}
	c.Put(2, nil, 10)
	if c.Contains(1) {
		t.Fatal("zero-budget cache held two entries")
	}
}

func TestUsedNeverExceedsBudgetProperty(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint8
	}) bool {
		c := New(64, nil)
		for _, op := range ops {
			c.Put(uint64(op.Key), nil, int64(op.Size))
			if c.Len() > 1 && c.Used() > c.Budget() {
				// Multiple entries may never exceed the budget.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingInvariantProperty(t *testing.T) {
	// Used must always equal the sum of resident entry sizes.
	f := func(ops []struct {
		Kind uint8
		Key  uint8
		Size uint8
	}) bool {
		c := New(128, nil)
		for _, op := range ops {
			switch op.Kind % 3 {
			case 0:
				c.Put(uint64(op.Key), nil, int64(op.Size))
			case 1:
				c.Get(uint64(op.Key))
			case 2:
				c.Remove(uint64(op.Key))
			}
			var sum int64
			c.Range(func(_ uint64, _ any, size int64) bool {
				sum += size
				return true
			})
			if sum != c.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
