package dram

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMissAndHit(t *testing.T) {
	c := New[string](100, nil)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "a", 10)
	v, ok := c.Get(1)
	if !ok || v != "a" {
		t.Fatalf("Get = (%v,%v)", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRatio() != 0.5 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
}

func TestClockSecondChance(t *testing.T) {
	// CLOCK grants referenced entries a second chance instead of keeping
	// an exact LRU order. Walk the hand through a known schedule.
	var evicted []uint64
	c := New[int](30, func(key uint64, _ int, _ int64) { evicted = append(evicted, key) })
	c.Put(1, 0, 10)
	c.Put(2, 0, 10)
	c.Put(3, 0, 10)
	// All bits are set (fresh inserts), so the over-budget insert sweeps
	// once clearing 1..4, wraps, and evicts 1 — the first entry it
	// revisits with a clear bit. The tail (4) swaps into 1's slot.
	c.Put(4, 0, 10)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	// 4's bit was cleared by that sweep and the hand sits on its slot, so
	// the next eviction takes 4 immediately.
	c.Get(2)
	c.Put(5, 0, 10)
	if len(evicted) != 2 || evicted[1] != 4 {
		t.Fatalf("evicted %v, want [1 4]", evicted)
	}
	// Second chance proper: 2 was just touched (bit set), 3 was not. The
	// hand passes 5 (fresh) and 2 (touched), clearing their bits, and
	// evicts 3 — the older-but-cold entry — leaving 2 resident.
	c.Put(6, 0, 10)
	if len(evicted) != 3 || evicted[2] != 3 {
		t.Fatalf("evicted %v, want [1 4 3]", evicted)
	}
	if !c.Contains(2) || !c.Contains(5) || !c.Contains(6) || c.Contains(3) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestPeekIsPure(t *testing.T) {
	c := New[string](100, nil)
	c.Put(1, "a", 10)
	before := c.Stats()
	v, ok := c.Peek(1)
	if !ok || v != "a" {
		t.Fatalf("Peek = (%v,%v)", v, ok)
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("Peek hit on absent key")
	}
	if c.Stats() != before {
		t.Fatalf("Peek changed stats: %+v -> %+v", before, c.Stats())
	}
}

func TestBudgetRespected(t *testing.T) {
	c := New[struct{}](100, nil)
	for k := uint64(0); k < 50; k++ {
		c.Put(k, struct{}{}, 7)
	}
	if c.Used() > c.Budget() {
		t.Fatalf("Used %d > Budget %d", c.Used(), c.Budget())
	}
	if c.Len() != int(c.Used()/7) {
		t.Fatalf("Len %d inconsistent with Used %d", c.Len(), c.Used())
	}
}

func TestOversizedSingletonStays(t *testing.T) {
	c := New[string](10, nil)
	c.Put(1, "big", 100)
	if !c.Contains(1) {
		t.Fatal("oversized singleton was dropped")
	}
	c.Put(2, "next", 5)
	if c.Contains(1) {
		t.Fatal("oversized entry survived a subsequent insert")
	}
	if !c.Contains(2) {
		t.Fatal("new entry missing")
	}
}

func TestPutUpdateAdjustsSize(t *testing.T) {
	c := New[string](100, nil)
	c.Put(1, "a", 10)
	c.Put(1, "b", 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after update", c.Used(), c.Len())
	}
	v, _ := c.Get(1)
	if v != "b" {
		t.Fatal("update did not replace value")
	}
	if c.Stats().Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1 (update is not an insert)", c.Stats().Inserts)
	}
}

func TestRemoveSkipsCallback(t *testing.T) {
	calls := 0
	c := New[string](100, func(uint64, string, int64) { calls++ })
	c.Put(1, "a", 10)
	v, ok := c.Remove(1)
	if !ok || v != "a" {
		t.Fatalf("Remove = (%v,%v)", v, ok)
	}
	if calls != 0 {
		t.Fatal("Remove invoked eviction callback")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove left residue")
	}
	if _, ok := c.Remove(1); ok {
		t.Fatal("second Remove succeeded")
	}
}

func TestFlushEvictsAll(t *testing.T) {
	var evicted []uint64
	c := New[struct{}](100, func(key uint64, _ struct{}, _ int64) { evicted = append(evicted, key) })
	c.Put(1, struct{}{}, 10)
	c.Put(2, struct{}{}, 10)
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Flush left entries")
	}
	if len(evicted) != 2 {
		t.Fatalf("Flush evicted %v", evicted)
	}
	// Ring (insertion) order: 1 then 2 — write-back stays deterministic.
	if evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("Flush order %v, want [1 2]", evicted)
	}
}

func TestResizeShrinks(t *testing.T) {
	c := New[struct{}](100, nil)
	for k := uint64(0); k < 10; k++ {
		c.Put(k, struct{}{}, 10)
	}
	c.Resize(30)
	if c.Used() > 30 {
		t.Fatalf("Used %d after Resize(30)", c.Used())
	}
	if c.Budget() != 30 {
		t.Fatalf("Budget = %d", c.Budget())
	}
}

func TestRangeVisitsAll(t *testing.T) {
	c := New[struct{}](100, nil)
	c.Put(1, struct{}{}, 1)
	c.Put(2, struct{}{}, 1)
	c.Put(3, struct{}{}, 1)
	seen := map[uint64]bool{}
	c.Range(func(key uint64, _ struct{}, _ int64) bool {
		seen[key] = true
		return true
	})
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("Range saw %v", seen)
	}
}

func TestZeroBudgetCache(t *testing.T) {
	c := New[struct{}](0, nil)
	c.Put(1, struct{}{}, 10)
	if !c.Contains(1) {
		t.Fatal("zero-budget cache must still hold the newest entry")
	}
	c.Put(2, struct{}{}, 10)
	if c.Contains(1) {
		t.Fatal("zero-budget cache held two entries")
	}
}

// TestConcurrentReadersAndStats is the -race regression for the shard
// read path's cache usage: Get/Contains/Peek/Stats/ResetStats from many
// goroutines over a fixed-resident key set must be data-race-free and
// must not lose hit counts.
func TestConcurrentReadersAndStats(t *testing.T) {
	c := New[int](1<<20, nil)
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		c.Put(k, int(k), 16)
	}
	c.ResetStats()
	const readers = 8
	const opsPer = 2000
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := (seed + uint64(i)) % keys
				if v, ok := c.Get(k); !ok || v != int(k) {
					t.Errorf("Get(%d) = (%v,%v)", k, v, ok)
					return
				}
				c.Contains(k)
				c.Peek(k)
				c.Stats() // racing snapshot: must be race-free
			}
		}(uint64(r) * 7)
	}
	wg.Wait()
	if got := c.Stats().Hits; got != readers*opsPer {
		t.Fatalf("Hits = %d, want %d (lost updates)", got, readers*opsPer)
	}
	// A reset racing nothing must fully zero the counters.
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestUsedNeverExceedsBudgetProperty(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint8
	}) bool {
		c := New[struct{}](64, nil)
		for _, op := range ops {
			c.Put(uint64(op.Key), struct{}{}, int64(op.Size))
			if c.Len() > 1 && c.Used() > c.Budget() {
				// Multiple entries may never exceed the budget.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingInvariantProperty(t *testing.T) {
	// Used must always equal the sum of resident entry sizes, and every
	// ring entry's idx must point back at its slot (swap-remove safety).
	f := func(ops []struct {
		Kind uint8
		Key  uint8
		Size uint8
	}) bool {
		c := New[struct{}](128, nil)
		for _, op := range ops {
			switch op.Kind % 3 {
			case 0:
				c.Put(uint64(op.Key), struct{}{}, int64(op.Size))
			case 1:
				c.Get(uint64(op.Key))
			case 2:
				c.Remove(uint64(op.Key))
			}
			var sum int64
			c.Range(func(_ uint64, _ struct{}, size int64) bool {
				sum += size
				return true
			})
			if sum != c.Used() {
				return false
			}
			for i, e := range c.ring {
				if e.idx != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFlushResetsClockHand is the regression test for the stale-hand
// bug: the swap-remove unlinks inside Flush only reset the hand when it
// fell off the shrinking ring's end, so it could survive Flush pointing
// mid-ring, and a refilled cache would start its next eviction sweep
// from that phantom position instead of slot 0. A flushed cache must be
// indistinguishable from a fresh one, eviction order included.
func TestFlushResetsClockHand(t *testing.T) {
	run := func(c *Cache[int]) []uint64 {
		var evicted []uint64
		// Refill and force a sweep; record who the hand claims first.
		c.Put(10, 0, 10)
		c.Put(11, 0, 10)
		c.Put(12, 0, 10)
		for _, e := range c.ring {
			e.ref.Store(false) // all cold: eviction order is pure hand order
		}
		saveEvict := c.onEvict
		c.onEvict = func(key uint64, _ int, _ int64) { evicted = append(evicted, key) }
		c.Resize(10) // down-sweep must evict two entries
		c.onEvict = saveEvict
		return evicted
	}

	fresh := New[int](30, nil)
	want := run(fresh)

	flushed := New[int](30, nil)
	// March the hand mid-ring: three inserts then an over-budget fourth
	// evicts one and leaves the hand past slot 0.
	flushed.Put(1, 0, 10)
	flushed.Put(2, 0, 10)
	flushed.Put(3, 0, 10)
	flushed.Put(4, 0, 10)
	flushed.Flush()
	if flushed.hand != 0 {
		t.Fatalf("hand = %d after Flush, want 0", flushed.hand)
	}
	flushed.Resize(30)
	got := run(flushed)

	if len(got) != len(want) {
		t.Fatalf("eviction order after flush %v, fresh cache %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction order after flush %v, fresh cache %v", got, want)
		}
	}
}
