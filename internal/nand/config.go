// Package nand models the NAND flash array underneath the emulated KVSSD:
// channels, dies, erase blocks, and pages with separate data and spare
// areas. Operations are scheduled on per-die and per-channel sim.Resources
// so that read/program/erase latency, bus transfer time, and die-level
// parallelism all shape the simulated timeline. Page contents are stored
// lazily so sparsely-written devices cost little host memory.
package nand

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the flash geometry and timing. The defaults mirror the
// paper's emulator setup (erase blocks of 256 pages of 32 KB) with
// TLC-class timing.
type Config struct {
	Channels      int // independent channel buses
	DiesPerChan   int // dies (LUNs) per channel
	BlocksPerDie  int // erase blocks per die
	PagesPerBlock int // pages per erase block
	PageSize      int // data area bytes per page
	SpareSize     int // spare (out-of-band) bytes per page

	ReadLatency    sim.Duration // array read (tR)
	ProgramLatency sim.Duration // page program (tPROG)
	EraseLatency   sim.Duration // block erase (tBERS)
	ChannelMBps    int          // channel bus bandwidth, MB/s
}

// DefaultConfig returns the paper-style geometry sized to the requested
// usable capacity in bytes (rounded up to whole dies). Timing reflects a
// modern TLC device; the channel count provides the internal parallelism
// async workloads exploit.
func DefaultConfig(capacity int64) Config {
	cfg := Config{
		Channels:      8,
		DiesPerChan:   2,
		PagesPerBlock: 256,
		PageSize:      32 * 1024,
		SpareSize:     1024, // 1/32 of the data area, per the paper

		ReadLatency:    60 * sim.Microsecond,
		ProgramLatency: 700 * sim.Microsecond,
		EraseLatency:   3500 * sim.Microsecond,
		ChannelMBps:    800,
	}
	blockBytes := int64(cfg.PagesPerBlock) * int64(cfg.PageSize)
	dieCount := int64(cfg.Channels * cfg.DiesPerChan)
	perDie := (capacity + blockBytes*dieCount - 1) / (blockBytes * dieCount)
	if perDie < 4 {
		perDie = 4
	}
	cfg.BlocksPerDie = int(perDie)
	return cfg
}

// Validate reports a descriptive error for nonsensical geometry.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("nand: Channels %d < 1", c.Channels)
	case c.DiesPerChan < 1:
		return fmt.Errorf("nand: DiesPerChan %d < 1", c.DiesPerChan)
	case c.BlocksPerDie < 1:
		return fmt.Errorf("nand: BlocksPerDie %d < 1", c.BlocksPerDie)
	case c.PagesPerBlock < 1:
		return fmt.Errorf("nand: PagesPerBlock %d < 1", c.PagesPerBlock)
	case c.PageSize < 64:
		return fmt.Errorf("nand: PageSize %d < 64", c.PageSize)
	case c.SpareSize < 0:
		return fmt.Errorf("nand: SpareSize %d < 0", c.SpareSize)
	case c.ChannelMBps < 1:
		return fmt.Errorf("nand: ChannelMBps %d < 1", c.ChannelMBps)
	case c.ReadLatency <= 0 || c.ProgramLatency <= 0 || c.EraseLatency <= 0:
		return fmt.Errorf("nand: latencies must be positive")
	}
	return nil
}

// Dies reports the total die count.
func (c Config) Dies() int { return c.Channels * c.DiesPerChan }

// TotalBlocks reports the device-wide erase block count.
func (c Config) TotalBlocks() int { return c.Dies() * c.BlocksPerDie }

// TotalPages reports the device-wide page count.
func (c Config) TotalPages() int64 {
	return int64(c.TotalBlocks()) * int64(c.PagesPerBlock)
}

// Capacity reports the raw data-area capacity in bytes.
func (c Config) Capacity() int64 {
	return c.TotalPages() * int64(c.PageSize)
}

// BlockBytes reports the data-area bytes per erase block.
func (c Config) BlockBytes() int64 {
	return int64(c.PagesPerBlock) * int64(c.PageSize)
}

// xferTime is the channel bus time to move n bytes.
func (c Config) xferTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	// MBps here means 1e6 bytes per second: ns = bytes * 1000 / MBps.
	return sim.Duration(int64(n) * 1000 / int64(c.ChannelMBps))
}
