package nand

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// PPA is a physical page address: a device-wide page index. The on-flash
// index encodes PPAs in 5 bytes (Eq. 1), far above any emulated geometry.
type PPA uint64

// BlockID is a device-wide erase block index.
type BlockID uint32

// Errors returned by flash operations.
var (
	ErrOutOfRange    = errors.New("nand: address out of range")
	ErrNotProgrammed = errors.New("nand: reading an unwritten page")
	ErrOverwrite     = errors.New("nand: programming a written page without erase")
	ErrProgramOrder  = errors.New("nand: pages in a block must be programmed in order")
	ErrOversize      = errors.New("nand: payload exceeds page area")
	// ErrReadFault is an injected uncorrectable read error (ECC failure),
	// used to test the device's error paths.
	ErrReadFault = errors.New("nand: uncorrectable read error (injected)")
	// ErrProgramFault is an injected program failure.
	ErrProgramFault = errors.New("nand: program failure (injected)")
)

// Stats counts flash operations and traffic since device power-on.
type Stats struct {
	Reads      int64
	Programs   int64
	Erases     int64
	ReadBytes  int64
	WriteBytes int64
}

// flashStats is the live counter set. Reads run concurrently under the
// shard read lock, so the counters are atomics; Stats() snapshots them
// into the plain exported struct.
type flashStats struct {
	reads      atomic.Int64
	programs   atomic.Int64
	erases     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
}

// flashPage is one programmed page's payload. Pages are published to
// concurrent readers by storing a *flashPage into the block's pointer
// array, so a reader sees either the whole page or nil — never a torn
// data/spare pair.
type flashPage struct {
	data  []byte
	spare []byte
}

type block struct {
	// pages points to a fixed array of per-page pointers; nil until the
	// block is first programmed. Entries are nil until programmed and
	// reset to nil by Erase. Both levels are atomic so lock-free readers
	// can race Program/Erase without torn state.
	pages      atomic.Pointer[[]atomic.Pointer[flashPage]]
	programmed atomic.Int32 // pages programmed so far (program order enforced)
	erases     atomic.Int64
}

// Flash is the emulated NAND array. Reads may run concurrently (they
// only touch programmed pages, schedule die/channel resources, and bump
// atomic counters); Program and Erase mutate block state and must be
// serialized by the caller — the device only writes under the shard's
// exclusive lock.
type Flash struct {
	cfg    Config
	clock  *sim.Clock
	dies   []*sim.Resource
	chans  []*sim.Resource
	blocks []block
	stats  flashStats
	// bufPool recycles full-size page buffers freed by Erase; Program
	// draws from it, keeping high-churn workloads off the Go allocator.
	bufPool [][]byte
	// limbo holds buffers Erase unlinked but that an in-flight optimistic
	// reader may still alias. The device drains it with TakeLimbo and
	// retires the batch to its epoch domain, which calls RecycleBuffers
	// once no pinned reader can hold a reference.
	limbo [][]byte

	failReads    atomic.Int64 // countdown of injected read faults
	failPrograms atomic.Int64 // countdown of injected program faults
}

// FailNextReads arms n injected uncorrectable read errors: the next n
// Read calls fail with ErrReadFault. Testing hook.
func (f *Flash) FailNextReads(n int) { f.failReads.Store(int64(n)) }

// FailNextPrograms arms n injected program failures. Testing hook.
func (f *Flash) FailNextPrograms(n int) { f.failPrograms.Store(int64(n)) }

// consumeFault decrements an armed fault countdown, reporting whether
// this call consumed a fault. CAS keeps concurrent readers from
// consuming the same injected fault twice.
func consumeFault(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n <= 0 {
			return false
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// New builds a flash array on the given clock. It panics on invalid
// geometry; validate configs at the device boundary.
func New(cfg Config, clock *sim.Clock) *Flash {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &Flash{
		cfg:    cfg,
		clock:  clock,
		blocks: make([]block, cfg.TotalBlocks()),
	}
	for d := 0; d < cfg.Dies(); d++ {
		f.dies = append(f.dies, sim.NewResource(fmt.Sprintf("die%d", d)))
	}
	for c := 0; c < cfg.Channels; c++ {
		f.chans = append(f.chans, sim.NewResource(fmt.Sprintf("chan%d", c)))
	}
	return f
}

// Config returns the geometry the array was built with.
func (f *Flash) Config() Config { return f.cfg }

// Stats returns a snapshot of the operation counters.
func (f *Flash) Stats() Stats {
	return Stats{
		Reads:      f.stats.reads.Load(),
		Programs:   f.stats.programs.Load(),
		Erases:     f.stats.erases.Load(),
		ReadBytes:  f.stats.readBytes.Load(),
		WriteBytes: f.stats.writeBytes.Load(),
	}
}

// BlockOf maps a page address to its erase block.
func (f *Flash) BlockOf(p PPA) BlockID {
	return BlockID(uint64(p) / uint64(f.cfg.PagesPerBlock))
}

// PageIndex maps a page address to its index within its block.
func (f *Flash) PageIndex(p PPA) int {
	return int(uint64(p) % uint64(f.cfg.PagesPerBlock))
}

// PPAOf composes a page address from a block and in-block page index.
func (f *Flash) PPAOf(b BlockID, page int) PPA {
	return PPA(uint64(b)*uint64(f.cfg.PagesPerBlock) + uint64(page))
}

func (f *Flash) dieOf(b BlockID) int {
	return int(b) / f.cfg.BlocksPerDie
}

func (f *Flash) chanOf(b BlockID) int {
	return f.dieOf(b) / f.cfg.DiesPerChan
}

// copyData stores a private copy of a programmed payload, reusing
// recycled page buffers where possible.
func (f *Flash) copyData(data []byte) []byte {
	if n := len(f.bufPool); n > 0 {
		buf := f.bufPool[n-1]
		f.bufPool = f.bufPool[:n-1]
		buf = buf[:cap(buf)]
		if len(data) <= len(buf) {
			copy(buf, data)
			return buf[:len(data)]
		}
		f.bufPool = append(f.bufPool, buf)
	}
	// Allocate at full page capacity so the buffer is reusable later.
	buf := make([]byte, len(data), f.cfg.PageSize)
	copy(buf, data)
	return buf
}

func (f *Flash) checkPPA(p PPA) error {
	if int64(p) >= f.cfg.TotalPages() {
		return fmt.Errorf("%w: ppa %d >= %d", ErrOutOfRange, p, f.cfg.TotalPages())
	}
	return nil
}

// Read performs a page read issued at time `at`. It returns the page's
// data and spare areas and the operation's completion time. The returned
// slices alias the array's internal storage and must not be modified.
func (f *Flash) Read(at sim.Time, p PPA) (data, spare []byte, done sim.Time, err error) {
	if err = f.checkPPA(p); err != nil {
		return nil, nil, at, err
	}
	if consumeFault(&f.failReads) {
		return nil, nil, at, fmt.Errorf("%w: ppa %d", ErrReadFault, p)
	}
	bid := f.BlockOf(p)
	blk := &f.blocks[bid]
	pi := f.PageIndex(p)
	arr := blk.pages.Load()
	if arr == nil {
		return nil, nil, at, fmt.Errorf("%w: ppa %d", ErrNotProgrammed, p)
	}
	pg := (*arr)[pi].Load()
	if pg == nil {
		return nil, nil, at, fmt.Errorf("%w: ppa %d", ErrNotProgrammed, p)
	}
	data = pg.data
	spare = pg.spare

	_, dieDone := f.dies[f.dieOf(bid)].Acquire(at, f.cfg.ReadLatency)
	_, done = f.chans[f.chanOf(bid)].Acquire(dieDone, f.cfg.xferTime(len(data)+len(spare)))
	f.stats.reads.Add(1)
	f.stats.readBytes.Add(int64(len(data) + len(spare)))
	return data, spare, done, nil
}

// Program writes data and spare to page p at time `at`. NAND constraints
// are enforced: the page must be erased and pages within a block must be
// programmed in ascending order. Both buffers are copied.
func (f *Flash) Program(at sim.Time, p PPA, data, spare []byte) (done sim.Time, err error) {
	if err = f.checkPPA(p); err != nil {
		return at, err
	}
	if len(data) > f.cfg.PageSize {
		return at, fmt.Errorf("%w: data %d > page %d", ErrOversize, len(data), f.cfg.PageSize)
	}
	if len(spare) > f.cfg.SpareSize {
		return at, fmt.Errorf("%w: spare %d > %d", ErrOversize, len(spare), f.cfg.SpareSize)
	}
	if consumeFault(&f.failPrograms) {
		return at, fmt.Errorf("%w: ppa %d", ErrProgramFault, p)
	}
	bid := f.BlockOf(p)
	blk := &f.blocks[bid]
	pi := f.PageIndex(p)
	arr := blk.pages.Load()
	if arr == nil {
		a := make([]atomic.Pointer[flashPage], f.cfg.PagesPerBlock)
		blk.pages.Store(&a)
		arr = &a
	}
	programmed := int(blk.programmed.Load())
	if pi < programmed {
		return at, fmt.Errorf("%w: ppa %d", ErrOverwrite, p)
	}
	if pi != programmed {
		return at, fmt.Errorf("%w: ppa %d is page %d, next programmable is %d",
			ErrProgramOrder, p, pi, programmed)
	}
	(*arr)[pi].Store(&flashPage{
		data:  f.copyData(data),
		spare: append([]byte(nil), spare...),
	})
	blk.programmed.Add(1)

	_, chanDone := f.chans[f.chanOf(bid)].Acquire(at, f.cfg.xferTime(len(data)+len(spare)))
	_, done = f.dies[f.dieOf(bid)].Acquire(chanDone, f.cfg.ProgramLatency)
	f.stats.programs.Add(1)
	f.stats.writeBytes.Add(int64(len(data) + len(spare)))
	return done, nil
}

// Erase wipes block b at time `at`, unlinking its page storage and
// incrementing its wear counter. Freed full-size data buffers go to the
// limbo list rather than straight back to the program pool: an
// optimistic reader that validated before the erase may still alias
// them, so the device must quarantine the batch behind its epoch domain
// (TakeLimbo → epoch.Retire → RecycleBuffers) before reuse.
func (f *Flash) Erase(at sim.Time, b BlockID) (done sim.Time, err error) {
	if int(b) >= len(f.blocks) {
		return at, fmt.Errorf("%w: block %d >= %d", ErrOutOfRange, b, len(f.blocks))
	}
	blk := &f.blocks[b]
	if arr := blk.pages.Load(); arr != nil {
		for i := range *arr {
			pg := (*arr)[i].Swap(nil)
			if pg == nil {
				continue
			}
			// Quarantine full-size buffers; odd-size tails go to the GC.
			if cap(pg.data) == f.cfg.PageSize && len(f.limbo) < 4*f.cfg.PagesPerBlock {
				f.limbo = append(f.limbo, pg.data)
			}
		}
	}
	blk.programmed.Store(0)
	blk.erases.Add(1)

	_, done = f.dies[f.dieOf(b)].Acquire(at, f.cfg.EraseLatency)
	f.stats.erases.Add(1)
	return done, nil
}

// TakeLimbo hands the caller every buffer quarantined by Erase since the
// last call. Writer-side; the caller owns the batch and must not reuse
// the buffers until all concurrent readers have quiesced.
func (f *Flash) TakeLimbo() [][]byte {
	l := f.limbo
	f.limbo = nil
	return l
}

// RecycleBuffers returns quarantined buffers to the program pool once
// the caller has proven no reader can alias them. Writer-side.
func (f *Flash) RecycleBuffers(bufs [][]byte) {
	for _, buf := range bufs {
		if cap(buf) == f.cfg.PageSize && len(f.bufPool) < 4*f.cfg.PagesPerBlock {
			f.bufPool = append(f.bufPool, buf)
		}
	}
}

// PageReadable reports whether page p is programmed and readable, as a
// pure check: no fault consumption, no resource scheduling, no counter
// updates. Safe from any goroutine; the optimistic read path uses it to
// refuse volatile (pending/unprogrammed) pages before charging any
// simulated time.
func (f *Flash) PageReadable(p PPA) bool {
	if f.checkPPA(p) != nil {
		return false
	}
	arr := f.blocks[f.BlockOf(p)].pages.Load()
	return arr != nil && (*arr)[f.PageIndex(p)].Load() != nil
}

// ProgrammedPages reports how many pages of block b are written.
func (f *Flash) ProgrammedPages(b BlockID) int {
	if int(b) >= len(f.blocks) {
		return 0
	}
	return int(f.blocks[b].programmed.Load())
}

// EraseCount reports block b's wear (number of erases).
func (f *Flash) EraseCount(b BlockID) int64 {
	if int(b) >= len(f.blocks) {
		return 0
	}
	return f.blocks[b].erases.Load()
}

// DieUtilization reports the mean busy fraction across dies at time now.
func (f *Flash) DieUtilization(now sim.Time) float64 {
	if len(f.dies) == 0 {
		return 0
	}
	var sum float64
	for _, d := range f.dies {
		sum += d.Utilization(now)
	}
	return sum / float64(len(f.dies))
}

// BusyUntil reports the latest completion time across all dies — the time
// at which every in-flight flash operation has finished.
func (f *Flash) BusyUntil() sim.Time {
	var t sim.Time
	for _, d := range f.dies {
		if d.BusyUntil() > t {
			t = d.BusyUntil()
		}
	}
	for _, c := range f.chans {
		if c.BusyUntil() > t {
			t = c.BusyUntil()
		}
	}
	return t
}
