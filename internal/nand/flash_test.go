package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig(64 << 20) // 64 MiB
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	for _, cap := range []int64{1 << 20, 64 << 20, 1 << 30, 4 << 30} {
		cfg := DefaultConfig(cap)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("DefaultConfig(%d): %v", cap, err)
		}
		if cfg.Capacity() < cap {
			t.Fatalf("DefaultConfig(%d) capacity %d below request", cap, cfg.Capacity())
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.DiesPerChan = 0 },
		func(c *Config) { c.BlocksPerDie = 0 },
		func(c *Config) { c.PagesPerBlock = 0 },
		func(c *Config) { c.PageSize = 32 },
		func(c *Config) { c.SpareSize = -1 },
		func(c *Config) { c.ChannelMBps = 0 },
		func(c *Config) { c.ReadLatency = 0 },
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAddressMapping(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	cfg := f.Config()
	last := PPA(cfg.TotalPages() - 1)
	if got := f.BlockOf(last); int(got) != cfg.TotalBlocks()-1 {
		t.Fatalf("BlockOf(last) = %d, want %d", got, cfg.TotalBlocks()-1)
	}
	if got := f.PageIndex(last); got != cfg.PagesPerBlock-1 {
		t.Fatalf("PageIndex(last) = %d", got)
	}
	// PPAOf must invert (BlockOf, PageIndex).
	p := f.PPAOf(3, 17)
	if f.BlockOf(p) != 3 || f.PageIndex(p) != 17 {
		t.Fatalf("PPAOf round trip failed: %d -> (%d,%d)", p, f.BlockOf(p), f.PageIndex(p))
	}
}

func TestAddressRoundTripProperty(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	cfg := f.Config()
	fn := func(raw uint32) bool {
		p := PPA(int64(raw) % cfg.TotalPages())
		return f.PPAOf(f.BlockOf(p), f.PageIndex(p)) == p
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	clock := sim.NewClock()
	f := New(testConfig(), clock)
	data := bytes.Repeat([]byte{0xAB}, 1000)
	spare := []byte{1, 2, 3}
	done, err := f.Program(0, 0, data, spare)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("Program completed instantaneously")
	}
	got, gotSpare, _, err := f.Read(done, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || !bytes.Equal(gotSpare, spare) {
		t.Fatal("read back different contents")
	}
}

func TestProgramCopiesBuffers(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	data := []byte{1, 2, 3}
	f.Program(0, 0, data, nil)
	data[0] = 99
	got, _, _, err := f.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("Program aliased the caller's buffer")
	}
}

func TestReadUnwritten(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	if _, _, _, err := f.Read(0, 5); !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("err = %v, want ErrNotProgrammed", err)
	}
}

func TestNoOverwrite(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	f.Program(0, 0, []byte{1}, nil)
	if _, err := f.Program(0, 0, []byte{2}, nil); !errors.Is(err, ErrOverwrite) {
		t.Fatalf("err = %v, want ErrOverwrite", err)
	}
}

func TestProgramOrderEnforced(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	if _, err := f.Program(0, 2, []byte{1}, nil); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("err = %v, want ErrProgramOrder", err)
	}
	// In-order is fine.
	for i := 0; i < 3; i++ {
		if _, err := f.Program(0, PPA(i), []byte{byte(i)}, nil); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	big := make([]byte, f.Config().PageSize+1)
	if _, err := f.Program(0, 0, big, nil); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	bigSpare := make([]byte, f.Config().SpareSize+1)
	if _, err := f.Program(0, 0, nil, bigSpare); !errors.Is(err, ErrOversize) {
		t.Fatalf("spare err = %v, want ErrOversize", err)
	}
}

func TestOutOfRange(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	beyond := PPA(f.Config().TotalPages())
	if _, err := f.Program(0, beyond, []byte{1}, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Program err = %v", err)
	}
	if _, _, _, err := f.Read(0, beyond); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read err = %v", err)
	}
	if _, err := f.Erase(0, BlockID(f.Config().TotalBlocks())); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Erase err = %v", err)
	}
}

func TestEraseResetsBlockAndWear(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	f.Program(0, 0, []byte{1}, nil)
	if f.ProgrammedPages(0) != 1 {
		t.Fatalf("ProgrammedPages = %d", f.ProgrammedPages(0))
	}
	if _, err := f.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if f.ProgrammedPages(0) != 0 {
		t.Fatal("erase did not reset programmed count")
	}
	if f.EraseCount(0) != 1 {
		t.Fatalf("EraseCount = %d", f.EraseCount(0))
	}
	if _, _, _, err := f.Read(0, 0); !errors.Is(err, ErrNotProgrammed) {
		t.Fatal("page readable after erase")
	}
	// Page is programmable again after erase.
	if _, err := f.Program(0, 0, []byte{2}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAccounting(t *testing.T) {
	cfg := testConfig()
	f := New(cfg, sim.NewClock())
	done, err := f.Program(0, 0, make([]byte, cfg.PageSize), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(cfg.ProgramLatency) + sim.Time(cfg.xferTime(cfg.PageSize))
	if done != want {
		t.Fatalf("program done at %d, want %d", done, want)
	}
	_, _, rdone, err := f.Read(done, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRead := done.Add(cfg.ReadLatency).Add(cfg.xferTime(cfg.PageSize))
	if rdone != wantRead {
		t.Fatalf("read done at %d, want %d", rdone, wantRead)
	}
}

func TestDieParallelism(t *testing.T) {
	// Programs issued at t=0 to blocks on different dies must overlap,
	// while programs to the same die serialize.
	cfg := testConfig()
	f := New(cfg, sim.NewClock())
	sameDie0 := f.PPAOf(0, 0)
	sameDie1 := f.PPAOf(1, 0) // block 1 is on die 0 too (BlocksPerDie >= 4)
	otherDie := f.PPAOf(BlockID(cfg.BlocksPerDie), 0)

	d0, _ := f.Program(0, sameDie0, []byte{1}, nil)
	d1, _ := f.Program(0, sameDie1, []byte{1}, nil)
	if d1 <= d0 {
		t.Fatalf("same-die programs overlapped: %d then %d", d0, d1)
	}
	dOther, _ := f.Program(0, otherDie, []byte{1}, nil)
	if dOther >= d1 {
		t.Fatalf("cross-die program did not overlap: %d vs %d", dOther, d1)
	}
}

func TestStatsCount(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	f.Program(0, 0, []byte{1, 2}, []byte{3})
	f.Read(0, 0)
	f.Erase(0, 1)
	s := f.Stats()
	if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WriteBytes != 3 || s.ReadBytes != 3 {
		t.Fatalf("bytes = %+v", s)
	}
}

func TestBusyUntilTracksLatest(t *testing.T) {
	f := New(testConfig(), sim.NewClock())
	done, _ := f.Program(0, 0, []byte{1}, nil)
	if f.BusyUntil() != done {
		t.Fatalf("BusyUntil = %d, want %d", f.BusyUntil(), done)
	}
}

func TestXferTimeZeroBytes(t *testing.T) {
	cfg := testConfig()
	if cfg.xferTime(0) != 0 || cfg.xferTime(-1) != 0 {
		t.Fatal("xferTime of non-positive size should be 0")
	}
}
