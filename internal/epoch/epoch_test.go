package epoch

import (
	"sync"
	"testing"
)

func TestRetireFreedOnlyAfterUnpin(t *testing.T) {
	d := NewDomain()
	p, ok := d.TryPin()
	if !ok {
		t.Fatal("fresh domain refused a pin")
	}
	freed := false
	d.Retire(func() { freed = true })
	if n := d.Collect(); n != 0 || freed {
		t.Fatalf("collected %d (freed=%v) while the pre-retire pin is held", n, freed)
	}
	d.Unpin(p)
	if n := d.Collect(); n != 1 || !freed {
		t.Fatalf("after unpin: collected %d, freed=%v, want 1/true", n, freed)
	}
	if d.Pending() != 0 {
		t.Fatalf("pending = %d after full collection", d.Pending())
	}
}

func TestPinAfterRetireDoesNotBlockFree(t *testing.T) {
	// A reader that pins AFTER the object was unlinked and retired cannot
	// reach it, so it must not delay the free past one epoch turn.
	d := NewDomain()
	freed := false
	d.Retire(func() { freed = true })
	d.Collect() // advances the epoch past the retirement epoch
	p, ok := d.TryPin()
	if !ok {
		t.Fatal("pin failed")
	}
	defer d.Unpin(p)
	if !freed {
		if n := d.Collect(); n != 1 {
			t.Fatalf("late pin blocked the free: collected %d", n)
		}
	}
}

func TestTryPinExhaustion(t *testing.T) {
	d := NewDomain()
	pins := make([]Pin, 0, slots)
	for {
		p, ok := d.TryPin()
		if !ok {
			break
		}
		pins = append(pins, p)
	}
	if len(pins) != slots {
		t.Fatalf("claimed %d pins before exhaustion, want %d", len(pins), slots)
	}
	if st := d.Stats(); st.PinFails != 1 {
		t.Fatalf("PinFails = %d, want 1", st.PinFails)
	}
	for _, p := range pins {
		d.Unpin(p)
	}
	if _, ok := d.TryPin(); !ok {
		t.Fatal("pin failed after all slots were released")
	}
}

func TestConcurrentPinUnpinRace(t *testing.T) {
	// -race regression: readers pin/unpin while a writer retires and
	// collects under its own mutex (standing in for the shard lock).
	d := NewDomain()
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p, ok := d.TryPin(); ok {
					d.Unpin(p)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		mu.Lock()
		d.Retire(func() {})
		if i%7 == 0 {
			d.Collect()
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	for d.Pending() > 0 {
		d.Collect()
	}
	mu.Unlock()
	st := d.Stats()
	if st.Retired != 2000 || st.Freed != 2000 {
		t.Fatalf("retired=%d freed=%d, want 2000/2000", st.Retired, st.Freed)
	}
}
