// Package epoch implements epoch-based reclamation for the lock-free
// read path: readers pin the current epoch before touching any shared
// structure, writers retire objects (pooled tables, erased flash
// buffers) instead of recycling them immediately, and a periodic
// collection frees everything retired before the oldest still-pinned
// epoch. In Go nothing is ever unsafe to *dereference* — the garbage
// collector guarantees that — so what reclamation protects here is
// object REUSE: a pooled hopscotch table or page buffer must not be
// handed to a new owner (and overwritten) while a reader pinned before
// its retirement might still be reading it.
//
// The safety argument needs no pin revalidation loop: a reader acquires
// references only AFTER pinning, and writers unlink an object from all
// reader-reachable paths BEFORE retiring it. An object retired at epoch
// R is freed only when R < min(pinned epochs); any reader that could
// hold a reference pinned at e <= R, so it blocks the free until it
// unpins. A pin published with a stale (lower) epoch only delays frees
// — it is conservative, never unsafe.
package epoch

import (
	"math"
	"sync/atomic"
)

// slots is the fixed pin-table size. Each optimistic read occupies one
// slot for its duration; with more than slots concurrent readers,
// TryPin fails and the caller falls back to its exclusive path, so the
// bound degrades gracefully instead of blocking.
const slots = 128

// Pin identifies a pinned slot, returned by TryPin and passed to Unpin.
type Pin int32

// pinSlot is one reader's published epoch, padded to its own cache line
// so concurrent pins on different slots do not false-share.
type pinSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// Stats is a snapshot of the domain's counters.
type Stats struct {
	Pins     int64 // successful TryPin calls
	PinFails int64 // TryPin calls that found no free slot
	Retired  int64 // objects handed to Retire
	Freed    int64 // retired objects whose free functions have run
	Pending  int64 // retired objects awaiting a quiescent epoch
}

// Domain is one reclamation domain. Reader-side calls (TryPin, Unpin)
// are safe from any goroutine; writer-side calls (Retire, Collect) must
// be serialized by the caller — in the device they run under the shard
// write lock.
type Domain struct {
	epoch  atomic.Uint64 // current epoch; starts at 1 (0 marks a free slot)
	cursor atomic.Uint32 // round-robin start hint spreading pins over slots
	table  [slots]pinSlot

	pins     atomic.Int64
	pinFails atomic.Int64

	retired      []retiredItem // writer-side; guarded by the caller's lock
	retiredTotal int64
	freedTotal   int64
}

type retiredItem struct {
	epoch uint64
	free  func()
}

// NewDomain returns an empty domain at epoch 1.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// TryPin claims a pin slot and publishes the current epoch in it. It
// returns ok=false when all slots are taken; the caller must then fall
// back to a path that does not rely on deferred reclamation. A
// successful pin must be released with Unpin.
func (d *Domain) TryPin() (Pin, bool) {
	start := d.cursor.Add(1)
	for i := uint32(0); i < slots; i++ {
		s := &d.table[(start+i)%slots]
		if s.v.Load() != 0 {
			continue
		}
		// The epoch may advance between this load and the CAS; publishing
		// the older value is safe (it only delays frees, see the package
		// comment).
		if s.v.CompareAndSwap(0, d.epoch.Load()) {
			d.pins.Add(1)
			return Pin((start + i) % slots), true
		}
	}
	d.pinFails.Add(1)
	return 0, false
}

// Unpin releases a slot claimed by TryPin.
func (d *Domain) Unpin(p Pin) {
	d.table[p].v.Store(0)
}

// Retire defers free until every reader pinned at or before the current
// epoch has unpinned. The object must already be unreachable from any
// path a newly-pinning reader could follow. Writer-side.
func (d *Domain) Retire(free func()) {
	d.retired = append(d.retired, retiredItem{epoch: d.epoch.Load(), free: free})
	d.retiredTotal++
}

// Collect advances the epoch and frees every retired object whose
// retirement epoch precedes the oldest still-pinned epoch, returning
// how many were freed. Writer-side.
func (d *Domain) Collect() int {
	if len(d.retired) == 0 {
		return 0
	}
	d.epoch.Add(1)
	min := uint64(math.MaxUint64)
	for i := range d.table {
		if v := d.table[i].v.Load(); v != 0 && v < min {
			min = v
		}
	}
	kept := d.retired[:0]
	freed := 0
	for _, it := range d.retired {
		if it.epoch < min {
			it.free()
			freed++
		} else {
			kept = append(kept, it)
		}
	}
	// Drop freed closures so they do not pin their captures.
	for i := len(kept); i < len(d.retired); i++ {
		d.retired[i] = retiredItem{}
	}
	d.retired = kept
	d.freedTotal += int64(freed)
	return freed
}

// Pending reports the number of retired objects not yet freed.
// Writer-side (it reads the retired list unsynchronized).
func (d *Domain) Pending() int { return len(d.retired) }

// Stats snapshots the counters. The atomic fields are exact at their
// load instants; Retired/Freed/Pending are writer-side values and need
// the caller's lock for a consistent cut.
func (d *Domain) Stats() Stats {
	return Stats{
		Pins:     d.pins.Load(),
		PinFails: d.pinFails.Load(),
		Retired:  d.retiredTotal,
		Freed:    d.freedTotal,
		Pending:  int64(len(d.retired)),
	}
}
