package epoch

import (
	"math"
	"testing"
)

// FuzzEpochReclaim drives a Domain through an arbitrary interleaving of
// pin / unpin / retire / collect operations decoded from the fuzz input
// and checks the two safety properties of the reclamation protocol:
//
//  1. No retired object is freed while a reader pinned at or before its
//     retirement epoch is still active (checked against a snapshot of
//     the pin table taken just before each Collect).
//  2. Nothing leaks: after all pins are released and the domain
//     quiesces, every retired object has been freed exactly once.
func FuzzEpochReclaim(f *testing.F) {
	f.Add([]byte{0, 2, 3, 1, 3})                         // pin, retire, collect, unpin, collect
	f.Add([]byte{2, 2, 3, 3})                            // retire-heavy, no pins
	f.Add([]byte{0, 0, 0, 2, 1, 3, 2, 3, 1, 1, 3})      // staggered unpins
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 3, 2, 3, 2, 3})   // pin churn
	f.Add([]byte{2, 0, 3, 1, 3})                         // pin after retire must not block
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDomain()

		type token struct {
			retireEpoch uint64
			freedAt     int // op index of the freeing Collect, -1 if live
		}
		var tokens []*token
		var pins []Pin // currently-held pins, in claim order

		minActive := func() uint64 {
			min := uint64(math.MaxUint64)
			for i := range d.table {
				if v := d.table[i].v.Load(); v != 0 && v < min {
					min = v
				}
			}
			return min
		}

		for opIdx, b := range data {
			switch b % 4 {
			case 0: // pin
				if p, ok := d.TryPin(); ok {
					pins = append(pins, p)
				}
			case 1: // unpin oldest held pin
				if len(pins) > 0 {
					d.Unpin(pins[0])
					pins = pins[1:]
				}
			case 2: // retire a tracked token
				tk := &token{retireEpoch: d.epoch.Load(), freedAt: -1}
				idx := opIdx
				d.Retire(func() {
					if tk.freedAt != -1 {
						t.Fatalf("token retired at epoch %d freed twice", tk.retireEpoch)
					}
					tk.freedAt = idx
				})
				tokens = append(tokens, tk)
			case 3: // collect, then audit every free it performed
				// Collect advances the epoch before scanning pins, so the
				// pre-call snapshot is the conservative bound: any pin
				// active across the call was at most this value.
				bound := minActive()
				before := make(map[*token]bool, len(tokens))
				for _, tk := range tokens {
					before[tk] = tk.freedAt != -1
				}
				d.Collect()
				for _, tk := range tokens {
					if tk.freedAt != -1 && !before[tk] && tk.retireEpoch >= bound {
						t.Fatalf("token retired at epoch %d freed while a pin at epoch %d was active", tk.retireEpoch, bound)
					}
				}
			}
		}

		// Quiesce: release every pin and collect until drained.
		for _, p := range pins {
			d.Unpin(p)
		}
		for i := 0; d.Pending() > 0; i++ {
			if i > len(tokens)+1 {
				t.Fatalf("domain did not drain: %d still pending after %d collects", d.Pending(), i)
			}
			d.Collect()
		}
		for _, tk := range tokens {
			if tk.freedAt == -1 {
				t.Fatalf("token retired at epoch %d leaked (never freed)", tk.retireEpoch)
			}
		}
		st := d.Stats()
		if st.Retired != int64(len(tokens)) || st.Freed != int64(len(tokens)) || st.Pending != 0 {
			t.Fatalf("stats %+v inconsistent with %d tracked tokens", st, len(tokens))
		}
	})
}
