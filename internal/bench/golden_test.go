package bench

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/workload"
)

// goldenShootoutConfig is the fixed single-shard cell the golden trace
// pins: small enough to run in milliseconds, big enough to cross a
// resize and put the index cache under pressure.
func goldenShootoutConfig() ShootoutConfig {
	return ShootoutConfig{
		Engines:    []string{"rhik"},
		Workloads:  []string{"ycsb-a"},
		Records:    2000,
		Ops:        5000,
		Seed:       42,
		ValueMin:   64,
		ValueMax:   1024,
		ValueTheta: 0.9,
		Capacity:   64 << 20,
		// 16 KiB cannot hold the ~2000-key record-page working set, so
		// the golden cell pins a nonzero flash-reads-per-GET figure.
		CacheBudget: 16 << 10,
	}
}

// TestGoldenYCSBAOpStream pins the byte-exact op sequence the YCSB-A
// generator emits for the golden cell's tuple. Any change to the
// generators, the scramble, or the size distribution shifts this hash —
// which silently invalidates every cross-version shootout comparison,
// so it must be a deliberate, visible change.
func TestGoldenYCSBAOpStream(t *testing.T) {
	cfg := goldenShootoutConfig()
	spec, err := workload.YCSBWorkload("ycsb-a")
	if err != nil {
		t.Fatal(err)
	}
	// Mirror runCell's construction exactly: run sizes seeded Seed+2,
	// generator seeded Seed+3.
	gen, err := workload.NewYCSB(spec, uint64(cfg.Records),
		workload.NewZipfSizes(cfg.ValueMin, cfg.ValueMax, cfg.ValueTheta, cfg.Seed+2), cfg.Seed+3)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := 0; i < cfg.Ops; i++ {
		op := gen.Next()
		put(uint64(op.Kind))
		put(op.KeyID)
		put(uint64(op.ValueSize))
	}
	const golden = uint64(0x25732ec6888f8f82)
	if got := h.Sum64(); got != golden {
		t.Fatalf("YCSB-A op-stream hash %#x, want %#x (generator output drifted)", got, golden)
	}
}

// TestGoldenYCSBACell pins the golden cell's end-to-end result — the
// simulated timeline and every counter the shootout reports. The
// fingerprint couples generators, engine adapters, the phase-reset
// protocol, and the firmware timing model: drift anywhere shows here.
func TestGoldenYCSBACell(t *testing.T) {
	res, err := RunShootout(goldenShootoutConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	got := fmt.Sprintf(
		"elapsed=%d getP50=%d getP99=%d putP50=%d putP99=%d frpg=%.6f fr=%d fp=%d resizes=%d collisions=%d notfound=%d",
		c.SimElapsedNs, c.RetrieveP50Ns, c.RetrieveP99Ns, c.StoreP50Ns, c.StoreP99Ns,
		c.FlashReadsPerGet, c.FlashReads, c.FlashPrograms, c.Resizes, c.Collisions, c.NotFound)
	t.Logf("fingerprint: %s", got)
	const golden = "elapsed=1862198448 getP50=112639 getP99=954158 putP50=112639 putP99=955161 " +
		"frpg=0.518927 fr=5727 fp=1672 resizes=1 collisions=0 notfound=0"
	if got != golden {
		t.Fatalf("golden YCSB-A cell drifted:\n got: %s\nwant: %s", got, golden)
	}
}
