package bench

import "testing"

// tieredShootoutConfig is the golden cell's DRAM budget re-split across
// the cache tiers: 8 KiB index pages + 8 KiB hot values instead of
// 16 KiB index-only, with admission and scan prefetch on. Total DRAM is
// identical to goldenShootoutConfig, so any flash-read delta is the
// tiering's doing, not extra memory.
func tieredShootoutConfig() ShootoutConfig {
	cfg := goldenShootoutConfig()
	cfg.CacheBudget = 8 << 10
	cfg.ValueCacheBudget = 8 << 10
	cfg.CacheAdmission = true
	cfg.ScanPrefetch = true
	return cfg
}

// TestTieredFlashReadReduction pins the tentpole's perf claim: at the
// golden cell's 16 KiB total DRAM budget, splitting in a hot-value tier
// cuts flash-reads-per-GET by at least 25% on the read-heavy YCSB-B and
// YCSB-C columns versus the index-only baseline. Both runs are fully
// deterministic, so this is a regression pin, not a flaky perf test —
// the measured reductions at this cell are ~33% (B) and ~35% (C), so
// the 25% floor has real slack.
func TestTieredFlashReadReduction(t *testing.T) {
	base := goldenShootoutConfig()
	base.Workloads = []string{"ycsb-b", "ycsb-c"}
	tiered := tieredShootoutConfig()
	tiered.Workloads = base.Workloads

	bres, err := RunShootout(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := RunShootout(tiered, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range tres.Cells {
		bc := bres.Cells[i]
		if tc.Workload != bc.Workload {
			t.Fatalf("cell %d: workload mismatch %s vs %s", i, tc.Workload, bc.Workload)
		}
		if bc.FlashReadsPerGet <= 0 {
			t.Fatalf("%s: baseline frpg %.6f — cell no longer under cache pressure",
				bc.Workload, bc.FlashReadsPerGet)
		}
		if tc.FlashReadsPerGet > 0.75*bc.FlashReadsPerGet {
			t.Fatalf("%s: tiered frpg %.6f vs baseline %.6f — less than the pinned 25%% reduction",
				tc.Workload, tc.FlashReadsPerGet, bc.FlashReadsPerGet)
		}
		if tc.ValueCacheHitRate <= 0 {
			t.Fatalf("%s: value tier scored no hits", tc.Workload)
		}
	}
}

// TestTieredScanPrefetch pins the YCSB-E side of the tentpole: with
// ScanPrefetch on, prefix scans serve sibling records from staged pages
// (prefetch hits accrue) and return exactly the same result set — same
// scan count, same scanned-entry total — as the per-record baseline.
func TestTieredScanPrefetch(t *testing.T) {
	base := goldenShootoutConfig()
	base.Workloads = []string{"ycsb-e"}
	tiered := tieredShootoutConfig()
	tiered.Workloads = base.Workloads

	bres, err := RunShootout(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := RunShootout(tiered, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc, tc := bres.Cells[0], tres.Cells[0]
	if tc.PrefetchHits == 0 {
		t.Fatal("scan prefetch scored no hits on the scan-heavy workload")
	}
	if tc.ScanOps != bc.ScanOps || tc.ScannedEntries != bc.ScannedEntries {
		t.Fatalf("prefetch changed scan results: ops %d vs %d, entries %d vs %d",
			tc.ScanOps, bc.ScanOps, tc.ScannedEntries, bc.ScannedEntries)
	}
}
