package bench

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/device"
	"repro/internal/workload"
)

// TestEngineSnapshotOracle is the map-oracle conformance case for
// GET key@snapshot: against the snapshot-capable engine, a capture must
// answer every subsequent point read from a frozen copy of the oracle —
// bit-exact — no matter how the live store (and live oracle) move on,
// and its Iterate must enumerate exactly the frozen oracle in key order.
// Engines whose index cannot enumerate records must refuse the capture
// cleanly with device.ErrNoSnapshot, never serve a half view.
func TestEngineSnapshotOracle(t *testing.T) {
	for _, spec := range Engines() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			eng, err := spec.Open(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			se, ok := eng.(SnapshotEngine)
			if !ok {
				t.Skipf("%s does not expose the snapshot surface (facade adapter)", spec.Name)
			}

			oracle := map[string][]byte{}
			rng := rand.New(rand.NewSource(7))
			const keys = 600
			key := func(id uint64) []byte { return workload.KeyBytes(id) }
			val := func(tag string, id uint64) []byte {
				return []byte(fmt.Sprintf("%s-%d-%d", tag, id, rng.Int63()))
			}

			// Phase 1: populate engine and oracle in lockstep.
			for i := 0; i < 2000; i++ {
				id := uint64(rng.Intn(keys))
				k := key(id)
				if rng.Intn(8) == 7 {
					if err := eng.Delete(k); err != nil && !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("delete key %d: %v", id, err)
					}
					delete(oracle, string(k))
					continue
				}
				v := val("pre", id)
				if err := eng.Store(k, v); err != nil {
					t.Fatalf("store key %d: %v", id, err)
				}
				oracle[string(k)] = v
			}

			ss, err := se.Snapshot()
			if spec.Name != "rhik-set" {
				// The baselines cannot enumerate; the refusal must be the
				// typed sentinel and must not leave a half-open handle.
				if !errors.Is(err, device.ErrNoSnapshot) {
					t.Fatalf("%s snapshot: err = %v, want ErrNoSnapshot", spec.Name, err)
				}
				if open := engineSnapshotsOpen(eng); open != 0 {
					t.Fatalf("%s: %d snapshots open after refused capture", spec.Name, open)
				}
				return
			}
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			defer ss.Release()
			frozen := make(map[string][]byte, len(oracle))
			for k, v := range oracle {
				frozen[k] = v
			}

			// Phase 2: keep mutating the live engine and live oracle hard —
			// overwrites, deletes, and fresh inserts beyond the frozen key
			// range.
			for i := 0; i < 2000; i++ {
				id := uint64(rng.Intn(keys + 200))
				k := key(id)
				if rng.Intn(6) == 5 {
					if err := eng.Delete(k); err != nil && !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("post-capture delete key %d: %v", id, err)
					}
					delete(oracle, string(k))
					continue
				}
				v := val("post", id)
				if err := eng.Store(k, v); err != nil {
					t.Fatalf("post-capture store key %d: %v", id, err)
				}
				oracle[string(k)] = v
			}

			// GET key@snapshot answers from the frozen oracle for every key
			// either epoch ever saw, plus never-written probes.
			for id := uint64(0); id < keys+220; id++ {
				k := key(id)
				v, err := ss.Get(k)
				want, live := frozen[string(k)]
				if !live {
					if !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("snapshot get key %d: err = %v, want ErrNotFound", id, err)
					}
					continue
				}
				if err != nil || !bytes.Equal(v, want) {
					t.Fatalf("snapshot get key %d: %q/%v, frozen oracle says %q", id, v, err, want)
				}
			}

			// Snapshot Iterate enumerates exactly the frozen oracle, sorted.
			entries, err := ss.Iterate(nil)
			if err != nil {
				t.Fatalf("snapshot iterate: %v", err)
			}
			wantKeys := make([]string, 0, len(frozen))
			for k := range frozen {
				wantKeys = append(wantKeys, k)
			}
			sort.Strings(wantKeys)
			if len(entries) != len(wantKeys) {
				t.Fatalf("snapshot iterate: %d entries, frozen oracle has %d", len(entries), len(wantKeys))
			}
			for i, e := range entries {
				if string(e.Key) != wantKeys[i] {
					t.Fatalf("snapshot iterate entry %d: key %q, want %q", i, e.Key, wantKeys[i])
				}
				if !bytes.Equal(e.Value, frozen[wantKeys[i]]) {
					t.Fatalf("snapshot iterate entry %d: stale/torn value for %q", i, e.Key)
				}
			}

			// The live engine meanwhile agrees with the live oracle.
			var dst []byte
			for id := uint64(0); id < keys+220; id++ {
				k := key(id)
				v, err := eng.Retrieve(dst[:0], k)
				dst = v
				want, live := oracle[string(k)]
				if !live {
					if !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("live get key %d: err = %v, want ErrNotFound", id, err)
					}
					continue
				}
				if err != nil || !bytes.Equal(v, want) {
					t.Fatalf("live get key %d: %q/%v, oracle says %q", id, v, err, want)
				}
			}
		})
	}
}

// engineSnapshotsOpen reads the open-snapshot gauge of a Set-backed
// engine (0 for adapters without one).
func engineSnapshotsOpen(eng Engine) int64 {
	if se, ok := eng.(*setEngine); ok {
		return se.set.Stats().SnapshotsOpen
	}
	return 0
}
