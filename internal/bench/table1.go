package bench

import (
	"fmt"
	"io"

	"repro/internal/workload"
)

// Table1Row is one workload row of Table I with its implied key range.
type Table1Row struct {
	Workload      string
	Buckets       []workload.Bucket
	EmpiricalMean float64
	MinKeys       int64
	MaxKeys       int64
}

// Table1Capacity is the 4 TB device Table I reasons about.
const Table1Capacity = int64(4) << 40

// Table1 reproduces Table I: the request-size mixes of Baidu Atlas and
// Facebook Memcached ETC, and the key-count ranges a 4 TB KVSSD must
// index to serve them — the motivation for supporting "virtually
// unlimited" keys.
func Table1(w io.Writer) []Table1Row {
	dists := []*workload.Discrete{
		workload.BaiduAtlasWrite(1),
		workload.FacebookETC(2),
	}
	var rows []Table1Row
	fmt.Fprintln(w, "Table I — request-size diversity and implied key counts (4 TB device)")
	for _, d := range dists {
		// Empirical mean from sampling (validates the generator).
		const draws = 100000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(d.Next())
		}
		minK, maxK := workload.KeyCountRange(Table1Capacity, d)
		row := Table1Row{
			Workload:      d.Name(),
			Buckets:       d.Buckets,
			EmpiricalMean: sum / draws,
			MinKeys:       minK,
			MaxKeys:       maxK,
		}
		rows = append(rows, row)

		fmt.Fprintf(w, "\n%s\n", row.Workload)
		fmt.Fprintf(w, "  %-22s %s\n", "request size", "share")
		for _, b := range row.Buckets {
			fmt.Fprintf(w, "  %-22s %5.1f%%\n", fmt.Sprintf("%s-%s", sz(b.Lo), sz(b.Hi)), b.P*100)
		}
		fmt.Fprintf(w, "  empirical mean size: %s\n", sz(int(row.EmpiricalMean)))
		fmt.Fprintf(w, "  implied keys on 4TB: %s – %s\n", human(row.MinKeys), human(row.MaxKeys))
	}
	hr(w)
	fmt.Fprintln(w, "Paper: Baidu 34M–2.7B keys; FB ETC 24B–744B keys — far beyond the ~3.1B a PM983 supports.")
	return rows
}

func sz(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func human(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
