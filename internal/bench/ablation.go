package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ResizeModeRow compares one resize strategy's latency profile during
// index growth.
type ResizeModeRow struct {
	Mode      string
	Keys      int64
	Resizes   int
	TotalHalt sim.Duration // accumulated queue-halt time (stop-the-world only)
	StoreP50  sim.Duration
	StoreP999 sim.Duration
	StoreMax  sim.Duration
}

// AblationResizeMode quantifies the paper's §VI "real-time index
// scaling" discussion: the default stop-the-world migration concentrates
// its cost into a few commands (huge tail latency), while incremental
// migration bounds per-command work at the price of a longer total
// migration window.
func AblationResizeMode(w io.Writer, s Scale) ([]ResizeModeRow, error) {
	keys := s.div64(2_000_000, 80_000)
	fmt.Fprintf(w, "Ablation — resize strategy during growth to %d keys (store latency, simulated)\n", keys)
	fmt.Fprintf(w, "%-16s %-8s %-14s %-12s %-12s %-12s\n",
		"mode", "resizes", "total halt", "p50", "p99.9", "max")

	var rows []ResizeModeRow
	for _, mode := range []struct {
		name        string
		incremental bool
	}{
		{"stop-the-world", false},
		{"incremental", true},
	} {
		dev, err := device.Open(device.Config{
			Capacity:          keys*64 + (128 << 20),
			Index:             device.IndexRHIK,
			CacheBudget:       64 << 20,
			IncrementalResize: mode.incremental,
		})
		if err != nil {
			return nil, err
		}
		// Measure per-command firmware time: the interval the command
		// occupies the device, which is where a stop-the-world migration
		// lands as one giant stall.
		var h metrics.Histogram
		var d asyncDriver
		d.dev = dev
		value := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		for i := int64(0); i < keys; i++ {
			before := dev.Now()
			if err := d.store(workload.KeyBytes(uint64(i)), value); err != nil &&
				!errors.Is(err, index.ErrCollision) {
				return nil, err
			}
			h.Record(int64(dev.Now().Sub(before)))
		}
		row := ResizeModeRow{
			Mode:      mode.name,
			Keys:      keys,
			Resizes:   len(dev.ResizeEvents()),
			TotalHalt: dev.Stats().ResizeHalt,
			StoreP50:  sim.Duration(h.Percentile(50)),
			StoreP999: sim.Duration(h.Percentile(99.9)),
			StoreMax:  sim.Duration(h.Max()),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-16s %-8d %-14s %-12s %-12s %-12s\n",
			row.Mode, row.Resizes, row.TotalHalt.String(),
			row.StoreP50.String(), row.StoreP999.String(), row.StoreMax.String())
	}
	hr(w)
	fmt.Fprintln(w, "Expectation: identical p50; incremental mode cuts worst-case store latency by orders")
	fmt.Fprintln(w, "of magnitude because no single command pays for a whole migration.")
	return rows, nil
}
