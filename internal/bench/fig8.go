package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig8aResult is one key-size curve: collision percentage vs keys.
type Fig8aResult struct {
	KeySize int
	Curve   *metrics.Series // x: keys inserted, y: cumulative % collisions
}

// Fig8bResult is one occupancy-threshold curve.
type Fig8bResult struct {
	Threshold float64
	Curve     *metrics.Series
}

// Fig8a reproduces Fig. 8a: the hopscotch collision (abort) percentage
// as the index grows, for 16 B vs 128 B keys. The index resizes normally
// at 80 %; collisions are the inserts hopscotch cannot place.
func Fig8a(w io.Writer, s Scale) ([]Fig8aResult, error) {
	targetKeys := s.div64(2_000_000, 60_000)
	fmt.Fprintf(w, "Fig. 8a — collision %% vs index size, by key size (to %d keys)\n", targetKeys)
	var results []Fig8aResult
	for _, ks := range []int{16, 128} {
		curve, err := fig8Grow(targetKeys, ks, 0.80)
		if err != nil {
			return nil, err
		}
		results = append(results, Fig8aResult{KeySize: ks, Curve: curve})
		fmt.Fprintf(w, "\nkey size %dB\n", ks)
		fmt.Fprint(w, curve.Table("keys", "%collisions"))
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper): both key sizes show the same low, flat collision trend —")
	fmt.Fprintln(w, "fixed-width signatures decouple collision behaviour from key length.")
	return results, nil
}

// Fig8b reproduces Fig. 8b: collision percentage vs index size for
// resize thresholds of 60–90 % occupancy. Above 80 % the hopscotch
// neighborhoods saturate and collision handling degrades sharply.
func Fig8b(w io.Writer, s Scale) ([]Fig8bResult, error) {
	targetKeys := s.div64(1_000_000, 50_000)
	fmt.Fprintf(w, "Fig. 8b — collision %% vs index size, by occupancy threshold (to %d keys)\n", targetKeys)
	var results []Fig8bResult
	for _, th := range []float64{0.60, 0.70, 0.80, 0.90} {
		curve, err := fig8Grow(targetKeys, 16, th)
		if err != nil {
			return nil, err
		}
		results = append(results, Fig8bResult{Threshold: th, Curve: curve})
		fmt.Fprintf(w, "\noccupancy threshold %.0f%%\n", th*100)
		fmt.Fprint(w, curve.Table("keys", "%collisions"))
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper): 60–80%% thresholds keep collisions near zero; at 90%% collision")
	fmt.Fprintln(w, "handling degrades heavily — motivating the 80%% default.")
	return results, nil
}

// fig8Grow inserts keys of the given size into a RHIK device with the
// given resize threshold, sampling the cumulative collision percentage.
func fig8Grow(targetKeys int64, keySize int, threshold float64) (*metrics.Series, error) {
	capacity := targetKeys*int64(keySize+48) + (128 << 20)
	dev, err := device.Open(device.Config{
		Capacity:           capacity,
		Index:              device.IndexRHIK,
		CacheBudget:        64 << 20,
		OccupancyThreshold: threshold,
	})
	if err != nil {
		return nil, err
	}

	var d asyncDriver
	d.dev = dev
	value := []byte{1, 2, 3, 4}
	var curve metrics.Series
	samples := int64(10)
	step := targetKeys / samples
	if step < 1 {
		step = 1
	}
	var collisions, attempts int64
	for i := int64(0); attempts < targetKeys; i++ {
		attempts++
		key := workload.KeyBytesSized(uint64(i), keySize)
		if err := d.store(key, value); err != nil {
			if errors.Is(err, index.ErrCollision) {
				collisions++
				continue
			}
			return nil, err
		}
		if attempts%step == 0 {
			curve.Add(float64(attempts), 100*float64(collisions)/float64(attempts))
		}
	}
	return &curve, nil
}
