package bench

import (
	"io"
	"strings"
	"testing"
)

func TestTable1RangesMatchPaperDecades(t *testing.T) {
	var sb strings.Builder
	rows := Table1(&sb)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	baidu, etc := rows[0], rows[1]
	if baidu.MinKeys < 15e6 || baidu.MinKeys > 60e6 {
		t.Errorf("Baidu min %d, paper ~34M", baidu.MinKeys)
	}
	if baidu.MaxKeys < 1e9 || baidu.MaxKeys > 5e9 {
		t.Errorf("Baidu max %d, paper ~2.7B", baidu.MaxKeys)
	}
	if etc.MinKeys < 10e9 || etc.MaxKeys < 300e9 {
		t.Errorf("ETC range %d–%d, paper 24B–744B", etc.MinKeys, etc.MaxKeys)
	}
	out := sb.String()
	for _, want := range []string{"baidu-atlas-write", "fb-memcached-etc", "implied keys"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// skipIfShort gates the full experiment suites: each replays a paper
// figure end to end, which is far too slow under the race detector.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full experiment suite; skipped with -short")
	}
}

func TestFig2BandwidthCollapsesWithKeyCount(t *testing.T) {
	skipIfShort(t)
	results, err := Fig2(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cases", len(results))
	}
	// Key counts must span decades.
	if results[3].Keys < 50*results[0].Keys {
		t.Fatalf("key-count spread too small: %d vs %d", results[0].Keys, results[3].Keys)
	}
	// The largest-key case must degrade much more than the smallest:
	// compare end-of-fill bandwidth retention.
	small := results[0].LastQuart
	huge := results[3].LastQuart
	if small < 0.5 {
		t.Errorf("few-keys case degraded to %.2f, want >= 0.5 of peak", small)
	}
	if huge > small*0.8 {
		t.Errorf("huge-keys case retained %.2f vs small %.2f — no collapse", huge, small)
	}
}

func TestFig5RHIKBeatsMultiLevel(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig5(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 8 clusters × 2 indexes
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range rows {
		byKey[r.Cluster+"/"+r.Index] = r
	}
	for _, cl := range []string{"001", "022", "026", "052", "072", "081", "083", "096"} {
		rh := byKey[cl+"/rhik"]
		// 5b: RHIK's one-flash-read guarantee, per cluster.
		if rh.ReadsMax > 1 {
			t.Errorf("cluster %s: RHIK max reads/op = %d", cl, rh.ReadsMax)
		}
		if rh.AtMostOnePct < 99.9 {
			t.Errorf("cluster %s: RHIK <=1-read%% = %.2f", cl, rh.AtMostOnePct)
		}
	}
	// 5a: the multi-level index's miss ratio separates the regimes —
	// small-index clusters stay low, index >> cache clusters go high.
	for _, cl := range []string{"022", "026", "052", "072"} {
		if ml := byKey[cl+"/mlhash"]; ml.MissRatio > 0.35 {
			t.Errorf("small cluster %s: mlhash miss %.3f, want < 0.35", cl, ml.MissRatio)
		}
	}
	for _, cl := range []string{"083", "096"} {
		ml, rh := byKey[cl+"/mlhash"], byKey[cl+"/rhik"]
		if ml.MissRatio < 0.5 {
			t.Errorf("large cluster %s: mlhash miss %.3f, want > 0.5", cl, ml.MissRatio)
		}
		// Deep cascades mean multi-read metadata accesses (Fig. 5b)...
		if ml.ReadsMax < 2 {
			t.Errorf("large cluster %s: mlhash max reads/op = %d, want >= 2", cl, ml.ReadsMax)
		}
		// ...so RHIK moves fewer flash reads per metadata access.
		if rh.ReadsMean >= ml.ReadsMean {
			t.Errorf("large cluster %s: RHIK mean reads %.2f not below mlhash %.2f",
				cl, rh.ReadsMean, ml.ReadsMean)
		}
	}
}

func TestFig6RHIKWinsAndAsyncBeatsSync(t *testing.T) {
	skipIfShort(t)
	cells, err := Fig6(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig6Cell{}
	for _, c := range cells {
		byKey[c.Mode+"/"+c.Profile+"/"+sz(c.ValueSize)] = c
	}
	// RHIK must beat the KVSSD stand-in (normalized > 1) in every group.
	wins := 0
	total := 0
	for k, c := range byKey {
		if c.Profile != "rhik" {
			continue
		}
		total++
		if c.Normalized > 1.0 {
			wins++
		} else {
			t.Logf("rhik did not win %s (%.2fx)", k, c.Normalized)
		}
	}
	if wins < total*3/4 {
		t.Errorf("rhik won only %d/%d groups", wins, total)
	}
	// Async ≥ sync for the same profile/size.
	for _, p := range []string{"rhik", "kvssd"} {
		a := byKey["write-async/"+p+"/4KB"]
		s := byKey["write-sync/"+p+"/4KB"]
		if a.MBps <= s.MBps {
			t.Errorf("%s: async 4KB write (%.1f) not above sync (%.1f)", p, a.MBps, s.MBps)
		}
	}
}

func TestFig7RateNearOne(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig7(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d resizes", len(rows))
	}
	// Keys before each resize must roughly double.
	for i := 1; i < len(rows); i++ {
		ratio := float64(rows[i].KeysBefore) / float64(rows[i-1].KeysBefore)
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("resize %d: keys grew %.2fx, want ~2x", i, ratio)
		}
	}
	// The paper's claim: rate of change stays around (or below) 1.
	// Skip the earliest resizes where fixed overheads dominate.
	for i := 2; i < len(rows); i++ {
		if rows[i].Rate > 1.6 {
			t.Errorf("resize %d: rate %.2f, want ~<= 1", i, rows[i].Rate)
		}
	}
}

func TestFig8aKeySizeInsensitive(t *testing.T) {
	skipIfShort(t)
	results, err := Fig8a(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d curves", len(results))
	}
	for _, r := range results {
		if r.Curve.Len() == 0 {
			t.Fatalf("empty curve for key size %d", r.KeySize)
		}
		// At the default 80% threshold collisions stay rare.
		if last := r.Curve.Y[r.Curve.Len()-1]; last > 1.0 {
			t.Errorf("key size %d: %.3f%% collisions, want < 1%%", r.KeySize, last)
		}
	}
	// Similar trends across key sizes (both near zero).
	a := results[0].Curve.Y[results[0].Curve.Len()-1]
	b := results[1].Curve.Y[results[1].Curve.Len()-1]
	if diff := a - b; diff > 0.5 || diff < -0.5 {
		t.Errorf("collision trends diverge: %.3f vs %.3f", a, b)
	}
}

func TestFig8bDegradesAboveEighty(t *testing.T) {
	skipIfShort(t)
	results, err := Fig8b(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d curves", len(results))
	}
	final := map[float64]float64{}
	for _, r := range results {
		final[r.Threshold] = r.Curve.Y[r.Curve.Len()-1]
	}
	if final[0.90] <= final[0.80] {
		t.Errorf("90%% threshold (%.4f%%) not worse than 80%% (%.4f%%)", final[0.90], final[0.80])
	}
	if final[0.60] > 0.05 {
		t.Errorf("60%% threshold has %.4f%% collisions, want ~0", final[0.60])
	}
}

func TestScaleHelpers(t *testing.T) {
	q := Quick()
	if q.div(1600, 10) != 100 {
		t.Fatal("div wrong")
	}
	if q.div(32, 10) != 10 {
		t.Fatal("div floor wrong")
	}
	if Full().div64(100, 1) != 100 {
		t.Fatal("full scale must not shrink")
	}
}

func TestAblationResizeModeTailLatency(t *testing.T) {
	skipIfShort(t)
	rows, err := AblationResizeMode(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	halt, incr := rows[0], rows[1]
	if halt.Resizes == 0 || incr.Resizes == 0 {
		t.Fatal("no resizes in ablation run")
	}
	if incr.StoreMax*4 > halt.StoreMax {
		t.Fatalf("incremental max %v not well below stop-the-world %v",
			incr.StoreMax, halt.StoreMax)
	}
	if incr.TotalHalt >= halt.TotalHalt {
		t.Fatalf("incremental halt %v not below stop-the-world %v",
			incr.TotalHalt, halt.TotalHalt)
	}
}
