package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/mlhash"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig2Case is one subplot of Fig. 2: filling the device with fixed-size
// values under the multi-level hash index.
type Fig2Case struct {
	Label     string
	ValueSize int
}

// Fig2Result is the measured curve for one case.
type Fig2Result struct {
	Case       Fig2Case
	Keys       int64
	Normalized *metrics.Series // x: utilization fraction, y: normalized bandwidth
	FirstHalf  float64         // mean normalized bandwidth, first half of fill
	LastQuart  float64         // mean normalized bandwidth, last quarter of fill
}

// fig2Cases scales the paper's four key-count regimes (1.83 M × 2 MB →
// 3.1 B × 11 B on 3.84 TB) to emulator capacity: the value-size sweep
// spans the same ~4 decades of index cardinality, and the cache budget
// is sized so early cascade levels fit while the full index does not.
func fig2Cases(s Scale) (capacity int64, cache int64, cases []Fig2Case) {
	if s.Factor > 1 {
		// Index footprints straddle the cache: ~1 page, ~0.1 MB, ~0.8 MB
		// (≈ cache), ~3.2 MB (≫ cache) — the paper's four regimes.
		capacity = 16 << 20
		cache = 768 << 10
		cases = []Fig2Case{
			{Label: "few-keys/large-values", ValueSize: 32 << 10},
			{Label: "moderate-keys/2KB", ValueSize: 2 << 10},
			{Label: "many-keys/256B", ValueSize: 256},
			{Label: "huge-keys/tiny-values", ValueSize: 64},
		}
		return capacity, cache, cases
	}
	capacity = 1 << 30
	cache = 10 << 20
	cases = []Fig2Case{
		{Label: "few-keys/large-values", ValueSize: 2 << 20},
		{Label: "moderate-keys/32KB", ValueSize: 32 << 10},
		{Label: "many-keys/2KB", ValueSize: 2 << 10},
		{Label: "huge-keys/tiny-values", ValueSize: 64},
	}
	return capacity, cache, cases
}

// Fig2 reproduces Fig. 2: write bandwidth vs. SSD space utilization for
// growing key counts under the multi-level index. The curve stays flat
// while the index fits the cache and collapses once it does not.
func Fig2(w io.Writer, s Scale) ([]Fig2Result, error) {
	capacity, cache, cases := fig2Cases(s)
	fmt.Fprintf(w, "Fig. 2 — write bandwidth vs space utilization (multi-level index, cache %d KiB, capacity %d MiB)\n",
		cache>>10, capacity>>20)

	var results []Fig2Result
	for _, c := range cases {
		r, err := fig2Fill(c, capacity, cache)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		fmt.Fprintf(w, "\n(%s) value=%dB keys=%d\n", c.Label, c.ValueSize, r.Keys)
		fmt.Fprint(w, r.Normalized.Table("utilization", "norm_bandwidth"))
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper): flat near 1.0 for few keys; progressively deeper collapse as key count grows.")
	return results, nil
}

func fig2Fill(c Fig2Case, capacity, cache int64) (Fig2Result, error) {
	dev, err := device.Open(device.Config{
		Capacity:    capacity,
		Index:       device.IndexMultiLevel,
		CacheBudget: cache,
		MLHash:      mlLevelsFor(capacity, c.ValueSize),
	})
	if err != nil {
		return Fig2Result{}, err
	}

	// Fill to ~85% utilization, sampling bandwidth per 5% bucket.
	target := capacity * 85 / 100
	const buckets = 17
	bucketBytes := target / buckets
	var series metrics.Series
	var d asyncDriver
	d.dev = dev

	var written int64
	var keys int64
	var collisions int64
	bucketStart := sim.Time(0)
	var bucketWritten int64
	for written < target {
		id := uint64(keys)
		if err := d.store(workload.KeyBytes(id), workload.ValuePayload(id, c.ValueSize)); err != nil {
			if errors.Is(err, device.ErrDeviceFull) {
				break
			}
			if errors.Is(err, index.ErrCollision) {
				// The paper's abort semantics: the application retries
				// with another key. A saturated cascade means the index,
				// not the media, is full — the paper's §III point.
				keys++
				collisions++
				if collisions > 1000 && collisions > keys/2 {
					break
				}
				continue
			}
			return Fig2Result{}, err
		}
		d.submit = d.submit.Add(sim.Microsecond)
		keys++
		n := int64(c.ValueSize + 16)
		written += n
		bucketWritten += n
		if bucketWritten >= bucketBytes {
			now := dev.Drain()
			series.Add(float64(written)/float64(capacity), mbps(bucketWritten, now.Sub(bucketStart)))
			bucketStart = now
			bucketWritten = 0
		}
	}
	// Drop the first two buckets before normalizing: they ride the empty
	// write-buffer ring (no backpressure yet) and would inflate the peak
	// that the rest of the curve is normalized against.
	trimmed := &metrics.Series{Name: series.Name}
	for i := 2; i < series.Len(); i++ {
		trimmed.Add(series.X[i], series.Y[i])
	}
	if trimmed.Len() == 0 {
		trimmed = &series
	}
	norm := trimmed.Normalized()
	return Fig2Result{
		Case:       c,
		Keys:       keys,
		Normalized: norm,
		FirstHalf:  meanY(norm, 0, norm.Len()/2),
		LastQuart:  meanY(norm, norm.Len()*3/4, norm.Len()),
	}, nil
}

// mlLevelsFor provisions the baseline cascade to hold capacity/valueSize
// keys, as the stock firmware would for its rated capacity.
func mlLevelsFor(capacity int64, valueSize int) mlhash.Config {
	keys := capacity / int64(valueSize+16)
	// ~2520 slots per 32 KiB page; an 8-level cascade has L0·(2^8−1)
	// pages in total.
	l0 := int(keys/(2520*255)) + 1
	return mlhash.Config{Levels: 8, Level0Pages: l0}
}

func meanY(s *metrics.Series, lo, hi int) float64 {
	if hi > s.Len() {
		hi = s.Len()
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for i := lo; i < hi; i++ {
		sum += s.Y[i]
	}
	return sum / float64(hi-lo)
}
