package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	rhik "repro"
	"repro/internal/workload"
)

// ShootoutConfig sizes a cross-engine shootout: every (engine ×
// workload) cell runs under identical seeds, so two cells in the same
// column see byte-identical op streams and any difference in the
// numbers is the engine's doing.
type ShootoutConfig struct {
	// Engines and Workloads name the grid axes (defaults: every
	// registered engine × every YCSB core workload).
	Engines   []string `json:"engines"`
	Workloads []string `json:"workloads"`

	// Records preloads this many keys before the measured run
	// (default 50k). Ops is the measured op count (default 100k).
	Records int `json:"records"`
	Ops     int `json:"ops"`

	// Seed drives every generator; the same seed is reused for every
	// cell (default 42).
	Seed int64 `json:"seed"`

	// Value sizes are zipf-skewed over [ValueMin, ValueMax] with
	// ValueTheta (defaults 64 B .. 4 KiB, theta 0.9); ValueMin ==
	// ValueMax gives fixed sizes.
	ValueMin   int     `json:"value_min"`
	ValueMax   int     `json:"value_max"`
	ValueTheta float64 `json:"value_theta"`

	// Theta overrides the key-popularity skew of every workload spec
	// when non-zero (specs default to YCSB's 0.99).
	Theta float64 `json:"theta,omitempty"`

	// Capacity and CacheBudget size each engine (defaults 256 MiB and
	// 512 KiB — small enough that the index does not fit in DRAM, which
	// is the regime where flash-reads-per-GET separates the engines).
	Capacity    int64 `json:"capacity"`
	CacheBudget int64 `json:"cache_budget"`

	// ScanPrefixLen is the iterator-mode prefix length (default
	// workload.DefaultScanPrefixLen: scans cover ≤256-key groups).
	ScanPrefixLen int `json:"scan_prefix_len"`

	// ValueCacheBudget enables the hot-value DRAM tier when positive
	// (default 0: off, matching historical shootouts). For a fair
	// comparison keep CacheBudget + ValueCacheBudget equal to the
	// untiered baseline's CacheBudget.
	ValueCacheBudget int64 `json:"value_cache_budget,omitempty"`
	// CacheAdmission turns on TinyLFU admission for the index-page cache.
	CacheAdmission bool `json:"cache_admission,omitempty"`
	// ScanPrefetch stages each distinct data page once per prefix scan.
	ScanPrefetch bool `json:"scan_prefetch,omitempty"`
}

func (c *ShootoutConfig) applyDefaults() {
	if len(c.Engines) == 0 {
		for _, e := range Engines() {
			c.Engines = append(c.Engines, e.Name)
		}
	}
	if len(c.Workloads) == 0 {
		for _, w := range workload.YCSBWorkloads() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	if c.Records == 0 {
		c.Records = 50_000
	}
	if c.Ops == 0 {
		c.Ops = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ValueMin == 0 {
		c.ValueMin = 64
	}
	if c.ValueMax == 0 {
		c.ValueMax = 4096
	}
	if c.ValueTheta == 0 {
		c.ValueTheta = 0.9
	}
	if c.Capacity == 0 {
		c.Capacity = 256 << 20
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 512 << 10
	}
	if c.ScanPrefixLen == 0 {
		c.ScanPrefixLen = workload.DefaultScanPrefixLen
	}
}

// Cell is one (engine × workload) shootout result. Latencies and
// throughput are over simulated device time, so they are deterministic
// for a given config and comparable across hosts; WallMs is the only
// host-time figure.
type Cell struct {
	Engine   string `json:"engine"`
	Workload string `json:"workload"`

	Records int `json:"records"`
	Ops     int `json:"ops"`

	// SimElapsedNs is the simulated device time the measured run
	// consumed; ThroughputKops = Ops / SimElapsed.
	SimElapsedNs   int64   `json:"sim_elapsed_ns"`
	ThroughputKops float64 `json:"throughput_kops"`

	RetrieveP50Ns int64 `json:"retrieve_p50_ns"`
	RetrieveP99Ns int64 `json:"retrieve_p99_ns"`
	StoreP50Ns    int64 `json:"store_p50_ns,omitempty"`
	StoreP99Ns    int64 `json:"store_p99_ns,omitempty"`

	// FlashReadsPerGet is the headline metric: mean metadata flash
	// reads per retrieve lookup (RHIK bounds it at one).
	FlashReadsPerGet float64 `json:"flash_reads_per_get"`

	// Flash deltas over the measured run only.
	FlashReads    int64 `json:"flash_reads"`
	FlashPrograms int64 `json:"flash_programs"`

	Resizes      int     `json:"resizes"`
	Collisions   int64   `json:"collisions,omitempty"`
	NotFound     int64   `json:"not_found,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Cache-tier effectiveness over the measured run; omitted when the
	// tiered cache is off.
	ValueCacheHitRate float64 `json:"value_cache_hit_rate,omitempty"`
	AdmissionRejects  int64   `json:"admission_rejects,omitempty"`
	PrefetchHits      int64   `json:"prefetch_hits,omitempty"`

	ScanOps        int64 `json:"scan_ops,omitempty"`
	ScannedEntries int64 `json:"scanned_entries,omitempty"`

	WallMs int64 `json:"wall_ms"`

	// Detail holds engine-specific counters (LSM flushes/compactions/
	// runs, mlhash levels); Notes documents known asymmetries.
	Detail map[string]int64 `json:"detail,omitempty"`
	Notes  []string         `json:"notes,omitempty"`
}

// ShootoutResult is the full grid, serialized to results/SHOOTOUT.json.
type ShootoutResult struct {
	Spec   string         `json:"spec"`
	Config ShootoutConfig `json:"config"`
	Notes  []string       `json:"notes"`
	Cells  []Cell         `json:"cells"`
}

// shootoutSpec versions the JSON schema.
const shootoutSpec = "rhik-shootout/v1"

// nowMs is the wall clock used for Cell.WallMs; tests may stub it.
var nowMs = func() int64 { return time.Now().UnixMilli() }

// RunShootout runs every (engine × workload) cell and collects the
// grid. Progress lines go to w (may be nil). Cells run sequentially —
// each engine owns its own simulated timeline, so host parallelism
// would not change any reported number, only wall time.
func RunShootout(cfg ShootoutConfig, w io.Writer) (*ShootoutResult, error) {
	cfg.applyDefaults()
	res := &ShootoutResult{
		Spec:   shootoutSpec,
		Config: cfg,
		Notes: []string{
			"identical seeds: every engine in a workload column consumes a byte-identical op stream",
			"throughput and latency are simulated device time (deterministic); wall_ms is host time",
			"flash_reads_per_get is the mean metadata flash reads per retrieve lookup — the cost RHIK bounds at one",
		},
	}
	for _, wl := range cfg.Workloads {
		spec, err := workload.YCSBWorkload(wl)
		if err != nil {
			return nil, err
		}
		if cfg.Theta != 0 {
			spec.Theta = cfg.Theta
		}
		for _, en := range cfg.Engines {
			espec, err := EngineByName(en)
			if err != nil {
				return nil, err
			}
			if w != nil {
				fmt.Fprintf(w, "shootout: %-8s × %-7s ", en, spec.Name)
			}
			cell, err := runCell(espec, spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("cell %s×%s: %w", en, spec.Name, err)
			}
			if w != nil {
				fmt.Fprintf(w, "%8.1f kops/s  p99(get) %7s  flash-reads/GET %.3f\n",
					cell.ThroughputKops, fmtNs(cell.RetrieveP99Ns), cell.FlashReadsPerGet)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// runCell opens a fresh engine, preloads Records keys, then replays Ops
// generated ops and snapshots the measured window.
func runCell(espec EngineSpec, spec workload.YCSBSpec, cfg ShootoutConfig) (Cell, error) {
	eng, err := espec.Open(EngineConfig{
		Capacity:         cfg.Capacity,
		CacheBudget:      cfg.CacheBudget,
		PrefixLen:        cfg.ScanPrefixLen,
		ValueCacheBudget: cfg.ValueCacheBudget,
		CacheAdmission:   cfg.CacheAdmission,
		ScanPrefetch:     cfg.ScanPrefetch,
	})
	if err != nil {
		return Cell{}, err
	}
	defer eng.Close()

	cell := Cell{
		Engine:   espec.Name,
		Workload: spec.Name,
		Records:  cfg.Records,
		Ops:      cfg.Ops,
		Notes:    espec.Notes,
	}
	wallStart := nowMs()

	// Preload: records 0..Records-1, sizes from the cell's own
	// deterministic stream (same for every engine).
	loadSizes := newSizes(cfg, cfg.Seed+1)
	for i := 0; i < cfg.Records; i++ {
		key := workload.KeyBytes(uint64(i))
		val := workload.ValuePayload(uint64(i), loadSizes.Next())
		if err := eng.Store(key, val); err != nil {
			if errors.Is(err, rhik.ErrCollision) {
				cell.Collisions++
				continue
			}
			return Cell{}, fmt.Errorf("preload key %d: %w", i, err)
		}
	}

	// Measured run: reset phase stats, then replay the generator.
	eng.ResetOpStats()
	before := eng.Stats()
	elapsed0 := eng.Elapsed()

	gen, err := workload.NewYCSB(spec, uint64(cfg.Records), newSizes(cfg, cfg.Seed+2), cfg.Seed+3)
	if err != nil {
		return Cell{}, err
	}
	gen.ScanPrefixLen = cfg.ScanPrefixLen

	var vbuf []byte // reused across retrieves (the allocation-free path)
	for i := 0; i < cfg.Ops; i++ {
		op := gen.Next()
		key := workload.KeyBytes(op.KeyID)
		switch op.Kind {
		case workload.OpRetrieve:
			v, err := eng.Retrieve(vbuf[:0], key)
			if err != nil {
				if errors.Is(err, rhik.ErrNotFound) {
					cell.NotFound++
					continue
				}
				return Cell{}, fmt.Errorf("op %d retrieve: %w", i, err)
			}
			vbuf = v
		case workload.OpStore:
			err := eng.Store(key, workload.ValuePayload(op.KeyID, op.ValueSize))
			if err != nil {
				if errors.Is(err, rhik.ErrCollision) {
					cell.Collisions++
					continue
				}
				return Cell{}, fmt.Errorf("op %d store: %w", i, err)
			}
		case workload.OpIterate:
			n := op.ScanPrefix
			if n <= 0 || n > len(key) {
				n = len(key)
			}
			entries, err := eng.Iterate(key[:n])
			if err != nil {
				return Cell{}, fmt.Errorf("op %d iterate: %w", i, err)
			}
			cell.ScanOps++
			cell.ScannedEntries += int64(len(entries))
		case workload.OpRMW:
			v, err := eng.Retrieve(vbuf[:0], key)
			if err != nil && !errors.Is(err, rhik.ErrNotFound) {
				return Cell{}, fmt.Errorf("op %d rmw-read: %w", i, err)
			} else if err != nil {
				cell.NotFound++
			} else {
				vbuf = v
			}
			if err := eng.Store(key, workload.ValuePayload(op.KeyID, op.ValueSize)); err != nil {
				if errors.Is(err, rhik.ErrCollision) {
					cell.Collisions++
					continue
				}
				return Cell{}, fmt.Errorf("op %d rmw-write: %w", i, err)
			}
		case workload.OpDelete:
			if err := eng.Delete(key); err != nil && !errors.Is(err, rhik.ErrNotFound) {
				return Cell{}, fmt.Errorf("op %d delete: %w", i, err)
			}
		case workload.OpExist:
			if _, err := eng.Exist(key); err != nil {
				return Cell{}, fmt.Errorf("op %d exist: %w", i, err)
			}
		}
	}

	after := eng.Stats()
	elapsed := eng.Elapsed() - elapsed0
	cell.SimElapsedNs = int64(elapsed)
	if elapsed > 0 {
		cell.ThroughputKops = float64(cfg.Ops) / (float64(elapsed) / 1e9) / 1e3
	}
	cell.RetrieveP50Ns = after.RetrieveP50
	cell.RetrieveP99Ns = after.RetrieveP99
	cell.StoreP50Ns = after.StoreP50
	cell.StoreP99Ns = after.StoreP99
	cell.FlashReadsPerGet = after.FlashReadsPerGet
	cell.FlashReads = after.FlashReads - before.FlashReads
	cell.FlashPrograms = after.FlashPrograms - before.FlashPrograms
	cell.Resizes = after.Resizes
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	if hits+misses > 0 {
		cell.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	vhits := after.ValueCacheHits - before.ValueCacheHits
	vmisses := after.ValueCacheMisses - before.ValueCacheMisses
	if vhits+vmisses > 0 {
		cell.ValueCacheHitRate = float64(vhits) / float64(vhits+vmisses)
	}
	cell.AdmissionRejects = after.AdmissionRejects - before.AdmissionRejects
	cell.PrefetchHits = after.PrefetchHits - before.PrefetchHits
	cell.Detail = after.Detail
	cell.WallMs = nowMs() - wallStart
	return cell, nil
}

// newSizes builds the cell's value-size distribution.
func newSizes(cfg ShootoutConfig, seed int64) workload.SizeDist {
	if cfg.ValueMin == cfg.ValueMax {
		return workload.Fixed{Size: cfg.ValueMin}
	}
	return workload.NewZipfSizes(cfg.ValueMin, cfg.ValueMax, cfg.ValueTheta, seed)
}
