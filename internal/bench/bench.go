// Package bench regenerates every table and figure in the paper's
// evaluation (§III Fig. 2 and Table I; §V Figs. 5–8). Each experiment is
// a function that drives the emulated device, returns structured results
// for tests and benchmarks, and renders the same rows/series the paper
// reports. cmd/rhikbench and the repository-root benchmarks are thin
// wrappers over this package.
//
// Scale: the paper's testbed is a 3.84 TB KVSSD with up to 3.1 B keys;
// experiments here run at emulator scale (default ≤ 1 GiB, ≤ ~13 M
// keys), preserving the ratios each result depends on. EXPERIMENTS.md
// records paper-vs-measured for every row.
package bench

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale selects experiment sizing.
type Scale struct {
	// Name labels the scale in output.
	Name string
	// Factor divides the default (full) experiment sizes; 1 = full.
	Factor int
}

// Full is the default experiment scale (minutes of wall time in total).
func Full() Scale { return Scale{Name: "full", Factor: 1} }

// Quick is the CI/test scale (~seconds): all shapes, tiny sizes.
func Quick() Scale { return Scale{Name: "quick", Factor: 16} }

// div scales n down by the scale factor with a floor of lo.
func (s Scale) div(n int, lo int) int {
	v := n / s.Factor
	if v < lo {
		v = lo
	}
	return v
}

func (s Scale) div64(n int64, lo int64) int64 {
	v := n / int64(s.Factor)
	if v < lo {
		v = lo
	}
	return v
}

// syncDriver submits each operation at the previous completion (QD1).
type syncDriver struct {
	dev  *device.Device
	last sim.Time
}

func (d *syncDriver) store(key, value []byte) error {
	done, err := d.dev.Store(d.last, key, value)
	if err != nil {
		return err
	}
	d.last = done
	return nil
}

func (d *syncDriver) retrieve(key []byte) error {
	_, done, err := d.dev.Retrieve(d.last, key)
	if err != nil {
		return err
	}
	d.last = done
	return nil
}

// elapsed reports simulated time since t0, including device drain.
func (d *syncDriver) elapsed(t0 sim.Time) sim.Duration {
	end := d.dev.Drain()
	if d.last > end {
		end = d.last
	}
	return end.Sub(t0)
}

// asyncDriver submits back-to-back (deep queue).
type asyncDriver struct {
	dev    *device.Device
	submit sim.Time
	last   sim.Time
}

func (d *asyncDriver) store(key, value []byte) error {
	done, err := d.dev.Store(d.submit, key, value)
	if err != nil {
		return err
	}
	if done > d.last {
		d.last = done
	}
	return nil
}

func (d *asyncDriver) retrieve(key []byte) error {
	_, done, err := d.dev.Retrieve(d.submit, key)
	if err != nil {
		return err
	}
	if done > d.last {
		d.last = done
	}
	return nil
}

func (d *asyncDriver) elapsed(t0 sim.Time) sim.Duration {
	end := d.dev.Drain()
	if d.last > end {
		end = d.last
	}
	return end.Sub(t0)
}

// replay runs trace records against a device synchronously, returning
// the count of operations executed. Store errors from collisions are
// tolerated (the paper's abort semantics); other errors abort.
func replay(dev *device.Device, recs []trace.Record) (int, error) {
	var last sim.Time
	n := 0
	for _, r := range recs {
		var done sim.Time
		var err error
		switch r.Op {
		case workload.OpStore:
			done, err = dev.Store(last, r.Key(), workload.ValuePayload(r.KeyID, r.ValueSize))
		case workload.OpRetrieve:
			_, done, err = dev.Retrieve(last, r.Key())
			if err == device.ErrNotFound {
				err = nil
			}
		case workload.OpDelete:
			done, err = dev.Delete(last, r.Key())
			if err == device.ErrNotFound {
				err = nil
			}
		case workload.OpExist:
			_, done, err = dev.Exist(last, r.Key())
		}
		if err != nil {
			return n, fmt.Errorf("bench: replay op %d (%v): %w", n, r.Op, err)
		}
		if done > last {
			last = done
		}
		n++
	}
	return n, nil
}

// mbps renders bytes over a simulated duration as MB/s.
func mbps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// hr prints a section rule.
func hr(w io.Writer) {
	fmt.Fprintln(w, "------------------------------------------------------------------")
}
