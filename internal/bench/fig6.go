package bench

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/kvemu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig6Mode is one subplot of Fig. 6.
type Fig6Mode struct {
	Name  string
	Write bool
	Async bool
}

// Fig6Modes lists the four subplots in paper order.
func Fig6Modes() []Fig6Mode {
	return []Fig6Mode{
		{Name: "write-async", Write: true, Async: true},
		{Name: "read-async", Write: false, Async: true},
		{Name: "write-sync", Write: true, Async: false},
		{Name: "read-sync", Write: false, Async: false},
	}
}

// Fig6Cell is one bar: a profile's throughput at one value size.
type Fig6Cell struct {
	Mode       string
	ValueSize  int
	Profile    string
	MBps       float64
	Normalized float64 // relative to the KVSSD profile in the same group
}

// Fig6 reproduces Fig. 6: sequential-workload throughput across value
// sizes (16 B keys), async and sync, write and read, for the three
// profiles (KVSSD stand-in, KVEMU stand-in, RHIK).
func Fig6(w io.Writer, s Scale) ([]Fig6Cell, error) {
	totalBytes := s.div64(1<<30, 8<<20) // the paper's 1 GB consolidation
	valueSizes := []int{4 << 10, 64 << 10, 256 << 10, 2 << 20}
	if s.Factor > 1 {
		valueSizes = []int{4 << 10, 32 << 10, 128 << 10, 512 << 10}
	}

	fmt.Fprintf(w, "Fig. 6 — normalized throughput, sequential workloads consolidating %d MiB (16B keys)\n", totalBytes>>20)
	var cells []Fig6Cell
	for _, mode := range Fig6Modes() {
		fmt.Fprintf(w, "\n[%s]\n%-10s", mode.Name, "value")
		for _, p := range kvemu.Profiles() {
			fmt.Fprintf(w, " %-18s", p)
		}
		fmt.Fprintln(w)
		for _, vs := range valueSizes {
			group := make([]Fig6Cell, 0, 3)
			for _, p := range kvemu.Profiles() {
				mb, err := fig6Run(mode, p, vs, totalBytes)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%d: %w", mode.Name, p, vs, err)
				}
				group = append(group, Fig6Cell{Mode: mode.Name, ValueSize: vs, Profile: p, MBps: mb})
			}
			base := group[0].MBps // kvssd bar
			fmt.Fprintf(w, "%-10s", sz(vs))
			for i := range group {
				if base > 0 {
					group[i].Normalized = group[i].MBps / base
				}
				fmt.Fprintf(w, " %7.2fx %7.1fMB/s", group[i].Normalized, group[i].MBps)
			}
			fmt.Fprintln(w)
			cells = append(cells, group...)
		}
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper): RHIK achieves the highest normalized throughput for almost all value sizes,")
	fmt.Fprintln(w, "with the largest read gains at large values; async beats sync throughout.")
	return cells, nil
}

func fig6Run(mode Fig6Mode, profile string, valueSize int, totalBytes int64) (float64, error) {
	keys := totalBytes / int64(valueSize)
	if keys < 8 {
		keys = 8
	}
	capacity := totalBytes*3 + (64 << 20)
	cfg, err := kvemu.Config(profile, capacity, keys)
	if err != nil {
		return 0, err
	}
	dev, err := device.Open(cfg)
	if err != nil {
		return 0, err
	}

	payload := workload.ValuePayload(1, valueSize)

	// Pre-fill for read modes (async fill for speed).
	if !mode.Write {
		var fill asyncDriver
		fill.dev = dev
		for i := int64(0); i < keys; i++ {
			if err := fill.store(workload.KeyBytes(uint64(i)), payload); err != nil {
				return 0, err
			}
		}
	}

	start := dev.Drain()
	var elapsed sim.Duration
	if mode.Async {
		var d asyncDriver
		d.dev = dev
		d.submit = start
		for i := int64(0); i < keys; i++ {
			k := workload.KeyBytes(uint64(i))
			if mode.Write {
				err = d.store(k, payload)
			} else {
				err = d.retrieve(k)
			}
			if err != nil {
				return 0, err
			}
		}
		elapsed = d.elapsed(start)
	} else {
		d := syncDriver{dev: dev, last: start}
		for i := int64(0); i < keys; i++ {
			k := workload.KeyBytes(uint64(i))
			if mode.Write {
				err = d.store(k, payload)
			} else {
				err = d.retrieve(k)
			}
			if err != nil {
				return 0, err
			}
		}
		elapsed = d.elapsed(start)
	}
	return mbps(keys*int64(valueSize), elapsed), nil
}
