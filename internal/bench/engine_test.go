package bench

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	rhik "repro"
	"repro/internal/workload"
)

// testConfig is small enough for fast tests but big enough to push every
// engine past its in-DRAM comfort zone.
func testConfig() EngineConfig {
	return EngineConfig{
		Capacity:    64 << 20,
		CacheBudget: 256 << 10,
	}
}

// TestEngineConformance runs the shared oracle-backed suite against
// every registered adapter: after an identical randomized op sequence,
// each engine must agree with an in-memory map on every Retrieve, Exist,
// Delete, and prefix Iterate outcome.
func TestEngineConformance(t *testing.T) {
	for _, spec := range Engines() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			eng, err := spec.Open(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if eng.Name() != spec.Name {
				t.Fatalf("Name() = %q, want %q", eng.Name(), spec.Name)
			}

			oracle := map[string][]byte{}
			rng := rand.New(rand.NewSource(99))
			const keys = 2000
			key := func(id uint64) []byte { return workload.KeyBytes(id) }

			// Mixed mutations: stores (some overwrites), sprinkled deletes.
			for i := 0; i < 6000; i++ {
				id := uint64(rng.Intn(keys))
				k := key(id)
				switch rng.Intn(10) {
				case 9:
					err := eng.Delete(k)
					_, live := oracle[string(k)]
					if live && err != nil {
						t.Fatalf("delete live key %d: %v", id, err)
					}
					if !live && !errors.Is(err, rhik.ErrNotFound) {
						t.Fatalf("delete absent key %d: err = %v, want ErrNotFound", id, err)
					}
					delete(oracle, string(k))
				default:
					v := workload.ValuePayload(id, 50+rng.Intn(400))
					if err := eng.Store(k, v); err != nil {
						if errors.Is(err, rhik.ErrCollision) {
							continue // paper-mandated abort; oracle unchanged
						}
						t.Fatalf("store key %d: %v", id, err)
					}
					oracle[string(k)] = v
				}
			}

			// Point-read and existence agreement over the whole key space.
			for id := uint64(0); id < keys; id++ {
				k := key(id)
				want, live := oracle[string(k)]
				got, err := eng.Retrieve(nil, k)
				switch {
				case live && err != nil:
					t.Fatalf("retrieve live key %d: %v", id, err)
				case live && !bytes.Equal(got, want):
					t.Fatalf("retrieve key %d: wrong value (%d vs %d bytes)", id, len(got), len(want))
				case !live && !errors.Is(err, rhik.ErrNotFound):
					t.Fatalf("retrieve dead key %d: err = %v, want ErrNotFound", id, err)
				}
				ex, err := eng.Exist(k)
				if err != nil {
					t.Fatalf("exist key %d: %v", id, err)
				}
				if ex != live {
					t.Fatalf("exist key %d = %v, oracle says %v", id, ex, live)
				}
			}

			// Prefix scans agree with the oracle: sorted, complete, live
			// keys only, correct values.
			for _, group := range []uint64{0, 256, 1024} {
				prefix := key(group)[:workload.DefaultScanPrefixLen]
				var want []string
				for k := range oracle {
					if bytes.HasPrefix([]byte(k), prefix) {
						want = append(want, k)
					}
				}
				sort.Strings(want)
				entries, err := eng.Iterate(prefix)
				if err != nil {
					t.Fatalf("iterate %q: %v", prefix, err)
				}
				if len(entries) != len(want) {
					t.Fatalf("iterate %q: %d entries, oracle has %d", prefix, len(entries), len(want))
				}
				for i, e := range entries {
					if string(e.Key) != want[i] {
						t.Fatalf("iterate %q entry %d: key %q, want %q", prefix, i, e.Key, want[i])
					}
					if !bytes.Equal(e.Value, oracle[want[i]]) {
						t.Fatalf("iterate %q entry %d: wrong value", prefix, i)
					}
				}
			}

			// Stats must reflect the run.
			st := eng.Stats()
			if st.Records <= 0 {
				t.Fatalf("stats records %d after %d live keys", st.Records, len(oracle))
			}
			if eng.Elapsed() <= 0 {
				t.Fatal("elapsed simulated time is zero after thousands of ops")
			}
		})
	}
}

// TestEngineConcurrentMixedOps hammers every adapter from several
// goroutines with disjoint key ranges — run under -race this is the
// adapters' data-race conformance pass. (Engines are opened with more
// than one shard so readers and writers genuinely overlap.)
func TestEngineConcurrentMixedOps(t *testing.T) {
	for _, spec := range Engines() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Shards = 4
			eng, err := spec.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			const workers, perWorker, span = 4, 1500, 1000
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					base := uint64(w * span)
					var vbuf []byte // per-goroutine reuse, as the contract requires
					for i := 0; i < perWorker; i++ {
						id := base + uint64(rng.Intn(span))
						k := workload.KeyBytes(id)
						var err error
						switch rng.Intn(4) {
						case 0:
							err = eng.Store(k, workload.ValuePayload(id, 64))
						case 1:
							var v []byte
							if v, err = eng.Retrieve(vbuf[:0], k); err == nil {
								vbuf = v
							}
						case 2:
							_, err = eng.Exist(k)
						case 3:
							err = eng.Delete(k)
						}
						if err != nil && !errors.Is(err, rhik.ErrNotFound) && !errors.Is(err, rhik.ErrCollision) {
							errCh <- fmt.Errorf("worker %d op %d: %w", w, i, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

// TestEngineResetOpStats checks the phase boundary every shootout cell
// relies on: after a reset, latency histograms describe only later ops.
func TestEngineResetOpStats(t *testing.T) {
	for _, spec := range Engines() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			eng, err := spec.Open(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			for i := uint64(0); i < 500; i++ {
				if err := eng.Store(workload.KeyBytes(i), workload.ValuePayload(i, 64)); err != nil && !errors.Is(err, rhik.ErrCollision) {
					t.Fatal(err)
				}
			}
			eng.ResetOpStats()
			st := eng.Stats()
			if st.StoreP99 != 0 {
				t.Fatalf("store p99 %d after reset, want 0", st.StoreP99)
			}
			if _, err := eng.Retrieve(nil, workload.KeyBytes(1)); err != nil {
				t.Fatal(err)
			}
			if st := eng.Stats(); st.RetrieveP99 == 0 {
				t.Fatal("retrieve p99 still zero after post-reset retrieve")
			}
		})
	}
}

// TestEngineByName covers registry lookups.
func TestEngineByName(t *testing.T) {
	for _, want := range []string{"rhik", "rhik-set", "lsm", "mlhash"} {
		spec, err := EngineByName(want)
		if err != nil || spec.Name != want {
			t.Fatalf("EngineByName(%q) = %v, %v", want, spec.Name, err)
		}
	}
	if _, err := EngineByName("rocksdb"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
