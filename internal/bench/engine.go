package bench

import (
	"fmt"
	"time"

	rhik "repro"
	"repro/internal/device"
	"repro/internal/lsmindex"
	"repro/internal/mlhash"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Engine is the adapter surface the cross-engine shootout drives: the
// SNIA-KV op set plus the observability cut every engine must answer.
// A new engine only has to satisfy this interface (and pass the shared
// conformance suite in engine_test.go) to join the shootout table.
type Engine interface {
	// Name labels the engine in reports.
	Name() string
	// Store writes a key-value pair.
	Store(key, value []byte) error
	// Retrieve returns the value stored under key. When the engine
	// supports buffer reuse the value is appended to dst (pass a
	// per-caller buffer for the allocation-free hot path, or nil);
	// callers must use the return value either way.
	Retrieve(dst, key []byte) ([]byte, error)
	// Delete removes key.
	Delete(key []byte) error
	// Exist reports whether key is stored.
	Exist(key []byte) (bool, error)
	// Iterate enumerates keys sharing prefix, sorted, with values.
	Iterate(prefix []byte) ([]device.IterEntry, error)
	// Stats snapshots the engine's counters and latency percentiles.
	Stats() EngineStats
	// Elapsed reports total simulated device time consumed so far.
	Elapsed() sim.Duration
	// ResetOpStats clears per-op histograms and cache counters between
	// experiment phases (load vs. measured run).
	ResetOpStats()
	// Close shuts the engine down.
	Close() error
}

// SnapshotEngine is the optional capability surface for engines whose
// front-end supports MVCC snapshots. The shard.Set-backed adapters all
// expose it; whether a capture succeeds then depends on the index —
// only RHIK can enumerate its records, so the baselines refuse with
// device.ErrNoSnapshot rather than serving an inconsistent view.
type SnapshotEngine interface {
	Snapshot() (*shard.SetSnapshot, error)
}

// EngineStats is the per-engine observability snapshot the shootout
// reports per cell. Latencies are simulated nanoseconds.
type EngineStats struct {
	Records int64

	RetrieveP50, RetrieveP99 int64
	StoreP50, StoreP99       int64

	// FlashReadsPerGet is the mean metadata flash reads per retrieve
	// lookup — the cost RHIK bounds at one.
	FlashReadsPerGet float64

	FlashReads, FlashPrograms int64
	Resizes                   int
	Collisions                int64
	CacheHits, CacheMisses    int64

	// Cache-tier counters; all zero when the tiered cache is off.
	AdmissionRejects                 int64
	ValueCacheHits, ValueCacheMisses int64
	PrefetchHits                     int64

	// Detail carries engine-specific counters (LSM flushes/compactions/
	// runs, mlhash levels) that have no cross-engine meaning.
	Detail map[string]int64
}

// EngineConfig sizes a freshly opened engine. All engines receive the
// same configuration so shootout cells compare like-for-like.
type EngineConfig struct {
	// Capacity is the emulated device capacity (default 256 MiB).
	Capacity int64
	// CacheBudget bounds index DRAM (default 10 MiB); shrink it to put
	// the indexes under the cache pressure Fig. 5 studies.
	CacheBudget int64
	// Shards is the front-end shard count (default 1: one device, one
	// timeline, directly comparable across engines).
	Shards int
	// PrefixLen enables iterator-mode signatures for scan workloads
	// (default workload.DefaultScanPrefixLen).
	PrefixLen int
	// AnticipatedKeys pre-sizes RHIK's directory (0 = grow by resize).
	AnticipatedKeys int64
	// ValueCacheBudget enables the hot-value DRAM tier when positive.
	// Cells comparing against an untiered baseline must shrink
	// CacheBudget by the same amount so total DRAM stays equal.
	ValueCacheBudget int64
	// CacheAdmission turns on TinyLFU admission for the index-page cache.
	CacheAdmission bool
	// ScanPrefetch stages each distinct data page once per prefix scan.
	ScanPrefetch bool
}

func (c *EngineConfig) applyDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 256 << 20
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 10 << 20
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.PrefixLen == 0 {
		c.PrefixLen = workload.DefaultScanPrefixLen
	}
}

func (c EngineConfig) options(scheme rhik.IndexScheme) rhik.Options {
	return rhik.Options{
		Capacity:          c.Capacity,
		CacheBudget:       c.CacheBudget,
		Shards:            c.Shards,
		Index:             scheme,
		IteratorPrefixLen: c.PrefixLen,
		AnticipatedKeys:   c.AnticipatedKeys,
		ValueCacheBudget:  c.ValueCacheBudget,
		CacheAdmission:    c.CacheAdmission,
		ScanPrefetch:      c.ScanPrefetch,
	}
}

// EngineSpec names one engine and how to open a fresh instance of it.
type EngineSpec struct {
	Name string
	// Notes documents known asymmetries versus the RHIK baseline; they
	// are copied into the shootout JSON so the table is honest about
	// where the comparison is not like-for-like.
	Notes []string
	Open  func(cfg EngineConfig) (Engine, error)
}

// Engines lists every registered engine in shootout order.
func Engines() []EngineSpec {
	return []EngineSpec{
		{
			Name: "rhik",
			Open: func(cfg EngineConfig) (Engine, error) {
				cfg.applyDefaults()
				db, err := rhik.Open(cfg.options(rhik.RHIK))
				if err != nil {
					return nil, err
				}
				return &facadeEngine{name: "rhik", db: db}, nil
			},
		},
		{
			Name: "rhik-set",
			Notes: []string{
				"same index as rhik behind the raw sharded front-end (RetrieveAppend hot path, no facade value copy)",
			},
			Open: func(cfg EngineConfig) (Engine, error) {
				return openSetEngine("rhik-set", cfg, rhik.RHIK)
			},
		},
		{
			Name: "lsm",
			Notes: []string{
				"PinK-style LSM index: lookups may read one page per run; prefix scans sweep every run page (runs are signature-ordered, prefixes scatter)",
				"reorganization is flushes+compactions (Detail), not directory resizes",
				"the DRAM memtable is charged against CacheBudget (16 B/record): the run-page cache shrinks to the remainder and the memtable flushes early past half the budget, so cells compare like-for-like on total index DRAM",
			},
			Open: func(cfg EngineConfig) (Engine, error) {
				return openSetEngine("lsm", cfg, rhik.LSM)
			},
		},
		{
			Name: "mlhash",
			Notes: []string{
				"Samsung-style multi-level hash: lookups probe up to L levels; prefix scans sweep the whole cascade",
				"capacity grows by materializing levels (Detail), not resizing; full cascade aborts inserts",
			},
			Open: func(cfg EngineConfig) (Engine, error) {
				return openSetEngine("mlhash", cfg, rhik.MultiLevel)
			},
		},
	}
}

// EngineByName resolves a registered engine spec.
func EngineByName(name string) (EngineSpec, error) {
	for _, e := range Engines() {
		if e.Name == name {
			return e, nil
		}
	}
	return EngineSpec{}, fmt.Errorf("bench: unknown engine %q", name)
}

// facadeEngine adapts the public rhik.DB facade.
type facadeEngine struct {
	name string
	db   *rhik.DB
}

func (e *facadeEngine) Name() string                  { return e.name }
func (e *facadeEngine) Store(key, value []byte) error { return e.db.Store(key, value) }

// Retrieve ignores dst: the facade always returns a fresh copy — that
// copy is exactly the overhead the rhik-set adapter measures against.
func (e *facadeEngine) Retrieve(_, key []byte) ([]byte, error) { return e.db.Retrieve(key) }
func (e *facadeEngine) Delete(key []byte) error                { return e.db.Delete(key) }
func (e *facadeEngine) Exist(key []byte) (bool, error)         { return e.db.Exist(key) }
func (e *facadeEngine) Close() error                           { return e.db.Close() }

func (e *facadeEngine) Iterate(prefix []byte) ([]device.IterEntry, error) {
	entries, err := e.db.Iterate(prefix)
	if err != nil {
		return nil, err
	}
	out := make([]device.IterEntry, len(entries))
	for i, en := range entries {
		out[i] = device.IterEntry{Key: en.Key, Value: en.Value}
	}
	return out, nil
}

func (e *facadeEngine) Elapsed() sim.Duration {
	return sim.Duration(e.db.Elapsed() / time.Nanosecond)
}

func (e *facadeEngine) ResetOpStats() { e.db.ResetOpStats() }

func (e *facadeEngine) Stats() EngineStats {
	st := e.db.Stats()
	return EngineStats{
		Records:          st.IndexRecords,
		RetrieveP50:      int64(st.RetrieveP50),
		RetrieveP99:      int64(st.RetrieveP99),
		StoreP50:         int64(st.StoreP50),
		StoreP99:         int64(st.StoreP99),
		FlashReadsPerGet: st.FlashReadsPerGet,
		FlashReads:       st.FlashReads,
		FlashPrograms:    st.FlashPrograms,
		Resizes:          st.Resizes,
		Collisions:       st.CollisionAborts,
		CacheHits:        st.CacheHits,
		CacheMisses:      st.CacheMisses,
		AdmissionRejects: st.AdmissionRejects,
		ValueCacheHits:   st.ValueCacheHits,
		ValueCacheMisses: st.ValueCacheMisses,
		PrefetchHits:     st.PrefetchHits,
	}
}

// setEngine adapts a raw shard.Set (any index scheme).
type setEngine struct {
	name string
	set  *shard.Set
}

func openSetEngine(name string, cfg EngineConfig, scheme rhik.IndexScheme) (Engine, error) {
	cfg.applyDefaults()
	set, err := rhik.OpenSet(cfg.options(scheme))
	if err != nil {
		return nil, err
	}
	return &setEngine{name: name, set: set}, nil
}

func (e *setEngine) Name() string                   { return e.name }
func (e *setEngine) Store(key, value []byte) error  { return e.set.Store(key, value) }
func (e *setEngine) Delete(key []byte) error        { return e.set.Delete(key) }
func (e *setEngine) Exist(key []byte) (bool, error) { return e.set.Exist(key) }
func (e *setEngine) Close() error                   { return e.set.Close() }
func (e *setEngine) Elapsed() sim.Duration          { return e.set.Elapsed() }

// Retrieve appends the value to dst via RetrieveAppend — with a reused
// caller buffer this is the front-end's allocation-free hot path.
func (e *setEngine) Retrieve(dst, key []byte) ([]byte, error) {
	return e.set.RetrieveAppend(dst, key)
}

func (e *setEngine) Iterate(prefix []byte) ([]device.IterEntry, error) {
	return e.set.Iterate(prefix)
}

// Snapshot captures a consistent MVCC view (SnapshotEngine). Engines
// whose index cannot enumerate records return device.ErrNoSnapshot.
func (e *setEngine) Snapshot() (*shard.SetSnapshot, error) { return e.set.Snapshot() }

func (e *setEngine) ResetOpStats() { e.set.ResetOpStats() }

func (e *setEngine) Stats() EngineStats {
	st := e.set.Stats()
	out := EngineStats{
		Records:          st.Index.Records,
		RetrieveP50:      st.RetrieveLat.Percentile(50),
		RetrieveP99:      st.RetrieveLat.Percentile(99),
		StoreP50:         st.StoreLat.Percentile(50),
		StoreP99:         st.StoreLat.Percentile(99),
		FlashReadsPerGet: st.MetaPerGet.Mean(),
		FlashReads:       st.Flash.Reads,
		FlashPrograms:    st.Flash.Programs,
		Resizes:          st.Index.Resizes,
		Collisions:       st.Dev.CollisionAborts,
		CacheHits:        st.Index.Cache.Hits,
		CacheMisses:      st.Index.Cache.Misses,
		AdmissionRejects: st.Index.Cache.AdmissionRejects,
		ValueCacheHits:   st.Dev.ValueCacheHits,
		ValueCacheMisses: st.Dev.ValueCacheMisses,
		PrefetchHits:     st.Dev.PrefetchHits,
	}
	for i := 0; i < e.set.N(); i++ {
		switch ix := e.set.Shard(i).Device().Index().(type) {
		case *lsmindex.Index:
			if out.Detail == nil {
				out.Detail = make(map[string]int64)
			}
			out.Detail["runs"] += int64(ix.Runs())
			out.Detail["flushes"] += ix.Flushes()
			out.Detail["compactions"] += ix.Compactions()
		case *mlhash.Index:
			if out.Detail == nil {
				out.Detail = make(map[string]int64)
			}
			out.Detail["levels"] += int64(ix.Levels())
		}
	}
	return out
}
