package bench

import (
	"encoding/json"
	"testing"
)

// TestShootoutSmoke runs a tiny two-engine grid and checks the result
// round-trips through JSON with every per-cell metric populated — the
// same contract the CI smoke step asserts on the emitted file.
func TestShootoutSmoke(t *testing.T) {
	cfg := ShootoutConfig{
		Engines:     []string{"rhik", "lsm"},
		Workloads:   []string{"ycsb-b", "ycsb-e"},
		Records:     1500,
		Ops:         2000,
		Seed:        7,
		CacheBudget: 64 << 10,
		Capacity:    64 << 20,
	}
	res, err := RunShootout(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back ShootoutResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != shootoutSpec {
		t.Fatalf("spec %q, want %q", back.Spec, shootoutSpec)
	}
	if len(back.Cells) != 4 {
		t.Fatalf("%d cells, want 4 (2 engines x 2 workloads)", len(back.Cells))
	}
	for _, c := range back.Cells {
		if c.Engine == "" || c.Workload == "" {
			t.Fatalf("cell missing axis labels: %+v", c)
		}
		if c.SimElapsedNs <= 0 || c.ThroughputKops <= 0 {
			t.Fatalf("%s×%s: empty timing (%d ns, %.3f kops)", c.Engine, c.Workload, c.SimElapsedNs, c.ThroughputKops)
		}
		if c.FlashReads <= 0 {
			t.Fatalf("%s×%s: no flash reads recorded", c.Engine, c.Workload)
		}
		switch c.Workload {
		case "ycsb-b":
			if c.RetrieveP99Ns <= 0 {
				t.Fatalf("%s×ycsb-b: no retrieve latency", c.Engine)
			}
		case "ycsb-e":
			if c.ScanOps <= 0 || c.ScannedEntries <= 0 {
				t.Fatalf("%s×ycsb-e: scans missing (%d ops, %d entries)", c.Engine, c.ScanOps, c.ScannedEntries)
			}
		}
	}
	// Identical seeds: both engines saw the same stream, so scan cells
	// must have enumerated the same number of scan ops.
	var scans []int64
	for _, c := range back.Cells {
		if c.Workload == "ycsb-e" {
			scans = append(scans, c.ScanOps)
		}
	}
	if len(scans) == 2 && scans[0] != scans[1] {
		t.Fatalf("scan op counts diverge across engines: %v", scans)
	}
}
