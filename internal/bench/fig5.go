package bench

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/trace"
)

// Fig5Row is one cluster × index measurement.
type Fig5Row struct {
	Cluster    string
	Index      string
	UniqueKeys int
	// MissRatio is the fraction of index operations that needed at
	// least one flash read — the FTL-cache miss ratio at command
	// granularity (Fig. 5a; comparable across schemes with different
	// probe counts).
	MissRatio    float64
	ReadsMean    float64 // mean flash reads per metadata access (Fig. 5b)
	ReadsP50     int64
	ReadsP99     int64
	ReadsMax     int64
	AtMostOnePct float64 // % of metadata accesses needing <= 1 flash read
}

// Fig5CacheBudget is the paper's FTL cache budget for this experiment.
const Fig5CacheBudget = 10 << 20

// Fig5 reproduces Fig. 5: the eight IBM-trace clusters replayed against
// the multi-level index and RHIK under a 10 MB FTL cache. 5a is the
// cache miss ratio; 5b the distribution of flash reads per metadata
// access (RHIK ≤ 1 by construction).
func Fig5(w io.Writer, s Scale) ([]Fig5Row, error) {
	cache := int64(Fig5CacheBudget / int64(s.Factor))
	fmt.Fprintf(w, "Fig. 5 — IBM-style trace clusters, FTL cache budget %d KiB\n", cache>>10)
	fmt.Fprintf(w, "%-8s %-8s %-10s %-10s %-8s %-22s %-10s\n",
		"cluster", "index", "keys", "miss", "mean", "reads/op p50/p99/max", "<=1 read")

	var rows []Fig5Row
	for _, spec := range trace.Clusters() {
		spec.UniqueKeys = s.div(spec.UniqueKeys, 2000)
		spec.AccessOps = s.div(spec.AccessOps, 4000)
		recs := trace.Synthesize(spec, 42)

		for _, kind := range []device.IndexKind{device.IndexMultiLevel, device.IndexRHIK} {
			row, err := fig5Replay(spec, recs, kind, cache)
			if err != nil {
				return nil, fmt.Errorf("cluster %s %v: %w", spec.Name, kind, err)
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-8s %-8s %-10d %-10.3f %-8.2f %-22s %9.1f%%\n",
				row.Cluster, row.Index, row.UniqueKeys, row.MissRatio, row.ReadsMean,
				fmt.Sprintf("%d / %d / %d", row.ReadsP50, row.ReadsP99, row.ReadsMax),
				row.AtMostOnePct)
		}
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper 5a): multi-level miss ratio explodes for 083/096 (index >> cache); RHIK stays lower.")
	fmt.Fprintln(w, "Expectation (paper 5b): RHIK needs at most 1 flash read per metadata access on every cluster.")
	return rows, nil
}

// ReplayCluster replays one cluster's synthesized trace against both
// index schemes under the given cache budget, returning a row per
// scheme. Examples and tools use it for single-cluster studies.
func ReplayCluster(spec trace.ClusterSpec, cache int64, seed int64) ([]Fig5Row, error) {
	recs := trace.Synthesize(spec, seed)
	var rows []Fig5Row
	for _, kind := range []device.IndexKind{device.IndexMultiLevel, device.IndexRHIK} {
		row, err := fig5Replay(spec, recs, kind, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig5Replay(spec trace.ClusterSpec, recs []trace.Record, kind device.IndexKind, cache int64) (Fig5Row, error) {
	// Capacity: pairs plus log/GC headroom.
	perPair := int64(16 + spec.ValueSize + 64)
	capacity := int64(spec.UniqueKeys)*perPair*3 + (64 << 20)
	dev, err := device.Open(device.Config{
		Capacity:        capacity,
		Index:           kind,
		CacheBudget:     cache,
		AnticipatedKeys: int64(spec.UniqueKeys),
		MLHash:          mlLevelsFor(capacity, spec.ValueSize),
	})
	if err != nil {
		return Fig5Row{}, err
	}

	// Fill phase (the first UniqueKeys records), then measure the access
	// phase only — the paper's miss ratios are steady-state.
	fill := spec.UniqueKeys
	if fill > len(recs) {
		fill = len(recs)
	}
	if _, err := replay(dev, recs[:fill]); err != nil {
		return Fig5Row{}, err
	}
	dev.ResetOpStats()
	if _, err := replay(dev, recs[fill:]); err != nil {
		return Fig5Row{}, err
	}

	h := dev.MetaReadsPerOp()
	row := Fig5Row{
		Cluster:    spec.Name,
		Index:      dev.Index().Name(),
		UniqueKeys: spec.UniqueKeys,
		ReadsMean:  h.Mean(),
		ReadsP50:   h.Percentile(50),
		ReadsP99:   h.Percentile(99),
		ReadsMax:   h.Max(),
	}
	if n := h.Count(); n > 0 {
		row.MissRatio = 1 - float64(h.CountAtMost(0))/float64(n)
		row.AtMostOnePct = 100 * float64(h.CountAtMost(1)) / float64(n)
	}
	return row, nil
}
