package bench

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig7Row is one resize event with its rate of change.
type Fig7Row struct {
	KeysBefore  int64
	NewCapacity int64
	Took        sim.Duration
	// Rate is took_i / (2 · took_{i−1}): the paper's "rate of change of
	// the resizing time"; ≈ 1 means resize cost scales linearly with the
	// doubled capacity.
	Rate float64
}

// Fig7 reproduces Fig. 7: grow a minimally-initialized RHIK device until
// it has re-configured itself many times, recording each migration's
// simulated duration and the ratio between successive resizes.
func Fig7(w io.Writer, s Scale) ([]Fig7Row, error) {
	targetKeys := s.div64(6_000_000, 120_000)
	capacity := targetKeys*64 + (256 << 20)
	dev, err := device.Open(device.Config{
		Capacity:    capacity,
		Index:       device.IndexRHIK,
		CacheBudget: 64 << 20, // generous: isolate migration cost from cache thrash
	})
	if err != nil {
		return nil, err
	}

	var d asyncDriver
	d.dev = dev
	value := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x11, 0x22} // small values: index-bound
	for i := int64(0); i < targetKeys; i++ {
		if err := d.store(workload.KeyBytes(uint64(i)), value); err != nil {
			return nil, fmt.Errorf("fig7 insert %d: %w", i, err)
		}
	}

	evs := dev.ResizeEvents()
	rows := make([]Fig7Row, len(evs))
	fmt.Fprintf(w, "Fig. 7 — resizing time as the index doubles (grown to %d keys)\n", targetKeys)
	fmt.Fprintf(w, "%-22s %-16s %-14s %-10s\n", "keys before resize", "new capacity", "resize time", "rate")
	for i, e := range evs {
		rows[i] = Fig7Row{KeysBefore: e.KeysBefore, NewCapacity: e.NewCapacity, Took: e.Took}
		if i > 0 && evs[i-1].Took > 0 {
			rows[i].Rate = float64(e.Took) / (2 * float64(evs[i-1].Took))
		}
		fmt.Fprintf(w, "%-22s %-16s %-14s %-10.3f\n",
			human(e.KeysBefore), human(e.NewCapacity), e.Took.String(), rows[i].Rate)
	}
	hr(w)
	fmt.Fprintln(w, "Expectation (paper): the rate stays at or below ~1 — resize time doubles as capacity doubles,")
	fmt.Fprintln(w, "so re-configuration cost per key stays constant even for large indexes.")
	return rows, nil
}
