// Package kvemu provides the device profiles behind Fig. 6's three
// bars. The paper compares RHIK (implemented in an extended OpenMPDK KV
// Emulator) against the stock emulator and a real Samsung PM983 KVSSD.
// Neither comparator is available here, so both are substituted by
// configurations of the same discrete-event device — differing only in
// index scheme and firmware/interface parameters — so the comparison
// isolates exactly what the paper varies (see DESIGN.md §5):
//
//   - RHIK: our device with the re-configurable hash index.
//   - KVEMU: the stock-emulator stand-in — same interface timing, but
//     the Samsung-style multi-level hash index.
//   - KVSSD: the real-device stand-in — the multi-level index plus the
//     heavier per-command firmware and interface costs measured on
//     production KVSSDs (tens of microseconds per KV command [8]).
package kvemu

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
)

// Profile names, in the paper's bar order.
const (
	ProfileKVSSD = "kvssd"
	ProfileKVEMU = "kvemu"
	ProfileRHIK  = "rhik"
)

// Profiles lists the Fig. 6 comparators in presentation order.
func Profiles() []string { return []string{ProfileKVSSD, ProfileKVEMU, ProfileRHIK} }

// Config returns the device configuration for the named profile at the
// given capacity. AnticipatedKeys pre-sizes RHIK so the microbenchmark
// sweeps measure steady-state behaviour rather than growth.
func Config(profile string, capacity, anticipatedKeys int64) (device.Config, error) {
	base := device.Config{
		Capacity:        capacity,
		CacheBudget:     32 << 20,
		AnticipatedKeys: anticipatedKeys,
	}
	switch profile {
	case ProfileRHIK:
		base.Index = device.IndexRHIK
		return base, nil
	case ProfileKVEMU:
		base.Index = device.IndexMultiLevel
		base.MLHash.Levels = 8
		base.MLHash.Level0Pages = levelZeroFor(anticipatedKeys)
		return base, nil
	case ProfileKVSSD:
		base.Index = device.IndexMultiLevel
		base.MLHash.Levels = 8
		base.MLHash.Level0Pages = levelZeroFor(anticipatedKeys)
		// Production KVSSD firmware spends far longer per KV command
		// than a host-RAM emulator; compound-command studies report
		// tens of microseconds of per-command overhead [8].
		base.CmdCPU = 25 * sim.Microsecond
		base.AckOverhead = 30 * sim.Microsecond
		return base, nil
	default:
		return device.Config{}, fmt.Errorf("kvemu: unknown profile %q", profile)
	}
}

// levelZeroFor sizes the multi-level cascade's first level so the total
// capacity (L0 · (2^8 − 1) pages) comfortably covers the expected keys,
// mirroring how the stock emulator provisions its table.
func levelZeroFor(keys int64) int {
	if keys <= 0 {
		keys = 1 << 20
	}
	// ~2500 slots per 32 KiB page, 255 pages per L0 page across levels.
	pages := int(keys/(2500*255)) + 1
	if pages < 2 {
		pages = 2
	}
	return pages
}
