package kvemu

import (
	"testing"

	"repro/internal/device"
)

func TestProfilesBuildOpenableDevices(t *testing.T) {
	for _, p := range Profiles() {
		cfg, err := Config(p, 64<<20, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		d, err := device.Open(cfg)
		if err != nil {
			t.Fatalf("%s: open: %v", p, err)
		}
		if _, err := d.Store(0, []byte("key-000000000001"), make([]byte, 100)); err != nil {
			t.Fatalf("%s: store: %v", p, err)
		}
		if _, _, err := d.Retrieve(d.Now(), []byte("key-000000000001")); err != nil {
			t.Fatalf("%s: retrieve: %v", p, err)
		}
	}
}

func TestProfileIndexKinds(t *testing.T) {
	rh, _ := Config(ProfileRHIK, 1<<20, 0)
	if rh.Index != device.IndexRHIK {
		t.Fatal("rhik profile wrong index")
	}
	for _, p := range []string{ProfileKVEMU, ProfileKVSSD} {
		c, _ := Config(p, 1<<20, 0)
		if c.Index != device.IndexMultiLevel {
			t.Fatalf("%s profile wrong index", p)
		}
	}
}

func TestKVSSDProfileIsSlowerPerCommand(t *testing.T) {
	emu, _ := Config(ProfileKVEMU, 1<<20, 0)
	real, _ := Config(ProfileKVSSD, 1<<20, 0)
	if real.CmdCPU <= emu.CmdCPU {
		t.Fatal("real-device stand-in should cost more per command")
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := Config("nope", 1<<20, 0); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestLevelZeroScales(t *testing.T) {
	if levelZeroFor(0) < 2 {
		t.Fatal("default too small")
	}
	if levelZeroFor(100_000_000) <= levelZeroFor(1_000_000) {
		t.Fatal("level0 does not scale with keys")
	}
}
