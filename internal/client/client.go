// Package client is the Go client for the kvwire network protocol: a
// connection pool over which requests are pipelined — many outstanding
// requests per connection, matched to their out-of-order responses by
// request ID — with batch fan-in and bounded retry-with-backoff for
// BUSY rejections and transient dial failures.
//
// Retries are only attempted when the request is guaranteed not to
// have executed: a BUSY/DEADLINE status (the server's contract), a
// failed dial, or an enqueue that never reached the socket. A
// connection that fails mid-flight fails its outstanding calls instead
// of blindly resubmitting them, since a delete or store may already
// have been applied.
//
// All methods are safe for concurrent use; concurrency is the point —
// each in-flight caller occupies one pipeline slot, and the pool
// spreads callers across connections round-robin.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvwire"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address (required).
	Addr string
	// Conns is the connection pool size (default 2).
	Conns int
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// MaxRetries bounds resubmissions after BUSY/dial failures
	// (default 8; 0 disables retries).
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// retries (defaults 2ms and 250ms), with ±50% jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Conns <= 0 {
		out.Conns = 2
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 8
	}
	if out.MaxRetries < 0 {
		out.MaxRetries = 0
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 2 * time.Millisecond
	}
	if out.RetryMax <= 0 {
		out.RetryMax = 250 * time.Millisecond
	}
	return out
}

// ErrClientClosed is returned by calls made after Close.
var ErrClientClosed = errors.New("client: closed")

// Client is a pooled, pipelined kvwire client. Create with Dial.
type Client struct {
	opts Options
	rr   atomic.Uint64

	mu     sync.Mutex
	conns  []*conn
	closed bool
}

// Dial creates a client and eagerly dials the first pooled connection
// so configuration errors surface immediately; the rest of the pool is
// dialed on demand.
func Dial(opts Options) (*Client, error) {
	c := &Client{opts: opts.withDefaults()}
	c.conns = make([]*conn, c.opts.Conns)
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cn
	return c, nil
}

// Close shuts down every pooled connection, failing outstanding calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*conn(nil), c.conns...)
	c.mu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.fail(ErrClientClosed)
		}
	}
	return nil
}

func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cn := newClientConn(nc)
	if _, err := nc.Write(kvwire.AppendPreamble(nil)); err != nil {
		nc.Close()
		return nil, err
	}
	go cn.readLoop()
	go cn.writeLoop()
	return cn, nil
}

// pick returns a live pooled connection, dialing a replacement for a
// dead slot. Dial errors are reported to the caller for retry.
func (c *Client) pick() (*conn, error) {
	slot := int(c.rr.Add(1)) % len(c.conns)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if cn := c.conns[slot]; cn != nil && !cn.isFailed() {
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()

	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if old := c.conns[slot]; old != nil && !old.isFailed() {
		// Another caller refreshed the slot first; use theirs.
		c.mu.Unlock()
		cn.fail(ErrClientClosed)
		return old, nil
	}
	c.conns[slot] = cn
	c.mu.Unlock()
	return cn, nil
}

func (c *Client) backoff(attempt int) {
	d := c.opts.RetryBase << uint(attempt)
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	// ±50% jitter decorrelates clients hammering a busy server.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	time.Sleep(d)
}

// do runs one request with the retry policy, returning the completed
// call on any non-retryable outcome.
func (c *Client) do(op kvwire.Op, enc func(id uint64, b []byte) []byte) (*call, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
		}
		cn, err := c.pick()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, err
			}
			lastErr = err // transient dial failure: retry
			continue
		}
		cl, sent, err := cn.roundtrip(op, enc)
		if err != nil {
			if !sent {
				lastErr = err // never hit the socket: safe to retry
				continue
			}
			return nil, err // mid-flight failure: may have executed
		}
		if cl.status.Retryable() {
			lastErr = cl.status.Err()
			continue
		}
		return cl, nil
	}
	return nil, fmt.Errorf("client: giving up after %d retries: %w", c.opts.MaxRetries, lastErr)
}

// statusErr maps a completed call to its error (nil for OK), attaching
// any server-provided detail.
func statusErr(cl *call) error {
	err := cl.status.Err()
	if err != nil && cl.msg != "" {
		return fmt.Errorf("%w: %s", err, cl.msg)
	}
	return err
}

// Put stores a key-value pair.
func (c *Client) Put(key, value []byte) error {
	cl, err := c.do(kvwire.OpPut, func(id uint64, b []byte) []byte {
		return kvwire.AppendPut(b, id, key, value)
	})
	if err != nil {
		return err
	}
	return statusErr(cl)
}

// Get retrieves the value stored under key; kvwire.ErrNotFound if
// absent.
func (c *Client) Get(key []byte) ([]byte, error) {
	cl, err := c.do(kvwire.OpGet, func(id uint64, b []byte) []byte {
		return kvwire.AppendGet(b, id, key)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(cl); err != nil {
		return nil, err
	}
	return cl.value, nil
}

// Del deletes key; kvwire.ErrNotFound if absent.
func (c *Client) Del(key []byte) error {
	cl, err := c.do(kvwire.OpDel, func(id uint64, b []byte) []byte {
		return kvwire.AppendDel(b, id, key)
	})
	if err != nil {
		return err
	}
	return statusErr(cl)
}

// Exist reports whether key is stored.
func (c *Client) Exist(key []byte) (bool, error) {
	cl, err := c.do(kvwire.OpExist, func(id uint64, b []byte) []byte {
		return kvwire.AppendExist(b, id, key)
	})
	if err != nil {
		return false, err
	}
	if err := statusErr(cl); err != nil {
		return false, err
	}
	return cl.ok, nil
}

// Scan enumerates up to limit keys sharing prefix, sorted, with their
// values. limit 0 asks for the server maximum. The server must run
// iterator-mode signatures (-prefixlen); otherwise the scan fails with
// kvwire.ErrBadRequest.
func (c *Client) Scan(prefix []byte, limit int) ([]kvwire.ScanEntry, error) {
	cl, err := c.do(kvwire.OpScan, func(id uint64, b []byte) []byte {
		return kvwire.AppendScan(b, id, prefix, uint64(limit))
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(cl); err != nil {
		return nil, err
	}
	return cl.entries, nil
}

// Stats fetches the server's device counters.
func (c *Client) Stats() (kvwire.Stats, error) {
	cl, err := c.do(kvwire.OpStats, func(id uint64, b []byte) []byte {
		return kvwire.AppendStats(b, id)
	})
	if err != nil {
		return kvwire.Stats{}, err
	}
	if err := statusErr(cl); err != nil {
		return kvwire.Stats{}, err
	}
	return cl.stats, nil
}
