package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"repro/internal/kvwire"
)

// Snapshot and backup support. SNAPSHOT/SNAPGET/SNAPRELEASE are
// ordinary pipelined request/response pairs and ride the pool. BACKUP
// is the protocol's only multi-frame response, which a pipelined
// connection cannot demultiplex (its reader retires a request ID on the
// first frame), so Backup opens a dedicated connection for the stream's
// duration.

// Backup stream errors.
var (
	// ErrBackupTruncated: the stream ended before its trailer frame —
	// the server died or the connection dropped mid-backup. The partial
	// stream must be discarded.
	ErrBackupTruncated = errors.New("client: backup stream truncated (no trailer)")
	// ErrBackupCorrupt: the trailer's entry count or CRC does not match
	// the streamed chunks.
	ErrBackupCorrupt = errors.New("client: backup stream corrupt (count/CRC mismatch)")
)

// Snapshot captures a consistent point-in-time view on the server and
// returns its handle. The snapshot pins server resources until
// SnapRelease (or the client's connections close).
func (c *Client) Snapshot() (kvwire.SnapInfo, error) {
	cl, err := c.do(kvwire.OpSnapshot, func(id uint64, b []byte) []byte {
		return kvwire.AppendSnapshot(b, id)
	})
	if err != nil {
		return kvwire.SnapInfo{}, err
	}
	if err := statusErr(cl); err != nil {
		return kvwire.SnapInfo{}, err
	}
	return cl.snap, nil
}

// SnapGet retrieves key's value as of the snapshot's capture instant;
// kvwire.ErrNotFound if the key had no live value then, and
// kvwire.ErrUnknownSnapshot if the snapshot is gone (released, expired
// with its connection, or invalidated by a server power cycle).
func (c *Client) SnapGet(snap uint64, key []byte) ([]byte, error) {
	cl, err := c.do(kvwire.OpSnapGet, func(id uint64, b []byte) []byte {
		return kvwire.AppendSnapGet(b, id, snap, key)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(cl); err != nil {
		return nil, err
	}
	return cl.value, nil
}

// SnapRelease drops a snapshot, unpinning its server resources.
func (c *Client) SnapRelease(snap uint64) error {
	cl, err := c.do(kvwire.OpSnapRelease, func(id uint64, b []byte) []byte {
		return kvwire.AppendSnapRelease(b, id, snap)
	})
	if err != nil {
		return err
	}
	return statusErr(cl)
}

// BackupResult summarizes a completed, verified backup stream.
type BackupResult struct {
	// Epoch is the streamed snapshot's set-level visibility bound.
	Epoch uint64
	// Entries is the verified entry count.
	Entries uint64
}

// Backup streams a consistent checkpoint from the server, calling fn
// for every entry in key order. snap 0 has the server capture (and
// afterwards release) a snapshot of its own; a nonzero snap streams a
// snapshot previously opened with Snapshot, which stays open. Key and
// value alias the read buffer — fn must copy what it retains.
//
// The stream is verified end-to-end: a missing trailer (killed server,
// dropped connection) returns ErrBackupTruncated, and a trailer whose
// entry count or CRC disagrees with the chunks returns
// ErrBackupCorrupt. fn is called as chunks arrive, so on error the
// caller must discard whatever fn accumulated.
func (c *Client) Backup(snap uint64, fn func(key, value []byte) error) (BackupResult, error) {
	nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return BackupResult{}, err
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	req := kvwire.AppendPreamble(nil)
	req = kvwire.AppendBackup(req, 1, snap)
	if _, err := nc.Write(req); err != nil {
		return BackupResult{}, fmt.Errorf("client: backup request: %w", err)
	}

	fr := kvwire.NewFrameReader(bufio.NewReaderSize(nc, 256<<10))
	var (
		resp    kvwire.Response
		entries []kvwire.ScanEntry
		crc     uint32
		count   uint64
	)
	for {
		body, err := fr.Next()
		if err != nil {
			return BackupResult{}, fmt.Errorf("%w: %v", ErrBackupTruncated, err)
		}
		if err := resp.Parse(body); err != nil {
			return BackupResult{}, fmt.Errorf("client: backup response: %w", err)
		}
		if resp.ID != 1 {
			return BackupResult{}, fmt.Errorf("client: backup: unexpected request id %d", resp.ID)
		}
		if resp.Status != kvwire.StatusOK {
			err := resp.Status.Err()
			if msg := kvwire.ParseErrorPayload(resp.Payload); msg != "" {
				return BackupResult{}, fmt.Errorf("%w: %s", err, msg)
			}
			return BackupResult{}, err
		}
		f, err := kvwire.ParseBackupFrame(resp.Payload, entries[:0])
		if err != nil {
			return BackupResult{}, fmt.Errorf("client: backup frame: %w", err)
		}
		if f.Trailer {
			if count != f.Total || crc != f.CRC {
				return BackupResult{}, fmt.Errorf("%w: got %d entries crc %#x, trailer says %d/%#x",
					ErrBackupCorrupt, count, crc, f.Total, f.CRC)
			}
			return BackupResult{Epoch: f.Epoch, Entries: f.Total}, nil
		}
		for _, e := range f.Entries {
			crc = kvwire.BackupCRC(crc, e.Key, e.Value)
			count++
			if fn != nil {
				if err := fn(e.Key, e.Value); err != nil {
					return BackupResult{}, err
				}
			}
		}
		entries = f.Entries
	}
}
