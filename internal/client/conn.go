package client

import (
	"bufio"
	"fmt"
	"sync"

	"net"

	"repro/internal/kvwire"
)

// reqPool recycles encoded request frames between callers and the
// connection writer.
var reqPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// call is one in-flight request slot, completed by the reader.
type call struct {
	op    kvwire.Op
	ready chan struct{}

	status  kvwire.Status
	msg     string
	value   []byte // Get result, copied out of the frame buffer
	ok      bool   // Exist result
	items   []kvwire.BatchItem
	entries []kvwire.ScanEntry
	stats   kvwire.Stats
	snap    kvwire.SnapInfo
	err     error // transport-level failure
}

// conn is one pooled connection: callers enqueue frames, the writer
// flushes them (batching consecutive frames into one syscall), and the
// reader matches responses back to pending calls by request ID.
type conn struct {
	nc  net.Conn
	out chan *[]byte

	pmu     sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	failed  error

	done     chan struct{}
	failOnce sync.Once
}

func newClientConn(nc net.Conn) *conn {
	return &conn{
		nc:      nc,
		out:     make(chan *[]byte, 256),
		pending: make(map[uint64]*call),
		done:    make(chan struct{}),
	}
}

func (cn *conn) isFailed() bool {
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	return cn.failed != nil
}

// fail marks the connection dead and completes every pending call with
// err. Idempotent; the first cause wins.
func (cn *conn) fail(err error) {
	cn.failOnce.Do(func() {
		cn.pmu.Lock()
		cn.failed = err
		pending := cn.pending
		cn.pending = map[uint64]*call{}
		cn.pmu.Unlock()
		close(cn.done)
		cn.nc.Close()
		for _, cl := range pending {
			cl.err = err
			close(cl.ready)
		}
	})
}

// roundtrip registers a call, enqueues its frame, and waits for the
// response. sent=false means the frame never reached the writer, so the
// caller may safely retry elsewhere.
func (cn *conn) roundtrip(op kvwire.Op, enc func(id uint64, b []byte) []byte) (cl *call, sent bool, err error) {
	cl = &call{op: op, ready: make(chan struct{})}
	cn.pmu.Lock()
	if cn.failed != nil {
		err := cn.failed
		cn.pmu.Unlock()
		return nil, false, err
	}
	cn.nextID++
	id := cn.nextID
	cn.pending[id] = cl
	cn.pmu.Unlock()

	pb := reqPool.Get().(*[]byte)
	*pb = enc(id, (*pb)[:0])
	select {
	case cn.out <- pb:
	case <-cn.done:
		reqPool.Put(pb)
		cn.pmu.Lock()
		delete(cn.pending, id)
		err := cn.failed
		cn.pmu.Unlock()
		return nil, false, err
	}

	<-cl.ready
	if cl.err != nil {
		return nil, true, cl.err
	}
	return cl, true, nil
}

func (cn *conn) writeLoop() {
	bw := bufio.NewWriterSize(cn.nc, 64<<10)
	for {
		select {
		case pb := <-cn.out:
			if _, err := bw.Write(*pb); err != nil {
				reqPool.Put(pb)
				cn.fail(fmt.Errorf("client: write: %w", err))
				return
			}
			reqPool.Put(pb)
			if len(cn.out) == 0 {
				if err := bw.Flush(); err != nil {
					cn.fail(fmt.Errorf("client: flush: %w", err))
					return
				}
			}
		case <-cn.done:
			return
		}
	}
}

func (cn *conn) readLoop() {
	fr := kvwire.NewFrameReader(cn.nc)
	var resp kvwire.Response
	for {
		body, err := fr.Next()
		if err != nil {
			cn.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		if err := resp.Parse(body); err != nil {
			cn.fail(fmt.Errorf("client: response: %w", err))
			return
		}
		cn.pmu.Lock()
		cl := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.pmu.Unlock()
		if cl == nil {
			cn.fail(fmt.Errorf("client: response for unknown request id %d", resp.ID))
			return
		}
		cl.status = resp.Status
		if resp.Status != kvwire.StatusOK {
			cl.msg = kvwire.ParseErrorPayload(resp.Payload)
			close(cl.ready)
			continue
		}
		if err := cl.decode(resp.Payload); err != nil {
			cl.err = err
			close(cl.ready)
			cn.fail(fmt.Errorf("client: payload: %w", err))
			return
		}
		close(cl.ready)
	}
}

// decode interprets an OK payload for the call's opcode, copying any
// value bytes out of the connection's reused frame buffer.
func (cl *call) decode(p []byte) error {
	switch cl.op {
	case kvwire.OpGet:
		v, err := kvwire.ParseValuePayload(p)
		if err != nil {
			return err
		}
		cl.value = append([]byte(nil), v...)
	case kvwire.OpExist:
		ok, err := kvwire.ParseBoolPayload(p)
		if err != nil {
			return err
		}
		cl.ok = ok
	case kvwire.OpBatch:
		items, err := kvwire.ParseBatchPayload(p, nil)
		if err != nil {
			return err
		}
		for i := range items {
			items[i].Value = append([]byte(nil), items[i].Value...)
		}
		cl.items = items
	case kvwire.OpScan:
		entries, err := kvwire.ParseScanPayload(p, nil)
		if err != nil {
			return err
		}
		for i := range entries {
			entries[i].Key = append([]byte(nil), entries[i].Key...)
			entries[i].Value = append([]byte(nil), entries[i].Value...)
		}
		cl.entries = entries
	case kvwire.OpStats:
		st, err := kvwire.ParseStatsPayload(p)
		if err != nil {
			return err
		}
		cl.stats = st
	case kvwire.OpSnapshot:
		sn, err := kvwire.ParseSnapshotPayload(p)
		if err != nil {
			return err
		}
		cl.snap = sn
	case kvwire.OpSnapGet:
		v, err := kvwire.ParseValuePayload(p)
		if err != nil {
			return err
		}
		cl.value = append([]byte(nil), v...)
	}
	return nil
}
