package client

import "repro/internal/kvwire"

// Batch accumulates operations for fan-in: Do ships the whole batch as
// one BATCH frame, the server fans it out across shards in parallel,
// and the per-op results fan back out into a BatchResult. Mirroring the
// library Batch, sub-ops are Put/Get/Del; use Get where Exist is
// wanted. Key and value slices are aliased until Do encodes the frame.
type Batch struct {
	ops []kvwire.BatchOp
}

// Put queues a store.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, kvwire.BatchOp{Op: kvwire.OpPut, Key: key, Value: value})
}

// Get queues a retrieve; the value lands at the same index of
// BatchResult.Values.
func (b *Batch) Get(key []byte) {
	b.ops = append(b.ops, kvwire.BatchOp{Op: kvwire.OpGet, Key: key})
}

// Del queues a delete.
func (b *Batch) Del(key []byte) {
	b.ops = append(b.ops, kvwire.BatchOp{Op: kvwire.OpDel, Key: key})
}

// Len reports the queued op count.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// BatchResult reports per-op outcomes, indexed like the submitted ops.
type BatchResult struct {
	// Errs holds the per-op error (nil on success).
	Errs []error
	// Values holds retrieved values (nil for non-gets and failures).
	Values [][]byte
}

// Failed reports how many ops errored.
func (r BatchResult) Failed() int {
	n := 0
	for _, e := range r.Errs {
		if e != nil {
			n++
		}
	}
	return n
}

// Do submits the batch and waits for the joined results. The returned
// error reflects request-level failure (transport, BUSY retries
// exhausted); per-op failures land in BatchResult.Errs.
func (c *Client) Do(b *Batch) (BatchResult, error) {
	if b.Len() == 0 {
		return BatchResult{}, nil
	}
	cl, err := c.do(kvwire.OpBatch, func(id uint64, buf []byte) []byte {
		return kvwire.AppendBatch(buf, id, b.ops)
	})
	if err != nil {
		return BatchResult{}, err
	}
	if err := statusErr(cl); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{
		Errs:   make([]error, len(cl.items)),
		Values: make([][]byte, len(cl.items)),
	}
	for i, it := range cl.items {
		res.Errs[i] = it.Status.Err()
		res.Values[i] = it.Value
	}
	return res, nil
}
