// Package hash implements the key-signature hash functions used by RHIK:
// MurmurHash2-64A (the paper's default for 64-bit key signatures) and
// MurmurHash3-x64-128 (the paper's proposed higher-resolution alternative
// for reducing signature collisions, §IV-A3). Both are direct
// transliterations of Austin Appleby's public-domain reference code.
package hash

import "encoding/binary"

const (
	murmur2M = 0xc6a4a7935bd1e995
	murmur2R = 47
)

// Murmur2_64 computes the 64-bit MurmurHash2-64A of data with the given
// seed. RHIK uses the result as the key signature that identifies a key
// within the index.
func Murmur2_64(data []byte, seed uint64) uint64 {
	h := seed ^ uint64(len(data))*murmur2M

	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		k *= murmur2M
		k ^= k >> murmur2R
		k *= murmur2M
		h ^= k
		h *= murmur2M
		data = data[8:]
	}

	switch len(data) {
	case 7:
		h ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(data[0])
		h *= murmur2M
	}

	h ^= h >> murmur2R
	h *= murmur2M
	h ^= h >> murmur2R
	return h
}

const (
	murmur3C1 = 0x87c37b91114253d5
	murmur3C2 = 0x4cf5ad432745937f
)

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Murmur3_128 computes the 128-bit MurmurHash3-x64-128 of data with the
// given seed, returned as two 64-bit halves (h1, h2).
func Murmur3_128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := len(data)

	body := data
	for len(body) >= 16 {
		k1 := binary.LittleEndian.Uint64(body)
		k2 := binary.LittleEndian.Uint64(body[8:])
		body = body[16:]

		k1 *= murmur3C1
		k1 = rotl64(k1, 31)
		k1 *= murmur3C2
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= murmur3C2
		k2 = rotl64(k2, 33)
		k2 *= murmur3C1
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(body) {
	case 15:
		k2 ^= uint64(body[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(body[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(body[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(body[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(body[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(body[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(body[8])
		k2 *= murmur3C2
		k2 = rotl64(k2, 33)
		k2 *= murmur3C1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(body[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(body[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(body[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(body[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(body[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(body[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(body[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(body[0])
		k1 *= murmur3C1
		k1 = rotl64(k1, 31)
		k1 *= murmur3C2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Mix64 is a standalone 64-bit finalizer (the Murmur3 fmix64 step). The
// record layer uses it to derive in-table slot positions from key
// signatures so that the record-layer hash function is independent of the
// directory-layer bit selection.
func Mix64(x uint64) uint64 { return fmix64(x) }
