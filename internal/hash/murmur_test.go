package hash

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestMurmur2EmptyZeroSeed(t *testing.T) {
	// With seed 0 and no input, h starts at 0 and every finalization step
	// maps 0 to 0; this follows directly from the algorithm definition.
	if got := Murmur2_64(nil, 0); got != 0 {
		t.Fatalf("Murmur2_64(nil, 0) = %#x, want 0", got)
	}
}

func TestMurmur2Deterministic(t *testing.T) {
	a := Murmur2_64([]byte("key-00000042"), 0x9747b28c)
	b := Murmur2_64([]byte("key-00000042"), 0x9747b28c)
	if a != b {
		t.Fatalf("non-deterministic: %#x vs %#x", a, b)
	}
}

func TestMurmur2SeedSensitivity(t *testing.T) {
	data := []byte("some key")
	if Murmur2_64(data, 1) == Murmur2_64(data, 2) {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestMurmur2AllTailLengths(t *testing.T) {
	// Every tail length 0..7 must be handled; flipping the last byte must
	// change the hash for each.
	base := make([]byte, 24)
	for i := range base {
		base[i] = byte(i * 7)
	}
	for n := 1; n <= 24; n++ {
		buf := append([]byte(nil), base[:n]...)
		h1 := Murmur2_64(buf, 0)
		buf[n-1] ^= 0xff
		h2 := Murmur2_64(buf, 0)
		if h1 == h2 {
			t.Errorf("len %d: flipping last byte did not change hash", n)
		}
	}
}

// Golden values pinned from this implementation (a transliteration of the
// public-domain reference); they guard against regressions in refactors.
func TestMurmur2Golden(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0x0},
		{"a", 0, 0x71717d2d36b6b11},
		{"ab", 0, 0x62be85b2fe53d1f8},
		{"hello", 0, 0x1e68d17c457bf117},
		{"hello, world!", 0x1234, 0x67753d4f8c62ba48},
		{"0123456789abcdef", 0, 0x93a92d1a91a24bc7},
	}
	for _, c := range cases {
		if got := Murmur2_64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Murmur2_64(%q, %#x) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestMurmur3Golden(t *testing.T) {
	cases := []struct {
		in     string
		seed   uint64
		h1, h2 uint64
	}{
		{"", 0, 0x0, 0x0},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"The quick brown fox jumps over the lazy dog", 0, 0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347},
	}
	for _, c := range cases {
		h1, h2 := Murmur3_128([]byte(c.in), c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Murmur3_128(%q, %#x) = (%#x, %#x), want (%#x, %#x)",
				c.in, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	base := make([]byte, 40)
	for i := range base {
		base[i] = byte(i*13 + 1)
	}
	seen := make(map[[2]uint64]int)
	for n := 0; n <= 40; n++ {
		h1, h2 := Murmur3_128(base[:n], 0)
		if prev, dup := seen[[2]uint64{h1, h2}]; dup {
			t.Errorf("lengths %d and %d collide", prev, n)
		}
		seen[[2]uint64{h1, h2}] = n
	}
}

func TestMurmur2SubsliceIndependence(t *testing.T) {
	// Hashing a subslice must equal hashing a copy of it (no dependence on
	// the backing array beyond the slice bounds).
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	f := func(start, length uint8) bool {
		s := int(start) % len(buf)
		l := int(length) % (len(buf) - s)
		sub := buf[s : s+l]
		cp := append([]byte(nil), sub...)
		return Murmur2_64(sub, 7) == Murmur2_64(cp, 7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur2BitDistribution(t *testing.T) {
	// Over many hashed counters, each of the 64 output bits should be set
	// roughly half the time. A grossly skewed bit means a broken
	// transliteration.
	const n = 20000
	var counts [64]int
	var key [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i))
		h := Murmur2_64(key[:], 0)
		for b := 0; b < 64; b++ {
			if h&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.5) > 0.03 {
			t.Errorf("bit %d set %.3f of the time, want ~0.5", b, frac)
		}
	}
}

func TestMurmur2LowBitsUniform(t *testing.T) {
	// RHIK's directory layer uses the low d bits of the signature; check
	// that a small directory would be evenly loaded.
	const n = 1 << 16
	const buckets = 64
	var hist [buckets]int
	var key [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i)*2654435761)
		hist[Murmur2_64(key[:], 0)&(buckets-1)]++
	}
	mean := float64(n) / buckets
	for b, c := range hist {
		if math.Abs(float64(c)-mean) > mean*0.15 {
			t.Errorf("bucket %d holds %d keys, mean %.0f", b, c, mean)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// fmix64 is a bijection; distinct inputs must map to distinct outputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		x := i * 0x9e3779b97f4a7c15
		y := Mix64(x)
		if prev, ok := seen[y]; ok {
			t.Fatalf("Mix64 collision: %#x and %#x both map to %#x", prev, x, y)
		}
		seen[y] = x
	}
	if Mix64(0) != 0 {
		t.Fatalf("Mix64(0) = %#x, want 0", Mix64(0))
	}
}

func TestMurmur3SeedSensitivity(t *testing.T) {
	a1, a2 := Murmur3_128([]byte("key"), 1)
	b1, b2 := Murmur3_128([]byte("key"), 2)
	if a1 == b1 && a2 == b2 {
		t.Fatal("different seeds produced identical 128-bit hashes")
	}
}

func BenchmarkMurmur2_16B(b *testing.B) {
	key := []byte("0123456789abcdef")
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		Murmur2_64(key, 0)
	}
}

func BenchmarkMurmur2_128B(b *testing.B) {
	key := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		Murmur2_64(key, 0)
	}
}

func BenchmarkMurmur3_16B(b *testing.B) {
	key := []byte("0123456789abcdef")
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		Murmur3_128(key, 0)
	}
}
