package server

import (
	"repro/internal/kvwire"
	"repro/internal/shard"
)

// Snapshot handling. SNAPSHOT captures a consistent set-wide view and
// registers it under a server-scoped ID; SNAPGET/BACKUP resolve that ID
// from any connection (the registry is global so a client may stream a
// BACKUP over a dedicated connection while the snapshot was opened on a
// pooled one). Ownership is per-connection only for cleanup: when the
// opening connection dies, its snapshots are released so a departed
// client cannot pin flash blocks against GC forever.

// backupChunkBytes flushes a BACKUP chunk frame once its payload grows
// past this, keeping frames far under kvwire.MaxFrameLen even with
// large values.
const backupChunkBytes = 1 << 20

// serverSnap ties a registered snapshot to the connection that opened
// it.
type serverSnap struct {
	ss    *shard.SetSnapshot
	owner *conn
}

func (s *Server) registerSnapshot(ss *shard.SetSnapshot, owner *conn) uint64 {
	id := s.nextSnap.Add(1)
	s.snapMu.Lock()
	s.snaps[id] = &serverSnap{ss: ss, owner: owner}
	s.snapMu.Unlock()
	return id
}

func (s *Server) lookupSnapshot(id uint64) *shard.SetSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if sn := s.snaps[id]; sn != nil {
		return sn.ss
	}
	return nil
}

// dropSnapshot removes id from the registry and returns it (nil when
// unknown); the caller releases it outside the lock.
func (s *Server) dropSnapshot(id uint64) *shard.SetSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if sn := s.snaps[id]; sn != nil {
		delete(s.snaps, id)
		return sn.ss
	}
	return nil
}

// releaseConnSnapshots releases every snapshot the departing connection
// opened. Tasks it already admitted may still be queued; they will
// observe the release and answer UNKNOWN_SNAPSHOT, which the departed
// peer never reads anyway.
func (s *Server) releaseConnSnapshots(c *conn) {
	var drop []*shard.SetSnapshot
	s.snapMu.Lock()
	for id, sn := range s.snaps {
		if sn.owner == c {
			drop = append(drop, sn.ss)
			delete(s.snaps, id)
		}
	}
	s.snapMu.Unlock()
	for _, ss := range drop {
		ss.Release()
	}
}

// releaseAllSnapshots empties the registry during Shutdown, before the
// set closes.
func (s *Server) releaseAllSnapshots() {
	var drop []*shard.SetSnapshot
	s.snapMu.Lock()
	for id, sn := range s.snaps {
		drop = append(drop, sn.ss)
		delete(s.snaps, id)
	}
	s.snapMu.Unlock()
	for _, ss := range drop {
		ss.Release()
	}
}

func (s *Server) executeSnapshot(t *task) {
	ss, err := s.set.Snapshot()
	if err != nil {
		s.replyStatus(t, err)
		return
	}
	info := kvwire.SnapInfo{
		ID:      s.registerSnapshot(ss, t.c),
		Epoch:   ss.Epoch(),
		Records: uint64(ss.Records()),
	}
	t.c.reply(func(b []byte) []byte { return kvwire.AppendSnapshotResponse(b, t.id, &info) })
}

func (s *Server) executeSnapGet(t *task) {
	ss := s.lookupSnapshot(t.snap)
	if ss == nil {
		t.c.reply(func(b []byte) []byte {
			return kvwire.AppendError(b, t.id, kvwire.StatusUnknownSnapshot, "")
		})
		return
	}
	v, err := ss.Get(t.key)
	if err != nil {
		s.replyStatus(t, err)
		return
	}
	t.c.reply(func(b []byte) []byte { return kvwire.AppendValueResponse(b, t.id, v) })
}

func (s *Server) executeSnapRelease(t *task) {
	ss := s.dropSnapshot(t.snap)
	if ss == nil {
		t.c.reply(func(b []byte) []byte {
			return kvwire.AppendError(b, t.id, kvwire.StatusUnknownSnapshot, "")
		})
		return
	}
	ss.Release()
	t.c.reply(func(b []byte) []byte { return kvwire.AppendOK(b, t.id) })
}

// executeBackup streams a consistent checkpoint: zero or more chunk
// frames followed by one trailer, all with the request's ID. Snap 0
// captures (and afterwards releases) a snapshot for the duration of the
// stream; a nonzero snap streams a client-held snapshot, which survives
// the backup for further reads. Writers keep committing through the WAL
// throughout — the frozen views are read without shard locks.
func (s *Server) executeBackup(t *task) {
	ss := s.lookupSnapshot(t.snap)
	if t.snap == 0 {
		var err error
		if ss, err = s.set.Snapshot(); err != nil {
			s.replyStatus(t, err)
			return
		}
		defer ss.Release()
	} else if ss == nil {
		t.c.reply(func(b []byte) []byte {
			return kvwire.AppendError(b, t.id, kvwire.StatusUnknownSnapshot, "")
		})
		return
	}
	entries, err := ss.Iterate(nil)
	if err != nil {
		s.replyStatus(t, err)
		return
	}
	var (
		crc   uint32
		chunk []kvwire.ScanEntry
		bytes int
	)
	flush := func() {
		if len(chunk) == 0 {
			return
		}
		cs := chunk // reply builds synchronously, so the slice is reusable after
		t.c.reply(func(b []byte) []byte { return kvwire.AppendBackupChunk(b, t.id, cs) })
		chunk = chunk[:0]
		bytes = 0
	}
	for _, e := range entries {
		chunk = append(chunk, kvwire.ScanEntry{Key: e.Key, Value: e.Value})
		bytes += len(e.Key) + len(e.Value) + 2*5
		crc = kvwire.BackupCRC(crc, e.Key, e.Value)
		if len(chunk) >= kvwire.MaxBackupChunk || bytes >= backupChunkBytes {
			flush()
		}
	}
	flush()
	epoch, total := ss.Epoch(), uint64(len(entries))
	t.c.reply(func(b []byte) []byte { return kvwire.AppendBackupTrailer(b, t.id, epoch, total, crc) })
}
