package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	rhik "repro"
	"repro/internal/client"
	"repro/internal/kvwire"
	"repro/internal/server"
)

// logBuf captures server log lines race-safely.
type logBuf struct {
	mu    sync.Mutex
	lines []string
}

func (l *logBuf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logBuf) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

// startServer opens a sharded device, serves it on a loopback port, and
// tears everything down at test end.
func startServer(t *testing.T, shards int, opts server.Options) (srv *server.Server, addr string, logs *logBuf, served chan error) {
	t.Helper()
	set, err := rhik.OpenSet(rhik.Options{Capacity: 256 << 20, Shards: shards})
	if err != nil {
		t.Fatalf("OpenSet: %v", err)
	}
	logs = &logBuf{}
	opts.Logf = logs.logf
	srv = server.New(set, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served = make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() { srv.Shutdown() })
	return srv, ln.Addr().String(), logs, served
}

// TestLoopbackMixedOps drives a pipelined client hard against a sharded
// loopback server: concurrent goroutines, every op type, verified
// against per-goroutine oracles. Run under -race this is the
// concurrency soak for the whole serving stack.
func TestLoopbackMixedOps(t *testing.T) {
	_, addr, _, _ := startServer(t, 4, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr, Conns: 3})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			oracle := map[string]string{}
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf("g%d: "+format, append([]any{g}, args...)...):
				default:
				}
			}
			key := func(i int) []byte { return []byte(fmt.Sprintf("g%d:key%04d", g, i)) }
			for i := 0; i < opsPer; i++ {
				k := key(rng.Intn(64))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // put
					v := []byte(fmt.Sprintf("v%d-%d", g, i))
					if err := c.Put(k, v); err != nil {
						fail("put: %v", err)
						return
					}
					oracle[string(k)] = string(v)
				case 4, 5, 6: // get
					v, err := c.Get(k)
					want, ok := oracle[string(k)]
					switch {
					case !ok && !errors.Is(err, kvwire.ErrNotFound):
						fail("get absent %q: %v %q", k, err, v)
						return
					case ok && (err != nil || string(v) != want):
						fail("get %q: got %q/%v want %q", k, v, err, want)
						return
					}
				case 7: // exist
					got, err := c.Exist(k)
					if err != nil {
						fail("exist: %v", err)
						return
					}
					if _, ok := oracle[string(k)]; ok != got {
						fail("exist %q: got %v want %v", k, got, ok)
						return
					}
				case 8: // del
					err := c.Del(k)
					_, ok := oracle[string(k)]
					switch {
					case ok && err != nil:
						fail("del %q: %v", k, err)
						return
					case !ok && !errors.Is(err, kvwire.ErrNotFound):
						fail("del absent %q: %v", k, err)
						return
					}
					delete(oracle, string(k))
				case 9: // batch: a put, a get, and a del in one frame
					bk1, bk2, bk3 := key(rng.Intn(64)), key(rng.Intn(64)), key(rng.Intn(64))
					bv := []byte(fmt.Sprintf("b%d-%d", g, i))
					var b client.Batch
					b.Put(bk1, bv)
					b.Get(bk2)
					b.Del(bk3)
					res, err := c.Do(&b)
					if err != nil {
						fail("batch: %v", err)
						return
					}
					// Same-key ops within a batch land on the same shard
					// and execute in submission order, so applying the
					// oracle updates in that order matches the device.
					oracle[string(bk1)] = string(bv)
					// bk2 may equal bk1/bk3; the server executes batch
					// ops concurrently across shards, so only same-shard
					// ordering is defined. Verify the get strictly only
					// when the three keys are distinct.
					if string(bk2) != string(bk1) && string(bk2) != string(bk3) {
						want, ok := oracle[string(bk2)]
						switch {
						case !ok && !errors.Is(res.Errs[1], kvwire.ErrNotFound):
							fail("batch get absent %q: %v", bk2, res.Errs[1])
							return
						case ok && (res.Errs[1] != nil || string(res.Values[1]) != want):
							fail("batch get %q: got %q/%v want %q", bk2, res.Values[1], res.Errs[1], want)
							return
						}
					}
					delete(oracle, string(bk3))
				}
			}
			// Final sweep: every oracle entry must be retrievable.
			for k, want := range oracle {
				v, err := c.Get([]byte(k))
				if err != nil || string(v) != want {
					fail("final get %q: %q/%v want %q", k, v, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shards != 4 || st.Stores == 0 || st.Retrieves == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestScanRoundTrip serves an iterator-mode set and checks SCAN end to
// end: prefix filtering, sort order, limit clamping, and the
// BAD_REQUEST mapping when the server lacks iterator signatures.
func TestScanRoundTrip(t *testing.T) {
	set, err := rhik.OpenSet(rhik.Options{Capacity: 256 << 20, Shards: 4, IteratorPrefixLen: 6})
	if err != nil {
		t.Fatalf("OpenSet: %v", err)
	}
	logs := &logBuf{}
	srv := server.New(set, server.Options{Logf: logs.logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown() })

	c, err := client.Dial(client.Options{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("scanme%04d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	if err := c.Put([]byte("other-key"), []byte("x")); err != nil {
		t.Fatalf("put other: %v", err)
	}

	entries, err := c.Scan([]byte("scanme"), 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(entries) != 20 {
		t.Fatalf("scan returned %d entries, want 20", len(entries))
	}
	for i, e := range entries {
		wantK := fmt.Sprintf("scanme%04d", i)
		wantV := fmt.Sprintf("val-%d", i)
		if string(e.Key) != wantK || string(e.Value) != wantV {
			t.Fatalf("entry %d: %q=%q, want %q=%q", i, e.Key, e.Value, wantK, wantV)
		}
	}

	limited, err := c.Scan([]byte("scanme"), 7)
	if err != nil {
		t.Fatalf("limited scan: %v", err)
	}
	if len(limited) != 7 || string(limited[6].Key) != "scanme0006" {
		t.Fatalf("limited scan: got %d entries", len(limited))
	}

	// A server without iterator-mode signatures must reject SCAN with
	// BAD_REQUEST, not hang or drop the connection.
	_, addr2, _, _ := startServer(t, 1, server.Options{})
	c2, err := client.Dial(client.Options{Addr: addr2})
	if err != nil {
		t.Fatalf("dial non-iterator: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Scan([]byte("scanme"), 0); !errors.Is(err, kvwire.ErrBadRequest) {
		t.Fatalf("scan on non-iterator server: %v, want ErrBadRequest", err)
	}
}

// TestValueSizesAndEdgeCases exercises empty values, large values, and
// device-level errors crossing the wire.
func TestValueSizesAndEdgeCases(t *testing.T) {
	_, addr, _, _ := startServer(t, 1, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.Put([]byte("empty"), nil); err != nil {
		t.Fatalf("put empty: %v", err)
	}
	v, err := c.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("get empty: %q %v", v, err)
	}

	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := c.Put([]byte("big"), big); err != nil {
		t.Fatalf("put 1MiB: %v", err)
	}
	v, err = c.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("get 1MiB: len=%d err=%v", len(v), err)
	}

	if _, err := c.Get([]byte("never-stored")); !errors.Is(err, kvwire.ErrNotFound) {
		t.Fatalf("absent get: %v", err)
	}
	// An empty key is rejected by the device, not the transport.
	if err := c.Put(nil, []byte("v")); !errors.Is(err, kvwire.ErrKeyTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
}

// TestBusyBackpressure floods a tiny-inflight server with pipelined
// frames over a raw socket and requires BUSY rejections, then verifies
// a retrying client still completes every op.
func TestBusyBackpressure(t *testing.T) {
	_, addr, _, _ := startServer(t, 1, server.Options{MaxInflight: 4})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer nc.Close()
	const n = 4000
	buf := kvwire.AppendPreamble(nil)
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < n; i++ {
		buf = kvwire.AppendPut(buf, uint64(i+1), []byte(fmt.Sprintf("busy%05d", i)), val)
	}
	go func() { nc.Write(buf) }()

	fr := kvwire.NewFrameReader(nc)
	var resp kvwire.Response
	busy, ok := 0, 0
	for i := 0; i < n; i++ {
		body, err := fr.Next()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if err := resp.Parse(body); err != nil {
			t.Fatalf("response %d parse: %v", i, err)
		}
		switch resp.Status {
		case kvwire.StatusOK:
			ok++
		case kvwire.StatusBusy:
			busy++
		default:
			t.Fatalf("response %d: unexpected status %v", i, resp.Status)
		}
	}
	if busy == 0 {
		t.Fatalf("no BUSY under a %d-frame flood with MaxInflight=4 (%d ok)", n, ok)
	}
	if ok == 0 {
		t.Fatal("every frame rejected; admission never let work through")
	}
	t.Logf("flood: %d ok, %d busy", ok, busy)

	// A retrying client grinds through despite the tiny inflight cap.
	c, err := client.Dial(client.Options{Addr: addr, MaxRetries: 50, RetryBase: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("retry%d-%d", g, i))
				if err := c.Put(k, k); err != nil {
					select {
					case errCh <- fmt.Errorf("put %s: %w", k, err):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestRequestDeadline verifies queued-past-deadline requests are
// dropped with DEADLINE instead of executing.
func TestRequestDeadline(t *testing.T) {
	_, addr, _, _ := startServer(t, 1, server.Options{RequestTimeout: time.Nanosecond})
	c, err := client.Dial(client.Options{Addr: addr, MaxRetries: -1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Any nonzero queue wait exceeds 1ns, so the request must be shed.
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, kvwire.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

// TestMalformedFrames: a parseable-length frame with a garbage body
// gets BAD_REQUEST and the connection is closed; a bad preamble is
// rejected outright.
func TestMalformedFrames(t *testing.T) {
	_, addr, _, _ := startServer(t, 1, server.Options{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	buf := kvwire.AppendPreamble(nil)
	buf = append(buf, 3, 0, 0, 0, 0xEE, 0x01, 0x00) // unknown opcode 0xEE
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	fr := kvwire.NewFrameReader(nc)
	body, err := fr.Next()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp kvwire.Response
	if err := resp.Parse(body); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if resp.Status != kvwire.StatusBadRequest {
		t.Fatalf("status = %v, want BAD_REQUEST", resp.Status)
	}
	if _, err := fr.Next(); err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("connection not closed after bad frame: %v", err)
	}

	// Wrong magic: the server drops the connection without a response.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc2.Close()
	nc2.Write([]byte{'B', 'A', 'D', '!'})
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := kvwire.NewFrameReader(nc2).Next(); err == nil {
		t.Fatal("server answered a bad preamble")
	}
}

// TestGracefulShutdown: inflight work finishes, the device checkpoints,
// Serve returns ErrServerClosed, and late clients are refused.
func TestGracefulShutdown(t *testing.T) {
	srv, addr, logs, served := startServer(t, 2, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("shut%03d", i))
		if err := c.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if !logs.contains("checkpoint complete") {
		t.Fatalf("no checkpoint logged; got %v", logs.lines)
	}
	// The old connection is gone and new dials are refused.
	if err := c.Put([]byte("late"), []byte("v")); err == nil {
		t.Fatal("put succeeded after shutdown")
	}
	if _, err := client.Dial(client.Options{Addr: addr, DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// Second Shutdown is a quiet no-op.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
