package server

import (
	"bufio"
	"net"
	"sync"

	"repro/internal/kvwire"
)

// respPool recycles encoded response frames between workers (which
// build them) and connection writers (which flush them).
var respPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// conn is one accepted connection: a reader goroutine that parses and
// admits requests, and a writer goroutine that flushes out-of-order
// responses. The writer only exits once every admitted request has
// enqueued its response, so replies never block on a departed peer's
// goroutine being gone — at worst they are discarded after a write
// error.
type conn struct {
	srv   *Server
	nc    net.Conn
	out   chan *[]byte
	tasks sync.WaitGroup // requests admitted on this conn, not yet replied
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{srv: s, nc: nc, out: make(chan *[]byte, 1024)}
}

func (c *conn) readLoop() {
	defer c.srv.conns.Done()
	defer func() {
		c.srv.mu.Lock()
		delete(c.srv.open, c)
		c.srv.mu.Unlock()
		// A departed client cannot release its snapshots; do it for it so
		// dangling snapshots never pin flash blocks against GC.
		c.srv.releaseConnSnapshots(c)
		// Close the outbound side only after the last admitted request
		// has enqueued its response; the writer then flushes and exits.
		go func() {
			c.tasks.Wait()
			close(c.out)
		}()
	}()

	br := bufio.NewReaderSize(c.nc, 64<<10)
	if err := kvwire.ReadPreamble(br); err != nil {
		c.srv.opts.Logf("server: %s: preamble: %v", c.nc.RemoteAddr(), err)
		return
	}
	fr := kvwire.NewFrameReader(br)
	var req kvwire.Request
	for {
		body, err := fr.Next()
		if err != nil {
			// EOF, peer reset, shutdown's read deadline, or an
			// unframeable stream — all end the connection.
			return
		}
		if err := req.Parse(body); err != nil {
			// The stream still frames, but the body is garbage; tell
			// the peer (best effort, the ID may be unparsed) and drop
			// the connection rather than guess at recovery.
			c.reply(func(b []byte) []byte {
				return kvwire.AppendError(b, req.ID, kvwire.StatusBadRequest, err.Error())
			})
			return
		}
		c.srv.admit(c, &req)
	}
}

func (c *conn) writeLoop() {
	defer c.srv.conns.Done()
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	failed := false
	for pb := range c.out {
		if !failed {
			if _, err := bw.Write(*pb); err != nil {
				failed = true
				c.nc.Close() // unblock the reader too
			} else if len(c.out) == 0 {
				// Flush on idle: batches consecutive responses into one
				// syscall under load without delaying a lone response.
				if err := bw.Flush(); err != nil {
					failed = true
					c.nc.Close()
				}
			}
		}
		respPool.Put(pb)
	}
	if !failed {
		bw.Flush()
	}
}

// reply builds a response frame in a pooled buffer and enqueues it for
// the writer. build must append exactly one frame.
func (c *conn) reply(build func([]byte) []byte) {
	pb := respPool.Get().(*[]byte)
	*pb = build((*pb)[:0])
	c.out <- pb
}

func (c *conn) replyBusy(id uint64, msg string) {
	c.reply(func(b []byte) []byte {
		return kvwire.AppendError(b, id, kvwire.StatusBusy, msg)
	})
}
