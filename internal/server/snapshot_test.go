package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvwire"
	"repro/internal/server"
)

// TestSnapshotWireRoundTrip drives SNAPSHOT/SNAPGET/SNAPRELEASE over a
// loopback server: a pinned snapshot keeps serving the capture-instant
// values while the live store moves on, and a released (or never
// issued) ID answers UNKNOWN_SNAPSHOT.
func TestSnapshotWireRoundTrip(t *testing.T) {
	_, addr, _, _ := startServer(t, 2, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const n = 64
	key := func(i int) []byte { return []byte(fmt.Sprintf("snap%04d", i)) }
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	info, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if info.ID == 0 || info.Records != n {
		t.Fatalf("snapshot info = %+v, want nonzero ID and %d records", info, n)
	}

	// Mutate every key after the capture: overwrite half, delete half.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if err := c.Put(key(i), []byte(fmt.Sprintf("v2-%d", i))); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
		} else if err := c.Del(key(i)); err != nil {
			t.Fatalf("del: %v", err)
		}
	}

	for i := 0; i < n; i++ {
		v, err := c.SnapGet(info.ID, key(i))
		if err != nil || string(v) != fmt.Sprintf("v1-%d", i) {
			t.Fatalf("snapget %d: %q/%v, want pre-mutation value", i, v, err)
		}
	}
	// The live view meanwhile sees the mutations.
	if v, err := c.Get(key(0)); err != nil || string(v) != "v2-0" {
		t.Fatalf("live get: %q/%v", v, err)
	}
	if _, err := c.Get(key(1)); !errors.Is(err, kvwire.ErrNotFound) {
		t.Fatalf("live get deleted: %v", err)
	}
	// A key never stored is absent in the snapshot too.
	if _, err := c.SnapGet(info.ID, []byte("never")); !errors.Is(err, kvwire.ErrNotFound) {
		t.Fatalf("snapget absent: %v", err)
	}

	// A second capture after the mutations observes a later epoch.
	info2, err := c.Snapshot()
	if err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	if info2.Epoch <= info.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", info.Epoch, info2.Epoch)
	}
	if err := c.SnapRelease(info2.ID); err != nil {
		t.Fatalf("release: %v", err)
	}

	if err := c.SnapRelease(info.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := c.SnapGet(info.ID, key(0)); !errors.Is(err, kvwire.ErrUnknownSnapshot) {
		t.Fatalf("snapget after release: %v, want ErrUnknownSnapshot", err)
	}
	if err := c.SnapRelease(info.ID); !errors.Is(err, kvwire.ErrUnknownSnapshot) {
		t.Fatalf("double release: %v, want ErrUnknownSnapshot", err)
	}
	if _, err := c.SnapGet(999999, key(0)); !errors.Is(err, kvwire.ErrUnknownSnapshot) {
		t.Fatalf("snapget bogus id: %v, want ErrUnknownSnapshot", err)
	}
}

// TestBackupStreamUnderWriters streams BACKUP while writer goroutines
// keep mutating, then checks the stream is sorted, self-consistent
// (the client verifies count+CRC against the trailer), and frozen: no
// value written after the capture epoch appears.
func TestBackupStreamUnderWriters(t *testing.T) {
	_, addr, _, _ := startServer(t, 2, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const n = 200
	key := func(i int) []byte { return []byte(fmt.Sprintf("bk%05d", i)) }
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// Pin a snapshot first so the backup's view predates every "new-"
	// write no matter when the stream starts.
	info, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := key((i*7 + g) % n)
				if err := c.Put(k, []byte(fmt.Sprintf("new-%d-%d", g, i))); err != nil {
					return
				}
			}
		}(g)
	}

	var streamed []kvwire.ScanEntry
	res, err := c.Backup(info.ID, func(k, v []byte) error {
		streamed = append(streamed, kvwire.ScanEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return nil
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if res.Epoch != info.Epoch {
		t.Fatalf("backup epoch %d, snapshot epoch %d", res.Epoch, info.Epoch)
	}
	if res.Entries != n || len(streamed) != n {
		t.Fatalf("backup carried %d/%d entries, want %d", res.Entries, len(streamed), n)
	}
	for i, e := range streamed {
		if i > 0 && bytes.Compare(streamed[i-1].Key, e.Key) >= 0 {
			t.Fatalf("stream not sorted at %d: %q then %q", i, streamed[i-1].Key, e.Key)
		}
		if !bytes.HasPrefix(e.Value, []byte("old-")) {
			t.Fatalf("backup leaked a post-capture value: %q=%q", e.Key, e.Value)
		}
	}
	// The held snapshot survives the backup.
	if v, err := c.SnapGet(info.ID, key(0)); err != nil || string(v) != "old-0" {
		t.Fatalf("snapget after backup: %q/%v", v, err)
	}
	if err := c.SnapRelease(info.ID); err != nil {
		t.Fatalf("release: %v", err)
	}

	// snap 0: the server captures and releases its own; quiesced now, so
	// the stream reflects the final values.
	res0, err := c.Backup(0, nil)
	if err != nil {
		t.Fatalf("backup snap 0: %v", err)
	}
	if res0.Entries != n || res0.Epoch <= info.Epoch {
		t.Fatalf("backup snap 0: %+v (first epoch %d)", res0, info.Epoch)
	}

	// Unknown snapshot IDs are rejected before any chunk is streamed.
	if _, err := c.Backup(424242, nil); !errors.Is(err, kvwire.ErrUnknownSnapshot) {
		t.Fatalf("backup bogus id: %v, want ErrUnknownSnapshot", err)
	}
}

// TestSnapshotConnCleanup: a snapshot opened on a connection that dies
// is released by the server, so it stops pinning resources and later
// lookups answer UNKNOWN_SNAPSHOT.
func TestSnapshotConnCleanup(t *testing.T) {
	_, addr, _, _ := startServer(t, 1, server.Options{})
	c1, err := client.Dial(client.Options{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c1.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	info, err := c1.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	c1.Close() // the owning connection departs without releasing

	c2, err := client.Dial(client.Options{Addr: addr, MaxRetries: -1})
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c2.SnapGet(info.ID, []byte("k"))
		if errors.Is(err, kvwire.ErrUnknownSnapshot) {
			return // server reaped the orphan
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot still resolvable after owner departed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
