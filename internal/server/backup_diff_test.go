package server_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	rhik "repro"
	"repro/internal/client"
	"repro/internal/kvwire"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestBackupDifferentialYCSBA is the differential acceptance test for
// online backup: a snapshot pinned before the churn, then BACKUP
// streamed while concurrent YCSB-A writers (zipfian-skewed 50/50
// read/update — the hottest keys are overwritten constantly) hammer the
// store. The stream taken under load must be byte-identical to the same
// pinned snapshot streamed after the writers quiesce, and restoring it
// into a fresh store must yield a quiesced Iterate byte-identical
// (per-key newest-at-epoch) to the pinned-epoch view.
func TestBackupDifferentialYCSBA(t *testing.T) {
	_, addr, _, _ := startServer(t, 4, server.Options{})
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const records = 512
	key := func(id uint64) []byte { return workload.KeyBytes(id) }
	preVal := func(id uint64) []byte { return []byte(fmt.Sprintf("epoch0-%d", id)) }
	for id := uint64(0); id < records; id++ {
		if err := c.Put(key(id), preVal(id)); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}

	info, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if info.Records != records {
		t.Fatalf("snapshot pinned %d records, want %d", info.Records, records)
	}

	// YCSB-A writers: each goroutine draws its own deterministic stream;
	// updates overwrite zipfian-hot keys, reads ride along for realism.
	spec, err := workload.YCSBWorkload("a")
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	warmed := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, err := workload.NewYCSB(spec, records, workload.Fixed{Size: 64}, int64(1000+g))
			if err != nil {
				werrs[g] = err
				warmed <- struct{}{}
				return
			}
			for i := 0; !stop.Load(); i++ {
				if i == 200 {
					// Guarantee real churn has landed before the backup
					// starts: the stream must already be dodging it.
					warmed <- struct{}{}
				}
				op := gen.Next()
				switch op.Kind {
				case workload.OpStore:
					v := []byte(fmt.Sprintf("churn-%d-%d", g, i))
					if err := c.Put(key(op.KeyID), v); err != nil {
						werrs[g] = fmt.Errorf("writer %d put: %w", g, err)
						return
					}
				case workload.OpRetrieve:
					if _, err := c.Get(key(op.KeyID)); err != nil && err != kvwire.ErrNotFound {
						werrs[g] = fmt.Errorf("writer %d get: %w", g, err)
						return
					}
				}
			}
		}(g)
	}

	collect := func() ([]kvwire.ScanEntry, client.BackupResult, error) {
		var out []kvwire.ScanEntry
		res, err := c.Backup(info.ID, func(k, v []byte) error {
			out = append(out, kvwire.ScanEntry{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
			return nil
		})
		return out, res, err
	}

	<-warmed
	<-warmed
	underLoad, resLoad, err := collect()
	stop.Store(true)
	wg.Wait()
	for g, werr := range werrs {
		if werr != nil {
			t.Fatalf("writer %d: %v", g, werr)
		}
	}
	if err != nil {
		t.Fatalf("backup under load: %v", err)
	}

	// Quiesced stream of the SAME pinned snapshot: must match the
	// under-load stream byte for byte — the frozen view never moved.
	quiesced, resQ, err := collect()
	if err != nil {
		t.Fatalf("quiesced backup: %v", err)
	}
	if resLoad.Epoch != info.Epoch || resQ.Epoch != info.Epoch {
		t.Fatalf("epochs drifted: load=%d quiesced=%d pinned=%d", resLoad.Epoch, resQ.Epoch, info.Epoch)
	}
	if len(underLoad) != len(quiesced) {
		t.Fatalf("under-load stream has %d entries, quiesced %d", len(underLoad), len(quiesced))
	}
	for i := range underLoad {
		if !bytes.Equal(underLoad[i].Key, quiesced[i].Key) ||
			!bytes.Equal(underLoad[i].Value, quiesced[i].Value) {
			t.Fatalf("stream entry %d differs under load: %q=%q vs %q=%q",
				i, underLoad[i].Key, underLoad[i].Value, quiesced[i].Key, quiesced[i].Value)
		}
	}
	if err := c.SnapRelease(info.ID); err != nil {
		t.Fatalf("release: %v", err)
	}

	// Restore into a fresh store and compare a quiesced full enumeration
	// (via the restored store's own snapshot — the only full-scan surface)
	// to the pinned-epoch stream: same keys, same bytes, same order.
	restored, err := rhik.OpenSet(rhik.Options{Capacity: 256 << 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for _, e := range underLoad {
		if err := restored.Store(e.Key, e.Value); err != nil {
			t.Fatalf("restore store %q: %v", e.Key, err)
		}
	}
	rss, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("restored snapshot: %v", err)
	}
	defer rss.Release()
	entries, err := rss.Iterate(nil)
	if err != nil {
		t.Fatalf("restored iterate: %v", err)
	}
	if len(entries) != len(underLoad) {
		t.Fatalf("restored store iterates %d entries, backup carried %d", len(entries), len(underLoad))
	}
	for i, e := range entries {
		if !bytes.Equal(e.Key, underLoad[i].Key) || !bytes.Equal(e.Value, underLoad[i].Value) {
			t.Fatalf("restored entry %d: %q=%q, backup says %q=%q",
				i, e.Key, e.Value, underLoad[i].Key, underLoad[i].Value)
		}
	}
	// Every pre-churn value survived into the restored view: the pinned
	// epoch predates all churn, so nothing "churn-" may appear.
	for i, e := range entries {
		if !bytes.HasPrefix(e.Value, []byte("epoch0-")) {
			t.Fatalf("restored entry %d leaked a post-epoch value: %q=%q", i, e.Key, e.Value)
		}
	}
}
