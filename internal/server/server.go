// Package server exposes a sharded emulated KVSSD (shard.Set) over TCP
// using the kvwire protocol. The design targets the serving-path
// bottlenecks remote KV studies identify: per-connection pipelining,
// bounded queues instead of unbounded buffering, and shard-affine
// dispatch so the device's parallelism survives the network hop.
//
// Each connection runs one reader and one writer goroutine. The reader
// parses frames and dispatches them to bounded worker pools keyed by
// Set.RouteKey. Every shard gets ONE writer worker — mutations on the
// same shard execute in submission order — plus a small READ pool
// (Options.ReadPool) serving GET/EXIST: the shard's RWMutex lets
// DRAM-resident lookups run concurrently, so several read workers per
// shard extract real parallelism from a single shard. Reads are
// therefore not ordered against writes admitted concurrently on the
// same shard; clients needing read-your-write order must await the
// write's response before issuing the read (the wire protocol's
// request/response matching already encourages exactly that). BATCH and
// STATS requests, which span shards (Set.Apply fans out internally),
// run on a separate small executor pool. Responses complete out of
// order and are matched by request ID.
//
// Backpressure is explicit: when the global inflight limit or a
// worker's queue is full the server immediately answers BUSY — the
// request is guaranteed not to have executed — rather than buffering
// without bound. An optional per-request deadline drops requests that
// sat in queue too long with DEADLINE, again without executing them.
//
// Shutdown drains gracefully: stop accepting, unblock connection
// readers, finish every admitted request, flush every response, then
// checkpoint and close the device.
package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/kvwire"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Options tunes the server.
type Options struct {
	// MaxInflight caps requests admitted but not yet answered, across
	// all connections (default 4096). Excess requests get BUSY.
	MaxInflight int
	// QueueDepth caps each worker's queue (default 256). A full queue
	// answers BUSY.
	QueueDepth int
	// ReadPool is the number of read workers per shard serving GET and
	// EXIST (default 4). Reads run under the shard's read lock, so the
	// pool executes DRAM-resident lookups concurrently; writes keep one
	// ordered worker per shard regardless.
	ReadPool int
	// RequestTimeout, when positive, drops requests that waited in
	// queue longer than this with DEADLINE instead of executing them.
	RequestTimeout time.Duration
	// Logf receives serving-lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxInflight <= 0 {
		out.MaxInflight = 4096
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.ReadPool <= 0 {
		out.ReadPool = 4
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Server serves one shard.Set over TCP. Create with New, run with
// Serve, stop with Shutdown (which checkpoints and closes the set).
type Server struct {
	set  *shard.Set
	opts Options

	queues  []chan *task // one per shard: mutations, in submission order
	rqueues []chan *task // one per shard: GET/EXIST, drained by a read pool
	xqueue  chan *task   // cross-shard ops: BATCH, STATS

	inflight atomic.Int64
	tasks    sync.WaitGroup // admitted requests not yet answered
	workers  sync.WaitGroup
	conns    sync.WaitGroup // reader+writer goroutines

	mu      sync.Mutex
	ln      net.Listener
	open    map[*conn]struct{}
	closing bool
	drained chan struct{}

	// Snapshot registry: server-scoped IDs so any connection can read or
	// stream a registered snapshot (see snapshot.go).
	snapMu   sync.Mutex
	snaps    map[uint64]*serverSnap
	nextSnap atomic.Uint64
}

// New wraps set. The server owns the set from the first Serve call:
// Shutdown checkpoints and closes it.
func New(set *shard.Set, opts Options) *Server {
	s := &Server{
		set:     set,
		opts:    opts.withDefaults(),
		open:    make(map[*conn]struct{}),
		drained: make(chan struct{}),
		snaps:   make(map[uint64]*serverSnap),
	}
	s.queues = make([]chan *task, set.N())
	s.rqueues = make([]chan *task, set.N())
	for i := range s.queues {
		s.queues[i] = make(chan *task, s.opts.QueueDepth)
		s.rqueues[i] = make(chan *task, s.opts.QueueDepth)
	}
	s.xqueue = make(chan *task, s.opts.QueueDepth)
	return s
}

// Serve accepts connections on ln until Shutdown. It starts the worker
// pool on first call and returns ErrServerClosed after a graceful stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for i := range s.queues {
		s.workers.Add(1)
		go s.worker(s.queues[i])
		for r := 0; r < s.opts.ReadPool; r++ {
			s.workers.Add(1)
			go s.worker(s.rqueues[i])
		}
	}
	// Cross-shard executors: Set.Apply fans out internally, so a few
	// concurrent executors keep every shard busy under batch load.
	nx := s.set.N()/2 + 2
	for i := 0; i < nx; i++ {
		s.workers.Add(1)
		go s.worker(s.xqueue)
	}

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.open[c] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// Shutdown drains the server: stop accepting, finish every admitted
// request, flush responses, then checkpoint and close the device. Safe
// to call once; blocks until the drain completes.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.closing = true
	ln := s.ln
	open := make([]*conn, 0, len(s.open))
	for c := range s.open {
		open = append(open, c)
	}
	s.mu.Unlock()

	s.opts.Logf("server: draining (%d connections)", len(open))
	if ln != nil {
		ln.Close()
	}
	// Unblock connection readers; they stop admitting new requests,
	// then each connection closes its outbound side once its last
	// response is enqueued.
	for _, c := range open {
		c.nc.SetReadDeadline(time.Now())
	}
	s.conns.Wait() // readers and writers done ⇒ all responses flushed
	s.tasks.Wait() // paranoia: no admitted request left unanswered
	for _, q := range s.queues {
		close(q)
	}
	for _, q := range s.rqueues {
		close(q)
	}
	close(s.xqueue)
	s.workers.Wait()
	s.releaseAllSnapshots()

	err := s.set.Close() // checkpoints, then closes every shard
	if err != nil {
		s.opts.Logf("server: checkpoint failed: %v", err)
	} else {
		s.opts.Logf("server: checkpoint complete, device closed")
	}
	close(s.drained)
	return err
}

// task is one admitted request. Key/Value/Ops point into buf, a copy
// owned by the task (the connection's frame buffer is reused as soon as
// the reader moves on).
type task struct {
	c        *conn
	op       kvwire.Op
	id       uint64
	key      []byte
	value    []byte
	ops      []kvwire.BatchOp
	buf      []byte
	vbuf     []byte // reused value scratch for GET replies
	limit    uint64 // scan result cap
	snap     uint64 // snapshot ID for SNAPGET/SNAPRELEASE/BACKUP
	enqueued time.Time
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

func (s *Server) putTask(t *task) {
	t.c = nil
	t.key, t.value, t.ops = nil, nil, t.ops[:0]
	taskPool.Put(t)
}

// worker executes queued tasks until its queue closes.
func (s *Server) worker(q chan *task) {
	defer s.workers.Done()
	for t := range q {
		s.execute(t)
	}
}

func (s *Server) execute(t *task) {
	c := t.c
	defer s.finish(c) // after the response is enqueued
	defer s.putTask(t)
	if d := s.opts.RequestTimeout; d > 0 && time.Since(t.enqueued) > d {
		t.c.reply(func(b []byte) []byte {
			return kvwire.AppendError(b, t.id, kvwire.StatusDeadline, "queued past deadline")
		})
		return
	}
	switch t.op {
	case kvwire.OpPut:
		s.replyStatus(t, s.set.Store(t.key, t.value))
	case kvwire.OpDel:
		s.replyStatus(t, s.set.Delete(t.key))
	case kvwire.OpGet:
		// Append into the task's reused scratch: a DRAM-resident get
		// then completes without allocating on the device or here.
		v, err := s.set.RetrieveAppend(t.vbuf[:0], t.key)
		if err != nil {
			s.replyStatus(t, err)
			return
		}
		t.vbuf = v
		t.c.reply(func(b []byte) []byte { return kvwire.AppendValueResponse(b, t.id, v) })
	case kvwire.OpExist:
		ok, err := s.set.Exist(t.key)
		if err != nil {
			s.replyStatus(t, err)
			return
		}
		t.c.reply(func(b []byte) []byte { return kvwire.AppendBoolResponse(b, t.id, ok) })
	case kvwire.OpBatch:
		s.executeBatch(t)
	case kvwire.OpScan:
		s.executeScan(t)
	case kvwire.OpStats:
		st := s.collectStats()
		t.c.reply(func(b []byte) []byte { return kvwire.AppendStatsResponse(b, t.id, &st) })
	case kvwire.OpSnapshot:
		s.executeSnapshot(t)
	case kvwire.OpSnapGet:
		s.executeSnapGet(t)
	case kvwire.OpSnapRelease:
		s.executeSnapRelease(t)
	case kvwire.OpBackup:
		s.executeBackup(t)
	default:
		t.c.reply(func(b []byte) []byte {
			return kvwire.AppendError(b, t.id, kvwire.StatusBadRequest, "unknown opcode")
		})
	}
}

func (s *Server) replyStatus(t *task, err error) {
	st := statusOf(err)
	if st == kvwire.StatusOK {
		t.c.reply(func(b []byte) []byte { return kvwire.AppendOK(b, t.id) })
		return
	}
	t.c.reply(func(b []byte) []byte { return kvwire.AppendError(b, t.id, st, "") })
}

func (s *Server) executeBatch(t *task) {
	ops := make([]shard.Op, len(t.ops))
	for i, bo := range t.ops {
		switch bo.Op {
		case kvwire.OpPut:
			ops[i] = shard.Op{Kind: workload.OpStore, Key: bo.Key, Value: bo.Value}
		case kvwire.OpGet:
			ops[i] = shard.Op{Kind: workload.OpRetrieve, Key: bo.Key}
		case kvwire.OpDel:
			ops[i] = shard.Op{Kind: workload.OpDelete, Key: bo.Key}
		}
	}
	res := s.set.Apply(ops, 0)
	items := make([]kvwire.BatchItem, len(ops))
	for i := range ops {
		items[i] = kvwire.BatchItem{Status: statusOf(res.Errs[i]), Value: res.Values[i]}
	}
	t.c.reply(func(b []byte) []byte { return kvwire.AppendBatchResponse(b, t.id, items) })
}

// executeScan fans a prefix iteration out to every shard (Set.Iterate
// merges the sorted per-shard streams) and returns up to t.limit
// entries. Requires the server's set to run iterator-mode signatures
// (-prefixlen); otherwise the scan is a BAD_REQUEST, not an internal
// error.
func (s *Server) executeScan(t *task) {
	entries, err := s.set.Iterate(t.key)
	if err != nil {
		if errors.Is(err, device.ErrNoIterator) {
			t.c.reply(func(b []byte) []byte {
				return kvwire.AppendError(b, t.id, kvwire.StatusBadRequest, err.Error())
			})
			return
		}
		s.replyStatus(t, err)
		return
	}
	limit := t.limit
	if limit == 0 || limit > kvwire.MaxScanResults {
		limit = kvwire.MaxScanResults
	}
	if uint64(len(entries)) > limit {
		entries = entries[:limit]
	}
	out := make([]kvwire.ScanEntry, len(entries))
	for i, e := range entries {
		out[i] = kvwire.ScanEntry{Key: e.Key, Value: e.Value}
	}
	t.c.reply(func(b []byte) []byte { return kvwire.AppendScanResponse(b, t.id, out) })
}

func (s *Server) collectStats() kvwire.Stats {
	agg := s.set.Stats()
	return kvwire.Stats{
		Shards:          uint64(s.set.N()),
		Stores:          uint64(agg.Dev.Stores),
		Retrieves:       uint64(agg.Dev.Retrieves),
		Deletes:         uint64(agg.Dev.Deletes),
		Exists:          uint64(agg.Dev.Exists),
		BytesWritten:    uint64(agg.Dev.BytesWritten),
		BytesRead:       uint64(agg.Dev.BytesRead),
		IndexRecords:    uint64(agg.Index.Records),
		Resizes:         uint64(agg.Index.Resizes),
		CollisionAborts: uint64(agg.Dev.CollisionAborts),
		FlashReads:      uint64(agg.Flash.Reads),
		FlashPrograms:   uint64(agg.Flash.Programs),
		FlashErases:     uint64(agg.Flash.Erases),
		GCRuns:          uint64(agg.Dev.GCRuns),
		Checkpoints:     uint64(agg.Dev.Checkpoints),
		StoreP50ns:      uint64(agg.StoreLat.Percentile(50)),
		StoreP99ns:      uint64(agg.StoreLat.Percentile(99)),
		RetrieveP50ns:   uint64(agg.RetrieveLat.Percentile(50)),
		RetrieveP99ns:   uint64(agg.RetrieveLat.Percentile(99)),
		WALRecords:      uint64(agg.WAL.Records),
		WALBytes:        uint64(agg.WAL.Bytes),
		WALGroups:       uint64(agg.WAL.Groups),
		WALFsyncs:       uint64(agg.WAL.Fsyncs),
		WALGroupP50:     uint64(agg.WAL.GroupSize.Percentile(50)),
		WALGroupMax:     uint64(agg.WAL.GroupSize.Max()),

		OptimisticReads:   uint64(agg.OptimisticReads),
		OptimisticRetries: uint64(agg.OptimisticRetries),
		FallbackExclusive: uint64(agg.FallbackExclusive),
		EpochPins:         uint64(agg.EpochPins),

		CacheHits:        uint64(agg.Index.Cache.Hits),
		CacheMisses:      uint64(agg.Index.Cache.Misses),
		AdmissionRejects: uint64(agg.Index.Cache.AdmissionRejects),
		ValueCacheHits:   uint64(agg.Dev.ValueCacheHits),
		ValueCacheMisses: uint64(agg.Dev.ValueCacheMisses),
		PrefetchHits:     uint64(agg.Dev.PrefetchHits),
	}
}

func statusOf(err error) kvwire.Status {
	switch {
	case err == nil:
		return kvwire.StatusOK
	case errors.Is(err, device.ErrNotFound):
		return kvwire.StatusNotFound
	case errors.Is(err, index.ErrCollision):
		return kvwire.StatusCollision
	case errors.Is(err, device.ErrKeyTooLarge):
		return kvwire.StatusKeyTooLarge
	case errors.Is(err, device.ErrValueTooLarge):
		return kvwire.StatusValueTooLarge
	case errors.Is(err, device.ErrDeviceFull):
		return kvwire.StatusDeviceFull
	case errors.Is(err, device.ErrClosed):
		return kvwire.StatusClosed
	case errors.Is(err, device.ErrNoSnapshot):
		return kvwire.StatusBadRequest
	case errors.Is(err, device.ErrSnapshotInvalid),
		errors.Is(err, device.ErrSnapshotReleased):
		return kvwire.StatusUnknownSnapshot
	case errors.Is(err, device.ErrSnapshotBusy):
		return kvwire.StatusBusy
	default:
		return kvwire.StatusInternal
	}
}

// admit routes a parsed request into the worker pool, answering BUSY
// itself when a limit is hit. It owns the inflight/task accounting.
func (s *Server) admit(c *conn, req *kvwire.Request) {
	if s.inflight.Load() >= int64(s.opts.MaxInflight) {
		c.replyBusy(req.ID, "inflight limit")
		return
	}

	t := taskPool.Get().(*task)
	t.c = c
	t.op = req.Op
	t.id = req.ID
	t.limit = req.Limit
	t.snap = req.Snap
	t.enqueued = time.Now()
	t.copyPayload(req)

	var q chan *task
	switch req.Op {
	case kvwire.OpPut, kvwire.OpDel:
		q = s.queues[s.set.RouteKey(t.key)]
	case kvwire.OpGet, kvwire.OpExist:
		q = s.rqueues[s.set.RouteKey(t.key)]
	default:
		q = s.xqueue
	}

	s.inflight.Add(1)
	s.tasks.Add(1)
	c.tasks.Add(1)
	select {
	case q <- t:
	default:
		// Queue full: the shard (or executor pool) is the bottleneck.
		// Refuse instead of buffering unboundedly.
		s.finish(c)
		s.putTask(t)
		c.replyBusy(req.ID, "queue full")
	}
}

// finish reverses admit's accounting; conn.reply calls it after the
// response frame is enqueued.
func (s *Server) finish(c *conn) {
	s.inflight.Add(-1)
	s.tasks.Done()
	c.tasks.Done()
}

// copyPayload copies the request's key/value/batch bytes into the
// task's reused buffer, since the frame buffer they alias is recycled.
func (t *task) copyPayload(req *kvwire.Request) {
	need := len(req.Key) + len(req.Value)
	for _, bo := range req.Ops {
		need += len(bo.Key) + len(bo.Value)
	}
	if cap(t.buf) < need {
		t.buf = make([]byte, 0, need)
	}
	buf := t.buf[:0]
	off := func(b []byte) (lo, hi int) {
		lo = len(buf)
		buf = append(buf, b...)
		return lo, len(buf)
	}
	kl, kh := off(req.Key)
	vl, vh := off(req.Value)
	type span struct{ kl, kh, vl, vh int }
	spans := make([]span, len(req.Ops))
	for i, bo := range req.Ops {
		spans[i].kl, spans[i].kh = off(bo.Key)
		spans[i].vl, spans[i].vh = off(bo.Value)
	}
	t.buf = buf
	t.key = buf[kl:kh:kh]
	t.value = buf[vl:vh:vh]
	t.ops = t.ops[:0]
	for i, bo := range req.Ops {
		t.ops = append(t.ops, kvwire.BatchOp{
			Op:    bo.Op,
			Key:   buf[spans[i].kl:spans[i].kh:spans[i].kh],
			Value: buf[spans[i].vl:spans[i].vh:spans[i].vh],
		})
	}
}
