package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SizeDist samples value sizes for generated requests.
type SizeDist interface {
	// Next samples one value size in bytes.
	Next() int
	// Mean reports the expected size.
	Mean() float64
	// Name labels the distribution in reports.
	Name() string
}

// Fixed always returns the same size (the paper's value-size sweeps).
type Fixed struct {
	Size int
}

// Next implements SizeDist.
func (f Fixed) Next() int { return f.Size }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f.Size) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%dB)", f.Size) }

// Bucket is one request-size class with its probability mass.
type Bucket struct {
	Lo, Hi int     // inclusive size range in bytes
	P      float64 // probability mass
}

// Mean reports the bucket's mean size (uniform within the range).
func (b Bucket) Mean() float64 { return (float64(b.Lo) + float64(b.Hi)) / 2 }

// Discrete samples from weighted size buckets, uniform within a bucket —
// how Table I's request-size tables are rendered executable.
type Discrete struct {
	Label   string
	Buckets []Bucket
	rng     *rand.Rand
}

// NewDiscrete builds a discrete distribution; probabilities are
// normalized so the table's percentages can be used directly.
func NewDiscrete(label string, buckets []Bucket, seed int64) *Discrete {
	var total float64
	for _, b := range buckets {
		total += b.P
	}
	norm := make([]Bucket, len(buckets))
	copy(norm, buckets)
	if total > 0 {
		for i := range norm {
			norm[i].P /= total
		}
	}
	return &Discrete{Label: label, Buckets: norm, rng: rand.New(rand.NewSource(seed))}
}

// Next implements SizeDist.
func (d *Discrete) Next() int {
	u := d.rng.Float64()
	var cum float64
	for _, b := range d.Buckets {
		cum += b.P
		if u <= cum {
			if b.Hi <= b.Lo {
				return b.Lo
			}
			return b.Lo + d.rng.Intn(b.Hi-b.Lo+1)
		}
	}
	last := d.Buckets[len(d.Buckets)-1]
	return last.Hi
}

// Mean implements SizeDist.
func (d *Discrete) Mean() float64 {
	var m float64
	for _, b := range d.Buckets {
		m += b.P * b.Mean()
	}
	return m
}

// Name implements SizeDist.
func (d *Discrete) Name() string { return d.Label }

// MinBucketMean and MaxBucketMean report the smallest and largest bucket
// means; Table I derives its implied key-count ranges from them.
func (d *Discrete) MinBucketMean() float64 {
	m := d.Buckets[0].Mean()
	for _, b := range d.Buckets[1:] {
		if bm := b.Mean(); bm < m {
			m = bm
		}
	}
	return m
}

// MaxBucketMean reports the largest bucket mean.
func (d *Discrete) MaxBucketMean() float64 {
	m := d.Buckets[0].Mean()
	for _, b := range d.Buckets[1:] {
		if bm := b.Mean(); bm > m {
			m = bm
		}
	}
	return m
}

// BaiduAtlasWrite is Table I's Baidu Atlas write request-size mix [10]:
// 94.1 % of writes fall between 128 KB and 256 KB.
func BaiduAtlasWrite(seed int64) *Discrete {
	return NewDiscrete("baidu-atlas-write", []Bucket{
		{0, 4 << 10, 1.2},
		{4 << 10, 16 << 10, 1.0},
		{16 << 10, 32 << 10, 0.8},
		{32 << 10, 64 << 10, 1.2},
		{64 << 10, 128 << 10, 1.7},
		{128 << 10, 256 << 10, 94.1},
	}, seed)
}

// FacebookETC is Table I's Facebook Memcached ETC request-size mix [2]:
// dominated by sub-kilobyte values.
func FacebookETC(seed int64) *Discrete {
	return NewDiscrete("fb-memcached-etc", []Bucket{
		{1, 11, 40},
		{12, 100, 10},
		{101, 1 << 10, 45},
		{1 << 10, 1 << 20, 5},
	}, seed)
}

// RocksDBProfile returns the average-pair-size profiles of the three
// Facebook RocksDB deployments characterized in FAST'20 [19]; the paper
// uses their 57–153 B averages to derive the 26–700 billion key demand.
func RocksDBProfile(name string, seed int64) (*Discrete, error) {
	switch name {
	case "UDB":
		// Average KV pair ~153 B.
		return NewDiscrete("rocksdb-udb", []Bucket{
			{16, 64, 25},
			{64, 192, 55},
			{192, 512, 20},
		}, seed), nil
	case "ZippyDB":
		// Average KV pair ~90 B.
		return NewDiscrete("rocksdb-zippydb", []Bucket{
			{16, 48, 30},
			{48, 128, 55},
			{128, 256, 15},
		}, seed), nil
	case "UP2X":
		// Average KV pair ~57 B.
		return NewDiscrete("rocksdb-up2x", []Bucket{
			{10, 40, 45},
			{40, 90, 45},
			{90, 160, 10},
		}, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown RocksDB profile %q", name)
	}
}

// ZipfSizes samples value sizes from a Zipfian rank distribution over
// [Min, Max]: most values near Min, a heavy tail of large ones — the
// skewed value-size profile measured in production KV fleets, as opposed
// to the uniform-within-bucket mixes above.
type ZipfSizes struct {
	Min, Max int
	z        *Zipfian
	mean     float64
}

// NewZipfSizes builds a skewed size distribution over [min, max] with
// Zipfian skew theta.
func NewZipfSizes(min, max int, theta float64, seed int64) *ZipfSizes {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	n := uint64(max - min + 1)
	s := &ZipfSizes{Min: min, Max: max, z: NewZipfian(n, theta, seed)}
	// Exact mean over the rank distribution (n is a size range, small
	// enough for the O(n) sum).
	zn := zeta(n, s.z.theta)
	for i := uint64(0); i < n; i++ {
		s.mean += float64(min+int(i)) / (zn * math.Pow(float64(i+1), s.z.theta))
	}
	return s
}

// Next implements SizeDist: rank 0 (most likely) maps to Min.
func (s *ZipfSizes) Next() int { return s.Min + int(s.z.Rank()) }

// Mean implements SizeDist.
func (s *ZipfSizes) Mean() float64 { return s.mean }

// Name implements SizeDist.
func (s *ZipfSizes) Name() string {
	return fmt.Sprintf("zipf(%d..%dB,%.2f)", s.Min, s.Max, s.z.theta)
}

// DominantBucket returns the bucket carrying the most probability mass.
func (d *Discrete) DominantBucket() Bucket {
	best := d.Buckets[0]
	for _, b := range d.Buckets[1:] {
		if b.P > best.P {
			best = b
		}
	}
	return best
}

// KeyCountRange reports the implied (min, max) number of KV pairs a
// device of the given capacity would hold under the distribution — the
// derivation beneath Table I's "34 million–2.7 billion keys" rows. The
// minimum assumes every pair takes the dominant bucket's lower-bound
// size (Baidu: 4 TB / 128 KB ≈ 34 M); the maximum assumes the smallest
// bucket's mean size (ETC: 4 TB / ~6 B ≈ 744 B).
func KeyCountRange(capacity int64, d *Discrete) (minKeys, maxKeys int64) {
	lo := d.DominantBucket().Lo
	if lo < 1 {
		lo = 1
	}
	minKeys = capacity / int64(lo)
	maxKeys = int64(float64(capacity) / d.MinBucketMean())
	return minKeys, maxKeys
}
