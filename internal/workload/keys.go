// Package workload generates the key streams, value-size distributions,
// and operation mixes the paper evaluates with: sequential fills and
// uniform/Zipfian access (KVBench-style, §V-A), the request-size mixes of
// Table I (Baidu Atlas, Facebook Memcached ETC), and the FAST'20 RocksDB
// deployment profiles the motivation cites.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/hash"
)

// KeyGen produces a deterministic stream of key IDs.
type KeyGen interface {
	// NextID returns the next key identifier.
	NextID() uint64
	// Name labels the generator in reports.
	Name() string
}

// KeyBytes renders a key ID as the canonical 16-byte key the paper's
// microbenchmarks use ("Key Size = 16B", Fig. 6).
func KeyBytes(id uint64) []byte {
	return []byte(fmt.Sprintf("k%015x", id&0xffffffffffffff))
}

// KeyBytesSized renders a key ID at an arbitrary length >= 8: an 8-byte
// big-endian ID followed by deterministic filler (Fig. 8a's 16 B vs
// 128 B keys).
func KeyBytesSized(id uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	k := make([]byte, size)
	binary.BigEndian.PutUint64(k[:8], id)
	for i := 8; i < size; i++ {
		k[i] = byte(hash.Mix64(id+uint64(i)) >> 56)
	}
	return k
}

// Sequential counts upward from a start ID: the paper's "multiple
// sequential workloads" (§V-B).
type Sequential struct {
	next uint64
}

// NewSequential returns a sequential generator starting at start.
func NewSequential(start uint64) *Sequential { return &Sequential{next: start} }

// NextID implements KeyGen.
func (s *Sequential) NextID() uint64 {
	id := s.next
	s.next++
	return id
}

// Name implements KeyGen.
func (s *Sequential) Name() string { return "sequential" }

// Uniform samples key IDs uniformly from [0, n).
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform generator over n keys.
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		n = 1
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// NextID implements KeyGen.
func (u *Uniform) NextID() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Name implements KeyGen.
func (u *Uniform) Name() string { return "uniform" }

// Zipfian samples key IDs from [0, n) with YCSB-style Zipfian skew
// (theta < 1), scrambled so popular keys are spread across the ID space.
type Zipfian struct {
	n     uint64
	theta float64
	rng   *rand.Rand

	alpha, zetan, eta float64
	zeta2             float64
}

// NewZipfian returns a scrambled Zipfian generator over n keys with the
// given skew (0 < theta < 1; YCSB default 0.99).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact up to a cutoff, then the Euler–Maclaurin integral
	// approximation; avoids O(n) setup for hundred-million-key spaces.
	const cutoff = 1 << 20
	var sum float64
	limit := n
	if limit > cutoff {
		limit = cutoff
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > cutoff {
		a, b := float64(cutoff), float64(n)
		sum += (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
	}
	return sum
}

// NextID implements KeyGen (Gray et al.'s quick Zipfian algorithm, as in
// YCSB), followed by a hash scramble.
func (z *Zipfian) NextID() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	return hash.Mix64(rank) % z.n
}

// Name implements KeyGen.
func (z *Zipfian) Name() string { return fmt.Sprintf("zipfian(%.2f)", z.theta) }

// Rank returns the unscrambled rank for distribution testing.
func (z *Zipfian) Rank() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	switch {
	case uz < 1:
		return 0
	case uz < 1+math.Pow(0.5, z.theta):
		return 1
	default:
		rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
		return rank
	}
}
