package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies a generated request.
type OpKind int

// Request kinds.
const (
	OpStore OpKind = iota
	OpRetrieve
	OpDelete
	OpExist
	// OpIterate is a short prefix scan (YCSB-E): iterate the keys
	// sharing the first Op.ScanPrefix bytes of the request key.
	OpIterate
	// OpRMW is a read-modify-write (YCSB-F): retrieve the key, then
	// store a new value of Op.ValueSize under it.
	OpRMW
)

func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "store"
	case OpRetrieve:
		return "retrieve"
	case OpDelete:
		return "delete"
	case OpExist:
		return "exist"
	case OpIterate:
		return "iterate"
	case OpRMW:
		return "rmw"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated request.
type Op struct {
	Kind      OpKind
	KeyID     uint64
	KeySize   int
	ValueSize int
	// ScanPrefix is the key-prefix length an OpIterate scans over.
	ScanPrefix int
}

// Key renders the request key bytes.
func (o Op) Key() []byte {
	if o.KeySize > 0 && o.KeySize != 16 {
		return KeyBytesSized(o.KeyID, o.KeySize)
	}
	return KeyBytes(o.KeyID)
}

// Mix sets the operation ratio; fields sum to 1 (normalized otherwise).
type Mix struct {
	Store    float64
	Retrieve float64
	Delete   float64
	Exist    float64
}

// WriteOnly is a pure-ingest mix.
var WriteOnly = Mix{Store: 1}

// ReadOnly is a pure-lookup mix.
var ReadOnly = Mix{Retrieve: 1}

// ReadMostly is a KV-store-typical 95/5 read/write mix.
var ReadMostly = Mix{Retrieve: 0.95, Store: 0.05}

// Generator yields a request stream from a key generator, a value-size
// distribution, and an operation mix.
type Generator struct {
	Keys    KeyGen
	Sizes   SizeDist
	KeySize int
	mix     Mix
	rng     *rand.Rand
}

// NewGenerator builds a request generator. KeySize 0 means the canonical
// 16-byte keys.
func NewGenerator(keys KeyGen, sizes SizeDist, mix Mix, keySize int, seed int64) *Generator {
	total := mix.Store + mix.Retrieve + mix.Delete + mix.Exist
	if total <= 0 {
		mix = WriteOnly
		total = 1
	}
	mix.Store /= total
	mix.Retrieve /= total
	mix.Delete /= total
	mix.Exist /= total
	return &Generator{
		Keys:    keys,
		Sizes:   sizes,
		KeySize: keySize,
		mix:     mix,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Next yields the next request.
func (g *Generator) Next() Op {
	op := Op{KeyID: g.Keys.NextID(), KeySize: g.KeySize}
	u := g.rng.Float64()
	switch {
	case u < g.mix.Store:
		op.Kind = OpStore
		op.ValueSize = g.Sizes.Next()
	case u < g.mix.Store+g.mix.Retrieve:
		op.Kind = OpRetrieve
	case u < g.mix.Store+g.mix.Retrieve+g.mix.Delete:
		op.Kind = OpDelete
	default:
		op.Kind = OpExist
	}
	return op
}

// ValuePayload materializes a deterministic value of the given size for
// a key ID, so re-generation (for verification) matches the original.
func ValuePayload(keyID uint64, size int) []byte {
	v := make([]byte, size)
	state := keyID*0x9e3779b97f4a7c15 + 1
	for i := range v {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v[i] = byte(state)
	}
	return v
}
