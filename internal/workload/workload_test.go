package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyBytesCanonical16(t *testing.T) {
	k := KeyBytes(42)
	if len(k) != 16 {
		t.Fatalf("len = %d, want 16 (paper's key size)", len(k))
	}
	if string(KeyBytes(42)) != string(KeyBytes(42)) {
		t.Fatal("non-deterministic")
	}
	if string(KeyBytes(1)) == string(KeyBytes(2)) {
		t.Fatal("distinct ids collide")
	}
}

func TestKeyBytesSized(t *testing.T) {
	for _, n := range []int{8, 16, 128} {
		if got := len(KeyBytesSized(7, n)); got != n {
			t.Fatalf("size %d: got %d", n, got)
		}
	}
	if got := len(KeyBytesSized(7, 2)); got != 8 {
		t.Fatalf("undersized clamped to %d, want 8", got)
	}
	a := KeyBytesSized(1, 128)
	b := KeyBytesSized(2, 128)
	if string(a) == string(b) {
		t.Fatal("distinct ids collide at 128B")
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(5)
	for i := uint64(5); i < 10; i++ {
		if got := s.NextID(); got != i {
			t.Fatalf("NextID = %d, want %d", got, i)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(100, 1)
	for i := 0; i < 10000; i++ {
		if id := u.NextID(); id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(n, 0.99, 1)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.Rank()
		if r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate: YCSB theta=0.99 over 10k items gives the top
	// item roughly 10% of the mass.
	top := float64(counts[0]) / draws
	if top < 0.05 {
		t.Fatalf("top rank has %.3f of mass, want >= 0.05 (not skewed)", top)
	}
	// And the top-100 ranks should hold the majority.
	var top100 int
	for r := uint64(0); r < 100; r++ {
		top100 += counts[r]
	}
	if frac := float64(top100) / draws; frac < 0.5 {
		t.Fatalf("top-100 mass %.3f, want >= 0.5", frac)
	}
}

func TestZipfianScrambleSpreads(t *testing.T) {
	z := NewZipfian(1<<20, 0.99, 2)
	lowHalf := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if z.NextID() < 1<<19 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / draws
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("scrambled ids skewed to one half: %.3f", frac)
	}
}

func TestZipfianBadThetaDefaults(t *testing.T) {
	z := NewZipfian(10, 1.5, 1)
	if z.theta != 0.99 {
		t.Fatalf("theta = %v", z.theta)
	}
	if NewZipfian(0, 0.99, 1).n != 1 {
		t.Fatal("zero n not clamped")
	}
}

func TestZetaApproximationContinuous(t *testing.T) {
	// The integral tail approximation must be close to the exact sum just
	// above the cutoff.
	exact := zeta(1<<20, 0.99)
	above := zeta(1<<20+1000, 0.99)
	if above <= exact {
		t.Fatal("zeta not increasing")
	}
	if (above-exact)/exact > 0.01 {
		t.Fatal("zeta tail jump too large")
	}
}

func TestFixedDist(t *testing.T) {
	f := Fixed{Size: 4096}
	if f.Next() != 4096 || f.Mean() != 4096 {
		t.Fatal("fixed distribution broken")
	}
}

func TestDiscreteNormalizesAndSamplesInRange(t *testing.T) {
	d := NewDiscrete("x", []Bucket{{10, 20, 50}, {100, 200, 150}}, 1)
	var sum float64
	for _, b := range d.Buckets {
		sum += b.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	for i := 0; i < 10000; i++ {
		s := d.Next()
		if !((s >= 10 && s <= 20) || (s >= 100 && s <= 200)) {
			t.Fatalf("sample %d outside buckets", s)
		}
	}
}

func TestBaiduAtlasDominatedByLargeWrites(t *testing.T) {
	d := BaiduAtlasWrite(1)
	large := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if d.Next() >= 128<<10 {
			large++
		}
	}
	frac := float64(large) / draws
	if frac < 0.90 || frac > 0.97 {
		t.Fatalf("128-256KB fraction %.3f, want ~0.941 (Table I)", frac)
	}
}

func TestFacebookETCSmallValues(t *testing.T) {
	d := FacebookETC(1)
	small := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if d.Next() <= 1024 {
			small++
		}
	}
	if frac := float64(small) / draws; frac < 0.90 {
		t.Fatalf("sub-1KB fraction %.3f, want ~0.95 (Table I)", frac)
	}
}

func TestTableIKeyCountRanges(t *testing.T) {
	// The paper derives 34 M–2.7 B keys for Baidu Atlas and
	// 24 B–744 B keys for FB ETC on a 4 TB device; our bucket means must
	// land in those decades.
	const cap4TB = 4 << 40
	minK, maxK := KeyCountRange(cap4TB, BaiduAtlasWrite(1))
	if minK < 15e6 || minK > 60e6 {
		t.Fatalf("Baidu min keys %d, want ~34M", minK)
	}
	if maxK < 1e9 || maxK > 5e9 {
		t.Fatalf("Baidu max keys %d, want ~2.7B", maxK)
	}
	minK, maxK = KeyCountRange(cap4TB, FacebookETC(1))
	if minK < 10e9 || minK > 100e9 {
		t.Fatalf("ETC min keys %d, want ~24B (same decade)", minK)
	}
	if maxK < 300e9 || maxK > 1100e9 {
		t.Fatalf("ETC max keys %d, want ~744B", maxK)
	}
}

func TestRocksDBProfiles(t *testing.T) {
	for name, wantMean := range map[string]float64{
		"UDB":     153,
		"ZippyDB": 90,
		"UP2X":    57,
	} {
		d, err := RocksDBProfile(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m := d.Mean(); math.Abs(m-wantMean)/wantMean > 0.35 {
			t.Errorf("%s mean %.0f, want ~%.0f", name, m, wantMean)
		}
	}
	if _, err := RocksDBProfile("nope", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestGeneratorMixRatios(t *testing.T) {
	g := NewGenerator(NewSequential(0), Fixed{Size: 100}, Mix{Retrieve: 0.95, Store: 0.05}, 0, 1)
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if frac := float64(counts[OpRetrieve]) / n; math.Abs(frac-0.95) > 0.02 {
		t.Fatalf("retrieve fraction %.3f", frac)
	}
	if counts[OpDelete] != 0 || counts[OpExist] != 0 {
		t.Fatal("unexpected op kinds")
	}
}

func TestGeneratorZeroMixDefaultsToWrites(t *testing.T) {
	g := NewGenerator(NewSequential(0), Fixed{Size: 10}, Mix{}, 0, 1)
	for i := 0; i < 100; i++ {
		if op := g.Next(); op.Kind != OpStore || op.ValueSize != 10 {
			t.Fatalf("op = %+v", op)
		}
	}
}

func TestOpKeyRespectsKeySize(t *testing.T) {
	g := NewGenerator(NewSequential(0), Fixed{Size: 10}, WriteOnly, 128, 1)
	if op := g.Next(); len(op.Key()) != 128 {
		t.Fatalf("key len %d", len(op.Key()))
	}
	g16 := NewGenerator(NewSequential(0), Fixed{Size: 10}, WriteOnly, 0, 1)
	if op := g16.Next(); len(op.Key()) != 16 {
		t.Fatalf("default key len %d", len(op.Key()))
	}
}

func TestValuePayloadDeterministic(t *testing.T) {
	f := func(id uint64, size uint16) bool {
		n := int(size) % 2048
		a := ValuePayload(id, n)
		b := ValuePayload(id, n)
		return len(a) == n && string(a) == string(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if string(ValuePayload(1, 64)) == string(ValuePayload(2, 64)) {
		t.Fatal("different keys same payload")
	}
}

func TestOpKindString(t *testing.T) {
	if OpStore.String() != "store" || OpKind(99).String() == "" {
		t.Fatal("OpKind.String broken")
	}
}
