package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// This file implements the YCSB core workload suite (A–F) on top of the
// package's key and size generators. The mixes follow the canonical
// core-workload definitions (Cooper et al., SoCC'10):
//
//	A  update-heavy   50% read / 50% update            zipfian
//	B  read-mostly    95% read /  5% update            zipfian
//	C  read-only     100% read                         zipfian
//	D  read-latest    95% read /  5% insert            latest
//	E  short-scans    95% scan /  5% insert            zipfian
//	F  read-mod-write 50% read / 50% read-modify-write zipfian
//
// Scans map onto the device's prefix iterator: the canonical hex-rendered
// keys are hierarchical, so the first ScanPrefixLen bytes of a key name a
// group of adjacent key IDs and Iterate(key[:ScanPrefixLen]) is a short
// range scan over that group.

// YCSBMix is the op-probability vector of one YCSB core workload.
// Fields sum to 1 (normalized by NewYCSB otherwise).
type YCSBMix struct {
	Read   float64 // point read of an existing key
	Update float64 // overwrite of an existing key
	Insert float64 // write of a never-before-seen key
	Scan   float64 // short prefix scan starting at an existing key
	RMW    float64 // read-modify-write of an existing key
}

// YCSBSpec names one YCSB core workload.
type YCSBSpec struct {
	// Name is the workload label ("ycsb-a" … "ycsb-f").
	Name string
	// Mix is the op-probability vector.
	Mix YCSBMix
	// KeyDist selects key popularity: "zipfian", "latest", or "uniform".
	KeyDist string
	// Theta is the Zipfian/latest skew (YCSB default 0.99).
	Theta float64
}

// YCSBWorkloads lists the six core workloads in suite order.
func YCSBWorkloads() []YCSBSpec {
	return []YCSBSpec{
		{Name: "ycsb-a", Mix: YCSBMix{Read: 0.5, Update: 0.5}, KeyDist: "zipfian", Theta: 0.99},
		{Name: "ycsb-b", Mix: YCSBMix{Read: 0.95, Update: 0.05}, KeyDist: "zipfian", Theta: 0.99},
		{Name: "ycsb-c", Mix: YCSBMix{Read: 1}, KeyDist: "zipfian", Theta: 0.99},
		{Name: "ycsb-d", Mix: YCSBMix{Read: 0.95, Insert: 0.05}, KeyDist: "latest", Theta: 0.99},
		{Name: "ycsb-e", Mix: YCSBMix{Scan: 0.95, Insert: 0.05}, KeyDist: "zipfian", Theta: 0.99},
		{Name: "ycsb-f", Mix: YCSBMix{Read: 0.5, RMW: 0.5}, KeyDist: "zipfian", Theta: 0.99},
	}
}

// YCSBWorkload returns the spec with the given name ("ycsb-a" or "a").
func YCSBWorkload(name string) (YCSBSpec, error) {
	n := strings.ToLower(name)
	if !strings.HasPrefix(n, "ycsb-") {
		n = "ycsb-" + n
	}
	for _, s := range YCSBWorkloads() {
		if s.Name == n {
			return s, nil
		}
	}
	return YCSBSpec{}, fmt.Errorf("workload: unknown YCSB workload %q", name)
}

// DefaultScanPrefixLen groups keys by their first 14 bytes: the canonical
// 16-byte keys are hex-rendered, so a 14-byte prefix spans the 256
// adjacent key IDs sharing all but the last two hex digits — a short
// scan in YCSB-E's sense.
const DefaultScanPrefixLen = 14

// YCSB generates one core workload's request stream over a key space
// preloaded with Records sequential keys [0, Records). Inserts extend the
// space upward; reads, updates, scans, and RMWs address only keys already
// written, so the stream never touches an unwritten key ID. The stream is
// deterministic for a fixed (spec, records, sizes, seed) tuple.
type YCSB struct {
	Spec  YCSBSpec
	Sizes SizeDist
	// ScanPrefixLen is the key-prefix length scans iterate over
	// (DefaultScanPrefixLen when zero at construction).
	ScanPrefixLen int

	rng      *rand.Rand
	inserted uint64 // key IDs [0, inserted) have been written
	zip      *Zipfian
	latest   *Latest
}

// NewYCSB builds a generator for spec over records preloaded keys. The
// mix is normalized; sizes supplies update/insert value sizes.
func NewYCSB(spec YCSBSpec, records uint64, sizes SizeDist, seed int64) (*YCSB, error) {
	if records == 0 {
		return nil, fmt.Errorf("workload: YCSB needs a preloaded key space")
	}
	total := spec.Mix.Read + spec.Mix.Update + spec.Mix.Insert + spec.Mix.Scan + spec.Mix.RMW
	if total <= 0 {
		return nil, fmt.Errorf("workload: YCSB mix for %q is empty", spec.Name)
	}
	spec.Mix.Read /= total
	spec.Mix.Update /= total
	spec.Mix.Insert /= total
	spec.Mix.Scan /= total
	spec.Mix.RMW /= total
	g := &YCSB{
		Spec:          spec,
		Sizes:         sizes,
		ScanPrefixLen: DefaultScanPrefixLen,
		rng:           rand.New(rand.NewSource(seed)),
		inserted:      records,
	}
	switch spec.KeyDist {
	case "zipfian":
		g.zip = NewZipfian(records, spec.Theta, seed+1)
	case "latest":
		g.latest = NewLatest(records, spec.Theta, seed+1)
	case "uniform":
		// handled inline from g.rng
	default:
		return nil, fmt.Errorf("workload: unknown YCSB key distribution %q", spec.KeyDist)
	}
	return g, nil
}

// Inserted reports how many key IDs have been written so far (preload
// plus inserts): IDs [0, Inserted) are valid read targets.
func (g *YCSB) Inserted() uint64 { return g.inserted }

// pick selects an already-written key ID under the spec's distribution.
func (g *YCSB) pick() uint64 {
	switch {
	case g.latest != nil:
		g.latest.Extend(g.inserted)
		return g.latest.NextID()
	case g.zip != nil:
		// Zipfian addresses the preloaded space; inserted keys are read
		// through the latest distribution (workload D) instead.
		return g.zip.NextID()
	default:
		return uint64(g.rng.Int63n(int64(g.inserted)))
	}
}

// Next yields the next request. Insert ops return the new key's ID and
// advance the written window.
func (g *YCSB) Next() Op {
	m := g.Spec.Mix
	u := g.rng.Float64()
	switch {
	case u < m.Read:
		return Op{Kind: OpRetrieve, KeyID: g.pick()}
	case u < m.Read+m.Update:
		return Op{Kind: OpStore, KeyID: g.pick(), ValueSize: g.Sizes.Next()}
	case u < m.Read+m.Update+m.Insert:
		id := g.inserted
		g.inserted++
		return Op{Kind: OpStore, KeyID: id, ValueSize: g.Sizes.Next()}
	case u < m.Read+m.Update+m.Insert+m.Scan:
		return Op{Kind: OpIterate, KeyID: g.pick(), ScanPrefix: g.ScanPrefixLen}
	default:
		return Op{Kind: OpRMW, KeyID: g.pick(), ValueSize: g.Sizes.Next()}
	}
}

// Latest samples key IDs biased toward the most recently inserted keys:
// YCSB's "latest" distribution. The rank r is Zipfian-distributed over
// the current insert window [0, n) and the returned ID is n-1-r, so rank
// 0 — the most popular — is always the newest written key and the
// generator can never emit an ID outside [0, n).
type Latest struct {
	theta float64
	rng   *rand.Rand

	n            uint64
	zetan, zeta2 float64
	alpha, eta   float64
}

// NewLatest returns a latest-biased generator over an initial window of
// n written keys with the given skew (0 < theta < 1; default 0.99).
func NewLatest(n uint64, theta float64, seed int64) *Latest {
	if n == 0 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	l := &Latest{theta: theta, rng: rand.New(rand.NewSource(seed))}
	l.zeta2 = zeta(2, theta)
	l.n = n
	l.zetan = zetaExact(n, theta)
	l.recompute()
	return l
}

// zetaExact is the exact harmonic sum (no integral cutoff): Extend grows
// it incrementally, which only works from an exact base.
func zetaExact(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (l *Latest) recompute() {
	l.alpha = 1 / (1 - l.theta)
	l.eta = (1 - math.Pow(2/float64(l.n), 1-l.theta)) / (1 - l.zeta2/l.zetan)
}

// Extend grows the insert window to n written keys, incrementally
// updating the harmonic sum — O(inserts since the last call), so a
// workload with a few percent inserts amortizes to O(1) per op.
func (l *Latest) Extend(n uint64) {
	if n <= l.n {
		return
	}
	for i := l.n + 1; i <= n; i++ {
		l.zetan += 1 / math.Pow(float64(i), l.theta)
	}
	l.n = n
	l.recompute()
}

// NextID implements KeyGen: an ID in [0, n), biased toward n-1.
func (l *Latest) NextID() uint64 {
	u := l.rng.Float64()
	uz := u * l.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, l.theta):
		rank = 1
	default:
		rank = uint64(float64(l.n) * math.Pow(l.eta*u-l.eta+1, l.alpha))
		if rank >= l.n {
			rank = l.n - 1
		}
	}
	return l.n - 1 - rank
}

// Window reports the current written-key window size.
func (l *Latest) Window() uint64 { return l.n }

// Name implements KeyGen.
func (l *Latest) Name() string { return fmt.Sprintf("latest(%.2f)", l.theta) }
