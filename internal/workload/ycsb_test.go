package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// TestZipfianRankFrequency differentially tests the quick-Zipfian
// sampler against the closed-form rank-frequency law: the empirical
// frequency of rank r must track 1/(r+1)^theta / zeta(n, theta).
func TestZipfianRankFrequency(t *testing.T) {
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		theta := theta
		t.Run(fmt.Sprintf("theta=%.2f", theta), func(t *testing.T) {
			const n, samples = 1000, 400_000
			z := NewZipfian(n, theta, 7)
			counts := make([]int, n)
			for i := 0; i < samples; i++ {
				counts[z.Rank()]++
			}
			zn := zeta(n, theta)
			// The head carries the mass; check the first ranks tightly and
			// a mid-tail rank loosely.
			for _, r := range []uint64{0, 1, 2, 5, 10, 50} {
				want := 1 / (math.Pow(float64(r+1), theta) * zn)
				got := float64(counts[r]) / samples
				tol := 0.15 * want
				if r >= 2 {
					// Gray's quick algorithm special-cases ranks 0-1 and
					// its continuous approximation over-weights the first
					// ranks after them; YCSB's sampler shares this bias.
					tol = 0.25 * want
				}
				if want*samples < 500 {
					tol = 0.5 * want // few expected samples: loosen
				}
				if math.Abs(got-want) > tol {
					t.Errorf("rank %d: frequency %.5f, want %.5f ± %.5f", r, got, want, tol)
				}
			}
			// Monotonicity of the head: rank 0 strictly most popular.
			if counts[0] <= counts[5] {
				t.Errorf("rank 0 count %d not above rank 5 count %d", counts[0], counts[5])
			}
		})
	}
}

// TestLatestNeverUnwritten drives the latest-biased generator through a
// growing insert window and checks it never emits an unwritten key ID,
// while still strongly favoring the newest keys.
func TestLatestNeverUnwritten(t *testing.T) {
	l := NewLatest(100, 0.99, 11)
	window := uint64(100)
	recent := 0
	const samples = 200_000
	for i := 0; i < samples; i++ {
		if i%100 == 99 { // grow the window as workload D's inserts would
			window += 3
			l.Extend(window)
			if l.Window() != window {
				t.Fatalf("Window() = %d, want %d", l.Window(), window)
			}
		}
		id := l.NextID()
		if id >= window {
			t.Fatalf("sample %d: id %d outside written window [0,%d)", i, id, window)
		}
		if id >= window-10 {
			recent++
		}
	}
	// At theta 0.99 the newest 10 keys of a ~6100-key window should
	// absorb a large share of the traffic (rank-frequency head).
	if frac := float64(recent) / samples; frac < 0.3 {
		t.Errorf("newest-10 share %.3f, want > 0.3 (latest bias missing)", frac)
	}
}

// TestLatestExtendIncremental checks the incremental harmonic update
// matches the exact recomputation it amortizes.
func TestLatestExtendIncremental(t *testing.T) {
	l := NewLatest(50, 0.8, 1)
	for _, n := range []uint64{51, 60, 113, 500} {
		l.Extend(n)
		want := zetaExact(n, 0.8)
		if math.Abs(l.zetan-want) > 1e-9 {
			t.Fatalf("Extend(%d): zetan %.12f, want %.12f", n, l.zetan, want)
		}
	}
	// Extending backward is a no-op.
	before := l.zetan
	l.Extend(10)
	if l.zetan != before || l.Window() != 500 {
		t.Fatalf("backward Extend mutated state")
	}
}

// opStreamHash fingerprints a generated op stream, including every field
// that reaches an engine.
func opStreamHash(g *YCSB, ops int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := 0; i < ops; i++ {
		op := g.Next()
		put(uint64(op.Kind))
		put(op.KeyID)
		put(uint64(op.ValueSize))
		put(uint64(op.ScanPrefix))
	}
	return h.Sum64()
}

// TestYCSBDeterminism: same (spec, records, sizes, seed) tuple, same
// byte-for-byte op stream; different seed, different stream.
func TestYCSBDeterminism(t *testing.T) {
	for _, spec := range YCSBWorkloads() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mk := func(seed int64) *YCSB {
				g, err := NewYCSB(spec, 5000, NewZipfSizes(64, 1024, 0.9, seed+99), seed)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
			a, b := opStreamHash(mk(42), 20_000), opStreamHash(mk(42), 20_000)
			if a != b {
				t.Fatalf("same seed diverged: %x vs %x", a, b)
			}
			if c := opStreamHash(mk(43), 20_000); c == a {
				t.Fatalf("different seed produced identical stream %x", a)
			}
		})
	}
}

// TestYCSBMixAndTargets is the table-driven mix test: every core
// workload's empirical op mix must match its spec, inserts must extend
// the key window, and no op may target an unwritten key ID.
func TestYCSBMixAndTargets(t *testing.T) {
	const records, ops = 10_000, 100_000
	for _, spec := range YCSBWorkloads() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := NewYCSB(spec, records, Fixed{Size: 100}, 3)
			if err != nil {
				t.Fatal(err)
			}
			counts := map[OpKind]int{}
			written := uint64(records)
			for i := 0; i < ops; i++ {
				op := g.Next()
				counts[op.Kind]++
				isInsert := op.Kind == OpStore && op.KeyID == written
				if isInsert {
					written++
					continue
				}
				if op.KeyID >= written {
					t.Fatalf("op %d (%v) targets unwritten key %d (written %d)", i, op.Kind, op.KeyID, written)
				}
				switch op.Kind {
				case OpStore, OpRMW:
					if op.ValueSize != 100 {
						t.Fatalf("op %d: value size %d, want 100", i, op.ValueSize)
					}
				case OpIterate:
					if op.ScanPrefix != DefaultScanPrefixLen {
						t.Fatalf("op %d: scan prefix %d, want %d", i, op.ScanPrefix, DefaultScanPrefixLen)
					}
				}
			}
			if written != g.Inserted() {
				t.Fatalf("tracked %d written keys, generator says %d", written, g.Inserted())
			}
			inserts := int(written) - records
			check := func(kind string, got int, want float64) {
				frac := float64(got) / ops
				if math.Abs(frac-want) > 0.01 {
					t.Errorf("%s fraction %.4f, want %.2f ± 0.01", kind, frac, want)
				}
			}
			check("read", counts[OpRetrieve], spec.Mix.Read)
			check("update+insert", counts[OpStore], spec.Mix.Update+spec.Mix.Insert)
			check("insert", inserts, spec.Mix.Insert)
			check("scan", counts[OpIterate], spec.Mix.Scan)
			check("rmw", counts[OpRMW], spec.Mix.RMW)
		})
	}
}

// TestYCSBWorkloadLookup covers name normalization and rejection.
func TestYCSBWorkloadLookup(t *testing.T) {
	for _, name := range []string{"a", "ycsb-a", "YCSB-A"} {
		spec, err := YCSBWorkload(name)
		if err != nil || spec.Name != "ycsb-a" {
			t.Fatalf("YCSBWorkload(%q) = %v, %v", name, spec.Name, err)
		}
	}
	if _, err := YCSBWorkload("g"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewYCSB(YCSBSpec{Name: "x", Mix: YCSBMix{Read: 1}, KeyDist: "bogus", Theta: 0.9}, 10, Fixed{Size: 1}, 1); err == nil {
		t.Fatal("unknown key distribution accepted")
	}
	if _, err := NewYCSB(YCSBSpec{Name: "x", KeyDist: "uniform"}, 10, Fixed{Size: 1}, 1); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := NewYCSB(YCSBSpec{Name: "x", Mix: YCSBMix{Read: 1}, KeyDist: "uniform"}, 0, Fixed{Size: 1}, 1); err == nil {
		t.Fatal("zero-record key space accepted")
	}
}

// TestLoadShapes pins the shapes' boundary behavior.
func TestLoadShapes(t *testing.T) {
	cases := []struct {
		shape LoadShape
		x     float64
		want  float64
	}{
		{Steady{}, 0, 1},
		{Steady{}, 0.7, 1},
		{Diurnal{}, 0, 0.2}, // trough at start
		{Diurnal{}, 0.5, 1}, // peak mid-run
		{Diurnal{}, 1, 0.2}, // trough at end
		{Diurnal{Trough: 0.5}, 0, 0.5},
		{FlashCrowd{}, 0, 0.25},   // base before burst
		{FlashCrowd{}, 0.5, 1},    // burst center
		{FlashCrowd{}, 0.55, 1},   // inside burst window
		{FlashCrowd{}, 0.9, 0.25}, // base after burst
	}
	for _, c := range cases {
		if got := c.shape.RelRate(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s.RelRate(%.2f) = %.3f, want %.3f", c.shape.Name(), c.x, got, c.want)
		}
	}
	// Every shape stays in (0,1] across the whole run, including
	// out-of-range inputs (clamped).
	for _, s := range []LoadShape{Steady{}, Diurnal{}, FlashCrowd{}} {
		for x := -0.5; x <= 1.5; x += 0.01 {
			if r := s.RelRate(x); r <= 0 || r > 1 {
				t.Fatalf("%s.RelRate(%.2f) = %.3f outside (0,1]", s.Name(), x, r)
			}
		}
	}
	for _, name := range []string{"steady", "", "diurnal", "flash", "flash-crowd"} {
		if _, err := ParseShape(name); err != nil {
			t.Errorf("ParseShape(%q): %v", name, err)
		}
	}
	if _, err := ParseShape("square-wave"); err == nil {
		t.Error("unknown shape accepted")
	}
}

// TestZipfSizes checks bounds, determinism, skew, and the analytic mean.
func TestZipfSizes(t *testing.T) {
	const min, max, theta = 64, 4096, 0.9
	s := NewZipfSizes(min, max, theta, 5)
	s2 := NewZipfSizes(min, max, theta, 5)
	const samples = 200_000
	var sum float64
	small := 0
	for i := 0; i < samples; i++ {
		v := s.Next()
		if v2 := s2.Next(); v2 != v {
			t.Fatalf("sample %d: same seed diverged (%d vs %d)", i, v, v2)
		}
		if v < min || v > max {
			t.Fatalf("sample %d: size %d outside [%d,%d]", i, v, min, max)
		}
		sum += float64(v)
		if v < min+64 {
			small++
		}
	}
	mean := sum / samples
	if math.Abs(mean-s.Mean())/s.Mean() > 0.05 {
		t.Errorf("empirical mean %.1f vs analytic %.1f", mean, s.Mean())
	}
	// Skew: the smallest 64 sizes (1.6% of the range) must absorb far
	// more than their uniform share of the samples.
	if frac := float64(small) / samples; frac < 0.35 {
		t.Errorf("small-value share %.3f, want > 0.35 (skew missing)", frac)
	}
	if mid := float64(min+max) / 2; mean > mid/2 {
		t.Errorf("mean %.1f not well below midpoint %.1f", mean, mid)
	}
}
