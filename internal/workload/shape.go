package workload

import (
	"fmt"
	"math"
	"strings"
)

// LoadShape modulates offered load over the course of a run: real
// services see diurnal swings and flash crowds, not the constant rate a
// closed loop offers. A shape maps run progress x ∈ [0,1) to a relative
// rate in (0,1]; drivers divide their pacing interval by it, so rate 1
// is the configured peak and smaller values throttle toward it.
type LoadShape interface {
	// RelRate reports the rate multiplier at progress x (clamped to
	// [0,1]). Implementations return values in (0,1].
	RelRate(x float64) float64
	// Name labels the shape in reports.
	Name() string
}

// Steady is the constant-rate shape (the default).
type Steady struct{}

// RelRate implements LoadShape.
func (Steady) RelRate(float64) float64 { return 1 }

// Name implements LoadShape.
func (Steady) Name() string { return "steady" }

// Diurnal ramps sinusoidally from Trough at the start of the run up to
// the full rate mid-run and back — one day compressed into one run.
type Diurnal struct {
	// Trough is the off-peak rate fraction in (0,1] (default 0.2).
	Trough float64
}

// RelRate implements LoadShape.
func (d Diurnal) RelRate(x float64) float64 {
	t := d.Trough
	if t <= 0 || t > 1 {
		t = 0.2
	}
	x = clamp01(x)
	return t + (1-t)*0.5*(1-math.Cos(2*math.Pi*x))
}

// Name implements LoadShape.
func (d Diurnal) Name() string { return "diurnal" }

// FlashCrowd holds a Base rate, then spikes to the full rate for a burst
// window centered at At — a hot item going viral.
type FlashCrowd struct {
	// Base is the pre/post-burst rate fraction in (0,1] (default 0.25).
	Base float64
	// At is the burst center as run progress (default 0.5).
	At float64
	// Width is the burst duration as a progress fraction (default 0.2).
	Width float64
}

func (f FlashCrowd) params() (base, at, width float64) {
	base, at, width = f.Base, f.At, f.Width
	if base <= 0 || base > 1 {
		base = 0.25
	}
	if at <= 0 || at >= 1 {
		at = 0.5
	}
	if width <= 0 || width >= 1 {
		width = 0.2
	}
	return base, at, width
}

// RelRate implements LoadShape.
func (f FlashCrowd) RelRate(x float64) float64 {
	base, at, width := f.params()
	x = clamp01(x)
	if math.Abs(x-at) <= width/2 {
		return 1
	}
	return base
}

// Name implements LoadShape.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// ParseShape resolves a shape by name: "steady", "diurnal", "flash"
// (or "flash-crowd"), using each shape's defaults.
func ParseShape(name string) (LoadShape, error) {
	switch strings.ToLower(name) {
	case "", "steady":
		return Steady{}, nil
	case "diurnal":
		return Diurnal{}, nil
	case "flash", "flash-crowd", "flashcrowd":
		return FlashCrowd{}, nil
	default:
		return nil, fmt.Errorf("workload: unknown load shape %q", name)
	}
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
