package hopscotch

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	tb := New(64, 32)
	if _, err := tb.Put(42, 1000); err != nil {
		t.Fatal(err)
	}
	ppa, ok := tb.Get(42)
	if !ok || ppa != 1000 {
		t.Fatalf("Get = (%d,%v), want (1000,true)", ppa, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	ppa, ok = tb.Delete(42)
	if !ok || ppa != 1000 {
		t.Fatalf("Delete = (%d,%v)", ppa, ok)
	}
	if _, ok := tb.Get(42); ok {
		t.Fatal("Get found deleted record")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	tb := New(16, 8)
	if rep, _ := tb.Put(7, 100); rep {
		t.Fatal("first Put reported replace")
	}
	rep, err := tb.Put(7, 200)
	if err != nil || !rep {
		t.Fatalf("update = (%v,%v)", rep, err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after update = %d", tb.Len())
	}
	if ppa, _ := tb.Get(7); ppa != 200 {
		t.Fatalf("Get after update = %d", ppa)
	}
}

func TestGetMissing(t *testing.T) {
	tb := New(8, 4)
	if _, ok := tb.Get(99); ok {
		t.Fatal("Get on empty table returned ok")
	}
	if _, ok := tb.Delete(99); ok {
		t.Fatal("Delete on empty table returned ok")
	}
}

func TestFillToCapacitySmallTable(t *testing.T) {
	// With hop range == capacity, every slot is reachable, so the table
	// must accept exactly Cap records.
	tb := New(32, 32)
	inserted := 0
	for sig := uint64(1); inserted < 32; sig++ {
		if _, err := tb.Put(sig, sig); err != nil {
			t.Fatalf("Put(%d) failed at %d/32: %v", sig, inserted, err)
		}
		inserted++
	}
	if tb.Occupancy() != 1.0 {
		t.Fatalf("Occupancy = %v", tb.Occupancy())
	}
	if _, err := tb.Put(1<<40, 1); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("Put on full table = %v, want ErrNoSlot", err)
	}
}

func TestDisplacementPreservesRecords(t *testing.T) {
	// Dense fill of a paper-sized table (R=1927, H=32): hopscotch must
	// displace aggressively yet every inserted record stays retrievable.
	tb := New(1927, 32)
	rng := rand.New(rand.NewSource(7))
	stored := make(map[uint64]uint64)
	for len(stored) < 1600 { // ~83% occupancy
		sig := rng.Uint64()
		ppa := uint64(rng.Int63n(1 << 39))
		if _, err := tb.Put(sig, ppa); err != nil {
			continue // collision aborts allowed; don't record
		}
		stored[sig] = ppa
	}
	for sig, want := range stored {
		got, ok := tb.Get(sig)
		if !ok || got != want {
			t.Fatalf("Get(%#x) = (%d,%v), want (%d,true)", sig, got, ok, want)
		}
	}
}

func TestOracleProperty(t *testing.T) {
	// Random op sequence against a map oracle.
	type op struct {
		Kind byte
		Sig  uint16 // narrow keyspace to force collisions/updates
		PPA  uint32
	}
	f := func(ops []op) bool {
		tb := New(97, 16) // prime capacity exercises wraparound
		oracle := make(map[uint64]uint64)
		for _, o := range ops {
			sig := uint64(o.Sig)
			switch o.Kind % 3 {
			case 0:
				ppa := uint64(o.PPA) % (1 << 40)
				if _, err := tb.Put(sig, ppa); err == nil {
					oracle[sig] = ppa
				} else if _, exists := oracle[sig]; exists {
					return false // update of existing key must not fail
				}
			case 1:
				got, ok := tb.Get(sig)
				want, exists := oracle[sig]
				if ok != exists || (ok && got != want) {
					return false
				}
			case 2:
				got, ok := tb.Delete(sig)
				want, exists := oracle[sig]
				if ok != exists || (ok && got != want) {
					return false
				}
				delete(oracle, sig)
			}
		}
		if tb.Len() != len(oracle) {
			return false
		}
		for sig, want := range oracle {
			if got, ok := tb.Get(sig); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tb := New(128, 32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tb.Put(rng.Uint64(), uint64(rng.Int63n(1<<39)))
	}
	buf := make([]byte, EncodedSize(tb.Cap()))
	tb.EncodeTo(buf)

	tb2 := New(128, 32)
	if err := tb2.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != tb.Len() {
		t.Fatalf("decoded Len = %d, want %d", tb2.Len(), tb.Len())
	}
	tb.Range(func(sig, ppa uint64) bool {
		got, ok := tb2.Get(sig)
		if !ok || got != ppa {
			t.Fatalf("decoded Get(%#x) = (%d,%v), want (%d,true)", sig, got, ok, ppa)
		}
		return true
	})
	// Decoded table must still accept inserts and deletes correctly.
	tb.Range(func(sig, ppa uint64) bool {
		if _, ok := tb2.Delete(sig); !ok {
			t.Fatalf("decoded Delete(%#x) failed", sig)
		}
		return true
	})
	if tb2.Len() != 0 {
		t.Fatalf("decoded table not empty after deletes: %d", tb2.Len())
	}
}

func TestEncodeDecodePropertyRoundTrip(t *testing.T) {
	f := func(sigs []uint64) bool {
		tb := New(61, 16)
		oracle := make(map[uint64]uint64)
		for i, s := range sigs {
			if _, err := tb.Put(s, uint64(i)); err == nil {
				oracle[s] = uint64(i)
			}
		}
		buf := make([]byte, EncodedSize(61))
		tb.EncodeTo(buf)
		tb2 := New(61, 16)
		if err := tb2.DecodeFrom(buf); err != nil {
			return false
		}
		if tb2.Len() != len(oracle) {
			return false
		}
		for s, want := range oracle {
			if got, ok := tb2.Get(s); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	tb := New(16, 8)
	if err := tb.DecodeFrom(make([]byte, 10)); err == nil {
		t.Fatal("DecodeFrom accepted short buffer")
	}
}

func TestEncodeShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeTo did not panic on short buffer")
		}
	}()
	New(16, 8).EncodeTo(make([]byte, 10))
}

func TestZeroSignatureIsStorable(t *testing.T) {
	// Signature 0 is a legal hash output; emptiness is encoded via the PPA
	// sentinel, not the signature.
	tb := New(16, 8)
	if _, err := tb.Put(0, 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, EncodedSize(16))
	tb.EncodeTo(buf)
	tb2 := New(16, 8)
	tb2.DecodeFrom(buf)
	if ppa, ok := tb2.Get(0); !ok || ppa != 5 {
		t.Fatalf("sig 0 lost in round trip: (%d,%v)", ppa, ok)
	}
}

func TestHopRangeClamping(t *testing.T) {
	if h := New(8, 100).HopRange(); h != 8 {
		t.Fatalf("hop clamped to %d, want 8 (capacity)", h)
	}
	if h := New(100, 100).HopRange(); h != MaxHopRange {
		t.Fatalf("hop clamped to %d, want %d", h, MaxHopRange)
	}
	if h := New(8, 0).HopRange(); h != 1 {
		t.Fatalf("hop clamped to %d, want 1", h)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New(32, 8)
	for i := uint64(1); i <= 10; i++ {
		tb.Put(i, i)
	}
	seen := 0
	tb.Range(func(sig, ppa uint64) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("Range visited %d, want 3", seen)
	}
}

func TestReset(t *testing.T) {
	tb := New(32, 8)
	for i := uint64(1); i <= 10; i++ {
		tb.Put(i, i)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	if _, ok := tb.Get(5); ok {
		t.Fatal("Get found record after Reset")
	}
	if _, err := tb.Put(5, 5); err != nil {
		t.Fatalf("Put after Reset: %v", err)
	}
}

func TestCollisionAbortRateReasonable(t *testing.T) {
	// At 80% occupancy (the paper's default resize threshold) with H=32,
	// aborts should be rare (<1% of inserts), matching Fig. 8b's finding
	// that collision handling only degrades above 80%.
	tb := New(1927, 32)
	rng := rand.New(rand.NewSource(11))
	target := 1927 * 80 / 100
	aborts, tries := 0, 0
	for tb.Len() < target {
		tries++
		if _, err := tb.Put(rng.Uint64(), 1); err != nil {
			aborts++
		}
	}
	rate := float64(aborts) / float64(tries)
	if rate > 0.01 {
		t.Fatalf("abort rate %.4f at 80%% occupancy, want < 1%%", rate)
	}
}

func BenchmarkPut(b *testing.B) {
	tb := New(1927, 32)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.Len() > 1500 {
			tb.Reset()
		}
		tb.Put(rng.Uint64(), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tb := New(1927, 32)
	rng := rand.New(rand.NewSource(1))
	sigs := make([]uint64, 1500)
	for i := range sigs {
		sigs[i] = rng.Uint64()
		tb.Put(sigs[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(sigs[i%len(sigs)])
	}
}

func BenchmarkEncode(b *testing.B) {
	tb := New(1927, 32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		tb.Put(rng.Uint64(), uint64(i))
	}
	buf := make([]byte, EncodedSize(1927))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.EncodeTo(buf)
	}
}
