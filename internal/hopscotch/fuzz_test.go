package hopscotch

import (
	"testing"

	"repro/internal/hash"
)

// FuzzHopscotchTable differentially fuzzes a table against a
// map[uint64]uint64 model. The input bytes choose the geometry and an
// op stream; keys are drawn from a pool deliberately seeded with
// signatures sharing one home bucket (adversarial collisions that force
// hopscotch displacement chains), plus a spread of ordinary signatures.
// After the op stream the table is serialized and decoded into a fresh
// table, which must reproduce the model exactly.
func FuzzHopscotchTable(f *testing.F) {
	f.Add([]byte{8, 2, 0, 1, 0, 2, 0, 3, 1, 1, 2, 1})       // puts then gets/deletes
	f.Add([]byte{3, 1, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5}) // overfill a tiny table
	f.Add([]byte{31, 8, 0, 9, 0, 9, 2, 9, 1, 9})            // update + delete same key
	f.Add([]byte{60, 1})                                    // no ops, empty roundtrip
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := 1 + int(data[0])%61
		hopRange := 1 + int(data[1])%MaxHopRange
		tb := New(capacity, hopRange)
		model := map[uint64]uint64{}

		// Key pool: half adversarial (same home bucket), half spread.
		pool := make([]uint64, 0, 16)
		for s := uint64(1); len(pool) < 8 && s < 1<<20; s++ {
			if int(hash.Mix64(s)%uint64(capacity)) == 0 {
				pool = append(pool, s)
			}
		}
		for s := uint64(1 << 32); len(pool) < 16; s += 0x9e3779b9 {
			pool = append(pool, s)
		}

		ops := data[2:]
		for i := 0; i+1 < len(ops); i += 2 {
			sig := pool[int(ops[i+1])%len(pool)]
			ppa := uint64(i/2) + 1
			switch ops[i] % 3 {
			case 0: // put
				replaced, err := tb.Put(sig, ppa)
				_, has := model[sig]
				if err != nil {
					if has {
						t.Fatalf("op %d: update of present sig %#x failed: %v", i, sig, err)
					}
					break // full neighborhood: model unchanged
				}
				if replaced != has {
					t.Fatalf("op %d: Put replaced=%v, model has=%v", i, replaced, has)
				}
				model[sig] = ppa
			case 1: // get
				got, ok := tb.Get(sig)
				want, has := model[sig]
				if ok != has || (has && got != want) {
					t.Fatalf("op %d: Get(%#x) = (%d,%v), model (%d,%v)", i, sig, got, ok, want, has)
				}
			case 2: // delete
				got, ok := tb.Delete(sig)
				want, has := model[sig]
				if ok != has || (has && got != want) {
					t.Fatalf("op %d: Delete(%#x) = (%d,%v), model (%d,%v)", i, sig, got, ok, want, has)
				}
				delete(model, sig)
			}
			if tb.Len() != len(model) {
				t.Fatalf("op %d: Len=%d, model %d", i, tb.Len(), len(model))
			}
		}

		// Serialize → decode → everything must survive byte-exactly.
		buf := make([]byte, tb.EncodedBytes())
		tb.EncodeTo(buf)
		fresh := New(capacity, hopRange)
		if err := fresh.DecodeFrom(buf); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if fresh.Len() != len(model) {
			t.Fatalf("decoded Len=%d, model %d", fresh.Len(), len(model))
		}
		for sig, want := range model {
			if got, ok := fresh.Get(sig); !ok || got != want {
				t.Fatalf("decoded Get(%#x) = (%d,%v), want %d", sig, got, ok, want)
			}
		}
	})
}
