package hopscotch

import (
	"math/rand"
	"testing"
)

func TestWideDistinguishesHiHalves(t *testing.T) {
	tb := NewWide(64, 32)
	if !tb.Wide() {
		t.Fatal("NewWide not wide")
	}
	// Same low half, different high halves: two distinct records.
	if _, err := tb.PutWide(42, 1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PutWide(42, 2, 200); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if ppa, ok := tb.GetWide(42, 1); !ok || ppa != 100 {
		t.Fatalf("GetWide(42,1) = (%d,%v)", ppa, ok)
	}
	if ppa, ok := tb.GetWide(42, 2); !ok || ppa != 200 {
		t.Fatalf("GetWide(42,2) = (%d,%v)", ppa, ok)
	}
	if _, ok := tb.GetWide(42, 3); ok {
		t.Fatal("GetWide matched wrong hi half")
	}
	if _, ok := tb.DeleteWide(42, 1); !ok {
		t.Fatal("DeleteWide failed")
	}
	if _, ok := tb.GetWide(42, 1); ok {
		t.Fatal("record survived DeleteWide")
	}
	if ppa, ok := tb.GetWide(42, 2); !ok || ppa != 200 {
		t.Fatalf("sibling record lost: (%d,%v)", ppa, ok)
	}
}

func TestWideEncodeDecodeRoundTrip(t *testing.T) {
	tb := NewWide(97, 16)
	rng := rand.New(rand.NewSource(9))
	type rec struct{ lo, hi, ppa uint64 }
	var recs []rec
	for i := 0; i < 70; i++ {
		r := rec{rng.Uint64(), rng.Uint64(), uint64(rng.Int63n(1 << 39))}
		if _, err := tb.PutWide(r.lo, r.hi, r.ppa); err == nil {
			recs = append(recs, r)
		}
	}
	if tb.EncodedBytes() != EncodedSizeWide(97) {
		t.Fatalf("EncodedBytes = %d, want %d", tb.EncodedBytes(), EncodedSizeWide(97))
	}
	buf := make([]byte, tb.EncodedBytes())
	tb.EncodeTo(buf)

	tb2 := NewWide(97, 16)
	if err := tb2.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != len(recs) {
		t.Fatalf("decoded Len = %d, want %d", tb2.Len(), len(recs))
	}
	for _, r := range recs {
		if ppa, ok := tb2.GetWide(r.lo, r.hi); !ok || ppa != r.ppa {
			t.Fatalf("decoded GetWide(%#x,%#x) = (%d,%v), want %d", r.lo, r.hi, ppa, ok, r.ppa)
		}
	}
}

func TestWideRange(t *testing.T) {
	tb := NewWide(32, 16)
	tb.PutWide(1, 11, 100)
	tb.PutWide(2, 22, 200)
	seen := map[uint64]uint64{}
	tb.RangeWide(func(lo, hi, ppa uint64) bool {
		seen[lo] = hi
		return true
	})
	if seen[1] != 11 || seen[2] != 22 {
		t.Fatalf("RangeWide saw %v", seen)
	}
}

func TestNarrowRangeWideGivesZeroHi(t *testing.T) {
	tb := New(32, 16)
	tb.Put(5, 50)
	tb.RangeWide(func(lo, hi, ppa uint64) bool {
		if hi != 0 {
			t.Fatalf("narrow table hi = %d", hi)
		}
		return true
	})
}

func TestWideSlotSizes(t *testing.T) {
	if New(8, 4).SlotSizeOf() != SlotSize {
		t.Fatal("narrow slot size wrong")
	}
	if NewWide(8, 4).SlotSizeOf() != SlotSizeWide {
		t.Fatal("wide slot size wrong")
	}
}

func TestWideResetClearsHi(t *testing.T) {
	tb := NewWide(16, 8)
	tb.PutWide(1, 99, 10)
	tb.Reset()
	if _, ok := tb.GetWide(1, 99); ok {
		t.Fatal("record survived Reset")
	}
	// Insert again; hi must not leak from the old record.
	tb.PutWide(1, 0, 20)
	if _, ok := tb.GetWide(1, 99); ok {
		t.Fatal("stale hi half matched")
	}
}
