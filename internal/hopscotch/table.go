// Package hopscotch implements the fixed-capacity hopscotch hash table
// that RHIK uses for each record-layer index page (§IV-A1). A table holds
// exactly R records of the form {key signature, physical page address,
// hopinfo}; R is chosen so the serialized table fills one flash page
// (Eq. 1). Collisions are resolved by hopscotch displacement within a hop
// range of H slots (32 by default). When no slot can be freed within the
// hop range the insert fails with ErrNoSlot — the paper's "uncorrectable
// error" whose rate Fig. 8 studies.
package hopscotch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/hash"
)

// SlotSize is the serialized size of one record in the default 64-bit
// signature mode: an 8-byte key signature, a 5-byte physical page address,
// and a 4-byte hopinfo bitmap — the kh + ppa + hi of Eq. 1. Wide (128-bit
// signature) tables use SlotSizeWide.
const SlotSize = 8 + 5 + 4

// SlotSizeWide is the serialized slot size with 128-bit key signatures,
// the paper's proposed higher-resolution alternative (§IV-A3).
const SlotSizeWide = 16 + 5 + 4

// MaxHopRange is the widest supported hop range; the hopinfo bitmap is 32
// bits, one per slot in the neighborhood.
const MaxHopRange = 32

// emptyPPA marks an unoccupied slot on flash. Physical page addresses are
// 40-bit and the emulated devices stay far below 2^40-1 pages.
const emptyPPA = 1<<40 - 1

// ErrNoSlot is returned by Put when hopscotch displacement cannot free a
// slot within the hop range of the key's home bucket. The caller (RHIK)
// surfaces this as an index collision abort.
var ErrNoSlot = errors.New("hopscotch: no free slot within hop range")

// Table is a fixed-capacity hopscotch hash table mapping 64-bit key
// signatures to physical page addresses. Mutations are not safe for
// concurrent use — RHIK serializes them under the shard write lock —
// but the table carries a seqlock version counter so OPTIMISTIC readers
// may race mutators: a reader snapshots the version (SeqSnapshot),
// probes with GetOptimistic, and re-checks (SeqValidate); a mismatch
// means the read overlapped a write and must be retried or escalated.
// The counter is odd for the duration of every mutation and bumped to
// the next even value when it completes; Invalidate parks it odd
// permanently when the table leaves reader reachability (eviction,
// migration, pool recycling), so stale probes can never validate.
type Table struct {
	seq  atomic.Uint64
	sigs []uint64
	his  []uint64 // upper signature halves; nil in 64-bit mode
	ppas []uint64
	hops []uint32
	used []bool
	n    int
	hop  int
}

// beginWrite makes the sequence odd for the duration of a mutation.
// The formula lands on an odd value whether the current value is even
// (normal bracket) or already odd (mutating a poisoned table, e.g.
// Reset while pooled), so brackets compose with Invalidate.
func (t *Table) beginWrite() {
	v := t.seq.Load()
	t.seq.Store(v + 1 + (v & 1))
}

// endWrite publishes the mutation by moving the sequence to the next
// even value.
func (t *Table) endWrite() { t.seq.Add(1) }

// Invalidate permanently poisons the table's version counter (leaves it
// odd) so any in-flight optimistic read fails validation. Call it
// whenever the table leaves the reader-reachable directory: cache
// eviction, migration source teardown, resize teardown. The next full
// mutation bracket (Reset/DecodeFrom on pool reuse) revives the counter.
func (t *Table) Invalidate() { t.beginWrite() }

// SeqSnapshot returns the current version counter and whether the table
// is stable (no mutation in flight, not invalidated). Optimistic
// readers call it before probing; !ok means retry or escalate now.
func (t *Table) SeqSnapshot() (uint64, bool) {
	v := t.seq.Load()
	return v, v&1 == 0
}

// SeqValidate reports whether the version counter still equals the
// earlier snapshot v — i.e. no mutation started since. Readers call it
// after probing (and again after copying any dependent data out).
func (t *Table) SeqValidate(v uint64) bool { return t.seq.Load() == v }

// New returns an empty 64-bit-signature table with the given slot
// capacity and hop range. Hop ranges larger than MaxHopRange or the
// capacity are clamped.
func New(capacity, hopRange int) *Table {
	return newTable(capacity, hopRange, false)
}

// NewWide returns an empty table storing 128-bit key signatures. Its
// slots are larger (SlotSizeWide), so a page-sized table holds fewer
// records — the capacity/false-positive trade-off Eq. 1 exposes.
func NewWide(capacity, hopRange int) *Table {
	return newTable(capacity, hopRange, true)
}

func newTable(capacity, hopRange int, wide bool) *Table {
	if capacity < 1 {
		panic(fmt.Sprintf("hopscotch: capacity %d < 1", capacity))
	}
	if hopRange < 1 {
		hopRange = 1
	}
	if hopRange > MaxHopRange {
		hopRange = MaxHopRange
	}
	if hopRange > capacity {
		hopRange = capacity
	}
	t := &Table{
		sigs: make([]uint64, capacity),
		ppas: make([]uint64, capacity),
		hops: make([]uint32, capacity),
		used: make([]bool, capacity),
		hop:  hopRange,
	}
	if wide {
		t.his = make([]uint64, capacity)
	}
	return t
}

// Wide reports whether the table stores 128-bit signatures.
func (t *Table) Wide() bool { return t.his != nil }

// SlotSizeOf reports the serialized slot size of this table.
func (t *Table) SlotSizeOf() int {
	if t.Wide() {
		return SlotSizeWide
	}
	return SlotSize
}

// Len reports the number of stored records.
func (t *Table) Len() int { return t.n }

// Cap reports the slot capacity R.
func (t *Table) Cap() int { return len(t.sigs) }

// HopRange reports the hop range H.
func (t *Table) HopRange() int { return t.hop }

// Occupancy reports Len/Cap in [0,1].
func (t *Table) Occupancy() float64 { return float64(t.n) / float64(len(t.sigs)) }

func (t *Table) home(sig uint64) int {
	// The record layer's "fixed hash function": a full 64-bit remix so the
	// in-table position is independent of the directory's low-bit
	// selection of the table itself.
	return int(hash.Mix64(sig) % uint64(len(t.sigs)))
}

func (t *Table) dist(from, to int) int {
	d := to - from
	if d < 0 {
		d += len(t.sigs)
	}
	return d
}

func (t *Table) hiOf(slot int) uint64 {
	if t.his == nil {
		return 0
	}
	return t.his[slot]
}

func (t *Table) match(slot int, lo, hi uint64) bool {
	return t.used[slot] && t.sigs[slot] == lo && t.hiOf(slot) == hi
}

// Get returns the physical page address stored for sig.
func (t *Table) Get(sig uint64) (ppa uint64, ok bool) { return t.GetWide(sig, 0) }

// GetWide looks up a record by its full (lo, hi) signature. In 64-bit
// tables hi must be 0.
func (t *Table) GetWide(lo, hi uint64) (ppa uint64, ok bool) {
	home := t.home(lo)
	for hop := t.hops[home]; hop != 0; hop &= hop - 1 {
		i := bits.TrailingZeros32(hop)
		slot := (home + i) % len(t.sigs)
		if t.match(slot, lo, hi) {
			return t.ppas[slot], true
		}
	}
	return 0, false
}

// GetOptimistic is GetWide for seqlock readers racing a mutator: every
// slot-array access is an atomic load, and it never touches the
// plain-written used[]/n fields (a set hop bit implies the slot was
// occupied at some even sequence; torn states are rejected by the
// caller's SeqValidate). The returned value is only meaningful if the
// surrounding SeqSnapshot/SeqValidate pair passes.
func (t *Table) GetOptimistic(lo, hi uint64) (ppa uint64, ok bool) {
	home := t.home(lo)
	for hop := atomic.LoadUint32(&t.hops[home]); hop != 0; hop &= hop - 1 {
		i := bits.TrailingZeros32(hop)
		slot := (home + i) % len(t.sigs)
		if atomic.LoadUint64(&t.sigs[slot]) == lo && t.hiOptimistic(slot) == hi {
			return atomic.LoadUint64(&t.ppas[slot]), true
		}
	}
	return 0, false
}

func (t *Table) hiOptimistic(slot int) uint64 {
	if t.his == nil {
		return 0
	}
	return atomic.LoadUint64(&t.his[slot])
}

// Put inserts or updates the record for sig. It reports whether an
// existing record was replaced. ErrNoSlot means the neighborhood is
// saturated and the operation must be aborted.
func (t *Table) Put(sig, ppa uint64) (replaced bool, err error) {
	return t.PutWide(sig, 0, ppa)
}

// PutWide inserts or updates a record keyed by its full (lo, hi)
// signature.
func (t *Table) PutWide(lo, hi, ppa uint64) (replaced bool, err error) {
	home := t.home(lo)
	for hop := t.hops[home]; hop != 0; hop &= hop - 1 {
		i := bits.TrailingZeros32(hop)
		slot := (home + i) % len(t.sigs)
		if t.match(slot, lo, hi) {
			t.beginWrite()
			atomic.StoreUint64(&t.ppas[slot], ppa)
			t.endWrite()
			return true, nil
		}
	}
	if t.n == len(t.sigs) {
		return false, ErrNoSlot
	}

	// Linear-probe for the nearest free slot.
	free := -1
	for d := 0; d < len(t.sigs); d++ {
		slot := (home + d) % len(t.sigs)
		if !t.used[slot] {
			free = slot
			break
		}
	}
	if free < 0 {
		return false, ErrNoSlot
	}

	t.beginWrite()
	// Hop the free slot backward until it is within range of home.
	for t.dist(home, free) >= t.hop {
		moved := false
		for j := t.hop - 1; j >= 1; j-- {
			cand := (free - j + len(t.sigs)) % len(t.sigs)
			if !t.used[cand] {
				continue
			}
			candHome := t.home(t.sigs[cand])
			if t.dist(candHome, free) >= t.hop {
				continue
			}
			// Move the candidate record into the free slot.
			atomic.StoreUint64(&t.sigs[free], t.sigs[cand])
			if t.his != nil {
				atomic.StoreUint64(&t.his[free], t.his[cand])
			}
			atomic.StoreUint64(&t.ppas[free], t.ppas[cand])
			t.used[free] = true
			t.used[cand] = false
			atomic.StoreUint32(&t.hops[candHome],
				t.hops[candHome]&^(1<<uint(t.dist(candHome, cand)))|1<<uint(t.dist(candHome, free)))
			free = cand
			moved = true
			break
		}
		if !moved {
			t.endWrite()
			return false, ErrNoSlot
		}
	}

	atomic.StoreUint64(&t.sigs[free], lo)
	if t.his != nil {
		atomic.StoreUint64(&t.his[free], hi)
	}
	atomic.StoreUint64(&t.ppas[free], ppa)
	t.used[free] = true
	atomic.StoreUint32(&t.hops[home], t.hops[home]|1<<uint(t.dist(home, free)))
	t.n++
	t.endWrite()
	return false, nil
}

// Delete removes the record for sig, returning its physical page address.
func (t *Table) Delete(sig uint64) (ppa uint64, ok bool) { return t.DeleteWide(sig, 0) }

// DeleteWide removes a record keyed by its full (lo, hi) signature.
func (t *Table) DeleteWide(lo, hi uint64) (ppa uint64, ok bool) {
	home := t.home(lo)
	for hop := t.hops[home]; hop != 0; hop &= hop - 1 {
		i := bits.TrailingZeros32(hop)
		slot := (home + i) % len(t.sigs)
		if t.match(slot, lo, hi) {
			ppa = t.ppas[slot]
			t.beginWrite()
			t.used[slot] = false
			atomic.StoreUint64(&t.sigs[slot], 0)
			if t.his != nil {
				atomic.StoreUint64(&t.his[slot], 0)
			}
			atomic.StoreUint64(&t.ppas[slot], 0)
			atomic.StoreUint32(&t.hops[home], t.hops[home]&^(1<<uint(i)))
			t.n--
			t.endWrite()
			return ppa, true
		}
	}
	return 0, false
}

// Range calls f for every stored record until f returns false. Iteration
// order is slot order, not insertion order.
func (t *Table) Range(f func(sig, ppa uint64) bool) {
	for i, u := range t.used {
		if u && !f(t.sigs[i], t.ppas[i]) {
			return
		}
	}
}

// RangeWide is Range with the full (lo, hi) signature exposed.
func (t *Table) RangeWide(f func(lo, hi, ppa uint64) bool) {
	for i, u := range t.used {
		if u && !f(t.sigs[i], t.hiOf(i), t.ppas[i]) {
			return
		}
	}
}

// Reset empties the table in place. It runs a full write bracket, so it
// also revives an Invalidate-poisoned counter on pool reuse.
func (t *Table) Reset() {
	t.beginWrite()
	for i := range t.used {
		t.used[i] = false
		atomic.StoreUint64(&t.sigs[i], 0)
		if t.his != nil {
			atomic.StoreUint64(&t.his[i], 0)
		}
		atomic.StoreUint64(&t.ppas[i], 0)
		atomic.StoreUint32(&t.hops[i], 0)
	}
	t.n = 0
	t.endWrite()
}

// EncodedSize reports the number of bytes a 64-bit-signature table with
// the given capacity occupies on flash.
func EncodedSize(capacity int) int { return capacity * SlotSize }

// EncodedSizeWide is EncodedSize for 128-bit-signature tables.
func EncodedSizeWide(capacity int) int { return capacity * SlotSizeWide }

// EncodedBytes reports the flash footprint of this table.
func (t *Table) EncodedBytes() int { return len(t.sigs) * t.SlotSizeOf() }

// EncodeTo serializes the table into buf, which must hold at least
// t.EncodedBytes() bytes. The layout per slot is little-endian
// {sig:8[+hi:8], ppa:5, hopinfo:4}; unoccupied slots carry the all-ones
// PPA.
func (t *Table) EncodeTo(buf []byte) {
	need := t.EncodedBytes()
	if len(buf) < need {
		panic(fmt.Sprintf("hopscotch: encode buffer %d < %d", len(buf), need))
	}
	ss := t.SlotSizeOf()
	for i := range t.sigs {
		off := i * ss
		ppa := uint64(emptyPPA)
		var lo, hi uint64
		if t.used[i] {
			ppa = t.ppas[i]
			lo = t.sigs[i]
			hi = t.hiOf(i)
		}
		binary.LittleEndian.PutUint64(buf[off:], lo)
		off += 8
		if t.his != nil {
			binary.LittleEndian.PutUint64(buf[off:], hi)
			off += 8
		}
		putUint40(buf[off:], ppa)
		binary.LittleEndian.PutUint32(buf[off+5:], t.hops[i])
	}
}

// DecodeFrom rebuilds the table state from a buffer produced by EncodeTo.
// The buffer's capacity and signature width must match the table's.
func (t *Table) DecodeFrom(buf []byte) error {
	need := t.EncodedBytes()
	if len(buf) < need {
		return fmt.Errorf("hopscotch: decode buffer %d < %d", len(buf), need)
	}
	ss := t.SlotSizeOf()
	t.beginWrite()
	t.n = 0
	for i := range t.sigs {
		off := i * ss
		lo := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		var hi uint64
		if t.his != nil {
			hi = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		ppa := uint40(buf[off:])
		atomic.StoreUint32(&t.hops[i], binary.LittleEndian.Uint32(buf[off+5:]))
		if ppa == emptyPPA {
			t.used[i] = false
			atomic.StoreUint64(&t.sigs[i], 0)
			if t.his != nil {
				atomic.StoreUint64(&t.his[i], 0)
			}
			atomic.StoreUint64(&t.ppas[i], 0)
			continue
		}
		t.used[i] = true
		atomic.StoreUint64(&t.sigs[i], lo)
		if t.his != nil {
			atomic.StoreUint64(&t.his[i], hi)
		}
		atomic.StoreUint64(&t.ppas[i], ppa)
		t.n++
	}
	t.endWrite()
	return nil
}

func putUint40(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
}

func uint40(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32
}
