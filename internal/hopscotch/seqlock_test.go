package hopscotch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sigForID builds a signature whose identity is recoverable from the
// PPA stored under it, so a torn read (signature from one record, PPA
// from another) is detectable.
func sigForID(id uint64) (lo, ppa uint64) {
	return id*0x9e3779b97f4a7c15 + 1, id
}

// TestSeqlockDeterministic pins the version-counter protocol without
// goroutines: snapshots taken before a mutation must fail validation
// after it, invalidated tables must never produce a stable snapshot,
// and a full write bracket must revive a poisoned counter.
func TestSeqlockDeterministic(t *testing.T) {
	tab := New(64, 8)

	v, ok := tab.SeqSnapshot()
	if !ok {
		t.Fatal("fresh table is not stable")
	}
	if !tab.SeqValidate(v) {
		t.Fatal("validation failed with no intervening mutation")
	}

	lo, ppa := sigForID(7)
	if _, err := tab.Put(lo, ppa); err != nil {
		t.Fatal(err)
	}
	if tab.SeqValidate(v) {
		t.Fatal("snapshot survived a Put")
	}

	v2, ok := tab.SeqSnapshot()
	if !ok {
		t.Fatal("table not stable after Put completed")
	}
	if got, ok := tab.GetOptimistic(lo, 0); !ok || got != ppa {
		t.Fatalf("GetOptimistic = (%d,%v), want (%d,true)", got, ok, ppa)
	}
	if !tab.SeqValidate(v2) {
		t.Fatal("read-only probe broke validation")
	}

	tab.Invalidate()
	if _, ok := tab.SeqSnapshot(); ok {
		t.Fatal("invalidated table reported a stable snapshot")
	}
	if tab.SeqValidate(v2) {
		t.Fatal("pre-invalidate snapshot validated on a poisoned table")
	}
	tab.Invalidate() // idempotent: stays odd
	if _, ok := tab.SeqSnapshot(); ok {
		t.Fatal("double-invalidated table reported stable")
	}

	tab.Reset() // full bracket from a poisoned state must land even
	if _, ok := tab.SeqSnapshot(); !ok {
		t.Fatal("Reset did not revive the poisoned counter")
	}
}

// TestSeqlockTorture races one mutator against optimistic readers on a
// deliberately tiny, hot table. Readers accept a probe only when the
// snapshot/validate pair passes; every accepted probe must then be
// self-consistent (the PPA encodes the signature's identity). The test
// also requires that at least one validation failure was observed, so
// the schedule demonstrably tore a read rather than serializing.
func TestSeqlockTorture(t *testing.T) {
	const (
		ids     = 12
		readers = 4
	)
	tab := New(16, 8) // small: inserts displace, deletes free, constant churn

	var stop atomic.Bool
	var torn, accepted atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				id := (seed + i) % ids
				lo, want := sigForID(id)
				v, ok := tab.SeqSnapshot()
				if !ok {
					torn.Add(1)
					continue
				}
				ppa, found := tab.GetOptimistic(lo, 0)
				if !tab.SeqValidate(v) {
					torn.Add(1)
					continue
				}
				accepted.Add(1)
				if found && ppa != want {
					t.Errorf("torn read: sig of id %d returned ppa %d", id, ppa)
					return
				}
			}
		}(uint64(r) * 5)
	}

	// Mutator: churn inserts/deletes so slots are constantly rewritten
	// and displaced mid-probe. Keep mutating until the readers have made
	// real progress (on a single core the tight loop can otherwise
	// finish before they are ever scheduled), with a generous round cap
	// as the safety net.
	deadline := time.Now().Add(5 * time.Second)
	for round := 0; !t.Failed(); round++ {
		id := uint64(round) % ids
		lo, ppa := sigForID(id)
		if round%3 == 2 {
			tab.Delete(lo)
		} else if _, err := tab.Put(lo, ppa); err != nil {
			t.Fatalf("put id %d: %v", id, err)
		}
		if round%1024 == 0 {
			runtime.Gosched()
			if (round >= 40000 && accepted.Load() > 10000) || time.Now().After(deadline) {
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	if accepted.Load() == 0 {
		t.Fatal("no optimistic probe ever validated")
	}
	if torn.Load() == 0 {
		t.Skip("schedule never overlapped a write; nothing exercised (single-core timing)")
	}
	t.Logf("accepted=%d torn=%d", accepted.Load(), torn.Load())
}
