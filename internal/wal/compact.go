package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CompactResult reports what a compaction pass did.
type CompactResult struct {
	// SegmentsIn is how many sealed, checkpoint-covered segments were
	// folded; zero means the pass found nothing eligible. SegmentsOut is
	// 1 when a merged segment was written, 0 when every input record was
	// superseded into nothing.
	SegmentsIn  int
	SegmentsOut int
	// RecordsIn / RecordsOut count records before and after folding;
	// BytesReclaimed is the net file-size reduction.
	RecordsIn      int
	RecordsOut     int
	BytesReclaimed int64
}

// Compact folds the sealed segments fully covered by the checkpoint
// horizon into a single merged segment holding only the newest record
// per key. Tombstones are retained — dropping one could resurrect a key
// if a crash interleaved with the rewrite — so the merged segment is
// exactly equivalent to its inputs under replay, and every crash window
// is safe: the merged segment is fsynced and renamed into place before
// any input is deleted, and replay de-duplicates by sequence number if
// both survive a crash.
//
// Compaction never touches the active segment and reads only immutable
// sealed files, so it runs concurrently with appends; passes serialize
// on an internal mutex.
func (l *Log) Compact() (CompactResult, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	var res CompactResult

	horizon := l.horizon.Load()
	l.mu.Lock()
	activeSeq, activeOpen := l.fileSeq, l.f != nil
	l.mu.Unlock()

	names, err := listSegments(l.dir)
	if err != nil {
		return res, err
	}
	// Eligible inputs are a prefix of the sorted segment list: sealed
	// (not the active file) and containing no record above the horizon.
	type input struct {
		name string
		data []byte
	}
	var inputs []input
	newest := make(map[string]Record)
	recordsIn := 0
	var bytesIn int64
	for _, name := range names {
		if activeOpen {
			if seq, _ := parseSegName(name); seq == activeSeq {
				break
			}
		}
		path := filepath.Join(l.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return res, fmt.Errorf("wal: compact %s: %w", name, err)
		}
		if len(data) < segHdrLen || [8]byte(data[:8]) != segMagic {
			return res, fmt.Errorf("wal: compact %s: bad segment header", name)
		}
		covered := true
		var recs []Record
		for off := segHdrLen; off < len(data); {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				return res, fmt.Errorf("wal: compact %s: %w at offset %d", name, err, off)
			}
			if rec.Seq > horizon {
				covered = false
				break
			}
			recs = append(recs, rec)
			off += n
		}
		if !covered {
			break
		}
		inputs = append(inputs, input{name, data})
		bytesIn += int64(len(data))
		for _, rec := range recs {
			k := string(rec.Key)
			if prev, ok := newest[k]; !ok || rec.Seq > prev.Seq {
				newest[k] = rec
			}
			recordsIn++
		}
	}
	if len(inputs) < 2 {
		return res, nil // nothing worth folding
	}
	res.SegmentsIn = len(inputs)
	res.RecordsIn = recordsIn

	survivors := make([]Record, 0, len(newest))
	for _, rec := range newest {
		survivors = append(survivors, rec)
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].Seq < survivors[j].Seq })
	res.RecordsOut = len(survivors)

	replaced := ""
	if len(survivors) > 0 {
		buf := segHeader()
		for i := range survivors {
			buf = AppendRecord(buf, &survivors[i])
		}
		tmp := filepath.Join(l.dir, "compact.tmp")
		if err := writeFileSync(tmp, buf); err != nil {
			return res, err
		}
		// The merged segment atomically replaces the first input, keeping
		// its name: it sorts exactly where the folded range sat, and the
		// name cannot collide with any segment outside the input set.
		replaced = inputs[0].name
		if err := os.Rename(tmp, filepath.Join(l.dir, replaced)); err != nil {
			return res, fmt.Errorf("wal: compact publish: %w", err)
		}
		if err := syncDir(l.dir); err != nil {
			return res, err
		}
		res.SegmentsOut = 1
		res.BytesReclaimed = bytesIn - int64(len(buf))
	} else {
		res.BytesReclaimed = bytesIn
	}

	for _, in := range inputs {
		if in.name == replaced {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, in.name)); err != nil {
			return res, fmt.Errorf("wal: compact remove: %w", err)
		}
		l.segmentsRemoved.Add(1)
	}
	if err := syncDir(l.dir); err != nil {
		return res, err
	}
	l.compactions.Add(1)
	return res, nil
}

// writeFileSync writes data to path and syncs it to stable storage.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("wal: compact write: %w", werr)
	}
	return nil
}
