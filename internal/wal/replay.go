package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ReplayInfo summarizes one Replay pass.
type ReplayInfo struct {
	// Segments scanned, Records applied (after de-duplication), and the
	// highest sequence number seen.
	Segments int
	Records  int
	LastSeq  uint64
	// TruncatedBytes is the torn tail discarded from the newest segment,
	// if any.
	TruncatedBytes int64
}

// Replay scans every segment, truncates a torn tail on the newest one,
// and calls apply for each surviving record in global sequence order.
// It must run once, before the first Append: it leaves the log
// positioned to continue appending after the highest replayed sequence.
//
// Only the newest segment may legitimately end mid-frame (the process
// died inside a write); an undecodable frame in any older segment is
// real corruption and fails the replay. Duplicate sequence numbers —
// possible when a crash interrupts compaction between publishing the
// merged segment and deleting its inputs — carry identical payloads, so
// the first copy wins and the rest are skipped.
func (l *Log) Replay(apply func(*Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	names, err := listSegments(l.dir)
	if err != nil {
		return info, err
	}
	info.Segments = len(names)

	type bufRec struct {
		rec Record
		ord int // arrival order, to keep the first duplicate
	}
	var all []bufRec
	var lastName string
	var lastSize int64
	for i, name := range names {
		path := filepath.Join(l.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return info, fmt.Errorf("wal: replay %s: %w", name, err)
		}
		last := i == len(names)-1
		if len(data) < segHdrLen || [8]byte(data[:8]) != segMagic {
			if last && len(data) < segHdrLen {
				// The process died while creating the segment: nothing in
				// it was ever acknowledged. Drop it and recreate on the
				// next append.
				info.TruncatedBytes += int64(len(data))
				if err := os.Remove(path); err != nil {
					return info, fmt.Errorf("wal: replay %s: %w", name, err)
				}
				names = names[:i]
				break
			}
			return info, fmt.Errorf("wal: replay %s: bad segment header", name)
		}
		off := segHdrLen
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				if last {
					// Torn tail: whatever follows the last good frame was
					// never acknowledged under fsync=always. Truncate it
					// so appends resume at a clean boundary.
					torn := int64(len(data) - off)
					if terr := os.Truncate(path, int64(off)); terr != nil {
						return info, fmt.Errorf("wal: truncate %s: %w", name, terr)
					}
					info.TruncatedBytes += torn
					break
				}
				if errors.Is(err, ErrShortRecord) {
					return info, fmt.Errorf("wal: replay %s: truncated record in sealed segment", name)
				}
				return info, fmt.Errorf("wal: replay %s: %w at offset %d", name, err, off)
			}
			all = append(all, bufRec{rec, len(all)})
			off += n
		}
		if last {
			lastName = name
			lastSize = int64(off)
		}
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].rec.Seq != all[j].rec.Seq {
			return all[i].rec.Seq < all[j].rec.Seq
		}
		return all[i].ord < all[j].ord
	})
	var prevSeq uint64
	for i := range all {
		r := &all[i].rec
		if i > 0 && r.Seq == prevSeq {
			continue // compaction-crash duplicate; identical payload
		}
		prevSeq = r.Seq
		if err := apply(r); err != nil {
			return info, fmt.Errorf("wal: replay seq %d: %w", r.Seq, err)
		}
		info.Records++
		info.LastSeq = r.Seq
	}
	l.replayed.Store(int64(info.Records))
	l.truncated.Store(info.TruncatedBytes)
	l.seq.Store(info.LastSeq)

	// Continue appending into the newest segment unless it is already at
	// the rotation threshold.
	if lastName != "" && lastSize < l.opts.SegmentSize {
		seq, _ := parseSegName(lastName)
		l.mu.Lock()
		err := l.openSegmentLocked(seq)
		l.mu.Unlock()
		if err != nil {
			return info, err
		}
	}
	return info, nil
}
