package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(seq uint64, op Op, key, value string) Record {
	return Record{Seq: seq, Op: op, Sig: seq * 0x9e3779b97f4a7c15, Key: []byte(key), Value: []byte(value)}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		rec(1, OpPut, "k", "v"),
		rec(2, OpDelete, "k", ""),
		rec(1<<63, OpPut, strings.Repeat("K", 300), strings.Repeat("V", 5000)),
	}
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	off := 0
	for i := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Seq != recs[i].Seq || got.Op != recs[i].Op || got.Sig != recs[i].Sig ||
			!bytes.Equal(got.Key, recs[i].Key) || !bytes.Equal(got.Value, recs[i].Value) {
			t.Fatalf("decode %d: got %+v want %+v", i, got, recs[i])
		}
		if n != recs[i].EncodedLen() {
			t.Fatalf("decode %d: consumed %d want %d", i, n, recs[i].EncodedLen())
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("leftover %d bytes", len(buf)-off)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	r := rec(7, OpPut, "key", "value")
	whole := AppendRecord(nil, &r)
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := DecodeRecord(whole[:cut]); !errors.Is(err, ErrShortRecord) {
			t.Fatalf("cut %d: got %v want ErrShortRecord", cut, err)
		}
	}
	flipped := append([]byte(nil), whole...)
	flipped[0] ^= 0xff // CRC byte
	if _, _, err := DecodeRecord(flipped); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("flipped crc: got %v", err)
	}
	body := append([]byte(nil), whole...)
	body[len(body)-1] ^= 0x01 // payload byte
	if _, _, err := DecodeRecord(body); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("flipped payload: got %v", err)
	}
}

// replayAll opens dir and collects the replayed records.
func replayAll(t *testing.T, dir string, opts Options) (*Log, []Record, ReplayInfo) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var got []Record
	info, err := l.Replay(func(r *Record) error {
		c := *r
		c.Key = append([]byte(nil), r.Key...)
		c.Value = append([]byte(nil), r.Value...)
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return l, got, info
}

func TestAppendReplayRotate(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{SegmentSize: 256})
	var want []Record
	for g := 0; g < 8; g++ {
		var group []Record
		first := l.ReserveSeqs(4)
		for i := 0; i < 4; i++ {
			r := rec(first+uint64(i), OpPut, fmt.Sprintf("key-%d-%d", g, i), strings.Repeat("v", 20))
			group = append(group, r)
			want = append(want, r)
		}
		if err := l.Append(group); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments after rotation, got %v (%v)", segs, err)
	}

	l2, got, info := replayAll(t, dir, Options{SegmentSize: 256})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || !bytes.Equal(got[i].Key, want[i].Key) ||
			!bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if info.LastSeq != want[len(want)-1].Seq {
		t.Fatalf("LastSeq %d want %d", info.LastSeq, want[len(want)-1].Seq)
	}
	// Appends continue above the replayed sequence space.
	if s := l2.ReserveSeqs(1); s != info.LastSeq+1 {
		t.Fatalf("next seq %d want %d", s, info.LastSeq+1)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"cut mid-frame", func(d []byte) []byte { return d[:len(d)-5] }},
		{"flip crc", func(d []byte) []byte {
			d[len(d)-10] ^= 0xff
			return d
		}},
		{"garbage length", func(d []byte) []byte {
			return append(d, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0x7f)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := replayAll(t, dir, Options{})
			var recs []Record
			first := l.ReserveSeqs(3)
			for i := 0; i < 3; i++ {
				recs = append(recs, rec(first+uint64(i), OpPut, fmt.Sprintf("k%d", i), "value"))
			}
			if err := l.Append(recs); err != nil {
				t.Fatalf("append: %v", err)
			}
			l.Close()

			segs, _ := listSegments(dir)
			path := filepath.Join(dir, segs[len(segs)-1])
			data, _ := os.ReadFile(path)
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, got, info := replayAll(t, dir, Options{})
			defer l2.Close()
			if info.TruncatedBytes == 0 {
				t.Fatalf("expected torn-tail truncation")
			}
			// The mangled frame (and anything after) is gone; every record
			// before it survives, and none is corrupt.
			if len(got) == 0 || len(got) >= 3 && tc.name != "garbage length" {
				t.Fatalf("replayed %d records after tear", len(got))
			}
			for i, r := range got {
				if r.Seq != first+uint64(i) || string(r.Value) != "value" {
					t.Fatalf("surviving record %d corrupt: %+v", i, r)
				}
			}
			// The file is now clean: a third replay sees no tear.
			l2.Close()
			l3, got3, info3 := replayAll(t, dir, Options{})
			defer l3.Close()
			if info3.TruncatedBytes != 0 || len(got3) != len(got) {
				t.Fatalf("second replay not clean: %+v vs %d records", info3, len(got))
			}
		})
	}
}

func TestReplayRejectsCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{SegmentSize: 128})
	for g := 0; g < 6; g++ {
		seq := l.ReserveSeqs(1)
		if err := l.Append([]Record{rec(seq, OpPut, fmt.Sprintf("key%d", g), strings.Repeat("v", 40))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xff
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Replay(func(*Record) error { return nil }); err == nil {
		t.Fatalf("replay accepted corruption in a sealed segment")
	}
}

func TestHorizonPersists(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{})
	seq := l.ReserveSeqs(1)
	l.Append([]Record{rec(seq, OpPut, "k", "v")})
	if err := l.SetHorizon(seq); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, _, _ := replayAll(t, dir, Options{})
	defer l2.Close()
	if l2.Horizon() != seq {
		t.Fatalf("horizon %d want %d", l2.Horizon(), seq)
	}
}

func TestCompactFoldsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{SegmentSize: 200})
	// Overwrite the same small key set many times, plus one delete, so
	// folding has plenty to drop.
	var lastSeq uint64
	for g := 0; g < 10; g++ {
		seq := l.ReserveSeqs(2)
		err := l.Append([]Record{
			rec(seq, OpPut, fmt.Sprintf("key%d", g%3), fmt.Sprintf("val%d", g)),
			rec(seq+1, OpPut, "hot", fmt.Sprintf("hot%d", g)),
		})
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = seq + 1
	}
	delSeq := l.ReserveSeqs(1)
	l.Append([]Record{rec(delSeq, OpDelete, "key0", "")})
	lastSeq = delSeq

	if err := l.SetHorizon(lastSeq); err != nil {
		t.Fatal(err)
	}
	before, _ := listSegments(dir)
	res, err := l.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if res.SegmentsIn < 2 || res.RecordsOut >= res.RecordsIn {
		t.Fatalf("compaction did nothing useful: %+v (segments before: %d)", res, len(before))
	}
	after, _ := listSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("segments %d -> %d, want fewer", len(before), len(after))
	}
	l.Close()

	// Replay equivalence: the folded log recovers the same final state.
	l2, got, _ := replayAll(t, dir, Options{SegmentSize: 200})
	defer l2.Close()
	state := map[string]string{}
	for _, r := range got {
		if r.Op == OpDelete {
			delete(state, string(r.Key))
		} else {
			state[string(r.Key)] = string(r.Value)
		}
	}
	want := map[string]string{"key1": "val7", "key2": "val8", "hot": "hot9"}
	if len(state) != len(want) {
		t.Fatalf("state %v want %v", state, want)
	}
	for k, v := range want {
		if state[k] != v {
			t.Fatalf("key %q = %q want %q", k, state[k], v)
		}
	}
}

func TestCompactSkipsUncoveredAndActive(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{SegmentSize: 150})
	for g := 0; g < 8; g++ {
		seq := l.ReserveSeqs(1)
		l.Append([]Record{rec(seq, OpPut, "k", strings.Repeat("x", 50))})
	}
	defer l.Close()
	// Horizon zero: nothing is covered, nothing may be folded.
	res, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsIn != 0 {
		t.Fatalf("compacted %d segments below a zero horizon", res.SegmentsIn)
	}
}

// TestReplayDeduplicatesCrashDuplicates simulates a compaction crash
// that published the merged segment but never deleted one input: the
// duplicated sequence numbers must replay once.
func TestReplayDeduplicatesCrashDuplicates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := replayAll(t, dir, Options{SegmentSize: 120})
	for g := 0; g < 6; g++ {
		seq := l.ReserveSeqs(1)
		l.Append([]Record{rec(seq, OpPut, fmt.Sprintf("k%d", g), strings.Repeat("y", 30))})
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Duplicate the middle segment's records into a copy that sorts
	// elsewhere (a fresh name), mimicking the publish-then-crash window.
	data, _ := os.ReadFile(filepath.Join(dir, segs[1]))
	if err := os.WriteFile(filepath.Join(dir, segName(1<<40)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, _ := replayAll(t, dir, Options{SegmentSize: 120})
	defer l2.Close()
	seen := map[uint64]int{}
	for _, r := range got {
		seen[r.Seq]++
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d replayed %d times", seq, n)
		}
	}
	if len(got) != 6 {
		t.Fatalf("replayed %d records want 6", len(got))
	}
}

func TestManifestGuardsTopology(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Shards: 4, SigBits: 64, PrefixLen: 0}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatalf("re-verify same manifest: %v", err)
	}
	err := WriteManifest(dir, Manifest{Shards: 8, SigBits: 64})
	if !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("topology change accepted: %v", err)
	}
	got, err := ReadManifest(dir)
	if err != nil || got != m {
		t.Fatalf("read %+v (%v) want %+v", got, err, m)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"group", FsyncGroup}, {"none", FsyncNone}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
