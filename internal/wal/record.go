// Package wal is the durable write front of the emulated KVSSD: a
// per-shard append-only commit log on the host filesystem. The emulated
// device is volatile — its "flash" lives in process memory, so a real
// process crash loses every write since Open. The WAL closes that gap:
// mutations are framed, CRC-protected, and appended (fsync policy
// configurable) before the caller's PUT/DELETE is acknowledged, and
// recovery replays the log into a fresh device before it serves.
//
// The design is Bitcask-shaped (log-structured hash stores separate an
// update-heavy log front from the index — HashKV): fixed-name segment
// files rotated at a size threshold, a persisted checkpoint horizon
// stamping which prefix of the sequence space the device has also made
// durable in its own (simulated) checkpoint, and compaction that folds
// fully-covered segments down to the newest record per key.
//
// On-disk record frame (all integers little-endian, fixed width so the
// encoding is bijective — a decoded record re-encodes to the same
// bytes, which FuzzWALRecord asserts):
//
//	crc32c u32 | payloadLen u32 | payload
//	payload: seq u64 | op u8 | sig u64 | keyLen u32 | valueLen u32 | key | value
//
// The CRC covers the payload only; a frame whose CRC or structure does
// not check out is, during recovery of the active segment, treated as a
// torn tail: the file is truncated at the last good frame and the lost
// suffix was by construction never acknowledged under fsync=always.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op identifies a logged mutation.
type Op uint8

// Logged operations. Zero is invalid so all-zero frames fail decoding.
const (
	OpPut Op = iota + 1
	OpDelete
)

// String returns the mnemonic.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DEL"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Size limits. MaxKeyLen matches the wire protocol's encodable width;
// MaxValueLen matches the largest value a wire frame can carry. The
// device's own limits (one erase block) are tighter and reject first.
const (
	MaxKeyLen   = 1<<16 - 1
	MaxValueLen = 8 << 20
)

// Frame geometry.
const (
	frameHdrLen   = 8                 // crc u32 + payloadLen u32
	payloadHdrLen = 8 + 1 + 8 + 4 + 4 // seq, op, sig, keyLen, valueLen
	// maxPayloadLen bounds a declared payload length before any
	// allocation or slicing, so hostile lengths cannot panic.
	maxPayloadLen = payloadHdrLen + MaxKeyLen + MaxValueLen
)

// Decode errors. ErrShortRecord means the buffer ends inside a frame —
// during recovery that is a torn tail, not corruption. ErrCorruptRecord
// means the frame is structurally present but fails its checks.
var (
	ErrShortRecord   = errors.New("wal: short record")
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged mutation. Key and Value alias the caller's (or,
// after DecodeRecord, the segment's) buffer.
type Record struct {
	Seq   uint64
	Op    Op
	Sig   uint64 // 8-byte key signature, for routing audits and walinfo
	Key   []byte
	Value []byte // empty for OpDelete
}

// EncodedLen reports the framed size of r.
func (r *Record) EncodedLen() int {
	return frameHdrLen + payloadHdrLen + len(r.Key) + len(r.Value)
}

// AppendRecord appends r's frame to dst.
func AppendRecord(dst []byte, r *Record) []byte {
	payloadLen := payloadHdrLen + len(r.Key) + len(r.Value)
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc, patched below
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint64(dst, r.Sig)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Key...)
	dst = append(dst, r.Value...)
	crc := crc32.Checksum(dst[mark+frameHdrLen:], castagnoli)
	binary.LittleEndian.PutUint32(dst[mark:], crc)
	return dst
}

// DecodeRecord decodes the frame at the start of b, returning the
// record (aliasing b) and the bytes consumed. ErrShortRecord reports a
// buffer ending inside the frame; ErrCorruptRecord reports a CRC
// mismatch or a structurally invalid payload.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHdrLen {
		return Record{}, 0, ErrShortRecord
	}
	crc := binary.LittleEndian.Uint32(b)
	payloadLen := binary.LittleEndian.Uint32(b[4:])
	if payloadLen < payloadHdrLen || payloadLen > maxPayloadLen {
		return Record{}, 0, ErrCorruptRecord
	}
	if len(b) < frameHdrLen+int(payloadLen) {
		return Record{}, 0, ErrShortRecord
	}
	payload := b[frameHdrLen : frameHdrLen+int(payloadLen)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, 0, ErrCorruptRecord
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Op = Op(payload[8])
	r.Sig = binary.LittleEndian.Uint64(payload[9:])
	keyLen := binary.LittleEndian.Uint32(payload[17:])
	valueLen := binary.LittleEndian.Uint32(payload[21:])
	if r.Op != OpPut && r.Op != OpDelete {
		return Record{}, 0, ErrCorruptRecord
	}
	if keyLen == 0 || keyLen > MaxKeyLen || valueLen > MaxValueLen {
		return Record{}, 0, ErrCorruptRecord
	}
	if r.Op == OpDelete && valueLen != 0 {
		return Record{}, 0, ErrCorruptRecord
	}
	if int(payloadLen) != payloadHdrLen+int(keyLen)+int(valueLen) {
		return Record{}, 0, ErrCorruptRecord
	}
	body := payload[payloadHdrLen:]
	r.Key = body[:keyLen:keyLen]
	r.Value = body[keyLen : keyLen+valueLen : keyLen+valueLen]
	return r, frameHdrLen + int(payloadLen), nil
}
