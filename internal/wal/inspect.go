package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// SegmentInfo describes one on-disk segment for tooling.
type SegmentInfo struct {
	Name    string
	Size    int64
	Records int
	MinSeq  uint64
	MaxSeq  uint64
	// Covered reports that every record is at or below the checkpoint
	// horizon, making the segment eligible for compaction.
	Covered bool
	// TornBytes is the undecodable tail, non-zero only on the segment a
	// crash tore (recovery will truncate it).
	TornBytes int64
}

// LogInfo is an offline snapshot of one shard's log directory.
type LogInfo struct {
	Dir      string
	Segments []SegmentInfo
	// Horizon is the persisted checkpoint horizon; LastSeq the highest
	// sequence on disk. Records above the horizon — the live tail — are
	// what recovery must replay after the device restores its own
	// checkpoint; recovery re-applies everything, so the horizon's only
	// operational role is gating compaction.
	Horizon uint64
	LastSeq uint64
	Records int
}

// Inspect reads a shard log directory without modifying it. Torn tails
// are reported, not truncated, so it is safe on a live or crashed dir.
func Inspect(dir string) (LogInfo, error) {
	info := LogInfo{Dir: dir, Horizon: readHorizon(dir)}
	names, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return info, fmt.Errorf("wal: inspect %s: %w", name, err)
		}
		si := SegmentInfo{Name: name, Size: int64(len(data)), Covered: true}
		if len(data) < segHdrLen || [8]byte(data[:8]) != segMagic {
			si.TornBytes = int64(len(data))
			si.Covered = false
			info.Segments = append(info.Segments, si)
			continue
		}
		for off := segHdrLen; off < len(data); {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				si.TornBytes = int64(len(data) - off)
				break
			}
			if si.Records == 0 || rec.Seq < si.MinSeq {
				si.MinSeq = rec.Seq
			}
			if rec.Seq > si.MaxSeq {
				si.MaxSeq = rec.Seq
			}
			si.Records++
			off += n
		}
		if si.MaxSeq > info.Horizon {
			si.Covered = false
		}
		if si.MaxSeq > info.LastSeq {
			info.LastSeq = si.MaxSeq
		}
		info.Records += si.Records
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}

// Manifest pins the shard topology a WAL directory was written under.
// Log records are routed to per-shard directories by key signature;
// reopening with a different topology would replay keys into the wrong
// shards, so Open refuses a mismatch instead of corrupting silently.
type Manifest struct {
	Shards    int
	SigBits   int
	PrefixLen int
}

const manifestFile = "MANIFEST"

// WriteManifest persists m at the WAL root, or verifies it against an
// existing manifest. ErrManifestMismatch reports a topology change.
func WriteManifest(root string, m Manifest) error {
	existing, err := ReadManifest(root)
	switch {
	case err == nil:
		if existing != m {
			return fmt.Errorf("%w: dir has shards=%d sigbits=%d prefixlen=%d, want shards=%d sigbits=%d prefixlen=%d",
				ErrManifestMismatch,
				existing.Shards, existing.SigBits, existing.PrefixLen,
				m.Shards, m.SigBits, m.PrefixLen)
		}
		return nil
	case !errors.Is(err, os.ErrNotExist):
		return err
	}
	body := fmt.Sprintf("rhik-wal v1\nshards %d\nsigbits %d\nprefixlen %d\n",
		m.Shards, m.SigBits, m.PrefixLen)
	tmp := filepath.Join(root, manifestFile+".tmp")
	if err := writeFileSync(tmp, []byte(body)); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(root, manifestFile)); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return syncDir(root)
}

// ErrManifestMismatch reports a WAL directory written under a different
// shard topology than the one now opening it.
var ErrManifestMismatch = errors.New("wal: manifest mismatch")

// ReadManifest loads the manifest at the WAL root; os.ErrNotExist if
// the directory has never been used.
func ReadManifest(root string) (Manifest, error) {
	f, err := os.Open(filepath.Join(root, manifestFile))
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	var m Manifest
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != "rhik-wal v1" {
		return m, fmt.Errorf("wal: manifest: unrecognized format")
	}
	for sc.Scan() {
		var key string
		var val int
		if _, err := fmt.Sscanf(sc.Text(), "%s %d", &key, &val); err != nil {
			continue
		}
		switch key {
		case "shards":
			m.Shards = val
		case "sigbits":
			m.SigBits = val
		case "prefixlen":
			m.PrefixLen = val
		}
	}
	if err := sc.Err(); err != nil {
		return m, fmt.Errorf("wal: manifest: %w", err)
	}
	if m.Shards == 0 {
		return m, fmt.Errorf("wal: manifest: missing shards")
	}
	return m, nil
}
