package wal

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the record decoder. Two
// invariants: DecodeRecord never panics, and any frame it accepts
// re-encodes to exactly the bytes it consumed (the encoding is
// bijective — recovery and compaction both depend on rewriting decoded
// records without drift).
func FuzzWALRecord(f *testing.F) {
	seed := func(r Record) {
		f.Add(AppendRecord(nil, &r))
	}
	seed(Record{Seq: 1, Op: OpPut, Sig: 0xdeadbeef, Key: []byte("k"), Value: []byte("v")})
	seed(Record{Seq: 1 << 62, Op: OpDelete, Sig: ^uint64(0), Key: []byte("gone")})
	seed(Record{Seq: 7, Op: OpPut, Sig: 3, Key: []byte(strings.Repeat("K", 500)), Value: []byte(strings.Repeat("V", 4000))})

	valid := AppendRecord(nil, &Record{Seq: 9, Op: OpPut, Sig: 5, Key: []byte("key"), Value: []byte("value")})
	f.Add(valid[:len(valid)-3]) // truncated mid-frame
	f.Add(valid[:frameHdrLen])  // header only
	flipped := append([]byte(nil), valid...)
	flipped[2] ^= 0x40 // CRC bit flip
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // garbage length
	f.Add([]byte{})
	f.Add(make([]byte, 64)) // all zeroes: op 0 must be rejected

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < frameHdrLen+payloadHdrLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendRecord(nil, &rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode drifted:\n in: %x\nout: %x", data[:n], re)
		}
	})
}
