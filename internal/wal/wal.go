package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs every append before it returns: an acknowledged
	// write survives process kill and power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncGroup acknowledges after the buffered OS write and syncs when
	// the committer's burst drains (or every GroupBytes, whichever comes
	// first): an acknowledged write survives process kill — the data is
	// in the page cache — but the unsynced tail of a burst can be lost
	// to power failure.
	FsyncGroup
	// FsyncNone never syncs outside Close: acknowledged writes survive a
	// clean process kill in practice, with no power-loss guarantee.
	FsyncNone
)

// String returns the policy's flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncGroup:
		return "group"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParsePolicy parses the flag spelling of a policy.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "group":
		return FsyncGroup, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, group, or none)", s)
}

// Options tunes one shard's log.
type Options struct {
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// GroupBytes bounds the unsynced tail under FsyncGroup: an append
	// that pushes past it syncs immediately (default 1 MiB).
	GroupBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.GroupBytes <= 0 {
		o.GroupBytes = 1 << 20
	}
	return o
}

// Segment file layout: a 16-byte header, then record frames.
const (
	segHdrLen  = 16
	segVersion = 1
)

var segMagic = [8]byte{'R', 'W', 'A', 'L', 'S', 'E', 'G', '1'}

func segHeader() []byte {
	h := make([]byte, segHdrLen)
	copy(h, segMagic[:])
	binary.LittleEndian.PutUint32(h[8:], segVersion)
	return h
}

// segName renders the segment filename for a first-sequence number.
func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.seg", firstSeq) }

// parseSegName extracts the first-sequence number from a segment name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(hex, "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// horizonFile is the checkpoint-horizon sidecar: the highest sequence
// number the device's own checkpoint covers. Compaction only touches
// segments entirely at or below it.
const horizonFile = "CHECKPOINT"

var horizonMagic = [8]byte{'R', 'W', 'A', 'L', 'C', 'K', 'P', '1'}

// Stats is a point-in-time snapshot of one log's counters (or, merged
// at the shard.Set level, all logs').
type Stats struct {
	// Records and Bytes count appended records and their framed bytes.
	Records int64
	Bytes   int64
	// Groups counts group-commit appends (one per Append call); the
	// records-per-group distribution is GroupSize.
	Groups int64
	// Fsyncs counts file syncs issued by appends, Sync, and rotation.
	Fsyncs int64
	// Rotations counts segment rollovers; Compactions counts completed
	// compaction passes and SegmentsRemoved the segments they deleted.
	Compactions     int64
	Rotations       int64
	SegmentsRemoved int64
	// Replayed counts records re-applied by the last Replay; Truncated
	// is the torn-tail bytes it discarded.
	Replayed  int64
	Truncated int64
	// GroupSize is the records-per-group-commit distribution.
	GroupSize metrics.Histogram
}

// Log is one shard's append-only commit log. Appends, Sync, Rotate and
// Close serialize on an internal mutex; sequence reservation is atomic
// so callers can stamp records in apply order while holding their own
// shard lock, and Replay sorts globally by sequence so cross-batch file
// order never matters.
type Log struct {
	dir  string
	opts Options

	seq     atomic.Uint64 // last reserved sequence number
	horizon atomic.Uint64 // checkpoint-covered prefix of the seq space

	mu       sync.Mutex
	f        *os.File // active segment (nil until first append)
	fileSeq  uint64   // first seq the active segment's name carries
	size     int64    // bytes written to the active segment
	unsynced int64
	buf      []byte // frame scratch, reused across appends
	closed   bool

	compactMu sync.Mutex // serializes compaction passes

	records         atomic.Int64
	bytes           atomic.Int64
	groups          atomic.Int64
	fsyncs          atomic.Int64
	rotations       atomic.Int64
	compactions     atomic.Int64
	segmentsRemoved atomic.Int64
	replayed        atomic.Int64
	truncated       atomic.Int64
	groupSize       metrics.ConcurrentHistogram
}

// Open prepares dir (creating it if needed) and loads the checkpoint
// horizon. The log is not ready for Append until Replay has scanned the
// existing segments; Open itself reads no record data.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults()}
	// Leftover temporaries from an interrupted compaction or horizon
	// write are garbage: their contents are duplicated by the files they
	// were about to replace.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	l.horizon.Store(readHorizon(dir))
	return l, nil
}

// Dir reports the log's directory.
func (l *Log) Dir() string { return l.dir }

// Fsync reports the configured durability policy.
func (l *Log) Fsync() FsyncPolicy { return l.opts.Fsync }

// LastSeq reports the most recently reserved sequence number.
func (l *Log) LastSeq() uint64 { return l.seq.Load() }

// Horizon reports the checkpoint-covered sequence horizon.
func (l *Log) Horizon() uint64 { return l.horizon.Load() }

// ReserveSeqs reserves n consecutive sequence numbers and returns the
// first. Callers reserve while holding the shard lock that serializes
// their device mutations, so sequence order always equals apply order.
func (l *Log) ReserveSeqs(n int) uint64 {
	return l.seq.Add(uint64(n)) - uint64(n) + 1
}

// Append writes one group of records as a single file append and
// applies the fsync policy. Records must carry reserved sequence
// numbers. One Append call is one group commit.
func (l *Log) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	buf := l.buf[:0]
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	l.buf = buf

	if l.f == nil || l.size+int64(len(buf)) > l.opts.SegmentSize && l.size > segHdrLen {
		if err := l.rotateLocked(recs[0].Seq); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.unsynced += int64(len(buf))
	l.records.Add(int64(len(recs)))
	l.bytes.Add(int64(len(buf)))
	l.groups.Add(1)
	l.groupSize.Record(int64(len(recs)))

	switch l.opts.Fsync {
	case FsyncAlways:
		return l.syncLocked()
	case FsyncGroup:
		if l.unsynced >= l.opts.GroupBytes {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage. The committer
// calls it when its burst drains under FsyncGroup; checkpoints call it
// under every policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.unsynced = 0
	l.fsyncs.Add(1)
	return nil
}

// rotateLocked seals the active segment (syncing it, except under
// FsyncNone) and opens a fresh one whose name carries firstSeq.
func (l *Log) rotateLocked(firstSeq uint64) error {
	if l.f != nil {
		if l.opts.Fsync != FsyncNone {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
		l.f = nil
		l.rotations.Add(1)
	}
	return l.openSegmentLocked(firstSeq)
}

// openSegmentLocked creates (or reopens, after recovery) the segment
// named for firstSeq and positions appends at its end.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: segment stat: %w", err)
	}
	size := st.Size()
	if size == 0 {
		if _, err := f.Write(segHeader()); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment header: %w", err)
		}
		size = segHdrLen
		if l.opts.Fsync != FsyncNone {
			if err := syncDir(l.dir); err != nil {
				f.Close()
				return err
			}
		}
	}
	l.f = f
	l.fileSeq = firstSeq
	l.size = size
	l.unsynced = 0
	return nil
}

// SetHorizon syncs the log and durably records seq as the checkpoint
// horizon: the device checkpoint that just completed covers every
// mutation at or below it, making the segments beneath it compactable.
func (l *Log) SetHorizon(seq uint64) error {
	if err := l.Sync(); err != nil {
		return err
	}
	b := make([]byte, 20)
	copy(b, horizonMagic[:])
	binary.LittleEndian.PutUint64(b[8:], seq)
	binary.LittleEndian.PutUint32(b[16:], crc32.Checksum(b[:16], castagnoli))
	tmp := filepath.Join(l.dir, horizonFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("wal: horizon: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, horizonFile)); err != nil {
		return fmt.Errorf("wal: horizon: %w", err)
	}
	if l.opts.Fsync != FsyncNone {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	l.horizon.Store(seq)
	return nil
}

// readHorizon loads the horizon sidecar; a missing or damaged sidecar
// reads as zero, which only makes compaction more conservative.
func readHorizon(dir string) uint64 {
	b, err := os.ReadFile(filepath.Join(dir, horizonFile))
	if err != nil || len(b) != 20 {
		return 0
	}
	if [8]byte(b[:8]) != horizonMagic {
		return 0
	}
	if crc32.Checksum(b[:16], castagnoli) != binary.LittleEndian.Uint32(b[16:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[8:])
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:         l.records.Load(),
		Bytes:           l.bytes.Load(),
		Groups:          l.groups.Load(),
		Fsyncs:          l.fsyncs.Load(),
		Rotations:       l.rotations.Load(),
		Compactions:     l.compactions.Load(),
		SegmentsRemoved: l.segmentsRemoved.Load(),
		Replayed:        l.replayed.Load(),
		Truncated:       l.truncated.Load(),
		GroupSize:       l.groupSize.Snapshot(),
	}
}

// Merge folds o into s (histogram-merging GroupSize).
func (s *Stats) Merge(o *Stats) {
	s.Records += o.Records
	s.Bytes += o.Bytes
	s.Groups += o.Groups
	s.Fsyncs += o.Fsyncs
	s.Rotations += o.Rotations
	s.Compactions += o.Compactions
	s.SegmentsRemoved += o.SegmentsRemoved
	s.Replayed += o.Replayed
	s.Truncated += o.Truncated
	s.GroupSize.Merge(&o.GroupSize)
}

// listSegments returns the directory's segment files sorted by the
// first-sequence number their names carry.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		name string
		seq  uint64
	}
	var segs []seg
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seg{e.Name(), seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.name
	}
	return names, nil
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
