package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// memEnv is an in-memory index.Env for unit-testing the index in
// isolation: pages live in a map, reads cost a fixed simulated latency,
// and invalidated pages are tracked so tests can assert GC hygiene.
type memEnv struct {
	clock       sim.Clock
	pages       map[nand.PPA][]byte
	next        nand.PPA
	reads       int64
	appends     int64
	invalidated map[nand.PPA]bool
	readCost    sim.Duration
	failAppends bool
}

func newMemEnv() *memEnv {
	return &memEnv{
		pages:       make(map[nand.PPA][]byte),
		invalidated: make(map[nand.PPA]bool),
		readCost:    60 * sim.Microsecond,
	}
}

func (e *memEnv) ReadPage(p nand.PPA) ([]byte, error) {
	data, ok := e.pages[p]
	if !ok {
		return nil, fmt.Errorf("memEnv: page %d not present", p)
	}
	e.reads++
	e.clock.Advance(e.readCost)
	return data, nil
}

func (e *memEnv) AppendPage(data []byte) (nand.PPA, error) {
	if e.failAppends {
		return 0, errors.New("memEnv: append failure injected")
	}
	p := e.next
	e.next++
	e.pages[p] = append([]byte(nil), data...)
	e.appends++
	e.clock.Advance(700 * sim.Microsecond)
	return p, nil
}

func (e *memEnv) Invalidate(p nand.PPA) {
	e.invalidated[p] = true
	delete(e.pages, p)
}

func (e *memEnv) ChargeCPU(d sim.Duration) { e.clock.Advance(d) }
func (e *memEnv) MetaReads() int64         { return e.reads }
func (e *memEnv) Now() sim.Time            { return e.clock.Now() }

func sig64(lo uint64) index.Sig { return index.Sig{Lo: lo} }

func newTestRHIK(t *testing.T, cfg Config) (*RHIK, *memEnv) {
	t.Helper()
	env := newMemEnv()
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	r, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	return r, env
}

func TestEq1RecordsPerTable(t *testing.T) {
	// Paper parameters: 32 KiB pages, 8 B signature, 5 B PPA, 4 B hopinfo.
	if got := RecordsPerTable(32*1024, false); got != 1927 {
		t.Fatalf("R = %d, want 1927 (Eq. 1)", got)
	}
	if got := RecordsPerTable(32*1024, true); got != 1310 {
		t.Fatalf("wide R = %d, want 1310", got)
	}
}

func TestEq2DirectoryEntries(t *testing.T) {
	cases := []struct {
		keys int64
		r    int
		want int
	}{
		{0, 1927, 1},
		{1, 1927, 1},
		{1927, 1927, 1},
		{1928, 1927, 2},
		{1000000, 1927, 1024}, // ceil(1e6/1927)=519 → next pow2 1024
	}
	for _, c := range cases {
		if got := DirectoryEntries(c.keys, c.r); got != c.want {
			t.Errorf("DirectoryEntries(%d, %d) = %d, want %d", c.keys, c.r, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	env := newMemEnv()
	if _, err := New(Config{PageSize: 8}, env); err == nil {
		t.Fatal("accepted tiny page size")
	}
	if _, err := New(Config{PageSize: 4096, OccupancyThreshold: 1.5}, env); err == nil {
		t.Fatal("accepted threshold > 1")
	}
	if _, err := New(Config{PageSize: 4096, AnticipatedKeys: -1}, env); err == nil {
		t.Fatal("accepted negative keys")
	}
	if _, err := New(Config{PageSize: 4096, SigScheme: index.SigScheme{Bits: 77}}, env); err == nil {
		t.Fatal("accepted bad signature width")
	}
}

func TestInsertLookupDelete(t *testing.T) {
	r, _ := newTestRHIK(t, Config{})
	if _, rep, err := r.Insert(sig64(42), 1000); err != nil || rep {
		t.Fatalf("Insert = (%v,%v)", rep, err)
	}
	rp, ok, err := r.Lookup(sig64(42))
	if err != nil || !ok || rp != 1000 {
		t.Fatalf("Lookup = (%d,%v,%v)", rp, ok, err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	old, rep, err := r.Insert(sig64(42), 2000)
	if err != nil || !rep || old != 1000 {
		t.Fatalf("update = (%d,%v,%v)", old, rep, err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after update = %d", r.Len())
	}
	rp, ok, err = r.Delete(sig64(42))
	if err != nil || !ok || rp != 2000 {
		t.Fatalf("Delete = (%d,%v,%v)", rp, ok, err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	if _, ok, _ := r.Lookup(sig64(42)); ok {
		t.Fatal("deleted record found")
	}
}

func TestExistMembership(t *testing.T) {
	r, _ := newTestRHIK(t, Config{})
	r.Insert(sig64(7), 70)
	if ok, _ := r.Exist(sig64(7)); !ok {
		t.Fatal("Exist false negative")
	}
	if ok, _ := r.Exist(sig64(8)); ok {
		t.Fatal("Exist reported absent key")
	}
}

func TestResizeTriggerAndGrowth(t *testing.T) {
	r, _ := newTestRHIK(t, Config{PageSize: 1024}) // R = 60
	if r.DirEntries() != 1 {
		t.Fatalf("initial D = %d", r.DirEntries())
	}
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]uint64)
	for i := 0; i < 5000; i++ {
		lo := rng.Uint64()
		rp := uint64(i + 1)
		if _, _, err := r.Insert(sig64(lo), rp); err != nil {
			if errors.Is(err, index.ErrCollision) {
				continue
			}
			t.Fatal(err)
		}
		inserted[lo] = rp
		if r.NeedsResize() {
			if err := r.Resize(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r.DirEntries() < 64 {
		t.Fatalf("directory only grew to %d entries", r.DirEntries())
	}
	if got := r.Occupancy(); got >= r.cfg.OccupancyThreshold {
		t.Fatalf("occupancy %.2f at or above threshold after resizes", got)
	}
	// Every record must survive all migrations.
	for lo, rp := range inserted {
		got, ok, err := r.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
	evs := r.ResizeEvents()
	if len(evs) == 0 {
		t.Fatal("no resize events recorded")
	}
	for i, ev := range evs {
		if ev.Took <= 0 {
			t.Errorf("resize %d took %v", i, ev.Took)
		}
		if i > 0 && evs[i].KeysBefore <= evs[i-1].KeysBefore {
			t.Errorf("resize %d keysBefore not increasing", i)
		}
	}
}

func TestResizeDoesNotReadKVPairs(t *testing.T) {
	// The paper's key migration property: only index pages are read.
	// With a cache large enough to hold everything, a resize performs
	// zero flash reads.
	r, env := newTestRHIK(t, Config{PageSize: 1024, CacheBudget: 64 << 20})
	rng := rand.New(rand.NewSource(2))
	for r.Len() < 40 {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	before := env.reads
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	if env.reads != before {
		t.Fatalf("resize with warm cache performed %d flash reads", env.reads-before)
	}
}

func TestResizeInvalidatesOldPages(t *testing.T) {
	r, env := newTestRHIK(t, Config{PageSize: 1024})
	rng := rand.New(rand.NewSource(3))
	for r.Len() < 50 {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	if err := r.Flush(); err != nil { // persist current tables
		t.Fatal(err)
	}
	persisted := make([]nand.PPA, 0)
	for p := range env.pages {
		persisted = append(persisted, p)
	}
	if len(persisted) == 0 {
		t.Fatal("nothing persisted")
	}
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	for _, p := range persisted {
		if !env.invalidated[p] {
			t.Fatalf("old index page %d not invalidated after resize", p)
		}
	}
}

func TestAtMostOneFlashReadPerLookup(t *testing.T) {
	// The headline guarantee: with a cold, minimal cache every lookup
	// costs at most one flash read.
	r, env := newTestRHIK(t, Config{PageSize: 1024, CacheBudget: 1})
	rng := rand.New(rand.NewSource(4))
	sigs := make([]uint64, 0, 2000)
	for len(sigs) < 2000 {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), 1); err == nil {
			sigs = append(sigs, lo)
		}
		if r.NeedsResize() {
			if err := r.Resize(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, lo := range sigs {
		before := env.MetaReads()
		_, ok, err := r.Lookup(sig64(lo))
		if err != nil || !ok {
			t.Fatalf("Lookup(%#x) failed: %v %v", lo, ok, err)
		}
		if reads := env.MetaReads() - before; reads > 1 {
			t.Fatalf("lookup took %d flash reads, paper guarantees <= 1", reads)
		}
	}
}

func TestWritebackAndColdReload(t *testing.T) {
	// Insert with a tiny cache (forcing write-back), then verify every
	// record via cold reads.
	r, _ := newTestRHIK(t, Config{PageSize: 1024, CacheBudget: 1, AnticipatedKeys: 500})
	rng := rand.New(rand.NewSource(5))
	inserted := map[uint64]uint64{}
	for i := 0; len(inserted) < 300; i++ {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), uint64(i)); err == nil {
			inserted[lo] = uint64(i)
		}
	}
	for lo, rp := range inserted {
		got, ok, err := r.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("cold Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
}

func TestCheckpointRestore(t *testing.T) {
	r, env := newTestRHIK(t, Config{PageSize: 1024, AnticipatedKeys: 2000})
	rng := rand.New(rand.NewSource(6))
	inserted := map[uint64]uint64{}
	for i := 0; len(inserted) < 500; i++ {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), uint64(i+1)); err == nil {
			inserted[lo] = uint64(i + 1)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	state := r.EncodeState()

	// "Power cycle": fresh instance over the same flash contents.
	r2, err := New(Config{PageSize: 1024, AnticipatedKeys: 2000}, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() || r2.DirEntries() != r.DirEntries() {
		t.Fatalf("restored Len=%d D=%d, want Len=%d D=%d",
			r2.Len(), r2.DirEntries(), r.Len(), r.DirEntries())
	}
	for lo, rp := range inserted {
		got, ok, err := r2.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("restored Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	r, _ := newTestRHIK(t, Config{})
	if err := r.LoadState([]byte("junk")); err == nil {
		t.Fatal("accepted junk checkpoint")
	}
	if err := r.LoadState(append([]byte(stateMagic), make([]byte, 10)...)); err == nil {
		t.Fatal("accepted truncated checkpoint")
	}
}

func TestRelocateKeepsRecordsAndInvalidatesOld(t *testing.T) {
	r, env := newTestRHIK(t, Config{PageSize: 1024, AnticipatedKeys: 100})
	rng := rand.New(rand.NewSource(7))
	var sigs []uint64
	for len(sigs) < 50 {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), 9); err == nil {
			sigs = append(sigs, lo)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Pick a live page and relocate its bucket.
	var victim nand.PPA
	var bucket uint64
	found := false
	for p := range env.pages {
		if b, live := r.Owner(p); live {
			victim, bucket, found = p, b, true
			break
		}
	}
	if !found {
		t.Fatal("no live index pages")
	}
	if err := r.Relocate(bucket); err != nil {
		t.Fatal(err)
	}
	if !env.invalidated[victim] {
		t.Fatal("old page not invalidated by relocation")
	}
	if _, live := r.Owner(victim); live {
		t.Fatal("old page still live after relocation")
	}
	for _, lo := range sigs {
		if _, ok, err := r.Lookup(sig64(lo)); err != nil || !ok {
			t.Fatalf("record lost after relocation: %v %v", ok, err)
		}
	}
}

func TestCollisionAbortCounted(t *testing.T) {
	// A single-bucket index with a tiny page fills quickly; pushing far
	// past capacity must yield ErrCollision, not corruption.
	r, _ := newTestRHIK(t, Config{PageSize: 512, OccupancyThreshold: 0.99})
	rng := rand.New(rand.NewSource(8))
	var aborted bool
	for i := 0; i < 500 && !aborted; i++ {
		_, _, err := r.Insert(sig64(rng.Uint64()), 1)
		if errors.Is(err, index.ErrCollision) {
			aborted = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !aborted {
		t.Fatal("no collision abort while overfilling a fixed index")
	}
	if r.IndexStats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestWideSignatureMode(t *testing.T) {
	r, _ := newTestRHIK(t, Config{SigScheme: index.SigScheme{Bits: 128}})
	a := index.Sig{Lo: 5, Hi: 1}
	b := index.Sig{Lo: 5, Hi: 2}
	r.Insert(a, 100)
	r.Insert(b, 200)
	if rp, ok, _ := r.Lookup(a); !ok || rp != 100 {
		t.Fatalf("wide Lookup(a) = (%d,%v)", rp, ok)
	}
	if rp, ok, _ := r.Lookup(b); !ok || rp != 200 {
		t.Fatalf("wide Lookup(b) = (%d,%v)", rp, ok)
	}
	if ok, _ := r.Exist(index.Sig{Lo: 5, Hi: 3}); ok {
		t.Fatal("wide Exist matched wrong hi")
	}
}

func TestAppendFailureSurfaces(t *testing.T) {
	// Multiple buckets plus a one-byte cache budget force dirty
	// write-backs on nearly every insert; injected append failures must
	// surface as errors rather than vanish in the eviction path.
	r, env := newTestRHIK(t, Config{PageSize: 1024, CacheBudget: 1, AnticipatedKeys: 500})
	env.failAppends = true
	rng := rand.New(rand.NewSource(9))
	var sawErr bool
	for i := 0; i < 200; i++ {
		if _, _, err := r.Insert(sig64(rng.Uint64()), 1); err != nil && !errors.Is(err, index.ErrCollision) {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("append failures never surfaced")
	}
}

func TestFlushFailureSurfaces(t *testing.T) {
	r, env := newTestRHIK(t, Config{PageSize: 1024})
	r.Insert(sig64(1), 1)
	env.failAppends = true
	if err := r.Flush(); err == nil {
		t.Fatal("Flush swallowed append failure")
	}
}

func TestOracleWithResizesProperty(t *testing.T) {
	f := func(seed int64, opKinds []uint8) bool {
		r, _ := newTestRHIK(t, Config{PageSize: 512})
		rng := rand.New(rand.NewSource(seed))
		oracle := map[uint64]uint64{}
		keys := make([]uint64, 0, 64)
		for _, k := range opKinds {
			var lo uint64
			if len(keys) > 0 && k%2 == 0 {
				lo = keys[rng.Intn(len(keys))]
			} else {
				lo = rng.Uint64()
			}
			switch k % 3 {
			case 0:
				rp := rng.Uint64() % (1 << 39)
				if _, _, err := r.Insert(sig64(lo), rp); err == nil {
					if _, dup := oracle[lo]; !dup {
						keys = append(keys, lo)
					}
					oracle[lo] = rp
				}
			case 1:
				got, ok, err := r.Lookup(sig64(lo))
				want, exists := oracle[lo]
				if err != nil || ok != exists || (ok && got != want) {
					return false
				}
			case 2:
				_, ok, err := r.Delete(sig64(lo))
				_, exists := oracle[lo]
				if err != nil || ok != exists {
					return false
				}
				delete(oracle, lo)
			}
			if r.NeedsResize() {
				if err := r.Resize(); err != nil {
					return false
				}
			}
		}
		if r.Len() != int64(len(oracle)) {
			return false
		}
		for lo, want := range oracle {
			got, ok, err := r.Lookup(sig64(lo))
			if err != nil || !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryDRAMFootprintSmall(t *testing.T) {
	// Paper: the directory costs ~0.005 bytes/key for 32 KiB pages; check
	// our directory DRAM share stays in that regime.
	r, _ := newTestRHIK(t, Config{PageSize: 32 * 1024, AnticipatedKeys: 1_000_000})
	perKey := float64(r.DirEntries()*5) / 1_000_000
	if perKey > 0.01 {
		t.Fatalf("directory costs %.4f bytes/key, want < 0.01", perKey)
	}
}
