// Package core implements RHIK, the paper's primary contribution: a
// two-level, re-configurable hash index for KVSSDs (§IV).
//
// The directory layer lives in SSD DRAM: D entries, selected by the d =
// log2(D) least-significant bits of the 64-bit key signature (the
// "variable hash function"). Each entry points at one flash page holding
// a record-layer hopscotch hash table of exactly R records (Eq. 1), so
// any lookup costs at most one flash read: directory access is free,
// and the record table is either cached in DRAM or one page away.
//
// When total occupancy crosses the configured threshold (80 % by
// default), the index re-configures: the directory doubles, each old
// bucket's records split between two new buckets using only their stored
// key signatures — the KV pairs on flash are never touched — and the old
// index pages are invalidated for garbage collection (§IV-A2).
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/dram"
	"repro/internal/epoch"
	"repro/internal/hopscotch"
	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Config parameterizes a RHIK instance.
type Config struct {
	// PageSize is the flash page size; record tables are sized to fill
	// exactly one page (Eq. 1).
	PageSize int
	// HopRange is the hopscotch neighborhood H (default 32, §IV-A1).
	HopRange int
	// SigScheme selects signature width and iterator mode.
	SigScheme index.SigScheme
	// AnticipatedKeys sizes the initial directory via Eq. 2. Zero means
	// a minimal (single-bucket) index that grows on demand — the
	// conservative initialization the paper recommends for unknown
	// workloads.
	AnticipatedKeys int64
	// OccupancyThreshold triggers resizing (default 0.80).
	OccupancyThreshold float64
	// CacheBudget is the SSD DRAM budget, in bytes, for record tables.
	CacheBudget int64
	// Admission enables TinyLFU admission for the record-table cache: a
	// 4-bit count-min frequency sketch (plus doorkeeper) fed by every
	// bucket access decides whether a faulted-in table may displace the
	// next CLOCK victim, so one-touch scan traffic stops evicting hot
	// buckets. Off (the default) reproduces the pre-admission cache
	// bit-for-bit.
	Admission bool
	// CPUPerOp models the firmware cost of hashing and probing.
	CPUPerOp sim.Duration
	// MigrateCPUPerRecord models the firmware cost of re-inserting one
	// record during a resize migration (signature re-use makes this a
	// DRAM-speed operation; flash I/O is charged separately).
	MigrateCPUPerRecord sim.Duration
	// IncrementalResize enables lazy ("real-time") re-configuration: the
	// directory doubles immediately and buckets migrate as they are
	// touched, plus MigrateStepBuckets per operation in the background —
	// the paper's §VI future-work direction, implemented here so the
	// tail-latency trade-off can be measured against the default
	// stop-the-world migration.
	IncrementalResize bool
	// MigrateStepBuckets is the background migration quota per operation
	// in incremental mode (default 4).
	MigrateStepBuckets int
	// Reclaim, when set, defers pool reuse of record tables that were
	// reader-reachable until the epoch domain proves no optimistic reader
	// can still alias them. Nil keeps the original immediate recycling
	// (safe when the caller serializes all access, as in the tests that
	// drive RHIK directly).
	Reclaim *epoch.Domain
}

// Defaults applied by New.
const (
	DefaultHopRange            = 32
	DefaultOccupancyThreshold  = 0.80
	DefaultCPUPerOp            = sim.Microsecond
	DefaultCacheBudget         = 10 << 20
	DefaultMigrateCPUPerRecord = 20 * sim.Nanosecond
)

func (c *Config) applyDefaults() {
	if c.HopRange == 0 {
		c.HopRange = DefaultHopRange
	}
	if c.SigScheme.Bits == 0 {
		c.SigScheme = index.DefaultSigScheme
	}
	if c.OccupancyThreshold == 0 {
		c.OccupancyThreshold = DefaultOccupancyThreshold
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = DefaultCacheBudget
	}
	if c.CPUPerOp == 0 {
		c.CPUPerOp = DefaultCPUPerOp
	}
	if c.MigrateCPUPerRecord == 0 {
		c.MigrateCPUPerRecord = DefaultMigrateCPUPerRecord
	}
	if c.MigrateStepBuckets == 0 {
		c.MigrateStepBuckets = 4
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.PageSize < 2*hopscotch.SlotSizeWide {
		return fmt.Errorf("core: page size %d too small for record tables", c.PageSize)
	}
	if c.OccupancyThreshold < 0.05 || c.OccupancyThreshold > 1.0 {
		return fmt.Errorf("core: occupancy threshold %.2f outside (0.05, 1.0]", c.OccupancyThreshold)
	}
	if c.AnticipatedKeys < 0 {
		return fmt.Errorf("core: negative anticipated keys")
	}
	return c.SigScheme.Validate()
}

// RecordsPerTable computes Eq. 1: R = ⌊p / (kh + ppa + hi)⌋.
func RecordsPerTable(pageSize int, wide bool) int {
	slot := hopscotch.SlotSize
	if wide {
		slot = hopscotch.SlotSizeWide
	}
	return pageSize / slot
}

// DirectoryEntries computes Eq. 2: D = anticipated keys / R, rounded up
// to the next power of two so the variable hash function can use plain
// low signature bits.
func DirectoryEntries(anticipatedKeys int64, recordsPerTable int) int {
	if anticipatedKeys <= 0 {
		return 1
	}
	d := (anticipatedKeys + int64(recordsPerTable) - 1) / int64(recordsPerTable)
	if d < 1 {
		d = 1
	}
	// Round up to a power of two.
	if d&(d-1) != 0 {
		d = 1 << bits.Len64(uint64(d))
	}
	return int(d)
}

type dirEntry struct {
	ppa nand.PPA // flash address of the persisted record table
	has bool     // whether a persisted copy exists
}

type tableEntry struct {
	table *hopscotch.Table
	dirty bool
	// bucket is the directory slot this entry was loaded for; transient
	// (admission-rejected, never cached) entries use it to write back
	// their mutations at end of op.
	bucket uint64
}

// generation is one directory generation: the dirEntry slice plus, per
// bucket, an atomically-published pointer to the DRAM-resident record
// table (nil when the bucket is not cached). Optimistic readers load
// the current generation once, follow resident pointers, and validate
// with the table's seqlock; writers build a new generation on resize
// and swap it in atomically, so readers never see a half-migrated
// directory. The cache pointer is fixed per generation so lock-free
// commits can touch CLOCK state without racing the writer's cache swap.
type generation struct {
	dirs     []dirEntry
	resident []atomic.Pointer[residentRef]
	cache    *dram.Cache[*tableEntry]
}

// residentRef pairs a published table entry with its cache touch
// handle, so an optimistic reader that validates can replicate the
// locked path's hit accounting and CLOCK recency without the key map.
type residentRef struct {
	e *tableEntry
	h dram.Handle[*tableEntry]
}

func newGeneration(d int) *generation {
	return &generation{
		dirs:     make([]dirEntry, d),
		resident: make([]atomic.Pointer[residentRef], d),
	}
}

// RHIK is the re-configurable hash index. Mutations are single-threaded
// — the device firmware serializes them under the shard write lock —
// but PeekOptimistic/RevalidateOptimistic/CommitOptimistic may run
// lock-free from concurrent readers, validated by the per-table seqlock
// and the atomically-swapped directory generation.
type RHIK struct {
	cfg     Config
	env     index.Env
	reclaim *epoch.Domain // nil: recycle pools immediately

	r     int                        // records per table (Eq. 1)
	dBits int                        // log2(D)
	gen   atomic.Pointer[generation] // current directory generation
	cache *dram.Cache[*tableEntry]   // == gen.Load().cache; writer convenience
	live  map[nand.PPA]uint64        // persisted page -> bucket, for index-zone GC
	pool  []*hopscotch.Table         // recycled tables; avoids per-miss allocation
	epool []*tableEntry              // recycled cache entries; keeps misses alloc-free
	mig   *migration                 // in-flight incremental re-configuration

	// sketch is the TinyLFU admission filter shared across directory
	// generations (nil when Config.Admission is off), so frequency
	// history survives a resize. transients holds loadTable results the
	// filter refused to cache: they live only until the current exported
	// operation returns, when releaseTransients writes back any mutation
	// and recycles them. Never published to optimistic readers.
	sketch     *dram.FrequencySketch
	transients []*tableEntry

	n          int64 // total records
	collisions int64
	resizes    []index.ResizeEvent
	ioErr      error       // first error stashed by the eviction write-back path
	ioErrFlag  atomic.Bool // lock-free mirror of ioErr != nil for readers
}

// g returns the current generation. Writer-side shorthand.
func (r *RHIK) g() *generation { return r.gen.Load() }

var _ index.Index = (*RHIK)(nil)
var _ index.SharedReader = (*RHIK)(nil)
var _ index.Resizer = (*RHIK)(nil)
var _ index.Relocator = (*RHIK)(nil)
var _ index.Checkpointer = (*RHIK)(nil)
var _ index.StatsProvider = (*RHIK)(nil)
var _ index.RecordEnumerator = (*RHIK)(nil)

// New builds a RHIK instance over the given environment.
func New(cfg Config, env index.Env) (*RHIK, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RHIK{
		cfg:     cfg,
		env:     env,
		reclaim: cfg.Reclaim,
		r:       RecordsPerTable(cfg.PageSize, cfg.SigScheme.Wide()),
		live:    make(map[nand.PPA]uint64),
	}
	if cfg.Admission {
		// Size the sketch for a few multiples of the resident working set
		// (budget/page tables fit at once); its footprint is charged to
		// DRAMBytes, so keep it small relative to the cache budget.
		resident := int(cfg.CacheBudget) / cfg.PageSize
		n := 4 * resident
		if n < 128 {
			n = 128
		}
		r.sketch = dram.NewFrequencySketch(n)
	}
	d := DirectoryEntries(cfg.AnticipatedKeys, r.r)
	r.dBits = bits.Len64(uint64(d)) - 1
	g := newGeneration(d)
	g.cache = r.newCache(g)
	r.gen.Store(g)
	r.cache = g.cache
	return r, nil
}

// Name implements index.Index.
func (r *RHIK) Name() string { return "rhik" }

// Len implements index.Index.
func (r *RHIK) Len() int64 { return r.n }

// RecordsPerTable reports R for this instance.
func (r *RHIK) RecordsPerTable() int { return r.r }

// DirEntries reports the current directory size D.
func (r *RHIK) DirEntries() int { return len(r.g().dirs) }

// Capacity reports the total record capacity D·R.
func (r *RHIK) Capacity() int64 { return int64(r.DirEntries()) * int64(r.r) }

// Occupancy reports Len/Capacity.
func (r *RHIK) Occupancy() float64 { return float64(r.n) / float64(r.Capacity()) }

// newCache builds a record-table cache whose write-back path targets the
// given generation. The closure binds g so that evictions during a
// resize write through to the directory generation that owns them.
// Eviction order matters for lock-free readers: unpublish the resident
// pointer, poison the table's version counter, then write back and
// retire — an optimistic probe racing the eviction fails either the
// pointer re-check or the seqlock validation, never reads a recycled
// table.
func (r *RHIK) newCache(g *generation) *dram.Cache[*tableEntry] {
	c := dram.New(r.cfg.CacheBudget, func(key uint64, e *tableEntry, _ int64) {
		g.resident[key].Store(nil)
		e.table.Invalidate()
		if e.dirty {
			if err := r.writeTable(g.dirs, key, e); err != nil {
				r.setIOErr(err)
			}
		}
		r.retireEntry(e)
	})
	c.SetAdmission(r.sketch)
	return c
}

// setIOErr stashes the first deferred write-back error and raises the
// lock-free mirror flag so optimistic readers escalate until a writer
// surfaces the error via checkIO.
func (r *RHIK) setIOErr(err error) {
	if r.ioErr == nil {
		r.ioErr = err
	}
	r.ioErrFlag.Store(true)
}

// retireEntry returns an entry that may have been reader-reachable to
// the pools — immediately without a reclaim domain, otherwise deferred
// past every pinned reader epoch.
func (r *RHIK) retireEntry(e *tableEntry) {
	if r.reclaim == nil {
		r.recycleEntry(e)
		return
	}
	r.reclaim.Retire(func() { r.recycleEntry(e) })
}

// publish makes bucket's cached entry reachable by optimistic readers.
// Call after every cache.Put of a non-empty table.
func (r *RHIK) publish(g *generation, bucket uint64, e *tableEntry) {
	if h, ok := g.cache.Handle(bucket); ok {
		g.resident[bucket].Store(&residentRef{e: e, h: h})
	}
}

// recycle returns an evicted table to the pool. Callers follow a
// use-immediately discipline after loadTable, so an evicted table is
// never still referenced.
func (r *RHIK) recycle(t *hopscotch.Table) {
	if len(r.pool) < 64 {
		r.pool = append(r.pool, t)
	}
}

// takeTable pops a pooled table (contents undefined) or allocates one.
// Callers either DecodeFrom (which overwrites every slot) or Reset.
func (r *RHIK) takeTable() *hopscotch.Table {
	if n := len(r.pool); n > 0 {
		t := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return t
	}
	return r.newTable()
}

// takeEmptyTable pops a pooled table and empties it.
func (r *RHIK) takeEmptyTable() *hopscotch.Table {
	t := r.takeTable()
	t.Reset()
	return t
}

// takeEntry wraps t in a pooled cache entry (dirty cleared), so cache
// misses on the lookup path allocate nothing in steady state.
func (r *RHIK) takeEntry(t *hopscotch.Table) *tableEntry {
	if n := len(r.epool); n > 0 {
		e := r.epool[n-1]
		r.epool = r.epool[:n-1]
		e.table = t
		e.dirty = false
		return e
	}
	return &tableEntry{table: t}
}

// recycleEntry returns an entry and its table to their pools.
func (r *RHIK) recycleEntry(e *tableEntry) {
	r.recycle(e.table)
	e.table = nil
	if len(r.epool) < 64 {
		r.epool = append(r.epool, e)
	}
}

// writeTable persists a record table and repoints its directory entry.
func (r *RHIK) writeTable(dirs []dirEntry, bucket uint64, e *tableEntry) error {
	buf := make([]byte, e.table.EncodedBytes())
	e.table.EncodeTo(buf)
	ppa, err := r.env.AppendPage(buf)
	if err != nil {
		return err
	}
	if dirs[bucket].has {
		r.env.Invalidate(dirs[bucket].ppa)
		delete(r.live, dirs[bucket].ppa)
	}
	dirs[bucket] = dirEntry{ppa: ppa, has: true}
	r.live[ppa] = bucket
	e.dirty = false
	return nil
}

func (r *RHIK) bucketOf(sig index.Sig) uint64 {
	return sig.Lo & uint64(len(r.g().dirs)-1)
}

func (r *RHIK) newTable() *hopscotch.Table {
	if r.cfg.SigScheme.Wide() {
		return hopscotch.NewWide(r.r, r.cfg.HopRange)
	}
	return hopscotch.New(r.r, r.cfg.HopRange)
}

// loadTable returns the record table for bucket, fetching it from flash
// (at most one read — the paper's guarantee) when not DRAM-resident.
func (r *RHIK) loadTable(bucket uint64) (*tableEntry, error) {
	if e, ok := r.cache.Get(bucket); ok {
		return e, nil
	}
	g := r.g()
	t := r.takeTable()
	if g.dirs[bucket].has {
		data, err := r.env.ReadPage(g.dirs[bucket].ppa)
		if err != nil {
			r.recycle(t)
			return nil, err
		}
		if err := t.DecodeFrom(data); err != nil {
			r.recycle(t)
			return nil, err
		}
	} else {
		t.Reset()
	}
	e := r.takeEntry(t)
	e.bucket = bucket
	if r.cache.PutAdmit(bucket, e, int64(t.EncodedBytes())) {
		r.publish(g, bucket, e)
	} else {
		// TinyLFU refused the entry: it stays usable for the current
		// operation but is never cached or published, and
		// releaseTransients retires it (writing back any mutation) when
		// the operation returns.
		r.transients = append(r.transients, e)
	}
	return e, nil
}

// releaseTransients retires admission-rejected table entries at the end
// of an exported operation: dirty ones are written back to flash first
// (errors surface through the deferred-write-back channel, like cache
// eviction failures), then entry and table return to their pools —
// immediately, because a transient entry was never reachable by
// optimistic readers. The empty fast path is read-only so concurrent
// shared-lock readers can run it racelessly.
func (r *RHIK) releaseTransients() {
	if len(r.transients) == 0 {
		return
	}
	for i, e := range r.transients {
		if e.dirty {
			if err := r.writeTable(r.g().dirs, e.bucket, e); err != nil {
				r.setIOErr(err)
			}
		}
		r.recycleEntry(e)
		r.transients[i] = nil
	}
	r.transients = r.transients[:0]
}

func (r *RHIK) checkIO() error {
	if r.ioErr != nil {
		err := r.ioErr
		r.ioErr = nil
		r.ioErrFlag.Store(false)
		return err
	}
	return nil
}

// Insert implements index.Index.
func (r *RHIK) Insert(sig index.Sig, rp uint64) (old uint64, replaced bool, err error) {
	r.env.ChargeCPU(r.cfg.CPUPerOp)
	defer r.releaseTransients()
	if err := r.prepare(sig); err != nil {
		return 0, false, err
	}
	e, err := r.loadTable(r.bucketOf(sig))
	if err != nil {
		return 0, false, err
	}
	old, _ = e.table.GetWide(sig.Lo, sig.Hi)
	replaced, err = e.table.PutWide(sig.Lo, sig.Hi, rp)
	if err != nil {
		if errors.Is(err, hopscotch.ErrNoSlot) {
			r.collisions++
			return 0, false, index.ErrCollision
		}
		return 0, false, err
	}
	e.dirty = true
	if !replaced {
		r.n++
		old = 0
	}
	if ioErr := r.checkIO(); ioErr != nil {
		return old, replaced, ioErr
	}
	return old, replaced, nil
}

// Lookup implements index.Index.
func (r *RHIK) Lookup(sig index.Sig) (uint64, bool, error) {
	r.env.ChargeCPU(r.cfg.CPUPerOp)
	defer r.releaseTransients()
	if err := r.prepare(sig); err != nil {
		return 0, false, err
	}
	e, err := r.loadTable(r.bucketOf(sig))
	if err != nil {
		return 0, false, err
	}
	rp, ok := e.table.GetWide(sig.Lo, sig.Hi)
	return rp, ok, r.checkIO()
}

// Delete implements index.Index.
func (r *RHIK) Delete(sig index.Sig) (uint64, bool, error) {
	r.env.ChargeCPU(r.cfg.CPUPerOp)
	defer r.releaseTransients()
	if err := r.prepare(sig); err != nil {
		return 0, false, err
	}
	e, err := r.loadTable(r.bucketOf(sig))
	if err != nil {
		return 0, false, err
	}
	rp, ok := e.table.DeleteWide(sig.Lo, sig.Hi)
	if ok {
		e.dirty = true
		r.n--
	}
	return rp, ok, r.checkIO()
}

// Exist implements index.Index: the signature-reuse membership check
// (§IV-A3). False positives are possible (two keys sharing a signature);
// false negatives are not.
func (r *RHIK) Exist(sig index.Sig) (bool, error) {
	_, ok, err := r.Lookup(sig)
	return ok, err
}

// SharedLookupReady implements index.SharedReader: a lookup for sig can
// run under the shard read lock when no migration is in flight, no
// deferred write-back error is pending, and the bucket's record table is
// DRAM-resident. The check is pure — it charges no simulated time and
// touches no counters — so a false answer costs nothing before the shard
// falls back to the exclusive path. Once true, Lookup's only mutations
// are atomics: the cache hit counter and the entry's CLOCK reference bit
// (eviction cannot intervene, because only exclusive writers evict).
func (r *RHIK) SharedLookupReady(sig index.Sig) bool {
	return r.mig == nil && r.ioErr == nil && r.cache.Contains(r.bucketOf(sig))
}

// OptProbe is the result of a lock-free index probe. The RP/Found pair
// is meaningful only while RevalidateOptimistic keeps returning true;
// the unexported fields anchor the probed generation slot and seqlock
// snapshot for those later validations. Plain value type: it must not
// escape to the heap on the device's 0-alloc GET path.
type OptProbe struct {
	RP    uint64
	Found bool

	ref   *residentRef
	slot  *atomic.Pointer[residentRef]
	seq   uint64
	cache *dram.Cache[*tableEntry]
}

// PeekOptimistic probes the index for sig without any lock and without
// charging simulated time or touching counters. The caller must hold an
// epoch pin on the device's reclaim domain for the whole probe/validate
// lifetime, so the referenced table cannot be recycled underneath it.
//
// OptOK means the probe validated at return: RP/Found were read from a
// stable table version reachable from the current directory generation.
// OptRetry means a concurrent mutation interfered; retry immediately.
// OptNeedExclusive means no lock-free read can succeed (bucket not
// resident, bucket not yet migrated into the current generation, or a
// deferred write-back error is pending) — escalate to the exclusive
// path.
func (r *RHIK) PeekOptimistic(sig index.Sig) (OptProbe, index.OptStatus) {
	if r.ioErrFlag.Load() {
		return OptProbe{}, index.OptNeedExclusive
	}
	g := r.gen.Load()
	b := sig.Lo & uint64(len(g.dirs)-1)
	slot := &g.resident[b]
	ref := slot.Load()
	if ref == nil {
		// Not DRAM-resident in this generation: either a cache miss or a
		// bucket the incremental migration has not produced yet. Both need
		// the exclusive path (flash load / migration step).
		return OptProbe{}, index.OptNeedExclusive
	}
	t := ref.e.table
	v, ok := t.SeqSnapshot()
	if !ok {
		return OptProbe{}, index.OptRetry
	}
	rp, found := t.GetOptimistic(sig.Lo, sig.Hi)
	if !t.SeqValidate(v) || slot.Load() != ref {
		return OptProbe{}, index.OptRetry
	}
	return OptProbe{RP: rp, Found: found, ref: ref, slot: slot, seq: v, cache: g.cache}, index.OptOK
}

// RevalidateOptimistic reports whether a probe's result is still
// current: the table version is unchanged and the entry is still the
// one published for its bucket. The device calls it after copying
// dependent data (the record page) and before acting on it, which is
// the read's linearization point. Requires the same epoch pin as the
// probe.
func (r *RHIK) RevalidateOptimistic(p OptProbe) bool {
	return p.ref.e.table.SeqValidate(p.seq) && p.slot.Load() == p.ref
}

// CommitOptimistic applies the cache side effects a locked Lookup would
// have had — one hit, CLOCK reference bit set — for a probe that
// validated, against the cache generation the probe actually read. Call
// exactly once per successful optimistic operation.
func (r *RHIK) CommitOptimistic(p OptProbe) {
	p.cache.TouchHit(p.ref.h)
}

// OptimisticLookupCost is the simulated CPU charge for one optimistic
// lookup, identical to the locked path's per-op charge so the two paths
// produce byte-identical timelines.
func (r *RHIK) OptimisticLookupCost() sim.Duration { return r.cfg.CPUPerOp }

// Flush writes every dirty cached table to flash. Entries stay cached.
// An in-flight incremental migration is drained first so the persisted
// state is single-generation.
func (r *RHIK) Flush() error {
	if err := r.drainMigration(); err != nil {
		return err
	}
	var firstErr error
	dirs := r.g().dirs
	r.cache.Range(func(key uint64, e *tableEntry, _ int64) bool {
		if e.dirty {
			if err := r.writeTable(dirs, key, e); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	return r.checkIO()
}

// IndexStats implements index.StatsProvider.
func (r *RHIK) IndexStats() index.Stats {
	d := r.DirEntries()
	var sketchBytes int64
	if r.sketch != nil {
		sketchBytes = r.sketch.Bytes()
	}
	return index.Stats{
		Records:    r.n,
		Collisions: r.collisions,
		Resizes:    len(r.resizes),
		DirEntries: d,
		// Directory entries cost ~5 bytes (a flash page address) each in
		// integrated DRAM, plus the record-table cache and, when admission
		// is on, the frequency sketch.
		DRAMBytes: int64(d)*5 + r.cache.Used() + sketchBytes,
		Cache:     r.cache.Stats(),
	}
}

// CacheStats exposes the record-table cache counters (Fig. 5a).
func (r *RHIK) CacheStats() dram.Stats { return r.cache.Stats() }

// ResetCacheStats zeroes cache counters between experiment phases.
func (r *RHIK) ResetCacheStats() { r.cache.ResetStats() }

// ResizeCache implements index.CacheResizer, adjusting the DRAM budget
// for cached pages at runtime (dirty entries evicted by a shrink are
// written back through the usual path).
func (r *RHIK) ResizeCache(budget int64) { r.cache.Resize(budget) }
