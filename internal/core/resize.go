package core

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/sim"
)

// NeedsResize implements index.Resizer: true once total occupancy reaches
// the configured threshold (80 % by default, §IV-A2). While an
// incremental migration is in flight the index is already growing, so
// another resize never starts.
func (r *RHIK) NeedsResize() bool {
	if r.mig != nil {
		return false
	}
	return float64(r.n) >= r.cfg.OccupancyThreshold*float64(r.Capacity())
}

// ResizeEvents implements index.Resizer.
func (r *RHIK) ResizeEvents() []index.ResizeEvent { return r.resizes }

// Resize doubles the index (§IV-A2): the directory gains one bit, the
// record layer gains a second table per old bucket, and every record
// migrates using only its stored key signature — the KV pairs on flash
// are never read. The device halts the submission queue around this
// call, so the measured duration is the paper's "resizing time" (Fig. 7).
func (r *RHIK) Resize() error {
	if r.cfg.IncrementalResize {
		return r.startIncrementalResize()
	}
	start := r.env.Now()
	keysBefore := r.n

	oldD := len(r.dirs)
	newDirs := make([]dirEntry, 2*oldD)
	newCache := r.newCache(newDirs)
	lowBit := uint64(oldD) // the new directory bit

	// Migrate bucket by bucket. Each old bucket b splits into new buckets
	// b and b+oldD, decided by bit d of each record's signature.
	for b := uint64(0); b < uint64(oldD); b++ {
		var src *tableEntry
		if e, ok := r.cache.Remove(b); ok {
			src = e
		} else if r.dirs[b].has {
			data, err := r.env.ReadPage(r.dirs[b].ppa)
			if err != nil {
				return fmt.Errorf("core: resize read bucket %d: %w", b, err)
			}
			t := r.takeTable()
			if err := t.DecodeFrom(data); err != nil {
				r.recycle(t)
				return fmt.Errorf("core: resize decode bucket %d: %w", b, err)
			}
			src = r.takeEntry(t)
		}

		lowT := r.takeEntry(r.takeEmptyTable())
		lowT.dirty = true
		highT := r.takeEntry(r.takeEmptyTable())
		highT.dirty = true
		if src != nil {
			var migErr error
			r.env.ChargeCPU(sim.Duration(src.table.Len()) * r.cfg.MigrateCPUPerRecord)
			src.table.RangeWide(func(lo, hi, rp uint64) bool {
				dst := lowT
				if lo&lowBit != 0 {
					dst = highT
				}
				if _, err := dst.table.PutWide(lo, hi, rp); err != nil {
					migErr = fmt.Errorf("core: resize migration collision in bucket %d: %w", b, err)
					return false
				}
				return true
			})
			if migErr != nil {
				return migErr
			}
		}
		if src != nil {
			r.recycleEntry(src)
		}
		// Empty tables need no flash presence: leave their directory
		// entries unpersisted and skip caching.
		if lowT.table.Len() > 0 {
			newCache.Put(b, lowT, int64(lowT.table.EncodedBytes()))
		} else {
			r.recycleEntry(lowT)
		}
		if highT.table.Len() > 0 {
			newCache.Put(b+uint64(oldD), highT, int64(highT.table.EncodedBytes()))
		} else {
			r.recycleEntry(highT)
		}
		// The old persisted page is superseded.
		if r.dirs[b].has {
			r.env.Invalidate(r.dirs[b].ppa)
			delete(r.live, r.dirs[b].ppa)
		}
	}

	r.dirs = newDirs
	r.cache = newCache
	r.dBits++

	if err := r.checkIO(); err != nil {
		return err
	}
	r.resizes = append(r.resizes, index.ResizeEvent{
		KeysBefore:  keysBefore,
		NewCapacity: r.Capacity(),
		Took:        r.env.Now().Sub(start),
	})
	return nil
}
