package core

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/sim"
)

// NeedsResize implements index.Resizer: true once total occupancy reaches
// the configured threshold (80 % by default, §IV-A2). While an
// incremental migration is in flight the index is already growing, so
// another resize never starts.
func (r *RHIK) NeedsResize() bool {
	if r.mig != nil {
		return false
	}
	return float64(r.n) >= r.cfg.OccupancyThreshold*float64(r.Capacity())
}

// ResizeEvents implements index.Resizer.
func (r *RHIK) ResizeEvents() []index.ResizeEvent { return r.resizes }

// Resize doubles the index (§IV-A2): the directory gains one bit, the
// record layer gains a second table per old bucket, and every record
// migrates using only its stored key signature — the KV pairs on flash
// are never read. The device halts the submission queue around this
// call, so the measured duration is the paper's "resizing time" (Fig. 7).
func (r *RHIK) Resize() error {
	if r.cfg.IncrementalResize {
		return r.startIncrementalResize()
	}
	start := r.env.Now()
	keysBefore := r.n

	oldG := r.g()
	oldD := len(oldG.dirs)
	newG := newGeneration(2 * oldD)
	newG.cache = r.newCache(newG)
	newCache := newG.cache
	lowBit := uint64(oldD) // the new directory bit

	// Migrate bucket by bucket. Each old bucket b splits into new buckets
	// b and b+oldD, decided by bit d of each record's signature. The new
	// generation is private until the swap below, so optimistic readers
	// keep validating against the old generation: a bucket they probe is
	// either untouched (the read linearizes before the resize) or already
	// unpublished/poisoned (the read fails validation and escalates).
	for b := uint64(0); b < uint64(oldD); b++ {
		var src *tableEntry
		if e, ok := r.cache.Remove(b); ok {
			oldG.resident[b].Store(nil)
			e.table.Invalidate()
			src = e
		} else if oldG.dirs[b].has {
			data, err := r.env.ReadPage(oldG.dirs[b].ppa)
			if err != nil {
				return fmt.Errorf("core: resize read bucket %d: %w", b, err)
			}
			t := r.takeTable()
			if err := t.DecodeFrom(data); err != nil {
				r.recycle(t)
				return fmt.Errorf("core: resize decode bucket %d: %w", b, err)
			}
			src = r.takeEntry(t)
		}

		lowT := r.takeEntry(r.takeEmptyTable())
		lowT.dirty = true
		highT := r.takeEntry(r.takeEmptyTable())
		highT.dirty = true
		if src != nil {
			var migErr error
			r.env.ChargeCPU(sim.Duration(src.table.Len()) * r.cfg.MigrateCPUPerRecord)
			src.table.RangeWide(func(lo, hi, rp uint64) bool {
				dst := lowT
				if lo&lowBit != 0 {
					dst = highT
				}
				if _, err := dst.table.PutWide(lo, hi, rp); err != nil {
					migErr = fmt.Errorf("core: resize migration collision in bucket %d: %w", b, err)
					return false
				}
				return true
			})
			if migErr != nil {
				return migErr
			}
		}
		if src != nil {
			r.retireEntry(src)
		}
		// Empty tables need no flash presence: leave their directory
		// entries unpersisted and skip caching.
		if lowT.table.Len() > 0 {
			newCache.Put(b, lowT, int64(lowT.table.EncodedBytes()))
			r.publish(newG, b, lowT)
		} else {
			r.recycleEntry(lowT)
		}
		if highT.table.Len() > 0 {
			newCache.Put(b+uint64(oldD), highT, int64(highT.table.EncodedBytes()))
			r.publish(newG, b+uint64(oldD), highT)
		} else {
			r.recycleEntry(highT)
		}
		// The old persisted page is superseded.
		if oldG.dirs[b].has {
			r.env.Invalidate(oldG.dirs[b].ppa)
			delete(r.live, oldG.dirs[b].ppa)
		}
	}

	r.gen.Store(newG)
	r.cache = newCache
	r.dBits++

	if err := r.checkIO(); err != nil {
		return err
	}
	r.resizes = append(r.resizes, index.ResizeEvent{
		KeysBefore:  keysBefore,
		NewCapacity: r.Capacity(),
		Took:        r.env.Now().Sub(start),
	})
	return nil
}
