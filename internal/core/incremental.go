package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/index"
	"repro/internal/sim"
)

// migration is the in-flight state of an incremental re-configuration:
// the paper's "real-time index scaling" future-work direction (§VI).
// Instead of halting the submission queue and migrating every bucket at
// once, the directory is swapped immediately and buckets migrate lazily:
// each operation migrates the bucket it touches (the paper's suggested
// "hyper-local scaling") plus a small background quota, so the
// per-command cost is bounded and tail latency stays flat.
type migration struct {
	oldGen    *generation
	oldCache  *dram.Cache[*tableEntry]
	migrated  []bool
	cursor    uint64
	oldD      int
	started   sim.Time
	keys      int64
	remaining int
}

// Incremental reports whether lazy re-configuration is enabled.
func (r *RHIK) Incremental() bool { return r.cfg.IncrementalResize }

// Migrating reports whether an incremental migration is in flight.
func (r *RHIK) Migrating() bool { return r.mig != nil }

// startIncrementalResize swaps in a doubled directory and arms lazy
// migration. It performs no bucket work itself, so the submission queue
// halt is a few directory allocations long.
func (r *RHIK) startIncrementalResize() error {
	// A forced re-configuration (collision-driven, not occupancy-driven)
	// can arrive while a migration is in flight; finish it first so
	// oldDirs is always a complete generation.
	if r.mig != nil {
		if err := r.drainMigration(); err != nil {
			return err
		}
	}
	oldG := r.g()
	oldD := len(oldG.dirs)
	mig := &migration{
		oldGen:    oldG,
		oldCache:  r.cache,
		migrated:  make([]bool, oldD),
		oldD:      oldD,
		started:   r.env.Now(),
		keys:      r.n,
		remaining: oldD,
	}
	newG := newGeneration(2 * oldD)
	newG.cache = r.newCache(newG)
	// Publish the doubled generation before any bucket migrates: readers
	// that load it see nil resident slots for unmigrated buckets and
	// escalate; readers still holding the old generation keep validating
	// against it until migrateBucket unpublishes their bucket.
	r.gen.Store(newG)
	r.cache = newG.cache
	r.dBits++
	r.mig = mig
	return nil
}

// prepare makes sig's bucket safe to access under the new directory:
// migrate the touched bucket if needed, plus a background quota so the
// migration completes even over skewed workloads.
func (r *RHIK) prepare(sig index.Sig) error {
	if r.mig == nil {
		return nil
	}
	quota := r.cfg.MigrateStepBuckets
	for quota > 0 && r.mig != nil {
		b := r.mig.cursor
		if b >= uint64(r.mig.oldD) {
			break
		}
		r.mig.cursor++
		if r.mig.migrated[b] {
			continue
		}
		if err := r.migrateBucket(b); err != nil {
			return err
		}
		quota--
	}
	if r.mig == nil {
		return nil
	}
	oldB := sig.Lo & uint64(r.mig.oldD-1)
	if !r.mig.migrated[oldB] {
		return r.migrateBucket(oldB)
	}
	return nil
}

// migrateBucket moves one old-generation bucket into the doubled
// directory (at most one flash read, like any bucket access).
func (r *RHIK) migrateBucket(b uint64) error {
	mig := r.mig
	var src *tableEntry
	if e, ok := mig.oldCache.Remove(b); ok {
		// Unpublish from the old generation and poison the table before
		// its records move: an optimistic reader still probing the old
		// generation fails validation instead of seeing a stale bucket.
		mig.oldGen.resident[b].Store(nil)
		e.table.Invalidate()
		src = e
	} else if mig.oldGen.dirs[b].has {
		data, err := r.env.ReadPage(mig.oldGen.dirs[b].ppa)
		if err != nil {
			return fmt.Errorf("core: incremental migrate bucket %d: %w", b, err)
		}
		t := r.takeTable()
		if err := t.DecodeFrom(data); err != nil {
			r.recycle(t)
			return fmt.Errorf("core: incremental decode bucket %d: %w", b, err)
		}
		src = r.takeEntry(t)
	}

	lowT := r.takeEntry(r.takeEmptyTable())
	lowT.dirty = true
	highT := r.takeEntry(r.takeEmptyTable())
	highT.dirty = true
	lowBit := uint64(mig.oldD)
	if src != nil {
		var migErr error
		r.env.ChargeCPU(sim.Duration(src.table.Len()) * r.cfg.MigrateCPUPerRecord)
		src.table.RangeWide(func(lo, hi, rp uint64) bool {
			dst := lowT
			if lo&lowBit != 0 {
				dst = highT
			}
			if _, err := dst.table.PutWide(lo, hi, rp); err != nil {
				migErr = fmt.Errorf("core: incremental migration collision in bucket %d: %w", b, err)
				return false
			}
			return true
		})
		if migErr != nil {
			return migErr
		}
		r.retireEntry(src)
	}
	g := r.g()
	if lowT.table.Len() > 0 {
		r.cache.Put(b, lowT, int64(lowT.table.EncodedBytes()))
		r.publish(g, b, lowT)
	} else {
		r.recycleEntry(lowT)
	}
	if highT.table.Len() > 0 {
		r.cache.Put(b+uint64(mig.oldD), highT, int64(highT.table.EncodedBytes()))
		r.publish(g, b+uint64(mig.oldD), highT)
	} else {
		r.recycleEntry(highT)
	}
	if mig.oldGen.dirs[b].has {
		r.env.Invalidate(mig.oldGen.dirs[b].ppa)
		delete(r.live, mig.oldGen.dirs[b].ppa)
		mig.oldGen.dirs[b].has = false
	}
	mig.migrated[b] = true
	mig.remaining--
	if mig.remaining == 0 {
		r.finishMigration()
	}
	return nil
}

// finishMigration retires the old generation and records the resize.
func (r *RHIK) finishMigration() {
	mig := r.mig
	r.mig = nil
	r.resizes = append(r.resizes, index.ResizeEvent{
		KeysBefore:  mig.keys,
		NewCapacity: r.Capacity(),
		Took:        r.env.Now().Sub(mig.started),
	})
}

// drainMigration migrates every remaining bucket (used before flushes,
// checkpoints, and explicit Resize calls so state is single-generation).
func (r *RHIK) drainMigration() error {
	for r.mig != nil {
		// Find the next unmigrated bucket.
		b := uint64(0)
		found := false
		for i, done := range r.mig.migrated {
			if !done {
				b = uint64(i)
				found = true
				break
			}
		}
		if !found {
			r.finishMigration()
			break
		}
		if err := r.migrateBucket(b); err != nil {
			return err
		}
	}
	return nil
}
