package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nand"
)

// stateMagic versions the serialized directory format.
const stateMagic = "RHIKDR1\x00"

// EncodeState implements index.Checkpointer: it serializes the
// DRAM-resident directory layer — the paper's "periodically updated
// persistent copy of the D entries". Call Flush first so every directory
// entry points at current flash pages.
func (r *RHIK) EncodeState() []byte {
	dirs := r.g().dirs
	buf := make([]byte, 0, len(stateMagic)+1+8+8+len(dirs)*9)
	buf = append(buf, stateMagic...)
	buf = append(buf, byte(r.dBits))
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(r.n))
	buf = append(buf, n8[:]...)
	binary.LittleEndian.PutUint64(n8[:], uint64(r.collisions))
	buf = append(buf, n8[:]...)
	for _, d := range dirs {
		has := byte(0)
		if d.has {
			has = 1
		}
		buf = append(buf, has)
		binary.LittleEndian.PutUint64(n8[:], uint64(d.ppa))
		buf = append(buf, n8[:]...)
	}
	return buf
}

// LoadState implements index.Checkpointer, restoring a directory
// serialized by EncodeState. The record-table cache starts cold.
func (r *RHIK) LoadState(data []byte) error {
	if len(data) < len(stateMagic)+17 || string(data[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("core: bad checkpoint header")
	}
	p := len(stateMagic)
	dBits := int(data[p])
	p++
	n := int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	collisions := int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	d := 1 << dBits
	if len(data) < p+9*d {
		return fmt.Errorf("core: truncated checkpoint: %d entries expected", d)
	}
	g := newGeneration(d)
	live := make(map[nand.PPA]uint64, d)
	for i := range g.dirs {
		has := data[p] == 1
		p++
		ppa := nand.PPA(binary.LittleEndian.Uint64(data[p:]))
		p += 8
		g.dirs[i] = dirEntry{ppa: ppa, has: has}
		if has {
			live[ppa] = uint64(i)
		}
	}
	g.cache = r.newCache(g)
	r.dBits = dBits
	r.live = live
	r.n = n
	r.collisions = collisions
	// The previous generation's cached entries are dropped wholesale (no
	// eviction callbacks, no pool recycling), so a reader racing a device
	// restart — already fenced out by the device's structure-mutation
	// sequence — can never see their tables reused.
	r.gen.Store(g)
	r.cache = g.cache
	return nil
}

// PersistentPages implements index.Checkpointer: the flash pages the
// encoded directory references.
func (r *RHIK) PersistentPages() []nand.PPA {
	dirs := r.g().dirs
	pages := make([]nand.PPA, 0, len(dirs))
	for _, d := range dirs {
		if d.has {
			pages = append(pages, d.ppa)
		}
	}
	return pages
}

// Owner implements index.Relocator: page p is live while some directory
// entry points at it.
func (r *RHIK) Owner(p nand.PPA) (uint64, bool) {
	bucket, ok := r.live[p]
	return bucket, ok
}

// BucketRecords returns the record pointers stored in the given directory
// bucket (at most one flash read). The device's prefix iterator uses it:
// with iterator-mode signatures, every key sharing a prefix maps to one
// bucket, so enumeration scans a single record table (§VI).
func (r *RHIK) BucketRecords(bucket uint64) ([]uint64, error) {
	defer r.releaseTransients()
	if bucket >= uint64(len(r.g().dirs)) {
		return nil, fmt.Errorf("core: bucket %d out of range", bucket)
	}
	if r.mig != nil {
		if oldB := bucket & uint64(r.mig.oldD-1); !r.mig.migrated[oldB] {
			if err := r.migrateBucket(oldB); err != nil {
				return nil, err
			}
		}
	}
	e, err := r.loadTable(bucket)
	if err != nil {
		return nil, err
	}
	rps := make([]uint64, 0, e.table.Len())
	e.table.Range(func(_, rp uint64) bool {
		rps = append(rps, rp)
		return true
	})
	return rps, r.checkIO()
}

// RangeRecords implements index.RecordEnumerator: every live record
// with its full signature, bucket by bucket. Any in-flight incremental
// re-configuration is drained first so each record appears exactly once
// under the current directory generation. Buckets that are neither
// cached nor backed by a flash page hold no records and are skipped;
// the rest load through the cache, charging enumeration's flash reads
// to the simulated timeline like any other index access.
func (r *RHIK) RangeRecords(f func(lo, hi, rp uint64) bool) error {
	defer r.releaseTransients()
	if r.mig != nil {
		if err := r.drainMigration(); err != nil {
			return err
		}
	}
	g := r.g()
	stop := false
	for bucket := range g.dirs {
		if _, cached := r.cache.Get(uint64(bucket)); !cached && !g.dirs[bucket].has {
			continue
		}
		e, err := r.loadTable(uint64(bucket))
		if err != nil {
			return err
		}
		e.table.RangeWide(func(lo, hi, rp uint64) bool {
			if !f(lo, hi, rp) {
				stop = true
			}
			return !stop
		})
		if stop {
			break
		}
	}
	return r.checkIO()
}

// PrefixRecords implements index.PrefixScanner: with iterator-mode
// signatures every key sharing a prefix maps to directory bucket
// (low mod D), so the scan is one bucket enumeration — at most one flash
// read, the same guarantee as a point lookup.
func (r *RHIK) PrefixRecords(low uint32) ([]uint64, error) {
	return r.BucketRecords(uint64(low) & uint64(len(r.g().dirs)-1))
}

// Relocate implements index.Relocator: the bucket's record table is
// loaded (DRAM or one flash read) and rewritten to a fresh page, freeing
// the victim block's copy. A page still owned by the previous directory
// generation is relocated by simply migrating its bucket, which
// invalidates the old copy.
func (r *RHIK) Relocate(bucket uint64) error {
	defer r.releaseTransients()
	if r.mig != nil && bucket < uint64(r.mig.oldD) && !r.mig.migrated[bucket] {
		return r.migrateBucket(bucket)
	}
	e, err := r.loadTable(bucket)
	if err != nil {
		return err
	}
	if err := r.writeTable(r.g().dirs, bucket, e); err != nil {
		return err
	}
	return r.checkIO()
}
