package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/sim"
)

func newIncrementalRHIK(t *testing.T, cfg Config) (*RHIK, *memEnv) {
	t.Helper()
	cfg.IncrementalResize = true
	return newTestRHIK(t, cfg)
}

func TestIncrementalResizeStartsFast(t *testing.T) {
	r, env := newIncrementalRHIK(t, Config{PageSize: 1024})
	rng := rand.New(rand.NewSource(1))
	for !r.NeedsResize() {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	before := env.Now()
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	if !r.Migrating() {
		t.Fatal("incremental resize did not arm a migration")
	}
	if took := env.Now().Sub(before); took > sim.Millisecond {
		t.Fatalf("incremental resize start took %v, want near-zero halt", took)
	}
	if r.DirEntries() != 2 {
		t.Fatalf("directory not doubled: %d", r.DirEntries())
	}
}

func TestIncrementalMigrationPreservesRecords(t *testing.T) {
	r, _ := newIncrementalRHIK(t, Config{PageSize: 512})
	rng := rand.New(rand.NewSource(2))
	inserted := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), uint64(i+1)); err != nil {
			if errors.Is(err, index.ErrCollision) {
				continue
			}
			t.Fatal(err)
		}
		inserted[lo] = uint64(i + 1)
		if r.NeedsResize() {
			if err := r.Resize(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Some migrations complete lazily through the inserts themselves;
	// every record must be reachable mid-flight and after draining.
	for lo, rp := range inserted {
		got, ok, err := r.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Migrating() {
		t.Fatal("Flush did not drain migration")
	}
	if len(r.ResizeEvents()) == 0 {
		t.Fatal("no resize events recorded")
	}
}

func TestIncrementalDeletesAndUpdatesDuringMigration(t *testing.T) {
	r, _ := newIncrementalRHIK(t, Config{PageSize: 512, MigrateStepBuckets: 1})
	rng := rand.New(rand.NewSource(3))
	oracle := map[uint64]uint64{}
	keys := []uint64{}
	for i := 0; i < 4000; i++ {
		var lo uint64
		if len(keys) > 0 && i%3 == 0 {
			lo = keys[rng.Intn(len(keys))]
		} else {
			lo = rng.Uint64()
		}
		switch i % 5 {
		case 4:
			_, ok, err := r.Delete(sig64(lo))
			if err != nil {
				t.Fatal(err)
			}
			if _, exists := oracle[lo]; exists != ok {
				t.Fatalf("op %d: delete ok=%v oracle=%v", i, ok, exists)
			}
			delete(oracle, lo)
		default:
			rp := rng.Uint64() % (1 << 39)
			if _, _, err := r.Insert(sig64(lo), rp); err != nil {
				if errors.Is(err, index.ErrCollision) {
					continue
				}
				t.Fatal(err)
			}
			if _, dup := oracle[lo]; !dup {
				keys = append(keys, lo)
			}
			oracle[lo] = rp
		}
		if r.NeedsResize() {
			if err := r.Resize(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r.Len() != int64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", r.Len(), len(oracle))
	}
	for lo, rp := range oracle {
		got, ok, err := r.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
}

func TestIncrementalRelocateOldGenerationPage(t *testing.T) {
	r, env := newIncrementalRHIK(t, Config{PageSize: 512, MigrateStepBuckets: 1})
	rng := rand.New(rand.NewSource(4))
	for !r.NeedsResize() {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	if err := r.Flush(); err != nil { // persist pre-resize tables
		t.Fatal(err)
	}
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	if !r.Migrating() {
		t.Fatal("not migrating")
	}
	// Relocate an old-generation page mid-migration: it must migrate the
	// bucket and invalidate the old copy.
	var oldPPA, unit uint64
	found := false
	for p := range env.pages {
		if u, live := r.Owner(p); live {
			oldPPA, unit, found = uint64(p), u, true
			break
		}
	}
	if !found {
		t.Skip("all pages already migrated (cache covered everything)")
	}
	if err := r.Relocate(unit); err != nil {
		t.Fatal(err)
	}
	if _, live := r.Owner(0); live && uint64(0) == oldPPA {
		t.Fatal("old page still live")
	}
}

func TestIncrementalCheckpointConsistency(t *testing.T) {
	// A checkpoint (Flush + EncodeState) taken mid-migration must
	// restore to a complete single-generation index.
	r, env := newIncrementalRHIK(t, Config{PageSize: 512})
	rng := rand.New(rand.NewSource(5))
	inserted := map[uint64]uint64{}
	for i := 0; len(inserted) < 2000; i++ {
		lo := rng.Uint64()
		if _, _, err := r.Insert(sig64(lo), uint64(i+1)); err == nil {
			inserted[lo] = uint64(i + 1)
		}
		if r.NeedsResize() {
			r.Resize()
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	state := r.EncodeState()

	r2, err := New(Config{PageSize: 512, IncrementalResize: true}, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	for lo, rp := range inserted {
		got, ok, err := r2.Lookup(sig64(lo))
		if err != nil || !ok || got != rp {
			t.Fatalf("restored Lookup(%#x) = (%d,%v,%v), want %d", lo, got, ok, err, rp)
		}
	}
}

func TestIncrementalMaxOpCostBounded(t *testing.T) {
	// The point of incremental resizing: no single operation pays for a
	// full migration. Compare the worst per-op time around the growth of
	// a large index in both modes.
	worst := func(incremental bool) sim.Duration {
		env := newMemEnv()
		cfg := Config{PageSize: 4096, AnticipatedKeys: 20000, IncrementalResize: incremental}
		r, err := New(cfg, env)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		var worst sim.Duration
		for i := 0; i < 30000; i++ {
			before := env.Now()
			if _, _, err := r.Insert(sig64(rng.Uint64()), 1); err != nil &&
				!errors.Is(err, index.ErrCollision) {
				t.Fatal(err)
			}
			if r.NeedsResize() {
				if err := r.Resize(); err != nil {
					t.Fatal(err)
				}
			}
			if d := env.Now().Sub(before); d > worst {
				worst = d
			}
		}
		return worst
	}
	halt := worst(false)
	incr := worst(true)
	if incr*4 > halt {
		t.Fatalf("incremental worst op %v not well below stop-the-world %v", incr, halt)
	}
}
