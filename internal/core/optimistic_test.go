package core

import (
	"math/rand"
	"testing"

	"repro/internal/epoch"
	"repro/internal/index"
)

// optRHIK builds a RHIK with an epoch domain attached, the configuration
// the lock-free device tier runs it under, and returns a pin the test
// holds for its whole probe/validate lifetime (mirroring the device).
func optRHIK(t *testing.T, cfg Config) (*RHIK, *epoch.Domain, epoch.Pin) {
	t.Helper()
	dom := epoch.NewDomain()
	cfg.Reclaim = dom
	r, _ := newTestRHIK(t, cfg)
	pin, ok := dom.TryPin()
	if !ok {
		t.Fatal("fresh domain refused a pin")
	}
	t.Cleanup(func() { dom.Unpin(pin) })
	return r, dom, pin
}

// TestOptimisticProbePrecision pins how narrowly invalidation is scoped:
// a probe stays valid across writes to OTHER buckets and dies on the
// first write to its own.
func TestOptimisticProbePrecision(t *testing.T) {
	r, _, _ := optRHIK(t, Config{PageSize: 1024, AnticipatedKeys: 4096})
	d := uint64(r.DirEntries())
	if d < 2 {
		t.Fatalf("anticipated sizing produced %d buckets, need several", d)
	}
	sigA := sig64(0) // bucket 0
	if _, _, err := r.Insert(sigA, 7); err != nil {
		t.Fatal(err)
	}
	p, st := r.PeekOptimistic(sigA)
	if st != index.OptOK || !p.Found || p.RP != 7 {
		t.Fatalf("probe = (%+v, %v), want OK/found/rp=7", p, st)
	}
	// A write to bucket 1 must not disturb the probe.
	if _, _, err := r.Insert(sig64(1), 8); err != nil {
		t.Fatal(err)
	}
	if !r.RevalidateOptimistic(p) {
		t.Fatal("write to another bucket invalidated the probe")
	}
	// A write to bucket 0 (same bucket, different key) must kill it.
	if _, _, err := r.Insert(sig64(d), 9); err != nil {
		t.Fatal(err)
	}
	if r.RevalidateOptimistic(p) {
		t.Fatal("write to the probed bucket left the probe valid")
	}
	// Deletes count too: re-probe, delete the neighbor, revalidate.
	p, st = r.PeekOptimistic(sigA)
	if st != index.OptOK {
		t.Fatalf("re-probe status %v", st)
	}
	if _, _, err := r.Delete(sig64(d)); err != nil {
		t.Fatal(err)
	}
	if r.RevalidateOptimistic(p) {
		t.Fatal("delete in the probed bucket left the probe valid")
	}
}

// TestOptimisticProbeInvalidatedByResize: a stop-the-world resize
// retires every old-generation table, so a probe taken before it must
// fail revalidation, and a fresh probe must find the record in the new
// generation at the same record pointer.
func TestOptimisticProbeInvalidatedByResize(t *testing.T) {
	r, _, _ := optRHIK(t, Config{PageSize: 1024})
	rng := rand.New(rand.NewSource(11))
	probeSig := sig64(rng.Uint64())
	if _, _, err := r.Insert(probeSig, 42); err != nil {
		t.Fatal(err)
	}
	for !r.NeedsResize() {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	p, st := r.PeekOptimistic(probeSig)
	if st != index.OptOK || !p.Found || p.RP != 42 {
		t.Fatalf("pre-resize probe = (%+v, %v), want OK/found/rp=42", p, st)
	}
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	if r.RevalidateOptimistic(p) {
		t.Fatal("full resize left a pre-resize probe valid")
	}
	p, st = r.PeekOptimistic(probeSig)
	if st != index.OptOK || !p.Found || p.RP != 42 {
		t.Fatalf("post-resize probe = (%+v, %v), want OK/found/rp=42", p, st)
	}
	if !r.RevalidateOptimistic(p) {
		t.Fatal("post-resize probe does not revalidate")
	}
}

// TestOptimisticProbeInvalidatedByEviction: CLOCK eviction unpublishes
// the resident slot and poisons the table before the entry is retired,
// so a probe into an evicted bucket must fail revalidation rather than
// chase a recycled table.
func TestOptimisticProbeInvalidatedByEviction(t *testing.T) {
	r, dom, _ := optRHIK(t, Config{
		PageSize:        1024,
		AnticipatedKeys: 4096,
		CacheBudget:     3 * 1024, // room for ~2 tables: inserts elsewhere must evict
	})
	d := uint64(r.DirEntries())
	if d < 8 {
		t.Fatalf("anticipated sizing produced %d buckets, need several", d)
	}
	sigA := sig64(0)
	if _, _, err := r.Insert(sigA, 7); err != nil {
		t.Fatal(err)
	}
	p, st := r.PeekOptimistic(sigA)
	if st != index.OptOK {
		t.Fatalf("probe status %v", st)
	}
	evicted := false
	for b := uint64(1); b < d; b++ {
		if _, _, err := r.Insert(sig64(b), b); err != nil {
			t.Fatal(err)
		}
		if !r.SharedLookupReady(sigA) {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("filling other buckets never evicted the probed table")
	}
	if r.RevalidateOptimistic(p) {
		t.Fatal("eviction left the probe valid")
	}
	// The retired table must still be deferred behind this test's pin.
	if dom.Pending() == 0 {
		t.Fatal("evicted table was recycled immediately despite a live pin")
	}
}

// TestOptimisticUnmigratedBucketEscalates pins the incremental-resize
// hand-off: after the directory swap every bucket reads OptNeedExclusive
// (nil resident slot in the new generation), a pre-swap probe stays
// valid until ITS bucket migrates, and once an exclusive operation
// migrates and publishes the bucket, probes go lock-free again at the
// same record pointer.
func TestOptimisticUnmigratedBucketEscalates(t *testing.T) {
	r, _, _ := optRHIK(t, Config{PageSize: 1024, IncrementalResize: true})
	rng := rand.New(rand.NewSource(12))
	probeSig := sig64(rng.Uint64())
	if _, _, err := r.Insert(probeSig, 42); err != nil {
		t.Fatal(err)
	}
	for !r.NeedsResize() {
		r.Insert(sig64(rng.Uint64()), 1)
	}
	pre, st := r.PeekOptimistic(probeSig)
	if st != index.OptOK {
		t.Fatalf("pre-swap probe status %v", st)
	}
	if err := r.Resize(); err != nil {
		t.Fatal(err)
	}
	if !r.Migrating() {
		t.Fatal("incremental resize did not arm a migration")
	}
	// The swap alone moves no records: the old-generation probe is still
	// an accurate read of the index.
	if !r.RevalidateOptimistic(pre) {
		t.Fatal("directory swap invalidated a probe whose bucket is untouched")
	}
	// But the new generation has produced no buckets yet, so a fresh
	// probe must escalate.
	if _, st := r.PeekOptimistic(probeSig); st != index.OptNeedExclusive {
		t.Fatalf("unmigrated bucket probe status %v, want OptNeedExclusive", st)
	}
	// An exclusive lookup migrates the touched bucket, which unpublishes
	// and poisons its old table...
	if rp, ok, err := r.Lookup(probeSig); err != nil || !ok || rp != 42 {
		t.Fatalf("Lookup = (%d,%v,%v), want 42", rp, ok, err)
	}
	if r.RevalidateOptimistic(pre) {
		t.Fatal("bucket migration left the pre-swap probe valid")
	}
	// ...and publishes the new one: lock-free service resumes.
	p, st := r.PeekOptimistic(probeSig)
	if st != index.OptOK || !p.Found || p.RP != 42 {
		t.Fatalf("post-migration probe = (%+v, %v), want OK/found/rp=42", p, st)
	}
	if !r.RevalidateOptimistic(p) {
		t.Fatal("post-migration probe does not revalidate")
	}
}
