// Package lintest checks concurrent histories of the shard front-end
// for linearizability. The optimistic read path serves GETs with no
// shard-level lock, validated only by seqlock versions under an epoch
// pin; the property that makes that safe is not mutual exclusion but
// linearizability — every read must be explainable as happening at one
// instant between its invocation and response. This package provides
// the per-key register checker (Wing & Gong search with memoization)
// and, in its external tests, the racing harness that feeds it.
package lintest

// Op is one completed operation on a single key, treated as a register
// of uint64 values. Timestamps come from one shared monotonic counter:
// Start is drawn immediately before the call, End immediately after it
// returns, so A happened strictly before B iff A.End < B.Start.
//
// Writes carry the value written; a delete is a write of zero. Reads
// carry the value observed; not-found reads observe zero. Zero is
// therefore reserved — live writes must use non-zero values.
type Op struct {
	Start, End uint64
	Write      bool
	Value      uint64
}

// MaxOps is the largest history Check accepts. The search memoizes on a
// bitmask of linearized operations packed beside the last-write index,
// which caps the history length; harnesses must bound each key's
// per-window history below this.
const MaxOps = 57

// Check reports whether ops is a linearizable history of a single
// register whose initial value is init.
//
// The search is Wing & Gong's: pick any operation that is minimal in
// the real-time order (no other remaining operation finished before it
// started), apply it to the register — a write always applies, a read
// applies only if it observed the current value — and recurse on the
// rest. The history is linearizable iff some order linearizes every
// operation. Failed states are memoized on (linearized-set, index of
// last linearized write): the register value is a function of that
// pair, so revisiting it cannot succeed either. Worst case is
// exponential, but real histories are mostly sequential — only
// operations whose intervals overlap permute — so the memoized search
// is fast at the window sizes the harness produces.
//
// Check panics if len(ops) exceeds MaxOps.
func Check(init uint64, ops []Op) bool {
	n := len(ops)
	if n > MaxOps {
		panic("lintest: history longer than MaxOps; shrink the harness window")
	}
	if n == 0 {
		return true
	}
	full := uint64(1)<<n - 1
	// failed[key] records (done, lastWrite) states proven dead. Key
	// layout: done occupies the low n (≤57) bits, lastWrite+1 (0 meaning
	// "no write linearized yet, register holds init") the top 6.
	failed := make(map[uint64]struct{})
	var dfs func(done uint64, cur uint64, lastWrite int) bool
	dfs = func(done uint64, cur uint64, lastWrite int) bool {
		if done == full {
			return true
		}
		key := done | uint64(lastWrite+1)<<58
		if _, dead := failed[key]; dead {
			return false
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			minimal := true
			for j := 0; j < n; j++ {
				if j != i && done&(1<<j) == 0 && ops[j].End < ops[i].Start {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			if ops[i].Write {
				if dfs(done|1<<i, ops[i].Value, i) {
					return true
				}
			} else if ops[i].Value == cur {
				if dfs(done|1<<i, cur, lastWrite) {
					return true
				}
			}
		}
		failed[key] = struct{}{}
		return false
	}
	return dfs(0, init, -1)
}
