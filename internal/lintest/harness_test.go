package lintest_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/lintest"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestOptimisticLinearizable is the harness the optimistic read path
// answers to: 8 reader goroutines and 2 writer goroutines race over 24
// shared keys on ONE shard while 2 churn writers grow a disjoint key
// range hard enough to keep incremental re-configurations, cache
// evictions, and GC cycling underneath. Every completed operation is
// timestamped from one shared monotonic counter and fed per key into
// the Wing & Gong checker; any non-linearizable window — a torn read, a
// stale value resurrected after a delete, a read that travels backwards
// in time — fails the test.
//
// The run is organized as bursts with a barrier between them. The
// barrier keeps each key's per-window history under the checker's
// MaxOps cap, and the quiesced read after each burst both joins that
// burst's history (so it is itself checked) and seeds the next window's
// initial register value. Writer 0 additionally hammers key 0
// back-to-back inside each burst so that seqlock invalidations — a
// writer bumping a bucket version inside a reader's probe-to-validate
// window — actually occur, not just the easier fallback cases.
//
// The harness insists the interesting machinery fired: the run must
// observe optimistic retries (seqlock invalidations), exclusive
// fallbacks (unmigrated buckets / pending pairs), and epoch pins, or
// the schedule silently stopped exercising the lock-free path and the
// test lost its meaning. Run under -race in CI.
func TestOptimisticLinearizable(t *testing.T) {
	set, err := shard.New(1, device.Config{
		Capacity:          64 << 20,
		IncrementalResize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	const (
		sharedKeys   = 24
		readers      = 8
		readsPer     = 48 // per reader per burst; exactly 2 per key
		writers      = 2
		writesPer    = 24 // per writer per burst; exactly 1 per key
		hotWrites    = 24 // writer 0's extra back-to-back stores of key 0
		churnWriters = 2
		churnPer     = 400
		churnBase    = 1 << 20
		minBursts    = 4
		maxBursts    = 60
	)

	var (
		clock  atomic.Uint64 // logical timestamps
		valIDs atomic.Uint64 // unique non-zero write values
	)
	key := func(k uint64) []byte { return workload.KeyBytes(k) }
	encode := func(id uint64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], id)
		return b[:]
	}

	// timedStore / timedDelete / timedRead wrap one shard call in clock
	// draws and return the Op to record.
	timedStore := func(k uint64) (lintest.Op, error) {
		id := valIDs.Add(1)
		start := clock.Add(1)
		err := set.Store(key(k), encode(id))
		return lintest.Op{Start: start, End: clock.Add(1), Write: true, Value: id}, err
	}
	timedDelete := func(k uint64) (lintest.Op, error) {
		start := clock.Add(1)
		err := set.Delete(key(k))
		if errors.Is(err, device.ErrNotFound) {
			// Deleting an absent key is a no-op write of zero: under the
			// shard's write lock the register provably held zero at that
			// instant, so the op linearizes there.
			err = nil
		}
		return lintest.Op{Start: start, End: clock.Add(1), Write: true, Value: 0}, err
	}
	timedRead := func(dst []byte, k uint64) (lintest.Op, []byte, error) {
		start := clock.Add(1)
		v, err := set.RetrieveAppend(dst[:0], key(k))
		end := clock.Add(1)
		switch {
		case errors.Is(err, device.ErrNotFound):
			return lintest.Op{Start: start, End: end}, dst, nil
		case err != nil:
			return lintest.Op{}, dst, err
		case len(v) != 8:
			return lintest.Op{}, v, fmt.Errorf("key %d: %d-byte value, want 8", k, len(v))
		}
		return lintest.Op{Start: start, End: end, Value: binary.BigEndian.Uint64(v)}, v, nil
	}

	type rec struct {
		key uint64
		op  lintest.Op
	}
	init := make([]uint64, sharedKeys) // register value each window starts from
	churnID := uint64(0)
	fired := func() bool {
		st := set.Stats()
		return st.OptimisticRetries > 0 && st.FallbackExclusive > 0 && st.EpochPins > 0
	}

	// One snapshot capture per burst, taken while the burst is in full
	// flight. The capture window [start, end] brackets the Snapshot()
	// call on the shared clock; the frozen values are read afterwards
	// (concurrently with the still-running writers — MVCC's whole claim
	// is that the view no longer moves) and handed to SnapshotCheck at
	// quiesce: some single instant inside the window must explain every
	// key's observed value at once.
	type snapResult struct {
		start, end uint64
		vals       []uint64
		err        error
	}

	burst := 0
	for ; burst < maxBursts; burst++ {
		var wg sync.WaitGroup
		errc := make(chan error, readers+writers+churnWriters)
		logs := make([][]rec, readers+writers) // one op log per checked worker
		windowInit := append([]uint64(nil), init...)
		snapc := make(chan snapResult, 1)

		wg.Add(1)
		go func() {
			defer wg.Done()
			res := snapResult{vals: make([]uint64, sharedKeys)}
			res.start = clock.Add(1)
			ss, err := set.Snapshot()
			res.end = clock.Add(1)
			if err != nil {
				res.err = fmt.Errorf("snapshot: %w", err)
				snapc <- res
				return
			}
			defer ss.Release()
			for k := uint64(0); k < sharedKeys; k++ {
				v, err := ss.Get(key(k))
				switch {
				case errors.Is(err, device.ErrNotFound):
					// absent = register value 0, same convention as reads
				case err != nil:
					res.err = fmt.Errorf("snapshot get key %d: %w", k, err)
					snapc <- res
					return
				case len(v) != 8:
					res.err = fmt.Errorf("snapshot get key %d: %d-byte value, want 8", k, len(v))
					snapc <- res
					return
				default:
					res.vals[k] = binary.BigEndian.Uint64(v)
				}
			}
			snapc <- res
		}()

		for rd := 0; rd < readers; rd++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				dst := make([]byte, 0, 16)
				log := make([]rec, 0, readsPer)
				for i := 0; i < readsPer; i++ {
					k := (uint64(w)*3 + uint64(i)) % sharedKeys
					op, v, err := timedRead(dst, k)
					if err != nil {
						errc <- fmt.Errorf("reader %d: %w", w, err)
						return
					}
					dst = v
					log = append(log, rec{key: k, op: op})
				}
				logs[w] = log
			}(rd)
		}
		for wr := 0; wr < writers; wr++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				log := make([]rec, 0, writesPer+hotWrites)
				for i := 0; i < writesPer; i++ {
					k := (uint64(w)*5 + uint64(i)*7) % sharedKeys
					var op lintest.Op
					var err error
					if i%5 == 3 {
						op, err = timedDelete(k)
					} else {
						op, err = timedStore(k)
					}
					if err != nil {
						errc <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
					log = append(log, rec{key: k, op: op})
					if w == 0 {
						// Hammer key 0 back-to-back: version bumps landing
						// inside reader validation windows force retries.
						op, err := timedStore(0)
						if err != nil {
							errc <- fmt.Errorf("writer %d hot: %w", w, err)
							return
						}
						log = append(log, rec{key: 0, op: op})
					}
				}
				logs[readers+w] = log
			}(wr)
		}
		for cw := 0; cw < churnWriters; cw++ {
			wg.Add(1)
			go func(w int, base uint64) {
				defer wg.Done()
				for i := uint64(0); i < churnPer; i++ {
					id := churnBase + base + uint64(w)*churnPer + i
					k := workload.KeyBytes(id)
					if err := set.Store(k, encode(valIDs.Add(1))); err != nil {
						errc <- fmt.Errorf("churn %d: %w", w, err)
						return
					}
					if i%6 == 5 {
						if err := set.Delete(k); err != nil {
							errc <- fmt.Errorf("churn %d delete: %w", w, err)
							return
						}
					}
				}
			}(cw, churnID)
		}
		churnID += churnWriters * churnPer
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}

		// Quiesced: group the window per key, close each history with a
		// final read (itself part of the checked history), verify, and
		// seed the next window.
		hist := make([][]lintest.Op, sharedKeys)
		for _, log := range logs {
			for _, r := range log {
				hist[r.key] = append(hist[r.key], r.op)
			}
		}
		dst := make([]byte, 0, 16)
		for k := 0; k < sharedKeys; k++ {
			op, v, err := timedRead(dst, uint64(k))
			if err != nil {
				t.Fatal(err)
			}
			dst = v
			hist[k] = append(hist[k], op)
			// MaxOps-1: the snapshot check joins one zero-width read to
			// each history below.
			if len(hist[k]) > lintest.MaxOps-1 {
				t.Fatalf("burst %d key %d: %d ops exceeds checker cap %d",
					burst, k, len(hist[k]), lintest.MaxOps-1)
			}
			if !lintest.Check(init[k], hist[k]) {
				t.Fatalf("burst %d key %d: history of %d ops is NOT linearizable from init=%d: %+v",
					burst, k, len(hist[k]), init[k], hist[k])
			}
			init[k] = op.Value
		}

		// Snapshot consistency: the frozen values must be the registers'
		// state at ONE instant inside the capture window, across every
		// key at once — a capture that tore across a write (kept a later
		// write but missed an earlier, completed one) fails here.
		snap := <-snapc
		if snap.err != nil {
			t.Fatalf("burst %d: %v", burst, snap.err)
		}
		if !lintest.SnapshotCheck(windowInit, snap.vals, hist, snap.start, snap.end) {
			t.Fatalf("burst %d: snapshot in window [%d, %d] observed values %v, inconsistent with per-key histories",
				burst, snap.start, snap.end, snap.vals)
		}

		if burst+1 >= minBursts && fired() {
			break
		}
	}

	// Contention phase, reached when the bursts produced no seqlock
	// retry (the common case on a single-CPU host: the probe-to-validate
	// window is tens of nanoseconds, so a writer almost never lands a
	// version bump inside it). Widen the window instead of praying: one
	// hot key holds a multi-page value, so an optimistic read spends
	// nearly all its time between probe and final validation assembling
	// extents. Whenever the scheduler preempts a reader inside that span,
	// the writer loop stores the same key before the reader resumes — its
	// version bump fails the reader's revalidation, which is exactly the
	// ErrOptimisticRetry path this harness must prove harmless. Readers
	// verify a whole-value integrity pattern, so a torn extent assembly
	// (pages from two different versions) cannot go unnoticed.
	if st := set.Stats(); st.OptimisticRetries == 0 {
		const hotSize = 32 << 10
		hotKey := workload.KeyBytes(1 << 30) // outside the checked and churn ranges
		hotVal := func(id uint64) []byte {
			v := make([]byte, hotSize)
			binary.BigEndian.PutUint64(v, id)
			for j := 8; j < hotSize; j++ {
				v[j] = byte(id)*31 + byte(j)
			}
			return v
		}
		if err := set.Store(hotKey, hotVal(valIDs.Add(1))); err != nil {
			t.Fatal(err)
		}
		var stop atomic.Bool
		var cwg sync.WaitGroup
		cerrc := make(chan error, 3)
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for !stop.Load() {
				if err := set.Store(hotKey, hotVal(valIDs.Add(1))); err != nil {
					cerrc <- fmt.Errorf("hot writer: %w", err)
					return
				}
			}
		}()
		for rd := 0; rd < 2; rd++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				dst := make([]byte, 0, hotSize)
				for !stop.Load() {
					v, err := set.RetrieveAppend(dst[:0], hotKey)
					if err != nil {
						cerrc <- fmt.Errorf("hot reader: %w", err)
						return
					}
					dst = v
					if len(v) != hotSize {
						cerrc <- fmt.Errorf("hot reader: %d-byte value, want %d", len(v), hotSize)
						return
					}
					id := binary.BigEndian.Uint64(v)
					for j := 8; j < hotSize; j++ {
						if v[j] != byte(id)*31+byte(j) {
							cerrc <- fmt.Errorf("hot reader: torn value: id %d, byte %d", id, j)
							return
						}
					}
				}
			}()
		}
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) && set.Stats().OptimisticRetries == 0 {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
		cwg.Wait()
		close(cerrc)
		for err := range cerrc {
			t.Fatal(err)
		}
	}

	st := set.Stats()
	t.Logf("bursts=%d optimisticReads=%d retries=%d fallbacks=%d epochPins=%d resizes=%d snapReads=%d",
		burst+1, st.OptimisticReads, st.OptimisticRetries, st.FallbackExclusive,
		st.EpochPins, st.Index.Resizes, st.SnapshotReads)
	if st.SnapshotReads == 0 {
		t.Fatal("no read was ever served through a snapshot; the capture goroutine did not run")
	}
	if st.OptimisticRetries == 0 {
		t.Fatal("no seqlock invalidation ever forced a retry; the schedule is not contending")
	}
	if st.FallbackExclusive == 0 {
		t.Fatal("no read ever fell back to the write lock; migrations never overlapped reads")
	}
	if st.EpochPins == 0 {
		t.Fatal("no reader ever pinned the epoch domain; the lock-free path did not run")
	}
	if st.Index.Resizes == 0 {
		t.Fatal("churn never triggered a re-configuration; the harness lost its point")
	}
}
