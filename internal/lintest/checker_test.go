package lintest

import "testing"

func w(start, end, v uint64) Op { return Op{Start: start, End: end, Write: true, Value: v} }
func r(start, end, v uint64) Op { return Op{Start: start, End: end, Value: v} }

func TestCheckSequential(t *testing.T) {
	ops := []Op{w(1, 2, 7), r(3, 4, 7), w(5, 6, 9), r(7, 8, 9)}
	if !Check(0, ops) {
		t.Fatal("sequential history rejected")
	}
}

func TestCheckEmptyAndInit(t *testing.T) {
	if !Check(5, nil) {
		t.Fatal("empty history rejected")
	}
	if !Check(5, []Op{r(1, 2, 5)}) {
		t.Fatal("read of the initial value rejected")
	}
	if Check(5, []Op{r(1, 2, 6)}) {
		t.Fatal("read of a never-written value accepted")
	}
}

// A read overlapping a write may observe either the old or the new
// value — both orders linearize.
func TestCheckOverlapEitherValue(t *testing.T) {
	for _, seen := range []uint64{0, 9} {
		ops := []Op{w(1, 4, 9), r(2, 3, seen)}
		if !Check(0, ops) {
			t.Fatalf("read of %d during w(9) rejected", seen)
		}
	}
	if Check(0, []Op{w(1, 4, 9), r(2, 3, 8)}) {
		t.Fatal("read of a third value during w(9) accepted")
	}
}

// A stale read strictly after a completed write must be rejected: the
// write's interval ended before the read began, so no order can put the
// read first.
func TestCheckStaleRead(t *testing.T) {
	if Check(0, []Op{w(1, 2, 9), r(3, 4, 0)}) {
		t.Fatal("stale read after completed write accepted")
	}
}

// Two sequential reads during one long write must not travel backwards
// in time: once the first read observes the new value, a later
// non-overlapping read cannot observe the old one.
func TestCheckReadInversion(t *testing.T) {
	ops := []Op{w(1, 8, 9), r(2, 3, 9), r(4, 5, 0)}
	if Check(0, ops) {
		t.Fatal("new-then-old read inversion accepted")
	}
	// The reverse order (old then new) is fine.
	if !Check(0, []Op{w(1, 8, 9), r(2, 3, 0), r(4, 5, 9)}) {
		t.Fatal("old-then-new reads during a write rejected")
	}
}

// Deletes are writes of zero: a read after a completed delete must
// observe zero, and must not resurrect the deleted value.
func TestCheckDelete(t *testing.T) {
	if !Check(0, []Op{w(1, 2, 9), w(3, 4, 0), r(5, 6, 0)}) {
		t.Fatal("read-after-delete rejected")
	}
	if Check(0, []Op{w(1, 2, 9), w(3, 4, 0), r(5, 6, 9)}) {
		t.Fatal("resurrected read after delete accepted")
	}
}

// Two concurrent writes plus a later read: the read pins which write
// won, and either winner is acceptable — but not a third value.
func TestCheckConcurrentWrites(t *testing.T) {
	for _, winner := range []uint64{7, 9} {
		if !Check(0, []Op{w(1, 4, 7), w(2, 3, 9), r(5, 6, winner)}) {
			t.Fatalf("read of concurrent-write winner %d rejected", winner)
		}
	}
	if Check(0, []Op{w(1, 4, 7), w(2, 3, 9), r(5, 6, 8)}) {
		t.Fatal("read of a value neither concurrent write produced accepted")
	}
}

// Memoization must not change answers: a history with many overlapping
// reads of both values interleaved with writes exercises repeated
// states.
func TestCheckWideOverlap(t *testing.T) {
	ops := []Op{w(1, 20, 1)}
	for i := uint64(0); i < 10; i++ {
		v := uint64(0)
		if i%2 == 1 {
			v = 1
		}
		// All reads overlap the write and each other; any old/new mix
		// linearizes because they can be ordered around the write point.
		ops = append(ops, r(2+i, 21+i, v))
	}
	if !Check(0, ops) {
		t.Fatal("overlapping old/new read mix rejected")
	}
}

func TestCheckMaxOpsGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history did not panic")
		}
	}()
	Check(0, make([]Op, MaxOps+1))
}
