package lintest

import "testing"

// Capture strictly after a completed write must observe it.
func TestSnapshotCheckSequential(t *testing.T) {
	hists := [][]Op{{w(1, 2, 7)}}
	if !SnapshotCheck([]uint64{0}, []uint64{7}, hists, 3, 4) {
		t.Fatal("capture after w(7) rejected value 7")
	}
	if SnapshotCheck([]uint64{0}, []uint64{0}, hists, 3, 4) {
		t.Fatal("capture after completed w(7) accepted stale 0")
	}
}

// A write overlapping the capture window may land on either side of T.
func TestSnapshotCheckOverlapEitherValue(t *testing.T) {
	hists := [][]Op{{w(3, 6, 9)}}
	for _, seen := range []uint64{0, 9} {
		if !SnapshotCheck([]uint64{0}, []uint64{seen}, hists, 2, 8) {
			t.Fatalf("capture overlapping w(9) rejected value %d", seen)
		}
	}
	if SnapshotCheck([]uint64{0}, []uint64{5}, hists, 2, 8) {
		t.Fatal("capture observed a never-written value")
	}
}

// The capture instant is shared: observing key A before write wA but
// key B after a write wB that completed before wA even started is
// mutually inconsistent, even though each key alone is plausible.
func TestSnapshotCheckCrossKeyCut(t *testing.T) {
	// Key 0: w(10,11,1). Key 1: w(20,21,2) — strictly after key 0's write.
	hists := [][]Op{{w(10, 11, 1)}, {w(20, 21, 2)}}
	// Consistent cuts: before both (0,0), between (1,0), after both (1,2).
	for _, cut := range [][2]uint64{{0, 0}, {1, 0}, {1, 2}} {
		if !SnapshotCheck([]uint64{0, 0}, cut[:], hists, 5, 30) {
			t.Fatalf("consistent cut %v rejected", cut)
		}
	}
	// Inconsistent: key 1's later write included, key 0's earlier one not.
	if SnapshotCheck([]uint64{0, 0}, []uint64{0, 2}, hists, 5, 30) {
		t.Fatal("torn cut (skipped earlier write, kept later one) accepted")
	}
}

// The capture window bounds T: a write completing strictly after the
// window cannot be included, one completing strictly before cannot be
// excluded.
func TestSnapshotCheckWindowBounds(t *testing.T) {
	hists := [][]Op{{w(1, 2, 3), w(30, 31, 4)}}
	if !SnapshotCheck([]uint64{0}, []uint64{3}, hists, 10, 20) {
		t.Fatal("capture between the writes rejected the first value")
	}
	if SnapshotCheck([]uint64{0}, []uint64{4}, hists, 10, 20) {
		t.Fatal("capture window ending at 20 included a write starting at 30")
	}
	if SnapshotCheck([]uint64{0}, []uint64{0}, hists, 10, 20) {
		t.Fatal("capture window starting at 10 excluded a write done at 2")
	}
}

// Reads in the history constrain the cut like writes do: a read that
// observed the new value before the window opened pins the register.
func TestSnapshotCheckReadsConstrain(t *testing.T) {
	hists := [][]Op{{w(1, 10, 5), r(2, 3, 5)}}
	// The read linearized the overlapping write before instant 3, and the
	// window opens at 6 — the capture must see 5.
	if !SnapshotCheck([]uint64{0}, []uint64{5}, hists, 6, 8) {
		t.Fatal("capture after an observed write rejected its value")
	}
	if SnapshotCheck([]uint64{0}, []uint64{0}, hists, 6, 8) {
		t.Fatal("capture ignored a write already observed by a read")
	}
}
