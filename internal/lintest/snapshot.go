package lintest

import "sort"

// SnapshotCheck verifies a snapshot's cross-key consistency against
// concurrent per-key histories.
//
// A snapshot captured inside [snapStart, snapEnd] (timestamps drawn
// around the capture call from the same monotonic counter as the ops)
// claims ONE linearization instant T in that interval: for every key,
// the value the snapshot serves must be the key's register value at T
// in some linearization of that key's history. Checking keys
// independently would accept captures that are per-key plausible but
// mutually inconsistent — key A observed as of before a write, key B as
// of after a LATER write of A's — so the search is for a single T that
// explains every key at once.
//
// The check inserts a zero-width read Op{Start: T, End: T, Value:
// snapVals[k]} into each key's history and runs the Wing & Gong
// checker. T ranges over a finite candidate set that covers every
// distinct interleaving: snapStart itself (capture before all
// ambiguous writes) and the instant just after each write, from any
// key's history, that could have landed inside the capture window —
// between those instants the relative order of T and every op interval
// is unchanged, so no other T value can succeed where all candidates
// fail.
//
// init[k] is the register value key k's window started from; hists[k]
// must be at most MaxOps-1 long (the snapshot read joins it).
// snapVals[k] is the value the snapshot served for key k (0 = absent).
// Reports whether some common T linearizes everything.
func SnapshotCheck(init, snapVals []uint64, hists [][]Op, snapStart, snapEnd uint64) bool {
	candidates := []uint64{snapStart}
	for _, hist := range hists {
		for _, op := range hist {
			if !op.Write {
				continue
			}
			if t := op.End + 1; t > snapStart && t <= snapEnd {
				candidates = append(candidates, t)
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	// Dedup: writes retired back-to-back can propose equal instants.
	uniq := candidates[:1]
	for _, t := range candidates[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}

	for _, t := range uniq {
		ok := true
		for k := range hists {
			aug := make([]Op, 0, len(hists[k])+1)
			aug = append(aug, hists[k]...)
			aug = append(aug, Op{Start: t, End: t, Value: snapVals[k]})
			if !Check(init[k], aug) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
