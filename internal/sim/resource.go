package sim

// Resource models a unit of device hardware that can serve one operation at
// a time: a NAND die, the firmware CPU, or a channel bus. An operation
// requested at time t starts at max(t, busyUntil), occupies the resource for
// its service time, and completes at start+service. Requests issued "in the
// past" (because the host queued several operations at the same submit time)
// therefore serialize on the resource while independent resources overlap —
// this is what makes async queue depth exploit die-level parallelism.
type Resource struct {
	name      string
	busyUntil Time
	busyTotal Duration // total time spent serving operations
	ops       int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire schedules an operation requested at time t with the given service
// duration and returns the operation's start and completion times.
func (r *Resource) Acquire(t Time, service Duration) (start, done Time) {
	start = t
	if r.busyUntil > start {
		start = r.busyUntil
	}
	done = start.Add(service)
	r.busyUntil = done
	r.busyTotal += service
	r.ops++
	return start, done
}

// BusyUntil reports the time at which the resource next becomes idle.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Utilization reports the fraction of [0, now] this resource spent busy.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(now)
}

// Ops reports how many operations the resource has served.
func (r *Resource) Ops() int64 { return r.ops }

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.busyTotal = 0
	r.ops = 0
}
