package sim

import "sync/atomic"

// Resource models a unit of device hardware that can serve one operation at
// a time: a NAND die, the firmware CPU, or a channel bus. An operation
// requested at time t starts at max(t, busyUntil), occupies the resource for
// its service time, and completes at start+service. Requests issued "in the
// past" (because the host queued several operations at the same submit time)
// therefore serialize on the resource while independent resources overlap —
// this is what makes async queue depth exploit die-level parallelism.
//
// Acquire is lock-free (a CAS loop over busyUntil) so concurrent readers —
// which share a device under the shard read lock — can schedule flash and
// host-link operations without a global mutex. Concurrent Acquires
// linearize in CAS order; single-threaded behaviour is unchanged.
type Resource struct {
	name      string
	busyUntil atomic.Int64
	busyTotal atomic.Int64 // total time spent serving operations
	ops       atomic.Int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire schedules an operation requested at time t with the given service
// duration and returns the operation's start and completion times.
func (r *Resource) Acquire(t Time, service Duration) (start, done Time) {
	for {
		bu := r.busyUntil.Load()
		start = t
		if Time(bu) > start {
			start = Time(bu)
		}
		done = start.Add(service)
		if r.busyUntil.CompareAndSwap(bu, int64(done)) {
			break
		}
	}
	r.busyTotal.Add(int64(service))
	r.ops.Add(1)
	return start, done
}

// BusyUntil reports the time at which the resource next becomes idle.
func (r *Resource) BusyUntil() Time { return Time(r.busyUntil.Load()) }

// Utilization reports the fraction of [0, now] this resource spent busy.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busyTotal.Load()) / float64(now)
}

// Ops reports how many operations the resource has served.
func (r *Resource) Ops() int64 { return r.ops.Load() }

// Reset returns the resource to idle at time zero, clearing statistics.
// Callers must be externally serialized with Acquire.
func (r *Resource) Reset() {
	r.busyUntil.Store(0)
	r.busyTotal.Store(0)
	r.ops.Store(0)
}
