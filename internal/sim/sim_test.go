package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(5 * Microsecond); got != Time(5*Microsecond) {
		t.Fatalf("Advance returned %d, want %d", got, 5*Microsecond)
	}
	c.Advance(3 * Nanosecond)
	if c.Now() != Time(5*Microsecond+3) {
		t.Fatalf("Now = %d, want %d", c.Now(), 5*Microsecond+3)
	}
}

func TestClockNeverMovesBackward(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(-50)
	if c.Now() != 100 {
		t.Fatalf("negative Advance moved clock: %d", c.Now())
	}
	c.AdvanceTo(40)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo past moved clock backward: %d", c.Now())
	}
	c.AdvanceTo(140)
	if c.Now() != 140 {
		t.Fatalf("AdvanceTo future failed: %d", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %d", c.Now())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []int32) bool {
		c := NewClock()
		prev := c.Now()
		for _, s := range steps {
			c.Advance(Duration(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestResourceIdleStart(t *testing.T) {
	r := NewResource("die0")
	start, done := r.Acquire(100, 50)
	if start != 100 || done != 150 {
		t.Fatalf("Acquire = (%d,%d), want (100,150)", start, done)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("die0")
	r.Acquire(0, 100)
	start, done := r.Acquire(10, 100) // requested while busy
	if start != 100 || done != 200 {
		t.Fatalf("second op = (%d,%d), want (100,200)", start, done)
	}
	if r.BusyUntil() != 200 {
		t.Fatalf("BusyUntil = %d, want 200", r.BusyUntil())
	}
}

func TestResourceGapLeavesIdleTime(t *testing.T) {
	r := NewResource("die0")
	r.Acquire(0, 100)
	start, done := r.Acquire(500, 100)
	if start != 500 || done != 600 {
		t.Fatalf("gapped op = (%d,%d), want (500,600)", start, done)
	}
	if got := r.Utilization(600); got != float64(200)/600 {
		t.Fatalf("Utilization = %v, want %v", got, float64(200)/600)
	}
}

func TestResourceOpsAndReset(t *testing.T) {
	r := NewResource("cpu")
	r.Acquire(0, 10)
	r.Acquire(0, 10)
	if r.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", r.Ops())
	}
	r.Reset()
	if r.Ops() != 0 || r.BusyUntil() != 0 {
		t.Fatalf("Reset failed: ops=%d busy=%d", r.Ops(), r.BusyUntil())
	}
}

func TestParallelResourcesOverlap(t *testing.T) {
	// Two dies serving ops submitted at the same instant overlap; the
	// completion of the pair is one service time, not two.
	a, b := NewResource("die0"), NewResource("die1")
	_, doneA := a.Acquire(0, 100)
	_, doneB := b.Acquire(0, 100)
	if doneA != 100 || doneB != 100 {
		t.Fatalf("parallel dies did not overlap: %d %d", doneA, doneB)
	}
}

func TestResourceCompletionMonotoneProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("x")
		var prevDone Time
		var tm Time
		for _, q := range reqs {
			tm = tm.Add(Duration(q % 97))
			_, done := r.Acquire(tm, Duration(q%1009))
			if done < prevDone {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
