// Package sim provides the discrete-event time base used by the emulated
// KVSSD. All device components (NAND dies, the firmware CPU, the channel
// bus) advance a shared Clock instead of sleeping on the wall clock, so
// experiments measure simulated device time deterministically and run fast.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since device power-on.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Clock is the device-wide simulated clock. It only moves forward.
// The zero value is a clock at time 0, ready to use.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time 0.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored; the clock never moves backward.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		c.now += Time(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the future.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only tests and device restarts use this.
func (c *Clock) Reset() { c.now = 0 }
