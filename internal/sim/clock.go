// Package sim provides the discrete-event time base used by the emulated
// KVSSD. All device components (NAND dies, the firmware CPU, the channel
// bus) advance a shared Clock instead of sleeping on the wall clock, so
// experiments measure simulated device time deterministically and run fast.
//
// Clock, AtomicTime, and Resource are safe for concurrent use: the shared
// read path lets multiple reader goroutines advance the same timeline, so
// every time-base primitive is lock-free (CAS-max for "advance to",
// atomic add for "advance by"). Single-threaded behaviour is unchanged.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in simulated time, in nanoseconds since device power-on.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// AtomicTime is a Time that concurrent goroutines may load and advance.
// Advancing never moves the value backward; Store is reserved for
// externally-serialized resets (restarts, recovery).
type AtomicTime struct {
	v atomic.Int64
}

// Load returns the current value.
func (t *AtomicTime) Load() Time { return Time(t.v.Load()) }

// Store sets the value unconditionally. Callers must be externally
// serialized (it is only used on reset paths that hold the write lock).
func (t *AtomicTime) Store(x Time) { t.v.Store(int64(x)) }

// Advance moves the value forward by d and returns the new value.
// Negative durations are ignored.
func (t *AtomicTime) Advance(d Duration) Time {
	if d <= 0 {
		return Time(t.v.Load())
	}
	return Time(t.v.Add(int64(d)))
}

// AdvanceTo moves the value forward to x if x is in the future (CAS-max).
func (t *AtomicTime) AdvanceTo(x Time) Time {
	for {
		cur := t.v.Load()
		if int64(x) <= cur {
			return Time(cur)
		}
		if t.v.CompareAndSwap(cur, int64(x)) {
			return x
		}
	}
}

// Clock is the device-wide simulated clock. It only moves forward (except
// Reset) and is safe for concurrent use.
// The zero value is a clock at time 0, ready to use.
type Clock struct {
	now AtomicTime
}

// NewClock returns a clock starting at time 0.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now.Load() }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored; the clock never moves backward.
func (c *Clock) Advance(d Duration) Time { return c.now.Advance(d) }

// AdvanceTo moves the clock forward to t if t is in the future.
func (c *Clock) AdvanceTo(t Time) Time { return c.now.AdvanceTo(t) }

// Reset rewinds the clock to zero. Only tests and device restarts use
// this, with all other clock users quiesced.
func (c *Clock) Reset() { c.now.Store(0) }
