package kvwire

import (
	"encoding/binary"
	"hash/crc32"
)

// Snapshot and backup wire encodings.
//
//	SNAPSHOT request:     empty
//	SNAPGET request:      snapID keyLen key
//	SNAPRELEASE request:  snapID
//	BACKUP request:       snapID        (0 = server captures one for the
//	                                     duration of the stream)
//
//	SNAPSHOT OK response: fieldCount + uvarint fields (like STATS: old
//	                      parsers skip appended fields, new parsers
//	                      zero-fill omitted ones)
//	SNAPGET OK response:  value (AppendValueResponse)
//	SNAPRELEASE OK:       empty (AppendOK)
//
//	BACKUP is the protocol's only multi-frame response: the server sends
//	zero or more CHUNK frames followed by exactly one TRAILER frame, all
//	carrying the request's ID, then the stream is complete. A killed
//	server leaves the stream without a trailer — detectably truncated —
//	and the trailer's entry count and CRC reject reordered or corrupted
//	streams.
//
//	chunk frame:   StatusOK reqID marker=0 n  n × (keyLen key valueLen value)
//	trailer frame: StatusOK reqID marker=1 epoch totalCount crc32
//
// The CRC is IEEE CRC-32 over each entry's length-prefixed key and
// value encodings, in stream order (BackupCRC).

// Backup frame markers.
const (
	BackupMarkerChunk   = 0
	BackupMarkerTrailer = 1
)

// MaxBackupChunk bounds the entries one BACKUP chunk frame carries.
const MaxBackupChunk = 1 << 14

// SnapInfo is the payload of a SNAPSHOT success response.
type SnapInfo struct {
	// ID names the snapshot in subsequent SNAPGET/SNAPRELEASE/BACKUP
	// requests; scoped to the server process, never zero.
	ID uint64
	// Epoch is the set-level visibility bound (sum of per-shard write
	// epochs at the capture instant). Two captures with no intervening
	// commits report equal epochs.
	Epoch uint64
	// Records is the frozen record count across all shards.
	Records uint64
}

// fields returns the wire order; append new fields at the end only.
func (s *SnapInfo) fields() []*uint64 {
	return []*uint64{&s.ID, &s.Epoch, &s.Records}
}

// AppendSnapshot appends a complete SNAPSHOT request frame.
func AppendSnapshot(dst []byte, id uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpSnapshot))
	dst = binary.AppendUvarint(dst, id)
	return endFrame(dst, mark)
}

// AppendSnapGet appends a complete SNAPGET request frame.
func AppendSnapGet(dst []byte, id, snap uint64, key []byte) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpSnapGet))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, snap)
	dst = appendBlob(dst, key)
	return endFrame(dst, mark)
}

// AppendSnapRelease appends a complete SNAPRELEASE request frame.
func AppendSnapRelease(dst []byte, id, snap uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpSnapRelease))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, snap)
	return endFrame(dst, mark)
}

// AppendBackup appends a complete BACKUP request frame. snap 0 asks the
// server to capture (and afterwards release) a snapshot of its own.
func AppendBackup(dst []byte, id, snap uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpBackup))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, snap)
	return endFrame(dst, mark)
}

// AppendSnapshotResponse appends a SNAPSHOT success frame.
func AppendSnapshotResponse(dst []byte, id uint64, info *SnapInfo) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	fields := info.fields()
	dst = binary.AppendUvarint(dst, uint64(len(fields)))
	for _, f := range fields {
		dst = binary.AppendUvarint(dst, *f)
	}
	return endFrame(dst, mark)
}

// ParseSnapshotPayload decodes a SNAPSHOT success payload.
func ParseSnapshotPayload(p []byte) (SnapInfo, error) {
	var s SnapInfo
	count, n, err := uvarint(p)
	if err != nil {
		return s, err
	}
	if count > 1<<10 {
		return s, ErrFrameTooLarge
	}
	p = p[n:]
	fields := s.fields()
	for i := uint64(0); i < count; i++ {
		v, n, err := uvarint(p)
		if err != nil {
			return s, err
		}
		p = p[n:]
		if i < uint64(len(fields)) {
			*fields[i] = v
		}
	}
	if len(p) != 0 {
		return s, ErrTruncated
	}
	return s, nil
}

// AppendBackupChunk appends one BACKUP chunk frame carrying entries.
func AppendBackupChunk(dst []byte, id uint64, entries []ScanEntry) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, BackupMarkerChunk)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendBlob(dst, e.Key)
		dst = appendBlob(dst, e.Value)
	}
	return endFrame(dst, mark)
}

// AppendBackupTrailer appends the BACKUP trailer frame that completes a
// stream: the snapshot epoch, the total entry count across every chunk,
// and the running BackupCRC.
func AppendBackupTrailer(dst []byte, id, epoch, total uint64, crc uint32) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, BackupMarkerTrailer)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, total)
	dst = binary.AppendUvarint(dst, uint64(crc))
	return endFrame(dst, mark)
}

// BackupFrame is one parsed BACKUP response frame: either a chunk of
// entries or the stream's trailer.
type BackupFrame struct {
	Trailer bool
	Entries []ScanEntry // chunks; alias the frame buffer
	Epoch   uint64      // trailer only
	Total   uint64      // trailer only: entries across the whole stream
	CRC     uint32      // trailer only: expected BackupCRC
}

// ParseBackupFrame decodes a BACKUP success payload, appending chunk
// entries to dst (pass dst[:0] to reuse).
func ParseBackupFrame(p []byte, dst []ScanEntry) (BackupFrame, error) {
	f := BackupFrame{Entries: dst}
	if len(p) < 1 {
		return f, ErrTruncated
	}
	marker := p[0]
	p = p[1:]
	switch marker {
	case BackupMarkerChunk:
		count, n, err := uvarint(p)
		if err != nil {
			return f, err
		}
		if count > MaxBackupChunk {
			return f, ErrFrameTooLarge
		}
		p = p[n:]
		for i := uint64(0); i < count; i++ {
			var e ScanEntry
			if e.Key, n, err = parseBlob(p, MaxKeyLen); err != nil {
				return f, err
			}
			p = p[n:]
			if e.Value, n, err = parseBlob(p, MaxValueLen); err != nil {
				return f, err
			}
			p = p[n:]
			f.Entries = append(f.Entries, e)
		}
	case BackupMarkerTrailer:
		f.Trailer = true
		var n int
		var err error
		if f.Epoch, n, err = uvarint(p); err != nil {
			return f, err
		}
		p = p[n:]
		if f.Total, n, err = uvarint(p); err != nil {
			return f, err
		}
		p = p[n:]
		crc, n, err := uvarint(p)
		if err != nil {
			return f, err
		}
		if crc > 0xFFFFFFFF {
			return f, ErrTruncated
		}
		f.CRC = uint32(crc)
		p = p[n:]
	default:
		return f, ErrUnknownOp
	}
	if len(p) != 0 {
		return f, ErrTruncated
	}
	return f, nil
}

// BackupCRC folds one entry into a running IEEE CRC-32 over the stream.
// Hashing the length-prefixed encodings (not the raw bytes) keeps the
// (key, value) boundary inside the digest, so shifting a byte between
// fields changes the sum. Start from 0.
func BackupCRC(crc uint32, key, value []byte) uint32 {
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(key)))
	crc = crc32.Update(crc, crc32.IEEETable, lb[:n])
	crc = crc32.Update(crc, crc32.IEEETable, key)
	n = binary.PutUvarint(lb[:], uint64(len(value)))
	crc = crc32.Update(crc, crc32.IEEETable, lb[:n])
	crc = crc32.Update(crc, crc32.IEEETable, value)
	return crc
}
