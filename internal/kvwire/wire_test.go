package kvwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// readOne frames-up an encoded buffer and reads one body back.
func readOne(t *testing.T, frame []byte) []byte {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(frame))
	body, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("trailing data: err=%v", err)
	}
	return body
}

func TestRequestRoundTrip(t *testing.T) {
	key, val := []byte("user:42"), bytes.Repeat([]byte("v"), 1000)
	var req Request

	if err := req.Parse(readOne(t, AppendPut(nil, 7, key, val))); err != nil {
		t.Fatalf("put parse: %v", err)
	}
	if req.Op != OpPut || req.ID != 7 || !bytes.Equal(req.Key, key) || !bytes.Equal(req.Value, val) {
		t.Fatalf("put mismatch: %+v", req)
	}

	for _, tc := range []struct {
		op     Op
		append func([]byte, uint64, []byte) []byte
	}{{OpGet, AppendGet}, {OpDel, AppendDel}, {OpExist, AppendExist}} {
		if err := req.Parse(readOne(t, tc.append(nil, 9, key))); err != nil {
			t.Fatalf("%v parse: %v", tc.op, err)
		}
		if req.Op != tc.op || req.ID != 9 || !bytes.Equal(req.Key, key) {
			t.Fatalf("%v mismatch: %+v", tc.op, req)
		}
	}

	if err := req.Parse(readOne(t, AppendStats(nil, 1<<40))); err != nil {
		t.Fatalf("stats parse: %v", err)
	}
	if req.Op != OpStats || req.ID != 1<<40 {
		t.Fatalf("stats mismatch: %+v", req)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Op: OpPut, Key: []byte("a"), Value: []byte("1")},
		{Op: OpGet, Key: []byte("b")},
		{Op: OpDel, Key: []byte("c")},
		{Op: OpPut, Key: []byte("d"), Value: nil}, // empty value is legal
	}
	var req Request
	if err := req.Parse(readOne(t, AppendBatch(nil, 3, ops))); err != nil {
		t.Fatalf("batch parse: %v", err)
	}
	if req.Op != OpBatch || req.ID != 3 || len(req.Ops) != len(ops) {
		t.Fatalf("batch mismatch: %+v", req)
	}
	for i, op := range ops {
		got := req.Ops[i]
		if got.Op != op.Op || !bytes.Equal(got.Key, op.Key) || !bytes.Equal(got.Value, op.Value) {
			t.Fatalf("batch op %d: got %+v want %+v", i, got, op)
		}
	}

	// EXIST is not a legal batch sub-op.
	bad := AppendBatch(nil, 4, []BatchOp{{Op: OpExist, Key: []byte("x")}})
	if err := req.Parse(readOne(t, bad)); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("exist in batch: err=%v, want ErrUnknownOp", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var resp Response

	if err := resp.Parse(readOne(t, AppendOK(nil, 11))); err != nil {
		t.Fatalf("ok parse: %v", err)
	}
	if resp.Status != StatusOK || resp.ID != 11 || len(resp.Payload) != 0 {
		t.Fatalf("ok mismatch: %+v", resp)
	}

	if err := resp.Parse(readOne(t, AppendError(nil, 12, StatusBusy, "queue full"))); err != nil {
		t.Fatalf("error parse: %v", err)
	}
	if resp.Status != StatusBusy || resp.ID != 12 || ParseErrorPayload(resp.Payload) != "queue full" {
		t.Fatalf("error mismatch: %+v", resp)
	}
	if !resp.Status.Retryable() || !errors.Is(resp.Status.Err(), ErrBusy) {
		t.Fatalf("busy semantics: retryable=%v err=%v", resp.Status.Retryable(), resp.Status.Err())
	}

	val := []byte("the value")
	if err := resp.Parse(readOne(t, AppendValueResponse(nil, 13, val))); err != nil {
		t.Fatalf("value parse: %v", err)
	}
	got, err := ParseValuePayload(resp.Payload)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("value mismatch: %q %v", got, err)
	}

	for _, want := range []bool{true, false} {
		if err := resp.Parse(readOne(t, AppendBoolResponse(nil, 14, want))); err != nil {
			t.Fatalf("bool parse: %v", err)
		}
		got, err := ParseBoolPayload(resp.Payload)
		if err != nil || got != want {
			t.Fatalf("bool mismatch: %v %v", got, err)
		}
	}

	items := []BatchItem{
		{Status: StatusOK},
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusNotFound},
	}
	if err := resp.Parse(readOne(t, AppendBatchResponse(nil, 15, items))); err != nil {
		t.Fatalf("batch resp parse: %v", err)
	}
	gotItems, err := ParseBatchPayload(resp.Payload, nil)
	if err != nil || len(gotItems) != len(items) {
		t.Fatalf("batch items: %v %v", gotItems, err)
	}
	for i, it := range items {
		if gotItems[i].Status != it.Status || !bytes.Equal(gotItems[i].Value, it.Value) {
			t.Fatalf("batch item %d: got %+v want %+v", i, gotItems[i], it)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{
		Shards: 8, Stores: 1 << 33, Retrieves: 12, Deletes: 3, Exists: 4,
		BytesWritten: 1 << 40, BytesRead: 9, IndexRecords: 1e6, Resizes: 5,
		CollisionAborts: 1, FlashReads: 2, FlashPrograms: 3, FlashErases: 4,
		GCRuns: 5, Checkpoints: 6,
		StoreP50ns: 1500, StoreP99ns: 9000, RetrieveP50ns: 800, RetrieveP99ns: 4000,
	}
	var resp Response
	if err := resp.Parse(readOne(t, AppendStatsResponse(nil, 16, &in))); err != nil {
		t.Fatalf("stats resp parse: %v", err)
	}
	out, err := ParseStatsPayload(resp.Payload)
	if err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if out != in {
		t.Fatalf("stats mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestPreamble(t *testing.T) {
	if err := ReadPreamble(bytes.NewReader(AppendPreamble(nil))); err != nil {
		t.Fatalf("good preamble: %v", err)
	}
	if err := ReadPreamble(bytes.NewReader([]byte{'N', 'O', 'P', 'E'})); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := ReadPreamble(bytes.NewReader([]byte{Magic0, Magic1, Magic2, 99})); err == nil {
		t.Fatal("version mismatch accepted")
	}
	if err := ReadPreamble(bytes.NewReader([]byte{Magic0})); err == nil {
		t.Fatal("short preamble accepted")
	}
}

func TestFrameReaderBounds(t *testing.T) {
	// Oversized declared length is rejected before buffering.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrameLen+1)
	if _, err := NewFrameReader(bytes.NewReader(hdr[:])).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}

	// Zero-length frames are invalid (a body is at least op+id).
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, err := NewFrameReader(bytes.NewReader(hdr[:])).Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero frame: %v", err)
	}

	// Truncated body surfaces io.ErrUnexpectedEOF, not a clean EOF.
	frame := AppendPut(nil, 1, []byte("k"), []byte("v"))
	if _, err := NewFrameReader(bytes.NewReader(frame[:len(frame)-1])).Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: %v", err)
	}
	if _, err := NewFrameReader(bytes.NewReader(frame[:2])).Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v", err)
	}
}

func TestParseRejectsHostileLengths(t *testing.T) {
	// A PUT whose declared key length far exceeds the body must fail
	// with a bounds error, not panic or over-slice.
	body := []byte{byte(OpPut), 1}
	body = binary.AppendUvarint(body, 1<<50)
	var req Request
	if err := req.Parse(body); err == nil {
		t.Fatal("hostile key length accepted")
	}

	// Trailing garbage after a well-formed payload is rejected.
	frame := AppendGet(nil, 1, []byte("k"))
	tail := append(append([]byte{}, readOne(t, frame)...), 0xFF)
	if err := req.Parse(tail); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPipelinedStream(t *testing.T) {
	// Several frames back-to-back in one buffer — the shape the
	// pipelined client and server actually exchange.
	var buf []byte
	buf = AppendPut(buf, 1, []byte("a"), []byte("1"))
	buf = AppendGet(buf, 2, []byte("a"))
	buf = AppendDel(buf, 3, []byte("a"))
	fr := NewFrameReader(bytes.NewReader(buf))
	var req Request
	for want := uint64(1); want <= 3; want++ {
		body, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if err := req.Parse(body); err != nil {
			t.Fatalf("frame %d parse: %v", want, err)
		}
		if req.ID != want {
			t.Fatalf("frame order: got id %d want %d", req.ID, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func BenchmarkAppendParsePut(b *testing.B) {
	key := []byte("user:123456789")
	val := bytes.Repeat([]byte("x"), 1024)
	var buf []byte
	var req Request
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendPut(buf[:0], uint64(i), key, val)
		if err := req.Parse(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}
