// Package kvwire defines the binary wire protocol spoken between the
// emulated KVSSD's network server (internal/server) and its clients
// (internal/client): a connection preamble carrying magic and version,
// then a stream of length-prefixed frames in each direction. Every
// frame carries a request ID so responses may complete out of order —
// the server executes cross-shard requests in parallel — and a
// pipelined client matches them back up.
//
// Layout (all multi-byte integers little-endian, lengths as uvarints):
//
//	preamble (client → server, once):  'R' 'K' 'V' version
//
//	frame:     u32 bodyLen | body            (bodyLen ≤ MaxFrameLen)
//	request:   op u8   | reqID uvarint | payload
//	response:  status u8 | reqID uvarint | payload
//
//	PUT payload:        keyLen key valueLen value
//	GET/DEL/EXIST:      keyLen key
//	BATCH:              n, then n × (op u8, keyLen key [valueLen value])
//	STATS:              empty
//	SCAN:               prefixLen prefix limit
//
//	OK response:        empty (PUT/DEL), value (GET), u8 (EXIST),
//	                    n × (status u8, valueLen value) (BATCH),
//	                    fieldCount + uvarint fields (STATS),
//	                    n × (keyLen key valueLen value) (SCAN)
//	error response:     msgLen msg (optional human-readable detail)
//
// The codec is allocation-free on the hot path: Append* functions grow
// a caller-owned buffer, and FrameReader.Next returns a slice into a
// reused internal buffer that is valid until the next call. Parse
// results alias the frame buffer; callers that retain key or value
// bytes across frames must copy them.
package kvwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol identity. The preamble is the four bytes 'R' 'K' 'V'
// Version, sent by the client immediately after connecting; the server
// rejects connections whose preamble does not match.
const (
	Magic0      = 'R'
	Magic1      = 'K'
	Magic2      = 'V'
	Version     = 1
	PreambleLen = 4
)

// Size limits. Frames whose declared length exceeds MaxFrameLen are
// rejected before any buffer is grown, so a malicious or corrupt length
// prefix cannot force an allocation.
const (
	// MaxKeyLen matches the device's encodable key width.
	MaxKeyLen = 1<<16 - 1
	// MaxValueLen bounds a single wire value; the device's own limit
	// (one erase block) is tighter and surfaces as StatusValueTooLarge.
	MaxValueLen = 8 << 20
	// MaxFrameLen bounds one frame body.
	MaxFrameLen = 16 << 20
	// MaxBatchOps bounds the sub-ops in one BATCH frame.
	MaxBatchOps = 1 << 16
	// MaxScanResults bounds the entries in one SCAN response; requests
	// asking for more are clamped, not rejected.
	MaxScanResults = 1 << 16
)

// Op identifies a request opcode.
type Op uint8

// Request opcodes. Zero is invalid so that all-zero frames fail parsing.
const (
	OpPut Op = iota + 1
	OpGet
	OpDel
	OpExist
	OpBatch
	OpStats
	OpScan
	// OpSnapshot captures a server-side MVCC snapshot; the response
	// carries its ID, epoch, and record count (field-count-versioned).
	OpSnapshot
	// OpSnapGet reads a key at a previously captured snapshot.
	OpSnapGet
	// OpSnapRelease drops a snapshot's pins.
	OpSnapRelease
	// OpBackup streams a consistent checkpoint: chunk frames of key/value
	// entries followed by a CRC-carrying trailer, all under one request
	// ID (see snapshot.go).
	OpBackup
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpExist:
		return "EXIST"
	case OpBatch:
		return "BATCH"
	case OpStats:
		return "STATS"
	case OpScan:
		return "SCAN"
	case OpSnapshot:
		return "SNAPSHOT"
	case OpSnapGet:
		return "SNAPGET"
	case OpSnapRelease:
		return "SNAPRELEASE"
	case OpBackup:
		return "BACKUP"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is a response outcome code.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	// StatusNotFound: retrieve/delete of an absent key.
	StatusNotFound
	// StatusBusy: the server's inflight or queue limit is exceeded;
	// the request was NOT executed and is safe to retry after backoff.
	StatusBusy
	// StatusCollision: uncorrectable signature collision; retry with a
	// different key.
	StatusCollision
	// StatusKeyTooLarge / StatusValueTooLarge / StatusDeviceFull /
	// StatusClosed mirror the device errors of the same names.
	StatusKeyTooLarge
	StatusValueTooLarge
	StatusDeviceFull
	StatusClosed
	// StatusDeadline: the request sat in queue past its deadline and
	// was dropped without executing.
	StatusDeadline
	// StatusBadRequest: the frame parsed but was semantically invalid
	// (unknown opcode, exist inside a batch, oversized field).
	StatusBadRequest
	// StatusInternal: unexpected server-side failure.
	StatusInternal
	// StatusUnknownSnapshot: the request referenced a snapshot ID the
	// server does not hold (never captured, released, or invalidated by
	// a restart).
	StatusUnknownSnapshot
)

// Errors surfaced by the codec and mapped from response statuses.
var (
	ErrBadMagic      = errors.New("kvwire: bad connection preamble")
	ErrFrameTooLarge = errors.New("kvwire: frame exceeds maximum length")
	ErrTruncated     = errors.New("kvwire: truncated frame")
	ErrUnknownOp     = errors.New("kvwire: unknown opcode")

	ErrNotFound        = errors.New("kvwire: key not found")
	ErrBusy            = errors.New("kvwire: server busy")
	ErrCollision       = errors.New("kvwire: signature collision")
	ErrKeyTooLarge     = errors.New("kvwire: key too large")
	ErrValueTooLarge   = errors.New("kvwire: value too large")
	ErrDeviceFull      = errors.New("kvwire: device full")
	ErrClosed          = errors.New("kvwire: server closed")
	ErrDeadline        = errors.New("kvwire: request deadline exceeded")
	ErrBadRequest      = errors.New("kvwire: bad request")
	ErrInternal        = errors.New("kvwire: internal server error")
	ErrUnknownSnapshot = errors.New("kvwire: unknown snapshot")
)

var statusErrs = [...]error{
	StatusOK:              nil,
	StatusNotFound:        ErrNotFound,
	StatusBusy:            ErrBusy,
	StatusCollision:       ErrCollision,
	StatusKeyTooLarge:     ErrKeyTooLarge,
	StatusValueTooLarge:   ErrValueTooLarge,
	StatusDeviceFull:      ErrDeviceFull,
	StatusClosed:          ErrClosed,
	StatusDeadline:        ErrDeadline,
	StatusBadRequest:      ErrBadRequest,
	StatusInternal:        ErrInternal,
	StatusUnknownSnapshot: ErrUnknownSnapshot,
}

// Err maps a status to its sentinel error; StatusOK maps to nil and
// unknown statuses to ErrInternal.
func (s Status) Err() error {
	if int(s) < len(statusErrs) {
		return statusErrs[s]
	}
	return ErrInternal
}

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBusy:
		return "BUSY"
	case StatusCollision:
		return "COLLISION"
	case StatusKeyTooLarge:
		return "KEY_TOO_LARGE"
	case StatusValueTooLarge:
		return "VALUE_TOO_LARGE"
	case StatusDeviceFull:
		return "DEVICE_FULL"
	case StatusClosed:
		return "CLOSED"
	case StatusDeadline:
		return "DEADLINE"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	case StatusUnknownSnapshot:
		return "UNKNOWN_SNAPSHOT"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Retryable reports whether a request that got this status may safely
// be resubmitted: the server guarantees it did not execute the request.
func (s Status) Retryable() bool { return s == StatusBusy || s == StatusDeadline }

// AppendPreamble appends the connection preamble.
func AppendPreamble(dst []byte) []byte {
	return append(dst, Magic0, Magic1, Magic2, Version)
}

// ReadPreamble consumes and validates the connection preamble.
func ReadPreamble(r io.Reader) error {
	var b [PreambleLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	if b[0] != Magic0 || b[1] != Magic1 || b[2] != Magic2 {
		return ErrBadMagic
	}
	if b[3] != Version {
		return fmt.Errorf("kvwire: protocol version %d, want %d", b[3], Version)
	}
	return nil
}

// beginFrame reserves the length prefix; endFrame patches it.
func beginFrame(dst []byte) (int, []byte) {
	return len(dst), append(dst, 0, 0, 0, 0)
}

func endFrame(dst []byte, mark int) []byte {
	binary.LittleEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	return dst
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendPut appends a complete PUT request frame.
func AppendPut(dst []byte, id uint64, key, value []byte) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpPut))
	dst = binary.AppendUvarint(dst, id)
	dst = appendBlob(dst, key)
	dst = appendBlob(dst, value)
	return endFrame(dst, mark)
}

func appendKeyOnly(dst []byte, op Op, id uint64, key []byte) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(op))
	dst = binary.AppendUvarint(dst, id)
	dst = appendBlob(dst, key)
	return endFrame(dst, mark)
}

// AppendGet appends a complete GET request frame.
func AppendGet(dst []byte, id uint64, key []byte) []byte {
	return appendKeyOnly(dst, OpGet, id, key)
}

// AppendDel appends a complete DEL request frame.
func AppendDel(dst []byte, id uint64, key []byte) []byte {
	return appendKeyOnly(dst, OpDel, id, key)
}

// AppendExist appends a complete EXIST request frame.
func AppendExist(dst []byte, id uint64, key []byte) []byte {
	return appendKeyOnly(dst, OpExist, id, key)
}

// AppendStats appends a complete STATS request frame.
func AppendStats(dst []byte, id uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpStats))
	dst = binary.AppendUvarint(dst, id)
	return endFrame(dst, mark)
}

// AppendScan appends a complete SCAN request frame: enumerate up to
// limit keys sharing prefix, sorted. limit 0 means the server maximum.
func AppendScan(dst []byte, id uint64, prefix []byte, limit uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpScan))
	dst = binary.AppendUvarint(dst, id)
	dst = appendBlob(dst, prefix)
	dst = binary.AppendUvarint(dst, limit)
	return endFrame(dst, mark)
}

// BatchOp is one sub-operation of a BATCH frame. Op must be OpPut,
// OpGet, or OpDel — mirroring the library Batch, membership checks are
// not batched (use OpGet).
type BatchOp struct {
	Op    Op
	Key   []byte
	Value []byte // puts only
}

// AppendBatch appends a complete BATCH request frame.
func AppendBatch(dst []byte, id uint64, ops []BatchOp) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(OpBatch))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		dst = append(dst, byte(op.Op))
		dst = appendBlob(dst, op.Key)
		if op.Op == OpPut {
			dst = appendBlob(dst, op.Value)
		}
	}
	return endFrame(dst, mark)
}

// AppendOK appends a payload-free OK response (PUT/DEL acks).
func AppendOK(dst []byte, id uint64) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	return endFrame(dst, mark)
}

// AppendError appends a non-OK response with an optional detail string.
func AppendError(dst []byte, id uint64, st Status, msg string) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(st))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, mark)
}

// AppendValueResponse appends a GET success carrying the value.
func AppendValueResponse(dst []byte, id uint64, value []byte) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	dst = appendBlob(dst, value)
	return endFrame(dst, mark)
}

// AppendBoolResponse appends an EXIST success carrying the result.
func AppendBoolResponse(dst []byte, id uint64, ok bool) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	b := byte(0)
	if ok {
		b = 1
	}
	dst = append(dst, b)
	return endFrame(dst, mark)
}

// ScanEntry is one key-value pair of a SCAN response. When parsed, Key
// and Value alias the frame buffer.
type ScanEntry struct {
	Key   []byte
	Value []byte
}

// AppendScanResponse appends a SCAN success carrying the entries.
func AppendScanResponse(dst []byte, id uint64, entries []ScanEntry) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendBlob(dst, e.Key)
		dst = appendBlob(dst, e.Value)
	}
	return endFrame(dst, mark)
}

// BatchItem is one sub-result of a BATCH response.
type BatchItem struct {
	Status Status
	Value  []byte // get results; aliases the frame buffer when parsed
}

// AppendBatchResponse appends a BATCH success carrying one status (and,
// for gets, the value) per submitted op. The encoding is
// self-describing — every item carries a value length, zero for
// valueless ops — so it parses without knowledge of the request.
func AppendBatchResponse(dst []byte, id uint64, items []BatchItem) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = append(dst, byte(it.Status))
		dst = appendBlob(dst, it.Value)
	}
	return endFrame(dst, mark)
}

// uvarint decodes with an explicit error instead of Uvarint's n<=0.
func uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrTruncated
	}
	return v, n, nil
}

// parseBlob decodes a length-prefixed byte field bounded by limit,
// checking the declared length before any slicing so hostile lengths
// cannot panic or allocate.
func parseBlob(b []byte, limit int) ([]byte, int, error) {
	l, n, err := uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if l > uint64(limit) {
		return nil, 0, ErrFrameTooLarge
	}
	if uint64(len(b)-n) < l {
		return nil, 0, ErrTruncated
	}
	return b[n : n+int(l) : n+int(l)], n + int(l), nil
}

// Request is a parsed request frame. Key, Value, and the Ops entries
// alias the frame buffer and are valid only until the next
// FrameReader.Next call.
type Request struct {
	Op    Op
	ID    uint64
	Key   []byte
	Value []byte
	Limit uint64    // scan result cap; 0 = server maximum
	Snap  uint64    // snapshot ID (SNAPGET/SNAPRELEASE/BACKUP; 0 = none)
	Ops   []BatchOp // batch sub-ops; backing array is reused across Parse calls
}

// Parse decodes a request body. On error the Request contents are
// unspecified. The Ops slice is reused, so a Request should be reused
// across frames to stay allocation-free.
func (r *Request) Parse(body []byte) error {
	if len(body) < 1 {
		return ErrTruncated
	}
	r.Op = Op(body[0])
	body = body[1:]
	id, n, err := uvarint(body)
	if err != nil {
		return err
	}
	r.ID = id
	body = body[n:]
	r.Key, r.Value, r.Limit, r.Snap, r.Ops = nil, nil, 0, 0, r.Ops[:0]

	switch r.Op {
	case OpPut:
		if r.Key, n, err = parseBlob(body, MaxKeyLen); err != nil {
			return err
		}
		body = body[n:]
		if r.Value, n, err = parseBlob(body, MaxValueLen); err != nil {
			return err
		}
		body = body[n:]
	case OpGet, OpDel, OpExist:
		if r.Key, n, err = parseBlob(body, MaxKeyLen); err != nil {
			return err
		}
		body = body[n:]
	case OpBatch:
		count, n, err := uvarint(body)
		if err != nil {
			return err
		}
		if count > MaxBatchOps {
			return ErrFrameTooLarge
		}
		body = body[n:]
		for i := uint64(0); i < count; i++ {
			if len(body) < 1 {
				return ErrTruncated
			}
			op := Op(body[0])
			body = body[1:]
			if op != OpPut && op != OpGet && op != OpDel {
				return ErrUnknownOp
			}
			var bop BatchOp
			bop.Op = op
			if bop.Key, n, err = parseBlob(body, MaxKeyLen); err != nil {
				return err
			}
			body = body[n:]
			if op == OpPut {
				if bop.Value, n, err = parseBlob(body, MaxValueLen); err != nil {
					return err
				}
				body = body[n:]
			}
			r.Ops = append(r.Ops, bop)
		}
	case OpStats, OpSnapshot:
		// no payload
	case OpSnapGet:
		if r.Snap, n, err = uvarint(body); err != nil {
			return err
		}
		body = body[n:]
		if r.Key, n, err = parseBlob(body, MaxKeyLen); err != nil {
			return err
		}
		body = body[n:]
	case OpSnapRelease, OpBackup:
		if r.Snap, n, err = uvarint(body); err != nil {
			return err
		}
		body = body[n:]
	case OpScan:
		if r.Key, n, err = parseBlob(body, MaxKeyLen); err != nil {
			return err
		}
		body = body[n:]
		if r.Limit, n, err = uvarint(body); err != nil {
			return err
		}
		body = body[n:]
	default:
		return ErrUnknownOp
	}
	if len(body) != 0 {
		return fmt.Errorf("kvwire: %d trailing bytes after %s payload", len(body), r.Op)
	}
	return nil
}

// Response is a parsed response frame. Payload aliases the frame
// buffer; its interpretation depends on the opcode of the request the
// ID matches (ParseValuePayload, ParseBoolPayload, ParseBatchPayload,
// ParseStatsPayload, ParseErrorPayload).
type Response struct {
	Status  Status
	ID      uint64
	Payload []byte
}

// Parse decodes a response body.
func (r *Response) Parse(body []byte) error {
	if len(body) < 1 {
		return ErrTruncated
	}
	r.Status = Status(body[0])
	id, n, err := uvarint(body[1:])
	if err != nil {
		return err
	}
	r.ID = id
	r.Payload = body[1+n:]
	return nil
}

// ParseValuePayload decodes a GET success payload.
func ParseValuePayload(p []byte) ([]byte, error) {
	v, n, err := parseBlob(p, MaxValueLen)
	if err != nil {
		return nil, err
	}
	if n != len(p) {
		return nil, ErrTruncated
	}
	return v, nil
}

// ParseBoolPayload decodes an EXIST success payload.
func ParseBoolPayload(p []byte) (bool, error) {
	if len(p) != 1 || p[0] > 1 {
		return false, ErrTruncated
	}
	return p[0] == 1, nil
}

// ParseErrorPayload decodes the optional detail of a non-OK response;
// it returns "" if the payload is absent or malformed.
func ParseErrorPayload(p []byte) string {
	msg, n, err := parseBlob(p, MaxFrameLen)
	if err != nil || n != len(p) {
		return ""
	}
	return string(msg)
}

// ParseScanPayload decodes a SCAN success payload, appending entries to
// dst (pass dst[:0] to reuse). Entry keys and values alias p.
func ParseScanPayload(p []byte, dst []ScanEntry) ([]ScanEntry, error) {
	count, n, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if count > MaxScanResults {
		return dst, ErrFrameTooLarge
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		var e ScanEntry
		if e.Key, n, err = parseBlob(p, MaxKeyLen); err != nil {
			return dst, err
		}
		p = p[n:]
		if e.Value, n, err = parseBlob(p, MaxValueLen); err != nil {
			return dst, err
		}
		p = p[n:]
		dst = append(dst, e)
	}
	if len(p) != 0 {
		return dst, ErrTruncated
	}
	return dst, nil
}

// ParseBatchPayload decodes a BATCH success payload, appending items to
// dst (pass dst[:0] to reuse). Item values alias p.
func ParseBatchPayload(p []byte, dst []BatchItem) ([]BatchItem, error) {
	count, n, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if count > MaxBatchOps {
		return dst, ErrFrameTooLarge
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return dst, ErrTruncated
		}
		var it BatchItem
		it.Status = Status(p[0])
		p = p[1:]
		if it.Value, n, err = parseBlob(p, MaxValueLen); err != nil {
			return dst, err
		}
		if len(it.Value) == 0 {
			it.Value = nil
		}
		p = p[n:]
		dst = append(dst, it)
	}
	if len(p) != 0 {
		return dst, ErrTruncated
	}
	return dst, nil
}

// FrameReader reads length-prefixed frames from a stream into a reused
// buffer. It is not safe for concurrent use.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r. Frames longer than MaxFrameLen are rejected
// without buffering.
func NewFrameReader(r io.Reader) *FrameReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &FrameReader{r: br}
	}
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next frame body. The returned slice is valid only
// until the following Next call. A clean EOF at a frame boundary
// returns io.EOF; EOF inside a frame returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return nil, err // io.EOF at a frame boundary is clean
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, ErrFrameTooLarge
	}
	if n == 0 {
		return nil, ErrTruncated
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
