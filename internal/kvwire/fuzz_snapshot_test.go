package kvwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzSnapshotWire exercises the snapshot/backup additions to the
// protocol: SNAPSHOT/SNAPGET/SNAPRELEASE/BACKUP request frames, the
// field-count-versioned SNAPSHOT response, and the chunk/trailer frames
// of a BACKUP stream. The properties: no input panics or over-reads,
// anything that decodes re-encodes byte-identically, a truncated frame
// is a decode refusal (never a silently short result), and unknown
// backup markers or out-of-range trailer fields are rejected.
func FuzzSnapshotWire(f *testing.F) {
	// Well-formed request frames, including the snap-0 "capture your
	// own" backup form and a SNAPGET against an unknown (huge) snapshot
	// ID — resolving the ID is the server's job, the codec must carry it
	// verbatim either way.
	f.Add(AppendSnapshot(nil, 1))
	f.Add(AppendSnapGet(nil, 2, 7, []byte("key")))
	f.Add(AppendSnapGet(nil, 3, 1<<63, []byte("k")))
	f.Add(AppendSnapRelease(nil, 4, 7))
	f.Add(AppendBackup(nil, 5, 0))
	f.Add(AppendBackup(nil, 6, 424242))

	// Response frames: snapshot info, an empty chunk, a loaded chunk, a
	// trailer, and a whole miniature stream back to back.
	f.Add(AppendSnapshotResponse(nil, 7, &SnapInfo{ID: 1, Epoch: 42, Records: 9}))
	f.Add(AppendBackupChunk(nil, 8, nil))
	chunk := AppendBackupChunk(nil, 9, []ScanEntry{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("bb"), Value: nil},
	})
	f.Add(chunk)
	f.Add(AppendBackupTrailer(nil, 10, 99, 2, 0xDEADBEEF))
	stream := AppendBackupChunk(nil, 11, []ScanEntry{{Key: []byte("k"), Value: []byte("v")}})
	stream = AppendBackupTrailer(stream, 11, 1, 1, BackupCRC(0, []byte("k"), []byte("v")))
	f.Add(stream)

	// Truncations: a chunk cut mid-entry, a trailer cut mid-varint, a
	// snapshot response cut mid-field.
	f.Add(chunk[:len(chunk)-2])
	trailer := AppendBackupTrailer(nil, 12, 1<<40, 1<<20, 1)
	f.Add(trailer[:len(trailer)-1])
	snresp := AppendSnapshotResponse(nil, 13, &SnapInfo{ID: 5, Epoch: 6, Records: 7})
	f.Add(snresp[:len(snresp)-1])

	// Hostile shapes: unknown backup marker, a chunk declaring more
	// entries than MaxBackupChunk, a trailer whose CRC overflows 32 bits,
	// and a snapshot response declaring an absurd field count.
	badMarker := []byte{6, 0, 0, 0, byte(StatusOK), 1, 2, 0}
	f.Add(badMarker)
	var hostile []byte
	hostile = append(hostile, byte(StatusOK), 1, BackupMarkerChunk)
	hostile = binary.AppendUvarint(hostile, MaxBackupChunk+1)
	f.Add(frameOf(hostile))
	var bigcrc []byte
	bigcrc = append(bigcrc, byte(StatusOK), 1, BackupMarkerTrailer)
	bigcrc = binary.AppendUvarint(bigcrc, 1)
	bigcrc = binary.AppendUvarint(bigcrc, 1)
	bigcrc = binary.AppendUvarint(bigcrc, 1<<33)
	f.Add(frameOf(bigcrc))
	var manyFields []byte
	manyFields = append(manyFields, byte(StatusOK), 1)
	manyFields = binary.AppendUvarint(manyFields, 1<<20)
	f.Add(frameOf(manyFields))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var req Request
		var resp Response
		for frames := 0; frames < 64; frames++ {
			body, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge && err != ErrTruncated {
					t.Fatalf("Next: unexpected error type %v", err)
				}
				break
			}
			if err := req.Parse(body); err == nil {
				switch req.Op {
				case OpSnapshot, OpSnapGet, OpSnapRelease, OpBackup:
					reencoded := reencode(&req)
					var again Request
					if err := again.Parse(reencoded[4:]); err != nil {
						t.Fatalf("re-encoded %v failed to parse: %v", req.Op, err)
					}
					if !requestsEqual(&req, &again) {
						t.Fatalf("%v round-trip mismatch:\n got %+v\nwant %+v", req.Op, again, req)
					}
				}
			}
			if err := resp.Parse(body); err != nil {
				continue
			}
			// Both snapshot-family payload decoders must survive any
			// successfully-framed response payload.
			if info, err := ParseSnapshotPayload(resp.Payload); err == nil {
				re := AppendSnapshotResponse(nil, resp.ID, &info)
				var again Response
				if err := again.Parse(re[4:]); err != nil {
					t.Fatalf("re-encoded snapshot response: %v", err)
				}
				info2, err := ParseSnapshotPayload(again.Payload)
				if err != nil || info2 != info {
					t.Fatalf("snapshot payload round-trip: %+v -> %+v (%v)", info, info2, err)
				}
			}
			bf, err := ParseBackupFrame(resp.Payload, nil)
			if err != nil {
				continue
			}
			// A decoded backup frame re-encodes to an identical decode.
			var re []byte
			if bf.Trailer {
				re = AppendBackupTrailer(nil, resp.ID, bf.Epoch, bf.Total, bf.CRC)
			} else {
				re = AppendBackupChunk(nil, resp.ID, bf.Entries)
			}
			var again Response
			if err := again.Parse(re[4:]); err != nil {
				t.Fatalf("re-encoded backup frame: %v", err)
			}
			bf2, err := ParseBackupFrame(again.Payload, nil)
			if err != nil {
				t.Fatalf("re-encoded backup frame failed to decode: %v", err)
			}
			if bf2.Trailer != bf.Trailer || bf2.Epoch != bf.Epoch ||
				bf2.Total != bf.Total || bf2.CRC != bf.CRC ||
				len(bf2.Entries) != len(bf.Entries) {
				t.Fatalf("backup frame round-trip mismatch:\n got %+v\nwant %+v", bf2, bf)
			}
			for i := range bf.Entries {
				if !bytes.Equal(bf.Entries[i].Key, bf2.Entries[i].Key) ||
					!bytes.Equal(bf.Entries[i].Value, bf2.Entries[i].Value) {
					t.Fatalf("backup entry %d round-trip mismatch", i)
				}
			}
		}
	})
}

// frameOf wraps a raw frame body in the u32 length prefix FrameReader
// expects, for hand-built hostile seeds.
func frameOf(body []byte) []byte {
	out := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)))
	return append(out, body...)
}
