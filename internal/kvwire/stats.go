package kvwire

import "encoding/binary"

// Stats is the device snapshot carried by a STATS response: the counter
// subset remote operators need for dashboards and load tools. All
// fields are uvarints on the wire, preceded by a field count, so old
// parsers skip fields a newer server appends and a newer parser
// zero-fills fields an older server omits.
type Stats struct {
	Shards          uint64
	Stores          uint64
	Retrieves       uint64
	Deletes         uint64
	Exists          uint64
	BytesWritten    uint64
	BytesRead       uint64
	IndexRecords    uint64
	Resizes         uint64
	CollisionAborts uint64
	FlashReads      uint64
	FlashPrograms   uint64
	FlashErases     uint64
	GCRuns          uint64
	Checkpoints     uint64
	// Simulated latency percentiles, nanoseconds.
	StoreP50ns    uint64
	StoreP99ns    uint64
	RetrieveP50ns uint64
	RetrieveP99ns uint64
	// Write-ahead-log counters; all zero when the server runs without a
	// WAL. WALGroupP50/Max describe the records-per-group-commit
	// distribution (how much locking and fsync each append amortized).
	WALRecords  uint64
	WALBytes    uint64
	WALGroups   uint64
	WALFsyncs   uint64
	WALGroupP50 uint64
	WALGroupMax uint64
	// Lock-free read-path counters: reads served with no shard lock,
	// optimistic attempts invalidated by racing writers, reads that fell
	// back to the exclusive lock, and reader epoch pins on the
	// reclamation domain. All zero on servers predating the optimistic
	// tier (the field-count versioning zero-fills them).
	OptimisticReads   uint64
	OptimisticRetries uint64
	FallbackExclusive uint64
	EpochPins         uint64
	// Cache-tier counters: the index-page cache's hits/misses plus the
	// TinyLFU admission rejects, the hot-value tier's hits/misses, and
	// scan prefetch hits. All zero on servers predating the tiered cache
	// (field-count versioning zero-fills them) or running default-off.
	CacheHits        uint64
	CacheMisses      uint64
	AdmissionRejects uint64
	ValueCacheHits   uint64
	ValueCacheMisses uint64
	PrefetchHits     uint64
}

// fields returns the wire order; append new fields at the end only.
func (s *Stats) fields() []*uint64 {
	return []*uint64{
		&s.Shards, &s.Stores, &s.Retrieves, &s.Deletes, &s.Exists,
		&s.BytesWritten, &s.BytesRead,
		&s.IndexRecords, &s.Resizes, &s.CollisionAborts,
		&s.FlashReads, &s.FlashPrograms, &s.FlashErases,
		&s.GCRuns, &s.Checkpoints,
		&s.StoreP50ns, &s.StoreP99ns, &s.RetrieveP50ns, &s.RetrieveP99ns,
		&s.WALRecords, &s.WALBytes, &s.WALGroups, &s.WALFsyncs,
		&s.WALGroupP50, &s.WALGroupMax,
		&s.OptimisticReads, &s.OptimisticRetries,
		&s.FallbackExclusive, &s.EpochPins,
		&s.CacheHits, &s.CacheMisses, &s.AdmissionRejects,
		&s.ValueCacheHits, &s.ValueCacheMisses, &s.PrefetchHits,
	}
}

// AppendStatsResponse appends a STATS success frame.
func AppendStatsResponse(dst []byte, id uint64, s *Stats) []byte {
	mark, dst := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = binary.AppendUvarint(dst, id)
	fields := s.fields()
	dst = binary.AppendUvarint(dst, uint64(len(fields)))
	for _, f := range fields {
		dst = binary.AppendUvarint(dst, *f)
	}
	return endFrame(dst, mark)
}

// ParseStatsPayload decodes a STATS success payload.
func ParseStatsPayload(p []byte) (Stats, error) {
	var s Stats
	count, n, err := uvarint(p)
	if err != nil {
		return s, err
	}
	if count > 1<<10 {
		return s, ErrFrameTooLarge
	}
	p = p[n:]
	fields := s.fields()
	for i := uint64(0); i < count; i++ {
		v, n, err := uvarint(p)
		if err != nil {
			return s, err
		}
		p = p[n:]
		if i < uint64(len(fields)) {
			*fields[i] = v
		}
	}
	if len(p) != 0 {
		return s, ErrTruncated
	}
	return s, nil
}
