package kvwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzWireCodec feeds arbitrary byte streams through the full decode
// path — frame reader, request parse, response parse, payload helpers —
// asserting it never panics, never over-reads, and that anything that
// decodes as a request re-encodes to a frame that decodes identically.
func FuzzWireCodec(f *testing.F) {
	// Well-formed frames of every shape.
	f.Add(AppendPut(nil, 1, []byte("key"), []byte("value")))
	f.Add(AppendGet(nil, 2, []byte("key")))
	f.Add(AppendDel(nil, 3, []byte("key")))
	f.Add(AppendExist(nil, 4, []byte("key")))
	f.Add(AppendStats(nil, 5))
	f.Add(AppendBatch(nil, 6, []BatchOp{
		{Op: OpPut, Key: []byte("a"), Value: []byte("1")},
		{Op: OpGet, Key: []byte("b")},
		{Op: OpDel, Key: []byte("c")},
	}))
	f.Add(AppendOK(nil, 7))
	f.Add(AppendError(nil, 8, StatusBusy, "backpressure"))
	f.Add(AppendValueResponse(nil, 9, []byte("v")))
	f.Add(AppendBoolResponse(nil, 10, true))
	f.Add(AppendBatchResponse(nil, 11, []BatchItem{{Status: StatusOK, Value: []byte("v")}, {Status: StatusNotFound}}))
	f.Add(AppendStatsResponse(nil, 12, &Stats{Shards: 8, Stores: 100}))

	// Truncated frames: header cut mid-length, body cut mid-payload.
	whole := AppendPut(nil, 13, []byte("kk"), []byte("vv"))
	f.Add(whole[:2])
	f.Add(whole[:len(whole)-3])

	// Oversized declared lengths: frame length beyond MaxFrameLen, and
	// an inner key length far beyond the actual body.
	var huge [8]byte
	binary.LittleEndian.PutUint32(huge[:4], MaxFrameLen+1)
	f.Add(huge[:])
	hostile := []byte{9, 0, 0, 0, byte(OpPut), 1}
	hostile = binary.AppendUvarint(hostile, 1<<60)
	f.Add(hostile)

	// Unknown opcodes and statuses.
	f.Add([]byte{3, 0, 0, 0, 0xEE, 0x01, 0x00})
	f.Add([]byte{2, 0, 0, 0, 0xEE, 0x01})

	// Multiple frames back to back.
	f.Add(append(AppendGet(nil, 14, []byte("x")), AppendDel(nil, 15, []byte("y"))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var req Request
		var resp Response
		for frames := 0; frames < 64; frames++ {
			body, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge && err != ErrTruncated {
					t.Fatalf("Next: unexpected error type %v", err)
				}
				break
			}
			if len(body) > MaxFrameLen {
				t.Fatalf("frame body %d exceeds MaxFrameLen", len(body))
			}
			if err := req.Parse(body); err == nil {
				reencoded := reencode(&req)
				var again Request
				if err := again.Parse(reencoded[4:]); err != nil {
					t.Fatalf("re-encoded request failed to parse: %v", err)
				}
				if !requestsEqual(&req, &again) {
					t.Fatalf("request round-trip mismatch:\n got %+v\nwant %+v", again, req)
				}
			}
			// Response-side decode of the same bytes must not panic.
			if err := resp.Parse(body); err == nil {
				ParseValuePayload(resp.Payload)
				ParseBoolPayload(resp.Payload)
				ParseErrorPayload(resp.Payload)
				ParseBatchPayload(resp.Payload, nil)
				ParseStatsPayload(resp.Payload)
			}
		}
	})
}

func reencode(r *Request) []byte {
	switch r.Op {
	case OpPut:
		return AppendPut(nil, r.ID, r.Key, r.Value)
	case OpGet:
		return AppendGet(nil, r.ID, r.Key)
	case OpDel:
		return AppendDel(nil, r.ID, r.Key)
	case OpExist:
		return AppendExist(nil, r.ID, r.Key)
	case OpBatch:
		return AppendBatch(nil, r.ID, r.Ops)
	case OpStats:
		return AppendStats(nil, r.ID)
	case OpSnapshot:
		return AppendSnapshot(nil, r.ID)
	case OpSnapGet:
		return AppendSnapGet(nil, r.ID, r.Snap, r.Key)
	case OpSnapRelease:
		return AppendSnapRelease(nil, r.ID, r.Snap)
	case OpBackup:
		return AppendBackup(nil, r.ID, r.Snap)
	case OpScan:
		return AppendScan(nil, r.ID, r.Key, r.Limit)
	}
	panic("unreachable: parsed request with unknown op")
}

func requestsEqual(a, b *Request) bool {
	if a.Op != b.Op || a.ID != b.ID || a.Snap != b.Snap || a.Limit != b.Limit ||
		!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Value, b.Value) ||
		len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i].Op != b.Ops[i].Op ||
			!bytes.Equal(a.Ops[i].Key, b.Ops[i].Key) ||
			!bytes.Equal(a.Ops[i].Value, b.Ops[i].Value) {
			return false
		}
	}
	return true
}
