package layout

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSigInfoEpoch feeds arbitrary page images through the info-area
// decoders, checking that v1 (flagless) and v2 (epoch-delta) formats
// decode consistently and that no input panics or reads out of bounds.
// The differential property: DecodeSigArea and SigInfoAt must agree on
// every slot, DecodePairAt must stay within the data area, and flipping
// the v2 flag must only reinterpret offsets, never change the count.
func FuzzSigInfoEpoch(f *testing.F) {
	// Seed: a genuine v2 page with epoch spread.
	b := NewPageBuilder(512)
	for i := 0; i < 4; i++ {
		b.Add(Pair{Sig: uint64(i) * 7, Key: []byte{byte('a' + i)}, Value: bytes.Repeat([]byte{byte(i)}, i+1), Epoch: 40 + uint64(i)*3})
	}
	f.Add(b.Bytes())
	// Seed: a v1 page (hand-encoded, no flag).
	var v1 []byte
	v1 = appendHeader(v1, Pair{Key: []byte("k"), Value: []byte("v"), Seq: 3})
	v1 = append(v1, 'k', 'v')
	var e [SigEntrySize + CountSize]byte
	binary.LittleEndian.PutUint64(e[:8], 9)
	binary.LittleEndian.PutUint32(e[8:12], 0)
	binary.LittleEndian.PutUint16(e[12:], 1)
	f.Add(append(v1, e[:]...))
	// Seed: an extent head (v2-flagged count of 1).
	head, _, err := BuildExtent(256, Pair{Sig: 1, Key: []byte("kk"), Value: bytes.Repeat([]byte{7}, 1000), Epoch: 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(head)
	// Seeds: corrupt shapes.
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Add([]byte{0x01, 0x80}) // v2 flag, count 1, no entry bytes

	f.Fuzz(func(t *testing.T, page []byte) {
		infos, err := DecodeSigArea(page)
		n, err2 := SigCount(page)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("DecodeSigArea err=%v but SigCount err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if len(infos) != n {
			t.Fatalf("DecodeSigArea %d entries, SigCount %d", len(infos), n)
		}
		dataEnd := len(page) - n*SigEntrySize - CountSize
		for i := range infos {
			one, m, err := SigInfoAt(page, i)
			if err != nil || m != n {
				t.Fatalf("slot %d: SigInfoAt err=%v m=%d", i, err, m)
			}
			if one != infos[i] {
				t.Fatalf("slot %d: %+v != %+v", i, one, infos[i])
			}
			hdr, key, value, err := DecodePairAt(page, int(one.Offset))
			if err != nil {
				continue // corrupt body is a legal decode refusal
			}
			if len(key) != hdr.KeyLen {
				t.Fatalf("slot %d: key %d bytes, header says %d", i, len(key), hdr.KeyLen)
			}
			if int(one.Offset)+HeaderSize+len(key)+len(value) > dataEnd {
				t.Fatalf("slot %d: pair overruns data area", i)
			}
		}
		// Out-of-range slots must refuse, not panic.
		if _, _, err := SigInfoAt(page, n); err == nil {
			t.Fatal("slot n decoded")
		}
		if _, _, err := SigInfoAt(page, -1); err == nil {
			t.Fatal("slot -1 decoded")
		}
	})
}
