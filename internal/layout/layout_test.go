package layout

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRPRoundTrip(t *testing.T) {
	r := MakeRP(123456, 789)
	if r.Page() != 123456 || r.Slot() != 789 {
		t.Fatalf("RP round trip: page=%d slot=%d", r.Page(), r.Slot())
	}
}

func TestRPRoundTripProperty(t *testing.T) {
	f := func(page uint32, slot uint16) bool {
		s := int(slot) % MaxSlots
		r := MakeRP(uint64(page), s)
		return r.Page() == uint64(page) && r.Slot() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRPBadSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeRP accepted out-of-range slot")
		}
	}()
	MakeRP(1, MaxSlots)
}

func TestRPFitsFiveBytes(t *testing.T) {
	// A 2 GiB device with 32 KiB pages has 65536 pages; the RP must stay
	// within the index's 40-bit address field.
	r := MakeRP(65536, MaxSlots-1)
	if uint64(r) >= 1<<40 {
		t.Fatalf("RP %#x exceeds 40 bits", uint64(r))
	}
}

func TestPageBuilderSinglePair(t *testing.T) {
	b := NewPageBuilder(4096)
	p := Pair{Sig: 42, Key: []byte("key"), Value: []byte("value"), Seq: 7}
	slot, ok := b.Add(p)
	if !ok || slot != 0 {
		t.Fatalf("Add = (%d,%v)", slot, ok)
	}
	page := b.Bytes()
	infos, err := DecodeSigArea(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Sig != 42 || infos[0].Offset != 0 {
		t.Fatalf("infos = %+v", infos)
	}
	hdr, key, val, err := DecodePairAt(page, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 7 || hdr.Tombstone() {
		t.Fatalf("hdr = %+v", hdr)
	}
	if !bytes.Equal(key, p.Key) || !bytes.Equal(val, p.Value) {
		t.Fatal("key/value mismatch")
	}
}

func TestPageBuilderPacksManyPairs(t *testing.T) {
	const pageSize = 32 * 1024
	b := NewPageBuilder(pageSize)
	var added []Pair
	rng := rand.New(rand.NewSource(5))
	for i := 0; ; i++ {
		p := Pair{
			Sig:   rng.Uint64(),
			Key:   []byte{byte(i), byte(i >> 8), 'k'},
			Value: bytes.Repeat([]byte{byte(i)}, rng.Intn(100)),
			Seq:   uint64(i),
		}
		slot, ok := b.Add(p)
		if !ok {
			break
		}
		if slot != len(added) {
			t.Fatalf("slot %d, want %d", slot, len(added))
		}
		added = append(added, p)
	}
	if len(added) < 100 {
		t.Fatalf("only packed %d pairs into a 32K page", len(added))
	}
	page := b.Bytes()
	if len(page) > pageSize {
		t.Fatalf("page image %d > %d", len(page), pageSize)
	}
	infos, err := DecodeSigArea(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(added) {
		t.Fatalf("decoded %d infos, want %d", len(infos), len(added))
	}
	for i, p := range added {
		if infos[i].Sig != p.Sig {
			t.Fatalf("pair %d sig mismatch", i)
		}
		hdr, key, val, err := DecodePairAt(page, int(infos[i].Offset))
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Seq != p.Seq || !bytes.Equal(key, p.Key) || !bytes.Equal(val, p.Value) {
			t.Fatalf("pair %d body mismatch", i)
		}
	}
}

func TestPageBuilderRejectsWhenFull(t *testing.T) {
	b := NewPageBuilder(128)
	big := Pair{Key: []byte("k"), Value: bytes.Repeat([]byte{1}, 200)}
	if _, ok := b.Add(big); ok {
		t.Fatal("Add accepted oversized pair")
	}
	small := Pair{Key: []byte("k"), Value: []byte("v")}
	if _, ok := b.Add(small); !ok {
		t.Fatal("Add rejected fitting pair")
	}
}

func TestPageBuilderReset(t *testing.T) {
	b := NewPageBuilder(512)
	b.Add(Pair{Key: []byte("a"), Value: []byte("1")})
	b.Reset()
	if b.Count() != 0 || b.DataLen() != 0 || !b.Empty() {
		t.Fatal("Reset left state")
	}
	slot, ok := b.Add(Pair{Key: []byte("b"), Value: []byte("2")})
	if !ok || slot != 0 {
		t.Fatalf("Add after Reset = (%d,%v)", slot, ok)
	}
}

func TestTombstoneRoundTrip(t *testing.T) {
	b := NewPageBuilder(512)
	b.Add(Pair{Sig: 9, Key: []byte("dead"), Tombstone: true, Seq: 3})
	page := b.Bytes()
	hdr, key, val, err := DecodePairAt(page, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Tombstone() || string(key) != "dead" || len(val) != 0 {
		t.Fatalf("tombstone decode: hdr=%+v key=%q val=%q", hdr, key, val)
	}
}

func TestPackDecodePropertyRoundTrip(t *testing.T) {
	f := func(raw [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewPageBuilder(2048)
		var pairs []Pair
		for i, v := range raw {
			if len(v) > 300 {
				v = v[:300]
			}
			p := Pair{
				Sig:   rng.Uint64(),
				Key:   []byte{byte(i + 1)},
				Value: v,
				Seq:   uint64(i),
			}
			if _, ok := b.Add(p); ok {
				pairs = append(pairs, p)
			}
		}
		page := b.Bytes()
		infos, err := DecodeSigArea(page)
		if err != nil || len(infos) != len(pairs) {
			return false
		}
		for i, p := range pairs {
			hdr, key, val, err := DecodePairAt(page, int(infos[i].Offset))
			if err != nil || hdr.Seq != p.Seq {
				return false
			}
			if !bytes.Equal(key, p.Key) || !bytes.Equal(val, p.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSigAreaCorrupt(t *testing.T) {
	if _, err := DecodeSigArea([]byte{1}); err == nil {
		t.Fatal("accepted page shorter than count")
	}
	// Count claims more entries than the page holds.
	page := []byte{0, 0, 0, 0xff, 0xff}
	if _, err := DecodeSigArea(page); err == nil {
		t.Fatal("accepted absurd count")
	}
}

func TestDecodePairAtCorrupt(t *testing.T) {
	if _, _, _, err := DecodePairAt([]byte{1, 2}, 0); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, _, _, err := DecodePairAt(make([]byte, 64), -1); err == nil {
		t.Fatal("accepted negative offset")
	}
	// Header claims a key longer than the page.
	b := NewPageBuilder(128)
	b.Add(Pair{Key: []byte("k"), Value: []byte("v")})
	page := b.Bytes()
	page[1] = 0xff // key length low byte
	page[2] = 0xff
	if _, _, _, err := DecodePairAt(page, 0); err == nil {
		t.Fatal("accepted key overrun")
	}
}

func TestExtentRoundTrip(t *testing.T) {
	const pageSize = 4096
	val := make([]byte, 3*pageSize+500)
	rng := rand.New(rand.NewSource(2))
	rng.Read(val)
	p := Pair{Sig: 77, Key: []byte("bigkey"), Value: val, Seq: 11}

	head, conts, err := BuildExtent(pageSize, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) > pageSize {
		t.Fatalf("head %d > page", len(head))
	}
	wantPages := ExtentPages(pageSize, len(p.Key), len(val))
	if 1+len(conts) != wantPages {
		t.Fatalf("extent spans %d pages, ExtentPages says %d", 1+len(conts), wantPages)
	}
	for i, c := range conts {
		if len(c) > pageSize {
			t.Fatalf("continuation %d is %d bytes", i, len(c))
		}
	}

	infos, err := DecodeSigArea(head)
	if err != nil || len(infos) != 1 || infos[0].Sig != 77 {
		t.Fatalf("head sig area: %v %v", infos, err)
	}
	hdr, key, inline, err := DecodePairAt(head, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ValueLen != len(val) || !bytes.Equal(key, p.Key) {
		t.Fatalf("head decode: len=%d key=%q", hdr.ValueLen, key)
	}
	reassembled := append([]byte(nil), inline...)
	for _, c := range conts {
		reassembled = append(reassembled, c...)
	}
	if !bytes.Equal(reassembled, val) {
		t.Fatal("extent reassembly mismatch")
	}
}

func TestExtentRejectsSmallPair(t *testing.T) {
	if _, _, err := BuildExtent(4096, Pair{Key: []byte("k"), Value: []byte("v")}); err == nil {
		t.Fatal("BuildExtent accepted a pair that fits in one page")
	}
}

func TestExtentPagesSinglePage(t *testing.T) {
	if n := ExtentPages(4096, 16, 100); n != 1 {
		t.Fatalf("ExtentPages small = %d", n)
	}
	if n := ExtentPages(4096, 16, 4096); n != 2 {
		t.Fatalf("ExtentPages 1-page value = %d", n)
	}
}

func TestExtentRoundTripProperty(t *testing.T) {
	f := func(valLen uint16, keyLen uint8, seed int64) bool {
		const pageSize = 1024
		kl := int(keyLen)%32 + 1
		vl := int(valLen)%8000 + pageSize // always extent-sized
		rng := rand.New(rand.NewSource(seed))
		p := Pair{
			Sig:   rng.Uint64(),
			Key:   make([]byte, kl),
			Value: make([]byte, vl),
		}
		rng.Read(p.Key)
		rng.Read(p.Value)
		head, conts, err := BuildExtent(pageSize, p)
		if err != nil {
			return false
		}
		if 1+len(conts) != ExtentPages(pageSize, kl, vl) {
			return false
		}
		_, key, inline, err := DecodePairAt(head, 0)
		if err != nil || !bytes.Equal(key, p.Key) {
			return false
		}
		got := append([]byte(nil), inline...)
		for _, c := range conts {
			got = append(got, c...)
		}
		return bytes.Equal(got, p.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpareRoundTrip(t *testing.T) {
	owner := MakeRP(99999, 5)
	spare := EncodeSpare(KindContinuation, owner, 3)
	if len(spare) != SpareSizeUsed {
		t.Fatalf("spare len = %d", len(spare))
	}
	kind, got, seg, err := DecodeSpare(spare)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindContinuation || got != owner || seg != 3 {
		t.Fatalf("DecodeSpare = (%v,%v,%d)", kind, got, seg)
	}
}

func TestSpareRoundTripProperty(t *testing.T) {
	f := func(kind uint8, page uint32, slot uint16, seg uint16) bool {
		k := PageKind(kind%4 + 1)
		// Spare encoding carries 40-bit RPs: pages are bounded by 2^29.
		owner := MakeRP(uint64(page)%(1<<29), int(slot)%MaxSlots)
		gk, go_, gs, err := DecodeSpare(EncodeSpare(k, owner, int(seg)))
		return err == nil && gk == k && go_ == owner && gs == int(seg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSpareShort(t *testing.T) {
	if _, _, _, err := DecodeSpare([]byte{1, 2}); err == nil {
		t.Fatal("accepted short spare")
	}
}

func BenchmarkPageBuilderPack(b *testing.B) {
	val := make([]byte, 100)
	key := []byte("key-0000000000000")
	pb := NewPageBuilder(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pb.Add(Pair{Sig: uint64(i), Key: key, Value: val}); !ok {
			pb.Bytes()
			pb.Reset()
		}
	}
}
