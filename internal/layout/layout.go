// Package layout implements RHIK's key-value aware data layout (Fig. 4).
// Variable-size KV pairs are packed log-style into flash pages; each data
// page carries a key-signature information area (a 2-byte pair count plus
// one {signature, offset} entry per pair) that garbage collection scans
// without consulting the host. Values too large for one page are stored as
// extents — a head page followed by continuation pages within the same
// erase block — which removes any index-induced limit on value size
// (§IV-A5): the index stores only the starting address of the pair.
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Serialized sizes.
const (
	// HeaderSize is the per-pair metadata stored in front of the key:
	// flags (1) + key length (2) + value length (4) + sequence number (8).
	HeaderSize = 1 + 2 + 4 + 8
	// SigEntrySize is one key-signature information area entry:
	// signature (8) + in-page offset (4).
	SigEntrySize = 8 + 4
	// CountSize is the pair-count field closing the signature area.
	CountSize = 2
)

// Layout v2 (MVCC epochs). The count field's top bit flags the versioned
// info-area format: a v2 entry's 32-bit offset word packs the in-page
// offset in its low 16 bits and the pair's write-epoch delta (relative to
// the page's base epoch, recorded in the spare area) in its high 16 bits.
// Entry and count sizes are unchanged, so v1 and v2 pages are
// byte-length-identical and old checkpoints decode as epoch 0 — the
// compatibility shim. v2 requires in-page offsets to fit 16 bits, so
// builders fall back to v1 on pages larger than 64 KiB.
const (
	// countV2Flag marks a v2 info area in the count field's top bit.
	// MaxSlots (2048) keeps v1 counts well below it.
	countV2Flag = 0x8000
	// countMask extracts the pair count from the count field.
	countMask = 0x7FFF
	// maxV2PageSize bounds the page sizes whose offsets fit the v2
	// entry's 16-bit offset half.
	maxV2PageSize = 1 << 16
	// MaxEpochDelta is the largest per-pair epoch delta a v2 entry
	// encodes; a pair further from the page base opens a new page.
	MaxEpochDelta = 1<<16 - 1
	// MaxBaseEpoch is the largest base epoch the 7 spare-area bytes
	// hold (56 bits).
	MaxBaseEpoch = 1<<56 - 1
)

// Pair flags.
const (
	// FlagTombstone marks a delete record: the pair's key was removed.
	// Tombstones make deletions recoverable from the flash log.
	FlagTombstone = 1 << 0
)

// MaxKeyLen and MaxValueLen bound the encodable field widths.
const (
	MaxKeyLen   = 1<<16 - 1
	MaxValueLen = 1<<32 - 1
)

// SlotBits is the number of record-pointer bits addressing a pair's slot
// within its page; the rest address the page. A 32 KiB page holds at most
// ~1.2k minimal pairs, well under 1<<SlotBits.
const SlotBits = 11

// MaxSlots is the largest number of pairs addressable in one page.
const MaxSlots = 1 << SlotBits

// RP is a record pointer: the "physical address of the KV pair on flash"
// stored in index records. It packs a physical page address with the
// pair's slot index inside that page, and fits the index's 5-byte (40-bit)
// address field for any emulated geometry.
type RP uint64

// MakeRP composes a record pointer from a page address and slot index.
func MakeRP(page uint64, slot int) RP {
	if slot < 0 || slot >= MaxSlots {
		panic(fmt.Sprintf("layout: slot %d out of range", slot))
	}
	return RP(page<<SlotBits | uint64(slot))
}

// Page extracts the physical page address.
func (r RP) Page() uint64 { return uint64(r) >> SlotBits }

// Slot extracts the in-page slot index.
func (r RP) Slot() int { return int(uint64(r) & (MaxSlots - 1)) }

// Pair is one key-value record in device-internal form.
type Pair struct {
	Sig       uint64 // 64-bit key signature
	Key       []byte
	Value     []byte
	Seq       uint64 // global write sequence, for log-order recovery
	Epoch     uint64 // write epoch, for MVCC snapshot visibility
	Tombstone bool
}

// flags encodes the pair's flag byte.
func (p Pair) flags() byte {
	if p.Tombstone {
		return FlagTombstone
	}
	return 0
}

// PairSize reports the data-area bytes the pair body occupies.
func PairSize(keyLen, valueLen int) int { return HeaderSize + keyLen + valueLen }

// Errors returned by decoders.
var (
	ErrCorrupt  = errors.New("layout: corrupt page")
	ErrTooLarge = errors.New("layout: key or value exceeds encodable size")
)

// PageBuilder packs whole pairs into a single flash page image. The
// produced buffer is [pair bodies][sig entries][count]; it is trimmed to
// the bytes actually used, so partially-filled pages program quickly.
type PageBuilder struct {
	pageSize int
	v2       bool // offsets fit 16 bits: emit the epoch-carrying v2 format
	buf      []byte
	sigs     []uint64
	offs     []uint32
	deltas   []uint16
	base     uint64 // first pair's epoch; the page's base epoch
}

// NewPageBuilder returns a builder for pages of the given size.
func NewPageBuilder(pageSize int) *PageBuilder {
	return &PageBuilder{
		pageSize: pageSize,
		v2:       pageSize <= maxV2PageSize,
		buf:      make([]byte, 0, pageSize),
	}
}

// Fits reports whether a pair with the given key and value lengths can
// still be added to this page.
func (b *PageBuilder) Fits(keyLen, valueLen int) bool {
	if len(b.sigs) >= MaxSlots {
		return false
	}
	need := PairSize(keyLen, valueLen) + SigEntrySize
	return len(b.buf)+need+(len(b.sigs)*SigEntrySize)+CountSize <= b.pageSize
}

// Add appends a whole pair, returning its slot index. ok is false when the
// pair does not fit — by size, or (v2) because its epoch cannot be
// expressed as a 16-bit delta from the page's base epoch, which forces
// the caller to flush and open a fresh page with a fresh base.
func (b *PageBuilder) Add(p Pair) (slot int, ok bool) {
	if len(p.Key) > MaxKeyLen || len(p.Value) > MaxValueLen {
		return 0, false
	}
	if !b.Fits(len(p.Key), len(p.Value)) {
		return 0, false
	}
	var delta uint64
	if b.v2 {
		if len(b.sigs) == 0 {
			b.base = p.Epoch
		} else if p.Epoch < b.base || p.Epoch-b.base > MaxEpochDelta {
			return 0, false
		}
		delta = p.Epoch - b.base
	}
	slot = len(b.sigs)
	b.sigs = append(b.sigs, p.Sig)
	b.offs = append(b.offs, uint32(len(b.buf)))
	b.deltas = append(b.deltas, uint16(delta))
	b.buf = appendHeader(b.buf, p)
	b.buf = append(b.buf, p.Key...)
	b.buf = append(b.buf, p.Value...)
	return slot, true
}

// Base reports the page's base epoch: the first added pair's epoch (zero
// while empty, or when the builder emits the v1 format). The caller
// records it in the page's spare area via EncodeDataSpare.
func (b *PageBuilder) Base() uint64 {
	if !b.v2 || len(b.sigs) == 0 {
		return 0
	}
	return b.base
}

// Count reports the number of pairs added so far.
func (b *PageBuilder) Count() int { return len(b.sigs) }

// DataLen reports the bytes of pair bodies written so far.
func (b *PageBuilder) DataLen() int { return len(b.buf) }

// Empty reports whether no pairs have been added.
func (b *PageBuilder) Empty() bool { return len(b.sigs) == 0 }

// Bytes finalizes the page image: pair bodies followed by the signature
// information area and the closing pair count. The builder remains usable
// only after Reset.
func (b *PageBuilder) Bytes() []byte {
	out := b.buf
	for i := range b.sigs {
		var e [SigEntrySize]byte
		binary.LittleEndian.PutUint64(e[:8], b.sigs[i])
		off := b.offs[i]
		if b.v2 {
			off |= uint32(b.deltas[i]) << 16
		}
		binary.LittleEndian.PutUint32(e[8:], off)
		out = append(out, e[:]...)
	}
	cntVal := uint16(len(b.sigs))
	if b.v2 {
		cntVal |= countV2Flag
	}
	var cnt [CountSize]byte
	binary.LittleEndian.PutUint16(cnt[:], cntVal)
	return append(out, cnt[:]...)
}

// Reset clears the builder for a new page.
func (b *PageBuilder) Reset() {
	b.buf = b.buf[:0]
	b.sigs = b.sigs[:0]
	b.offs = b.offs[:0]
	b.deltas = b.deltas[:0]
	b.base = 0
}

func appendHeader(buf []byte, p Pair) []byte {
	var h [HeaderSize]byte
	h[0] = p.flags()
	binary.LittleEndian.PutUint16(h[1:3], uint16(len(p.Key)))
	binary.LittleEndian.PutUint32(h[3:7], uint32(len(p.Value)))
	binary.LittleEndian.PutUint64(h[7:15], p.Seq)
	return append(buf, h[:]...)
}

// PairHeader is the decoded per-pair metadata.
type PairHeader struct {
	Flags    byte
	KeyLen   int
	ValueLen int // total value length, possibly spanning continuation pages
	Seq      uint64
}

// Tombstone reports whether the pair is a delete record.
func (h PairHeader) Tombstone() bool { return h.Flags&FlagTombstone != 0 }

// SigInfo is one decoded signature-area entry. EpochDelta is the pair's
// write epoch relative to the page's base epoch (DataSpareEpoch); it is
// zero for v1 pages, so base+delta degrades to "epoch 0" on pages written
// before versioning existed.
type SigInfo struct {
	Sig        uint64
	Offset     uint32
	EpochDelta uint32
}

// countAt decodes and validates the raw count field: the pair count and
// whether the page carries the v2 (epoch-delta) info-area format.
func countAt(page []byte) (n int, v2 bool, err error) {
	if len(page) < CountSize {
		return 0, false, fmt.Errorf("%w: page shorter than count field", ErrCorrupt)
	}
	raw := binary.LittleEndian.Uint16(page[len(page)-CountSize:])
	n = int(raw & countMask)
	v2 = raw&countV2Flag != 0
	if n > MaxSlots || len(page) < n*SigEntrySize+CountSize {
		return 0, false, fmt.Errorf("%w: count %d exceeds page", ErrCorrupt, n)
	}
	return n, v2, nil
}

// decodeEntry splits one raw offset word per the page's format version.
func decodeEntry(rawOff uint32, v2 bool) (off, delta uint32) {
	if v2 {
		return rawOff & 0xFFFF, rawOff >> 16
	}
	return rawOff, 0
}

// DecodeSigArea parses the signature information area at the tail of a
// page image produced by PageBuilder.Bytes or BuildExtent's head page.
func DecodeSigArea(page []byte) ([]SigInfo, error) {
	n, v2, err := countAt(page)
	if err != nil {
		return nil, err
	}
	infos := make([]SigInfo, n)
	base := len(page) - (n*SigEntrySize + CountSize)
	for i := 0; i < n; i++ {
		off := base + i*SigEntrySize
		infos[i].Sig = binary.LittleEndian.Uint64(page[off : off+8])
		raw := binary.LittleEndian.Uint32(page[off+8 : off+12])
		infos[i].Offset, infos[i].EpochDelta = decodeEntry(raw, v2)
	}
	return infos, nil
}

// SigCount reports the number of pairs in a page image without decoding
// the signature area.
func SigCount(page []byte) (int, error) {
	n, _, err := countAt(page)
	return n, err
}

// SigInfoAt decodes the single signature-area entry for slot, an
// allocation-free alternative to DecodeSigArea for point lookups on the
// GET hot path.
func SigInfoAt(page []byte, slot int) (SigInfo, int, error) {
	n, v2, err := countAt(page)
	if err != nil {
		return SigInfo{}, 0, err
	}
	if slot < 0 || slot >= n {
		return SigInfo{}, n, fmt.Errorf("%w: slot %d beyond page (%d pairs)", ErrCorrupt, slot, n)
	}
	off := len(page) - (n*SigEntrySize + CountSize) + slot*SigEntrySize
	raw := binary.LittleEndian.Uint32(page[off+8 : off+12])
	pOff, delta := decodeEntry(raw, v2)
	return SigInfo{
		Sig:        binary.LittleEndian.Uint64(page[off : off+8]),
		Offset:     pOff,
		EpochDelta: delta,
	}, n, nil
}

// DecodePairAt parses the pair body starting at offset off. The returned
// key and value alias the page buffer; value holds only the bytes present
// in this page's data area (shorter than header.ValueLen for extent
// heads, whose remainder lives in continuation pages). The page must end
// with a signature information area, which bounds the data area.
func DecodePairAt(page []byte, off int) (hdr PairHeader, key, value []byte, err error) {
	if off < 0 || off+HeaderSize > len(page) {
		return hdr, nil, nil, fmt.Errorf("%w: pair offset %d", ErrCorrupt, off)
	}
	n, _, err := countAt(page)
	if err != nil {
		return hdr, nil, nil, err
	}
	dataEnd := len(page) - n*SigEntrySize - CountSize
	hdr.Flags = page[off]
	hdr.KeyLen = int(binary.LittleEndian.Uint16(page[off+1 : off+3]))
	hdr.ValueLen = int(binary.LittleEndian.Uint32(page[off+3 : off+7]))
	hdr.Seq = binary.LittleEndian.Uint64(page[off+7 : off+15])

	keyStart := off + HeaderSize
	if keyStart+hdr.KeyLen > dataEnd {
		return hdr, nil, nil, fmt.Errorf("%w: key overruns page", ErrCorrupt)
	}
	key = page[keyStart : keyStart+hdr.KeyLen]
	valStart := keyStart + hdr.KeyLen
	valEnd := valStart + hdr.ValueLen
	if valEnd > dataEnd {
		valEnd = dataEnd // extent head: remainder lives in continuations
	}
	value = page[valStart:valEnd]
	return hdr, key, value, nil
}

// HeadCapacity reports how many value bytes fit in an extent head page for
// the given key length.
func HeadCapacity(pageSize, keyLen int) int {
	return pageSize - HeaderSize - keyLen - SigEntrySize - CountSize
}

// ExtentPages reports the total pages (head + continuations) a pair of the
// given sizes occupies, or 1 if it packs into a shared page.
func ExtentPages(pageSize, keyLen, valueLen int) int {
	if PairSize(keyLen, valueLen)+SigEntrySize+CountSize <= pageSize {
		return 1
	}
	rest := valueLen - HeadCapacity(pageSize, keyLen)
	return 1 + (rest+pageSize-1)/pageSize
}

// BuildExtent encodes a pair too large for one page as a head page image
// plus continuation payloads, each at most pageSize bytes. The pair's
// slot index in the head page is always 0.
func BuildExtent(pageSize int, p Pair) (head []byte, conts [][]byte, err error) {
	if len(p.Key) > MaxKeyLen || len(p.Value) > MaxValueLen {
		return nil, nil, ErrTooLarge
	}
	headCap := HeadCapacity(pageSize, len(p.Key))
	if headCap <= 0 {
		return nil, nil, fmt.Errorf("%w: key %d too large for page %d", ErrTooLarge, len(p.Key), pageSize)
	}
	if len(p.Value) <= headCap {
		return nil, nil, fmt.Errorf("layout: pair fits in one page; use PageBuilder")
	}

	head = make([]byte, 0, pageSize)
	head = appendHeader(head, p)
	head = append(head, p.Key...)
	head = append(head, p.Value[:headCap]...)
	// The head's single pair sits at offset 0 with delta 0: its epoch IS
	// the page base the caller records in the spare area.
	cnt := uint16(1)
	if pageSize <= maxV2PageSize {
		cnt |= countV2Flag
	}
	var e [SigEntrySize + CountSize]byte
	binary.LittleEndian.PutUint64(e[:8], p.Sig)
	binary.LittleEndian.PutUint32(e[8:12], 0)
	binary.LittleEndian.PutUint16(e[12:], cnt)
	head = append(head, e[:]...)

	for off := headCap; off < len(p.Value); off += pageSize {
		end := off + pageSize
		if end > len(p.Value) {
			end = len(p.Value)
		}
		conts = append(conts, p.Value[off:end])
	}
	return head, conts, nil
}

// PageKind labels what a flash page holds, recorded in its spare area so
// GC and recovery can classify pages without decoding them.
type PageKind byte

// Page kinds.
const (
	KindData         PageKind = 1 // packed pairs or an extent head
	KindContinuation PageKind = 2 // extent continuation payload
	KindIndex        PageKind = 3 // serialized record-layer hash table
	KindCheckpoint   PageKind = 4 // directory checkpoint segment
)

// SpareSizeUsed is the number of spare-area bytes the layout consumes:
// kind (1) + owner record pointer (5) + extent segment index (2).
const SpareSizeUsed = 1 + 5 + 2

// EncodeSpare packs the page classification written to a page's spare
// area. For continuation pages, owner is the head pair's record pointer
// and seg the 1-based continuation index; both are zero otherwise.
func EncodeSpare(kind PageKind, owner RP, seg int) []byte {
	b := make([]byte, SpareSizeUsed)
	b[0] = byte(kind)
	v := uint64(owner)
	b[1] = byte(v)
	b[2] = byte(v >> 8)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 32)
	binary.LittleEndian.PutUint16(b[6:8], uint16(seg))
	return b
}

// DecodeSpare parses a spare area written by EncodeSpare.
func DecodeSpare(spare []byte) (kind PageKind, owner RP, seg int, err error) {
	if len(spare) < SpareSizeUsed {
		return 0, 0, 0, fmt.Errorf("%w: spare area %d bytes", ErrCorrupt, len(spare))
	}
	kind = PageKind(spare[0])
	owner = RP(uint64(spare[1]) | uint64(spare[2])<<8 | uint64(spare[3])<<16 |
		uint64(spare[4])<<24 | uint64(spare[5])<<32)
	seg = int(binary.LittleEndian.Uint16(spare[6:8]))
	return kind, owner, seg, nil
}

// EncodeDataSpare packs a KindData spare area carrying the page's base
// write epoch in the 7 bytes EncodeSpare would zero (data pages have no
// owner pointer or segment index), keeping the spare byte-length
// identical to v1. Epochs are capped at 56 bits.
func EncodeDataSpare(baseEpoch uint64) []byte {
	if baseEpoch > MaxBaseEpoch {
		panic("layout: base epoch exceeds 56 bits")
	}
	b := make([]byte, SpareSizeUsed)
	b[0] = byte(KindData)
	for i := 0; i < 7; i++ {
		b[1+i] = byte(baseEpoch >> (8 * i))
	}
	return b
}

// DataSpareEpoch extracts the base write epoch from a KindData spare
// area. Pages written before layout v2 carry zeros there, so they decode
// as base epoch 0 — visible to every snapshot, the compatibility shim.
func DataSpareEpoch(spare []byte) uint64 {
	if len(spare) < SpareSizeUsed || PageKind(spare[0]) != KindData {
		return 0
	}
	var e uint64
	for i := 0; i < 7; i++ {
		e |= uint64(spare[1+i]) << (8 * i)
	}
	return e
}
