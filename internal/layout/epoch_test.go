package layout

import (
	"encoding/binary"
	"testing"
)

// TestPageBuilderEpochRoundTrip packs pairs carrying distinct write
// epochs and checks every slot's epoch survives the v2 info-area
// encoding: base epoch from the builder, per-slot delta from the entry.
func TestPageBuilderEpochRoundTrip(t *testing.T) {
	b := NewPageBuilder(4096)
	epochs := []uint64{100, 100, 101, 105, 100 + MaxEpochDelta}
	for i, e := range epochs {
		_, ok := b.Add(Pair{Sig: uint64(i), Key: []byte{byte(i)}, Value: []byte{1, 2}, Epoch: e})
		if !ok {
			t.Fatalf("pair %d did not fit", i)
		}
	}
	if b.Base() != 100 {
		t.Fatalf("Base() = %d, want 100", b.Base())
	}
	page := b.Bytes()
	infos, err := DecodeSigArea(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(epochs) {
		t.Fatalf("%d entries, want %d", len(infos), len(epochs))
	}
	for i, e := range epochs {
		got := b.Base() + uint64(infos[i].EpochDelta)
		if got != e {
			t.Errorf("slot %d: epoch %d, want %d", i, got, e)
		}
		one, _, err := SigInfoAt(page, i)
		if err != nil {
			t.Fatal(err)
		}
		if one != infos[i] {
			t.Errorf("slot %d: SigInfoAt %+v != DecodeSigArea %+v", i, one, infos[i])
		}
		hdr, key, _, err := DecodePairAt(page, int(infos[i].Offset))
		if err != nil {
			t.Fatal(err)
		}
		if hdr.KeyLen != 1 || key[0] != byte(i) {
			t.Errorf("slot %d: wrong pair decoded", i)
		}
	}
}

// TestPageBuilderEpochOverflowOpensNewPage: a pair whose epoch is too far
// above (or below) the page base must be refused so the caller flushes.
func TestPageBuilderEpochOverflowOpensNewPage(t *testing.T) {
	b := NewPageBuilder(4096)
	if _, ok := b.Add(Pair{Sig: 1, Key: []byte("a"), Value: []byte("v"), Epoch: 500}); !ok {
		t.Fatal("first pair did not fit")
	}
	if _, ok := b.Add(Pair{Sig: 2, Key: []byte("b"), Value: []byte("v"), Epoch: 500 + MaxEpochDelta + 1}); ok {
		t.Fatal("over-delta pair accepted")
	}
	if _, ok := b.Add(Pair{Sig: 3, Key: []byte("c"), Value: []byte("v"), Epoch: 499}); ok {
		t.Fatal("below-base pair accepted")
	}
	// Still usable for in-range epochs.
	if _, ok := b.Add(Pair{Sig: 4, Key: []byte("d"), Value: []byte("v"), Epoch: 501}); !ok {
		t.Fatal("in-range pair refused")
	}
	// After Reset the refused epoch fits a fresh page.
	b.Reset()
	if _, ok := b.Add(Pair{Sig: 2, Key: []byte("b"), Value: []byte("v"), Epoch: 500 + MaxEpochDelta + 1}); !ok {
		t.Fatal("fresh page refused the pair")
	}
	if b.Base() != 500+MaxEpochDelta+1 {
		t.Fatalf("fresh base %d", b.Base())
	}
}

// TestV1PageDecodesAsEpochZero is the compatibility shim: an info area
// written in the v1 format (no count flag, full 32-bit offsets) must
// decode with EpochDelta 0 on every entry.
func TestV1PageDecodesAsEpochZero(t *testing.T) {
	// Hand-build a v1 page: one pair body, one 12-byte entry, count=1
	// without the v2 flag.
	var page []byte
	page = appendHeader(page, Pair{Key: []byte("k"), Value: []byte("val"), Seq: 7})
	page = append(page, 'k')
	page = append(page, "val"...)
	var e [SigEntrySize + CountSize]byte
	binary.LittleEndian.PutUint64(e[:8], 42)
	binary.LittleEndian.PutUint32(e[8:12], 0)
	binary.LittleEndian.PutUint16(e[12:], 1)
	page = append(page, e[:]...)

	infos, err := DecodeSigArea(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].EpochDelta != 0 || infos[0].Sig != 42 {
		t.Fatalf("v1 decode: %+v", infos)
	}
	hdr, key, value, err := DecodePairAt(page, int(infos[0].Offset))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 7 || string(key) != "k" || string(value) != "val" {
		t.Fatalf("v1 pair decode: %+v %q %q", hdr, key, value)
	}
}

// TestV1LargePageOffsets: a builder for pages beyond the v2 offset range
// must fall back to v1 so large offsets are not truncated to 16 bits.
func TestV1LargePageOffsets(t *testing.T) {
	const pageSize = 1 << 17
	b := NewPageBuilder(pageSize)
	big := make([]byte, 70000)
	if _, ok := b.Add(Pair{Sig: 1, Key: []byte("a"), Value: big, Epoch: 9}); !ok {
		t.Fatal("big pair did not fit")
	}
	if _, ok := b.Add(Pair{Sig: 2, Key: []byte("b"), Value: []byte("v"), Epoch: 9}); !ok {
		t.Fatal("second pair did not fit")
	}
	if b.Base() != 0 {
		t.Fatalf("v1 builder reports base %d, want 0", b.Base())
	}
	page := b.Bytes()
	infos, err := DecodeSigArea(page)
	if err != nil {
		t.Fatal(err)
	}
	if infos[1].Offset <= 70000 {
		t.Fatalf("second offset %d truncated", infos[1].Offset)
	}
	if infos[1].EpochDelta != 0 {
		t.Fatalf("v1 entry decoded delta %d", infos[1].EpochDelta)
	}
	_, key, _, err := DecodePairAt(page, int(infos[1].Offset))
	if err != nil || string(key) != "b" {
		t.Fatalf("large-offset pair decode: %q %v", key, err)
	}
}

// TestExtentHeadEpoch: BuildExtent's head page must carry the v2 flag on
// small pages (delta 0; the base rides in the spare area).
func TestExtentHeadEpoch(t *testing.T) {
	const pageSize = 4096
	val := make([]byte, 3*pageSize)
	head, _, err := BuildExtent(pageSize, Pair{Sig: 5, Key: []byte("k"), Value: val, Epoch: 77})
	if err != nil {
		t.Fatal(err)
	}
	info, n, err := SigInfoAt(head, 0)
	if err != nil || n != 1 {
		t.Fatalf("head sig area: %v n=%d", err, n)
	}
	if info.EpochDelta != 0 || info.Offset != 0 || info.Sig != 5 {
		t.Fatalf("head entry: %+v", info)
	}
}

// TestDataSpareEpochRoundTrip checks the 56-bit base epoch survives the
// spare area, that kind classification is preserved, and that a legacy
// all-zero payload reads back as epoch 0.
func TestDataSpareEpochRoundTrip(t *testing.T) {
	for _, e := range []uint64{0, 1, 77, 1 << 20, MaxBaseEpoch} {
		sp := EncodeDataSpare(e)
		if len(sp) != SpareSizeUsed {
			t.Fatalf("spare len %d", len(sp))
		}
		kind, _, _, err := DecodeSpare(sp)
		if err != nil || kind != KindData {
			t.Fatalf("epoch %d: kind %v err %v", e, kind, err)
		}
		if got := DataSpareEpoch(sp); got != e {
			t.Fatalf("epoch %d round-tripped as %d", e, got)
		}
	}
	// Legacy spare written by EncodeSpare: zeros decode as epoch 0.
	if got := DataSpareEpoch(EncodeSpare(KindData, 0, 0)); got != 0 {
		t.Fatalf("legacy spare epoch %d", got)
	}
	// Non-data spares never report an epoch.
	if got := DataSpareEpoch(EncodeSpare(KindContinuation, 99, 1)); got != 0 {
		t.Fatalf("continuation spare epoch %d", got)
	}
}
