// Package index defines the contract between the KVSSD device model and
// its pluggable key-to-physical-location indexes: RHIK (internal/core),
// the Samsung-style multi-level hash baseline (internal/mlhash), and the
// PinK-style LSM index (internal/lsmindex). All indexes persist their
// pages through the same Env, so flash-read counts and DRAM cache
// behaviour are directly comparable (Fig. 5).
package index

import (
	"errors"

	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/sim"
)

// ErrCollision is the paper's "uncorrectable error": the index cannot
// place a record (e.g. no hopscotch slot within the hop range) and the
// store operation must be aborted. The application is expected to retry
// with a different key.
var ErrCollision = errors.New("index: uncorrectable signature collision, operation aborted")

// ErrNeedExclusive is returned by the shared (reader-locked) and
// optimistic (lock-free) device read paths when an operation cannot
// proceed without mutating index structure — a DRAM cache miss that must
// load a page, or a lazy migration step during incremental resize. The
// shard catches it before any simulated-time charge has been made,
// takes the write lock, and re-executes the operation on the exclusive
// path.
var ErrNeedExclusive = errors.New("index: lookup needs exclusive access")

// ErrOptimisticRetry is returned by the lock-free read path when a
// version validation failed mid-operation: a writer mutated the probed
// table, swapped the directory generation, or restructured device state
// while the read was in flight. Unlike ErrNeedExclusive it is
// transient — the caller retries the optimistic path up to its retry
// budget before falling back to the exclusive lock. Simulated-time
// charges made before the failed validation stand (the speculative work
// really occupied the firmware), so only genuinely-raced operations pay
// the retry cost and single-threaded runs never see it.
var ErrOptimisticRetry = errors.New("index: optimistic read invalidated, retry")

// OptStatus classifies the outcome of an optimistic index probe.
type OptStatus uint8

const (
	// OptOK: the probe validated; its result may be acted on.
	OptOK OptStatus = iota
	// OptRetry: a concurrent mutation invalidated the probe; retrying
	// immediately may succeed.
	OptRetry
	// OptNeedExclusive: the probe cannot succeed without mutating index
	// structure (cache miss, unmigrated bucket, poisoned state); the
	// caller must escalate to the exclusive path.
	OptNeedExclusive
)

// Env is the device-side service surface an index uses to persist its
// pages. Index page reads and writes block the firmware timeline —
// mapping resolution is inherently serial — which is exactly why index
// residency in DRAM dominates KVSSD performance.
type Env interface {
	// ReadPage fetches an index page from flash, charging its latency
	// and counting one metadata flash read.
	ReadPage(p nand.PPA) ([]byte, error)
	// AppendPage programs an index page into the index zone log and
	// returns its address.
	AppendPage(data []byte) (nand.PPA, error)
	// Invalidate marks a superseded index page stale for GC.
	Invalidate(p nand.PPA)
	// ChargeCPU advances the firmware timeline by d (hashing, probing).
	ChargeCPU(d sim.Duration)
	// MetaReads reports cumulative metadata flash reads; the device
	// samples it around each operation for per-op distributions.
	MetaReads() int64
	// Now reports the current firmware time (for resize timing).
	Now() sim.Time
}

// Index is a key-signature → record-pointer map backed by flash pages.
// Implementations are single-threaded; the device serializes access.
type Index interface {
	// Insert stores or updates the record for sig, returning the
	// replaced record pointer (for staleness accounting) if any.
	// ErrCollision aborts the operation.
	Insert(sig Sig, rp uint64) (old uint64, replaced bool, err error)
	// Lookup returns the record pointer for sig.
	Lookup(sig Sig) (rp uint64, ok bool, err error)
	// Delete removes sig's record, returning the old record pointer.
	Delete(sig Sig) (rp uint64, ok bool, err error)
	// Exist is the signature-based membership check: true means the key
	// may exist (subject to signature-collision false positives), false
	// means it definitely does not.
	Exist(sig Sig) (bool, error)
	// Len reports the number of records.
	Len() int64
	// Flush writes all dirty index state to flash (checkpoint).
	Flush() error
	// Name identifies the scheme in reports.
	Name() string
}

// SharedReader is implemented by indexes whose Lookup/Exist can run under
// a shared (read) lock when the needed state is DRAM-resident.
// SharedLookupReady must be a pure pre-flight check: no timeline charges,
// no counter updates, no cache recency effects. When it returns true, a
// subsequent Lookup/Exist for the same sig is guaranteed to mutate nothing
// but atomics (counters, cache reference bits) — safe among concurrent
// readers — because only writers, which hold the exclusive lock, can
// evict or restructure between the check and the lookup.
type SharedReader interface {
	SharedLookupReady(sig Sig) bool
}

// PrefixScanner is implemented by indexes that can enumerate candidate
// record pointers for an iterator-mode key prefix (SigScheme.PrefixLen >
// 0): every live record whose signature's low 32 bits equal low must be
// included. Extra candidates are allowed — the device filters them by
// comparing stored keys — but each superseded record version must be
// excluded (newest wins). Enumeration order must be deterministic, since
// flash reads it triggers are charged to the simulated timeline.
type PrefixScanner interface {
	PrefixRecords(low uint32) ([]uint64, error)
}

// RecordEnumerator is implemented by indexes that can enumerate every
// live record with its full signature. The device's snapshot capture
// uses it to freeze a point-in-time view: RangeRecords must visit each
// live (signature, record pointer) binding exactly once, with no
// superseded versions and no tombstones. It runs under the device's
// exclusive serialization, so implementations may mutate internal state
// (drain a lazy migration, load tables through the cache) and charge
// the flash reads that enumeration costs.
type RecordEnumerator interface {
	RangeRecords(f func(lo, hi, rp uint64) bool) error
}

// Stats is the common observability surface for index implementations.
type Stats struct {
	Records    int64
	Collisions int64 // aborted inserts (ErrCollision)
	Resizes    int
	DirEntries int   // directory/bucket entries in DRAM
	DRAMBytes  int64 // resident footprint charged to SSD DRAM
	Cache      dram.Stats
}

// StatsProvider is implemented by indexes that expose Stats.
type StatsProvider interface {
	IndexStats() Stats
}

// ResizeEvent records one re-configuration (Fig. 7).
type ResizeEvent struct {
	KeysBefore  int64        // records in the index when resize fired
	NewCapacity int64        // record capacity after doubling
	Took        sim.Duration // simulated migration time
}

// Resizer is implemented by indexes that re-configure themselves (RHIK).
// The device invokes Resize between commands with the submission queue
// halted, matching the paper's stop-the-world migration.
type Resizer interface {
	// NeedsResize reports whether occupancy crossed the threshold.
	NeedsResize() bool
	// Resize doubles the index and migrates all records.
	Resize() error
	// ResizeEvents returns the history of completed resizes.
	ResizeEvents() []ResizeEvent
}

// CacheResizer is implemented by indexes whose DRAM cache budget can be
// adjusted at runtime. Crash recovery uses it: while rebuilding, the
// index may use all device DRAM (no user data is cached yet), then the
// budget returns to its configured value.
type CacheResizer interface {
	ResizeCache(budget int64)
}

// Relocator lets the index-zone garbage collector move live index pages.
type Relocator interface {
	// Owner reports whether flash page p holds live index state and, if
	// so, the implementation-private unit (e.g. directory bucket) owning
	// it.
	Owner(p nand.PPA) (unit uint64, live bool)
	// Relocate rewrites the unit's page to a fresh flash location,
	// invalidating the old one.
	Relocate(unit uint64) error
}

// Checkpointer is implemented by indexes whose in-DRAM state (e.g. RHIK's
// directory layer) can be serialized for the device's periodic
// checkpoint and restored on power-up.
type Checkpointer interface {
	// EncodeState serializes the DRAM-resident index state. The device
	// must call Flush first so flash-resident pages are current.
	EncodeState() []byte
	// LoadState restores state serialized by EncodeState.
	LoadState(data []byte) error
	// PersistentPages lists every flash page the serialized state
	// references by address. The device pins these until the next
	// checkpoint: they must be neither relocated nor erased, or the
	// persisted directory would dangle across a crash.
	PersistentPages() []nand.PPA
}
