package index

import (
	"testing"
	"testing/quick"
)

func TestDefaultSchemeValid(t *testing.T) {
	if err := DefaultSigScheme.Validate(); err != nil {
		t.Fatal(err)
	}
	s := DefaultSigScheme.Compute([]byte("hello"))
	if s.Hi != 0 {
		t.Fatalf("64-bit scheme produced Hi = %#x", s.Hi)
	}
	if s.Lo == 0 {
		t.Fatal("suspicious zero signature for non-empty key")
	}
}

func TestWideScheme(t *testing.T) {
	sc := SigScheme{Bits: 128}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sc.Wide() {
		t.Fatal("128-bit scheme not Wide")
	}
	s := sc.Compute([]byte("hello"))
	if s.Hi == 0 && s.Lo == 0 {
		t.Fatal("zero wide signature")
	}
	// 64-bit and 128-bit schemes must use different hash functions.
	if s.Lo == DefaultSigScheme.Compute([]byte("hello")).Lo {
		t.Fatal("wide scheme reused narrow hash")
	}
}

func TestValidateRejects(t *testing.T) {
	for _, sc := range []SigScheme{
		{Bits: 32},
		{Bits: 64, PrefixLen: -1},
		{Bits: 128, PrefixLen: 4},
	} {
		if err := sc.Validate(); err == nil {
			t.Errorf("accepted %+v", sc)
		}
	}
}

func TestSeedChangesSignature(t *testing.T) {
	a := SigScheme{Bits: 64, Seed: 1}.Compute([]byte("k"))
	b := SigScheme{Bits: 64, Seed: 2}.Compute([]byte("k"))
	if a == b {
		t.Fatal("seed did not perturb signature")
	}
}

func TestPrefixedSchemeGroupsPrefixes(t *testing.T) {
	sc := SigScheme{Bits: 64, PrefixLen: 4}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	a := sc.Compute([]byte("userXalpha"))
	b := sc.Compute([]byte("userXbeta"))
	// Same 4-byte prefix "user": identical low 32 bits.
	if uint32(a.Lo) != uint32(b.Lo) {
		t.Fatalf("prefix-sharing keys differ in low bits: %#x vs %#x", a.Lo, b.Lo)
	}
	if a.Lo == b.Lo {
		t.Fatal("different suffixes produced identical signatures")
	}
	if uint32(a.Lo) != sc.PrefixLow([]byte("user")) {
		t.Fatal("PrefixLow disagrees with Compute")
	}
	c := sc.Compute([]byte("postXalpha"))
	if uint32(c.Lo) == uint32(a.Lo) {
		t.Fatal("different prefixes share low bits (unlucky but suspicious)")
	}
}

func TestPrefixedSchemeShortKeys(t *testing.T) {
	sc := SigScheme{Bits: 64, PrefixLen: 8}
	// Keys shorter than the prefix must still hash deterministically.
	a := sc.Compute([]byte("ab"))
	b := sc.Compute([]byte("ab"))
	if a != b {
		t.Fatal("non-deterministic short-key signature")
	}
	if sc.PrefixBucketBits() != 32 {
		t.Fatalf("PrefixBucketBits = %d", sc.PrefixBucketBits())
	}
	if DefaultSigScheme.PrefixBucketBits() != 0 {
		t.Fatal("default scheme claims prefix bits")
	}
}

func TestComputeDeterministicProperty(t *testing.T) {
	schemes := []SigScheme{
		{Bits: 64},
		{Bits: 128},
		{Bits: 64, PrefixLen: 4},
	}
	f := func(key []byte) bool {
		for _, sc := range schemes {
			if sc.Compute(key) != sc.Compute(append([]byte(nil), key...)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
