package index

import (
	"fmt"

	"repro/internal/hash"
)

// Sig is a key signature: the fixed-size identifier RHIK derives from a
// variable-length key (§IV-A). Hi is zero in 64-bit mode and carries the
// upper half in 128-bit mode.
type Sig struct {
	Lo, Hi uint64
}

// SigScheme configures how key signatures are computed.
type SigScheme struct {
	// Bits is the signature width: 64 (default, MurmurHash2) or 128
	// (MurmurHash3, the paper's reduced-collision alternative).
	Bits int
	// Seed perturbs the hash; fixed per device instance.
	Seed uint64
	// PrefixLen, when non-zero, enables iterator-friendly signatures
	// (§VI): the low 32 bits of Lo hash only the first PrefixLen bytes
	// of the key, so all keys sharing that prefix select the same
	// directory buckets and prefix iteration scans a bounded region.
	PrefixLen int
}

// DefaultSigScheme is the paper's default: 64-bit MurmurHash2 signatures.
var DefaultSigScheme = SigScheme{Bits: 64}

// Validate reports a descriptive error for unsupported configurations.
func (s SigScheme) Validate() error {
	if s.Bits != 64 && s.Bits != 128 {
		return fmt.Errorf("index: signature width %d not in {64, 128}", s.Bits)
	}
	if s.PrefixLen < 0 {
		return fmt.Errorf("index: negative PrefixLen %d", s.PrefixLen)
	}
	if s.PrefixLen > 0 && s.Bits != 64 {
		return fmt.Errorf("index: iterator-mode signatures require 64-bit width")
	}
	return nil
}

// Wide reports whether signatures carry 128 bits.
func (s SigScheme) Wide() bool { return s.Bits == 128 }

// Compute derives the signature of key.
func (s SigScheme) Compute(key []byte) Sig {
	if s.PrefixLen > 0 {
		return s.computePrefixed(key)
	}
	if s.Wide() {
		lo, hi := hash.Murmur3_128(key, s.Seed)
		return Sig{Lo: lo, Hi: hi}
	}
	return Sig{Lo: hash.Murmur2_64(key, s.Seed)}
}

// computePrefixed builds an iterator-friendly 64-bit signature: the low
// 32 bits depend only on the key's prefix (so the directory layer groups
// prefix-sharing keys together), the high 32 bits hash the remainder.
func (s SigScheme) computePrefixed(key []byte) Sig {
	p := s.PrefixLen
	if p > len(key) {
		p = len(key)
	}
	prefixHash := uint32(hash.Murmur2_64(key[:p], s.Seed))
	suffixHash := uint32(hash.Murmur2_64(key[p:], s.Seed^0x9e3779b97f4a7c15))
	return Sig{Lo: uint64(suffixHash)<<32 | uint64(prefixHash)}
}

// PrefixBucketBits reports how many low signature bits are determined
// purely by the key prefix in iterator mode (0 when disabled). A
// directory of up to 2^32 entries can therefore be filtered by prefix.
func (s SigScheme) PrefixBucketBits() int {
	if s.PrefixLen == 0 {
		return 0
	}
	return 32
}

// PrefixLow returns the signature low bits shared by every key with the
// given prefix (meaningful only in iterator mode).
func (s SigScheme) PrefixLow(prefix []byte) uint32 {
	p := s.PrefixLen
	if p > len(prefix) {
		p = len(prefix)
	}
	return uint32(hash.Murmur2_64(prefix[:p], s.Seed))
}
