package device

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// This file is the lock-free read tier. TryRetrieveOptimistic and
// TryExistOptimistic run with NO shard lock at all, concurrently with
// writers holding the exclusive lock. Safety rests on three mechanisms:
//
//   - The index probe validates against RHIK's per-table seqlocks and
//     the atomically-swapped directory generation (core.PeekOptimistic /
//     RevalidateOptimistic). Every mutation that could invalidate the
//     probed record pointer — an insert, delete, GC relocation, cache
//     eviction, or re-configuration of its bucket — bumps that bucket's
//     version or unpublishes its table, so the final revalidation after
//     all dependent flash reads is the read's linearization point.
//   - An epoch pin (taken before the probe, released after the last
//     dependent access) keeps retired record tables and erased flash
//     page buffers from being REUSED while this reader might still
//     alias them; Go's garbage collector makes dereferencing safe, the
//     pin makes the contents stable.
//   - The device structure-mutation sequence (mutSeq) brackets GC
//     erases and Restart. A flash error observed while it moved is a
//     casualty of the restructuring, reported as ErrOptimisticRetry
//     rather than surfaced to the host.
//
// Refusals (ErrNeedExclusive) and retries (ErrOptimisticRetry) detected
// before the probe validates are zero-charge: no simulated time, no
// counters. Once the probe validates, the charge sequence mirrors the
// exclusive retrieve()/exist() bodies exactly, so a single-threaded run
// produces a byte-identical timeline whichever path serves the command.
// Charges made before a LATER validation fails stand — the speculative
// work really occupied the firmware — so only genuinely-raced
// operations pay for a retry.

// readPairOptimistic is readPair's flash branch only. The pending map
// (a plain Go map mutated by writers) must never be read without a
// lock; the callers pre-check PageReadable, so a record pointer still
// in a volatile open-page buffer never reaches this function.
func (d *Device) readPairOptimistic(rp layout.RP, withValue, blocking bool) (hdr layout.PairHeader, key, value []byte, done sim.Time, err error) {
	ppa := nand.PPA(rp.Page())
	data, _, readDone, err := d.flash.Read(d.env.now.Load(), ppa)
	if err != nil {
		return hdr, nil, nil, d.env.now.Load(), err
	}
	done = readDone
	info, _, err := layout.SigInfoAt(data, rp.Slot())
	if err != nil {
		return hdr, nil, nil, done, err
	}
	hdr, key, value, err = layout.DecodePairAt(data, int(info.Offset))
	if err != nil {
		return hdr, nil, nil, done, err
	}
	if withValue && hdr.ValueLen > len(value) {
		// Extent: continuations follow the head page in the same block.
		full := make([]byte, 0, hdr.ValueLen)
		full = append(full, value...)
		for i := 1; len(full) < hdr.ValueLen; i++ {
			cont, _, cd, err := d.flash.Read(done, ppa+nand.PPA(i))
			if err != nil {
				return hdr, nil, nil, done, err
			}
			done = cd
			full = append(full, cont...)
		}
		if len(full) > hdr.ValueLen {
			full = full[:hdr.ValueLen]
		}
		value = full
	}
	if blocking {
		d.env.now.AdvanceTo(done)
	}
	return hdr, key, value, done, nil
}

// TryRetrieveOptimistic executes a get with no caller lock. It returns
// index.ErrNeedExclusive when no lock-free read can succeed (bucket not
// DRAM-resident, record still in a volatile buffer, pin table full, or
// the index has no optimistic surface) and index.ErrOptimisticRetry
// when a concurrent mutation invalidated the attempt; both refusals are
// made before any simulated-time charge if detected at the probe. On
// success the value is appended to dst.
func (d *Device) TryRetrieveOptimistic(submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	if d.closed.Load() {
		return dst, d.env.now.Load(), ErrClosed
	}
	r := d.optIdx.Load()
	if r == nil {
		return dst, 0, index.ErrNeedExclusive
	}
	pin, ok := d.reclaim.TryPin()
	if !ok {
		return dst, 0, index.ErrNeedExclusive
	}
	// Unpin open-coded (no defer) to keep the hot path allocation-free.
	v, done, err := d.tryRetrieveOptimistic(r, submitAt, key, dst)
	d.reclaim.Unpin(pin)
	return v, done, err
}

// tryRetrieveOptimistic is the pinned body of TryRetrieveOptimistic.
func (d *Device) tryRetrieveOptimistic(r *core.RHIK, submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	m1 := d.mutSeq.Load()
	if m1&1 != 0 {
		return dst, 0, index.ErrOptimisticRetry
	}
	sig := d.scheme.Compute(key)
	var vgen uint64
	if d.vcache != nil {
		if v, ok := d.vcache.Lookup(sig.Lo, key); ok {
			// The entry was live after its value was captured, and any
			// overwrite invalidates before acknowledging: this read
			// linearizes before every in-flight write's completion. Same
			// charges as the exclusive tier's value hit.
			out, done := d.retrieveValueHit(submitAt, key, v, dst)
			return out, done, nil
		}
		vgen = d.vcache.Gen(sig.Lo)
	}
	probe, st := r.PeekOptimistic(sig)
	switch st {
	case index.OptRetry:
		return dst, 0, index.ErrOptimisticRetry
	case index.OptNeedExclusive:
		return dst, 0, index.ErrNeedExclusive
	}
	if probe.Found && !d.flash.PageReadable(nand.PPA(layout.RP(probe.RP).Page())) {
		// Still buffered in an open page (read-your-writes lives in the
		// pending map) or yanked by an overlapping restructure: only the
		// exclusive path may resolve it.
		return dst, 0, index.ErrNeedExclusive
	}

	// The probe validated: charge exactly what the exclusive retrieve()
	// charges from here on.
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	start := submitAt
	d.env.ChargeCPU(d.cfg.CmdCPU)
	d.env.ChargeCPU(r.OptimisticLookupCost())
	d.metaPerOp.Record(0)
	d.metaPerGet.Record(0)

	if !probe.Found {
		if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
			return dst, 0, index.ErrOptimisticRetry
		}
		r.CommitOptimistic(probe)
		return dst, d.env.now.Load(), ErrNotFound
	}
	hdr, storedKey, value, done, err := d.readPairOptimistic(layout.RP(probe.RP), true, false)
	if err != nil {
		// Never surface a raw flash error from the lock-free tier. If the
		// structure moved underneath us this is a raced read — retry. If
		// it did not, the likely cause is a continuation page of a
		// multi-page pair still sitting in the open write buffer (only the
		// head page was pre-checked readable); the exclusive path resolves
		// pending pairs, and re-reports any genuine fault.
		if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
			return dst, 0, index.ErrOptimisticRetry
		}
		return dst, 0, index.ErrNeedExclusive
	}
	if hdr.Tombstone() || !bytes.Equal(storedKey, key) {
		if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
			return dst, 0, index.ErrOptimisticRetry
		}
		r.CommitOptimistic(probe)
		return dst, done, ErrNotFound
	}
	if now := d.env.now.Load(); done < now {
		done = now
	}
	// Linearization point: the probed table version is unchanged after
	// every dependent flash access, so RP, the pair bytes, and the key
	// comparison all belong to one consistent index state. The value
	// slice stays stable past this point because the epoch pin blocks
	// reuse of its underlying buffer even if the block is erased now.
	if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
		return dst, 0, index.ErrOptimisticRetry
	}
	r.CommitOptimistic(probe)
	// Value DMA back to the host, then the completion round trip.
	done = d.hostXfer(done, len(value)).Add(d.cfg.AckOverhead)
	d.stats.retrieves.Add(1)
	d.stats.bytesRead.Add(int64(len(value)))
	d.latGet.Record(int64(done.Sub(start)))
	if d.vcache != nil {
		// Refused (via the generation check) if any overwrite of this
		// bucket landed since the pre-probe snapshot, so a slow reader can
		// never cache a stale value.
		d.vcache.Insert(vgen, sig.Lo, key, value)
	}
	return append(dst, value...), done, nil
}

// TryExistOptimistic executes a key-exist command with no caller lock,
// under the same refusal/retry contract as TryRetrieveOptimistic.
func (d *Device) TryExistOptimistic(submitAt sim.Time, key []byte) (bool, sim.Time, error) {
	if d.closed.Load() {
		return false, d.env.now.Load(), ErrClosed
	}
	r := d.optIdx.Load()
	if r == nil {
		return false, 0, index.ErrNeedExclusive
	}
	pin, ok := d.reclaim.TryPin()
	if !ok {
		return false, 0, index.ErrNeedExclusive
	}
	found, done, err := d.tryExistOptimistic(r, submitAt, key)
	d.reclaim.Unpin(pin)
	return found, done, err
}

// tryExistOptimistic is the pinned body of TryExistOptimistic.
func (d *Device) tryExistOptimistic(r *core.RHIK, submitAt sim.Time, key []byte) (bool, sim.Time, error) {
	m1 := d.mutSeq.Load()
	if m1&1 != 0 {
		return false, 0, index.ErrOptimisticRetry
	}
	sig := d.scheme.Compute(key)
	probe, st := r.PeekOptimistic(sig)
	switch st {
	case index.OptRetry:
		return false, 0, index.ErrOptimisticRetry
	case index.OptNeedExclusive:
		return false, 0, index.ErrNeedExclusive
	}
	if probe.Found && !d.flash.PageReadable(nand.PPA(layout.RP(probe.RP).Page())) {
		return false, 0, index.ErrNeedExclusive
	}

	// Mirror the exclusive exist() charges: command CPU, the lookup
	// charge, and a zero metadata-read sample (exist does not feed the
	// per-get histogram).
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	d.env.ChargeCPU(r.OptimisticLookupCost())
	d.metaPerOp.Record(0)

	if !probe.Found {
		if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
			return false, 0, index.ErrOptimisticRetry
		}
		r.CommitOptimistic(probe)
		d.stats.exists.Add(1)
		return false, d.env.now.Load(), nil
	}
	hdr, storedKey, _, _, err := d.readPairOptimistic(layout.RP(probe.RP), false, true)
	if err != nil {
		// Same contract as the retrieve body: raced → retry, otherwise
		// escalate so the exclusive path resolves pending continuation
		// pages or re-reports a genuine fault. Raw flash errors never
		// escape the lock-free tier.
		if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
			return false, 0, index.ErrOptimisticRetry
		}
		return false, 0, index.ErrNeedExclusive
	}
	if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
		return false, 0, index.ErrOptimisticRetry
	}
	r.CommitOptimistic(probe)
	d.stats.exists.Add(1)
	return !hdr.Tombstone() && bytes.Equal(storedKey, key), d.env.now.Load(), nil
}
