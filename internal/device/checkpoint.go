package device

import (
	"encoding/binary"

	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
)

// ckptHeaderSize prefixes the first checkpoint chunk: magic (4) +
// checkpoint id (8) + covered sequence (8) + blob length (4).
const ckptHeaderSize = 4 + 8 + 8 + 4

var ckptMagic = [4]byte{'R', 'C', 'K', '1'}

// Checkpoint makes the device state durable: open page buffers are
// programmed, the index flushes its dirty pages, and — for indexes that
// support it (RHIK) — the DRAM-resident directory is serialized into
// checkpoint pages in the index zone, the paper's "periodically updated
// persistent copy" of the directory layer. Data written after the last
// checkpoint remains recoverable through the log scan (see recovery.go).
func (d *Device) Checkpoint() error {
	d.collectRetired()
	if err := d.FlushData(); err != nil {
		return err
	}
	if err := d.idx.Flush(); err != nil {
		return err
	}
	ck, ok := d.idx.(index.Checkpointer)
	if !ok {
		d.mutsSince = 0
		d.stats.checkpoints.Add(1)
		return nil
	}

	state := ck.EncodeState()
	blob := make([]byte, ckptHeaderSize+len(state))
	copy(blob[:4], ckptMagic[:])
	binary.LittleEndian.PutUint64(blob[4:12], d.ckptID+1)
	binary.LittleEndian.PutUint64(blob[12:20], d.seq)
	binary.LittleEndian.PutUint32(blob[20:24], uint32(len(state)))
	copy(blob[ckptHeaderSize:], state)

	pageSize := d.flash.Config().PageSize
	var newPages []nand.PPA
	for off, seg := 0, 0; off < len(blob); seg++ {
		end := off + pageSize
		if end > len(blob) {
			end = len(blob)
		}
		ppa, err := d.writeCheckpointPage(blob[off:end], d.ckptID+1, seg)
		if err != nil {
			return err
		}
		newPages = append(newPages, ppa)
		off = end
	}

	// The previous checkpoint generation is now stale.
	for _, p := range d.ckptPages {
		d.env.Invalidate(p)
	}
	d.ckptPages = newPages
	d.ckptID++
	d.ckptSeq = d.seq
	d.mutsSince = 0
	d.stats.checkpoints.Add(1)

	// Re-pin the pages the new checkpoint references, then release the
	// invalidations deferred while the previous generation needed them.
	newPinned := make(map[nand.PPA]bool)
	for _, p := range ck.PersistentPages() {
		newPinned[p] = true
	}
	deferred := d.deferredInval
	d.deferredInval = nil
	d.ckptPinned = newPinned
	for _, p := range deferred {
		d.env.Invalidate(p)
	}
	return nil
}

// writeCheckpointPage programs one checkpoint chunk into the index zone.
// The chunk's generation travels in the spare owner field and its
// ordinal in the spare segment field, so recovery can reassemble the
// blob without any root pointer.
func (d *Device) writeCheckpointPage(chunk []byte, gen uint64, seg int) (nand.PPA, error) {
	ppa, err := d.nextIndexPage()
	if err != nil {
		return 0, err
	}
	spare := layout.EncodeSpare(layout.KindCheckpoint, layout.RP(gen), seg)
	done, err := d.flash.Program(d.env.now.Load(), ppa, chunk, spare)
	if err != nil {
		return 0, err
	}
	d.env.now.AdvanceTo(done)
	d.mgr.OnWrite(d.flash.BlockOf(ppa), int64(len(chunk)))
	d.idxPageSize[ppa] = int32(len(chunk))
	return ppa, nil
}

// relocateCheckpointPage moves a live checkpoint chunk during index-zone
// GC; stale generations are simply dropped.
func (d *Device) relocateCheckpointPage(old nand.PPA) error {
	live := -1
	for i, p := range d.ckptPages {
		if p == old {
			live = i
			break
		}
	}
	if live < 0 {
		return nil // stale generation; nothing to move
	}
	data, spare, done, err := d.flash.Read(d.env.now.Load(), old)
	if err != nil {
		return err
	}
	d.env.now.AdvanceTo(done)
	_, gen, seg, err := layout.DecodeSpare(spare)
	if err != nil {
		return err
	}
	ppa, err := d.writeCheckpointPage(data, uint64(gen), seg)
	if err != nil {
		return err
	}
	d.ckptPages[live] = ppa
	d.env.Invalidate(old)
	d.stats.gcPagesMoved.Add(1)
	return nil
}

// ckptChunk is one checkpoint page found during the recovery scan.
type ckptChunk struct {
	gen  uint64
	seg  int
	data []byte
	ppa  nand.PPA
}

// assembleCheckpoint picks the newest complete checkpoint generation
// from the scanned chunks and returns its state blob, covered sequence,
// generation and page set.
func assembleCheckpoint(chunks []ckptChunk) (state []byte, seq, gen uint64, pages []nand.PPA, ok bool) {
	byGen := make(map[uint64][]ckptChunk)
	for _, c := range chunks {
		byGen[c.gen] = append(byGen[c.gen], c)
	}
	var gens []uint64
	for g := range byGen {
		gens = append(gens, g)
	}
	// Try newest generation first.
	for len(gens) > 0 {
		newest := 0
		for i, g := range gens {
			if g > gens[newest] {
				newest = i
			}
		}
		g := gens[newest]
		gens = append(gens[:newest], gens[newest+1:]...)

		parts := byGen[g]
		ordered := make([][]byte, len(parts))
		pset := make([]nand.PPA, len(parts))
		valid := true
		for _, c := range parts {
			if c.seg >= len(parts) || ordered[c.seg] != nil {
				valid = false
				break
			}
			ordered[c.seg] = c.data
			pset[c.seg] = c.ppa
		}
		if !valid {
			continue
		}
		var blob []byte
		for _, p := range ordered {
			if p == nil {
				valid = false
				break
			}
			blob = append(blob, p...)
		}
		if !valid || len(blob) < ckptHeaderSize {
			continue
		}
		if [4]byte(blob[:4]) != ckptMagic {
			continue
		}
		id := binary.LittleEndian.Uint64(blob[4:12])
		seq := binary.LittleEndian.Uint64(blob[12:20])
		n := int(binary.LittleEndian.Uint32(blob[20:24]))
		if id != g || len(blob) < ckptHeaderSize+n {
			continue
		}
		return blob[ckptHeaderSize : ckptHeaderSize+n], seq, g, pset, true
	}
	return nil, 0, 0, nil, false
}
