package device

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
)

// Restart simulates a power cycle: every DRAM-resident structure — open
// page buffers, the index cache, the directory, FTL accounting — is
// discarded and rebuilt from flash. Recovery loads the newest complete
// directory checkpoint and then replays the KV log: pairs with sequence
// numbers above the checkpoint are re-applied in order (tombstones
// delete), so every acknowledged-and-programmed write survives. Pairs
// still in the volatile open-page buffer at the crash are lost, matching
// write-cache semantics; Close/Checkpoint bound that window.
func (d *Device) Restart() error {
	if d.closed.Load() {
		return ErrClosed
	}
	// The whole rebuild is one structure mutation: an optimistic reader
	// overlapping it retries instead of surfacing a transient error, and
	// its result linearizes before the power cycle.
	d.beginStructureMutation()
	defer d.endStructureMutation()
	// A power cycle invalidates every open snapshot: their frozen views
	// reference pre-crash block contents the rebuild may reclaim.
	d.invalidateSnapshots()
	// Drop all volatile state. The hot-value tier goes too: replay can
	// roll back the unflushed write tail, and a value cached from a
	// lost pending buffer must not outlive the data.
	if d.vcache != nil {
		d.vcache.Flush()
	}
	d.pending = make(map[layout.RP]pendingPair)
	d.fg = d.newLogWriter("fg")
	d.gcw = d.newLogWriter("gc")
	d.idxBlockOpen = false
	d.inflight = nil
	d.idxPageSize = make(map[nand.PPA]int32)
	d.mgr = ftl.NewManager(d.flash)
	d.ckptPages = nil
	d.ckptPinned = make(map[nand.PPA]bool)
	d.deferredInval = nil

	// Garbage collection must not run while accounting is incomplete;
	// allocations draw on the pool headroom directly.
	d.inGC = true
	defer func() { d.inGC = false }()

	idx, err := d.buildIndex()
	if err != nil {
		return err
	}
	d.idx = idx
	if r, ok := idx.(*core.RHIK); ok {
		d.optIdx.Store(r)
	} else {
		d.optIdx.Store(nil)
	}

	// Phase 1: scan every programmed page and classify it.
	type scannedPage struct {
		ppa  nand.PPA
		data []byte
		base uint64 // data pages: base write epoch from the spare area
	}
	var dataPages []scannedPage
	var idxPages []scannedPage
	var chunks []ckptChunk
	geo := d.flash.Config()
	for b := 0; b < geo.TotalBlocks(); b++ {
		bid := nand.BlockID(b)
		pages := d.flash.ProgrammedPages(bid)
		if pages == 0 {
			continue
		}
		zone := ftl.ZoneKV
		for pi := 0; pi < pages; pi++ {
			ppa := d.flash.PPAOf(bid, pi)
			data, spare, done, err := d.flash.Read(d.env.now.Load(), ppa)
			if err != nil {
				return fmt.Errorf("device: recovery scan: %w", err)
			}
			d.env.now.AdvanceTo(done)
			kind, owner, seg, err := layout.DecodeSpare(spare)
			if err != nil {
				return fmt.Errorf("device: recovery spare: %w", err)
			}
			switch kind {
			case layout.KindData:
				dataPages = append(dataPages, scannedPage{ppa, data, layout.DataSpareEpoch(spare)})
			case layout.KindContinuation:
				// Accounted with its head page.
			case layout.KindIndex:
				idxPages = append(idxPages, scannedPage{ppa: ppa, data: data})
				zone = ftl.ZoneIndex
			case layout.KindCheckpoint:
				chunks = append(chunks, ckptChunk{
					gen:  uint64(owner),
					seg:  seg,
					data: data,
					ppa:  ppa,
				})
				zone = ftl.ZoneIndex
			default:
				return fmt.Errorf("device: recovery: unknown page kind %d at %d", kind, ppa)
			}
		}
		d.mgr.Adopt(bid, zone)
	}

	// Phase 2: restore the newest complete checkpoint, if any, and give
	// every scanned index-zone page a live-baseline accounting so that
	// invalidations during replay balance.
	var ckptSeq uint64
	state, seq, gen, ckpages, haveCkpt := assembleCheckpoint(chunks)
	if haveCkpt {
		if ck, isCk := d.idx.(index.Checkpointer); isCk {
			if err := ck.LoadState(state); err != nil {
				return fmt.Errorf("device: recovery checkpoint: %w", err)
			}
			ckptSeq = seq
			d.ckptID = gen
			d.ckptPages = ckpages
			// Pin the pages the PERSISTED state references before the
			// replay can supersede any of them: a second crash before
			// the next checkpoint must find this same recovery root
			// intact.
			for _, p := range ck.PersistentPages() {
				d.ckptPinned[p] = true
			}
		}
	}
	d.ckptSeq = ckptSeq
	for _, ip := range idxPages {
		d.mgr.OnWrite(d.flash.BlockOf(ip.ppa), int64(len(ip.data)))
		d.idxPageSize[ip.ppa] = int32(len(ip.data))
	}
	for _, c := range chunks {
		d.mgr.OnWrite(d.flash.BlockOf(c.ppa), int64(len(c.data)))
		d.idxPageSize[c.ppa] = int32(len(c.data))
	}

	// While rebuilding, the index may use all device DRAM — no user data
	// is cached yet — so the replay does not thrash a small budget into
	// per-insert flash write-backs. The budget is restored at the end.
	// (This must follow LoadState, which rebuilds the cache.)
	if cr, ok := d.idx.(index.CacheResizer); ok {
		cr.ResizeCache(1 << 30)
	}

	// Phase 3: replay the KV log above the checkpoint, in sequence order.
	type replayRec struct {
		seq  uint64
		sig  index.Sig
		rp   layout.RP
		tomb bool
	}
	var replay []replayRec
	maxSeq := ckptSeq
	var maxEpoch uint64
	for _, dp := range dataPages {
		infos, err := layout.DecodeSigArea(dp.data)
		if err != nil {
			return fmt.Errorf("device: recovery page %d: %w", dp.ppa, err)
		}
		for slot, info := range infos {
			hdr, key, _, err := layout.DecodePairAt(dp.data, int(info.Offset))
			if err != nil {
				return err
			}
			if hdr.Seq > maxSeq {
				maxSeq = hdr.Seq
			}
			if e := dp.base + uint64(info.EpochDelta); e > maxEpoch {
				maxEpoch = e
			}
			if hdr.Seq <= ckptSeq {
				continue
			}
			replay = append(replay, replayRec{
				seq:  hdr.Seq,
				sig:  d.scheme.Compute(key),
				rp:   layout.MakeRP(uint64(dp.ppa), slot),
				tomb: hdr.Tombstone(),
			})
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].seq < replay[j].seq })
	for _, r := range replay {
		if r.tomb {
			if _, _, err := d.idx.Delete(r.sig); err != nil {
				return fmt.Errorf("device: recovery replay delete: %w", err)
			}
			continue
		}
		if _, _, err := d.idx.Insert(r.sig, uint64(r.rp)); err != nil {
			return fmt.Errorf("device: recovery replay insert: %w", err)
		}
	}
	d.seq = maxSeq
	// Restore the write epoch to the newest stamp on flash so post-crash
	// batches stay monotone above every surviving record.
	d.wepoch.Store(maxEpoch)

	// Phase 4: settle liveness. Data pairs are validated against the
	// final index; scanned index-zone pages that are neither referenced
	// by the index nor part of the current checkpoint become stale.
	for _, dp := range dataPages {
		bid := d.flash.BlockOf(dp.ppa)
		infos, err := layout.DecodeSigArea(dp.data)
		if err != nil {
			return err
		}
		for slot, info := range infos {
			hdr, key, _, err := layout.DecodePairAt(dp.data, int(info.Offset))
			if err != nil {
				return err
			}
			if hdr.Tombstone() {
				d.mgr.OnWriteDead(bid, int64(liveSize(hdr.KeyLen, 0)))
				continue
			}
			size := int64(liveSize(hdr.KeyLen, hdr.ValueLen))
			rp := layout.MakeRP(uint64(dp.ppa), slot)
			cur, ok, err := d.idx.Lookup(d.scheme.Compute(key))
			if err != nil {
				return err
			}
			if ok && cur == uint64(rp) {
				d.mgr.OnWrite(bid, size)
			} else {
				d.mgr.OnWriteDead(bid, size)
			}
		}
	}
	rel, _ := d.idx.(index.Relocator)
	current := make(map[nand.PPA]bool, len(d.ckptPages))
	for _, p := range d.ckptPages {
		current[p] = true
	}
	sweep := make([]nand.PPA, 0, len(idxPages)+len(chunks))
	for _, ip := range idxPages {
		sweep = append(sweep, ip.ppa)
	}
	for _, c := range chunks {
		sweep = append(sweep, c.ppa)
	}
	for _, ppa := range sweep {
		if _, still := d.idxPageSize[ppa]; !still {
			continue // already invalidated during replay
		}
		live := current[ppa]
		if !live && rel != nil {
			_, live = rel.Owner(ppa)
		}
		if !live {
			d.env.Invalidate(ppa)
		}
	}

	// Accounting is complete: GC may run again. Persist the rebuilt
	// index state and shrink the cache back to its configured budget.
	d.inGC = false
	if err := d.idx.Flush(); err != nil {
		return err
	}
	if cr, ok := d.idx.(index.CacheResizer); ok {
		cr.ResizeCache(d.cfg.CacheBudget)
	}

	d.stats.recoveries.Add(1)
	d.mutsSince = 0
	return nil
}
