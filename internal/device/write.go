package device

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/ftl"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// acquireBufferSlot blocks the firmware until a write-buffer slot is
// free, bounding outstanding page programs (device-buffer backpressure).
func (d *Device) acquireBufferSlot() {
	if len(d.inflight) < d.cfg.WriteBufferPages {
		return
	}
	oldest := d.inflight[0]
	d.inflight = d.inflight[1:]
	d.env.now.AdvanceTo(oldest)
}

// programData schedules a data-page program through the write buffer.
// The firmware does not wait for completion; the die does the work.
func (d *Device) programData(ppa nand.PPA, data, spare []byte) (sim.Time, error) {
	d.acquireBufferSlot()
	done, err := d.flash.Program(d.env.now.Load(), ppa, data, spare)
	if err != nil {
		return done, err
	}
	d.inflight = append(d.inflight, done)
	return done, nil
}

// newLogWriter builds an empty striped writer.
func (d *Device) newLogWriter(name string) logWriter {
	return logWriter{
		name:    name,
		slots:   make([]stripeSlot, d.cfg.StripeWidth),
		builder: layout.NewPageBuilder(d.flash.Config().PageSize),
	}
}

// ensureSlot guarantees stripe slot si has an open block with at least
// `pages` programmable pages left, sealing and allocating as needed.
func (d *Device) ensureSlot(w *logWriter, si, pages int) error {
	geo := d.flash.Config()
	if pages > geo.PagesPerBlock {
		return ErrValueTooLarge
	}
	s := &w.slots[si]
	if s.open && s.next+pages > geo.PagesPerBlock {
		s.open = false // seal; any unprogrammed tail pages are wasted
	}
	if s.open {
		return nil
	}
	if err := d.maybeGC(); err != nil {
		return err
	}
	b, err := d.mgr.Alloc(ftl.ZoneKV)
	if err != nil {
		return ErrDeviceFull
	}
	s.block = b
	s.next = 0
	s.open = true
	return nil
}

// beginPage binds the builder to the next stripe slot's next page.
func (d *Device) beginPage(w *logWriter) error {
	w.cur = (w.cur + 1) % len(w.slots)
	return d.ensureSlot(w, w.cur, 1)
}

// openPagePPA is the address the current open page will program to.
func (w *logWriter) openPagePPA(d *Device) nand.PPA {
	s := &w.slots[w.cur]
	return d.flash.PPAOf(s.block, s.next)
}

// appendPair packs a single-page pair into writer w's open page and
// returns its record pointer. live is the accounting size: positive for
// live data, negative magnitude for dead-on-arrival bytes (tombstones).
func (d *Device) appendPair(w *logWriter, p layout.Pair, live int) (layout.RP, error) {
	if !w.builder.Empty() && !w.builder.Fits(len(p.Key), len(p.Value)) {
		if err := d.flushOpen(w); err != nil {
			return 0, err
		}
	}
	if w.builder.Empty() {
		if err := d.beginPage(w); err != nil {
			return 0, err
		}
	}
	slot, ok := w.builder.Add(p)
	if !ok {
		return 0, fmt.Errorf("device: pair does not fit an empty page (key %d, value %d)",
			len(p.Key), len(p.Value))
	}
	rp := layout.MakeRP(uint64(w.openPagePPA(d)), slot)
	w.pageRPs = append(w.pageRPs, rp)
	w.liveLen = append(w.liveLen, live)
	d.pending[rp] = pendingPair{
		key:   append([]byte(nil), p.Key...),
		value: append([]byte(nil), p.Value...),
	}
	return rp, nil
}

// flushOpen programs writer w's open page, settling per-pair accounting
// and releasing the pending buffers.
func (d *Device) flushOpen(w *logWriter) error {
	if w.builder.Empty() {
		return nil
	}
	s := &w.slots[w.cur]
	// The spare carries the page's base write epoch; per-pair deltas ride
	// in the signature area (layout v2).
	data := w.builder.Bytes()
	ppa := d.flash.PPAOf(s.block, s.next)
	spare := layout.EncodeDataSpare(w.builder.Base())
	if _, err := d.programData(ppa, data, spare); err != nil {
		return err
	}
	for i, rp := range w.pageRPs {
		if n := w.liveLen[i]; n > 0 {
			d.mgr.OnWrite(s.block, int64(n))
		} else {
			d.mgr.OnWriteDead(s.block, int64(-n))
		}
		delete(d.pending, rp)
	}
	w.builder.Reset()
	w.pageRPs = w.pageRPs[:0]
	w.liveLen = w.liveLen[:0]
	s.next++
	if s.next >= d.flash.Config().PagesPerBlock {
		s.open = false
	}
	return nil
}

// appendExtent writes a multi-page pair (head + continuations) into
// consecutive pages of a single erase block and returns the head record
// pointer.
func (d *Device) appendExtent(w *logWriter, p layout.Pair, live int) (layout.RP, error) {
	geo := d.flash.Config()
	pages := layout.ExtentPages(geo.PageSize, len(p.Key), len(p.Value))
	if err := d.flushOpen(w); err != nil {
		return 0, err
	}
	w.cur = (w.cur + 1) % len(w.slots)
	if err := d.ensureSlot(w, w.cur, pages); err != nil {
		return 0, err
	}
	s := &w.slots[w.cur]
	head, conts, err := layout.BuildExtent(geo.PageSize, p)
	if err != nil {
		return 0, err
	}
	headPPA := d.flash.PPAOf(s.block, s.next)
	rp := layout.MakeRP(uint64(headPPA), 0)
	if _, err := d.programData(headPPA, head, layout.EncodeDataSpare(p.Epoch)); err != nil {
		return 0, err
	}
	for i, c := range conts {
		ppa := d.flash.PPAOf(s.block, s.next+1+i)
		spare := layout.EncodeSpare(layout.KindContinuation, rp, i+1)
		if _, err := d.programData(ppa, c, spare); err != nil {
			return 0, err
		}
	}
	s.next += pages
	if s.next >= geo.PagesPerBlock {
		s.open = false
	}
	if live > 0 {
		d.mgr.OnWrite(s.block, int64(live))
	} else {
		d.mgr.OnWriteDead(s.block, int64(-live))
	}
	return rp, nil
}

// invalidateRP marks a stored pair's bytes stale, whether it has reached
// flash or still sits in an open page buffer.
func (d *Device) invalidateRP(rp layout.RP, size int) {
	for _, w := range []*logWriter{&d.fg, &d.gcw} {
		for i, prp := range w.pageRPs {
			if prp == rp {
				if w.liveLen[i] > 0 {
					w.liveLen[i] = -w.liveLen[i]
				}
				return
			}
		}
	}
	d.mgr.OnInvalidate(d.flash.BlockOf(nand.PPA(rp.Page())), int64(size))
}

// liveSize is the accounting footprint of a pair: its body plus its
// signature-area entry.
func liveSize(keyLen, valueLen int) int {
	return layout.PairSize(keyLen, valueLen) + layout.SigEntrySize
}

// hostXfer schedules payload movement over the host interface starting
// no earlier than `at`, returning the transfer's completion time.
func (d *Device) hostXfer(at sim.Time, bytes int) sim.Time {
	if bytes <= 0 {
		return at
	}
	dur := sim.Duration(int64(bytes) * 1000 / int64(d.cfg.HostMBps))
	_, done := d.hostLink.Acquire(at, dur)
	return done
}

// Store executes a put command submitted at submitAt, returning its
// completion time. A store of an existing key verifies the stored key
// (signature re-use, §IV-A3), writes the new pair log-style, updates the
// index, and invalidates the old pair.
func (d *Device) Store(submitAt sim.Time, key, value []byte) (sim.Time, error) {
	if d.closed.Load() {
		return d.env.now.Load(), ErrClosed
	}
	if len(key) == 0 || len(key) > layout.MaxKeyLen ||
		len(key) > layout.HeadCapacity(d.flash.Config().PageSize, 0)/2 {
		return d.env.now.Load(), ErrKeyTooLarge
	}
	if len(value) > d.maxValue {
		return d.env.now.Load(), ErrValueTooLarge
	}
	// The command and its payload cross the host link before the
	// firmware can process it.
	arrive := d.hostXfer(submitAt, len(key)+len(value))
	d.env.now.AdvanceTo(arrive)
	start := submitAt
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads.Load()

	sig := d.scheme.Compute(key)
	oldRP, existed, err := d.idx.Lookup(sig)
	if err != nil {
		return d.env.now.Load(), err
	}
	var oldSize int
	if existed {
		hdr, oldKey, _, _, err := d.readPair(layout.RP(oldRP), false, true)
		if err != nil {
			return d.env.now.Load(), err
		}
		if !bytes.Equal(oldKey, key) {
			// Two distinct keys share a 64-bit signature: the paper's
			// collision-abort path — the application must choose another
			// key.
			d.stats.collisionAborts.Add(1)
			return d.env.now.Load(), index.ErrCollision
		}
		oldSize = liveSize(hdr.KeyLen, hdr.ValueLen)
	}

	d.seq++
	p := layout.Pair{Sig: sig.Lo, Key: key, Value: value, Seq: d.seq, Epoch: d.wepoch.Load() + 1}
	live := liveSize(len(key), len(value))
	var rp layout.RP
	if layout.ExtentPages(d.flash.Config().PageSize, len(key), len(value)) > 1 {
		rp, err = d.appendExtent(&d.fg, p, live)
	} else {
		rp, err = d.appendPair(&d.fg, p, live)
	}
	if err != nil {
		return d.env.now.Load(), err
	}

	if _, _, err := d.idx.Insert(sig, uint64(rp)); err != nil {
		if errors.Is(err, index.ErrCollision) {
			err = d.insertReconfiguring(sig, uint64(rp))
		}
		if err != nil {
			// The freshly written pair is unreachable: mark it dead.
			d.invalidateRP(rp, live)
			if errors.Is(err, index.ErrCollision) {
				d.stats.collisionAborts.Add(1)
			}
			return d.env.now.Load(), err
		}
	}
	if existed {
		d.invalidateRP(layout.RP(oldRP), oldSize)
	}
	if d.vcache != nil {
		// Kill any cached copy (and bump the bucket generation) BEFORE the
		// store acknowledges: a hot-value hit that observes a live entry is
		// thereby ordered before this write's completion.
		d.vcache.Invalidate(sig.Lo, key)
	}

	d.metaPerOp.Record(d.env.metaReads.Load() - metaBefore)
	d.stats.stores.Add(1)
	d.stats.bytesWritten.Add(int64(len(key) + len(value)))
	if err := d.afterMutation(); err != nil {
		return d.env.now.Load(), err
	}
	done := d.env.now.Load().Add(d.cfg.AckOverhead)
	d.latStore.Record(int64(done.Sub(start)))
	return done, nil
}

// Delete executes a delete command: verify the key, remove the index
// record, append a tombstone for recoverability, and invalidate the pair.
func (d *Device) Delete(submitAt sim.Time, key []byte) (sim.Time, error) {
	if d.closed.Load() {
		return d.env.now.Load(), ErrClosed
	}
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads.Load()

	sig := d.scheme.Compute(key)
	rp, ok, err := d.idx.Lookup(sig)
	if err != nil {
		return d.env.now.Load(), err
	}
	if !ok {
		return d.env.now.Load(), ErrNotFound
	}
	hdr, storedKey, _, _, err := d.readPair(layout.RP(rp), false, true)
	if err != nil {
		return d.env.now.Load(), err
	}
	if !bytes.Equal(storedKey, key) {
		return d.env.now.Load(), ErrNotFound // signature collision: not this key
	}
	if _, _, err := d.idx.Delete(sig); err != nil {
		return d.env.now.Load(), err
	}
	d.seq++
	tomb := layout.Pair{Sig: sig.Lo, Key: key, Seq: d.seq, Epoch: d.wepoch.Load() + 1, Tombstone: true}
	tombSize := liveSize(len(key), 0)
	if _, err := d.appendPair(&d.fg, tomb, -tombSize); err != nil {
		return d.env.now.Load(), err
	}
	d.invalidateRP(layout.RP(rp), liveSize(hdr.KeyLen, hdr.ValueLen))
	if d.vcache != nil {
		d.vcache.Invalidate(sig.Lo, key)
	}

	d.metaPerOp.Record(d.env.metaReads.Load() - metaBefore)
	d.stats.deletes.Add(1)
	if err := d.afterMutation(); err != nil {
		return d.env.now.Load(), err
	}
	return d.env.now.Load().Add(d.cfg.AckOverhead), nil
}

// insertReconfiguring retries an index insert that aborted with a
// record-layer displacement failure. True same-signature duplicates are
// caught before this point by the lookup-and-compare path, so a
// collision abort here means the key's bucket ran out of hopscotch
// neighborhood.
//
// The rescue applies ONLY in iterator mode, where prefix-sharing keys
// land on the same bucket in whole-group clumps and a single bucket
// overflows well below the global occupancy trigger; re-configuring
// (doubling the directory) re-spreads the groups. With plain signatures
// bucket loads are smooth, a displacement failure is the paper's
// saturation behaviour near the occupancy threshold, and the abort
// rate is itself the measurement (Fig. 8) — those keep the collision
// abort semantics.
//
// The sparsity guard is what keeps a truly pathological key set — a
// single prefix group larger than one record table — from running away.
// Bucket selection uses only prefix-hash bits, so no split ever
// separates keys of one group; without the guard every failed insert
// would buy another round of futile doublings and the directory would
// grow without bound. Once occupancy falls below 1/minSplitFill the
// index has already been doubled several times past its load, so the
// overflow must be such a group: report it uncorrectable instead.
func (d *Device) insertReconfiguring(sig index.Sig, rp uint64) error {
	rz, ok := d.idx.(index.Resizer)
	if !ok || d.cfg.DisableAutoResize || d.scheme.PrefixLen == 0 {
		return index.ErrCollision
	}
	const (
		maxSplits    = 4
		minSplitFill = 32
	)
	for i := 0; i < maxSplits; i++ {
		if cp, ok := d.idx.(interface{ Capacity() int64 }); ok &&
			d.idx.Len()*minSplitFill < cp.Capacity() {
			break
		}
		haltStart := d.env.now.Load()
		if err := rz.Resize(); err != nil {
			return err
		}
		d.stats.resizeHalt.Add(int64(d.env.now.Load().Sub(haltStart)))
		_, _, err := d.idx.Insert(sig, rp)
		if err == nil {
			return nil
		}
		if !errors.Is(err, index.ErrCollision) {
			return err
		}
	}
	return index.ErrCollision
}

// afterMutation runs post-command maintenance: RHIK re-configuration
// (with the submission queue halted — the firmware timeline simply
// advances through the migration), epoch-reclamation collection, and
// periodic checkpoints.
func (d *Device) afterMutation() error {
	d.mutsSince++
	d.collectRetired()
	if rz, ok := d.idx.(index.Resizer); ok && !d.cfg.DisableAutoResize && rz.NeedsResize() {
		haltStart := d.env.now.Load()
		if err := rz.Resize(); err != nil {
			return err
		}
		d.stats.resizeHalt.Add(int64(d.env.now.Load().Sub(haltStart)))
	}
	if d.cfg.CheckpointEveryOps > 0 && d.mutsSince >= d.cfg.CheckpointEveryOps {
		return d.Checkpoint()
	}
	return nil
}

// FlushData programs any open page buffers without checkpointing.
func (d *Device) FlushData() error {
	if err := d.flushOpen(&d.fg); err != nil {
		return err
	}
	return d.flushOpen(&d.gcw)
}
