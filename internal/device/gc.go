package device

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
)

// maybeGC runs garbage collection cycles until the free pool rises above
// the low-water mark. Allocations made while collecting bypass the
// trigger (the pool headroom exists for exactly that). Cycles that make
// no forward progress — relocation consumed as many blocks as the erase
// freed — mean the device is effectively full of live data.
func (d *Device) maybeGC() error {
	if d.inGC {
		return nil
	}
	stalled := 0
	for d.mgr.FreeBlocks() <= d.cfg.GCLowWater {
		before := d.mgr.FreeBlocks()
		if err := d.collect(); err != nil {
			return err
		}
		if d.mgr.FreeBlocks() <= before {
			stalled++
			if stalled >= 2 {
				return ErrDeviceFull
			}
		} else {
			stalled = 0
		}
	}
	return nil
}

// activeBlocks lists the blocks GC must never pick: open log heads
// across both writers' stripes, the index log head, and any block
// holding pages pinned by the persisted checkpoint (those pages are
// referenced by exact address and may be neither moved nor erased).
func (d *Device) activeBlocks() []nand.BlockID {
	var ex []nand.BlockID
	for _, w := range []*logWriter{&d.fg, &d.gcw} {
		for _, s := range w.slots {
			if s.open {
				ex = append(ex, s.block)
			}
		}
	}
	if d.idxBlockOpen {
		ex = append(ex, d.idxBlock)
	}
	seen := make(map[nand.BlockID]bool)
	for _, b := range ex {
		seen[b] = true
	}
	for p := range d.ckptPinned {
		if b := d.flash.BlockOf(p); !seen[b] {
			seen[b] = true
			ex = append(ex, b)
		}
	}
	// Blocks referenced by an open snapshot's frozen view are pinned in
	// place: the snapshot reads them lock-free by exact record pointer,
	// so they may be neither relocated nor erased until every referencing
	// snapshot is released.
	d.snapMu.Lock()
	for s := range d.snaps {
		for b := range s.blocks {
			if !seen[b] {
				seen[b] = true
				ex = append(ex, b)
			}
		}
	}
	d.snapMu.Unlock()
	return ex
}

// collect performs one GC cycle: pick the stalest block across both
// zones, relocate its live contents, erase it, and return it to the
// pool. The paper's algorithm (§IV-B): scan the key signatures in each
// flash page, validate each against the global index, relocate what is
// still live, discard the rest.
func (d *Device) collect() error {
	ex := d.activeBlocks()
	kvV, kvOK := d.mgr.Victim(ftl.ZoneKV, ex...)
	ixV, ixOK := d.mgr.Victim(ftl.ZoneIndex, ex...)

	var victim nand.BlockID
	switch {
	case kvOK && ixOK:
		// Prefer the candidate with proportionally less live data.
		if d.mgr.ValidBytes(kvV) <= d.mgr.ValidBytes(ixV) {
			victim = kvV
		} else {
			victim = ixV
		}
	case kvOK:
		victim = kvV
	case ixOK:
		victim = ixV
	default:
		return ErrDeviceFull
	}

	d.inGC = true
	defer func() { d.inGC = false }()
	// The erase below can yank pages out from under an in-flight
	// optimistic reader; the structure-mutation bracket turns any flash
	// error it sees into a retry.
	d.beginStructureMutation()
	defer d.endStructureMutation()
	d.stats.gcRuns.Add(1)

	var err error
	if d.mgr.Zone(victim) == ftl.ZoneKV {
		err = d.collectKV(victim)
	} else {
		err = d.collectIndex(victim)
	}
	if err != nil {
		return err
	}

	// Relocated pairs must be durable before their only other copy is
	// destroyed: flush the GC writer's open page ahead of the erase.
	if err := d.flushOpen(&d.gcw); err != nil {
		return err
	}

	done, err := d.flash.Erase(d.env.now.Load(), victim)
	if err != nil {
		return err
	}
	// A pinned reader may still hold slices into the erased block's page
	// buffers; route them through the reclaim domain instead of straight
	// back into the program pool.
	if bufs := d.flash.TakeLimbo(); len(bufs) != 0 {
		d.reclaim.Retire(func() { d.flash.RecycleBuffers(bufs) })
	}
	d.env.now.AdvanceTo(done)
	d.mgr.Release(victim)
	d.collectRetired()
	return nil
}

// collectKV relocates live pairs out of a KV-zone victim block.
func (d *Device) collectKV(victim nand.BlockID) error {
	pages := d.flash.ProgrammedPages(victim)
	for pi := 0; pi < pages; pi++ {
		ppa := d.flash.PPAOf(victim, pi)
		data, spare, done, err := d.flash.Read(d.env.now.Load(), ppa)
		if err != nil {
			return err
		}
		d.env.now.AdvanceTo(done)
		kind, _, _, err := layout.DecodeSpare(spare)
		if err != nil {
			return err
		}
		if kind != layout.KindData {
			continue // continuations move with their head page
		}
		infos, err := layout.DecodeSigArea(data)
		if err != nil {
			return err
		}
		for slot, info := range infos {
			hdr, key, inline, err := layout.DecodePairAt(data, int(info.Offset))
			if err != nil {
				return err
			}
			if hdr.Tombstone() {
				continue
			}
			rp := layout.MakeRP(uint64(ppa), slot)
			sig := d.scheme.Compute(key)
			cur, ok, err := d.idx.Lookup(sig)
			if err != nil {
				return err
			}
			if !ok || cur != uint64(rp) {
				continue // stale version
			}
			value := inline
			if hdr.ValueLen > len(inline) {
				// Reassemble the extent from this block's continuations.
				full := make([]byte, 0, hdr.ValueLen)
				full = append(full, inline...)
				readAt := d.env.now.Load()
				for i := 1; len(full) < hdr.ValueLen; i++ {
					cont, _, cd, err := d.flash.Read(readAt, ppa+nand.PPA(i))
					if err != nil {
						return fmt.Errorf("device: gc extent read: %w", err)
					}
					readAt = cd
					full = append(full, cont...)
				}
				d.env.now.AdvanceTo(readAt)
				if len(full) > hdr.ValueLen {
					full = full[:hdr.ValueLen]
				}
				value = full
			}

			d.seq++
			// Copy key/value out of the flash-owned buffers before they
			// are erased. The relocated copy is re-stamped with the OPEN
			// epoch, not the original: snapshot-referenced blocks are never
			// victims, so no frozen view points here, and a too-new stamp
			// only makes a snapshot's fast path fall back to its (correct)
			// frozen view. Preserving originals would break the page-local
			// monotone delta encoding.
			p := layout.Pair{
				Sig:   sig.Lo,
				Key:   append([]byte(nil), key...),
				Value: append([]byte(nil), value...),
				Seq:   d.seq,
				Epoch: d.wepoch.Load() + 1,
			}
			live := liveSize(len(p.Key), len(p.Value))
			var newRP layout.RP
			if layout.ExtentPages(d.flash.Config().PageSize, len(p.Key), len(p.Value)) > 1 {
				newRP, err = d.appendExtent(&d.gcw, p, live)
			} else {
				newRP, err = d.appendPair(&d.gcw, p, live)
			}
			if err != nil {
				return err
			}
			if _, _, err := d.idx.Insert(sig, uint64(newRP)); err != nil {
				return fmt.Errorf("device: gc reinsert: %w", err)
			}
			d.stats.gcPagesMoved.Add(1)
			d.stats.gcBytesMoved.Add(int64(live))
		}
	}
	return nil
}

// collectIndex relocates live index and checkpoint pages out of an
// index-zone victim block.
func (d *Device) collectIndex(victim nand.BlockID) error {
	rel, _ := d.idx.(index.Relocator)
	pages := d.flash.ProgrammedPages(victim)
	for pi := 0; pi < pages; pi++ {
		ppa := d.flash.PPAOf(victim, pi)
		_, spare, done, err := d.flash.Read(d.env.now.Load(), ppa)
		if err != nil {
			return err
		}
		d.env.now.AdvanceTo(done)
		kind, _, _, err := layout.DecodeSpare(spare)
		if err != nil {
			return err
		}
		switch kind {
		case layout.KindIndex:
			if rel == nil {
				continue
			}
			if unit, live := rel.Owner(ppa); live {
				if err := rel.Relocate(unit); err != nil {
					return err
				}
				d.stats.gcPagesMoved.Add(1)
			}
		case layout.KindCheckpoint:
			if err := d.relocateCheckpointPage(ppa); err != nil {
				return err
			}
		}
	}
	return nil
}
