package device

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/nand"
	"repro/internal/sim"
)

// smallNAND is a compact geometry for fast tests: 2 MiB, 8 KiB pages.
func smallNAND() *nand.Config {
	return &nand.Config{
		Channels: 2, DiesPerChan: 2, BlocksPerDie: 16, PagesPerBlock: 8,
		PageSize: 8 * 1024, SpareSize: 256,
		ReadLatency: 60 * sim.Microsecond, ProgramLatency: 700 * sim.Microsecond,
		EraseLatency: 3500 * sim.Microsecond, ChannelMBps: 800,
	}
}

func openSmall(t *testing.T, mut func(*Config)) *Device {
	t.Helper()
	cfg := Config{NAND: smallNAND()}
	if mut != nil {
		mut(&cfg)
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i, n int) []byte {
	v := make([]byte, n)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

func mustStore(t *testing.T, d *Device, k, v []byte) sim.Time {
	t.Helper()
	done, err := d.Store(d.Now(), k, v)
	if err != nil {
		t.Fatalf("Store(%q): %v", k, err)
	}
	return done
}

func mustGet(t *testing.T, d *Device, k []byte) []byte {
	t.Helper()
	v, _, err := d.Retrieve(d.Now(), k)
	if err != nil {
		t.Fatalf("Retrieve(%q): %v", k, err)
	}
	return v
}

func TestStoreRetrieveRoundTrip(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), val(1, 100))
	got := mustGet(t, d, key(1))
	if !bytes.Equal(got, val(1, 100)) {
		t.Fatal("value mismatch")
	}
	if d.Stats().Stores != 1 || d.Stats().Retrieves != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestRetrieveMissing(t *testing.T) {
	d := openSmall(t, nil)
	if _, _, err := d.Retrieve(0, key(9)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateReplacesValue(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), []byte("v1"))
	mustStore(t, d, key(1), []byte("v2-longer"))
	if got := mustGet(t, d, key(1)); string(got) != "v2-longer" {
		t.Fatalf("got %q", got)
	}
	if n := d.Index().Len(); n != 1 {
		t.Fatalf("index Len = %d", n)
	}
}

func TestDelete(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), []byte("v"))
	if _, err := d.Delete(d.Now(), key(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Retrieve(d.Now(), key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("retrieve after delete: %v", err)
	}
	if _, err := d.Delete(d.Now(), key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// Re-insert after delete.
	mustStore(t, d, key(1), []byte("v2"))
	if got := mustGet(t, d, key(1)); string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func TestExist(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), []byte("v"))
	ok, _, err := d.Exist(d.Now(), key(1))
	if err != nil || !ok {
		t.Fatalf("Exist = (%v,%v)", ok, err)
	}
	ok, _, err = d.Exist(d.Now(), key(2))
	if err != nil || ok {
		t.Fatalf("Exist(absent) = (%v,%v)", ok, err)
	}
}

func TestReadYourBufferedWrite(t *testing.T) {
	// A freshly stored small pair sits in the open page buffer; reads
	// must still see it.
	d := openSmall(t, nil)
	mustStore(t, d, key(1), []byte("buffered"))
	if d.FlashStats().Programs != 0 {
		t.Fatal("tiny store should still be buffered")
	}
	if got := mustGet(t, d, key(1)); string(got) != "buffered" {
		t.Fatalf("got %q", got)
	}
}

func TestExtentValueRoundTrip(t *testing.T) {
	d := openSmall(t, nil)
	big := val(7, 3*8*1024+123) // spans 4+ pages
	mustStore(t, d, key(7), big)
	got := mustGet(t, d, key(7))
	if !bytes.Equal(got, big) {
		t.Fatal("extent value mismatch")
	}
}

func TestValueTooLarge(t *testing.T) {
	d := openSmall(t, nil)
	// Block = 8 pages × 8 KiB; anything beyond one block must fail.
	huge := make([]byte, 9*8*1024)
	if _, err := d.Store(0, key(1), huge); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyValidation(t *testing.T) {
	d := openSmall(t, nil)
	if _, err := d.Store(0, nil, []byte("v")); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := d.Store(0, make([]byte, 60000), []byte("v")); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("huge key: %v", err)
	}
}

func TestManyKeysWithResizes(t *testing.T) {
	d := openSmall(t, nil)
	const n = 3000
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 24))
	}
	if len(d.ResizeEvents()) == 0 {
		t.Fatal("no resizes while growing from a minimal index")
	}
	if d.Stats().ResizeHalt <= 0 {
		t.Fatal("resize halt time not accounted")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		k := rng.Intn(n)
		if got := mustGet(t, d, key(k)); !bytes.Equal(got, val(k, 24)) {
			t.Fatalf("key %d mismatch after resizes", k)
		}
	}
}

func TestGCReclaimsSpaceUnderChurn(t *testing.T) {
	// Overwrite a small working set many times: total writes far exceed
	// capacity, so GC must reclaim stale pairs for the device to keep
	// accepting writes.
	d := openSmall(t, nil)
	const keys = 40
	valSize := 2048
	rounds := 40 // 40×40×2 KiB ≈ 3.2 MiB through a 2 MiB device
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			if _, err := d.Store(d.Now(), key(i), val(r, valSize)); err != nil {
				t.Fatalf("round %d key %d: %v (GC failed to reclaim?)", r, i, err)
			}
		}
	}
	if d.Stats().GCRuns == 0 {
		t.Fatal("GC never ran despite churn beyond capacity")
	}
	for i := 0; i < keys; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(rounds-1, valSize)) {
			t.Fatalf("key %d lost or stale after GC", i)
		}
	}
}

func TestGCPreservesExtents(t *testing.T) {
	d := openSmall(t, nil)
	big := val(3, 20*1024) // 3-page extent
	mustStore(t, d, key(100), big)
	// Churn small keys to force GC cycles around the extent.
	for r := 0; r < 60; r++ {
		for i := 0; i < 20; i++ {
			if _, err := d.Store(d.Now(), key(i), val(r, 2048)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := mustGet(t, d, key(100)); !bytes.Equal(got, big) {
		t.Fatal("extent corrupted by GC churn")
	}
}

func TestDeviceFillsToCapacityThenErrors(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.GCLowWater = 2 })
	var err error
	stored := 0
	for i := 0; i < 100000; i++ {
		_, err = d.Store(d.Now(), key(i), val(i, 4096))
		if err != nil {
			break
		}
		stored++
	}
	if !errors.Is(err, ErrDeviceFull) {
		t.Fatalf("expected ErrDeviceFull, got %v after %d stores", err, stored)
	}
	// Utilization should be substantial before failing (log + GC overheads
	// and zone headroom allowed).
	bytesStored := int64(stored) * 4096
	if frac := float64(bytesStored) / float64(d.Geometry().Capacity()); frac < 0.4 {
		t.Fatalf("device failed at %.0f%% utilization (%d stores)", frac*100, stored)
	}
	// Previously stored data must remain readable.
	for i := 0; i < stored; i += 50 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 4096)) {
			t.Fatalf("key %d unreadable on full device", i)
		}
	}
}

func TestSyncVsAsyncThroughput(t *testing.T) {
	// Async submission must beat sync wall-clock: die parallelism.
	run := func(async bool) sim.Duration {
		d := openSmall(t, nil)
		const n = 200
		v := val(1, 4096)
		var submit sim.Time
		var last sim.Time
		for i := 0; i < n; i++ {
			done, err := d.Store(submit, key(i), v)
			if err != nil {
				t.Fatal(err)
			}
			if done > last {
				last = done
			}
			if async {
				submit = submit.Add(2 * sim.Microsecond)
			} else {
				submit = done
			}
		}
		end := d.Drain()
		if last > end {
			end = last
		}
		return end.Sub(0)
	}
	syncT := run(false)
	asyncT := run(true)
	if asyncT >= syncT {
		t.Fatalf("async (%v) not faster than sync (%v)", asyncT, syncT)
	}
}

func TestMultiLevelIndexDevice(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.Index = IndexMultiLevel })
	const n = 500
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	for i := 0; i < n; i += 7 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("key %d mismatch on mlhash device", i)
		}
	}
	if d.ResizeEvents() != nil {
		t.Fatal("mlhash reported resize events")
	}
}

func TestCheckpointAndRestartRecoversAll(t *testing.T) {
	d := openSmall(t, nil)
	const n = 400
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	for i := 0; i < 50; i++ { // deletes must survive too
		if _, err := d.Delete(d.Now(), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Recoveries != 1 {
		t.Fatal("recovery not counted")
	}
	for i := 0; i < 50; i++ {
		if _, _, err := d.Retrieve(d.Now(), key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d resurrected: %v", i, err)
		}
	}
	for i := 50; i < n; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("key %d lost after restart", i)
		}
	}
}

func TestRestartReplaysPostCheckpointLog(t *testing.T) {
	d := openSmall(t, nil)
	for i := 0; i < 100; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity: new keys, updates, deletes.
	for i := 100; i < 150; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	for i := 0; i < 20; i++ {
		mustStore(t, d, key(i), val(i+1000, 64)) // updates
	}
	if _, err := d.Delete(d.Now(), key(99)); err != nil {
		t.Fatal(err)
	}
	// Programmed-but-not-checkpointed state must survive; flush buffers
	// to flash (simulating enough traffic) without checkpointing.
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i+1000, 64)) {
			t.Fatalf("update of key %d lost in replay", i)
		}
	}
	for i := 100; i < 150; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("post-checkpoint key %d lost", i)
		}
	}
	if _, _, err := d.Retrieve(d.Now(), key(99)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone for key 99 not replayed: %v", err)
	}
	// Device must remain writable after recovery.
	mustStore(t, d, key(9999), []byte("post-recovery"))
	if got := mustGet(t, d, key(9999)); string(got) != "post-recovery" {
		t.Fatal("store after recovery failed")
	}
}

func TestRestartWithoutCheckpoint(t *testing.T) {
	// No checkpoint ever taken: full log replay rebuilds everything that
	// reached flash.
	d := openSmall(t, nil)
	for i := 0; i < 200; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("key %d lost in checkpoint-free recovery", i)
		}
	}
}

func TestRestartLosesOnlyBufferedWrites(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), val(1, 64))
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	mustStore(t, d, key(2), val(2, 64)) // stays in the open page buffer
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, d, key(1)); !bytes.Equal(got, val(1, 64)) {
		t.Fatal("flushed write lost")
	}
	if _, _, err := d.Retrieve(d.Now(), key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("buffered write should be lost on power cut, got %v", err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.CheckpointEveryOps = 50 })
	for i := 0; i < 120; i++ {
		mustStore(t, d, key(i), val(i, 32))
	}
	if d.Stats().Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2", d.Stats().Checkpoints)
	}
}

func TestIteratePrefix(t *testing.T) {
	d := openSmall(t, func(c *Config) {
		c.SigScheme = index.SigScheme{Bits: 64, PrefixLen: 5}
	})
	for i := 0; i < 20; i++ {
		mustStore(t, d, []byte(fmt.Sprintf("user:%04d", i)), val(i, 16))
	}
	for i := 0; i < 20; i++ {
		mustStore(t, d, []byte(fmt.Sprintf("post:%04d", i)), val(i, 16))
	}
	entries, _, err := d.Iterate(d.Now(), []byte("user:"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("Iterate found %d entries, want 20", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("user:%04d", i)
		if string(e.Key) != want {
			t.Fatalf("entry %d = %q, want %q (sorted)", i, e.Key, want)
		}
		if !bytes.Equal(e.Value, val(i, 16)) {
			t.Fatalf("entry %d value mismatch", i)
		}
	}
}

func TestIterateRequiresPrefixScheme(t *testing.T) {
	d := openSmall(t, nil)
	if _, _, err := d.Iterate(0, []byte("x"), false); !errors.Is(err, ErrNoIterator) {
		t.Fatalf("err = %v", err)
	}
}

func TestMetaReadsPerOpBounded(t *testing.T) {
	// RHIK's guarantee observed end-to-end: with a cold cache, index
	// flash reads per op never exceed 1.
	d := openSmall(t, func(c *Config) { c.CacheBudget = 1 })
	const n = 800
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 32))
	}
	d.ResetOpStats()
	for i := 0; i < n; i += 3 {
		mustGet(t, d, key(i))
	}
	if max := d.MetaReadsPerOp().Max(); max > 1 {
		t.Fatalf("max index flash reads per op = %d, want <= 1", max)
	}
}

func TestMultiLevelMetaReadsExceedOne(t *testing.T) {
	d := openSmall(t, func(c *Config) {
		c.Index = IndexMultiLevel
		c.CacheBudget = 1
		c.MLHash.Levels = 4
		c.MLHash.Level0Pages = 1
	})
	// Level 0 holds ~630 slots (8 KiB / 13 B); 3000 keys overflow into
	// deeper levels so lookups genuinely cascade.
	const n = 3000
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 32))
	}
	d.ResetOpStats()
	for i := 0; i < n; i += 3 {
		mustGet(t, d, key(i))
	}
	if max := d.MetaReadsPerOp().Max(); max < 2 {
		t.Fatalf("multi-level max reads per op = %d, want >= 2", max)
	}
}

func TestCloseRejectsFurtherOps(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), []byte("v"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Store(0, key(2), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("store after close: %v", err)
	}
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestLatencyHistogramspopulated(t *testing.T) {
	d := openSmall(t, nil)
	for i := 0; i < 50; i++ {
		mustStore(t, d, key(i), val(i, 64))
		mustGet(t, d, key(i))
	}
	if d.StoreLatency().Count() != 50 || d.RetrieveLatency().Count() != 50 {
		t.Fatal("latency histograms not populated")
	}
	if d.RetrieveLatency().Mean() <= 0 {
		t.Fatal("zero retrieve latency")
	}
}

func TestWearAccumulates(t *testing.T) {
	d := openSmall(t, nil)
	for r := 0; r < 50; r++ {
		for i := 0; i < 30; i++ {
			if _, err := d.Store(d.Now(), key(i), val(r, 2048)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if d.FlashStats().Erases == 0 {
		t.Fatal("no erases under churn")
	}
}

func TestLSMIndexDevice(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.Index = IndexLSM })
	const n = 600
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	for i := 0; i < n; i += 5 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("key %d mismatch on lsm device", i)
		}
	}
	if _, err := d.Delete(d.Now(), key(3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Retrieve(d.Now(), key(3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key on lsm device: %v", err)
	}
	if d.Index().Name() != "lsm" {
		t.Fatal("wrong index name")
	}
}

func TestLSMDeviceRecoveryViaReplay(t *testing.T) {
	// The LSM index has no Checkpointer: recovery falls back to a full
	// log replay and must still restore every pair.
	d := openSmall(t, func(c *Config) { c.Index = IndexLSM })
	for i := 0; i < 200; i++ {
		mustStore(t, d, key(i), val(i, 64))
	}
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 64)) {
			t.Fatalf("key %d lost in lsm recovery", i)
		}
	}
}

func TestLSMDeviceGCChurn(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.Index = IndexLSM })
	const rounds = 70 // ~4.1 MiB of updates through a 4 MiB device
	for r := 0; r < rounds; r++ {
		for i := 0; i < 30; i++ {
			if _, err := d.Store(d.Now(), key(i), val(r, 2048)); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
	}
	if d.Stats().GCRuns == 0 {
		t.Fatal("no GC under churn")
	}
	for i := 0; i < 30; i++ {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(rounds-1, 2048)) {
			t.Fatalf("key %d stale after GC on lsm device", i)
		}
	}
}

func TestDisableAutoResizeKeepsIndexFixed(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.DisableAutoResize = true })
	var collided bool
	for i := 0; i < 4000; i++ {
		if _, err := d.Store(d.Now(), key(i), val(i, 16)); err != nil {
			if errors.Is(err, index.ErrCollision) {
				collided = true
				break
			}
			t.Fatal(err)
		}
	}
	if len(d.ResizeEvents()) != 0 {
		t.Fatal("index resized despite DisableAutoResize")
	}
	if !collided {
		t.Fatal("fixed single-table index never filled")
	}
}

func TestWide128SignatureDevice(t *testing.T) {
	d := openSmall(t, func(c *Config) {
		c.SigScheme = index.SigScheme{Bits: 128}
	})
	for i := 0; i < 300; i++ {
		mustStore(t, d, key(i), val(i, 32))
	}
	for i := 0; i < 300; i += 11 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 32)) {
			t.Fatalf("key %d mismatch with 128-bit signatures", i)
		}
	}
}

func TestCheckpointPagesSurviveIndexZoneGC(t *testing.T) {
	// Heavy index churn forces index-zone GC cycles that must relocate
	// live checkpoint pages without losing the recovery root.
	d := openSmall(t, func(c *Config) {
		c.CacheBudget = 1 // every dirty table writes through: index churn
		c.CheckpointEveryOps = 200
	})
	const n = 1500
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 16))
	}
	if d.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints happened")
	}
	// Flush the volatile page buffer (its loss on power cut is the
	// documented ack window); everything programmed must survive.
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 16)) {
			t.Fatalf("key %d lost after churn + recovery", i)
		}
	}
	// A second crash before any further checkpoint must find the same
	// recovery root intact (the pinned-pages invariant).
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 89 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 16)) {
			t.Fatalf("key %d lost after double crash", i)
		}
	}
}

func TestIncrementalResizeDevice(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.IncrementalResize = true })
	const n = 3000
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 16))
	}
	// Growth happened without any long queue halt being recorded.
	if d.Stats().ResizeHalt > sim.Millisecond {
		t.Fatalf("incremental mode recorded %v of halt", d.Stats().ResizeHalt)
	}
	for i := 0; i < n; i += 53 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 16)) {
			t.Fatalf("key %d mismatch under incremental growth", i)
		}
	}
	// Checkpoint + restart drains the migration and recovers fully.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 53 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 16)) {
			t.Fatalf("key %d lost after incremental growth + recovery", i)
		}
	}
}

func TestResetOpStatsClearsHistograms(t *testing.T) {
	d := openSmall(t, nil)
	mustStore(t, d, key(1), val(1, 16))
	mustGet(t, d, key(1))
	d.ResetOpStats()
	if d.StoreLatency().Count() != 0 || d.RetrieveLatency().Count() != 0 || d.MetaReadsPerOp().Count() != 0 {
		t.Fatal("ResetOpStats left samples")
	}
	// Counters (not per-op stats) are preserved.
	if d.Stats().Stores != 1 {
		t.Fatal("ResetOpStats clobbered counters")
	}
}

func TestIndexKindString(t *testing.T) {
	if IndexRHIK.String() != "rhik" || IndexMultiLevel.String() != "mlhash" ||
		IndexLSM.String() != "lsm" || IndexKind(9).String() == "" {
		t.Fatal("IndexKind.String broken")
	}
}
