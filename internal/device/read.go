package device

import (
	"bytes"

	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// readPair fetches the pair addressed by rp: from an open page buffer if
// still pending, else from flash (head page plus continuations for
// extents). When blocking is true the firmware waits for the data (key
// verification gates the command); otherwise only the completion time
// reflects the read and the firmware moves on (data-out phase of a
// retrieve). Safe for concurrent readers: flash page reads are pure, the
// single-slot signature decode allocates nothing, and the timeline only
// moves through CAS-max advances. (The extent reassembly path allocates,
// but only multi-page values take it.)
func (d *Device) readPair(rp layout.RP, withValue, blocking bool) (hdr layout.PairHeader, key, value []byte, done sim.Time, err error) {
	if p, ok := d.pending[rp]; ok {
		hdr = layout.PairHeader{KeyLen: len(p.key), ValueLen: len(p.value)}
		return hdr, p.key, p.value, d.env.now.Load(), nil
	}
	ppa := nand.PPA(rp.Page())
	data, _, readDone, err := d.flash.Read(d.env.now.Load(), ppa)
	if err != nil {
		return hdr, nil, nil, d.env.now.Load(), err
	}
	done = readDone
	info, _, err := layout.SigInfoAt(data, rp.Slot())
	if err != nil {
		return hdr, nil, nil, done, err
	}
	hdr, key, value, err = layout.DecodePairAt(data, int(info.Offset))
	if err != nil {
		return hdr, nil, nil, done, err
	}
	if withValue && hdr.ValueLen > len(value) {
		// Extent: continuations follow the head page in the same block.
		full := make([]byte, 0, hdr.ValueLen)
		full = append(full, value...)
		for i := 1; len(full) < hdr.ValueLen; i++ {
			cont, _, cd, err := d.flash.Read(done, ppa+nand.PPA(i))
			if err != nil {
				return hdr, nil, nil, done, err
			}
			done = cd
			full = append(full, cont...)
		}
		if len(full) > hdr.ValueLen {
			full = full[:hdr.ValueLen]
		}
		value = full
	}
	if blocking {
		d.env.now.AdvanceTo(done)
	}
	return hdr, key, value, done, nil
}

// retrieveValueHit completes a get served from the hot-value tier: no
// index probe, no flash. The charge sequence is identical in the
// exclusive and optimistic tiers (command arrival, command CPU, a zero
// metadata-read sample, value DMA, ack), so whichever tier hits produces
// the same timeline. Allocation-free when dst has capacity.
func (d *Device) retrieveValueHit(submitAt sim.Time, key, value, dst []byte) ([]byte, sim.Time) {
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	d.metaPerOp.Record(0)
	d.metaPerGet.Record(0)
	done := d.hostXfer(d.env.now.Load(), len(value)).Add(d.cfg.AckOverhead)
	d.stats.retrieves.Add(1)
	d.stats.bytesRead.Add(int64(len(value)))
	d.latGet.Record(int64(done.Sub(submitAt)))
	return append(dst, value...), done
}

// retrieve is the get command body shared by the exclusive and shared
// entry points. The value is appended to dst (which may be nil).
func (d *Device) retrieve(submitAt sim.Time, key, dst []byte, sig index.Sig) ([]byte, sim.Time, error) {
	var vgen uint64
	if d.vcache != nil {
		if v, ok := d.vcache.Lookup(sig.Lo, key); ok {
			out, done := d.retrieveValueHit(submitAt, key, v, dst)
			return out, done, nil
		}
		// Snapshot the bucket generation before the index probe so the
		// insert below is refused if any overwrite lands in between.
		vgen = d.vcache.Gen(sig.Lo)
	}
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	start := submitAt
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads.Load()

	rp, ok, err := d.idx.Lookup(sig)
	metaDelta := d.env.metaReads.Load() - metaBefore
	d.metaPerOp.Record(metaDelta)
	d.metaPerGet.Record(metaDelta)
	if err != nil {
		return dst, d.env.now.Load(), err
	}
	if !ok {
		return dst, d.env.now.Load(), ErrNotFound
	}
	hdr, storedKey, value, done, err := d.readPair(layout.RP(rp), true, false)
	if err != nil {
		return dst, done, err
	}
	if hdr.Tombstone() || !bytes.Equal(storedKey, key) {
		return dst, done, ErrNotFound
	}
	if now := d.env.now.Load(); done < now {
		done = now
	}
	// Value DMA back to the host, then the completion round trip.
	done = d.hostXfer(done, len(value)).Add(d.cfg.AckOverhead)
	d.stats.retrieves.Add(1)
	d.stats.bytesRead.Add(int64(len(value)))
	d.latGet.Record(int64(done.Sub(start)))
	if d.vcache != nil {
		d.vcache.Insert(vgen, sig.Lo, key, value)
	}
	return append(dst, value...), done, nil
}

// Retrieve executes a get command, returning the value (a copy) and the
// command's completion time. The stored key is compared to the request
// key before returning, so signature collisions can never return the
// wrong value (§IV-A3).
func (d *Device) Retrieve(submitAt sim.Time, key []byte) ([]byte, sim.Time, error) {
	if d.closed.Load() {
		return nil, d.env.now.Load(), ErrClosed
	}
	d.collectRetired()
	v, done, err := d.retrieve(submitAt, key, nil, d.scheme.Compute(key))
	if err != nil {
		return nil, done, err
	}
	return v, done, nil
}

// RetrieveAppend is Retrieve with the value appended to dst, letting the
// caller reuse one buffer across gets (the allocation-free hot path).
// Requires the caller's exclusive lock, like Retrieve.
func (d *Device) RetrieveAppend(submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	if d.closed.Load() {
		return dst, d.env.now.Load(), ErrClosed
	}
	d.collectRetired()
	return d.retrieve(submitAt, key, dst, d.scheme.Compute(key))
}

// TryRetrieveShared executes a get under the caller's SHARED lock. It
// returns index.ErrNeedExclusive — before charging any simulated time or
// touching any counter — when the lookup would have to mutate index
// structure (cache miss, in-flight migration, pending write-back error);
// the caller re-executes under the exclusive lock. On success the value
// is appended to dst.
func (d *Device) TryRetrieveShared(submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	if d.closed.Load() {
		return dst, d.env.now.Load(), ErrClosed
	}
	sig := d.scheme.Compute(key)
	sr, ok := d.idx.(index.SharedReader)
	if !ok || !sr.SharedLookupReady(sig) {
		return dst, 0, index.ErrNeedExclusive
	}
	return d.retrieve(submitAt, key, dst, sig)
}

// exist is the key-exist command body shared by the exclusive and shared
// entry points.
func (d *Device) exist(submitAt sim.Time, key []byte, sig index.Sig) (bool, sim.Time, error) {
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads.Load()

	rp, ok, err := d.idx.Lookup(sig)
	d.metaPerOp.Record(d.env.metaReads.Load() - metaBefore)
	if err != nil {
		return false, d.env.now.Load(), err
	}
	d.stats.exists.Add(1)
	if !ok {
		return false, d.env.now.Load(), nil
	}
	hdr, storedKey, _, done, err := d.readPair(layout.RP(rp), false, true)
	if err != nil {
		return false, done, err
	}
	return !hdr.Tombstone() && bytes.Equal(storedKey, key), d.env.now.Load(), nil
}

// Exist executes a key-exist command. The index answers from key
// signatures; on a hit the stored key is fetched and compared, so the
// result is exact (the extra flash read the paper describes for explicit
// membership checks as signature collisions become likely).
func (d *Device) Exist(submitAt sim.Time, key []byte) (bool, sim.Time, error) {
	if d.closed.Load() {
		return false, d.env.now.Load(), ErrClosed
	}
	d.collectRetired()
	return d.exist(submitAt, key, d.scheme.Compute(key))
}

// TryExistShared executes a key-exist command under the caller's SHARED
// lock, returning index.ErrNeedExclusive (before any simulated-time
// charge) when the lookup is not DRAM-resident.
func (d *Device) TryExistShared(submitAt sim.Time, key []byte) (bool, sim.Time, error) {
	if d.closed.Load() {
		return false, d.env.now.Load(), ErrClosed
	}
	sig := d.scheme.Compute(key)
	sr, ok := d.idx.(index.SharedReader)
	if !ok || !sr.SharedLookupReady(sig) {
		return false, 0, index.ErrNeedExclusive
	}
	return d.exist(submitAt, key, sig)
}
