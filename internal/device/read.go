package device

import (
	"bytes"
	"fmt"

	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// readPair fetches the pair addressed by rp: from an open page buffer if
// still pending, else from flash (head page plus continuations for
// extents). When blocking is true the firmware waits for the data (key
// verification gates the command); otherwise only the completion time
// reflects the read and the firmware moves on (data-out phase of a
// retrieve).
func (d *Device) readPair(rp layout.RP, withValue, blocking bool) (hdr layout.PairHeader, key, value []byte, done sim.Time, err error) {
	if p, ok := d.pending[rp]; ok {
		hdr = layout.PairHeader{KeyLen: len(p.key), ValueLen: len(p.value)}
		return hdr, p.key, p.value, d.env.now, nil
	}
	ppa := nand.PPA(rp.Page())
	data, _, readDone, err := d.flash.Read(d.env.now, ppa)
	if err != nil {
		return hdr, nil, nil, d.env.now, err
	}
	done = readDone
	infos, err := layout.DecodeSigArea(data)
	if err != nil {
		return hdr, nil, nil, done, err
	}
	slot := rp.Slot()
	if slot >= len(infos) {
		return hdr, nil, nil, done, fmt.Errorf("device: rp %v slot %d beyond page (%d pairs)", rp, slot, len(infos))
	}
	hdr, key, value, err = layout.DecodePairAt(data, int(infos[slot].Offset))
	if err != nil {
		return hdr, nil, nil, done, err
	}
	if withValue && hdr.ValueLen > len(value) {
		// Extent: continuations follow the head page in the same block.
		full := make([]byte, 0, hdr.ValueLen)
		full = append(full, value...)
		for i := 1; len(full) < hdr.ValueLen; i++ {
			cont, _, cd, err := d.flash.Read(done, ppa+nand.PPA(i))
			if err != nil {
				return hdr, nil, nil, done, fmt.Errorf("device: extent continuation %d: %w", i, err)
			}
			done = cd
			full = append(full, cont...)
		}
		if len(full) > hdr.ValueLen {
			full = full[:hdr.ValueLen]
		}
		value = full
	}
	if blocking && done > d.env.now {
		d.env.now = done
	}
	return hdr, key, value, done, nil
}

// Retrieve executes a get command, returning the value (a copy) and the
// command's completion time. The stored key is compared to the request
// key before returning, so signature collisions can never return the
// wrong value (§IV-A3).
func (d *Device) Retrieve(submitAt sim.Time, key []byte) ([]byte, sim.Time, error) {
	if d.closed {
		return nil, d.env.now, ErrClosed
	}
	arrive := d.hostXfer(submitAt, len(key))
	if arrive > d.env.now {
		d.env.now = arrive
	}
	start := submitAt
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads

	sig := d.scheme.Compute(key)
	rp, ok, err := d.idx.Lookup(sig)
	d.metaPerOp.Record(d.env.metaReads - metaBefore)
	if err != nil {
		return nil, d.env.now, err
	}
	if !ok {
		return nil, d.env.now, ErrNotFound
	}
	hdr, storedKey, value, done, err := d.readPair(layout.RP(rp), true, false)
	if err != nil {
		return nil, done, err
	}
	if hdr.Tombstone() || !bytes.Equal(storedKey, key) {
		return nil, done, ErrNotFound
	}
	if done < d.env.now {
		done = d.env.now
	}
	// Value DMA back to the host, then the completion round trip.
	done = d.hostXfer(done, len(value)).Add(d.cfg.AckOverhead)
	d.stats.Retrieves++
	d.stats.BytesRead += int64(len(value))
	d.latGet.Record(int64(done.Sub(start)))
	return append([]byte(nil), value...), done, nil
}

// Exist executes a key-exist command. The index answers from key
// signatures; on a hit the stored key is fetched and compared, so the
// result is exact (the extra flash read the paper describes for explicit
// membership checks as signature collisions become likely).
func (d *Device) Exist(submitAt sim.Time, key []byte) (bool, sim.Time, error) {
	if d.closed {
		return false, d.env.now, ErrClosed
	}
	arrive := d.hostXfer(submitAt, len(key))
	if arrive > d.env.now {
		d.env.now = arrive
	}
	d.env.ChargeCPU(d.cfg.CmdCPU)
	metaBefore := d.env.metaReads

	sig := d.scheme.Compute(key)
	rp, ok, err := d.idx.Lookup(sig)
	d.metaPerOp.Record(d.env.metaReads - metaBefore)
	if err != nil {
		return false, d.env.now, err
	}
	d.stats.Exists++
	if !ok {
		return false, d.env.now, nil
	}
	hdr, storedKey, _, done, err := d.readPair(layout.RP(rp), false, true)
	if err != nil {
		return false, done, err
	}
	return !hdr.Tombstone() && bytes.Equal(storedKey, key), d.env.now, nil
}
