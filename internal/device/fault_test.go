package device

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/nand"
)

// Fault-injection tests: uncorrectable flash errors must surface as
// command errors without corrupting unrelated state, and the device must
// keep serving once the fault clears.

func TestReadFaultSurfacesOnRetrieve(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.CacheBudget = 1 })
	mustStore(t, d, key(1), val(1, 64))
	if err := d.FlushData(); err != nil {
		t.Fatal(err)
	}
	d.Flash().FailNextReads(1)
	if _, _, err := d.Retrieve(d.Now(), key(1)); !errors.Is(err, nand.ErrReadFault) {
		t.Fatalf("err = %v, want ErrReadFault", err)
	}
	// Fault cleared: same key must read fine.
	if got := mustGet(t, d, key(1)); !bytes.Equal(got, val(1, 64)) {
		t.Fatal("value corrupted after transient read fault")
	}
}

func TestProgramFaultSurfacesOnStore(t *testing.T) {
	d := openSmall(t, nil)
	// Extent-sized value programs immediately, so the fault lands inside
	// the store itself.
	d.Flash().FailNextPrograms(1)
	big := val(2, 20*1024)
	if _, err := d.Store(d.Now(), key(2), big); !errors.Is(err, nand.ErrProgramFault) {
		t.Fatalf("err = %v, want ErrProgramFault", err)
	}
	// Note: a failed program consumes the page slot (real firmware would
	// mark it bad); the next store must still succeed.
	if _, err := d.Store(d.Now(), key(3), val(3, 64)); err == nil {
		if got := mustGet(t, d, key(3)); !bytes.Equal(got, val(3, 64)) {
			t.Fatal("post-fault store unreadable")
		}
	} else {
		t.Fatalf("store after program fault: %v", err)
	}
}

func TestIndexReadFaultSurfacesButDeviceRecovers(t *testing.T) {
	d := openSmall(t, func(c *Config) { c.CacheBudget = 1 })
	const n = 400
	for i := 0; i < n; i++ {
		mustStore(t, d, key(i), val(i, 32))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// With a 1-byte cache every lookup reads an index page from flash.
	d.Flash().FailNextReads(1)
	sawErr := false
	for i := 0; i < 5; i++ {
		if _, _, err := d.Retrieve(d.Now(), key(i)); err != nil {
			if !errors.Is(err, nand.ErrReadFault) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("injected index read fault never surfaced")
	}
	for i := 0; i < n; i += 37 {
		if got := mustGet(t, d, key(i)); !bytes.Equal(got, val(i, 32)) {
			t.Fatalf("key %d unreadable after fault cleared", i)
		}
	}
}
