package device

import (
	"sync/atomic"

	"repro/internal/ftl"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// idxEnv implements index.Env over the device. Index page I/O blocks the
// firmware cursor (`now`): the mapping must resolve before the command
// can proceed, so metadata misses directly throttle the device — the
// effect Figs. 2 and 5 quantify.
//
// The cursor and the metadata-read counter are atomic because concurrent
// readers (shard read lock) advance the same firmware timeline: every
// assignment in the device is a monotone advance, so CAS-max (AdvanceTo)
// and atomic add preserve the exact single-threaded arithmetic while
// staying race-clean under contention. ReadPage/AppendPage/Invalidate
// restructure device state and only run under the exclusive lock.
type idxEnv struct {
	d         *Device
	now       sim.AtomicTime
	metaReads atomic.Int64
}

var _ index.Env = (*idxEnv)(nil)

func (e *idxEnv) ReadPage(p nand.PPA) ([]byte, error) {
	data, _, done, err := e.d.flash.Read(e.now.Load(), p)
	if err != nil {
		return nil, err
	}
	e.now.AdvanceTo(done)
	e.metaReads.Add(1)
	return data, nil
}

func (e *idxEnv) AppendPage(data []byte) (nand.PPA, error) {
	ppa, err := e.d.nextIndexPage()
	if err != nil {
		return 0, err
	}
	spare := layout.EncodeSpare(layout.KindIndex, 0, 0)
	done, err := e.d.flash.Program(e.now.Load(), ppa, data, spare)
	if err != nil {
		return 0, err
	}
	e.now.AdvanceTo(done)
	e.d.mgr.OnWrite(e.d.flash.BlockOf(ppa), int64(len(data)))
	e.d.idxPageSize[ppa] = int32(len(data))
	return ppa, nil
}

func (e *idxEnv) Invalidate(p nand.PPA) {
	if e.d.ckptPinned[p] {
		// The persisted checkpoint still references this page: defer the
		// invalidation so the page (and its accounting) survives until
		// the next checkpoint supersedes it.
		e.d.deferredInval = append(e.d.deferredInval, p)
		return
	}
	size, ok := e.d.idxPageSize[p]
	if !ok {
		return
	}
	delete(e.d.idxPageSize, p)
	e.d.mgr.OnInvalidate(e.d.flash.BlockOf(p), int64(size))
}

func (e *idxEnv) ChargeCPU(d sim.Duration) { e.now.Advance(d) }

func (e *idxEnv) MetaReads() int64 { return e.metaReads.Load() }

func (e *idxEnv) Now() sim.Time { return e.now.Load() }

// nextIndexPage reserves the next page of the index-zone log, allocating
// (and garbage-collecting, when outside GC) a fresh block as needed.
func (d *Device) nextIndexPage() (nand.PPA, error) {
	geo := d.flash.Config()
	if d.idxBlockOpen && d.idxNextPage >= geo.PagesPerBlock {
		d.idxBlockOpen = false
	}
	if !d.idxBlockOpen {
		if err := d.maybeGC(); err != nil {
			return 0, err
		}
		b, err := d.mgr.Alloc(ftl.ZoneIndex)
		if err != nil {
			return 0, ErrDeviceFull
		}
		d.idxBlock = b
		d.idxNextPage = 0
		d.idxBlockOpen = true
	}
	ppa := d.flash.PPAOf(d.idxBlock, d.idxNextPage)
	d.idxNextPage++
	return ppa, nil
}
