// Package device implements the emulated KVSSD: command processing for
// store/retrieve/delete/exist/iterate over the vendor-style KV interface,
// the log-structured data path with extent packing, the firmware timing
// model, garbage collection for both flash zones, periodic checkpointing
// and crash recovery, and the integration point for the pluggable index
// (RHIK or the multi-level baseline).
//
// Timing model. The device runs on a simulated clock. The firmware is a
// serial timeline (`fw`): per-command CPU and *index* flash accesses block
// it, because the key-to-location mapping must resolve before a command
// can proceed — this is exactly why index residency dominates KVSSD
// performance. Data page programs and reads are scheduled onto NAND die
// resources and overlap freely; a bounded write-buffer ring applies
// backpressure so die backlogs stay realistic. A synchronous host submits
// each command at the previous command's completion; an asynchronous host
// submits back-to-back, letting die-level parallelism through (Fig. 6).
package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/epoch"
	"repro/internal/ftl"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/lsmindex"
	"repro/internal/metrics"
	"repro/internal/mlhash"
	"repro/internal/nand"
	"repro/internal/sim"
)

// IndexKind selects the in-device index scheme.
type IndexKind int

// Index schemes.
const (
	IndexRHIK IndexKind = iota
	IndexMultiLevel
	IndexLSM
)

func (k IndexKind) String() string {
	switch k {
	case IndexRHIK:
		return "rhik"
	case IndexMultiLevel:
		return "mlhash"
	case IndexLSM:
		return "lsm"
	default:
		return fmt.Sprintf("index(%d)", int(k))
	}
}

// Errors returned by device commands.
var (
	ErrNotFound      = errors.New("device: key not found")
	ErrDeviceFull    = errors.New("device: out of space")
	ErrKeyTooLarge   = errors.New("device: key exceeds maximum size")
	ErrValueTooLarge = errors.New("device: value exceeds maximum size")
	ErrClosed        = errors.New("device: closed")
	ErrNoIterator    = errors.New("device: iterate requires an iterator-mode signature scheme")
)

// Config describes an emulated KVSSD.
type Config struct {
	// Capacity is the requested usable capacity in bytes; the NAND
	// geometry is derived from it unless NAND is set explicitly.
	Capacity int64
	// NAND overrides the derived geometry when non-nil.
	NAND *nand.Config

	// Index selects the indexing scheme (RHIK by default).
	Index IndexKind
	// SigScheme configures key signatures (64-bit MurmurHash2 default).
	SigScheme index.SigScheme
	// CacheBudget is the SSD DRAM budget for index pages (10 MB default,
	// matching the paper's Fig. 5 setup).
	CacheBudget int64
	// AnticipatedKeys pre-sizes RHIK's directory (Eq. 2); zero starts
	// minimal and grows by re-configuration.
	AnticipatedKeys int64
	// OccupancyThreshold is RHIK's resize trigger (default 0.80).
	OccupancyThreshold float64
	// HopRange is RHIK's hopscotch neighborhood (default 32).
	HopRange int
	// MLHash tunes the multi-level baseline when Index is
	// IndexMultiLevel. PageSize and CacheBudget are filled from the
	// device config.
	MLHash mlhash.Config

	// CmdCPU is the firmware cost of command handling beyond the index
	// (parsing, allocation, queueing). Default 2 µs.
	CmdCPU sim.Duration
	// AckOverhead is the host-visible command round trip beyond firmware
	// work: NVMe doorbell, DMA setup, completion interrupt. It delays a
	// command's completion but not the firmware, so deep (async) queues
	// hide it while QD1 (sync) pays it per command — the Fig. 6
	// sync/async gap. Default 8 µs.
	AckOverhead sim.Duration
	// HostMBps is the host-interface bandwidth (PCIe link) moving
	// payloads between host and device; transfers serialize on it.
	// Default 3200 MB/s.
	HostMBps int
	// GCLowWater is the free-block count that triggers garbage
	// collection (default 6).
	GCLowWater int
	// WriteBufferPages bounds un-acknowledged page programs in flight
	// (default 4 × dies).
	WriteBufferPages int
	// StripeWidth is the number of blocks a log writer stripes across
	// (default: the die count, one frontier block per die).
	StripeWidth int
	// CheckpointEveryOps runs an automatic checkpoint every N mutating
	// commands (0 disables automatic checkpoints).
	CheckpointEveryOps int64
	// DisableAutoResize stops the device from resizing RHIK when its
	// occupancy threshold is crossed (used by fixed-index experiments).
	DisableAutoResize bool
	// IncrementalResize enables RHIK's lazy re-configuration (the
	// paper's "real-time index scaling" future work) instead of the
	// default stop-the-world migration.
	IncrementalResize bool

	// ValueCacheBudget, when positive, enables the hot-value DRAM tier:
	// a byte-budgeted cache of immutable key→value copies consulted by
	// every read tier before the index, invalidated before any
	// overwriting Store/Delete acknowledges. 0 (default) disables it and
	// keeps the read path byte-identical to the pre-cache device.
	ValueCacheBudget int64
	// CacheAdmission enables TinyLFU admission on the index-page cache
	// (RHIK only; see core.Config.Admission).
	CacheAdmission bool
	// ScanPrefetch groups a prefix scan's record reads by flash page,
	// reading each distinct data page once instead of once per record.
	ScanPrefetch bool
}

func (c *Config) applyDefaults() {
	if c.Capacity == 0 && c.NAND == nil {
		c.Capacity = 1 << 30
	}
	if c.CacheBudget == 0 {
		c.CacheBudget = 10 << 20
	}
	if c.CmdCPU == 0 {
		c.CmdCPU = 2 * sim.Microsecond
	}
	if c.AckOverhead == 0 {
		c.AckOverhead = 8 * sim.Microsecond
	}
	if c.HostMBps == 0 {
		c.HostMBps = 3200
	}
	if c.GCLowWater == 0 {
		c.GCLowWater = 6
	}
}

// pendingPair is a pair buffered in an open (not yet programmed) page,
// kept addressable for read-your-writes.
type pendingPair struct {
	key   []byte
	value []byte
}

// stripeSlot is one member block of a log writer's stripe.
type stripeSlot struct {
	open  bool
	block nand.BlockID
	next  int // next programmable page
}

// logWriter is one log-structured write frontier into the KV zone,
// striped across a set of blocks on different dies so consecutive page
// programs overlap (superpage-style striping — without it, sequential
// fills would serialize on a single die). The device keeps two writers:
// one for host writes, one for GC relocations, so collection never
// re-enters the frontier it is flushing.
type logWriter struct {
	name    string
	slots   []stripeSlot
	cur     int // slot bound to the open page
	builder *layout.PageBuilder
	pageRPs []layout.RP // record pointers of pairs in the open page
	liveLen []int       // accounting size per pair (negative = dead bytes)
}

// Stats aggregates device-level counters.
type Stats struct {
	Stores    int64
	Retrieves int64
	Deletes   int64
	Exists    int64
	Iterates  int64

	BytesWritten int64 // host payload bytes accepted
	BytesRead    int64 // host payload bytes returned

	GCRuns          int64
	GCPagesMoved    int64
	GCBytesMoved    int64
	Checkpoints     int64
	Recoveries      int64
	ResizeHalt      sim.Duration // total queue-halt time spent resizing
	CollisionAborts int64

	// ValueCacheHits/Misses count hot-value tier consultations (both 0
	// when ValueCacheBudget is 0); PrefetchHits counts record reads a
	// prefix scan served from an already-staged page instead of flash.
	ValueCacheHits   int64
	ValueCacheMisses int64
	PrefetchHits     int64
}

// devStats is the live counter set. Retrieve/Exist bump their counters
// under the shard read lock, concurrently with each other, so every
// field is atomic; Stats() snapshots them into the exported plain struct.
type devStats struct {
	stores    atomic.Int64
	retrieves atomic.Int64
	deletes   atomic.Int64
	exists    atomic.Int64
	iterates  atomic.Int64

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64

	gcRuns          atomic.Int64
	gcPagesMoved    atomic.Int64
	gcBytesMoved    atomic.Int64
	checkpoints     atomic.Int64
	recoveries      atomic.Int64
	resizeHalt      atomic.Int64 // sim.Duration ns
	collisionAborts atomic.Int64
	prefetchHits    atomic.Int64
}

func (s *devStats) snapshot() Stats {
	return Stats{
		Stores:          s.stores.Load(),
		Retrieves:       s.retrieves.Load(),
		Deletes:         s.deletes.Load(),
		Exists:          s.exists.Load(),
		Iterates:        s.iterates.Load(),
		BytesWritten:    s.bytesWritten.Load(),
		BytesRead:       s.bytesRead.Load(),
		GCRuns:          s.gcRuns.Load(),
		GCPagesMoved:    s.gcPagesMoved.Load(),
		GCBytesMoved:    s.gcBytesMoved.Load(),
		Checkpoints:     s.checkpoints.Load(),
		Recoveries:      s.recoveries.Load(),
		ResizeHalt:      sim.Duration(s.resizeHalt.Load()),
		CollisionAborts: s.collisionAborts.Load(),
		PrefetchHits:    s.prefetchHits.Load(),
	}
}

// Device is the emulated KVSSD. Mutating commands (Store, Delete,
// Checkpoint, Restart, Close, Iterate) must be externally serialized —
// the sharded front-end (internal/shard) runs them under a per-shard
// write lock. Reads have three tiers:
//
//   - TryRetrieveOptimistic/TryExistOptimistic run with NO lock at all
//     (RHIK only): the probe validates against per-table seqlocks and
//     the atomically-swapped directory generation, an epoch pin keeps
//     retired tables and erased flash buffers from being reused
//     underneath the read, and index.ErrOptimisticRetry /
//     index.ErrNeedExclusive are returned — before any simulated-time
//     charge — when a concurrent mutation interferes or the state is
//     not DRAM-resident.
//   - TryRetrieveShared/TryExistShared run under the caller's SHARED
//     lock (the legacy tier, still used by indexes without an
//     optimistic surface), refusing with ErrNeedExclusive whenever the
//     operation would have to mutate index structure.
//   - Retrieve/RetrieveAppend/Exist re-execute under the caller's
//     exclusive lock.
//
// Observability accessors (Stats, FlashStats, latency histograms)
// snapshot atomics and are safe alongside concurrent readers.
type Device struct {
	cfg    Config
	clock  *sim.Clock
	flash  *nand.Flash
	mgr    *ftl.Manager
	idx    index.Index
	env    *idxEnv
	scheme index.SigScheme

	hostLink *sim.Resource // host-interface DMA engine

	fg  logWriter // foreground KV log
	gcw logWriter // GC relocation KV log

	idxBlock     nand.BlockID // index zone log head
	idxBlockOpen bool
	idxNextPage  int
	idxPageSize  map[nand.PPA]int32 // live index pages -> byte size

	pending map[layout.RP]pendingPair // buffered pairs across both writers

	inflight []sim.Time // write-buffer ring of outstanding program completions
	inGC     bool

	seq       uint64 // global pair sequence number
	ckptSeq   uint64 // sequence covered by the last checkpoint
	ckptID    uint64 // monotone checkpoint generation
	ckptPages []nand.PPA
	// ckptPinned holds index pages referenced by the persisted
	// checkpoint: they must not be invalidated, relocated, or erased
	// until the next checkpoint, or recovery would follow dangling
	// references into reused flash. Invalidations of pinned pages are
	// deferred to deferredInval and applied at the next checkpoint.
	ckptPinned    map[nand.PPA]bool
	deferredInval []nand.PPA
	mutsSince     int64       // mutating ops since last checkpoint
	closed        atomic.Bool // lock-free readers check it without the shard lock

	// reclaim defers reuse of reader-reachable objects (pooled record
	// tables, erased flash buffers) past every pinned optimistic reader.
	// Created once in Open; survives Restart so pins held across a
	// simulated power cycle stay valid.
	reclaim *epoch.Domain
	// optIdx caches the index downcast for the lock-free read tier; nil
	// when the configured index has no optimistic surface.
	optIdx atomic.Pointer[core.RHIK]
	// mutSeq is the device structure-mutation sequence: odd while a
	// restructuring that can yank flash pages out from under a reader
	// (GC erase, Restart) is in flight. Optimistic readers snapshot it
	// up front and convert any mid-read flash error into a retry when it
	// moved, so transient ErrNotProgrammed during an overlapping erase
	// never surfaces to the host.
	mutSeq   atomic.Uint64
	mutDepth int // re-entrancy depth for begin/endStructureMutation

	// vcache is the hot-value DRAM tier (nil when ValueCacheBudget is 0).
	// Lock-free lookups from every read tier; inserts and invalidations
	// serialize on its internal side lock. Flushed on Restart because
	// recovery can roll back the unflushed write tail.
	vcache *dram.ValueCache

	// wepoch is the global write epoch (MVCC). Records are stamped
	// wepoch+1 while a mutation batch is applied; AdvanceEpoch — called
	// by the front-end once per batch, under the exclusive lock — folds
	// the open batch in. A snapshot captured between batches therefore
	// observes exactly the records with epoch <= wepoch.
	wepoch atomic.Uint64
	// snapMu guards snaps: Release may arrive from any goroutine while
	// GC (under the exclusive lock) reads the set for victim exclusion.
	snapMu sync.Mutex
	snaps  map[*Snapshot]struct{}

	stats      devStats
	latStore   metrics.ConcurrentHistogram // per-op simulated latency (ns)
	latGet     metrics.ConcurrentHistogram
	metaPerOp  metrics.ConcurrentHistogram // flash reads per index operation
	metaPerGet metrics.ConcurrentHistogram // flash reads per retrieve lookup only
	maxValue   int
}

// Open builds a fresh device (all flash erased).
func Open(cfg Config) (*Device, error) {
	cfg.applyDefaults()
	var ncfg nand.Config
	if cfg.NAND != nil {
		ncfg = *cfg.NAND
	} else {
		ncfg = nand.DefaultConfig(cfg.Capacity)
	}
	if err := ncfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SigScheme.Bits == 0 {
		cfg.SigScheme = index.DefaultSigScheme
	}
	if err := cfg.SigScheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.WriteBufferPages == 0 {
		cfg.WriteBufferPages = 4 * ncfg.Dies()
	}
	if cfg.StripeWidth == 0 {
		cfg.StripeWidth = ncfg.Dies()
	}

	clock := sim.NewClock()
	flash := nand.New(ncfg, clock)
	d := &Device{
		cfg:         cfg,
		clock:       clock,
		flash:       flash,
		mgr:         ftl.NewManager(flash),
		scheme:      cfg.SigScheme,
		idxPageSize: make(map[nand.PPA]int32),
		pending:     make(map[layout.RP]pendingPair),
		ckptPinned:  make(map[nand.PPA]bool),
		reclaim:     epoch.NewDomain(),
		snaps:       make(map[*Snapshot]struct{}),
	}
	d.env = &idxEnv{d: d}
	if cfg.ValueCacheBudget > 0 {
		d.vcache = dram.NewValueCache(cfg.ValueCacheBudget)
	}
	d.hostLink = sim.NewResource("hostlink")
	d.fg = d.newLogWriter("fg")
	d.gcw = d.newLogWriter("gc")

	// Largest storable value: an extent must fit within one erase block.
	d.maxValue = layout.HeadCapacity(ncfg.PageSize, 0) + (ncfg.PagesPerBlock-1)*ncfg.PageSize

	idx, err := d.buildIndex()
	if err != nil {
		return nil, err
	}
	d.idx = idx
	if r, ok := idx.(*core.RHIK); ok {
		d.optIdx.Store(r)
	}
	return d, nil
}

func (d *Device) buildIndex() (index.Index, error) {
	pageSize := d.flash.Config().PageSize
	switch d.cfg.Index {
	case IndexRHIK:
		return core.New(core.Config{
			PageSize:           pageSize,
			HopRange:           d.cfg.HopRange,
			SigScheme:          d.scheme,
			AnticipatedKeys:    d.cfg.AnticipatedKeys,
			OccupancyThreshold: d.cfg.OccupancyThreshold,
			CacheBudget:        d.cfg.CacheBudget,
			Admission:          d.cfg.CacheAdmission,
			IncrementalResize:  d.cfg.IncrementalResize,
			Reclaim:            d.reclaim,
		}, d.env)
	case IndexMultiLevel:
		mcfg := d.cfg.MLHash
		mcfg.PageSize = pageSize
		if mcfg.CacheBudget == 0 {
			mcfg.CacheBudget = d.cfg.CacheBudget
		}
		return mlhash.New(mcfg, d.env)
	case IndexLSM:
		return lsmindex.New(lsmindex.Config{
			PageSize:    pageSize,
			CacheBudget: d.cfg.CacheBudget,
		}, d.env)
	default:
		return nil, fmt.Errorf("device: unknown index kind %v", d.cfg.Index)
	}
}

// Config returns the device configuration (post-defaults).
func (d *Device) Config() Config { return d.cfg }

// Geometry returns the NAND geometry in use.
func (d *Device) Geometry() nand.Config { return d.flash.Config() }

// Index exposes the underlying index for inspection.
func (d *Device) Index() index.Index { return d.idx }

// Scheme returns the signature scheme in use.
func (d *Device) Scheme() index.SigScheme { return d.scheme }

// Now reports the firmware timeline position.
func (d *Device) Now() sim.Time { return d.env.now.Load() }

// Drain returns the time at which every in-flight operation (including
// scheduled die work) has completed.
func (d *Device) Drain() sim.Time {
	t := d.env.now.Load()
	if bt := d.flash.BusyUntil(); bt > t {
		t = bt
	}
	return t
}

// Stats returns a snapshot of device counters.
func (d *Device) Stats() Stats {
	s := d.stats.snapshot()
	if d.vcache != nil {
		vs := d.vcache.Stats()
		s.ValueCacheHits = vs.Hits
		s.ValueCacheMisses = vs.Misses
	}
	return s
}

// ValueCacheStats snapshots the hot-value tier's counters (zero when the
// tier is disabled).
func (d *Device) ValueCacheStats() dram.ValueStats {
	if d.vcache == nil {
		return dram.ValueStats{}
	}
	return d.vcache.Stats()
}

// FlashStats returns NAND operation counters.
func (d *Device) FlashStats() nand.Stats { return d.flash.Stats() }

// FTLStats returns block pool accounting.
func (d *Device) FTLStats() ftl.Stats { return d.mgr.Stats() }

// IndexStats returns the index's observability snapshot.
func (d *Device) IndexStats() index.Stats {
	if sp, ok := d.idx.(index.StatsProvider); ok {
		return sp.IndexStats()
	}
	return index.Stats{Records: d.idx.Len()}
}

// ResizeEvents returns RHIK's re-configuration history (nil for other
// indexes).
func (d *Device) ResizeEvents() []index.ResizeEvent {
	if r, ok := d.idx.(index.Resizer); ok {
		return r.ResizeEvents()
	}
	return nil
}

// StoreLatency snapshots the per-store latency histogram (simulated ns).
func (d *Device) StoreLatency() *metrics.Histogram {
	h := d.latStore.Snapshot()
	return &h
}

// RetrieveLatency snapshots the per-retrieve latency histogram.
func (d *Device) RetrieveLatency() *metrics.Histogram {
	h := d.latGet.Snapshot()
	return &h
}

// MetaReadsPerOp snapshots the flash-reads-per-index-operation histogram
// (Fig. 5b).
func (d *Device) MetaReadsPerOp() *metrics.Histogram {
	h := d.metaPerOp.Snapshot()
	return &h
}

// MetaReadsPerGet snapshots the flash-reads-per-retrieve histogram: only
// get lookups contribute, so its mean is the flash-reads-per-GET figure
// RHIK bounds at one (the shootout's headline metric).
func (d *Device) MetaReadsPerGet() *metrics.Histogram {
	h := d.metaPerGet.Snapshot()
	return &h
}

// ResetOpStats clears per-op histograms and cache counters between
// experiment phases without touching stored data.
func (d *Device) ResetOpStats() {
	d.latStore.Reset()
	d.latGet.Reset()
	d.metaPerOp.Reset()
	d.metaPerGet.Reset()
	type cacheResetter interface{ ResetCacheStats() }
	if cr, ok := d.idx.(cacheResetter); ok {
		cr.ResetCacheStats()
	}
	if d.vcache != nil {
		d.vcache.ResetStats()
	}
	d.stats.prefetchHits.Store(0)
}

// Close flushes buffered data and the index, then marks the device
// unusable.
func (d *Device) Close() error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.Checkpoint(); err != nil {
		return err
	}
	d.closed.Store(true)
	return nil
}

// beginStructureMutation marks the start of a restructuring that can
// make flash pages transiently unreadable (GC erase, Restart). The
// sequence is odd while one is in flight; optimistic readers that
// observe a moved or odd sequence convert flash errors into retries.
// Re-entrant (collect can run inside Restart's replay via flushOpen),
// so only the outermost bracket moves the sequence. Writer-side.
func (d *Device) beginStructureMutation() {
	if d.mutDepth == 0 {
		d.mutSeq.Add(1)
	}
	d.mutDepth++
}

// endStructureMutation closes a beginStructureMutation bracket.
func (d *Device) endStructureMutation() {
	d.mutDepth--
	if d.mutDepth == 0 {
		d.mutSeq.Add(1)
	}
}

// collectRetired frees retired objects (pooled record tables, erased
// flash buffers) whose retirement epoch precedes every pinned reader.
// Writer-side: called from the exclusive command paths, so it never
// races Retire.
func (d *Device) collectRetired() {
	if d.reclaim.Pending() > 0 {
		d.reclaim.Collect()
	}
}

// AdvanceEpoch folds the open mutation batch into the write epoch.
// The front-end calls it once per batch (a group commit, an Apply
// sub-batch, or a single direct Store/Delete) under the exclusive lock;
// records applied since the previous call carry the new epoch value.
func (d *Device) AdvanceEpoch() { d.wepoch.Add(1) }

// WriteEpoch reports the current write epoch: the visibility bound a
// snapshot opened now would pin.
func (d *Device) WriteEpoch() uint64 { return d.wepoch.Load() }

// SupportsOptimisticReads reports whether the configured index exposes
// the lock-free read tier (RHIK does; the baselines fall back to the
// shared-lock tier).
func (d *Device) SupportsOptimisticReads() bool { return d.optIdx.Load() != nil }

// ReclaimStats snapshots the epoch-reclamation counters.
func (d *Device) ReclaimStats() epoch.Stats { return d.reclaim.Stats() }

// Flash exposes the NAND array for tests (fault injection) and tools.
func (d *Device) Flash() *nand.Flash { return d.flash }
