package device

import (
	"bytes"
	"sort"

	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/sim"
)

// IterEntry is one key (and optionally its value) produced by Iterate.
type IterEntry struct {
	Key   []byte
	Value []byte
}

// Iterate enumerates keys sharing the given prefix (§VI "Integrated
// Iterator Support"). It requires an iterator-mode signature scheme
// (SigScheme.PrefixLen > 0) and an index implementing
// index.PrefixScanner. Under RHIK, prefix-sharing keys collapse into one
// directory bucket per directory generation, so the scan touches a
// single record table plus one pair read per candidate; other indexes
// (LSM runs, the multi-level cascade) enumerate at their own — much
// higher — flash cost, which is exactly the asymmetry the cross-engine
// shootout measures. Candidates whose keys do not actually share the
// prefix (hash collisions) are filtered by comparing the stored key.
func (d *Device) Iterate(submitAt sim.Time, prefix []byte, withValues bool) ([]IterEntry, sim.Time, error) {
	if d.closed.Load() {
		return nil, d.env.now.Load(), ErrClosed
	}
	if d.scheme.PrefixLen == 0 {
		return nil, d.env.now.Load(), ErrNoIterator
	}
	sc, ok := d.idx.(index.PrefixScanner)
	if !ok {
		return nil, d.env.now.Load(), ErrNoIterator
	}
	d.env.now.AdvanceTo(submitAt)
	d.env.ChargeCPU(d.cfg.CmdCPU)

	// All keys with this prefix share the signature's low 32 bits.
	rps, err := sc.PrefixRecords(d.scheme.PrefixLow(prefix))
	if err != nil {
		return nil, d.env.now.Load(), err
	}

	var out []IterEntry
	for _, rp := range rps {
		hdr, key, value, done, err := d.readPair(layout.RP(rp), withValues, true)
		if err != nil {
			return nil, done, err
		}
		if hdr.Tombstone() || !bytes.HasPrefix(key, prefix) {
			continue
		}
		e := IterEntry{Key: append([]byte(nil), key...)}
		if withValues {
			e.Value = append([]byte(nil), value...)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	d.stats.iterates.Add(1)
	return out, d.env.now.Load(), nil
}
