package device

import (
	"bytes"
	"sort"

	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// IterEntry is one key (and optionally its value) produced by Iterate.
type IterEntry struct {
	Key   []byte
	Value []byte
}

// Iterate enumerates keys sharing the given prefix (§VI "Integrated
// Iterator Support"). It requires an iterator-mode signature scheme
// (SigScheme.PrefixLen > 0) and an index implementing
// index.PrefixScanner. Under RHIK, prefix-sharing keys collapse into one
// directory bucket per directory generation, so the scan touches a
// single record table plus one pair read per candidate; other indexes
// (LSM runs, the multi-level cascade) enumerate at their own — much
// higher — flash cost, which is exactly the asymmetry the cross-engine
// shootout measures. Candidates whose keys do not actually share the
// prefix (hash collisions) are filtered by comparing the stored key.
func (d *Device) Iterate(submitAt sim.Time, prefix []byte, withValues bool) ([]IterEntry, sim.Time, error) {
	if d.closed.Load() {
		return nil, d.env.now.Load(), ErrClosed
	}
	if d.scheme.PrefixLen == 0 {
		return nil, d.env.now.Load(), ErrNoIterator
	}
	sc, ok := d.idx.(index.PrefixScanner)
	if !ok {
		return nil, d.env.now.Load(), ErrNoIterator
	}
	d.env.now.AdvanceTo(submitAt)
	d.env.ChargeCPU(d.cfg.CmdCPU)

	// All keys with this prefix share the signature's low 32 bits.
	rps, err := sc.PrefixRecords(d.scheme.PrefixLow(prefix))
	if err != nil {
		return nil, d.env.now.Load(), err
	}

	var out []IterEntry
	if d.cfg.ScanPrefetch {
		out, err = d.iterateStaged(rps, prefix, withValues)
		if err != nil {
			return nil, d.env.now.Load(), err
		}
	} else {
		for _, rp := range rps {
			hdr, key, value, done, err := d.readPair(layout.RP(rp), withValues, true)
			if err != nil {
				return nil, done, err
			}
			if hdr.Tombstone() || !bytes.HasPrefix(key, prefix) {
				continue
			}
			e := IterEntry{Key: append([]byte(nil), key...)}
			if withValues {
				e.Value = append([]byte(nil), value...)
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	d.stats.iterates.Add(1)
	return out, d.env.now.Load(), nil
}

// iterateStaged is Iterate's candidate sweep with prefix-group
// prefetch: an iterator-mode signature group's records cluster on a few
// log pages, so each distinct head page is read from flash once and
// every sibling record on it decodes from the staged buffer. Records
// still in an open page buffer come from the pending map, as in
// readPair. Candidate order (and therefore the timeline) stays exactly
// the enumeration order — only duplicate page reads disappear, counted
// in PrefetchHits.
func (d *Device) iterateStaged(rps []uint64, prefix []byte, withValues bool) ([]IterEntry, error) {
	var out []IterEntry
	staged := make(map[nand.PPA][]byte, len(rps))
	for _, rp0 := range rps {
		rp := layout.RP(rp0)
		var hdr layout.PairHeader
		var key, value []byte
		if p, ok := d.pending[rp]; ok {
			hdr = layout.PairHeader{KeyLen: len(p.key), ValueLen: len(p.value)}
			key, value = p.key, p.value
		} else {
			ppa := nand.PPA(rp.Page())
			data, ok := staged[ppa]
			if !ok {
				var err error
				var done sim.Time
				data, _, done, err = d.flash.Read(d.env.now.Load(), ppa)
				if err != nil {
					return nil, err
				}
				d.env.now.AdvanceTo(done)
				staged[ppa] = data
			} else {
				d.stats.prefetchHits.Add(1)
			}
			info, _, err := layout.SigInfoAt(data, rp.Slot())
			if err != nil {
				return nil, err
			}
			hdr, key, value, err = layout.DecodePairAt(data, int(info.Offset))
			if err != nil {
				return nil, err
			}
			if withValues && hdr.ValueLen > len(value) {
				// Extent: continuations follow the head page in the same
				// block (not staged — extents never share pages).
				full := make([]byte, 0, hdr.ValueLen)
				full = append(full, value...)
				for i := 1; len(full) < hdr.ValueLen; i++ {
					cont, _, cd, err := d.flash.Read(d.env.now.Load(), ppa+nand.PPA(i))
					if err != nil {
						return nil, err
					}
					d.env.now.AdvanceTo(cd)
					full = append(full, cont...)
				}
				if len(full) > hdr.ValueLen {
					full = full[:hdr.ValueLen]
				}
				value = full
			}
		}
		if hdr.Tombstone() || !bytes.HasPrefix(key, prefix) {
			continue
		}
		e := IterEntry{Key: append([]byte(nil), key...)}
		if withValues {
			e.Value = append([]byte(nil), value...)
		}
		out = append(out, e)
	}
	return out, nil
}
