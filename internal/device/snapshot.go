package device

import (
	"bytes"
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Snapshot errors.
var (
	// ErrNoSnapshot: the configured index cannot enumerate its records
	// (only RHIK implements index.RecordEnumerator today).
	ErrNoSnapshot = errors.New("device: index does not support snapshots")
	// ErrSnapshotInvalid: a power cycle (Restart) occurred after the
	// snapshot was opened; its frozen view may reference reclaimed flash.
	ErrSnapshotInvalid = errors.New("device: snapshot invalidated by restart")
	// ErrSnapshotReleased: the snapshot was already released.
	ErrSnapshotReleased = errors.New("device: snapshot released")
	// ErrSnapshotBusy: the epoch-pin table is full; the snapshot cannot
	// be protected against reclamation right now.
	ErrSnapshotBusy = errors.New("device: too many pinned readers, retry")
)

// SnapRecord is one frozen (signature, record pointer) binding in a
// snapshot's view, sorted by (Lo, Hi).
type SnapRecord struct {
	Lo, Hi uint64
	RP     uint64
}

// Snapshot is a consistent point-in-time read view of the device (MVCC).
// It is captured under the device's exclusive serialization but READ
// with no lock at all: the frozen view is immutable, the flash blocks
// it references are excluded from GC victim selection while the
// snapshot is registered, and a single lifetime epoch pin keeps every
// buffer retired after capture from being reused underneath a reader.
//
// Point reads first probe the LIVE index optimistically: a validated
// hit whose record epoch is <= the snapshot epoch is by construction
// the newest version at the snapshot instant (epochs only grow), so it
// can be served without touching the frozen view. Every other outcome —
// miss, newer epoch, raced validation, non-resident state — falls back
// to a binary search of the frozen view, which is always correct.
type Snapshot struct {
	d     *Device
	epoch uint64 // write-epoch visibility bound E
	pin   epoch.Pin
	view  []SnapRecord // sorted by (Lo, Hi); immutable after capture
	// blocks is the erase-block footprint of the view; GC reads it (under
	// snapMu) to exclude these from victim selection.
	blocks map[nand.BlockID]struct{}

	invalid  atomic.Bool // set by Restart: frozen view dangles
	released atomic.Bool
	reads    atomic.Int64 // point reads served (either path)
	fastHits atomic.Int64 // point reads served by the live-index fast path
}

// OpenSnapshot captures a consistent view of the device. It must run
// under the same exclusive serialization as mutating commands (the
// shard front-end holds the write lock): it flushes open page buffers
// so every record is on programmed flash, enumerates the index, and
// pins the result against GC and buffer reuse. The returned snapshot
// is then read lock-free, concurrently with subsequent writers.
func (d *Device) OpenSnapshot() (*Snapshot, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	en, ok := d.idx.(index.RecordEnumerator)
	if !ok {
		return nil, ErrNoSnapshot
	}
	// Every frozen record pointer must reference programmed flash — a
	// volatile open-page buffer would not survive the capture.
	if err := d.FlushData(); err != nil {
		return nil, err
	}
	pin, pinned := d.reclaim.TryPin()
	if !pinned {
		return nil, ErrSnapshotBusy
	}
	s := &Snapshot{d: d, pin: pin, blocks: make(map[nand.BlockID]struct{})}
	err := en.RangeRecords(func(lo, hi, rp uint64) bool {
		s.view = append(s.view, SnapRecord{Lo: lo, Hi: hi, RP: rp})
		s.blocks[d.flash.BlockOf(nand.PPA(layout.RP(rp).Page()))] = struct{}{}
		return true
	})
	if err != nil {
		d.reclaim.Unpin(pin)
		return nil, err
	}
	sort.Slice(s.view, func(i, j int) bool {
		if s.view[i].Lo != s.view[j].Lo {
			return s.view[i].Lo < s.view[j].Lo
		}
		return s.view[i].Hi < s.view[j].Hi
	})
	// E is read while the exclusive lock still fences out writers, so the
	// enumerated records are exactly those with epoch <= E.
	s.epoch = d.wepoch.Load()
	d.snapMu.Lock()
	d.snaps[s] = struct{}{}
	d.snapMu.Unlock()
	return s, nil
}

// invalidateSnapshots marks every open snapshot dead and drops their
// pins and GC protection. Called by Restart under the exclusive lock: a
// power cycle's rebuild may reclaim the flash their views reference.
func (d *Device) invalidateSnapshots() {
	d.snapMu.Lock()
	for s := range d.snaps {
		s.invalid.Store(true)
		if s.released.CompareAndSwap(false, true) {
			d.reclaim.Unpin(s.pin)
		}
	}
	d.snaps = make(map[*Snapshot]struct{})
	d.snapMu.Unlock()
}

// Release drops the snapshot's GC protection and epoch pin. Idempotent;
// safe from any goroutine. The snapshot must not be read afterwards.
func (s *Snapshot) Release() {
	if !s.released.CompareAndSwap(false, true) {
		return
	}
	d := s.d
	d.snapMu.Lock()
	delete(d.snaps, s)
	d.snapMu.Unlock()
	d.reclaim.Unpin(s.pin)
}

// Epoch reports the snapshot's visibility bound.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Records reports the number of frozen records in the view.
func (s *Snapshot) Records() int { return len(s.view) }

// Reads reports point reads served through this snapshot.
func (s *Snapshot) Reads() int64 { return s.reads.Load() }

// FastHits reports how many of those were served by the live-index
// optimistic fast path rather than the frozen view.
func (s *Snapshot) FastHits() int64 { return s.fastHits.Load() }

// Valid reports whether the snapshot is still readable (not released,
// not invalidated by a restart).
func (s *Snapshot) Valid() bool { return !s.released.Load() && !s.invalid.Load() }

// errSnapFallback routes a fast-path attempt to the frozen view. Never
// escapes this file.
var errSnapFallback = errors.New("device: snapshot fast path fell back")

// readPairEpoch is readPairOptimistic plus the record's write epoch,
// recovered from the page spare's base and the sig entry's delta. Used
// by both snapshot read paths; the caller guarantees the page is
// programmed (frozen view) or pre-checked readable (fast path).
func (d *Device) readPairEpoch(at sim.Time, rp layout.RP, withValue bool) (hdr layout.PairHeader, key, value []byte, recEpoch uint64, done sim.Time, err error) {
	ppa := nand.PPA(rp.Page())
	data, spare, done, err := d.flash.Read(at, ppa)
	if err != nil {
		return hdr, nil, nil, 0, at, err
	}
	info, _, err := layout.SigInfoAt(data, rp.Slot())
	if err != nil {
		return hdr, nil, nil, 0, done, err
	}
	recEpoch = layout.DataSpareEpoch(spare) + uint64(info.EpochDelta)
	hdr, key, value, err = layout.DecodePairAt(data, int(info.Offset))
	if err != nil {
		return hdr, nil, nil, 0, done, err
	}
	if withValue && hdr.ValueLen > len(value) {
		full := make([]byte, 0, hdr.ValueLen)
		full = append(full, value...)
		for i := 1; len(full) < hdr.ValueLen; i++ {
			cont, _, cd, err := d.flash.Read(done, ppa+nand.PPA(i))
			if err != nil {
				return hdr, nil, nil, 0, done, err
			}
			done = cd
			full = append(full, cont...)
		}
		if len(full) > hdr.ValueLen {
			full = full[:hdr.ValueLen]
		}
		value = full
	}
	return hdr, key, value, recEpoch, done, nil
}

// Get reads key's value as of the snapshot instant, with no lock. The
// value is appended to dst. Returns ErrNotFound when the key had no
// live value at the snapshot epoch.
func (s *Snapshot) Get(submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	d := s.d
	// Invalid before released: a restart both invalidates and force-
	// releases (to drop the epoch pin), and the restart is the cause a
	// caller can act on.
	if s.invalid.Load() {
		return dst, d.env.now.Load(), ErrSnapshotInvalid
	}
	if s.released.Load() {
		return dst, d.env.now.Load(), ErrSnapshotReleased
	}
	if d.closed.Load() {
		return dst, d.env.now.Load(), ErrClosed
	}
	sig := d.scheme.Compute(key)
	v, done, err := s.tryFastGet(sig, submitAt, key, dst)
	if err != errSnapFallback {
		if err == nil {
			s.fastHits.Add(1)
			s.reads.Add(1)
		}
		return v, done, err
	}
	return s.frozenGet(sig, submitAt, key, dst)
}

// tryFastGet probes the LIVE index optimistically. It can only serve a
// validated hit whose record epoch is <= the snapshot bound: epochs are
// monotone, so that record is simultaneously the newest overall and
// unchanged since the capture — i.e. the correct version at E. Every
// other outcome (miss, newer record, raced validation, non-resident
// bucket, volatile page) returns errSnapFallback; the frozen view then
// answers correctly. A failed fast path is therefore a performance
// matter only, never a correctness one.
func (s *Snapshot) tryFastGet(sig index.Sig, submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	d := s.d
	r := d.optIdx.Load()
	if r == nil {
		return dst, 0, errSnapFallback
	}
	m1 := d.mutSeq.Load()
	if m1&1 != 0 {
		return dst, 0, errSnapFallback
	}
	probe, st := r.PeekOptimistic(sig)
	if st != index.OptOK || !probe.Found {
		return dst, 0, errSnapFallback
	}
	if !d.flash.PageReadable(nand.PPA(layout.RP(probe.RP).Page())) {
		return dst, 0, errSnapFallback
	}
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	d.env.ChargeCPU(r.OptimisticLookupCost())
	hdr, storedKey, value, recEpoch, done, err := d.readPairEpoch(d.env.now.Load(), layout.RP(probe.RP), true)
	if err != nil {
		return dst, 0, errSnapFallback
	}
	if recEpoch > s.epoch || hdr.Tombstone() || !bytes.Equal(storedKey, key) {
		// Newer than the snapshot, or a signature collision — the frozen
		// view holds the authoritative answer.
		return dst, 0, errSnapFallback
	}
	if now := d.env.now.Load(); done < now {
		done = now
	}
	// Linearization point: the epoch comparison above is only meaningful
	// if the probed binding survived every dependent flash access intact.
	if !r.RevalidateOptimistic(probe) || d.mutSeq.Load() != m1 {
		return dst, 0, errSnapFallback
	}
	r.CommitOptimistic(probe)
	done = d.hostXfer(done, len(value)).Add(d.cfg.AckOverhead)
	return append(dst, value...), done, nil
}

// frozenGet serves a point read from the immutable captured view: a
// binary search over the sorted (Lo, Hi) records, then one lock-free
// pair read from pinned flash. No epoch check is needed — the view IS
// the state at E. The trailing invalid check makes the read safe
// against a concurrent Restart: if it still reads false, the pins were
// still held throughout, so every byte read was stable.
func (s *Snapshot) frozenGet(sig index.Sig, submitAt sim.Time, key, dst []byte) ([]byte, sim.Time, error) {
	d := s.d
	arrive := d.hostXfer(submitAt, len(key))
	d.env.now.AdvanceTo(arrive)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	i := sort.Search(len(s.view), func(i int) bool {
		if s.view[i].Lo != sig.Lo {
			return s.view[i].Lo > sig.Lo
		}
		return s.view[i].Hi >= sig.Hi
	})
	if i >= len(s.view) || s.view[i].Lo != sig.Lo || s.view[i].Hi != sig.Hi {
		if s.invalid.Load() {
			return dst, d.env.now.Load(), ErrSnapshotInvalid
		}
		s.reads.Add(1)
		return dst, d.env.now.Load(), ErrNotFound
	}
	hdr, storedKey, value, _, done, err := d.readPairEpoch(d.env.now.Load(), layout.RP(s.view[i].RP), true)
	if err != nil {
		if s.invalid.Load() {
			return dst, d.env.now.Load(), ErrSnapshotInvalid
		}
		return dst, d.env.now.Load(), err
	}
	if s.invalid.Load() {
		return dst, d.env.now.Load(), ErrSnapshotInvalid
	}
	if now := d.env.now.Load(); done < now {
		done = now
	}
	if hdr.Tombstone() || !bytes.Equal(storedKey, key) {
		s.reads.Add(1)
		return dst, done, ErrNotFound
	}
	done = d.hostXfer(done, len(value)).Add(d.cfg.AckOverhead)
	s.reads.Add(1)
	return append(dst, value...), done, nil
}

// Scan enumerates the snapshot's records whose keys share prefix (nil
// matches everything), sorted by key, with no lock. Unlike the live
// Iterate it requires no iterator-mode signature scheme — the frozen
// view already holds every record — and it never blocks writers. The
// result is a deep copy: valid after Release.
func (s *Snapshot) Scan(submitAt sim.Time, prefix []byte, withValues bool) ([]IterEntry, sim.Time, error) {
	d := s.d
	// Invalid before released; see Get.
	if s.invalid.Load() {
		return nil, d.env.now.Load(), ErrSnapshotInvalid
	}
	if s.released.Load() {
		return nil, d.env.now.Load(), ErrSnapshotReleased
	}
	if d.closed.Load() {
		return nil, d.env.now.Load(), ErrClosed
	}
	d.env.now.AdvanceTo(submitAt)
	d.env.ChargeCPU(d.cfg.CmdCPU)
	at := d.env.now.Load()
	var out []IterEntry
	for _, rec := range s.view {
		hdr, key, value, _, done, err := d.readPairEpoch(at, layout.RP(rec.RP), withValues)
		if err != nil {
			if s.invalid.Load() {
				return nil, d.env.now.Load(), ErrSnapshotInvalid
			}
			return nil, d.env.now.Load(), err
		}
		at = done
		if hdr.Tombstone() || !bytes.HasPrefix(key, prefix) {
			continue
		}
		e := IterEntry{Key: append([]byte(nil), key...)}
		if withValues {
			e.Value = append([]byte(nil), value...)
		}
		out = append(out, e)
	}
	if s.invalid.Load() {
		return nil, d.env.now.Load(), ErrSnapshotInvalid
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	d.env.now.AdvanceTo(at)
	return out, d.env.now.Load(), nil
}
