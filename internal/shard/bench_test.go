package shard

import (
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/workload"
)

// benchSet builds a single-shard set pre-populated with keys whose index
// buckets are all DRAM-resident, so every benchmarked get is a cache
// hit. AnticipatedKeys pre-sizes the directory to keep re-configuration
// out of the measurement.
func benchSet(tb testing.TB, keys int, mutate ...func(*device.Config)) (*Set, [][]byte) {
	tb.Helper()
	cfg := device.Config{
		Capacity:        256 << 20,
		AnticipatedKeys: int64(4 * keys),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	set, err := New(1, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ks := make([][]byte, keys)
	for i := range ks {
		ks[i] = workload.KeyBytes(uint64(i))
		if err := set.Store(ks[i], workload.ValuePayload(uint64(i), 100)); err != nil {
			tb.Fatal(err)
		}
	}
	// Flush the open write page: a pair still pending there is invisible
	// to the lock-free read path and would force exclusive fallbacks into
	// the measurement.
	if err := set.Checkpoint(); err != nil {
		tb.Fatal(err)
	}
	// Touch every key once so any bucket evicted during population is
	// re-resident before measurement.
	for _, k := range ks {
		if _, err := set.Retrieve(k); err != nil {
			tb.Fatal(err)
		}
	}
	return set, ks
}

// TestOptimisticGetZeroAlloc pins the allocation claim across the read
// tiers: a DRAM-resident get with a reused value buffer allocates
// nothing, whether it flows lock-free (the default), through the legacy
// RWMutex tier, or — with the hot-value tier on — straight out of the
// value cache without touching the index at all.
func TestOptimisticGetZeroAlloc(t *testing.T) {
	for _, mode := range []string{"optimistic", "rwmutex", "valuecache"} {
		t.Run(mode, func(t *testing.T) {
			var mutate []func(*device.Config)
			if mode == "valuecache" {
				mutate = append(mutate, func(c *device.Config) { c.ValueCacheBudget = 1 << 20 })
			}
			set, ks := benchSet(t, 256, mutate...)
			defer set.Close()
			if mode == "rwmutex" {
				set.shards[0].opt = false
			}
			dst := make([]byte, 0, 256)
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				v, err := set.RetrieveAppend(dst[:0], ks[i%len(ks)])
				if err != nil {
					t.Fatal(err)
				}
				dst = v
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s cache-hit get allocates %.1f times per op, want 0", mode, allocs)
			}
			st := set.Stats()
			switch mode {
			case "optimistic":
				if st.FallbackExclusive > 0 || st.OptimisticReads == 0 {
					t.Fatalf("optimistic=%d fallbacks=%d: not measuring the lock-free path",
						st.OptimisticReads, st.FallbackExclusive)
				}
			case "rwmutex":
				if st.LockUpgrades > 0 || st.SharedReads == 0 {
					t.Fatalf("shared=%d upgrades=%d: not measuring the RWMutex path",
						st.SharedReads, st.LockUpgrades)
				}
			case "valuecache":
				if st.Dev.ValueCacheHits == 0 || st.FallbackExclusive > 0 {
					t.Fatalf("vhits=%d fallbacks=%d: not measuring the value-cache hit path",
						st.Dev.ValueCacheHits, st.FallbackExclusive)
				}
			}
		})
	}
}

// BenchmarkConcurrentGet measures cache-hit GET throughput with 8
// goroutines against ONE shard — the tentpole scenario. Three modes:
//
//   - optimistic: the lock-free seqlock read path (this PR). Expected:
//     0 allocs/op, no shard-level lock acquired.
//   - exclusive: every read forced through the write lock via
//     ForceExclusiveReads — the same front-end minus reader concurrency.
//     On a multi-core host this is where the lock gap shows up as
//     wall-clock; on a single-core CI box the two differ only by lock
//     overhead, since timeslicing admits no parallel speedup.
//   - queued: reads funneled through ONE worker goroutine over a
//     channel — the pre-read-pool serving architecture, where a shard's
//     worker executed every command including reads. The lock-free path
//     must beat this by ≥2×: that per-op channel handoff is exactly
//     what the per-shard read pools delete.
func BenchmarkConcurrentGet(b *testing.B) {
	const (
		goroutines = 8
		keys       = 1024
	)
	b.Run("optimistic", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		runConcurrentGets(b, set, ks, goroutines)
		if st := set.Stats(); st.FallbackExclusive > 0 {
			b.Fatalf("%d reads fell back: not measuring the lock-free path", st.FallbackExclusive)
		}
	})
	b.Run("exclusive", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		set.ForceExclusiveReads(true)
		runConcurrentGets(b, set, ks, goroutines)
	})
	b.Run("queued", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		benchQueuedGets(b, set, ks, goroutines)
	})
}

// BenchmarkOptimisticVsRWMutex isolates what the optimistic tier buys
// over the previous read-locking designs on the identical workload: 8
// goroutines, one shard, all buckets DRAM-resident.
//
//   - optimistic: seqlock validation under an epoch pin; no shard lock.
//   - rwmutex: the prior PR's shared-RLock tier, forced by disabling the
//     per-shard optimistic flag (the white-box toggle keeps everything
//     else — device, cache state, key set — identical).
//   - exclusive: the write lock, as the serialization floor.
//
// On a single-vCPU runner the three collapse toward lock overhead
// deltas; the spread is real only with hardware parallelism. The CI
// record (results/BENCH_8.json) carries the host's CPU count for that
// reason.
func BenchmarkOptimisticVsRWMutex(b *testing.B) {
	const (
		goroutines = 8
		keys       = 1024
	)
	b.Run("optimistic", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		runConcurrentGets(b, set, ks, goroutines)
		if st := set.Stats(); st.FallbackExclusive > 0 {
			b.Fatalf("%d reads fell back: not measuring the lock-free path", st.FallbackExclusive)
		}
	})
	b.Run("rwmutex", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		set.shards[0].opt = false
		runConcurrentGets(b, set, ks, goroutines)
		if st := set.Stats(); st.LockUpgrades > 0 {
			b.Fatalf("%d reads upgraded: not measuring the RWMutex path", st.LockUpgrades)
		}
	})
	b.Run("exclusive", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		set.ForceExclusiveReads(true)
		runConcurrentGets(b, set, ks, goroutines)
	})
}

// runConcurrentGets fans b.N gets over g goroutines calling the set
// directly, each reusing a value buffer.
func runConcurrentGets(b *testing.B, set *Set, ks [][]byte, g int) {
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, 0, 256)
			for i := 0; i < per; i++ {
				v, err := set.RetrieveAppend(dst[:0], ks[(w*per+i)%len(ks)])
				if err != nil {
					b.Errorf("retrieve: %v", err)
					return
				}
				dst = v
			}
		}(w)
	}
	// Remainder ops on the benchmark goroutine keep b.N exact.
	dst := make([]byte, 0, 256)
	for i := 0; i < b.N-per*g; i++ {
		v, err := set.RetrieveAppend(dst[:0], ks[i%len(ks)])
		if err != nil {
			b.Fatal(err)
		}
		dst = v
	}
	wg.Wait()
	b.StopTimer()
}

// benchQueuedGets reproduces the pre-read-pool serving shape: one
// worker goroutine owns the shard and every get crosses a channel to it
// and back.
func benchQueuedGets(b *testing.B, set *Set, ks [][]byte, g int) {
	type req struct {
		key   []byte
		reply chan error
	}
	q := make(chan req, 256)
	var worker sync.WaitGroup
	worker.Add(1)
	go func() {
		defer worker.Done()
		dst := make([]byte, 0, 256)
		for r := range q {
			v, err := set.RetrieveAppend(dst[:0], r.key)
			dst = v
			r.reply <- err
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reply := make(chan error, 1)
			for i := 0; i < per; i++ {
				q <- req{key: ks[(w*per+i)%len(ks)], reply: reply}
				if err := <-reply; err != nil {
					b.Errorf("retrieve: %v", err)
					return
				}
			}
		}(w)
	}
	reply := make(chan error, 1)
	for i := 0; i < b.N-per*g; i++ {
		q <- req{key: ks[i%len(ks)], reply: reply}
		if err := <-reply; err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
	close(q)
	worker.Wait()
}

// BenchmarkValueCacheHit prices the hot-value tier against the index
// tier it short-circuits, on the identical DRAM-resident workload: every
// benchmarked get is a hit either way, so the per-op delta is purely
// "value-cache probe" versus "seqlock walk + record decode". Both modes
// must stay at 0 allocs/op — the value tier returns a copy into the
// caller's reused buffer, never a cache-owned slice.
func BenchmarkValueCacheHit(b *testing.B) {
	const keys = 256
	run := func(b *testing.B, set *Set, ks [][]byte) {
		dst := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := set.RetrieveAppend(dst[:0], ks[i%len(ks)])
			if err != nil {
				b.Fatal(err)
			}
			dst = v
		}
		b.StopTimer()
	}
	b.Run("indexonly", func(b *testing.B) {
		set, ks := benchSet(b, keys)
		defer set.Close()
		run(b, set, ks)
	})
	b.Run("valuecache", func(b *testing.B) {
		set, ks := benchSet(b, keys, func(c *device.Config) { c.ValueCacheBudget = 1 << 20 })
		defer set.Close()
		run(b, set, ks)
		if st := set.Stats(); st.Dev.ValueCacheHits == 0 {
			b.Fatal("no value-cache hits: not measuring the hot-value path")
		}
	})
}

// BenchmarkAdmissionYCSB runs a zipf-skewed GET stream against an index
// cache under real pressure — a 256 KiB budget holding 8 of ~32 resident
// tables — with TinyLFU admission off versus on. The interesting number
// is the reported flash-reads/op metric: admission refuses to let
// one-touch cold buckets evict the zipf head's tables, so the gated run
// should issue fewer flash reads for the same op stream. (This is the
// scenario the 16 KiB golden cell cannot exercise: there the budget
// holds a single 32 KiB table, so the duel never engages.)
func BenchmarkAdmissionYCSB(b *testing.B) {
	const keys = 8192
	for _, mode := range []string{"admit-all", "tinylfu"} {
		b.Run(mode, func(b *testing.B) {
			set, ks := benchSet(b, keys, func(c *device.Config) {
				c.CacheBudget = 256 << 10
				c.CacheAdmission = mode == "tinylfu"
			})
			defer set.Close()
			zipf := workload.NewZipfian(keys, 0.99, 42)
			ids := make([]uint64, 1<<16)
			for i := range ids {
				ids[i] = zipf.NextID()
			}
			before := set.Stats().Flash.Reads
			dst := make([]byte, 0, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := set.RetrieveAppend(dst[:0], ks[ids[i%len(ids)]])
				if err != nil {
					b.Fatal(err)
				}
				dst = v
			}
			b.StopTimer()
			st := set.Stats()
			b.ReportMetric(float64(st.Flash.Reads-before)/float64(b.N), "flashreads/op")
			if mode == "tinylfu" && st.Index.Cache.AdmissionRejects == 0 {
				b.Fatal("no admission rejects: the duel never engaged")
			}
		})
	}
}

// BenchmarkStoreRetrieve measures the synchronous single-client
// store+retrieve round trip through the shard front-end (write path
// regression guard for the CI bench record).
func BenchmarkStoreRetrieve(b *testing.B) {
	set, err := New(1, device.Config{Capacity: 256 << 20, AnticipatedKeys: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	val := workload.ValuePayload(7, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := workload.KeyBytes(uint64(i % (1 << 14)))
		if err := set.Store(key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := set.Retrieve(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotScanVsLocked contrasts the two scan paths this PR
// leaves in the tree, both resolving the same prefix group under live
// write churn:
//
//   - locked: the legacy Set.Iterate, which takes every shard's write
//     lock for the duration of its bucket sweep — the scan and the
//     writers serialize against each other.
//   - snapshot: SetSnapshot.Iterate over a pre-captured MVCC view,
//     which reads frozen per-shard views with no shard lock at all;
//     writers commit concurrently and the scan's result set never
//     moves.
//
// The per-op delta is the price the old path charged every backup and
// stats pass; results/BENCH_9.json records it per commit.
func BenchmarkSnapshotScanVsLocked(b *testing.B) {
	const (
		keys    = 4096
		writers = 2
	)
	// One iterator-mode prefix group: KeyBytes ids sharing their first
	// DefaultScanPrefixLen bytes — ids 0..255 here. Both paths resolve
	// exactly this group, so the comparison is scan machinery only.
	prefix := workload.KeyBytes(0)[:workload.DefaultScanPrefixLen]
	const groupSize = 256
	open := func(b *testing.B) *Set {
		b.Helper()
		set, err := New(4, device.Config{
			Capacity:        64 << 20,
			AnticipatedKeys: 4 * keys,
			SigScheme:       index.SigScheme{Bits: 64, PrefixLen: workload.DefaultScanPrefixLen},
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			if err := set.Store(workload.KeyBytes(uint64(i)), workload.ValuePayload(uint64(i), 100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := set.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		return set
	}
	// churn overwrites existing keys from `writers` goroutines for the
	// benchmark's duration, so the scans compete with real commits.
	churn := func(set *Set) (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; ; i += writers {
					select {
					case <-done:
						return
					default:
					}
					id := uint64(i % keys)
					if err := set.Store(workload.KeyBytes(id), workload.ValuePayload(uint64(i), 100)); err != nil {
						return
					}
				}
			}(w)
		}
		return func() { close(done); wg.Wait() }
	}

	b.Run("locked", func(b *testing.B) {
		set := open(b)
		defer set.Close()
		stop := churn(set)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entries, err := set.Iterate(prefix)
			if err != nil {
				b.Fatal(err)
			}
			if len(entries) != groupSize {
				b.Fatalf("scan saw %d entries, want %d", len(entries), groupSize)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		set := open(b)
		defer set.Close()
		ss, err := set.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		defer ss.Release()
		stop := churn(set)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entries, err := ss.Iterate(prefix)
			if err != nil {
				b.Fatal(err)
			}
			if len(entries) != groupSize {
				b.Fatalf("snapshot scan saw %d entries, want %d", len(entries), groupSize)
			}
		}
	})
}
