package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/device"
	"repro/internal/nand"
	"repro/internal/sim"
)

// TestSnapshotFrozenReads: point reads and iteration through a snapshot
// keep answering the capture-instant values while overwrites and
// deletes land on the live set.
func TestSnapshotFrozenReads(t *testing.T) {
	set := newSet(t, 4)
	defer set.Close()

	const n = 300
	key := func(i int) []byte { return []byte(fmt.Sprintf("frz%05d", i)) }
	val := func(gen, i int) []byte { return []byte(fmt.Sprintf("g%d-%d", gen, i)) }
	for i := 0; i < n; i++ {
		if err := set.Store(key(i), val(1, i)); err != nil {
			t.Fatal(err)
		}
	}

	ss, err := set.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer ss.Release()
	if ss.Records() != n {
		t.Fatalf("snapshot holds %d records, want %d", ss.Records(), n)
	}
	epoch := ss.Epoch()

	// Mutate everything: overwrite evens, delete odds, add fresh keys.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if err := set.Store(key(i), val(2, i)); err != nil {
				t.Fatal(err)
			}
		} else if err := set.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < n+50; i++ {
		if err := set.Store(key(i), val(2, i)); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < n; i++ {
		v, err := ss.Get(key(i))
		if err != nil || !bytes.Equal(v, val(1, i)) {
			t.Fatalf("snapshot get %d: %q/%v, want %q", i, v, err, val(1, i))
		}
	}
	// Keys born after the capture are absent in the snapshot.
	if _, err := ss.Get(key(n)); !errors.Is(err, device.ErrNotFound) {
		t.Fatalf("snapshot sees post-capture key: %v", err)
	}
	if _, err := ss.Get([]byte("never-stored")); !errors.Is(err, device.ErrNotFound) {
		t.Fatalf("snapshot get absent: %v", err)
	}

	entries, err := ss.Iterate(nil)
	if err != nil {
		t.Fatalf("iterate: %v", err)
	}
	if len(entries) != n {
		t.Fatalf("iterate returned %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if i > 0 && bytes.Compare(entries[i-1].Key, e.Key) >= 0 {
			t.Fatalf("iterate unsorted at %d", i)
		}
		if !bytes.Equal(e.Key, key(i)) || !bytes.Equal(e.Value, val(1, i)) {
			t.Fatalf("iterate entry %d: %q=%q", i, e.Key, e.Value)
		}
	}

	// Epoch is stable across the snapshot's life.
	if ss.Epoch() != epoch {
		t.Fatalf("epoch drifted: %d -> %d", epoch, ss.Epoch())
	}
	// A fresh capture with no intervening commits reports a matching
	// epoch; one after a commit reports a later one.
	ss2, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2 := ss2.Epoch()
	ss2.Release()
	if e2 <= epoch {
		t.Fatalf("post-mutation capture epoch %d not after %d", e2, epoch)
	}
	if err := set.Store(key(0), val(3, 0)); err != nil {
		t.Fatal(err)
	}
	ss3, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ss3.Epoch() <= e2 {
		t.Fatalf("epoch did not advance past %d after a store", e2)
	}
	ss3.Release()

	st := set.Stats()
	if st.SnapshotsOpen != 1 || st.SnapshotReads == 0 {
		t.Fatalf("stats: open=%d reads=%d", st.SnapshotsOpen, st.SnapshotReads)
	}
}

// TestSnapshotRelease: reads after release fail, release is idempotent,
// and the open-snapshot gauge drops back to zero.
func TestSnapshotRelease(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	if err := set.Store([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	ss, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Valid() {
		t.Fatal("fresh snapshot invalid")
	}
	ss.Release()
	ss.Release() // idempotent
	if ss.Valid() {
		t.Fatal("released snapshot still valid")
	}
	if _, err := ss.Get([]byte("k")); !errors.Is(err, device.ErrSnapshotReleased) {
		t.Fatalf("get after release: %v", err)
	}
	if _, err := ss.Iterate(nil); !errors.Is(err, device.ErrSnapshotReleased) {
		t.Fatalf("iterate after release: %v", err)
	}
	if open := set.Stats().SnapshotsOpen; open != 0 {
		t.Fatalf("SnapshotsOpen = %d after release", open)
	}
}

// TestSnapshotInvalidatedByRestart: a power cycle reclaims flash the
// frozen view references, so the snapshot must refuse to read rather
// than serve recycled bytes.
func TestSnapshotInvalidatedByRestart(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	for i := 0; i < 50; i++ {
		if err := set.Store([]byte(fmt.Sprintf("rst%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Release()
	if err := set.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if ss.Valid() {
		t.Fatal("snapshot valid after restart")
	}
	if _, err := ss.Get([]byte("rst000")); !errors.Is(err, device.ErrSnapshotInvalid) {
		t.Fatalf("get after restart: %v", err)
	}
	if _, err := ss.Iterate(nil); !errors.Is(err, device.ErrSnapshotInvalid) {
		t.Fatalf("iterate after restart: %v", err)
	}
	// The live set recovered and serves normally.
	if v, err := set.Retrieve([]byte("rst000")); err != nil || string(v) != "v" {
		t.Fatalf("live read after restart: %q/%v", v, err)
	}
	// A fresh capture of the recovered state works.
	ss2, err := set.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot after restart: %v", err)
	}
	if v, err := ss2.Get([]byte("rst000")); err != nil || string(v) != "v" {
		t.Fatalf("fresh snapshot read: %q/%v", v, err)
	}
	ss2.Release()
}

// TestSnapshotSurvivesGC: churn overwrites hard enough to force garbage
// collection while a snapshot is open; the frozen view's blocks are
// excluded from GC victims, so every capture-instant value must still
// read back exactly. Uses a compact 2 MiB geometry so churn actually
// exhausts the free pool.
func TestSnapshotSurvivesGC(t *testing.T) {
	set, err := New(1, device.Config{NAND: &nand.Config{
		Channels: 2, DiesPerChan: 2, BlocksPerDie: 16, PagesPerBlock: 8,
		PageSize: 8 * 1024, SpareSize: 256,
		ReadLatency: 60 * sim.Microsecond, ProgramLatency: 700 * sim.Microsecond,
		EraseLatency: 3500 * sim.Microsecond, ChannelMBps: 800,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	const n = 64
	key := func(i int) []byte { return []byte(fmt.Sprintf("gc%04d", i)) }
	base := bytes.Repeat([]byte("s"), 1024)
	for i := 0; i < n; i++ {
		if err := set.Store(key(i), append(base, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Release()

	// Churn: overwrite a small working set until total writes far exceed
	// the 2 MiB capacity, so GC demonstrably runs with the snapshot open.
	churn := bytes.Repeat([]byte("c"), 2048)
	rng := rand.New(rand.NewSource(42))
	dev := set.Shard(0).Device()
	for i := 0; i < 4000 && dev.Stats().GCRuns < 3; i++ {
		k := []byte(fmt.Sprintf("churn%02d", rng.Intn(16)))
		if err := set.Store(k, churn); err != nil {
			if errors.Is(err, device.ErrDeviceFull) {
				break
			}
			t.Fatal(err)
		}
	}
	if dev.Stats().GCRuns == 0 {
		t.Fatal("churn never triggered GC; the test geometry regressed")
	}
	for i := 0; i < n; i++ {
		v, err := ss.Get(key(i))
		if err != nil || len(v) != len(base)+1 || v[len(v)-1] != byte(i) {
			t.Fatalf("snapshot get %d after GC: len=%d err=%v", i, len(v), err)
		}
	}
}

// TestSnapshotConcurrentWithWriters hammers a snapshot with parallel
// readers while writers mutate the live set, under -race. Every
// snapshot read must return the capture-instant value, bit-exact.
func TestSnapshotConcurrentWithWriters(t *testing.T) {
	set := newSet(t, 4)
	defer set.Close()
	const n = 256
	key := func(i int) []byte { return []byte(fmt.Sprintf("cc%05d", i)) }
	for i := 0; i < n; i++ {
		if err := set.Store(key(i), []byte(fmt.Sprintf("frozen-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Release()

	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				k := key(rng.Intn(n))
				var err error
				if i%5 == 4 {
					err = set.Delete(k)
					if errors.Is(err, device.ErrNotFound) {
						err = nil
					}
				} else {
					err = set.Store(k, []byte(fmt.Sprintf("live-%d-%d", w, i)))
				}
				if err != nil {
					select {
					case errCh <- fmt.Errorf("writer %d: %w", w, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 400; i++ {
				j := rng.Intn(n)
				v, err := ss.Get(key(j))
				if err != nil || string(v) != fmt.Sprintf("frozen-%d", j) {
					select {
					case errCh <- fmt.Errorf("reader %d: key %d got %q/%v", r, j, v, err):
					default:
					}
					return
				}
			}
		}(r)
	}
	// One goroutine iterates the frozen view mid-churn.
	readers.Add(1)
	go func() {
		defer readers.Done()
		entries, err := ss.Iterate(nil)
		if err != nil || len(entries) != n {
			errCh <- fmt.Errorf("iterate: %d entries, %v", len(entries), err)
		}
	}()
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
