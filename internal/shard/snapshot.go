package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/device"
)

// SetSnapshot is a consistent point-in-time view across every shard.
// Capture takes ALL shard write locks simultaneously — the only moment
// the set has a well-defined global state, since group commits apply
// and acknowledge under those locks — then opens one device snapshot
// per shard and releases the locks. The capture instant is the
// snapshot's linearization point: every acknowledged write is included,
// every later commit excluded.
//
// After capture, reads never take a shard write lock: point reads ride
// the device's optimistic fast path (live-index probe, epoch-validated
// at the seqlock linearization point) with a frozen-view fallback, and
// Iterate scans the frozen views outright, all concurrently with
// writers committing through the WAL.
type SetSnapshot struct {
	set      *Set
	snaps    []*device.Snapshot // one per shard, in shard order
	epoch    uint64             // sum of per-shard write epochs at capture
	released atomic.Bool
}

// Snapshot captures a consistent view of the whole set. Callers must
// Release it; an unreleased snapshot pins flash blocks against GC on
// every shard.
func (s *Set) Snapshot() (*SetSnapshot, error) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	snaps := make([]*device.Snapshot, len(s.shards))
	var err error
	for i, sh := range s.shards {
		if snaps[i], err = sh.dev.OpenSnapshot(); err != nil {
			break
		}
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	if err != nil {
		for _, sn := range snaps {
			if sn != nil {
				sn.Release()
			}
		}
		return nil, err
	}
	ss := &SetSnapshot{set: s, snaps: snaps}
	for _, sn := range snaps {
		ss.epoch += sn.Epoch()
	}
	s.snapsOpen.Add(1)
	return ss, nil
}

// Epoch reports the set-level visibility bound: the sum of per-shard
// write epochs at capture. All shards were frozen at one instant, so
// two captures with no intervening commits report the same epoch.
func (ss *SetSnapshot) Epoch() uint64 { return ss.epoch }

// Records reports the total frozen records across shards.
func (ss *SetSnapshot) Records() int {
	n := 0
	for _, sn := range ss.snaps {
		n += sn.Records()
	}
	return n
}

// Valid reports whether every per-shard snapshot is still readable.
func (ss *SetSnapshot) Valid() bool {
	if ss.released.Load() {
		return false
	}
	for _, sn := range ss.snaps {
		if !sn.Valid() {
			return false
		}
	}
	return true
}

// Release drops every shard's snapshot. Idempotent.
func (ss *SetSnapshot) Release() {
	if !ss.released.CompareAndSwap(false, true) {
		return
	}
	for _, sn := range ss.snaps {
		sn.Release()
	}
	ss.set.snapsOpen.Add(-1)
}

// Get reads key's value as of the capture instant, taking no shard
// lock. Returns device.ErrNotFound when the key had no live value in
// the snapshot.
func (ss *SetSnapshot) Get(key []byte) ([]byte, error) {
	if ss.released.Load() {
		return nil, device.ErrSnapshotReleased
	}
	i := ss.set.route(ss.set.scheme.Compute(key))
	sh := ss.set.shards[i]
	v, done, err := ss.snaps[i].Get(sh.last.Load(), key, nil)
	if err != nil {
		return nil, err
	}
	sh.last.AdvanceTo(done)
	ss.set.snapReads.Add(1)
	return v, nil
}

// Iterate enumerates the snapshot's keys sharing prefix (nil matches
// everything) across all shards, merged in key order. Unlike the live
// Set.Iterate it takes no shard write lock — the frozen views are read
// concurrently with committing writers — and it works without an
// iterator-mode signature scheme.
func (ss *SetSnapshot) Iterate(prefix []byte) ([]device.IterEntry, error) {
	if ss.released.Load() {
		return nil, device.ErrSnapshotReleased
	}
	per := make([][]device.IterEntry, len(ss.snaps))
	errs := make([]error, len(ss.snaps))
	var wg sync.WaitGroup
	for i, sn := range ss.snaps {
		wg.Add(1)
		go func(i int, sn *device.Snapshot) {
			defer wg.Done()
			sh := ss.set.shards[i]
			entries, done, err := sn.Scan(sh.last.Load(), prefix, true)
			if err != nil {
				errs[i] = err
				return
			}
			sh.last.AdvanceTo(done)
			per[i] = entries
		}(i, sn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeSorted(per), nil
}

// SnapshotStats is the frozen observability view of one SetSnapshot.
// It reads only snapshot-local and atomic state — no shard lock.
type SnapshotStats struct {
	Epoch    uint64
	Records  int
	Reads    int64 // point reads served through this snapshot
	FastHits int64 // of those, served by the live-index fast path
	Valid    bool
}

// Stats reports the snapshot's frozen counters.
func (ss *SetSnapshot) Stats() SnapshotStats {
	st := SnapshotStats{Epoch: ss.epoch, Valid: ss.Valid()}
	for _, sn := range ss.snaps {
		st.Records += sn.Records()
		st.Reads += sn.Reads()
		st.FastHits += sn.FastHits()
	}
	return st
}
