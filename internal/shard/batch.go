package shard

import (
	"sync"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Op is one queued asynchronous command.
type Op struct {
	Kind  workload.OpKind
	Key   []byte
	Value []byte
}

// BatchResult reports the outcome of an asynchronous batch, joined back
// into submission order.
type BatchResult struct {
	// Values holds retrieved values, indexed like the submitted ops
	// (nil for non-retrieves and failed retrieves).
	Values [][]byte
	// Errs holds the per-op error (nil on success).
	Errs []error
	// Elapsed is the simulated wall time from first submission to last
	// completion. Shards drain in parallel, so this is the maximum of
	// the per-shard batch spans.
	Elapsed sim.Duration
}

// Apply executes ops asynchronously: the batch is partitioned by the
// signature router into per-shard sub-batches that the shards execute
// concurrently, and results are joined in submission order. Within a
// shard, op i is submitted at that shard's batch start plus i×gap —
// the host's global submission cadence — so a single-shard Set times
// batches exactly like the pre-sharding device.
func (s *Set) Apply(ops []Op, gap sim.Duration) BatchResult {
	res := BatchResult{
		Values: make([][]byte, len(ops)),
		Errs:   make([]error, len(ops)),
	}

	// Partition into per-shard sub-batches, remembering each op's
	// global position for both the submission offset and the join.
	sub := make([][]int, len(s.shards))
	for i, op := range ops {
		si := s.route(s.scheme.Compute(op.Key))
		sub[si] = append(sub[si], i)
	}

	spans := make([]sim.Duration, len(s.shards))
	var wg sync.WaitGroup
	for si, idxs := range sub {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sh := s.shards[si]
			sh.mu.Lock()
			defer sh.mu.Unlock()

			start := sh.dev.Now()
			var lastDone sim.Time
			mutated := false
			for _, i := range idxs {
				submit := start.Add(sim.Duration(i) * gap)
				op := ops[i]
				var done sim.Time
				var err error
				switch op.Kind {
				case workload.OpStore:
					done, err = sh.dev.Store(submit, op.Key, op.Value)
					mutated = mutated || err == nil
				case workload.OpRetrieve:
					res.Values[i], done, err = sh.dev.Retrieve(submit, op.Key)
				case workload.OpDelete:
					done, err = sh.dev.Delete(submit, op.Key)
					mutated = mutated || err == nil
				case workload.OpExist:
					_, done, err = sh.dev.Exist(submit, op.Key)
				}
				res.Errs[i] = err
				if done > lastDone {
					lastDone = done
				}
			}
			if mutated {
				// The sub-batch is one mutation batch for MVCC purposes:
				// close its epoch before the shard lock drops.
				sh.dev.AdvanceEpoch()
			}
			if sh.log != nil {
				// Journal the sub-batch's successful mutations. Runs under
				// the held shard lock so sequence order matches apply order;
				// the append completes before the batch is acknowledged.
				sh.logBatch(s, ops, idxs, res.Errs)
			}
			end := sh.dev.Drain()
			if lastDone > end {
				end = lastDone
			}
			sh.last.AdvanceTo(end)
			spans[si] = end.Sub(start)
		}(si, idxs)
	}
	wg.Wait()

	for _, sp := range spans {
		if sp > res.Elapsed {
			res.Elapsed = sp
		}
	}
	return res
}
