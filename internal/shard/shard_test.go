package shard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newSet(t *testing.T, n int) *Set {
	t.Helper()
	set, err := New(n, device.Config{Capacity: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestRouterCoversAllShards checks the high-bit router actually spreads
// a uniform key population over every shard, with no shard starved.
func TestRouterCoversAllShards(t *testing.T) {
	set := newSet(t, 8)
	hits := make([]int, 8)
	const n = 4000
	for i := 0; i < n; i++ {
		hits[set.RouteKey(workload.KeyBytes(uint64(i)))]++
	}
	for i, h := range hits {
		// Uniform expectation is n/8 = 500; allow wide slack.
		if h < n/8/2 || h > n/8*2 {
			t.Fatalf("shard %d got %d of %d keys: router skewed (%v)", i, h, n, hits)
		}
	}
}

// TestRouteIsStable: the same key always routes to the same shard, and
// the route matches where Store actually placed it.
func TestRouteIsStable(t *testing.T) {
	set := newSet(t, 4)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("stable-%d", i))
		want := set.RouteKey(key)
		if err := set.Store(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if got := set.RouteKey(key); got != want {
			t.Fatalf("route of %q moved: %d -> %d", key, want, got)
		}
		// The owning shard's device must hold the record.
		if set.Shard(want).Device().Stats().Stores == 0 {
			t.Fatalf("shard %d has no stores after owning %q", want, key)
		}
	}
}

// TestRejectsBadShardCounts rejects zero, negative, and non-power-of-two.
func TestRejectsBadShardCounts(t *testing.T) {
	for _, n := range []int{0, -2, 3, 5, 12} {
		if _, err := New(n, device.Config{Capacity: 16 << 20}); err == nil {
			t.Fatalf("New(%d) accepted", n)
		}
	}
}

// TestElapsedIsMaxOfShardClocks: loading one shard hard must not inflate
// the merged clock by the idle shards, and the merged clock equals the
// busiest shard's.
func TestElapsedIsMaxOfShardClocks(t *testing.T) {
	set := newSet(t, 2)
	// Drive keys until both shards have seen at least one op.
	var perShard [2]int
	for i := 0; perShard[0] == 0 || perShard[1] == 0; i++ {
		key := workload.KeyBytes(uint64(i))
		if err := set.Store(key, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		perShard[set.RouteKey(key)]++
	}
	var want sim.Time
	for i := 0; i < 2; i++ {
		sh := set.Shard(i)
		tl := sh.dev.Drain()
		if last := sh.last.Load(); last > tl {
			tl = last
		}
		if tl > want {
			want = tl
		}
	}
	if got := set.Elapsed(); got != sim.Duration(want) {
		t.Fatalf("Elapsed=%v, want max shard clock %v", got, sim.Duration(want))
	}
}

// TestApplyJoinsSubmissionOrder: a batch spanning all shards returns
// values and errors indexed exactly like the submitted ops.
func TestApplyJoinsSubmissionOrder(t *testing.T) {
	set := newSet(t, 4)
	var ops []Op
	const n = 64
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: workload.OpStore,
			Key:   []byte(fmt.Sprintf("bk-%03d", i)),
			Value: []byte(fmt.Sprintf("bv-%03d", i))})
	}
	if res := set.Apply(ops, 0); res.Elapsed <= 0 {
		t.Fatalf("store batch elapsed %v", res.Elapsed)
	}
	ops = ops[:0]
	for i := n - 1; i >= 0; i-- { // reversed order to catch index mixups
		ops = append(ops, Op{Kind: workload.OpRetrieve, Key: []byte(fmt.Sprintf("bk-%03d", i))})
	}
	res := set.Apply(ops, 0)
	for j := 0; j < n; j++ {
		want := fmt.Sprintf("bv-%03d", n-1-j)
		if res.Errs[j] != nil || string(res.Values[j]) != want {
			t.Fatalf("slot %d = (%q, %v), want %q", j, res.Values[j], res.Errs[j], want)
		}
	}
}

// TestMergeSortedInterleaves exercises the iterator merge directly.
func TestMergeSortedInterleaves(t *testing.T) {
	mk := func(keys ...string) []device.IterEntry {
		out := make([]device.IterEntry, len(keys))
		for i, k := range keys {
			out[i] = device.IterEntry{Key: []byte(k)}
		}
		return out
	}
	got := mergeSorted([][]device.IterEntry{
		mk("a", "d", "g"),
		nil,
		mk("b", "e"),
		mk("c", "f", "h", "i"),
	})
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i].Key) != w {
			t.Fatalf("merged[%d] = %q, want %q", i, got[i].Key, w)
		}
	}
}

// TestCloseErrorsIdentifyShards verifies that per-shard lifecycle
// failures stay individually unwrappable: each joined error names its
// shard and still matches the underlying cause with errors.Is.
func TestCloseErrorsIdentifyShards(t *testing.T) {
	set := newSet(t, 4)
	if err := set.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// Every shard is now closed, so a second Close fails on all four.
	err := set.Close()
	if err == nil {
		t.Fatal("second close succeeded")
	}
	if !errors.Is(err, device.ErrClosed) {
		t.Fatalf("joined error does not match device.ErrClosed: %v", err)
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("close error is not an errors.Join aggregate: %T", err)
	}
	parts := joined.Unwrap()
	if len(parts) != set.N() {
		t.Fatalf("got %d per-shard errors, want %d: %v", len(parts), set.N(), err)
	}
	for i, pe := range parts {
		if !errors.Is(pe, device.ErrClosed) {
			t.Errorf("shard %d error lost its cause: %v", i, pe)
		}
		if want := fmt.Sprintf("shard %d:", i); !strings.Contains(pe.Error(), want) {
			t.Errorf("shard %d error does not name its shard: %v", i, pe)
		}
	}
}
