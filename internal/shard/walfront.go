package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// maxGroup bounds how many waiting mutations one group commit absorbs:
// one shard-lock acquisition, one device apply run, one log append, one
// fsync (policy permitting) amortized over up to this many writers.
const maxGroup = 256

// walReq is one mutation waiting on a shard's committer.
type walReq struct {
	op    wal.Op
	key   []byte
	value []byte
	err   chan error
}

// AttachWAL opens (or recovers) a write-ahead log under root — one
// subdirectory per shard — and routes all subsequent mutations through
// per-shard group committers. The emulated device is volatile, so on
// reopen the full retained log is replayed into the fresh shards before
// AttachWAL returns; a torn tail on any shard's newest segment is
// truncated, never replayed. The root's manifest pins the shard
// topology: reopening with a different shard count or signature scheme
// is refused rather than replaying keys into the wrong shards.
//
// Call once, before the set serves traffic, and pair with Close.
func (s *Set) AttachWAL(root string, opts wal.Options) (wal.ReplayInfo, error) {
	var total wal.ReplayInfo
	if s.shards[0].log != nil {
		return total, errors.New("shard: WAL already attached")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return total, fmt.Errorf("shard: wal root: %w", err)
	}
	m := wal.Manifest{Shards: len(s.shards), SigBits: s.scheme.Bits, PrefixLen: s.scheme.PrefixLen}
	if err := wal.WriteManifest(root, m); err != nil {
		return total, err
	}
	for i, sh := range s.shards {
		l, err := wal.Open(filepath.Join(root, fmt.Sprintf("shard-%04d", i)), opts)
		if err != nil {
			return total, fmt.Errorf("shard %d: %w", i, err)
		}
		info, err := l.Replay(func(r *wal.Record) error { return sh.replay(r) })
		if err != nil {
			l.Close()
			return total, fmt.Errorf("shard %d: %w", i, err)
		}
		total.Segments += info.Segments
		total.Records += info.Records
		total.TruncatedBytes += info.TruncatedBytes
		if info.LastSeq > total.LastSeq {
			total.LastSeq = info.LastSeq
		}
		sh.log = l
		sh.commitCh = make(chan *walReq, maxGroup)
		s.walWG.Add(1)
		go s.committer(sh)
	}
	return total, nil
}

// WALAttached reports whether mutations are routed through a WAL.
func (s *Set) WALAttached() bool { return s.shards[0].log != nil }

// WALDirs returns each shard's log directory, in shard order, or nil
// when no WAL is attached (tooling: walinfo).
func (s *Set) WALDirs() []string {
	if !s.WALAttached() {
		return nil
	}
	dirs := make([]string, len(s.shards))
	for i, sh := range s.shards {
		dirs[i] = sh.log.Dir()
	}
	return dirs
}

// replay applies one recovered record to the shard's fresh device. A
// delete whose key is absent is skipped, not failed: compaction folds
// segments to the newest record per key, so a tombstone can legally
// outlive the put it erased.
func (sh *Shard) replay(r *wal.Record) error {
	var done, last = sh.last.Load(), sh.last.Load()
	var err error
	switch r.Op {
	case wal.OpPut:
		done, err = sh.dev.Store(last, r.Key, r.Value)
	case wal.OpDelete:
		done, err = sh.dev.Delete(last, r.Key)
		if errors.Is(err, device.ErrNotFound) {
			return nil
		}
	default:
		return fmt.Errorf("unknown op %v", r.Op)
	}
	if err != nil {
		return err
	}
	// Each replayed record is its own batch: epochs stay monotone across
	// the replay, mirroring the order the original commits closed in.
	sh.dev.AdvanceEpoch()
	sh.last.AdvanceTo(done)
	return nil
}

// committer is the shard's group-commit loop: it blocks for one waiting
// mutation, drains whatever burst has accumulated behind it, and
// commits the whole group under a single shard-lock acquisition and a
// single log append. Under FsyncGroup it syncs once the burst drains —
// the quiet moment after a storm of concurrent writers — rather than
// per append.
func (s *Set) committer(sh *Shard) {
	defer s.walWG.Done()
	reqs := make([]*walReq, 0, maxGroup)
	for {
		first, ok := <-sh.commitCh
		if !ok {
			return
		}
		reqs = append(reqs[:0], first)
		// Concurrent writers that lost the race to this burst are
		// typically microseconds behind; one scheduler yield lets their
		// sends land, turning N near-simultaneous commits into one
		// group instead of N singleton groups each paying a full lock
		// acquisition and (policy permitting) fsync.
		runtime.Gosched()
	drain:
		for len(reqs) < maxGroup {
			select {
			case r, ok := <-sh.commitCh:
				if !ok {
					break drain
				}
				reqs = append(reqs, r)
			default:
				break drain
			}
		}
		sh.commitGroup(s, reqs)
		if sh.log.Fsync() == wal.FsyncGroup && len(sh.commitCh) == 0 {
			sh.log.Sync()
		}
	}
}

// commitGroup applies one group: lock the shard once, apply every
// mutation to the device, reserve sequence numbers for the ones that
// succeeded (still under the lock, so sequence order is apply order),
// then release the lock, append the group to the log in one write, and
// acknowledge every waiter. Failed device operations are never logged —
// replay must not resurrect a write the caller saw fail — and a log
// append failure is reported to every writer whose record it carried.
func (sh *Shard) commitGroup(s *Set, reqs []*walReq) {
	recs := make([]wal.Record, 0, len(reqs))
	logged := make([]*walReq, 0, len(reqs))

	sh.mu.Lock()
	for _, req := range reqs {
		var done sim.Time
		var err error
		switch req.op {
		case wal.OpPut:
			done, err = sh.dev.Store(sh.last.Load(), req.key, req.value)
		case wal.OpDelete:
			done, err = sh.dev.Delete(sh.last.Load(), req.key)
		}
		if err != nil {
			req.err <- err // acked now; never enters the logged set
			continue
		}
		sh.last.AdvanceTo(done)
		recs = append(recs, wal.Record{
			Op:    req.op,
			Sig:   s.scheme.Compute(req.key).Lo,
			Key:   req.key,
			Value: req.value,
		})
		logged = append(logged, req)
	}
	if len(recs) > 0 {
		first := sh.log.ReserveSeqs(len(recs))
		for i := range recs {
			recs[i].Seq = first + uint64(i)
		}
		// One group = one mutation batch: close its epoch while the lock
		// still fences out snapshot capture, so a snapshot taken between
		// groups sees whole batches only.
		sh.dev.AdvanceEpoch()
	}
	sh.mu.Unlock()

	var aerr error
	if len(recs) > 0 {
		aerr = sh.log.Append(recs)
	}
	for _, req := range logged {
		req.err <- aerr
	}
}

// commit routes one mutation through the shard's committer and waits
// for the acknowledgment (durable per the configured fsync policy).
func (sh *Shard) commit(op wal.Op, key, value []byte) error {
	req := &walReq{op: op, key: key, value: value, err: make(chan error, 1)}
	sh.commitCh <- req
	return <-req.err
}

// logBatch journals the successful mutations of an Apply sub-batch.
// Called with the shard lock HELD for the sequence reservation — apply
// order equals sequence order — and appends before returning, so the
// batch result is acknowledged no earlier than the log write. idxs and
// errs index the full batch; a log append failure is surfaced on every
// op whose record it carried.
func (sh *Shard) logBatch(s *Set, ops []Op, idxs []int, errs []error) {
	recs := make([]wal.Record, 0, len(idxs))
	owners := make([]int, 0, len(idxs))
	for _, i := range idxs {
		if errs[i] != nil {
			continue
		}
		var wop wal.Op
		switch ops[i].Kind {
		case workload.OpStore:
			wop = wal.OpPut
		case workload.OpDelete:
			wop = wal.OpDelete
		default:
			continue
		}
		recs = append(recs, wal.Record{
			Op:    wop,
			Sig:   s.scheme.Compute(ops[i].Key).Lo,
			Key:   ops[i].Key,
			Value: ops[i].Value,
		})
		owners = append(owners, i)
	}
	if len(recs) == 0 {
		return
	}
	first := sh.log.ReserveSeqs(len(recs))
	for j := range recs {
		recs[j].Seq = first + uint64(j)
	}
	if err := sh.log.Append(recs); err != nil {
		for _, i := range owners {
			errs[i] = err
		}
	}
}

// stopCommitters shuts down every shard's committer and waits for
// in-flight groups to finish. Mutations submitted after this panic on
// the closed channel, matching the "no commands after Close" contract.
func (s *Set) stopCommitters() {
	if !s.WALAttached() || !s.walStopped.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range s.shards {
		close(sh.commitCh)
	}
	s.walWG.Wait()
}

// CheckpointWAL is the log half of a checkpoint: each shard's log is
// synced and its horizon advanced to the highest sequence the device
// checkpoint covered, unlocking compaction beneath it. Compaction runs
// inline here (it reads only sealed, immutable segments, so appends
// continue concurrently).
func (s *Set) checkpointWAL(horizons []uint64) error {
	var errs []error
	for i, sh := range s.shards {
		if sh.log == nil {
			continue
		}
		if err := sh.log.SetHorizon(horizons[i]); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		if _, err := sh.log.Compact(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: compact: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// WALStats merges every shard's log counters; zero value when no WAL
// is attached.
func (s *Set) WALStats() wal.Stats {
	var out wal.Stats
	for _, sh := range s.shards {
		if sh.log == nil {
			continue
		}
		st := sh.log.Stats()
		out.Merge(&st)
	}
	return out
}
