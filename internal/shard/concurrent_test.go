package shard

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/device"
	"repro/internal/workload"
)

// migrating reports whether shard i's index has an incremental
// re-configuration in flight.
func migrating(s *Set, i int) bool {
	m, ok := s.Shard(i).Device().Index().(interface{ Migrating() bool })
	return ok && m.Migrating()
}

// TestReaderHeavySchedule runs the read path's intended deployment
// shape under -race: 8 reader goroutines hammering a stable
// pre-populated key set through the shared (RLock) path while 2 writer
// goroutines churn a disjoint key range hard enough to trigger
// incremental re-configurations on the same shard. Readers must always
// see their keys' exact values — never a torn read, never a phantom
// miss — and the run must end with reads flowing through the shared
// path again once migrations drain.
func TestReaderHeavySchedule(t *testing.T) {
	set, err := New(1, device.Config{
		Capacity:          64 << 20,
		IncrementalResize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Stable keys: written once, then only read.
	const stable = 400
	stableVal := func(id uint64) []byte {
		return workload.ValuePayload(id, 64)
	}
	for id := uint64(0); id < stable; id++ {
		if err := set.Store(workload.KeyBytes(id), stableVal(id)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers     = 8
		writers     = 2
		readsPer    = 1500
		writesPer   = 2500
		writerBase  = 1 << 20 // disjoint from the stable ids
		writerRange = 20000
	)
	var wg sync.WaitGroup
	var writersDone atomic.Bool
	errc := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			dst := make([]byte, 0, 128)
			// Run at least readsPer reads, and keep reading until the
			// writers finish so reads overlap every migration window.
			for i := 0; i < readsPer || !writersDone.Load(); i++ {
				id := (seed + uint64(i)) % stable
				v, err := set.RetrieveAppend(dst[:0], workload.KeyBytes(id))
				if err != nil {
					errc <- fmt.Errorf("reader: retrieve %d: %w", id, err)
					return
				}
				if !bytes.Equal(v, stableVal(id)) {
					errc <- fmt.Errorf("reader: key %d value diverged", id)
					return
				}
				dst = v
				if i%5 == 0 {
					ok, err := set.Exist(workload.KeyBytes(id))
					if err != nil || !ok {
						errc <- fmt.Errorf("reader: exist %d = (%v,%v)", id, ok, err)
						return
					}
				}
			}
		}(uint64(r) * 13)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < writesPer; i++ {
				id := writerBase + seed*writerRange + uint64(i)%writerRange
				key := workload.KeyBytes(id)
				if err := set.Store(key, workload.ValuePayload(id, 32)); err != nil {
					errc <- fmt.Errorf("writer: store %d: %w", id, err)
					return
				}
				if i%7 == 3 {
					if err := set.Delete(key); err != nil {
						errc <- fmt.Errorf("writer: delete %d: %w", id, err)
						return
					}
				}
			}
		}(uint64(w))
	}
	go func() {
		// Writers-done flag flips as soon as both writers return; the
		// separate waitgroup pass below still waits for the readers.
		defer writersDone.Store(true)
		writerWG.Wait()
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce: lazy migration drains through the operations themselves.
	for i := 0; migrating(set, 0); i++ {
		if _, err := set.Retrieve(workload.KeyBytes(uint64(i) % stable)); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatal("migration never drained")
		}
	}

	st := set.Stats()
	if st.SharedReads == 0 {
		t.Fatal("no read ever took the shared path")
	}
	if st.Index.Resizes == 0 {
		t.Fatal("writers never triggered a re-configuration; the schedule lost its point")
	}
	if st.LockUpgrades == 0 {
		t.Fatal("no read ever upgraded: reads never overlapped a migration")
	}
	t.Logf("sharedReads=%d lockUpgrades=%d resizes=%d",
		st.SharedReads, st.LockUpgrades, st.Index.Resizes)

	// With the set quiesced and every touched bucket cached, a read must
	// take the shared path.
	before := st.SharedReads
	if _, err := set.Retrieve(workload.KeyBytes(1)); err != nil {
		t.Fatal(err)
	}
	if got := set.Stats().SharedReads; got != before+1 {
		t.Fatalf("quiesced read did not go shared: sharedReads %d -> %d", before, got)
	}
}

// TestReadMidMigrationUpgrades pins the lock-upgrade rule: a read
// arriving while an incremental re-configuration is in flight must
// refuse the shared path (its lookup may have to migrate the touched
// bucket, which mutates index structure), upgrade to the write lock,
// and still return the right value. Once the migration drains, the same
// read flows shared again. Deterministic: single shard, no background
// goroutines.
func TestReadMidMigrationUpgrades(t *testing.T) {
	set, err := New(1, device.Config{
		Capacity:          64 << 20,
		IncrementalResize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Store until a store arms a migration (the device resizes inside
	// afterMutation, so the migration is freshly armed when we stop).
	id := uint64(0)
	for !migrating(set, 0) {
		if err := set.Store(workload.KeyBytes(id), workload.ValuePayload(id, 40)); err != nil {
			t.Fatal(err)
		}
		id++
		if id > 1_000_000 {
			t.Fatal("no incremental resize ever started")
		}
	}

	probe := workload.KeyBytes(0)
	st := set.Stats()
	v, err := set.Retrieve(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, workload.ValuePayload(0, 40)) {
		t.Fatal("mid-migration read returned wrong value")
	}
	after := set.Stats()
	if got := after.LockUpgrades - st.LockUpgrades; got != 1 {
		t.Fatalf("mid-migration read took %d lock upgrades, want exactly 1", got)
	}
	if after.SharedReads != st.SharedReads {
		t.Fatal("mid-migration read counted as shared")
	}

	// Drain the migration with further reads (each migrates its bucket
	// plus the background quota), then the same probe must go shared:
	// one sharedReads tick, zero new upgrades.
	for i := uint64(0); migrating(set, 0); i++ {
		if _, err := set.Retrieve(workload.KeyBytes(i % id)); err != nil {
			t.Fatal(err)
		}
		if i > 1_000_000 {
			t.Fatal("migration never drained")
		}
	}
	st = set.Stats()
	if _, err := set.Retrieve(probe); err != nil {
		t.Fatal(err)
	}
	after = set.Stats()
	if after.SharedReads != st.SharedReads+1 || after.LockUpgrades != st.LockUpgrades {
		t.Fatalf("post-migration read: sharedReads %d->%d upgrades %d->%d, want shared fast path",
			st.SharedReads, after.SharedReads, st.LockUpgrades, after.LockUpgrades)
	}
}

// TestStatsUnderConcurrentReaders is the -race regression for the Stats
// snapshot: merging per-shard counters under the read lock while
// readers run must be race-free.
func TestStatsUnderConcurrentReaders(t *testing.T) {
	set, err := New(2, device.Config{Capacity: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	const keys = 100
	for id := uint64(0); id < keys; id++ {
		if err := set.Store(workload.KeyBytes(id), workload.ValuePayload(id, 24)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := set.Retrieve(workload.KeyBytes((seed + uint64(i)) % keys)); err != nil {
					t.Errorf("retrieve: %v", err)
					return
				}
			}
		}(uint64(r))
	}
	for i := 0; i < 50; i++ {
		st := set.Stats()
		if st.Dev.Retrieves < 0 {
			t.Fatal("impossible snapshot")
		}
	}
	wg.Wait()
	st := set.Stats()
	if got := st.Dev.Retrieves; got != 4*500 {
		t.Fatalf("Retrieves = %d, want %d", got, 4*500)
	}
}
