package shard

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/device"
	"repro/internal/workload"
)

// migrating reports whether shard i's index has an incremental
// re-configuration in flight.
func migrating(s *Set, i int) bool {
	m, ok := s.Shard(i).Device().Index().(interface{ Migrating() bool })
	return ok && m.Migrating()
}

// TestReaderHeavySchedule runs the read path's intended deployment
// shape under -race: 8 reader goroutines hammering a stable
// pre-populated key set through the lock-free optimistic path while 2
// writer goroutines churn a disjoint key range hard enough to trigger
// incremental re-configurations on the same shard. Readers must always
// see their keys' exact values — never a torn read, never a phantom
// miss — and the run must end with reads flowing through the
// optimistic path again once migrations drain.
func TestReaderHeavySchedule(t *testing.T) {
	set, err := New(1, device.Config{
		Capacity:          64 << 20,
		IncrementalResize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Stable keys: written once, then only read.
	const stable = 400
	stableVal := func(id uint64) []byte {
		return workload.ValuePayload(id, 64)
	}
	for id := uint64(0); id < stable; id++ {
		if err := set.Store(workload.KeyBytes(id), stableVal(id)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers     = 8
		writers     = 2
		readsPer    = 1500
		writesPer   = 2500
		writerBase  = 1 << 20 // disjoint from the stable ids
		writerRange = 20000
	)
	var wg sync.WaitGroup
	var writersDone atomic.Bool
	errc := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			dst := make([]byte, 0, 128)
			// Run at least readsPer reads, and keep reading until the
			// writers finish so reads overlap every migration window.
			for i := 0; i < readsPer || !writersDone.Load(); i++ {
				id := (seed + uint64(i)) % stable
				v, err := set.RetrieveAppend(dst[:0], workload.KeyBytes(id))
				if err != nil {
					errc <- fmt.Errorf("reader: retrieve %d: %w", id, err)
					return
				}
				if !bytes.Equal(v, stableVal(id)) {
					errc <- fmt.Errorf("reader: key %d value diverged", id)
					return
				}
				dst = v
				if i%5 == 0 {
					ok, err := set.Exist(workload.KeyBytes(id))
					if err != nil || !ok {
						errc <- fmt.Errorf("reader: exist %d = (%v,%v)", id, ok, err)
						return
					}
				}
			}
		}(uint64(r) * 13)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < writesPer; i++ {
				id := writerBase + seed*writerRange + uint64(i)%writerRange
				key := workload.KeyBytes(id)
				if err := set.Store(key, workload.ValuePayload(id, 32)); err != nil {
					errc <- fmt.Errorf("writer: store %d: %w", id, err)
					return
				}
				if i%7 == 3 {
					if err := set.Delete(key); err != nil {
						errc <- fmt.Errorf("writer: delete %d: %w", id, err)
						return
					}
				}
			}
		}(uint64(w))
	}
	go func() {
		// Writers-done flag flips as soon as both writers return; the
		// separate waitgroup pass below still waits for the readers.
		defer writersDone.Store(true)
		writerWG.Wait()
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce. Optimistic reads of already-migrated buckets no longer
	// advance the migration (that is the point: GETs do not block on or
	// pay for it), so cycling reads over the stable keys cannot be
	// relied on to drain it — checkpoint instead, which drains
	// explicitly.
	if migrating(set, 0) {
		if err := set.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if migrating(set, 0) {
		t.Fatal("migration survived a checkpoint")
	}
	// Re-warm the probe key's bucket (the checkpoint may have been
	// preceded by evictions during churn).
	if _, err := set.Retrieve(workload.KeyBytes(1)); err != nil {
		t.Fatal(err)
	}

	st := set.Stats()
	if st.OptimisticReads == 0 {
		t.Fatal("no read ever took the lock-free path")
	}
	if st.Index.Resizes == 0 {
		t.Fatal("writers never triggered a re-configuration; the schedule lost its point")
	}
	if st.FallbackExclusive == 0 {
		t.Fatal("no read ever fell back: reads never overlapped a migration or a pending pair")
	}
	if st.EpochPins == 0 {
		t.Fatal("no optimistic read ever pinned the reclamation domain")
	}
	t.Logf("optimisticReads=%d retries=%d fallbacks=%d epochPins=%d resizes=%d",
		st.OptimisticReads, st.OptimisticRetries, st.FallbackExclusive,
		st.EpochPins, st.Index.Resizes)

	// With the set quiesced and every touched bucket cached, a read must
	// go lock-free.
	before := st.OptimisticReads
	if _, err := set.Retrieve(workload.KeyBytes(1)); err != nil {
		t.Fatal(err)
	}
	if got := set.Stats().OptimisticReads; got != before+1 {
		t.Fatalf("quiesced read did not go lock-free: optimisticReads %d -> %d", before, got)
	}
}

// TestReadMidMigrationUpgrades pins the fallback rule: a read arriving
// while an incremental re-configuration is in flight, for a bucket the
// migration has not yet produced, must refuse the lock-free path with
// exactly one escalation (ErrNeedExclusive is not retried), re-execute
// under the write lock — which migrates the touched bucket — and still
// return the right value. The SAME key read again immediately goes
// lock-free, because the exclusive pass published its freshly migrated
// bucket. Once the migration drains, the probe stays lock-free.
// Deterministic: single shard, no background goroutines.
func TestReadMidMigrationUpgrades(t *testing.T) {
	set, err := New(1, device.Config{
		Capacity:          64 << 20,
		IncrementalResize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Store until a store arms a migration (the device resizes inside
	// afterMutation, so the migration is freshly armed when we stop).
	// Skip past the first resizes: their old directories are small enough
	// that one or two operations' background quota drains them, and this
	// test needs the migration to outlive the probe read.
	id := uint64(0)
	for !migrating(set, 0) || set.Stats().Index.Resizes < 3 {
		if err := set.Store(workload.KeyBytes(id), workload.ValuePayload(id, 40)); err != nil {
			t.Fatal(err)
		}
		id++
		if id > 1_000_000 {
			t.Fatal("no incremental resize ever started")
		}
	}

	probe := workload.KeyBytes(0)
	st := set.Stats()
	v, err := set.Retrieve(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, workload.ValuePayload(0, 40)) {
		t.Fatal("mid-migration read returned wrong value")
	}
	after := set.Stats()
	if got := after.FallbackExclusive - st.FallbackExclusive; got != 1 {
		t.Fatalf("mid-migration read took %d exclusive fallbacks, want exactly 1", got)
	}
	if after.OptimisticReads != st.OptimisticReads {
		t.Fatal("mid-migration read counted as lock-free")
	}
	if after.OptimisticRetries != st.OptimisticRetries {
		t.Fatal("an unmigrated bucket must escalate immediately, not spin the retry budget")
	}

	// The exclusive pass migrated and published the probe's bucket: the
	// same read now goes lock-free even though the migration is still in
	// flight on other buckets.
	if !migrating(set, 0) {
		t.Fatal("migration drained too early for the re-read to be mid-migration")
	}
	st = set.Stats()
	if _, err := set.Retrieve(probe); err != nil {
		t.Fatal(err)
	}
	after = set.Stats()
	if after.OptimisticReads != st.OptimisticReads+1 || after.FallbackExclusive != st.FallbackExclusive {
		t.Fatalf("re-read of migrated bucket: optimistic %d->%d fallbacks %d->%d, want lock-free",
			st.OptimisticReads, after.OptimisticReads, st.FallbackExclusive, after.FallbackExclusive)
	}

	// Drain the migration with further reads: lock-free reads of
	// already-migrated buckets deliberately contribute nothing, but each
	// not-yet-migrated bucket forces one fallback whose exclusive pass
	// migrates it plus the background quota, so cycling over every key
	// completes the migration.
	for i := uint64(0); migrating(set, 0); i++ {
		if _, err := set.Retrieve(workload.KeyBytes(i % id)); err != nil {
			t.Fatal(err)
		}
		if i > 1_000_000 {
			t.Fatal("migration never drained")
		}
	}
	st = set.Stats()
	if _, err := set.Retrieve(probe); err != nil {
		t.Fatal(err)
	}
	after = set.Stats()
	if after.OptimisticReads != st.OptimisticReads+1 || after.FallbackExclusive != st.FallbackExclusive {
		t.Fatalf("post-migration read: optimistic %d->%d fallbacks %d->%d, want lock-free fast path",
			st.OptimisticReads, after.OptimisticReads, st.FallbackExclusive, after.FallbackExclusive)
	}
}

// TestStatsUnderConcurrentReaders is the -race regression for the Stats
// snapshot: merging per-shard counters under the read lock while
// readers run must be race-free.
func TestStatsUnderConcurrentReaders(t *testing.T) {
	set, err := New(2, device.Config{Capacity: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	const keys = 100
	for id := uint64(0); id < keys; id++ {
		if err := set.Store(workload.KeyBytes(id), workload.ValuePayload(id, 24)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := set.Retrieve(workload.KeyBytes((seed + uint64(i)) % keys)); err != nil {
					t.Errorf("retrieve: %v", err)
					return
				}
			}
		}(uint64(r))
	}
	for i := 0; i < 50; i++ {
		st := set.Stats()
		if st.Dev.Retrieves < 0 {
			t.Fatal("impossible snapshot")
		}
	}
	wg.Wait()
	st := set.Stats()
	if got := st.Dev.Retrieves; got != 4*500 {
		t.Fatalf("Retrieves = %d, want %d", got, 4*500)
	}
}
