package shard

import (
	"bytes"
	"errors"
	"flag"
	"math/rand"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/workload"
)

// modelSeed pins the differential test's RNG; 0 (the default) draws a
// fresh seed per run, which the test logs so any divergence reproduces
// with -model.seed=<logged value>.
var modelSeed = flag.Int64("model.seed", 0, "seed for the model-based differential test (0 = random)")

// TestModelDifferential drives thousands of randomized Store, Retrieve,
// Delete, and Exist commands against a 4-shard Set and a plain
// map[string][]byte oracle, for all three index schemes. Any divergence
// — a wrong value, a phantom key, a missing key, or a mismatched
// membership answer — fails with the op number and the seed that
// reproduces it.
func TestModelDifferential(t *testing.T) {
	schemes := []struct {
		name string
		kind device.IndexKind
	}{
		{"rhik", device.IndexRHIK},
		{"mlhash", device.IndexMultiLevel},
		{"lsm", device.IndexLSM},
	}
	seed := *modelSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			t.Logf("seed=%d (rerun with -model.seed=%d)", seed, seed)
			set, err := New(4, device.Config{Capacity: 16 << 20, Index: sc.kind})
			if err != nil {
				t.Fatal(err)
			}
			defer set.Close()

			rng := rand.New(rand.NewSource(seed))
			oracle := map[string][]byte{}
			const (
				steps    = 4000
				keyspace = 900
			)
			for i := 0; i < steps; i++ {
				id := uint64(rng.Intn(keyspace))
				key := workload.KeyBytes(id)
				switch r := rng.Intn(100); {
				case r < 40: // store / update
					val := workload.ValuePayload(uint64(i), 8+rng.Intn(300))
					err := set.Store(key, val)
					if errors.Is(err, index.ErrCollision) {
						continue // aborted insert: oracle unchanged
					}
					if err != nil {
						t.Fatalf("seed=%d op=%d store %x: %v", seed, i, key, err)
					}
					oracle[string(key)] = val
				case r < 65: // retrieve
					want, present := oracle[string(key)]
					got, err := set.Retrieve(key)
					if present {
						if err != nil {
							t.Fatalf("seed=%d op=%d retrieve %x: %v (oracle has it)", seed, i, key, err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("seed=%d op=%d retrieve %x: value diverges from oracle", seed, i, key)
						}
					} else if !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("seed=%d op=%d retrieve %x: err=%v, oracle says absent", seed, i, key, err)
					}
				case r < 80: // delete
					err := set.Delete(key)
					if _, present := oracle[string(key)]; present {
						if err != nil {
							t.Fatalf("seed=%d op=%d delete %x: %v (oracle has it)", seed, i, key, err)
						}
						delete(oracle, string(key))
					} else if !errors.Is(err, device.ErrNotFound) {
						t.Fatalf("seed=%d op=%d delete %x: err=%v, oracle says absent", seed, i, key, err)
					}
				default: // exist
					ok, err := set.Exist(key)
					if err != nil {
						t.Fatalf("seed=%d op=%d exist %x: %v", seed, i, key, err)
					}
					if _, present := oracle[string(key)]; ok != present {
						t.Fatalf("seed=%d op=%d exist %x: got %v, oracle %v", seed, i, key, ok, present)
					}
				}
			}

			// Closing sweep: every oracle key must be retrievable and no
			// aggregate drift — records count equals the oracle size.
			for k, want := range oracle {
				got, err := set.Retrieve([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("seed=%d final sweep %x: %v", seed, []byte(k), err)
				}
			}
			if got := set.Stats().Index.Records; got != int64(len(oracle)) {
				t.Fatalf("seed=%d records=%d oracle=%d", seed, got, len(oracle))
			}
		})
	}
}
