package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/wal"
	"repro/internal/workload"
)

func newWALSet(t *testing.T, n int, root string, opts wal.Options) *Set {
	t.Helper()
	set, err := New(n, device.Config{Capacity: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.AttachWAL(root, opts); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestWALRecoverAcrossReopen is the core durability property: every
// acknowledged mutation survives Close and replays into a fresh set of
// empty devices.
func TestWALRecoverAcrossReopen(t *testing.T) {
	root := t.TempDir()
	want := map[string]string{}

	set := newWALSet(t, 4, root, wal.Options{})
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%d", i)
		if err := set.Store([]byte(k), []byte(v)); err != nil {
			t.Fatalf("store %s: %v", k, err)
		}
		want[k] = v
	}
	for i := 0; i < 300; i += 3 {
		k := fmt.Sprintf("key-%04d", i)
		if err := set.Delete([]byte(k)); err != nil {
			t.Fatalf("delete %s: %v", k, err)
		}
		delete(want, k)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh devices: everything they held died with Close. Replay must
	// reconstruct want exactly.
	set2 := newWALSet(t, 4, root, wal.Options{})
	defer set2.Close()
	for k, v := range want {
		got, err := set2.Retrieve([]byte(k))
		if err != nil {
			t.Fatalf("retrieve %s after recovery: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("key %s = %q want %q", k, got, v)
		}
	}
	for i := 0; i < 300; i += 3 {
		k := fmt.Sprintf("key-%04d", i)
		if ok, _ := set2.Exist([]byte(k)); ok {
			t.Fatalf("deleted key %s resurrected by replay", k)
		}
	}
}

// TestWALGroupCommitConcurrentWriters drives many goroutines through
// the committer and checks both correctness and that grouping actually
// happened (fewer appends than records).
func TestWALGroupCommitConcurrentWriters(t *testing.T) {
	root := t.TempDir()
	set := newWALSet(t, 2, root, wal.Options{Fsync: wal.FsyncGroup})
	const writers, perWriter = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%04d", w, i)
				if err := set.Store([]byte(k), []byte(k)); err != nil {
					t.Errorf("store %s: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := set.WALStats()
	if st.Records != writers*perWriter {
		t.Fatalf("logged %d records want %d", st.Records, writers*perWriter)
	}
	if st.Groups >= st.Records {
		t.Logf("no grouping observed (%d groups for %d records) — legal but unexpected under contention", st.Groups, st.Records)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	set2 := newWALSet(t, 2, root, wal.Options{})
	defer set2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%02d-%04d", w, i)
			got, err := set2.Retrieve([]byte(k))
			if err != nil || !bytes.Equal(got, []byte(k)) {
				t.Fatalf("key %s after recovery: %q, %v", k, got, err)
			}
		}
	}
}

// TestWALBatchApplyJournaled: the Apply fast path must journal its
// mutations too, or batch-loaded data would vanish on reopen.
func TestWALBatchApplyJournaled(t *testing.T) {
	root := t.TempDir()
	set := newWALSet(t, 2, root, wal.Options{})
	ops := make([]Op, 0, 200)
	for i := 0; i < 200; i++ {
		ops = append(ops, Op{
			Kind:  workload.OpStore,
			Key:   []byte(fmt.Sprintf("batch-%04d", i)),
			Value: []byte(fmt.Sprintf("bv-%d", i)),
		})
	}
	res := set.Apply(ops, 0)
	for i, err := range res.Errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	set.Close()

	set2 := newWALSet(t, 2, root, wal.Options{})
	defer set2.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("batch-%04d", i)
		got, err := set2.Retrieve([]byte(k))
		if err != nil || string(got) != fmt.Sprintf("bv-%d", i) {
			t.Fatalf("batch key %s after recovery: %q, %v", k, got, err)
		}
	}
}

// TestWALCheckpointCompacts: checkpoints advance the horizon and fold
// covered segments, and recovery after compaction is still exact.
func TestWALCheckpointCompacts(t *testing.T) {
	root := t.TempDir()
	// Tiny segments so overwrite churn seals plenty of them.
	set := newWALSet(t, 1, root, wal.Options{SegmentSize: 4096})
	val := bytes.Repeat([]byte("x"), 256)
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("churn-%d", i)
			if err := set.Store([]byte(k), append(val, byte(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := set.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := set.WALStats()
	if st.Compactions == 0 || st.SegmentsRemoved == 0 {
		t.Fatalf("checkpoint did not compact: %+v", st)
	}
	set.Close()

	set2 := newWALSet(t, 1, root, wal.Options{SegmentSize: 4096})
	defer set2.Close()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("churn-%d", i)
		got, err := set2.Retrieve([]byte(k))
		if err != nil {
			t.Fatalf("retrieve %s: %v", k, err)
		}
		if got[len(got)-1] != 19 {
			t.Fatalf("key %s recovered stale round %d", k, got[len(got)-1])
		}
	}
}

// TestWALTopologyMismatchRefused: reopening the same WAL root with a
// different shard count must fail instead of replaying keys into the
// wrong shards.
func TestWALTopologyMismatchRefused(t *testing.T) {
	root := t.TempDir()
	set := newWALSet(t, 4, root, wal.Options{})
	set.Store([]byte("k"), []byte("v"))
	set.Close()

	set2, err := New(2, device.Config{Capacity: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if _, err := set2.AttachWAL(root, wal.Options{}); err == nil {
		t.Fatal("shard-count change accepted against existing WAL")
	}
}

// TestWALFailedOpsNotLogged: a store the device rejects must not be
// acknowledged as durable nor replayed later.
func TestWALFailedOpsNotLogged(t *testing.T) {
	root := t.TempDir()
	set := newWALSet(t, 1, root, wal.Options{})
	big := bytes.Repeat([]byte("z"), 64<<20) // larger than any erase block
	if err := set.Store([]byte("huge"), big); err == nil {
		t.Skip("device accepted a 64 MiB value; cannot provoke a failed op")
	}
	if st := set.WALStats(); st.Records != 0 {
		t.Fatalf("failed store was journaled: %+v", st)
	}
	set.Close()
	set2 := newWALSet(t, 1, root, wal.Options{})
	defer set2.Close()
	if ok, _ := set2.Exist([]byte("huge")); ok {
		t.Fatal("failed store resurrected by replay")
	}
}
