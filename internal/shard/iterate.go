package shard

import (
	"bytes"
	"sync"

	"repro/internal/device"
)

// Iterate enumerates keys sharing prefix across every shard and merges
// the per-shard sorted streams into one sorted result. Routing uses the
// high signature bits while iterator-mode signatures reserve the low 32
// bits for the prefix, so a prefix's keys are spread over all shards but
// stay clustered within each: the fan-out costs one bounded bucket scan
// per shard, executed concurrently.
func (s *Set) Iterate(prefix []byte) ([]device.IterEntry, error) {
	per := make([][]device.IterEntry, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			entries, done, err := sh.dev.Iterate(sh.last.Load(), prefix, true)
			if err != nil {
				errs[i] = err
				return
			}
			sh.last.AdvanceTo(done)
			per[i] = entries
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeSorted(per), nil
}

// mergeSorted merges per-shard key-sorted entry lists. Shards own
// disjoint signature ranges, so keys never repeat across lists.
func mergeSorted(lists [][]device.IterEntry) []device.IterEntry {
	live := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]device.IterEntry, 0, total)
	heads := make([]int, len(live))
	for len(out) < total {
		best := -1
		for i, l := range live {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || bytes.Compare(l[heads[i]].Key, live[best][heads[best]].Key) < 0 {
				best = i
			}
		}
		out = append(out, live[best][heads[best]])
		heads[best]++
	}
	return out
}
