// Package shard implements the sharded front-end of the emulated KVSSD:
// N independent device instances — each with its own lock, simulated
// clock, and index — behind a signature-based router. Real KVSSDs spread
// work across channels; here each shard models one such channel-group,
// so N shards execute commands with true host-side parallelism while
// every shard individually preserves the paper's per-device semantics
// (resize, GC, and collision accounting stay per-shard).
//
// Routing uses the TOP log2(N) bits of the key signature. The RHIK
// directory consumes the LOW signature bits (sig.Lo & (dirSize-1)), and
// iterator-mode signatures dedicate the low 32 bits to the key prefix,
// so routing on high bits keeps per-shard directories dense and leaves
// prefix locality intact. Prefix iteration therefore fans out to every
// shard and merges the per-shard sorted results.
//
// Locking model: each shard carries a sync.RWMutex. Mutating commands
// (Store, Delete, Iterate, checkpoint/restart/close, batches) hold the
// write lock. Retrieve and Exist on an optimistic-capable device (RHIK)
// take NO shard-level lock on the hot path: the device's
// TryRetrieveOptimistic/TryExistOptimistic validate against per-table
// seqlocks and epoch-pinned reclamation, returning ErrOptimisticRetry
// when a concurrent writer invalidated the attempt (retried up to
// maxOptimisticRetries) or ErrNeedExclusive when the lookup must mutate
// index structure (cache miss, unmigrated bucket) — then the shard
// falls back to the write lock and re-executes. Devices without an
// optimistic surface (mlhash, lsm) keep the legacy shared tier: the
// read lock plus TryRetrieveShared/TryExistShared, upgrading to the
// write lock on refusal. Optimistic reads therefore run concurrently
// with writers — not just with each other — mutating only atomics
// (clock advances, counters, CLOCK ref bits) along the way.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/sim"
	"repro/internal/wal"
)

// maxOptimisticRetries bounds how many times a read retries the
// lock-free path after ErrOptimisticRetry before falling back to the
// exclusive lock. Retries are cheap (the refusal is made before most
// charges), but a reader starved by a pathological write storm must
// eventually make progress under the lock.
const maxOptimisticRetries = 3

// Shard is one emulated device plus the host-side submission state for
// its command stream. The RWMutex serializes commands on this shard
// only; commands on different shards run concurrently, and read
// commands on the same shard run lock-free (optimistic tier) or under
// the read lock (legacy shared tier) when the index answers from DRAM.
type Shard struct {
	mu   sync.RWMutex
	dev  *device.Device
	last sim.AtomicTime // completion of the previous synchronous command
	opt  bool           // device supports the lock-free read tier

	// log and commitCh are non-nil once AttachWAL has run: mutations are
	// then journaled to the per-shard commit log, and the synchronous
	// Store/Delete paths hand off to the group committer instead of
	// taking the shard lock themselves.
	log      *wal.Log
	commitCh chan *walReq

	sharedReads  atomic.Int64 // reads served under the read lock (legacy tier)
	lockUpgrades atomic.Int64 // legacy-tier reads that retried exclusively

	optimisticReads   atomic.Int64 // reads served with no shard lock at all
	optimisticRetries atomic.Int64 // lock-free attempts invalidated by a racing writer
	fallbackExclusive atomic.Int64 // reads that escalated to the write lock
}

// Device exposes the shard's device. Callers must not issue commands
// concurrently with Set operations; tools use this between phases.
func (s *Shard) Device() *device.Device { return s.dev }

// Set is a group of 2^k shards behind a signature router.
type Set struct {
	shards []*Shard
	scheme index.SigScheme
	shift  uint // 64 - log2(len(shards)); Lo >> shift selects the shard

	forceExclusive atomic.Bool // route reads through the write lock

	snapsOpen atomic.Int64 // open SetSnapshots
	snapReads atomic.Int64 // point reads served through snapshots

	walWG      sync.WaitGroup // committer goroutines
	walStopped atomic.Bool    // committers shut down (Close)
}

// New opens n fresh shards, each configured with cfg. n must be a power
// of two; the caller is responsible for dividing device-wide budgets
// (capacity, cache, anticipated keys) across the per-shard cfg.
func New(n int, cfg device.Config) (*Set, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, errors.New("shard: shard count must be a power of two >= 1")
	}
	s := &Set{shards: make([]*Shard, n)}
	k := uint(0)
	for 1<<k < n {
		k++
	}
	s.shift = 64 - k
	for i := range s.shards {
		dev, err := device.Open(cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &Shard{dev: dev, opt: dev.SupportsOptimisticReads()}
	}
	s.scheme = s.shards[0].dev.Scheme()
	return s, nil
}

// N reports the shard count.
func (s *Set) N() int { return len(s.shards) }

// Shard returns shard i.
func (s *Set) Shard(i int) *Shard { return s.shards[i] }

// ForceExclusiveReads routes Retrieve/Exist through the write lock like
// any mutation, disabling the shared fast path. Benchmark/experiment
// knob for quantifying what reader concurrency buys.
func (s *Set) ForceExclusiveReads(v bool) { s.forceExclusive.Store(v) }

// RouteKey reports which shard owns key.
func (s *Set) RouteKey(key []byte) int {
	return s.route(s.scheme.Compute(key))
}

func (s *Set) route(sig index.Sig) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(sig.Lo >> s.shift)
}

func (s *Set) shardOf(key []byte) *Shard {
	return s.shards[s.route(s.scheme.Compute(key))]
}

// Store routes a synchronous put to the owning shard. The call observes
// the command's full simulated round trip on that shard's timeline.
// With a WAL attached the put joins the shard's group commit and is
// acknowledged only after its log record is written (and, under
// fsync=always, synced).
func (s *Set) Store(key, value []byte) error {
	sh := s.shardOf(key)
	if sh.commitCh != nil {
		return sh.commit(wal.OpPut, key, value)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done, err := sh.dev.Store(sh.last.Load(), key, value)
	if err != nil {
		return err
	}
	// A direct (WAL-less) mutation is a one-op batch: fold it into the
	// write epoch before the lock drops, so a snapshot captured next
	// observes it with a closed epoch.
	sh.dev.AdvanceEpoch()
	sh.last.AdvanceTo(done)
	return nil
}

// Retrieve routes a synchronous get to the owning shard. DRAM-resident
// lookups run under the shard's read lock, concurrently with other
// reads; anything that would touch flash for metadata upgrades to the
// write lock and re-executes.
func (s *Set) Retrieve(key []byte) ([]byte, error) {
	v, err := s.RetrieveAppend(nil, key)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// RetrieveAppend is Retrieve with the value appended to dst, letting
// callers reuse one buffer across gets (the allocation-free hot path).
// On error dst is returned unchanged.
func (s *Set) RetrieveAppend(dst, key []byte) ([]byte, error) {
	sh := s.shardOf(key)
	if !s.forceExclusive.Load() {
		if sh.opt {
			// Lock-free tier: no shard lock at all. ErrOptimisticRetry
			// means a racing writer invalidated the attempt — try again
			// up to the retry budget; ErrNeedExclusive means only the
			// write lock can serve it (page-in, lazy migration, value
			// still in a volatile buffer).
			for attempt := 0; ; attempt++ {
				v, done, err := sh.dev.TryRetrieveOptimistic(sh.last.Load(), key, dst)
				if err == nil {
					sh.last.AdvanceTo(done)
					sh.optimisticReads.Add(1)
					return v, nil
				}
				if errors.Is(err, index.ErrOptimisticRetry) {
					sh.optimisticRetries.Add(1)
					if attempt < maxOptimisticRetries {
						continue
					}
					break
				}
				if errors.Is(err, index.ErrNeedExclusive) {
					break
				}
				return dst, err
			}
			sh.fallbackExclusive.Add(1)
		} else {
			sh.mu.RLock()
			v, done, err := sh.dev.TryRetrieveShared(sh.last.Load(), key, dst)
			if err == nil {
				sh.last.AdvanceTo(done)
				sh.mu.RUnlock()
				sh.sharedReads.Add(1)
				return v, nil
			}
			sh.mu.RUnlock()
			if !errors.Is(err, index.ErrNeedExclusive) {
				return dst, err
			}
			// Lock upgrade: the lookup needs to restructure index state
			// (page-in, lazy migration). No simulated time was charged, so
			// re-executing exclusively repeats nothing.
			sh.lockUpgrades.Add(1)
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, done, err := sh.dev.RetrieveAppend(sh.last.Load(), key, dst)
	if err != nil {
		return dst, err
	}
	sh.last.AdvanceTo(done)
	return v, nil
}

// Delete routes a synchronous delete to the owning shard, through the
// group committer when a WAL is attached.
func (s *Set) Delete(key []byte) error {
	sh := s.shardOf(key)
	if sh.commitCh != nil {
		return sh.commit(wal.OpDelete, key, nil)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done, err := sh.dev.Delete(sh.last.Load(), key)
	if err != nil {
		return err
	}
	sh.dev.AdvanceEpoch()
	sh.last.AdvanceTo(done)
	return nil
}

// Exist routes a synchronous membership check to the owning shard,
// using the same optimistic-then-fallback (or shared-then-upgrade)
// path as Retrieve.
func (s *Set) Exist(key []byte) (bool, error) {
	sh := s.shardOf(key)
	if !s.forceExclusive.Load() {
		if sh.opt {
			for attempt := 0; ; attempt++ {
				ok, done, err := sh.dev.TryExistOptimistic(sh.last.Load(), key)
				if err == nil {
					sh.last.AdvanceTo(done)
					sh.optimisticReads.Add(1)
					return ok, nil
				}
				if errors.Is(err, index.ErrOptimisticRetry) {
					sh.optimisticRetries.Add(1)
					if attempt < maxOptimisticRetries {
						continue
					}
					break
				}
				if errors.Is(err, index.ErrNeedExclusive) {
					break
				}
				return false, err
			}
			sh.fallbackExclusive.Add(1)
		} else {
			sh.mu.RLock()
			ok, done, err := sh.dev.TryExistShared(sh.last.Load(), key)
			if err == nil {
				sh.last.AdvanceTo(done)
				sh.mu.RUnlock()
				sh.sharedReads.Add(1)
				return ok, nil
			}
			sh.mu.RUnlock()
			if !errors.Is(err, index.ErrNeedExclusive) {
				return false, err
			}
			sh.lockUpgrades.Add(1)
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ok, done, err := sh.dev.Exist(sh.last.Load(), key)
	if err != nil {
		return false, err
	}
	sh.last.AdvanceTo(done)
	return ok, nil
}

// Checkpoint makes accepted writes durable on every shard. Per-shard
// failures are annotated with the shard index and joined, so callers
// can unwrap which shard failed (errors.Is still matches the cause).
//
// With a WAL attached, each shard's checkpoint also stamps the log's
// compaction horizon with the highest sequence number the checkpoint
// covered — captured under the shard lock, so it is exactly the set of
// applied mutations — and then runs a compaction pass folding the
// segments beneath it.
func (s *Set) Checkpoint() error {
	var errs []error
	horizons := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		} else if sh.log != nil {
			horizons[i] = sh.log.LastSeq()
		}
		sh.mu.Unlock()
	}
	if s.WALAttached() {
		if err := s.checkpointWAL(horizons); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Restart power-cycles every shard: one device-wide crash takes all
// channels down together, and each shard recovers independently.
// Per-shard failures are annotated with the shard index and joined.
func (s *Set) Restart() error {
	var errs []error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Restart(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		} else {
			sh.last.Store(sh.dev.Now())
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Close checkpoints and shuts down every shard. Per-shard failures are
// annotated with the shard index and joined; a partial failure still
// closes the remaining shards. With a WAL attached, the group
// committers drain and stop before the devices close, then a final
// checkpoint stamps each log's compaction horizon and folds the
// segments beneath it — a graceful shutdown leaves a compacted log, so
// the next start replays only what a fresh device needs — and each log
// is synced and closed; no mutations may be submitted after Close.
func (s *Set) Close() error {
	s.stopCommitters()
	var errs []error
	if s.WALAttached() {
		if err := s.Checkpoint(); err != nil {
			errs = append(errs, err)
		}
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
		if sh.log != nil {
			if err := sh.log.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Elapsed merges the per-shard clocks into device-wide elapsed time.
// Shards execute in parallel — they model independent channel groups —
// so the merged value is the maximum over shards of that shard's drain
// time and last synchronous completion, not the sum.
func (s *Set) Elapsed() sim.Duration {
	var m sim.Time
	for _, sh := range s.shards {
		sh.mu.RLock()
		t := sh.dev.Drain()
		if last := sh.last.Load(); last > t {
			t = last
		}
		sh.mu.RUnlock()
		if t > m {
			m = t
		}
	}
	return sim.Duration(m)
}
