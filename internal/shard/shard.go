// Package shard implements the sharded front-end of the emulated KVSSD:
// N independent device instances — each with its own lock, simulated
// clock, and index — behind a signature-based router. Real KVSSDs spread
// work across channels; here each shard models one such channel-group,
// so N shards execute commands with true host-side parallelism while
// every shard individually preserves the paper's per-device semantics
// (resize, GC, and collision accounting stay per-shard).
//
// Routing uses the TOP log2(N) bits of the key signature. The RHIK
// directory consumes the LOW signature bits (sig.Lo & (dirSize-1)), and
// iterator-mode signatures dedicate the low 32 bits to the key prefix,
// so routing on high bits keeps per-shard directories dense and leaves
// prefix locality intact. Prefix iteration therefore fans out to every
// shard and merges the per-shard sorted results.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/sim"
)

// Shard is one emulated device plus the host-side submission state for
// its command stream. The mutex serializes commands on this shard only;
// commands on different shards run concurrently.
type Shard struct {
	mu   sync.Mutex
	dev  *device.Device
	last sim.Time // completion of the previous synchronous command
}

// Device exposes the shard's device. Callers must not issue commands
// concurrently with Set operations; tools use this between phases.
func (s *Shard) Device() *device.Device { return s.dev }

// Set is a group of 2^k shards behind a signature router.
type Set struct {
	shards []*Shard
	scheme index.SigScheme
	shift  uint // 64 - log2(len(shards)); Lo >> shift selects the shard
}

// New opens n fresh shards, each configured with cfg. n must be a power
// of two; the caller is responsible for dividing device-wide budgets
// (capacity, cache, anticipated keys) across the per-shard cfg.
func New(n int, cfg device.Config) (*Set, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, errors.New("shard: shard count must be a power of two >= 1")
	}
	s := &Set{shards: make([]*Shard, n)}
	k := uint(0)
	for 1<<k < n {
		k++
	}
	s.shift = 64 - k
	for i := range s.shards {
		dev, err := device.Open(cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &Shard{dev: dev}
	}
	s.scheme = s.shards[0].dev.Scheme()
	return s, nil
}

// N reports the shard count.
func (s *Set) N() int { return len(s.shards) }

// Shard returns shard i.
func (s *Set) Shard(i int) *Shard { return s.shards[i] }

// RouteKey reports which shard owns key.
func (s *Set) RouteKey(key []byte) int {
	return s.route(s.scheme.Compute(key))
}

func (s *Set) route(sig index.Sig) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(sig.Lo >> s.shift)
}

func (s *Set) shardOf(key []byte) *Shard {
	return s.shards[s.route(s.scheme.Compute(key))]
}

// Store routes a synchronous put to the owning shard. The call observes
// the command's full simulated round trip on that shard's timeline.
func (s *Set) Store(key, value []byte) error {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done, err := sh.dev.Store(sh.last, key, value)
	if err != nil {
		return err
	}
	sh.last = done
	return nil
}

// Retrieve routes a synchronous get to the owning shard.
func (s *Set) Retrieve(key []byte) ([]byte, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, done, err := sh.dev.Retrieve(sh.last, key)
	if err != nil {
		return nil, err
	}
	sh.last = done
	return v, nil
}

// Delete routes a synchronous delete to the owning shard.
func (s *Set) Delete(key []byte) error {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done, err := sh.dev.Delete(sh.last, key)
	if err != nil {
		return err
	}
	sh.last = done
	return nil
}

// Exist routes a synchronous membership check to the owning shard.
func (s *Set) Exist(key []byte) (bool, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ok, done, err := sh.dev.Exist(sh.last, key)
	if err != nil {
		return false, err
	}
	sh.last = done
	return ok, nil
}

// Checkpoint makes accepted writes durable on every shard. Per-shard
// failures are annotated with the shard index and joined, so callers
// can unwrap which shard failed (errors.Is still matches the cause).
func (s *Set) Checkpoint() error {
	var errs []error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Restart power-cycles every shard: one device-wide crash takes all
// channels down together, and each shard recovers independently.
// Per-shard failures are annotated with the shard index and joined.
func (s *Set) Restart() error {
	var errs []error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Restart(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		} else {
			sh.last = sh.dev.Now()
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Close checkpoints and shuts down every shard. Per-shard failures are
// annotated with the shard index and joined; a partial failure still
// closes the remaining shards.
func (s *Set) Close() error {
	var errs []error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.dev.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Elapsed merges the per-shard clocks into device-wide elapsed time.
// Shards execute in parallel — they model independent channel groups —
// so the merged value is the maximum over shards of that shard's drain
// time and last synchronous completion, not the sum.
func (s *Set) Elapsed() sim.Duration {
	var m sim.Time
	for _, sh := range s.shards {
		sh.mu.Lock()
		t := sh.dev.Drain()
		if sh.last > t {
			t = sh.last
		}
		sh.mu.Unlock()
		if t > m {
			m = t
		}
	}
	return sim.Duration(m)
}
