package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/wal"
	"repro/internal/workload"
)

// newWALBenchSet builds a single-shard set — one shard concentrates all
// writers on one exclusive lock, the scenario group commit exists for —
// optionally fronted by a WAL with the given fsync policy.
func newWALBenchSet(b *testing.B, policy wal.FsyncPolicy, attach bool) *Set {
	b.Helper()
	set, err := New(1, device.Config{Capacity: 512 << 20, AnticipatedKeys: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	if attach {
		if _, err := set.AttachWAL(b.TempDir(), wal.Options{Fsync: policy}); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { set.Close() })
	return set
}

// runConcurrentPuts fans b.N puts over g writer goroutines, each
// overwriting its own slice of a fixed key space.
func runConcurrentPuts(b *testing.B, set *Set, g int) {
	const keysPerWriter = 1 << 10
	val := workload.ValuePayload(7, 100)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * keysPerWriter
			for i := 0; i < per; i++ {
				key := workload.KeyBytes(base + uint64(i)%keysPerWriter)
				if err := set.Store(key, val); err != nil {
					b.Errorf("store: %v", err)
					return
				}
			}
		}(w)
	}
	// Remainder ops on the benchmark goroutine keep b.N exact.
	for i := 0; i < b.N-per*g; i++ {
		if err := set.Store(workload.KeyBytes(uint64(i)%keysPerWriter), val); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
}

// BenchmarkWALPut measures PUT throughput against one shard at 1/8/64
// concurrent writers, in three durability modes:
//
//   - nowal: the direct path — each put takes the shard lock itself.
//     The baseline the WAL's overhead is measured against.
//   - group: the durable write front with group fsync. Concurrent puts
//     coalesce into one lock acquisition, one device-apply run, and one
//     log append per burst; fsyncs amortize over whole bursts. The gap
//     versus nowal is the price of durability; the scaling from 1 to 64
//     writers is what group commit buys.
//   - always: every group is fsynced before acknowledgment. At 1 writer
//     this serializes on storage flush latency; at 64 writers the
//     committer amortizes each fsync over the whole burst.
func BenchmarkWALPut(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("nowal/writers=%d", writers), func(b *testing.B) {
			set := newWALBenchSet(b, wal.FsyncGroup, false)
			runConcurrentPuts(b, set, writers)
		})
		b.Run(fmt.Sprintf("group/writers=%d", writers), func(b *testing.B) {
			set := newWALBenchSet(b, wal.FsyncGroup, true)
			runConcurrentPuts(b, set, writers)
		})
		b.Run(fmt.Sprintf("always/writers=%d", writers), func(b *testing.B) {
			set := newWALBenchSet(b, wal.FsyncAlways, true)
			runConcurrentPuts(b, set, writers)
		})
	}
}
