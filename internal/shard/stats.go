package shard

import (
	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/nand"
)

// Stats is the aggregated observability snapshot of a shard set.
// Counters sum across shards; Recoveries is the maximum instead, because
// a Restart power-cycles every shard as one device-wide event. Latency
// histograms are exact merges of the per-shard distributions.
type Stats struct {
	Dev    device.Stats
	Index  index.Stats
	Flash  nand.Stats
	Scheme string

	StoreLat    metrics.Histogram
	RetrieveLat metrics.Histogram
	MetaPerOp   metrics.Histogram
}

// Stats locks each shard in turn and merges its counters and histograms.
func (s *Set) Stats() Stats {
	var out Stats
	out.Scheme = s.shards[0].dev.Index().Name()
	for _, sh := range s.shards {
		sh.mu.Lock()
		ds := sh.dev.Stats()
		is := sh.dev.IndexStats()
		fs := sh.dev.FlashStats()

		out.Dev.Stores += ds.Stores
		out.Dev.Retrieves += ds.Retrieves
		out.Dev.Deletes += ds.Deletes
		out.Dev.Exists += ds.Exists
		out.Dev.Iterates += ds.Iterates
		out.Dev.BytesWritten += ds.BytesWritten
		out.Dev.BytesRead += ds.BytesRead
		out.Dev.GCRuns += ds.GCRuns
		out.Dev.GCPagesMoved += ds.GCPagesMoved
		out.Dev.GCBytesMoved += ds.GCBytesMoved
		out.Dev.Checkpoints += ds.Checkpoints
		out.Dev.ResizeHalt += ds.ResizeHalt
		out.Dev.CollisionAborts += ds.CollisionAborts
		if ds.Recoveries > out.Dev.Recoveries {
			out.Dev.Recoveries = ds.Recoveries
		}

		out.Index.Records += is.Records
		out.Index.Collisions += is.Collisions
		out.Index.Resizes += is.Resizes
		out.Index.DirEntries += is.DirEntries
		out.Index.DRAMBytes += is.DRAMBytes
		out.Index.Cache.Hits += is.Cache.Hits
		out.Index.Cache.Misses += is.Cache.Misses

		out.Flash.Reads += fs.Reads
		out.Flash.Programs += fs.Programs
		out.Flash.Erases += fs.Erases
		out.Flash.ReadBytes += fs.ReadBytes
		out.Flash.WriteBytes += fs.WriteBytes

		out.StoreLat.Merge(sh.dev.StoreLatency())
		out.RetrieveLat.Merge(sh.dev.RetrieveLatency())
		out.MetaPerOp.Merge(sh.dev.MetaReadsPerOp())
		sh.mu.Unlock()
	}
	return out
}

// ResizeEvents concatenates each shard's re-configuration history in
// shard order.
func (s *Set) ResizeEvents() []index.ResizeEvent {
	var out []index.ResizeEvent
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.dev.ResizeEvents()...)
		sh.mu.Unlock()
	}
	return out
}
