package shard

import (
	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/wal"
)

// Stats is the aggregated observability snapshot of a shard set.
// Counters sum across shards; Recoveries is the maximum instead, because
// a Restart power-cycles every shard as one device-wide event. Latency
// histograms are exact merges of the per-shard distributions.
//
// Consistency: the snapshot is taken under each shard's READ lock in
// turn, so reads may execute concurrently with it (and writes on shards
// not currently being visited). Every underlying counter is atomic, so
// each individual value is exact at its load instant, but the snapshot
// is per-shard-atomic at best — not a single consistent cut across
// shards, and cross-counter invariants (e.g. hits+misses == lookups)
// may be off by in-flight operations. For an exact global snapshot,
// quiesce the workload first.
type Stats struct {
	Dev    device.Stats
	Index  index.Stats
	Flash  nand.Stats
	Scheme string

	// SharedReads counts Retrieve/Exist commands served entirely under
	// the shard read lock (legacy tier for indexes without an optimistic
	// surface); LockUpgrades counts the ones that had to release it and
	// re-execute exclusively (index page-in, pending incremental-resize
	// migration).
	SharedReads  int64
	LockUpgrades int64

	// OptimisticReads counts Retrieve/Exist commands served with no
	// shard-level lock at all, validated by seqlock versions under an
	// epoch pin. OptimisticRetries counts lock-free attempts a racing
	// writer invalidated (each retried in place); FallbackExclusive
	// counts reads that escalated to the write lock after exhausting
	// retries or hitting non-resident state. EpochPins is the device
	// total of successful reader pins on the reclamation domain.
	OptimisticReads   int64
	OptimisticRetries int64
	FallbackExclusive int64
	EpochPins         int64

	// SnapshotsOpen is the number of currently-open set snapshots;
	// SnapshotReads counts point reads served through any snapshot
	// (fast path or frozen view) since the set opened.
	SnapshotsOpen int64
	SnapshotReads int64

	StoreLat    metrics.Histogram
	RetrieveLat metrics.Histogram
	MetaPerOp   metrics.Histogram
	// MetaPerGet is the flash-reads-per-retrieve distribution only —
	// the per-GET cost RHIK bounds at one flash read.
	MetaPerGet metrics.Histogram

	// WAL merges the per-shard commit-log counters; WALAttached is false
	// (and WAL zero) when the set runs without a durable write front.
	WALAttached bool
	WAL         wal.Stats
}

// Stats visits each shard under its read lock and merges counters and
// histograms. See the Stats type for the consistency contract.
func (s *Set) Stats() Stats {
	var out Stats
	out.Scheme = s.shards[0].dev.Index().Name()
	out.SnapshotsOpen = s.snapsOpen.Load()
	out.SnapshotReads = s.snapReads.Load()
	for _, sh := range s.shards {
		sh.mu.RLock()
		ds := sh.dev.Stats()
		is := sh.dev.IndexStats()
		fs := sh.dev.FlashStats()

		out.Dev.Stores += ds.Stores
		out.Dev.Retrieves += ds.Retrieves
		out.Dev.Deletes += ds.Deletes
		out.Dev.Exists += ds.Exists
		out.Dev.Iterates += ds.Iterates
		out.Dev.BytesWritten += ds.BytesWritten
		out.Dev.BytesRead += ds.BytesRead
		out.Dev.GCRuns += ds.GCRuns
		out.Dev.GCPagesMoved += ds.GCPagesMoved
		out.Dev.GCBytesMoved += ds.GCBytesMoved
		out.Dev.Checkpoints += ds.Checkpoints
		out.Dev.ResizeHalt += ds.ResizeHalt
		out.Dev.CollisionAborts += ds.CollisionAborts
		out.Dev.ValueCacheHits += ds.ValueCacheHits
		out.Dev.ValueCacheMisses += ds.ValueCacheMisses
		out.Dev.PrefetchHits += ds.PrefetchHits
		if ds.Recoveries > out.Dev.Recoveries {
			out.Dev.Recoveries = ds.Recoveries
		}

		out.Index.Records += is.Records
		out.Index.Collisions += is.Collisions
		out.Index.Resizes += is.Resizes
		out.Index.DirEntries += is.DirEntries
		out.Index.DRAMBytes += is.DRAMBytes
		out.Index.Cache.Hits += is.Cache.Hits
		out.Index.Cache.Misses += is.Cache.Misses
		out.Index.Cache.Evictions += is.Cache.Evictions
		out.Index.Cache.Inserts += is.Cache.Inserts
		out.Index.Cache.AdmissionRejects += is.Cache.AdmissionRejects

		out.Flash.Reads += fs.Reads
		out.Flash.Programs += fs.Programs
		out.Flash.Erases += fs.Erases
		out.Flash.ReadBytes += fs.ReadBytes
		out.Flash.WriteBytes += fs.WriteBytes

		out.SharedReads += sh.sharedReads.Load()
		out.LockUpgrades += sh.lockUpgrades.Load()
		out.OptimisticReads += sh.optimisticReads.Load()
		out.OptimisticRetries += sh.optimisticRetries.Load()
		out.FallbackExclusive += sh.fallbackExclusive.Load()
		out.EpochPins += sh.dev.ReclaimStats().Pins

		out.StoreLat.Merge(sh.dev.StoreLatency())
		out.RetrieveLat.Merge(sh.dev.RetrieveLatency())
		out.MetaPerOp.Merge(sh.dev.MetaReadsPerOp())
		out.MetaPerGet.Merge(sh.dev.MetaReadsPerGet())
		if sh.log != nil {
			out.WALAttached = true
			ws := sh.log.Stats()
			out.WAL.Merge(&ws)
		}
		sh.mu.RUnlock()
	}
	return out
}

// ResetOpStats clears every shard's per-op histograms and cache
// counters, under each shard's write lock in turn. Experiments call it
// between phases (preload vs. measured run) so percentiles and the
// flash-reads-per-GET figure describe only the measured window.
func (s *Set) ResetOpStats() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.dev.ResetOpStats()
		sh.mu.Unlock()
	}
}

// ResizeEvents concatenates each shard's re-configuration history in
// shard order.
func (s *Set) ResizeEvents() []index.ResizeEvent {
	var out []index.ResizeEvent
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.dev.ResizeEvents()...)
		sh.mu.RUnlock()
	}
	return out
}
