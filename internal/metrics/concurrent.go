package metrics

import "sync/atomic"

// numBuckets is the full bucket range of bucketOf: values below subBuckets
// map to exact buckets, everything else to (bitlen-4)*subBuckets + sub, so
// the largest int64 lands in bucket (63-4)*16 + 15 = 959.
const numBuckets = (63-4)*subBuckets + subBuckets

// ConcurrentHistogram is a Histogram safe for concurrent Record calls.
// It trades the map for a fixed atomic bucket array so the shared read
// path can record latencies without a lock. Query via Snapshot, which
// returns a plain Histogram (the two use identical bucketing, so
// percentile estimates match exactly).
//
// Record may run concurrently with Record and Snapshot; Reset requires
// external serialization (the device only resets between phases, under
// the shard write lock).
type ConcurrentHistogram struct {
	counts [numBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	// min/max hold v+1 so the zero value means "unset"; observations are
	// clamped non-negative, so v+1 never collides with the sentinel.
	min atomic.Int64
	max atomic.Int64
}

// Record adds one observation. Negative values are clamped to zero.
func (h *ConcurrentHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v+1 {
			break
		}
		if h.max.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Count reports the number of recorded observations.
func (h *ConcurrentHistogram) Count() uint64 { return h.total.Load() }

// Snapshot returns the current distribution as a plain Histogram.
// Concurrent Records may or may not be included; each observation is
// internally consistent in the snapshot's bucket counts, while total/sum
// may trail the buckets by in-flight records (per-shard-atomic callers
// quiesce writers first when exactness matters).
func (h *ConcurrentHistogram) Snapshot() Histogram {
	var out Histogram
	total := h.total.Load()
	if total == 0 {
		return out
	}
	out.counts = make(map[int]uint64)
	for b := range h.counts {
		if c := h.counts[b].Load(); c != 0 {
			out.counts[b] = c
		}
	}
	out.total = total
	out.sum = float64(h.sum.Load())
	out.min = h.min.Load() - 1
	out.max = h.max.Load() - 1
	return out
}

// Reset discards all observations. Callers must be externally serialized
// with Record.
func (h *ConcurrentHistogram) Reset() {
	for b := range h.counts {
		h.counts[b].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
}
