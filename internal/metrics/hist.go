// Package metrics provides the measurement primitives shared by the
// emulator and the experiment harness: log-linear histograms for latency
// and flash-access distributions, counters, and x/y series for
// bandwidth-over-utilization curves.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// histogram bucketing: values are grouped by their bit length (log2 major
// bucket), and each major bucket is split into subBuckets linear
// sub-buckets. Relative quantile error is bounded by 1/subBuckets.
const subBuckets = 16

// Histogram records non-negative int64 observations with bounded relative
// error and answers count/mean/min/max/percentile queries. The zero value
// is ready to use.
type Histogram struct {
	counts   map[int]uint64
	total    uint64
	sum      float64
	min, max int64
}

func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v) // exact buckets for tiny values
	}
	// Major bucket by bit length, linear sub-bucket within it.
	bl := bits.Len64(uint64(v)) // >= 5 here
	top := v >> uint(bl-5)      // 16..31: the 4 bits after the leading one
	return (bl-4)*subBuckets + int(top-subBuckets)
}

// bucketLow returns the smallest value mapped to bucket b; bucketHigh the
// largest. Together they bound the quantile estimate.
func bucketLow(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	major := b/subBuckets + 4 // bit length of values in this bucket
	sub := b % subBuckets
	return int64(subBuckets+sub) << uint(major-5)
}

func bucketHigh(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	major := b/subBuckets + 4
	sub := b % subBuckets
	return (int64(subBuckets+sub+1) << uint(major-5)) - 1
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
		h.min = v
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min reports the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an estimate of the p-th percentile (p in [0,100]).
// The estimate is the midpoint of the bucket containing the rank, clamped
// to [Min, Max], so exact for values < 16 and within ~6% above.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	// Walk buckets in ascending order.
	maxB := bucketOf(h.max)
	var cum uint64
	for b := 0; b <= maxB; b++ {
		c, ok := h.counts[b]
		if !ok {
			continue
		}
		cum += c
		if cum >= rank {
			mid := (bucketLow(b) + bucketHigh(b)) / 2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// CountAtMost reports how many observations fell in buckets entirely at or
// below v. Exact for v < 16 (used for flash-reads-per-lookup CDFs).
func (h *Histogram) CountAtMost(v int64) uint64 {
	var cum uint64
	maxB := bucketOf(v)
	for b := 0; b <= maxB; b++ {
		if bucketHigh(b) > v {
			break
		}
		cum += h.counts[b]
	}
	return cum
}

// Merge folds every observation of o into h. Bucket counts add
// exactly, so percentile estimates over the merged histogram are
// identical to recording both observation streams into one histogram.
// The sharded front-end uses this to aggregate per-shard latency
// distributions into one device-wide view.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64, len(o.counts))
		h.min = o.min
		h.max = o.max
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.counts = nil
	h.total = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Summary renders a one-line digest: count, mean, p50/p90/p99, max.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.max)
}

// Series is an ordered list of (x, y) points, used for curves such as
// write bandwidth vs. space utilization (Fig. 2).
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// MaxY reports the largest y value, or 0 if empty.
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// Normalized returns a copy with every y divided by the series maximum,
// matching the paper's normalized-bandwidth axes.
func (s *Series) Normalized() *Series {
	out := &Series{Name: s.Name}
	m := s.MaxY()
	for i := range s.X {
		y := 0.0
		if m > 0 {
			y = s.Y[i] / m
		}
		out.Add(s.X[i], y)
	}
	return out
}

// Table renders the series as aligned rows for terminal output.
func (s *Series) Table(xLabel, yLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-16s\n", xLabel, yLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%-16.3f %-16.4f\n", s.X[i], s.Y[i])
	}
	return b.String()
}
