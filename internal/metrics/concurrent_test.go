package metrics

import (
	"sync"
	"testing"
)

// TestConcurrentHistogramMatchesPlain records the same stream into both
// histogram kinds: the snapshot must answer every query identically
// (same bucketing, so not just approximately).
func TestConcurrentHistogramMatchesPlain(t *testing.T) {
	var ch ConcurrentHistogram
	var ph Histogram
	vals := []int64{0, 1, 15, 16, 17, 100, 1000, 123456, -5, 1 << 40}
	for _, v := range vals {
		ch.Record(v)
		ph.Record(v)
	}
	s := ch.Snapshot()
	if s.Count() != ph.Count() || s.Mean() != ph.Mean() || s.Min() != ph.Min() || s.Max() != ph.Max() {
		t.Fatalf("snapshot summary %q != plain %q", s.Summary(), ph.Summary())
	}
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if s.Percentile(p) != ph.Percentile(p) {
			t.Fatalf("p%v: snapshot %d != plain %d", p, s.Percentile(p), ph.Percentile(p))
		}
	}
	ch.Reset()
	if s := ch.Snapshot(); s.Count() != 0 || s.Max() != 0 {
		t.Fatalf("snapshot after reset: %q", s.Summary())
	}
}

// TestConcurrentHistogramParallelRecord is the -race regression for the
// read path's latency recording: concurrent Records (with Snapshots
// racing them) must lose nothing.
func TestConcurrentHistogramParallelRecord(t *testing.T) {
	var ch ConcurrentHistogram
	const goroutines = 8
	const per = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ch.Record(int64(g*per + i))
				if i%100 == 0 {
					ch.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := ch.Snapshot()
	if s.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d (lost records)", s.Count(), goroutines*per)
	}
	if s.Min() != 0 || s.Max() != goroutines*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min(), s.Max(), goroutines*per-1)
	}
	wantMean := float64(goroutines*per-1) / 2
	if s.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", s.Mean(), wantMean)
	}
}
