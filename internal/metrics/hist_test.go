package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram returned non-zero stats")
	}
	if h.Summary() != "empty" {
		t.Fatalf("Summary = %q", h.Summary())
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	// Flash-reads-per-lookup style data: small integers must be exact.
	for _, v := range []int64{1, 1, 1, 2, 2, 3, 8, 0, 0, 1} {
		h.Record(v)
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Percentile(50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Percentile(100); got != 8 {
		t.Fatalf("p100 = %d, want 8", got)
	}
	if got := h.CountAtMost(1); got != 6 {
		t.Fatalf("CountAtMost(1) = %d, want 6", got)
	}
	if got := h.CountAtMost(2); got != 8 {
		t.Fatalf("CountAtMost(2) = %d, want 8", got)
	}
}

func TestHistogramMeanMinMax(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30} {
		h.Record(v)
	}
	if h.Mean() != 20 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative value not clamped to zero")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 50000)
	for i := range vals {
		vals[i] = int64(rng.ExpFloat64() * 100000) // latency-like distribution
		h.Record(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := vals[int(p/100*float64(len(vals)))-1]
		est := h.Percentile(p)
		if exact == 0 {
			continue
		}
		rel := float64(est-exact) / float64(exact)
		if rel < -0.10 || rel > 0.10 {
			t.Errorf("p%v: est %d vs exact %d (rel err %.3f)", p, est, exact, rel)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		b := bucketOf(v)
		return bucketLow(b) <= v && v <= bucketHigh(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 100000; v += 7 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestSeriesNormalized(t *testing.T) {
	var s Series
	s.Add(0, 100)
	s.Add(1, 50)
	s.Add(2, 200)
	n := s.Normalized()
	if n.Y[2] != 1.0 || n.Y[0] != 0.5 || n.Y[1] != 0.25 {
		t.Fatalf("Normalized = %v", n.Y)
	}
	if s.MaxY() != 200 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestSeriesNormalizedEmptyAndZero(t *testing.T) {
	var s Series
	if s.Normalized().Len() != 0 {
		t.Fatal("empty series normalized non-empty")
	}
	s.Add(0, 0)
	if y := s.Normalized().Y[0]; y != 0 {
		t.Fatalf("all-zero series normalized to %v", y)
	}
}

func TestSeriesTable(t *testing.T) {
	var s Series
	s.Add(1, 2)
	out := s.Table("x", "y")
	if len(out) == 0 {
		t.Fatal("empty table output")
	}
}
