package rhik_test

import (
	"fmt"
	"testing"

	rhik "repro"
)

// deterministicTrace drives a fixed mixed workload and returns a
// fingerprint of everything timing-related the public API exposes. The
// trace exercises stores (with resizes), retrieves, deletes, exists, and
// an async batch, so any drift in the firmware timing model or the
// front-end's submission bookkeeping changes the fingerprint.
func deterministicTrace(t *testing.T, opts rhik.Options) string {
	t.Helper()
	opts.Capacity = 64 << 20
	db, err := rhik.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	val := func(i int) []byte {
		v := make([]byte, 64+(i*37)%512)
		for j := range v {
			v[j] = byte(i + j)
		}
		return v
	}

	for i := 0; i < 2500; i++ {
		if err := db.Store(key(i), val(i)); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Retrieve(key((i * 7) % 2500)); err != nil {
			t.Fatalf("retrieve %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := db.Delete(key(i * 3)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exist(key(i * 11)); err != nil {
			t.Fatalf("exist %d: %v", i, err)
		}
	}

	var b rhik.Batch
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			b.Store(key(3000+i), val(i))
		case 1:
			b.Retrieve(key(i * 2 % 2500))
		case 2:
			b.Delete(key(1000 + i))
		}
	}
	res := db.Apply(&b, 0)

	s := db.Stats()
	return fmt.Sprintf(
		"elapsed=%d batch=%d failed=%d stores=%d retrieves=%d deletes=%d exists=%d "+
			"bw=%d br=%d resizes=%d flash=%d/%d/%d "+
			"storeLat{%s} getLat{%s}",
		db.Elapsed().Nanoseconds(), res.Elapsed.Nanoseconds(), res.Failed(),
		s.Stores, s.Retrieves, s.Deletes, s.Exists,
		s.BytesWritten, s.BytesRead, s.Resizes,
		s.FlashReads, s.FlashPrograms, s.FlashErases,
		db.Device().StoreLatency().Summary(), db.Device().RetrieveLatency().Summary(),
	)
}

// TestSingleShardTimingUnchanged pins the single-shard timing behavior to
// the pre-sharding seed: with Shards: 1 the sharded front-end must be a
// pass-through, so the fingerprint of a fixed trace — total elapsed
// simulated time, batch elapsed, and the full latency histogram digests —
// is byte-identical to the value recorded on the seed tree.
func TestSingleShardTimingUnchanged(t *testing.T) {
	const golden = "elapsed=137845354 batch=21274604 failed=0 stores=2600 retrieves=600 deletes=300 exists=100 " +
		"bw=855384 br=188622 resizes=1 flash=975/28/0 " +
		"storeLat{n=2600 mean=417037.4 p50=12031 p90=12031 p99=15466495 max=21066272} " +
		"getLat{n=600 mean=1866122.5 p50=112639 p90=8650751 p99=19398655 max=21170238}"
	got := deterministicTrace(t, rhik.Options{Shards: 1})
	t.Logf("fingerprint: %s", got)
	if got != golden {
		t.Fatalf("single-shard timing drifted from seed:\n got: %s\nwant: %s", got, golden)
	}
}
