// Package rhik is a reproduction of "RHIK: Re-configurable Hash-based
// Indexing for KVSSD" (HPDC 2023): a discrete-event emulated Key-Value
// SSD whose firmware indexes keys with RHIK — a two-level hash index
// whose directory lives in device DRAM and whose record layer consists
// of page-sized hopscotch hash tables on flash, guaranteeing at most one
// flash read per index lookup and re-configuring (doubling) itself as
// the key population grows.
//
// The package exposes the device through a SNIA-KV-API-flavored surface:
// Store, Retrieve, Delete, Exist, Iterate, plus an asynchronous Batch
// path. All timing is simulated: Elapsed and the per-op latencies report
// device time, deterministic across runs, so experiments are both fast
// and reproducible.
//
// The front-end is sharded: Options.Shards partitions the key space by
// signature bits across independent emulated devices, each with its own
// lock and simulated clock, so concurrent callers on different shards
// proceed in parallel (internal/shard). With Shards: 1 the behavior —
// including every simulated timestamp — is identical to a single
// unsharded device.
//
//	db, err := rhik.Open(rhik.Options{Capacity: 1 << 30})
//	...
//	err = db.Store([]byte("user:42"), profile)
//	value, err := db.Retrieve([]byte("user:42"))
package rhik

import (
	"errors"
	"runtime"
	"time"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Errors surfaced by the API.
var (
	// ErrNotFound reports a retrieve/delete of an absent key.
	ErrNotFound = device.ErrNotFound
	// ErrDeviceFull reports that garbage collection cannot reclaim
	// enough space for the write.
	ErrDeviceFull = device.ErrDeviceFull
	// ErrKeyTooLarge reports an empty or oversized key.
	ErrKeyTooLarge = device.ErrKeyTooLarge
	// ErrValueTooLarge reports a value exceeding one erase block.
	ErrValueTooLarge = device.ErrValueTooLarge
	// ErrClosed reports use after Close.
	ErrClosed = device.ErrClosed
	// ErrCollision reports the paper's uncorrectable signature
	// collision: the application must retry with a different key.
	ErrCollision = index.ErrCollision
	// ErrNoIterator reports Iterate without iterator-mode signatures.
	ErrNoIterator = device.ErrNoIterator
)

// IndexScheme selects the in-device index.
type IndexScheme int

// Index schemes.
const (
	// RHIK is the paper's re-configurable two-level hash index.
	RHIK IndexScheme = iota
	// MultiLevel is the Samsung-KVSSD-style multi-level hash baseline.
	MultiLevel
	// LSM is the LSM-tree-based index (PinK-style) the paper contrasts
	// hash-based indexing against.
	LSM
)

// Options configures an emulated KVSSD.
type Options struct {
	// Capacity is the emulated device capacity in bytes (default 1 GiB),
	// divided evenly across shards.
	Capacity int64
	// Index selects the indexing scheme (default RHIK).
	Index IndexScheme
	// Shards is the number of independently locked and clocked device
	// shards the key space is partitioned across by signature bits. It
	// must be a power of two; the default is the largest power of two
	// not exceeding runtime.GOMAXPROCS(0). Shards: 1 reproduces the
	// unsharded device exactly.
	Shards int
	// CacheBudget bounds the device DRAM available to the index
	// (default 10 MB, the paper's Fig. 5 budget), divided across shards.
	CacheBudget int64
	// AnticipatedKeys pre-sizes RHIK's directory via Eq. 2 (divided
	// across shards); zero starts minimal and lets re-configuration
	// grow it.
	AnticipatedKeys int64
	// OccupancyThreshold is RHIK's resize trigger in (0,1] (default 0.8).
	OccupancyThreshold float64
	// HopRange is the record layer's hopscotch neighborhood (default 32).
	HopRange int
	// SignatureBits is the key-signature width: 64 (default) or 128.
	SignatureBits int
	// IteratorPrefixLen, when non-zero, enables prefix iteration by
	// deriving signatures from a key prefix of this many bytes (§VI).
	IteratorPrefixLen int
	// CheckpointEveryOps takes an automatic durability checkpoint every
	// N mutations device-wide (0 = only on Close/Checkpoint); each
	// shard checkpoints every N/Shards of its own mutations.
	CheckpointEveryOps int64
	// IncrementalResize grows the index lazily (bounded per-command
	// migration work) instead of halting the queue for a full
	// migration — the paper's "real-time index scaling" extension.
	IncrementalResize bool
	// ValueCacheBudget, when positive, enables the hot-value DRAM tier
	// (divided across shards): a byte-budgeted cache of recently read
	// values consulted before the index by every read tier, so hot GETs
	// cost zero flash reads. Invalidated before any overwrite
	// acknowledges; 0 (the default) disables it and keeps the read path
	// byte-identical to previous releases.
	ValueCacheBudget int64
	// CacheAdmission enables TinyLFU admission (frequency sketch +
	// doorkeeper) on RHIK's index-page cache, protecting hot directory
	// buckets from one-touch scan traffic. Default off.
	CacheAdmission bool
	// ScanPrefetch makes prefix scans read each distinct data page once
	// instead of once per record. Default off.
	ScanPrefetch bool
	// WAL configures the durable write front. Zero value = disabled: the
	// emulated device is purely in-memory and all data dies with the
	// process, exactly as before.
	WAL WALOptions
}

// WALOptions configures the per-shard write-ahead log. The emulated
// flash is volatile — it lives in process memory — so the WAL is what
// makes acknowledged writes survive a real process crash: mutations are
// journaled to real files under Dir before they are acknowledged, and
// Open replays the retained log into the fresh device before serving.
type WALOptions struct {
	// Dir is the log root (one subdirectory per shard). Empty disables
	// the WAL.
	Dir string
	// Fsync is the durability policy: "always" (default; every
	// acknowledged write survives power loss), "group" (acknowledged
	// writes are in the OS page cache, synced when a commit burst
	// drains — survives process kill, not power loss), or "none" (sync
	// only on Close).
	Fsync string
	// SegmentSize rotates log segments at this many bytes (default 4 MiB).
	SegmentSize int64
}

// DB is an open emulated KVSSD. Methods are safe for concurrent use:
// commands serialize per shard, as they would on one hardware channel
// group, and commands on different shards run in parallel.
type DB struct {
	set *shard.Set
}

// defaultShards is the largest power of two ≤ runtime.GOMAXPROCS(0).
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Open creates a fresh device (all flash erased).
func Open(opts Options) (*DB, error) {
	set, err := OpenSet(opts)
	if err != nil {
		return nil, err
	}
	return &DB{set: set}, nil
}

// OpenSet creates a fresh device and returns the raw sharded front-end
// instead of the DB wrapper. In-module tools that dispatch work by
// shard — the network server keys its worker pool on Set.RouteKey —
// use this; applications should use Open.
func OpenSet(opts Options) (*shard.Set, error) {
	n := opts.Shards
	if n == 0 {
		n = defaultShards()
	}
	if n < 1 || n&(n-1) != 0 {
		return nil, errors.New("rhik: Shards must be a power of two")
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = 1 << 30
	}
	cache := opts.CacheBudget
	if cache == 0 {
		cache = 10 << 20
	}
	ckpt := opts.CheckpointEveryOps
	if ckpt > 0 {
		ckpt = (ckpt + int64(n) - 1) / int64(n)
	}
	cfg := device.Config{
		Capacity:           capacity / int64(n),
		CacheBudget:        cache / int64(n),
		AnticipatedKeys:    opts.AnticipatedKeys / int64(n),
		OccupancyThreshold: opts.OccupancyThreshold,
		HopRange:           opts.HopRange,
		CheckpointEveryOps: ckpt,
		IncrementalResize:  opts.IncrementalResize,
		ValueCacheBudget:   opts.ValueCacheBudget / int64(n),
		CacheAdmission:     opts.CacheAdmission,
		ScanPrefetch:       opts.ScanPrefetch,
	}
	switch opts.Index {
	case RHIK:
		cfg.Index = device.IndexRHIK
	case MultiLevel:
		cfg.Index = device.IndexMultiLevel
	case LSM:
		cfg.Index = device.IndexLSM
	default:
		return nil, errors.New("rhik: unknown index scheme")
	}
	bits := opts.SignatureBits
	if bits == 0 {
		bits = 64
	}
	cfg.SigScheme = index.SigScheme{Bits: bits, PrefixLen: opts.IteratorPrefixLen}
	if err := cfg.SigScheme.Validate(); err != nil {
		return nil, err
	}
	set, err := shard.New(n, cfg)
	if err != nil {
		return nil, err
	}
	if opts.WAL.Dir != "" {
		wopts := wal.Options{SegmentSize: opts.WAL.SegmentSize}
		if opts.WAL.Fsync != "" {
			wopts.Fsync, err = wal.ParsePolicy(opts.WAL.Fsync)
			if err != nil {
				set.Close()
				return nil, err
			}
		}
		if _, err := set.AttachWAL(opts.WAL.Dir, wopts); err != nil {
			set.Close()
			return nil, err
		}
	}
	return set, nil
}

// Shards reports the shard count the key space is partitioned across.
func (db *DB) Shards() int { return db.set.N() }

// Store writes a key-value pair synchronously: the call observes the
// command's full simulated round trip on the owning shard.
func (db *DB) Store(key, value []byte) error {
	return db.set.Store(key, value)
}

// Retrieve returns a copy of the value stored under key.
func (db *DB) Retrieve(key []byte) ([]byte, error) {
	return db.set.Retrieve(key)
}

// Delete removes key. ErrNotFound if absent.
func (db *DB) Delete(key []byte) error {
	return db.set.Delete(key)
}

// Exist reports whether key is stored. The device answers from key
// signatures and verifies the stored key, so the answer is exact.
func (db *DB) Exist(key []byte) (bool, error) {
	return db.set.Exist(key)
}

// Entry is one key (and value) produced by Iterate.
type Entry struct {
	Key   []byte
	Value []byte
}

// Iterate enumerates keys sharing prefix, sorted, with values. Requires
// Options.IteratorPrefixLen > 0 and the RHIK index. The scan fans out to
// every shard and merges the per-shard sorted streams.
func (db *DB) Iterate(prefix []byte) ([]Entry, error) {
	entries, err := db.set.Iterate(prefix)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Key: e.Key, Value: e.Value}
	}
	return out, nil
}

// Checkpoint makes all accepted writes durable and persists the index
// directory on every shard, bounding what a crash can lose.
func (db *DB) Checkpoint() error { return db.set.Checkpoint() }

// Restart simulates a power cycle followed by crash recovery. Writes
// still in a shard's volatile page buffer are lost; everything
// programmed to flash — including all checkpointed state — survives.
func (db *DB) Restart() error { return db.set.Restart() }

// Close checkpoints and shuts the device down.
func (db *DB) Close() error { return db.set.Close() }

// Elapsed reports the total simulated device time consumed so far:
// shards run in parallel, so this is the slowest shard's timeline, not
// the sum.
func (db *DB) Elapsed() time.Duration {
	return time.Duration(int64(db.set.Elapsed()))
}

// Device exposes the first shard's emulated device for experiments and
// tools that need raw access (benchmark harness, cmd/kvcli). With
// Shards > 1 it covers only that shard; per-device experiments should
// open the DB with Shards: 1.
func (db *DB) Device() *device.Device { return db.set.Shard(0).Device() }
