// Package rhik is a reproduction of "RHIK: Re-configurable Hash-based
// Indexing for KVSSD" (HPDC 2023): a discrete-event emulated Key-Value
// SSD whose firmware indexes keys with RHIK — a two-level hash index
// whose directory lives in device DRAM and whose record layer consists
// of page-sized hopscotch hash tables on flash, guaranteeing at most one
// flash read per index lookup and re-configuring (doubling) itself as
// the key population grows.
//
// The package exposes the device through a SNIA-KV-API-flavored surface:
// Store, Retrieve, Delete, Exist, Iterate, plus an asynchronous Batch
// path. All timing is simulated: Elapsed and the per-op latencies report
// device time, deterministic across runs, so experiments are both fast
// and reproducible.
//
//	db, err := rhik.Open(rhik.Options{Capacity: 1 << 30})
//	...
//	err = db.Store([]byte("user:42"), profile)
//	value, err := db.Retrieve([]byte("user:42"))
package rhik

import (
	"errors"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/sim"
)

// Errors surfaced by the API.
var (
	// ErrNotFound reports a retrieve/delete of an absent key.
	ErrNotFound = device.ErrNotFound
	// ErrDeviceFull reports that garbage collection cannot reclaim
	// enough space for the write.
	ErrDeviceFull = device.ErrDeviceFull
	// ErrKeyTooLarge reports an empty or oversized key.
	ErrKeyTooLarge = device.ErrKeyTooLarge
	// ErrValueTooLarge reports a value exceeding one erase block.
	ErrValueTooLarge = device.ErrValueTooLarge
	// ErrClosed reports use after Close.
	ErrClosed = device.ErrClosed
	// ErrCollision reports the paper's uncorrectable signature
	// collision: the application must retry with a different key.
	ErrCollision = index.ErrCollision
	// ErrNoIterator reports Iterate without iterator-mode signatures.
	ErrNoIterator = device.ErrNoIterator
)

// IndexScheme selects the in-device index.
type IndexScheme int

// Index schemes.
const (
	// RHIK is the paper's re-configurable two-level hash index.
	RHIK IndexScheme = iota
	// MultiLevel is the Samsung-KVSSD-style multi-level hash baseline.
	MultiLevel
	// LSM is the LSM-tree-based index (PinK-style) the paper contrasts
	// hash-based indexing against.
	LSM
)

// Options configures an emulated KVSSD.
type Options struct {
	// Capacity is the emulated device capacity in bytes (default 1 GiB).
	Capacity int64
	// Index selects the indexing scheme (default RHIK).
	Index IndexScheme
	// CacheBudget bounds the device DRAM available to the index
	// (default 10 MB, the paper's Fig. 5 budget).
	CacheBudget int64
	// AnticipatedKeys pre-sizes RHIK's directory via Eq. 2; zero starts
	// minimal and lets re-configuration grow it.
	AnticipatedKeys int64
	// OccupancyThreshold is RHIK's resize trigger in (0,1] (default 0.8).
	OccupancyThreshold float64
	// HopRange is the record layer's hopscotch neighborhood (default 32).
	HopRange int
	// SignatureBits is the key-signature width: 64 (default) or 128.
	SignatureBits int
	// IteratorPrefixLen, when non-zero, enables prefix iteration by
	// deriving signatures from a key prefix of this many bytes (§VI).
	IteratorPrefixLen int
	// CheckpointEveryOps takes an automatic durability checkpoint every
	// N mutations (0 = only on Close/Checkpoint).
	CheckpointEveryOps int64
	// IncrementalResize grows the index lazily (bounded per-command
	// migration work) instead of halting the queue for a full
	// migration — the paper's "real-time index scaling" extension.
	IncrementalResize bool
}

// DB is an open emulated KVSSD. Methods are safe for concurrent use;
// commands serialize on the device firmware as they would on hardware.
type DB struct {
	mu   sync.Mutex
	dev  *device.Device
	last sim.Time // completion of the previous synchronous command
}

// Open creates a fresh device (all flash erased).
func Open(opts Options) (*DB, error) {
	cfg := device.Config{
		Capacity:           opts.Capacity,
		CacheBudget:        opts.CacheBudget,
		AnticipatedKeys:    opts.AnticipatedKeys,
		OccupancyThreshold: opts.OccupancyThreshold,
		HopRange:           opts.HopRange,
		CheckpointEveryOps: opts.CheckpointEveryOps,
		IncrementalResize:  opts.IncrementalResize,
	}
	switch opts.Index {
	case RHIK:
		cfg.Index = device.IndexRHIK
	case MultiLevel:
		cfg.Index = device.IndexMultiLevel
	case LSM:
		cfg.Index = device.IndexLSM
	default:
		return nil, errors.New("rhik: unknown index scheme")
	}
	bits := opts.SignatureBits
	if bits == 0 {
		bits = 64
	}
	cfg.SigScheme = index.SigScheme{Bits: bits, PrefixLen: opts.IteratorPrefixLen}
	dev, err := device.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{dev: dev}, nil
}

// Store writes a key-value pair synchronously: the call observes the
// command's full simulated round trip.
func (db *DB) Store(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	done, err := db.dev.Store(db.last, key, value)
	if err != nil {
		return err
	}
	db.last = done
	return nil
}

// Retrieve returns a copy of the value stored under key.
func (db *DB) Retrieve(key []byte) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, done, err := db.dev.Retrieve(db.last, key)
	if err != nil {
		return nil, err
	}
	db.last = done
	return v, nil
}

// Delete removes key. ErrNotFound if absent.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	done, err := db.dev.Delete(db.last, key)
	if err != nil {
		return err
	}
	db.last = done
	return nil
}

// Exist reports whether key is stored. The device answers from key
// signatures and verifies the stored key, so the answer is exact.
func (db *DB) Exist(key []byte) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ok, done, err := db.dev.Exist(db.last, key)
	if err != nil {
		return false, err
	}
	db.last = done
	return ok, nil
}

// Entry is one key (and value) produced by Iterate.
type Entry struct {
	Key   []byte
	Value []byte
}

// Iterate enumerates keys sharing prefix, sorted, with values. Requires
// Options.IteratorPrefixLen > 0 and the RHIK index.
func (db *DB) Iterate(prefix []byte) ([]Entry, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	entries, done, err := db.dev.Iterate(db.last, prefix, true)
	if err != nil {
		return nil, err
	}
	db.last = done
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Key: e.Key, Value: e.Value}
	}
	return out, nil
}

// Checkpoint makes all accepted writes durable and persists the index
// directory, bounding what a crash can lose.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dev.Checkpoint()
}

// Restart simulates a power cycle followed by crash recovery. Writes
// still in the volatile page buffer are lost; everything programmed to
// flash — including all checkpointed state — survives.
func (db *DB) Restart() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.dev.Restart(); err != nil {
		return err
	}
	db.last = db.dev.Now()
	return nil
}

// Close checkpoints and shuts the device down.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dev.Close()
}

// Elapsed reports the total simulated device time consumed so far.
func (db *DB) Elapsed() time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := db.dev.Drain()
	if db.last > d {
		d = db.last
	}
	return time.Duration(int64(d))
}

// Device exposes the underlying emulated device for experiments and
// tools that need raw access (benchmark harness, cmd/kvcli).
func (db *DB) Device() *device.Device { return db.dev }
