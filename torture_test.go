package rhik

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The WAL torture tests prove the durability contract the hard way: a
// child process (this test binary re-executed) hammers a WAL-backed DB
// until the parent SIGKILLs it mid-write, the parent recovers the
// store in-process, and every acknowledged operation is checked
// against an oracle the child journaled beside the WAL. Under
// fsync=always the check is exact — an acked write that recovery
// cannot produce is a test failure. Under group/none the check relaxes
// to corruption-freedom: recovery must succeed and every recovered key
// must carry its one deterministic value.
//
// Oracle protocol: each worker owns a disjoint key range and a private
// append-only log. Before issuing op i it appends "I <op> <i>", after
// the DB acknowledges it appends "A <op> <i>". Workers are sequential,
// so at most the final intent per worker is unacknowledged — its
// effect may or may not have landed, and the verifier accepts both.

const (
	tortureShards  = 4
	tortureWorkers = 4
)

func tortureKey(w, i int) []byte {
	return []byte(fmt.Sprintf("t-w%02d-%08d", w, i))
}

func tortureValue(w, i int) []byte {
	return []byte(fmt.Sprintf("val-%02d-%08d-%s", w, i, strings.Repeat("x", 40)))
}

func tortureOpen(dir, policy string) (*DB, error) {
	return Open(Options{
		Capacity: 256 << 20,
		Shards:   tortureShards,
		WAL: WALOptions{
			Dir:         filepath.Join(dir, "wal"),
			Fsync:       policy,
			SegmentSize: 256 << 10,
		},
	})
}

// TestWALTortureChild is the child-process body; it only runs when the
// parent re-execs the test binary with the torture env set, and it
// never exits voluntarily — the parent SIGKILLs it mid-write.
func TestWALTortureChild(t *testing.T) {
	dir := os.Getenv("RHIK_TORTURE_DIR")
	if dir == "" {
		t.Skip("torture child entry point; driven by TestWALTortureKill9")
	}
	policy := os.Getenv("RHIK_TORTURE_FSYNC")
	db, err := tortureOpen(dir, policy)
	if err != nil {
		fmt.Printf("child: open: %v\n", err)
		os.Exit(3)
	}
	// Watchdog: if the parent dies without killing us, exit instead of
	// leaking a spinning process.
	go func() {
		time.Sleep(30 * time.Second)
		os.Exit(0)
	}()
	fmt.Println("ready")

	acked := make(chan struct{}, 1024)
	for w := 0; w < tortureWorkers; w++ {
		go tortureWorker(db, dir, w, acked)
	}
	// Emit a progress line every 100 acks so the parent can wait for
	// real work before pulling the trigger.
	n := 0
	for range acked {
		if n++; n%100 == 0 {
			fmt.Println("progress")
		}
	}
}

// tortureStore is the mutation surface the torture workers drive; both
// the public DB facade and a raw shard.Set satisfy it, so the backup
// torture (which needs a Set behind a server) reuses the same workers.
type tortureStore interface {
	Store(key, value []byte) error
	Delete(key []byte) error
}

// tortureWorker appends ops forever, journaling intent and ack around
// each one. It resumes its index from the previous life's oracle.
func tortureWorker(db tortureStore, dir string, w int, acked chan<- struct{}) {
	path := filepath.Join(dir, fmt.Sprintf("oracle-%02d.log", w))
	next := 0
	pendingOp, pendingIdx := "", -1
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			var kind, op string
			var loop, target int
			if _, err := fmt.Sscanf(line, "%s %d %s %d", &kind, &loop, &op, &target); err != nil {
				continue
			}
			switch kind {
			case "I":
				pendingOp, pendingIdx = op, target
				if loop >= next {
					next = loop + 1
				}
			case "A":
				pendingOp, pendingIdx = "", -1
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Printf("child: oracle: %v\n", err)
		os.Exit(3)
	}
	// Redo the previous life's unacked op, if any: its effect landed or
	// didn't (both legal), and later ops — the eventual delete of a put
	// key — assume it is settled. Puts are idempotent; a redone delete
	// tolerates ErrNotFound since the first attempt may have applied.
	if pendingIdx >= 0 {
		if pendingOp == "put" {
			err = db.Store(tortureKey(w, pendingIdx), tortureValue(w, pendingIdx))
		} else if err = db.Delete(tortureKey(w, pendingIdx)); errors.Is(err, ErrNotFound) {
			err = nil
		}
		if err != nil {
			fmt.Printf("child: worker %d redo %s %d: %v\n", w, pendingOp, pendingIdx, err)
			os.Exit(3)
		}
		fmt.Fprintf(f, "A %d %s %d\n", next-1, pendingOp, pendingIdx)
		acked <- struct{}{}
	}
	for i := next; ; i++ {
		// Mostly sequential puts; every 7th op deletes a key from five
		// steps back, exercising tombstone recovery.
		op, target := "put", i
		if i%7 == 6 && i >= 5 {
			op, target = "del", i-5
		}
		fmt.Fprintf(f, "I %d %s %d\n", i, op, target)
		if op == "put" {
			err = db.Store(tortureKey(w, target), tortureValue(w, target))
		} else {
			err = db.Delete(tortureKey(w, target))
		}
		if err != nil {
			fmt.Printf("child: worker %d op %s %d: %v\n", w, op, target, err)
			os.Exit(3)
		}
		fmt.Fprintf(f, "A %d %s %d\n", i, op, target)
		acked <- struct{}{}
	}
}

// oracleState replays one worker's oracle: the definite per-key state
// after every acked op, plus the single possibly-unacked trailing op.
type oracleState struct {
	present  map[int]bool // key index -> stored? (after acked ops only)
	maxIndex int          // highest key index a put ever intended
	// pendingOp/pendingIdx describe the one intent without an ack, if
	// any; its effect is allowed in either state.
	pendingOp  string
	pendingIdx int
}

func readOracle(t *testing.T, dir string, w int) oracleState {
	t.Helper()
	st := oracleState{present: map[int]bool{}, maxIndex: -1, pendingIdx: -1}
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("oracle-%02d.log", w)))
	if err != nil {
		if os.IsNotExist(err) {
			return st
		}
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		var kind, op string
		var loop, target int
		if _, err := fmt.Sscanf(line, "%s %d %s %d", &kind, &loop, &op, &target); err != nil {
			continue
		}
		switch kind {
		case "I":
			st.pendingOp, st.pendingIdx = op, target
			if op == "put" && target > st.maxIndex {
				st.maxIndex = target
			}
		case "A":
			if op != st.pendingOp || target != st.pendingIdx {
				t.Fatalf("worker %d: ack %s %d does not match intent %s %d", w, op, target, st.pendingOp, st.pendingIdx)
			}
			st.present[target] = op == "put"
			st.pendingOp, st.pendingIdx = "", -1
		}
	}
	return st
}

// runTortureCycle starts the child, waits for it to make progress,
// kills it with SIGKILL at a random moment, and reaps it.
func runTortureCycle(t *testing.T, dir, policy string, rng *rand.Rand) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALTortureChild$")
	cmd.Env = append(os.Environ(),
		"RHIK_TORTURE_DIR="+dir,
		"RHIK_TORTURE_FSYNC="+policy,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for recovery+serving, then for ~100 acked ops, then fire at a
	// random offset so the kill lands at varied log positions.
	sc := bufio.NewScanner(stdout)
	deadline := time.After(20 * time.Second)
	got := make(chan string, 16)
	go func() {
		for sc.Scan() {
			got <- sc.Text()
		}
		close(got)
	}()
	stage := 0 // 0 = want ready, 1 = want progress
wait:
	for {
		select {
		case line, ok := <-got:
			if !ok {
				t.Fatalf("child exited before being killed (stage %d)", stage)
			}
			if stage == 0 && line == "ready" {
				stage = 1
			} else if stage == 1 && line == "progress" {
				break wait
			} else if strings.HasPrefix(line, "child:") {
				t.Fatalf("child error: %s", line)
			}
		case <-deadline:
			t.Fatalf("child made no progress (stage %d)", stage)
		}
	}
	time.Sleep(time.Duration(rng.Intn(80)) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, stdout)
	cmd.Wait() // expected: killed
}

// TestWALTortureKill9 is the acceptance torture: >= 20 kill/recover
// cycles under fsync=always with zero lost acknowledged writes.
func TestWALTortureKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test spawns child processes; skipped in -short")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	cycles := 20
	for c := 0; c < cycles; c++ {
		runTortureCycle(t, dir, "always", rng)

		// Recover in-process and hold every acked op against the oracle.
		db, err := tortureOpen(dir, "always")
		if err != nil {
			t.Fatalf("cycle %d: recovery failed: %v", c, err)
		}
		for w := 0; w < tortureWorkers; w++ {
			st := readOracle(t, dir, w)
			for i, want := range st.present {
				if i == st.pendingIdx {
					continue // re-intended op; both states legal
				}
				ok, err := db.Exist(tortureKey(w, i))
				if err != nil {
					t.Fatalf("cycle %d worker %d key %d: %v", c, w, i, err)
				}
				if ok != want {
					t.Fatalf("cycle %d worker %d key %d: present=%v want %v (acked op lost)", c, w, i, ok, want)
				}
				if want {
					v, err := db.Retrieve(tortureKey(w, i))
					if err != nil || string(v) != string(tortureValue(w, i)) {
						t.Fatalf("cycle %d worker %d key %d: bad value %q (%v)", c, w, i, v, err)
					}
				}
			}
			// Keys never intended must not exist.
			for i := st.maxIndex + 1; i < st.maxIndex+4; i++ {
				if ok, _ := db.Exist(tortureKey(w, i)); ok {
					t.Fatalf("cycle %d worker %d: phantom key %d", c, w, i)
				}
			}
		}
		// Checkpoint so compaction keeps the log from growing without
		// bound across cycles, then hand the store to the next child.
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("cycle %d: checkpoint: %v", c, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", c, err)
		}
	}
}

// TestWALTortureRelaxedPolicies runs a few kill cycles under the group
// and none fsync policies. Acked writes may legally be lost to a power
// cut there, but recovery must never fail or surface a corrupt value —
// every recovered key carries exactly its deterministic payload.
func TestWALTortureRelaxedPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test spawns child processes; skipped in -short")
	}
	for _, policy := range []string{"group", "none"} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(2))
			for c := 0; c < 3; c++ {
				runTortureCycle(t, dir, policy, rng)
				db, err := tortureOpen(dir, policy)
				if err != nil {
					t.Fatalf("cycle %d: recovery failed: %v", c, err)
				}
				for w := 0; w < tortureWorkers; w++ {
					st := readOracle(t, dir, w)
					for i := 0; i <= st.maxIndex; i++ {
						ok, err := db.Exist(tortureKey(w, i))
						if err != nil {
							t.Fatalf("cycle %d worker %d key %d: %v", c, w, i, err)
						}
						if !ok {
							continue
						}
						v, err := db.Retrieve(tortureKey(w, i))
						if err != nil || string(v) != string(tortureValue(w, i)) {
							t.Fatalf("cycle %d worker %d key %d: corrupt value %q (%v)", c, w, i, v, err)
						}
					}
				}
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("cycle %d: checkpoint: %v", c, err)
				}
				if err := db.Close(); err != nil {
					t.Fatalf("cycle %d: close: %v", c, err)
				}
			}
		})
	}
}
