// Tracereplay: synthesize an IBM-style object-store trace (Fig. 5
// clusters) and replay it against both index schemes under the paper's
// 10 MB FTL cache budget, comparing cache miss ratios and flash reads
// per metadata access — the experiment behind Fig. 5a/5b.
//
// Pass a cluster name (default "052"; "083" shows the large-index
// regime where the multi-level baseline collapses).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	name := "052"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := trace.Cluster(name)
	if err != nil {
		log.Fatal(err)
	}
	// Scale down for a fast example run while keeping the cache-budget
	// regime: shrink keys and the cache by the same factor.
	const factor = 8
	spec.UniqueKeys /= factor
	spec.AccessOps /= factor
	cache := int64((10 << 20) / factor)

	fmt.Printf("cluster %s: %d unique keys, %d accesses, read fraction %.0f%%\n",
		spec.Name, spec.UniqueKeys, spec.AccessOps, spec.ReadFrac*100)
	fmt.Printf("induced index ~%d KiB vs cache %d KiB\n\n", spec.IndexBytes()/factor>>10, cache>>10)

	rows, err := bench.ReplayCluster(spec, cache, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-10s %-24s %-10s\n", "index", "miss", "reads/op p50/p99/max", "<=1 read")
	for _, r := range rows {
		fmt.Printf("%-8s %-10.3f %-24s %9.1f%%\n",
			r.Index, r.MissRatio,
			fmt.Sprintf("%d / %d / %d", r.ReadsP50, r.ReadsP99, r.ReadsMax), r.AtMostOnePct)
	}
	fmt.Println("\nRHIK guarantees at most one flash read per metadata access; the multi-level")
	fmt.Println("baseline probes up to eight levels and thrashes the cache once the index outgrows it.")
}
