// Asyncio: compare synchronous (queue-depth 1) and asynchronous (deep
// queue) submission, the distinction behind Fig. 6's sync/async
// subplots. Async batches let the device overlap page programs across
// NAND dies, so throughput rises well above the per-command round trip
// allows at QD1.
package main

import (
	"fmt"
	"log"

	rhik "repro"
	"repro/internal/workload"
)

func main() {
	const (
		n         = 2000
		valueSize = 16 << 10
	)
	payload := func(i int) []byte { return workload.ValuePayload(uint64(i), valueSize) }

	// Synchronous: each Store observes its full simulated round trip.
	syncDB, err := rhik.Open(rhik.Options{Capacity: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := syncDB.Store(workload.KeyBytes(uint64(i)), payload(i)); err != nil {
			log.Fatal(err)
		}
	}
	syncTime := syncDB.Elapsed()

	// Asynchronous: one batch, submitted back-to-back.
	asyncDB, err := rhik.Open(rhik.Options{Capacity: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	var b rhik.Batch
	for i := 0; i < n; i++ {
		b.Store(workload.KeyBytes(uint64(i)), payload(i))
	}
	res := asyncDB.Apply(&b, 0)
	if res.Failed() > 0 {
		log.Fatalf("%d async stores failed", res.Failed())
	}

	bytes := float64(n * valueSize)
	fmt.Printf("workload: %d stores x %d KiB values\n\n", n, valueSize>>10)
	fmt.Printf("sync  (QD1):  %10v simulated  %8.1f MB/s\n", syncTime, bytes/syncTime.Seconds()/1e6)
	fmt.Printf("async (deep): %10v simulated  %8.1f MB/s\n", res.Elapsed, bytes/res.Elapsed.Seconds()/1e6)
	fmt.Printf("\nspeedup: %.2fx — die-level parallelism hidden at QD1\n",
		float64(syncTime)/float64(res.Elapsed))
}
