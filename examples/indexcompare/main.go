// Indexcompare: run the same workload against all three in-device index
// schemes — RHIK, the Samsung-style multi-level hash cascade, and the
// PinK-style LSM index — under a constrained DRAM budget, and compare
// throughput and the *distribution* of flash reads per metadata access.
//
// This is the paper's §II-B design-space argument made runnable, and it
// shows the honest trade-offs: the LSM ingests fastest (its memtable
// batches index updates into sequential runs) and the cascade can look
// fine on average, but only RHIK bounds every metadata access to at most
// one flash read — the predictability KVSSD firmware needs. The paper's
// §VI even asks whether hash and LSM advantages can be combined.
package main

import (
	"fmt"
	"log"

	rhik "repro"
	"repro/internal/workload"
)

func main() {
	const (
		keys      = 50_000
		valueSize = 256
		cache     = 512 << 10 // tight DRAM: index residency matters
	)
	fmt.Printf("workload: %d keys × %dB values, %d KiB index cache, uniform reads\n\n",
		keys, valueSize, cache>>10)
	fmt.Printf("%-8s %-13s %-13s %-22s\n",
		"index", "fill(sim)", "read(sim)", "meta reads/op p50/p99/max")

	for _, scheme := range []struct {
		name string
		s    rhik.IndexScheme
	}{
		{"rhik", rhik.RHIK},
		{"mlhash", rhik.MultiLevel},
		{"lsm", rhik.LSM},
	} {
		db, err := rhik.Open(rhik.Options{
			Capacity:    256 << 20,
			Index:       scheme.s,
			CacheBudget: cache,
			Shards:      1, // Device() op-stats cover a single device
		})
		if err != nil {
			log.Fatal(err)
		}

		var fill rhik.Batch
		for i := 0; i < keys; i++ {
			fill.Store(workload.KeyBytes(uint64(i)), workload.ValuePayload(uint64(i), valueSize))
		}
		fres := db.Apply(&fill, 0)
		if fres.Failed() > 0 {
			log.Fatalf("%s: %d fill failures", scheme.name, fres.Failed())
		}

		// Uniform read phase, measured in isolation.
		db.Device().ResetOpStats()
		u := workload.NewUniform(keys, 7)
		var reads rhik.Batch
		for i := 0; i < keys; i++ {
			reads.Retrieve(workload.KeyBytes(u.NextID()))
		}
		rres := db.Apply(&reads, 0)
		if rres.Failed() > 0 {
			log.Fatalf("%s: %d read failures", scheme.name, rres.Failed())
		}

		h := db.Device().MetaReadsPerOp()
		fmt.Printf("%-8s %-13v %-13v %d / %d / %d\n",
			scheme.name, fres.Elapsed, rres.Elapsed,
			h.Percentile(50), h.Percentile(99), h.Max())
	}
	fmt.Println("\nThe LSM ingests fastest (memtable batching) and the cascade looks fine on average,")
	fmt.Println("but their worst-case metadata accesses need multiple flash reads; RHIK's is bounded")
	fmt.Println("at one — the predictable-latency property the paper designs for.")
}
