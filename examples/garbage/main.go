// Garbage: drive the device far past its physical capacity with an
// update-heavy working set, forcing the garbage collector (§IV-B) to
// reclaim stale pairs continuously. The GC scans each victim block's
// key-signature information areas, validates entries against the global
// index, relocates live pairs, and erases the block — exactly the
// paper's data layout at work.
package main

import (
	"bytes"
	"fmt"
	"log"

	rhik "repro"
	"repro/internal/workload"
)

func main() {
	// One shard so the whole 64 MiB budget backs a single device's GC.
	db, err := rhik.Open(rhik.Options{Capacity: 64 << 20, Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		workingSet = 2000
		valueSize  = 4096
		rounds     = 12 // 12 × 2000 × 4 KiB ≈ 94 MiB through a 64 MiB device
	)
	fmt.Printf("overwriting a %d-key working set %d times (%.0f MiB through a %d MiB device)\n",
		workingSet, rounds, float64(rounds*workingSet*valueSize)/(1<<20), 64)

	for r := 0; r < rounds; r++ {
		var b rhik.Batch
		for i := 0; i < workingSet; i++ {
			b.Store(workload.KeyBytes(uint64(i)), workload.ValuePayload(uint64(r)<<32|uint64(i), valueSize))
		}
		res := db.Apply(&b, 0)
		if res.Failed() > 0 {
			log.Fatalf("round %d: %d stores failed", r, res.Failed())
		}
		s := db.Stats()
		fmt.Printf("round %2d: gcRuns=%-4d erases=%-5d flashPrograms=%-6d simulated=%v\n",
			r+1, s.GCRuns, s.FlashErases, s.FlashPrograms, db.Elapsed())
	}

	// Every key must hold its latest value despite all the relocation.
	last := uint64(rounds - 1)
	for i := 0; i < workingSet; i++ {
		want := workload.ValuePayload(last<<32|uint64(i), valueSize)
		got, err := db.Retrieve(workload.KeyBytes(uint64(i)))
		if err != nil {
			log.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("key %d: stale value after GC", i)
		}
	}
	s := db.Stats()
	wa := float64(s.FlashPrograms*32<<10) / float64(s.BytesWritten)
	fmt.Printf("\nall %d keys verified current. write amplification ≈ %.2f\n", workingSet, wa)
}
