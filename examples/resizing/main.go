// Resizing: watch RHIK re-configure itself as the key population grows.
// The device starts with a minimal (single-bucket) index; every time
// occupancy crosses 80 % the directory doubles and all records migrate
// using only their stored signatures. The example prints each resize
// event and the total submission-queue halt time — the cost the paper's
// Fig. 7 studies and its "real-time index scaling" future work targets.
package main

import (
	"fmt"
	"log"

	rhik "repro"
	"repro/internal/workload"
)

func main() {
	// One shard: a single directory makes the doubling cascade visible.
	db, err := rhik.Open(rhik.Options{Capacity: 512 << 20, Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const keys = 200_000
	var batch rhik.Batch
	for i := 0; i < keys; i++ {
		batch.Store(workload.KeyBytes(uint64(i)), workload.ValuePayload(uint64(i), 64))
	}
	res := db.Apply(&batch, 0)
	if n := res.Failed(); n > 0 {
		log.Fatalf("%d stores failed", n)
	}

	fmt.Printf("inserted %d keys in %v simulated\n\n", keys, res.Elapsed)
	fmt.Printf("%-6s %-14s %-14s %-12s\n", "#", "keys before", "new capacity", "migration")
	var prev rhik.ResizeEvent
	for i, e := range db.ResizeEvents() {
		rate := ""
		if i > 0 && prev.Took > 0 {
			rate = fmt.Sprintf("(rate %.2f)", float64(e.Took)/(2*float64(prev.Took)))
		}
		fmt.Printf("%-6d %-14d %-14d %-12v %s\n", i+1, e.KeysBefore, e.NewCapacity, e.Took, rate)
		prev = e
	}

	s := db.Stats()
	fmt.Printf("\ndirectory entries: %d, records: %d, total resize halt: %v\n",
		s.DirectoryEntries, s.IndexRecords, s.ResizeHaltTotal)
	fmt.Printf("every key remains reachable: spot-checking...\n")
	for i := 0; i < keys; i += keys / 10 {
		if _, err := db.Retrieve(workload.KeyBytes(uint64(i))); err != nil {
			log.Fatalf("key %d lost: %v", i, err)
		}
	}
	fmt.Println("ok")
}
