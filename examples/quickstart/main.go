// Quickstart: open an emulated KVSSD, store, retrieve, check membership,
// delete, and read the device statistics.
package main

import (
	"fmt"
	"log"

	rhik "repro"
)

func main() {
	db, err := rhik.Open(rhik.Options{Capacity: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Store([]byte("user:1001"), []byte(`{"name":"ada","plan":"pro"}`)); err != nil {
		log.Fatal(err)
	}
	v, err := db.Retrieve([]byte("user:1001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1001 -> %s\n", v)

	ok, err := db.Exist([]byte("user:1001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exist(user:1001) = %v\n", ok)

	if err := db.Delete([]byte("user:1001")); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Retrieve([]byte("user:1001")); err == rhik.ErrNotFound {
		fmt.Println("deleted: retrieve now reports not-found")
	}

	s := db.Stats()
	fmt.Printf("device: %d stores, %d retrieves, index=%s, simulated time=%v\n",
		s.Stores, s.Retrieves, s.IndexScheme, db.Elapsed())
}
