package rhik_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	rhik "repro"
)

func openDB(t *testing.T, opts rhik.Options) *rhik.DB {
	t.Helper()
	if opts.Capacity == 0 {
		opts.Capacity = 64 << 20
	}
	db, err := rhik.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicRoundTrip(t *testing.T) {
	db := openDB(t, rhik.Options{})
	if err := db.Store([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Retrieve([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Retrieve = (%q,%v)", v, err)
	}
	ok, err := db.Exist([]byte("hello"))
	if err != nil || !ok {
		t.Fatalf("Exist = (%v,%v)", ok, err)
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Retrieve([]byte("hello")); !errors.Is(err, rhik.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Store([]byte("x"), nil); !errors.Is(err, rhik.ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestPublicStatsAndElapsed(t *testing.T) {
	// Shards: 1 — the resize expectation below depends on all keys
	// landing in one device's directory.
	db := openDB(t, rhik.Options{Shards: 1})
	const n = 5000 // past 80% of one 1927-record table: forces re-configuration
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key-%08d", i)), make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Stores != n || s.IndexRecords != n {
		t.Fatalf("stats = %+v", s)
	}
	if s.IndexScheme != "rhik" {
		t.Fatalf("scheme = %s", s.IndexScheme)
	}
	if db.Elapsed() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if s.StoreP50 <= 0 {
		t.Fatal("no store latency percentile")
	}
	if s.Resizes == 0 || len(db.ResizeEvents()) == 0 {
		t.Fatal("expected resizes growing from minimal index")
	}
}

func TestPublicMultiLevelOption(t *testing.T) {
	db := openDB(t, rhik.Options{Index: rhik.MultiLevel})
	if err := db.Store([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if db.Stats().IndexScheme != "mlhash" {
		t.Fatal("wrong scheme")
	}
}

func TestPublicLSMOption(t *testing.T) {
	db := openDB(t, rhik.Options{Index: rhik.LSM})
	if err := db.Store([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Retrieve([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("(%q,%v)", v, err)
	}
	if db.Stats().IndexScheme != "lsm" {
		t.Fatal("wrong scheme")
	}
}

func TestPublicBatchAsyncFasterThanSync(t *testing.T) {
	mkKeys := func() [][]byte {
		keys := make([][]byte, 300)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		}
		return keys
	}
	val := make([]byte, 4096)

	dbSync := openDB(t, rhik.Options{})
	for _, k := range mkKeys() {
		if err := dbSync.Store(k, val); err != nil {
			t.Fatal(err)
		}
	}
	syncElapsed := dbSync.Elapsed()

	dbAsync := openDB(t, rhik.Options{})
	var b rhik.Batch
	for _, k := range mkKeys() {
		b.Store(k, val)
	}
	res := dbAsync.Apply(&b, 0)
	if res.Failed() != 0 {
		t.Fatalf("batch failures: %d", res.Failed())
	}
	if res.Elapsed >= syncElapsed {
		t.Fatalf("async batch (%v) not faster than sync (%v)", res.Elapsed, syncElapsed)
	}
}

func TestPublicBatchRetrieve(t *testing.T) {
	db := openDB(t, rhik.Options{})
	var w rhik.Batch
	for i := 0; i < 10; i++ {
		w.Store([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if res := db.Apply(&w, 0); res.Failed() != 0 {
		t.Fatal("writes failed")
	}
	var r rhik.Batch
	for i := 0; i < 10; i++ {
		r.Retrieve([]byte(fmt.Sprintf("k%d", i)))
	}
	r.Retrieve([]byte("missing"))
	res := db.Apply(&r, 0)
	for i := 0; i < 10; i++ {
		if string(res.Values[i]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("value %d = %q", i, res.Values[i])
		}
	}
	if !errors.Is(res.Errs[10], rhik.ErrNotFound) || res.Failed() != 1 {
		t.Fatalf("missing-key result: %v", res.Errs[10])
	}
}

// TestIteratorModeGroupClumping regression-tests collision-driven
// re-configuration. In iterator mode every key sharing a 14-byte prefix
// lands on the same directory bucket, so bucket loads grow in
// whole-group clumps (256 keys here) and a single bucket can exhaust its
// hopscotch neighborhood while global occupancy is still below the
// resize trigger. Before the fix this store sequence aborted with a
// spurious "uncorrectable signature collision" around key 6994.
func TestIteratorModeGroupClumping(t *testing.T) {
	for _, incr := range []bool{false, true} {
		db := openDB(t, rhik.Options{
			Capacity:          512 << 20,
			IteratorPrefixLen: 14,
			IncrementalResize: incr,
		})
		val := bytes.Repeat([]byte{'v'}, 64)
		for id := uint64(0); id < 10_000; id++ {
			key := []byte(fmt.Sprintf("k%015x", id))
			if err := db.Store(key, val); err != nil {
				t.Fatalf("incremental=%v: store %d: %v", incr, id, err)
			}
		}
		// Every group must remain fully scannable after the splits.
		entries, err := db.Iterate([]byte(fmt.Sprintf("k%015x", uint64(6994))[:14]))
		if err != nil {
			t.Fatalf("incremental=%v: iterate: %v", incr, err)
		}
		if len(entries) != 256 {
			t.Fatalf("incremental=%v: scan group: %d entries, want 256", incr, len(entries))
		}
	}
}

// TestIteratorModeOversizeGroup pins the failure mode collision-driven
// re-configuration must NOT try to fix: a single prefix group larger
// than one record table. Bucket selection depends only on prefix-hash
// bits, so no amount of directory doubling separates these keys; the
// store must fail fast with ErrCollision (bounded resizes, bounded
// directory) instead of doubling the directory on every failed insert.
func TestIteratorModeOversizeGroup(t *testing.T) {
	db := openDB(t, rhik.Options{Capacity: 256 << 20, IteratorPrefixLen: 14})
	// All 4000 keys share the 14-byte prefix "key00000000000": a table
	// holds ~1927 records, so the group cannot fit.
	var firstErr error
	stored := 0
	for i := 0; i < 4000; i++ {
		err := db.Store([]byte(fmt.Sprintf("key%016d", i)), []byte("v"))
		if err != nil {
			if !errors.Is(err, rhik.ErrCollision) {
				t.Fatalf("store %d: %v", i, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		stored++
	}
	if firstErr == nil {
		t.Fatal("oversize prefix group fully stored; expected ErrCollision")
	}
	if stored < 1000 {
		t.Fatalf("only %d stores succeeded before overflow", stored)
	}
	if d := db.Stats().DirectoryEntries; d > 1024 {
		t.Fatalf("directory exploded to %d entries on an inseparable group", d)
	}
}

func TestPublicIterator(t *testing.T) {
	db := openDB(t, rhik.Options{IteratorPrefixLen: 4})
	for i := 0; i < 5; i++ {
		db.Store([]byte(fmt.Sprintf("usr:%d", i)), []byte{byte(i)})
		db.Store([]byte(fmt.Sprintf("img:%d", i)), []byte{byte(i)})
	}
	entries, err := db.Iterate([]byte("usr:"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries", len(entries))
	}
	for _, e := range entries {
		if !bytes.HasPrefix(e.Key, []byte("usr:")) {
			t.Fatalf("stray key %q", e.Key)
		}
	}
	// Without iterator mode, Iterate must refuse.
	plain := openDB(t, rhik.Options{})
	if _, err := plain.Iterate([]byte("x")); !errors.Is(err, rhik.ErrNoIterator) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicCheckpointRestart(t *testing.T) {
	db := openDB(t, rhik.Options{})
	for i := 0; i < 200; i++ {
		db.Store([]byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, err := db.Retrieve([]byte(fmt.Sprintf("key-%08d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after restart: (%q,%v)", i, v, err)
		}
	}
	if db.Stats().Recoveries != 1 {
		t.Fatal("recovery not counted")
	}
}

func TestPublic128BitSignatures(t *testing.T) {
	db := openDB(t, rhik.Options{SignatureBits: 128})
	if err := db.Store([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Retrieve([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("(%q,%v)", v, err)
	}
}

func TestPublicBadOptions(t *testing.T) {
	if _, err := rhik.Open(rhik.Options{Index: IndexSchemeBogus}); err == nil {
		t.Fatal("bogus index scheme accepted")
	}
	if _, err := rhik.Open(rhik.Options{SignatureBits: 17}); err == nil {
		t.Fatal("bad signature bits accepted")
	}
}

// IndexSchemeBogus is an out-of-range scheme for option validation tests.
const IndexSchemeBogus rhik.IndexScheme = 99

// FuzzStoreRetrieve checks the store→retrieve→delete lifecycle for
// arbitrary keys and values on a sharded DB: anything the device
// accepts must come back byte-identical, and anything it rejects must
// be rejected for a defensible size reason. Seed corpus (f.Add plus
// testdata/fuzz/FuzzStoreRetrieve) covers empty and max-size keys and
// values and keys crafted to collide in the low signature bits.
func FuzzStoreRetrieve(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte(""), []byte("empty key must be rejected"))
	f.Add([]byte("k"), []byte{})
	f.Add(bytes.Repeat([]byte{0xab}, 64<<10), []byte("oversized key"))
	f.Add([]byte("big-value"), bytes.Repeat([]byte{7}, 128<<10))
	f.Add([]byte{0x00, 0xff, 0x00}, []byte{0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, key, value []byte) {
		db, err := rhik.Open(rhik.Options{Capacity: 64 << 20, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()

		err = db.Store(key, value)
		switch {
		case errors.Is(err, rhik.ErrKeyTooLarge):
			if len(key) != 0 && len(key) <= 1024 {
				t.Fatalf("key of %d bytes rejected as too large", len(key))
			}
			return
		case errors.Is(err, rhik.ErrValueTooLarge):
			if len(value) <= 1<<20 {
				t.Fatalf("value of %d bytes rejected as too large", len(value))
			}
			return
		case err != nil:
			t.Fatalf("store (%d-byte key, %d-byte value): %v", len(key), len(value), err)
		}

		got, err := db.Retrieve(key)
		if err != nil {
			t.Fatalf("retrieve after store: %v", err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("retrieve returned %d bytes, stored %d", len(got), len(value))
		}
		if ok, err := db.Exist(key); err != nil || !ok {
			t.Fatalf("exist after store = (%v, %v)", ok, err)
		}
		if err := db.Delete(key); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, err := db.Retrieve(key); !errors.Is(err, rhik.ErrNotFound) {
			t.Fatalf("retrieve after delete: %v", err)
		}
		if ok, err := db.Exist(key); err != nil || ok {
			t.Fatalf("exist after delete = (%v, %v)", ok, err)
		}
	})
}
