package rhik

import (
	"time"

	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Batch accumulates commands for asynchronous submission: Apply issues
// them back-to-back (deep queue) so the device's internal parallelism —
// die-level overlap and pipelined page programs — is exposed, the way
// the paper's async experiments drive the KVSSD (Fig. 6a/6b). On a
// sharded DB the batch is partitioned by the signature router into
// per-shard sub-batches that execute concurrently; results are joined
// in submission order.
type Batch struct {
	ops []shard.Op
}

// Store queues a put.
func (b *Batch) Store(key, value []byte) {
	b.ops = append(b.ops, shard.Op{Kind: workload.OpStore, Key: key, Value: value})
}

// Retrieve queues a get; the value is returned in BatchResult.Values.
func (b *Batch) Retrieve(key []byte) {
	b.ops = append(b.ops, shard.Op{Kind: workload.OpRetrieve, Key: key})
}

// Delete queues a delete.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, shard.Op{Kind: workload.OpDelete, Key: key})
}

// Len reports the queued command count.
func (b *Batch) Len() int { return len(b.ops) }

// BatchResult reports the outcome of an asynchronous batch.
type BatchResult struct {
	// Values holds retrieved values, indexed like the batch's commands
	// (nil for non-retrieves and failed retrieves).
	Values [][]byte
	// Errs holds the per-command error (nil on success).
	Errs []error
	// Elapsed is the simulated wall time from first submission to the
	// last completion, including drain of in-flight flash work. Shards
	// drain in parallel, so this is the slowest shard's span.
	Elapsed time.Duration
}

// Failed reports how many commands errored.
func (r BatchResult) Failed() int {
	n := 0
	for _, e := range r.Errs {
		if e != nil {
			n++
		}
	}
	return n
}

// Apply executes the batch asynchronously with the given submission
// interval between commands (0 means back-to-back).
func (db *DB) Apply(b *Batch, gap time.Duration) BatchResult {
	res := db.set.Apply(b.ops, sim.Duration(gap.Nanoseconds()))
	return BatchResult{
		Values:  res.Values,
		Errs:    res.Errs,
		Elapsed: time.Duration(int64(res.Elapsed)),
	}
}
