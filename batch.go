package rhik

import (
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Batch accumulates commands for asynchronous submission: Apply issues
// them back-to-back (deep queue) so the device's internal parallelism —
// die-level overlap and pipelined page programs — is exposed, the way
// the paper's async experiments drive the KVSSD (Fig. 6a/6b).
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	kind  workload.OpKind
	key   []byte
	value []byte
}

// Store queues a put.
func (b *Batch) Store(key, value []byte) {
	b.ops = append(b.ops, batchOp{kind: workload.OpStore, key: key, value: value})
}

// Retrieve queues a get; the value is returned in BatchResult.Values.
func (b *Batch) Retrieve(key []byte) {
	b.ops = append(b.ops, batchOp{kind: workload.OpRetrieve, key: key})
}

// Delete queues a delete.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{kind: workload.OpDelete, key: key})
}

// Len reports the queued command count.
func (b *Batch) Len() int { return len(b.ops) }

// BatchResult reports the outcome of an asynchronous batch.
type BatchResult struct {
	// Values holds retrieved values, indexed like the batch's commands
	// (nil for non-retrieves and failed retrieves).
	Values [][]byte
	// Errs holds the per-command error (nil on success).
	Errs []error
	// Elapsed is the simulated wall time from first submission to the
	// last completion, including drain of in-flight flash work.
	Elapsed time.Duration
}

// Failed reports how many commands errored.
func (r BatchResult) Failed() int {
	n := 0
	for _, e := range r.Errs {
		if e != nil {
			n++
		}
	}
	return n
}

// Apply executes the batch asynchronously with the given submission
// interval between commands (0 means back-to-back).
func (db *DB) Apply(b *Batch, gap time.Duration) BatchResult {
	db.mu.Lock()
	defer db.mu.Unlock()

	res := BatchResult{
		Values: make([][]byte, len(b.ops)),
		Errs:   make([]error, len(b.ops)),
	}
	start := db.dev.Now()
	submit := start
	var lastDone sim.Time
	for i, op := range b.ops {
		var done sim.Time
		var err error
		switch op.kind {
		case workload.OpStore:
			done, err = db.dev.Store(submit, op.key, op.value)
		case workload.OpRetrieve:
			res.Values[i], done, err = db.dev.Retrieve(submit, op.key)
		case workload.OpDelete:
			done, err = db.dev.Delete(submit, op.key)
		}
		res.Errs[i] = err
		if done > lastDone {
			lastDone = done
		}
		submit = submit.Add(sim.Duration(gap.Nanoseconds()))
	}
	end := db.dev.Drain()
	if lastDone > end {
		end = lastDone
	}
	if end > db.last {
		db.last = end
	}
	res.Elapsed = time.Duration(int64(end.Sub(start)))
	return res
}
