// Command kvserver serves an emulated KVSSD over TCP with the kvwire
// protocol, turning the in-process sharded device into a network
// service that cmd/kvload (or any kvwire client) can drive.
//
// Flags mirror kvbench where they overlap, so serving-path numbers can
// be compared against library-boundary numbers on the same device
// configuration:
//
//	kvserver -addr 127.0.0.1:7700 -shards 8 -capacity 1073741824 -index rhik
//
// -wal-dir attaches a per-shard write-ahead log: acknowledged writes
// survive process kill and are replayed into the emulated device on the
// next start (-wal-fsync picks the always/group/none durability
// trade-off, -checkpoint bounds log growth by periodically advancing
// the compaction horizon). -prefixlen enables iterator-mode signatures
// and with them the wire SCAN op kvload's YCSB-E issues.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops
// accepting, finishes every admitted request, flushes responses,
// checkpoints the device, and exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	rhik "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "TCP listen address (use :0 for an ephemeral port)")
		shards    = flag.Int("shards", 0, "device shards, power of two (0 = GOMAXPROCS)")
		capacity  = flag.Int64("capacity", 1<<30, "emulated capacity in bytes")
		cache     = flag.Int64("cache", 10<<20, "index DRAM cache budget")
		indexName = flag.String("index", "rhik", "index scheme: rhik, mlhash, lsm")
		incr      = flag.Bool("incremental", false, "incremental (real-time) index resizing")
		inflight  = flag.Int("inflight", 4096, "max admitted-but-unanswered requests before BUSY")
		queue     = flag.Int("queue", 256, "per-shard worker queue depth before BUSY")
		timeout   = flag.Duration("timeout", 0, "per-request queue deadline (0 = none)")
		pprofAddr = flag.String("pprof", "", "HTTP listen address for net/http/pprof (empty = disabled)")
		prefixLen = flag.Int("prefixlen", 0, "iterator-mode signature prefix bytes; enables SCAN (0 = disabled; YCSB-E needs 14)")
		walDir    = flag.String("wal-dir", "", "write-ahead-log directory; enables durable writes (empty = no WAL)")
		walFsync  = flag.String("wal-fsync", "group", "WAL fsync policy: always, group, or none")
		walSeg    = flag.Int64("wal-segment", 0, "WAL segment rotation size in bytes (0 = default 4 MiB)")
		ckptEvery = flag.Duration("checkpoint", 0, "periodic checkpoint interval; advances the WAL compaction horizon (0 = only at shutdown)")
		valCache  = flag.Int64("value-cache", 0, "hot-value DRAM cache budget in bytes; 0 disables the value tier")
		admission = flag.Bool("cache-admission", false, "TinyLFU admission on the index-page cache")
		prefetch  = flag.Bool("scan-prefetch", false, "stage each distinct data page once per prefix scan")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("kvserver: ")

	if *pprofAddr != "" {
		// Mutex profiling is what the read-path lock split is tuned with:
		// /debug/pprof/mutex shows contention on the per-shard RWMutexes.
		// Sampling 1-in-5 keeps the hot shared path cheap.
		runtime.SetMutexProfileFraction(5)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	opts := rhik.Options{
		Capacity:          *capacity,
		CacheBudget:       *cache,
		Shards:            *shards,
		IncrementalResize: *incr,
		IteratorPrefixLen: *prefixLen,
		ValueCacheBudget:  *valCache,
		CacheAdmission:    *admission,
		ScanPrefetch:      *prefetch,
		WAL: rhik.WALOptions{
			Dir:         *walDir,
			Fsync:       *walFsync,
			SegmentSize: *walSeg,
		},
	}
	switch *indexName {
	case "rhik":
		opts.Index = rhik.RHIK
	case "mlhash":
		opts.Index = rhik.MultiLevel
	case "lsm":
		opts.Index = rhik.LSM
	default:
		fatalf("unknown index %q", *indexName)
	}

	set, err := rhik.OpenSet(opts)
	if err != nil {
		fatalf("open: %v", err)
	}
	srv := server.New(set, server.Options{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Logf:           log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	log.Printf("listening on %s (shards=%d index=%s capacity=%d MiB)",
		ln.Addr(), set.N(), *indexName, *capacity>>20)
	if *walDir != "" {
		ws := set.WALStats()
		log.Printf("wal on %s (fsync=%s, %d records replayed)", *walDir, *walFsync, ws.Replayed)
	}

	// Periodic checkpoints bound WAL growth on a long-running server:
	// each one makes accepted writes durable, advances every shard log's
	// compaction horizon, and folds the segments beneath it. Without
	// them the horizon only moves at shutdown, so a crashed server
	// replays its whole write history.
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	var ckptOnce sync.Once
	// Signals the loop AND waits for any in-flight checkpoint, so Close
	// never races a horizon stamp on a closing log.
	stopCheckpoints := func() {
		ckptOnce.Do(func() { close(stopCkpt) })
		<-ckptDone
	}
	if *ckptEvery <= 0 {
		close(ckptDone)
	} else {
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					if err := set.Checkpoint(); err != nil {
						log.Printf("periodic checkpoint: %v", err)
						return
					}
					if *walDir != "" {
						ws := set.WALStats()
						log.Printf("checkpoint: wal horizon advanced (%d compactions, %d segments removed)",
							ws.Compactions, ws.SegmentsRemoved)
					}
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		log.Printf("%v: beginning graceful drain", s)
		stopCheckpoints()
		srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	// Serve returns as soon as the listener closes; wait for the drain
	// (idempotent — blocks until the signal handler's Shutdown is done).
	stopCheckpoints()
	srv.Shutdown()
	log.Printf("shutdown complete")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvserver: "+format+"\n", args...)
	os.Exit(1)
}
