// Command kvserver serves an emulated KVSSD over TCP with the kvwire
// protocol, turning the in-process sharded device into a network
// service that cmd/kvload (or any kvwire client) can drive.
//
// Flags mirror kvbench where they overlap, so serving-path numbers can
// be compared against library-boundary numbers on the same device
// configuration:
//
//	kvserver -addr 127.0.0.1:7700 -shards 8 -capacity 1073741824 -index rhik
//
// On SIGTERM or SIGINT the server drains gracefully: it stops
// accepting, finishes every admitted request, flushes responses,
// checkpoints the device, and exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	rhik "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "TCP listen address (use :0 for an ephemeral port)")
		shards    = flag.Int("shards", 0, "device shards, power of two (0 = GOMAXPROCS)")
		capacity  = flag.Int64("capacity", 1<<30, "emulated capacity in bytes")
		cache     = flag.Int64("cache", 10<<20, "index DRAM cache budget")
		indexName = flag.String("index", "rhik", "index scheme: rhik, mlhash, lsm")
		incr      = flag.Bool("incremental", false, "incremental (real-time) index resizing")
		inflight  = flag.Int("inflight", 4096, "max admitted-but-unanswered requests before BUSY")
		queue     = flag.Int("queue", 256, "per-shard worker queue depth before BUSY")
		timeout   = flag.Duration("timeout", 0, "per-request queue deadline (0 = none)")
		pprofAddr = flag.String("pprof", "", "HTTP listen address for net/http/pprof (empty = disabled)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("kvserver: ")

	if *pprofAddr != "" {
		// Mutex profiling is what the read-path lock split is tuned with:
		// /debug/pprof/mutex shows contention on the per-shard RWMutexes.
		// Sampling 1-in-5 keeps the hot shared path cheap.
		runtime.SetMutexProfileFraction(5)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	opts := rhik.Options{
		Capacity:          *capacity,
		CacheBudget:       *cache,
		Shards:            *shards,
		IncrementalResize: *incr,
	}
	switch *indexName {
	case "rhik":
		opts.Index = rhik.RHIK
	case "mlhash":
		opts.Index = rhik.MultiLevel
	case "lsm":
		opts.Index = rhik.LSM
	default:
		fatalf("unknown index %q", *indexName)
	}

	set, err := rhik.OpenSet(opts)
	if err != nil {
		fatalf("open: %v", err)
	}
	srv := server.New(set, server.Options{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Logf:           log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	log.Printf("listening on %s (shards=%d index=%s capacity=%d MiB)",
		ln.Addr(), set.N(), *indexName, *capacity>>20)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		log.Printf("%v: beginning graceful drain", s)
		srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	// Serve returns as soon as the listener closes; wait for the drain
	// (idempotent — blocks until the signal handler's Shutdown is done).
	srv.Shutdown()
	log.Printf("shutdown complete")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvserver: "+format+"\n", args...)
	os.Exit(1)
}
