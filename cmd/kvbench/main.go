// Command kvbench is the KVBench-style workload driver the paper uses
// for its microbenchmarks (§V-A): configurable key distribution, value
// sizes, operation mix, and sync/async submission against the emulated
// KVSSD, reporting simulated throughput and latency.
//
// Examples:
//
//	kvbench -n 100000 -value 4096
//	kvbench -index mlhash -keys zipfian -theta 0.9 -mix readmostly -n 200000
//	kvbench -mode sync -value 65536 -n 5000
//	kvbench -dist etc -n 100000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		capacity  = flag.Int64("capacity", 1<<30, "emulated capacity in bytes")
		indexName = flag.String("index", "rhik", "index scheme: rhik, mlhash")
		keyDist   = flag.String("keys", "sequential", "key distribution: sequential, uniform, zipfian")
		theta     = flag.Float64("theta", 0.99, "zipfian skew")
		n         = flag.Int64("n", 100_000, "operation count")
		keyspace  = flag.Int64("keyspace", 0, "distinct keys for uniform/zipfian (default n)")
		valueSize = flag.Int("value", 1024, "fixed value size in bytes")
		dist      = flag.String("dist", "", "value-size distribution: atlas, etc, udb, zippydb, up2x (overrides -value)")
		mixName   = flag.String("mix", "write", "operation mix: write, read, readmostly")
		mode      = flag.String("mode", "async", "submission mode: sync, async")
		keySize   = flag.Int("keysize", 16, "key size in bytes")
		cache     = flag.Int64("cache", 10<<20, "index DRAM cache budget")
		seed      = flag.Int64("seed", 42, "generator seed")
		incr      = flag.Bool("incremental", false, "incremental (real-time) index resizing")
	)
	flag.Parse()

	cfg := device.Config{
		Capacity:          *capacity,
		CacheBudget:       *cache,
		IncrementalResize: *incr,
	}
	switch *indexName {
	case "rhik":
		cfg.Index = device.IndexRHIK
	case "mlhash":
		cfg.Index = device.IndexMultiLevel
	default:
		fatalf("unknown index %q", *indexName)
	}

	if *keyspace == 0 {
		*keyspace = *n
	}
	var keys workload.KeyGen
	switch *keyDist {
	case "sequential":
		keys = workload.NewSequential(0)
	case "uniform":
		keys = workload.NewUniform(uint64(*keyspace), *seed)
	case "zipfian":
		keys = workload.NewZipfian(uint64(*keyspace), *theta, *seed)
	default:
		fatalf("unknown key distribution %q", *keyDist)
	}

	var sizes workload.SizeDist = workload.Fixed{Size: *valueSize}
	switch *dist {
	case "":
	case "atlas":
		sizes = workload.BaiduAtlasWrite(*seed)
	case "etc":
		sizes = workload.FacebookETC(*seed)
	case "udb", "zippydb", "up2x":
		var err error
		names := map[string]string{"udb": "UDB", "zippydb": "ZippyDB", "up2x": "UP2X"}
		sizes, err = workload.RocksDBProfile(names[*dist], *seed)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown value distribution %q", *dist)
	}

	var mix workload.Mix
	switch *mixName {
	case "write":
		mix = workload.WriteOnly
	case "read":
		mix = workload.ReadOnly
	case "readmostly":
		mix = workload.ReadMostly
	default:
		fatalf("unknown mix %q", *mixName)
	}

	dev, err := device.Open(cfg)
	if err != nil {
		fatalf("open: %v", err)
	}
	ks := *keySize
	if ks == 16 {
		ks = 0 // canonical fast path
	}
	gen := workload.NewGenerator(keys, sizes, mix, ks, *seed+1)

	// Pre-fill the keyspace for read-bearing mixes.
	if mix.Retrieve > 0 || mix.Delete > 0 || mix.Exist > 0 {
		fmt.Fprintf(os.Stderr, "prefilling %d keys...\n", *keyspace)
		var submit sim.Time
		for i := int64(0); i < *keyspace; i++ {
			op := workload.Op{Kind: workload.OpStore, KeyID: uint64(i), KeySize: ks, ValueSize: sizes.Next()}
			if _, err := dev.Store(submit, op.Key(), workload.ValuePayload(op.KeyID, op.ValueSize)); err != nil {
				fatalf("prefill %d: %v", i, err)
			}
		}
		dev.ResetOpStats()
	}

	start := time.Now()
	simStart := dev.Drain()
	var last, maxDone sim.Time
	var submit sim.Time = simStart
	var lat metrics.Histogram
	var bytesMoved int64
	var notFound, collisions int64

	for i := int64(0); i < *n; i++ {
		op := gen.Next()
		at := submit
		if *mode == "sync" {
			at = last
			if at < simStart {
				at = simStart
			}
		}
		opStart := dev.Now()
		var done sim.Time
		var err error
		switch op.Kind {
		case workload.OpStore:
			done, err = dev.Store(at, op.Key(), workload.ValuePayload(op.KeyID, op.ValueSize))
			bytesMoved += int64(op.ValueSize)
		case workload.OpRetrieve:
			var v []byte
			v, done, err = dev.Retrieve(at, op.Key())
			bytesMoved += int64(len(v))
		case workload.OpDelete:
			done, err = dev.Delete(at, op.Key())
		case workload.OpExist:
			_, done, err = dev.Exist(at, op.Key())
		}
		switch {
		case err == nil:
		case errors.Is(err, device.ErrNotFound):
			notFound++
		case errors.Is(err, index.ErrCollision):
			collisions++
		default:
			fatalf("op %d (%v): %v", i, op.Kind, err)
		}
		if done > last {
			last = done
		}
		if done > maxDone {
			maxDone = done
		}
		lat.Record(int64(dev.Now().Sub(opStart)))
	}
	end := dev.Drain()
	if maxDone > end {
		end = maxDone
	}
	elapsed := end.Sub(simStart)

	fmt.Printf("workload: %s keys, %s values, mix=%s, mode=%s, index=%s\n",
		*keyDist, sizes.Name(), *mixName, *mode, *indexName)
	fmt.Printf("ops: %d (%d not-found, %d collision aborts)\n", *n, notFound, collisions)
	fmt.Printf("simulated: %v   wall: %v\n", elapsed, time.Since(start).Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Printf("throughput: %.1f kops/s, %.1f MB/s (simulated)\n",
			float64(*n)/elapsed.Seconds()/1e3, float64(bytesMoved)/elapsed.Seconds()/1e6)
	}
	fmt.Printf("firmware occupancy per op: p50=%v p99=%v max=%v\n",
		sim.Duration(lat.Percentile(50)), sim.Duration(lat.Percentile(99)), sim.Duration(lat.Max()))

	is := dev.IndexStats()
	fs := dev.FlashStats()
	ds := dev.Stats()
	fmt.Printf("index: records=%d dirEntries=%d resizes=%d cacheMiss=%.3f\n",
		is.Records, is.DirEntries, is.Resizes, is.Cache.MissRatio())
	fmt.Printf("flash: reads=%d programs=%d erases=%d gcRuns=%d resizeHalt=%v\n",
		fs.Reads, fs.Programs, fs.Erases, ds.GCRuns, ds.ResizeHalt)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvbench: "+format+"\n", args...)
	os.Exit(1)
}
