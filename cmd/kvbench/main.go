// Command kvbench is the KVBench-style workload driver the paper uses
// for its microbenchmarks (§V-A): configurable key distribution, value
// sizes, operation mix, and sync/async submission against the emulated
// KVSSD, reporting simulated throughput and latency.
//
// The device front-end is sharded (-shards) and the host side is
// multi-threaded (-threads): each thread drives its own op stream into
// the shared DB, so on a multi-core machine the bench demonstrates
// wall-clock throughput scaling as shards remove the global serial
// bottleneck.
//
// Examples:
//
//	kvbench -n 100000 -value 4096
//	kvbench -index mlhash -keys zipfian -theta 0.9 -mix readmostly -n 200000
//	kvbench -mode sync -value 65536 -n 5000
//	kvbench -shards 8 -threads 8 -keys uniform -mix readmostly -n 200000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	rhik "repro"
	"repro/internal/workload"
)

func main() {
	var (
		capacity  = flag.Int64("capacity", 1<<30, "emulated capacity in bytes")
		indexName = flag.String("index", "rhik", "index scheme: rhik, mlhash, lsm")
		keyDist   = flag.String("keys", "sequential", "key distribution: sequential, uniform, zipfian")
		theta     = flag.Float64("theta", 0.99, "zipfian skew")
		n         = flag.Int64("n", 100_000, "operation count (split across threads)")
		keyspace  = flag.Int64("keyspace", 0, "distinct keys for uniform/zipfian (default n)")
		valueSize = flag.Int("value", 1024, "fixed value size in bytes")
		dist      = flag.String("dist", "", "value-size distribution: atlas, etc, udb, zippydb, up2x (overrides -value)")
		mixName   = flag.String("mix", "write", "operation mix: write, read, readmostly")
		mode      = flag.String("mode", "async", "submission mode: sync, async")
		keySize   = flag.Int("keysize", 16, "key size in bytes")
		cache     = flag.Int64("cache", 10<<20, "index DRAM cache budget")
		seed      = flag.Int64("seed", 42, "generator seed")
		incr      = flag.Bool("incremental", false, "incremental (real-time) index resizing")
		shards    = flag.Int("shards", 0, "device shards, power of two (0 = GOMAXPROCS)")
		threads   = flag.Int("threads", 1, "concurrent client goroutines")
		batchSize = flag.Int("batch", 512, "async submission batch size per thread")
	)
	flag.Parse()

	opts := rhik.Options{
		Capacity:          *capacity,
		CacheBudget:       *cache,
		IncrementalResize: *incr,
		Shards:            *shards,
	}
	switch *indexName {
	case "rhik":
		opts.Index = rhik.RHIK
	case "mlhash":
		opts.Index = rhik.MultiLevel
	case "lsm":
		opts.Index = rhik.LSM
	default:
		fatalf("unknown index %q", *indexName)
	}
	if *threads < 1 {
		fatalf("-threads must be >= 1")
	}

	if *keyspace == 0 {
		*keyspace = *n
	}
	var mix workload.Mix
	switch *mixName {
	case "write":
		mix = workload.WriteOnly
	case "read":
		mix = workload.ReadOnly
	case "readmostly":
		mix = workload.ReadMostly
	default:
		fatalf("unknown mix %q", *mixName)
	}
	if *mode != "sync" && *mode != "async" {
		fatalf("unknown mode %q", *mode)
	}

	// Per-thread stateful generators: each thread owns an independent
	// key/size/op stream so no generator lock serializes the clients.
	perThread := (*n + int64(*threads) - 1) / int64(*threads)
	newKeys := func(tid int) workload.KeyGen {
		switch *keyDist {
		case "sequential":
			return workload.NewSequential(uint64(int64(tid) * perThread))
		case "uniform":
			return workload.NewUniform(uint64(*keyspace), *seed+int64(tid))
		case "zipfian":
			return workload.NewZipfian(uint64(*keyspace), *theta, *seed+int64(tid))
		default:
			fatalf("unknown key distribution %q", *keyDist)
			return nil
		}
	}
	newSizes := func(tid int) workload.SizeDist {
		s := *seed + 7*int64(tid)
		switch *dist {
		case "":
			return workload.Fixed{Size: *valueSize}
		case "atlas":
			return workload.BaiduAtlasWrite(s)
		case "etc":
			return workload.FacebookETC(s)
		case "udb", "zippydb", "up2x":
			names := map[string]string{"udb": "UDB", "zippydb": "ZippyDB", "up2x": "UP2X"}
			sd, err := workload.RocksDBProfile(names[*dist], s)
			if err != nil {
				fatalf("%v", err)
			}
			return sd
		default:
			fatalf("unknown value distribution %q", *dist)
			return nil
		}
	}

	db, err := rhik.Open(opts)
	if err != nil {
		fatalf("open: %v", err)
	}
	ks := *keySize
	if ks == 16 {
		ks = 0 // canonical fast path
	}

	// Pre-fill the keyspace for read-bearing mixes.
	if mix.Retrieve > 0 || mix.Delete > 0 || mix.Exist > 0 {
		fmt.Fprintf(os.Stderr, "prefilling %d keys...\n", *keyspace)
		sizes := newSizes(0)
		for i := int64(0); i < *keyspace; i++ {
			op := workload.Op{Kind: workload.OpStore, KeyID: uint64(i), KeySize: ks, ValueSize: sizes.Next()}
			if err := db.Store(op.Key(), workload.ValuePayload(op.KeyID, op.ValueSize)); err != nil {
				fatalf("prefill %d: %v", i, err)
			}
		}
	}
	simStart := db.Elapsed()

	type tally struct {
		ops, bytesMoved, notFound, collisions int64
	}
	tallies := make([]tally, *threads)
	start := time.Now()
	var wg sync.WaitGroup
	for tid := 0; tid < *threads; tid++ {
		nOps := perThread
		if int64(tid+1)*perThread > *n {
			nOps = *n - int64(tid)*perThread
		}
		if nOps <= 0 {
			break
		}
		wg.Add(1)
		go func(tid int, nOps int64) {
			defer wg.Done()
			gen := workload.NewGenerator(newKeys(tid), newSizes(tid), mix, ks, *seed+1+int64(tid))
			tl := &tallies[tid]
			record := func(err error) {
				switch {
				case err == nil:
				case errors.Is(err, rhik.ErrNotFound):
					tl.notFound++
				case errors.Is(err, rhik.ErrCollision):
					tl.collisions++
				default:
					fatalf("thread %d: %v", tid, err)
				}
			}
			if *mode == "sync" {
				for i := int64(0); i < nOps; i++ {
					op := gen.Next()
					switch op.Kind {
					case workload.OpStore:
						record(db.Store(op.Key(), workload.ValuePayload(op.KeyID, op.ValueSize)))
						tl.bytesMoved += int64(op.ValueSize)
					case workload.OpRetrieve:
						v, err := db.Retrieve(op.Key())
						record(err)
						tl.bytesMoved += int64(len(v))
					case workload.OpDelete:
						record(db.Delete(op.Key()))
					case workload.OpExist:
						_, err := db.Exist(op.Key())
						record(err)
					}
					tl.ops++
				}
				return
			}
			// Async: deep per-thread batches expose die-level overlap and
			// fan out across shards inside Apply.
			for done := int64(0); done < nOps; {
				var b rhik.Batch
				for ; done < nOps && b.Len() < *batchSize; done++ {
					op := gen.Next()
					switch op.Kind {
					case workload.OpStore:
						b.Store(op.Key(), workload.ValuePayload(op.KeyID, op.ValueSize))
						tl.bytesMoved += int64(op.ValueSize)
					case workload.OpRetrieve, workload.OpExist:
						b.Retrieve(op.Key())
					case workload.OpDelete:
						b.Delete(op.Key())
					}
					tl.ops++
				}
				res := db.Apply(&b, 0)
				for i, err := range res.Errs {
					record(err)
					tl.bytesMoved += int64(len(res.Values[i]))
				}
			}
		}(tid, nOps)
	}
	wg.Wait()
	wall := time.Since(start)
	simElapsed := db.Elapsed() - simStart

	var tot tally
	for _, tl := range tallies {
		tot.ops += tl.ops
		tot.bytesMoved += tl.bytesMoved
		tot.notFound += tl.notFound
		tot.collisions += tl.collisions
	}

	fmt.Printf("workload: %s keys, mix=%s, mode=%s, index=%s, shards=%d, threads=%d\n",
		*keyDist, *mixName, *mode, *indexName, db.Shards(), *threads)
	fmt.Printf("ops: %d (%d not-found, %d collision aborts)\n", tot.ops, tot.notFound, tot.collisions)
	fmt.Printf("simulated: %v   wall: %v\n", simElapsed, wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("wall throughput: %.1f kops/s\n", float64(tot.ops)/wall.Seconds()/1e3)
	}
	if simElapsed > 0 {
		fmt.Printf("simulated throughput: %.1f kops/s, %.1f MB/s\n",
			float64(tot.ops)/simElapsed.Seconds()/1e3, float64(tot.bytesMoved)/simElapsed.Seconds()/1e6)
	}

	s := db.Stats()
	fmt.Printf("latency: store p50=%v p99=%v, retrieve p50=%v p99=%v (simulated)\n",
		s.StoreP50, s.StoreP99, s.RetrieveP50, s.RetrieveP99)
	missRatio := 0.0
	if s.CacheHits+s.CacheMisses > 0 {
		missRatio = float64(s.CacheMisses) / float64(s.CacheHits+s.CacheMisses)
	}
	fmt.Printf("index: records=%d dirEntries=%d resizes=%d cacheMiss=%.3f\n",
		s.IndexRecords, s.DirectoryEntries, s.Resizes, missRatio)
	fmt.Printf("flash: reads=%d programs=%d erases=%d gcRuns=%d resizeHalt=%v\n",
		s.FlashReads, s.FlashPrograms, s.FlashErases, s.GCRuns, s.ResizeHaltTotal)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvbench: "+format+"\n", args...)
	os.Exit(1)
}
